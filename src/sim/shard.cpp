#include "sim/shard.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/simulator.hpp"

namespace ib12x::sim {

void EpochBarrier::arrive_and_wait(bool& local_sense) {
  const bool target = !local_sense;
  local_sense = target;
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
    // Last arriver: reset the counter for the next use, then release the
    // waiters.  The reset is safe before the release store because nobody
    // re-arrives until they have observed the new sense.
    arrived_.store(0, std::memory_order_relaxed);
    sense_.store(target, std::memory_order_release);
  } else {
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != target) {
      if (++spins >= 256) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

ShardEngine::ShardEngine(std::vector<Simulator*> sims, Time lookahead)
    : sims_(std::move(sims)),
      lookahead_(lookahead),
      mail_(sims_.size() * sims_.size()),
      per_(sims_.size()),
      b1_(static_cast<int>(sims_.size())),
      b2_(static_cast<int>(sims_.size())) {
  if (sims_.empty()) throw std::invalid_argument("ShardEngine: need at least one shard");
  if (lookahead_ <= 0) throw std::invalid_argument("ShardEngine: lookahead must be > 0");
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    sims_[i]->attach_shard(this, static_cast<int>(i));
  }
}

ShardEngine::~ShardEngine() {
  for (Simulator* s : sims_) s->attach_shard(nullptr, 0);
}

std::uint64_t ShardEngine::cross_events() const {
  std::uint64_t n = 0;
  for (const Mailbox& m : mail_) n += m.total();
  return n;
}

std::size_t ShardEngine::mailbox_high_water() const {
  std::size_t hwm = 0;
  for (const Mailbox& m : mail_) hwm = std::max(hwm, m.high_water());
  return hwm;
}

void ShardEngine::timed_wait(EpochBarrier& b, bool& sense, PerShard& me) {
  const auto t0 = std::chrono::steady_clock::now();
  b.arrive_and_wait(sense);
  me.barrier_wait_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void ShardEngine::worker_loop(int s) {
  PerShard& me = per_[static_cast<std::size_t>(s)];
  Simulator& sim = *sims_[static_cast<std::size_t>(s)];
  const int n = shards();
  for (;;) {
    // b1: every shard has published all cross-shard posts from the previous
    // window.  This is also the only abort checkpoint — every setter raises
    // the flag before arriving here, so all shards see the same value.
    timed_wait(b1_, me.sense1, me);
    if (abort_.load(std::memory_order_relaxed)) break;

    // Drain inboxes in ascending source-shard order so same-instant
    // cross-shard arrivals enqueue in a deterministic order.
    if (!me.error) {
      try {
        for (int src = 0; src < n; ++src) {
          mailbox(src, s).drain(
              [&sim](Time when, Event fn) { sim.at(when, std::move(fn)); });
        }
        me.local_min = sim.idle() ? kNoPending : sim.next_event_time();
      } catch (...) {
        me.error = std::current_exception();
        me.local_min = kNoPending;
      }
    } else {
      me.local_min = kNoPending;
    }

    // b2: all minima published; afterwards every shard computes the same T0.
    timed_wait(b2_, me.sense2, me);
    Time t0 = kNoPending;
    for (const PerShard& p : per_) t0 = std::min(t0, p.local_min);
    if (t0 == kNoPending) break;  // global drain — same epoch on every shard
    if (s == 0) ++epochs_;

    if (!me.error) {
      try {
        sim.run_window(t0 + lookahead_);
      } catch (...) {
        me.error = std::current_exception();
      }
    }
    if (me.error) abort_.store(true, std::memory_order_relaxed);
  }
}

void ShardEngine::run() {
  abort_.store(false, std::memory_order_relaxed);
  running_ = true;
  std::vector<std::thread> threads;
  threads.reserve(sims_.size() > 0 ? sims_.size() - 1 : 0);
  for (int i = 1; i < shards(); ++i) {
    threads.emplace_back([this, i] { worker_loop(i); });
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();
  running_ = false;
  for (PerShard& p : per_) {
    if (p.error) {
      std::exception_ptr e = p.error;
      p.error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void ShardEngine::enqueue_cross(int src, int dst, Time when, Event fn) {
  mailbox(src, dst).put(when, std::move(fn));
}

// Defined here rather than in the (header-only) Simulator so simulator.hpp
// does not need the engine's definition.
void Simulator::post_cross(Simulator& dst, Time when, Event fn) {
  if (engine_ == nullptr || !engine_->running()) {
    // Construction/teardown-time scheduling is single-threaded; deliver
    // directly, exactly like the single-engine path.
    dst.at(when, std::move(fn));
    return;
  }
  if (when < window_end_) {
    throw std::logic_error(
        "Simulator::post_cross: event targets t=" + std::to_string(when) +
        " inside the current window (end=" + std::to_string(window_end_) +
        "); lookahead exceeds the model's true minimum cross-shard latency");
  }
  engine_->enqueue_cross(shard_, dst.shard_index(), when, std::move(fn));
}

}  // namespace ib12x::sim
