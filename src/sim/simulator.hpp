// The simulation kernel: a virtual clock plus the deterministic event queue.
//
// The kernel is strictly single-threaded *per simulator*: exactly one piece
// of model code runs at a time (either an event handler, or one simulated
// process — see process.hpp — which runs on a fiber and hands control back to
// the event loop at every suspension point).  No locking is needed around the
// queue or the clock.  The parallel engine (shard.hpp) runs several
// Simulators on separate OS threads; all cross-simulator traffic goes through
// post(), which degenerates to at() when source and destination coincide and
// otherwise hands the event to the engine's mailboxes.
//
// Besides virtual time the kernel tracks its own wall-clock throughput
// (events/sec, fiber switches/sec, kernel allocations) so the simulation
// substrate's speed is observable through the telemetry registry and the
// BENCH_kernel.json trajectory.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {

class ShardEngine;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when`.  Scheduling in the past is a
  /// model bug and throws.
  void at(Time when, Event fn) {
    if (when < now_) {
      throw std::logic_error("Simulator::at: scheduling in the past (when=" +
                             std::to_string(when) + " now=" + std::to_string(now_) + ")");
    }
    queue_.push(when, std::move(fn));
  }

  /// Schedules `fn` `delay` picoseconds from now.
  void after(Time delay, Event fn) { at(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at `when` on `dst`, which may belong to another shard.
  /// For `&dst == this` this is exactly at() — the sharded engine costs
  /// nothing on the (overwhelmingly common) intra-shard path.  Cross-shard
  /// posts must target times >= the current epoch's window end; violations
  /// throw (the conservative-sync invariant, see shard.hpp).
  void post(Simulator& dst, Time when, Event fn) {
    if (&dst == this) {
      at(when, std::move(fn));
      return;
    }
    post_cross(dst, when, std::move(fn));
  }

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if the queue was empty.
  bool step() {
    if (queue_.empty()) return false;
    Time when = 0;
    Event fn = queue_.pop(when);
    now_ = when;
    ++processed_;
    fn();
    return true;
  }

  /// Runs events until the queue drains.
  void run() {
    const auto wall_start = std::chrono::steady_clock::now();
    while (step()) {
    }
    run_wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  }

  /// Runs events with timestamps <= `deadline`; leaves later events queued
  /// and advances the clock to exactly `deadline`.
  void run_until(Time deadline) {
    const auto wall_start = std::chrono::steady_clock::now();
    for (;;) {
      Time when = 0;
      Event fn;
      // One ordering query per iteration: the queue checks the deadline as
      // part of the pop instead of answering next_time() and pop separately.
      if (!queue_.pop_at_or_before(deadline, when, fn)) break;
      now_ = when;
      ++processed_;
      fn();
    }
    if (now_ < deadline) {
      now_ = deadline;
      queue_.advance_to(deadline);  // keep same-instant pushes on the fast lane
    }
    run_wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  }

  /// Parallel-engine run phase: processes strictly events with time < `end`
  /// (the epoch window [T0, T0+W)).  Unlike run_until the clock is NOT
  /// advanced to the window edge afterwards — now() stays at the last
  /// processed event, so the final simulated end time matches the
  /// single-threaded oracle exactly.
  void run_window(Time end) {
    window_end_ = end;
    const auto wall_start = std::chrono::steady_clock::now();
    for (;;) {
      Time when = 0;
      Event fn;
      if (!queue_.pop_at_or_before(end - 1, when, fn)) break;
      now_ = when;
      ++processed_;
      fn();
    }
    run_wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  }

  // ---- parallel-engine plumbing (see shard.hpp) ----

  /// Called by ShardEngine on construction/destruction.
  void attach_shard(ShardEngine* engine, int shard) {
    engine_ = engine;
    shard_ = shard;
  }
  [[nodiscard]] int shard_index() const { return shard_; }
  /// End of the current epoch window; 0 when no window has run yet.
  [[nodiscard]] Time window_end() const { return window_end_; }
  /// Earliest pending event time.  Precondition: !idle().
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.pushed(); }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  // ---- kernel self-telemetry ----

  /// Pushes that took the same-instant FIFO lane / the time-ordered heap.
  [[nodiscard]] std::uint64_t lane_events() const { return queue_.lane_pushed(); }
  [[nodiscard]] std::uint64_t heap_events() const { return queue_.heap_pushed(); }
  /// Allocations the event queue performed (storage growth only).
  [[nodiscard]] std::uint64_t kernel_allocs() const { return queue_.alloc_events(); }
  [[nodiscard]] double allocs_per_event() const {
    return processed_ == 0 ? 0.0
                           : static_cast<double>(queue_.alloc_events()) /
                                 static_cast<double>(processed_);
  }

  /// Fiber context switches (counted by Process::resume; 2 per round trip).
  [[nodiscard]] std::uint64_t fiber_switches() const { return fiber_switches_; }
  void note_fiber_switches(std::uint64_t n) { fiber_switches_ += n; }

  /// Wall-clock seconds spent inside run()/run_until() event loops.
  [[nodiscard]] double run_wall_seconds() const {
    return static_cast<double>(run_wall_ns_) / 1e9;
  }
  [[nodiscard]] double events_per_wall_sec() const {
    return run_wall_ns_ == 0 ? 0.0
                             : static_cast<double>(processed_) * 1e9 /
                                   static_cast<double>(run_wall_ns_);
  }
  [[nodiscard]] double switches_per_wall_sec() const {
    return run_wall_ns_ == 0 ? 0.0
                             : static_cast<double>(fiber_switches_) * 1e9 /
                                   static_cast<double>(run_wall_ns_);
  }

 private:
  // Out-of-line (shard.cpp) so this header needs no engine definition.
  void post_cross(Simulator& dst, Time when, Event fn);

  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t fiber_switches_ = 0;
  std::int64_t run_wall_ns_ = 0;
  ShardEngine* engine_ = nullptr;
  int shard_ = 0;
  Time window_end_ = 0;
};

}  // namespace ib12x::sim
