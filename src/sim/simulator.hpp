// The simulation kernel: a virtual clock plus the deterministic event queue.
//
// The kernel is strictly single-threaded in the logical sense: exactly one
// piece of model code runs at a time (either an event handler on the driver
// thread, or one simulated process — see process.hpp — which holds the baton
// while the driver thread is parked).  No locking is therefore needed around
// the queue or the clock.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when`.  Scheduling in the past is a
  /// model bug and throws.
  void at(Time when, EventFn fn) {
    if (when < now_) {
      throw std::logic_error("Simulator::at: scheduling in the past (when=" +
                             std::to_string(when) + " now=" + std::to_string(now_) + ")");
    }
    queue_.push(when, std::move(fn));
  }

  /// Schedules `fn` `delay` picoseconds from now.
  void after(Time delay, EventFn fn) { at(now_ + delay, std::move(fn)); }

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if the queue was empty.
  bool step() {
    if (queue_.empty()) return false;
    Time when = 0;
    EventFn fn = queue_.pop(when);
    now_ = when;
    ++processed_;
    fn();
    return true;
  }

  /// Runs events until the queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Runs events with timestamps <= `deadline`; leaves later events queued
  /// and advances the clock to exactly `deadline`.
  void run_until(Time deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.pushed(); }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ib12x::sim
