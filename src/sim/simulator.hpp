// The simulation kernel: a virtual clock plus the deterministic event queue.
//
// The kernel is strictly single-threaded: exactly one piece of model code
// runs at a time (either an event handler, or one simulated process — see
// process.hpp — which runs on a fiber and hands control back to the event
// loop at every suspension point).  No locking is needed around the queue or
// the clock.
//
// Besides virtual time the kernel tracks its own wall-clock throughput
// (events/sec, fiber switches/sec, kernel allocations) so the simulation
// substrate's speed is observable through the telemetry registry and the
// BENCH_kernel.json trajectory.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when`.  Scheduling in the past is a
  /// model bug and throws.
  void at(Time when, Event fn) {
    if (when < now_) {
      throw std::logic_error("Simulator::at: scheduling in the past (when=" +
                             std::to_string(when) + " now=" + std::to_string(now_) + ")");
    }
    queue_.push(when, std::move(fn));
  }

  /// Schedules `fn` `delay` picoseconds from now.
  void after(Time delay, Event fn) { at(now_ + delay, std::move(fn)); }

  /// Runs the earliest pending event, advancing the clock to its timestamp.
  /// Returns false if the queue was empty.
  bool step() {
    if (queue_.empty()) return false;
    Time when = 0;
    Event fn = queue_.pop(when);
    now_ = when;
    ++processed_;
    fn();
    return true;
  }

  /// Runs events until the queue drains.
  void run() {
    const auto wall_start = std::chrono::steady_clock::now();
    while (step()) {
    }
    run_wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  }

  /// Runs events with timestamps <= `deadline`; leaves later events queued
  /// and advances the clock to exactly `deadline`.
  void run_until(Time deadline) {
    const auto wall_start = std::chrono::steady_clock::now();
    for (;;) {
      Time when = 0;
      Event fn;
      // One ordering query per iteration: the queue checks the deadline as
      // part of the pop instead of answering next_time() and pop separately.
      if (!queue_.pop_at_or_before(deadline, when, fn)) break;
      now_ = when;
      ++processed_;
      fn();
    }
    if (now_ < deadline) {
      now_ = deadline;
      queue_.advance_to(deadline);  // keep same-instant pushes on the fast lane
    }
    run_wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return queue_.pushed(); }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  // ---- kernel self-telemetry ----

  /// Pushes that took the same-instant FIFO lane / the time-ordered heap.
  [[nodiscard]] std::uint64_t lane_events() const { return queue_.lane_pushed(); }
  [[nodiscard]] std::uint64_t heap_events() const { return queue_.heap_pushed(); }
  /// Allocations the event queue performed (storage growth only).
  [[nodiscard]] std::uint64_t kernel_allocs() const { return queue_.alloc_events(); }
  [[nodiscard]] double allocs_per_event() const {
    return processed_ == 0 ? 0.0
                           : static_cast<double>(queue_.alloc_events()) /
                                 static_cast<double>(processed_);
  }

  /// Fiber context switches (counted by Process::resume; 2 per round trip).
  [[nodiscard]] std::uint64_t fiber_switches() const { return fiber_switches_; }
  void note_fiber_switches(std::uint64_t n) { fiber_switches_ += n; }

  /// Wall-clock seconds spent inside run()/run_until() event loops.
  [[nodiscard]] double run_wall_seconds() const {
    return static_cast<double>(run_wall_ns_) / 1e9;
  }
  [[nodiscard]] double events_per_wall_sec() const {
    return run_wall_ns_ == 0 ? 0.0
                             : static_cast<double>(processed_) * 1e9 /
                                   static_cast<double>(run_wall_ns_);
  }
  [[nodiscard]] double switches_per_wall_sec() const {
    return run_wall_ns_ == 0 ? 0.0
                             : static_cast<double>(fiber_switches_) * 1e9 /
                                   static_cast<double>(run_wall_ns_);
  }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t fiber_switches_ = 0;
  std::int64_t run_wall_ns_ = 0;
};

}  // namespace ib12x::sim
