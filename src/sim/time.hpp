// Virtual time for the ib12x discrete-event simulator.
//
// All model time is kept as an integer count of picoseconds.  Picosecond
// resolution keeps bandwidth arithmetic exact enough that repeated
// accumulation over millions of segments does not drift (at 3 GB/s one byte
// is ~333 ps), while int64 still spans ~106 days of simulated time.
#pragma once

#include <cstdint>

namespace ib12x::sim {

/// Absolute simulation time or a duration, in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000 * kPicosecond;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time nanoseconds(double ns) {
  return static_cast<Time>(ns * static_cast<double>(kNanosecond));
}
constexpr Time microseconds(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}
constexpr Time milliseconds(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
constexpr Time seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

constexpr double to_ns(Time t) { return static_cast<double>(t) / kNanosecond; }
constexpr double to_us(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_s(Time t) { return static_cast<double>(t) / kSecond; }

/// Time to move `bytes` through a pipe of `gigabytes_per_s` (decimal GB, the
/// unit used throughout InfiniBand marketing and this paper).
constexpr Time transfer_time(std::int64_t bytes, double gigabytes_per_s) {
  // 1 GB/s == 1 byte/ns == 1e-3 byte/ps.
  return static_cast<Time>(static_cast<double>(bytes) * 1000.0 / gigabytes_per_s);
}

/// Achieved rate in MB/s (decimal) for `bytes` moved in `elapsed`.
constexpr double rate_mb_per_s(std::int64_t bytes, Time elapsed) {
  if (elapsed <= 0) return 0.0;
  // bytes / seconds / 1e6.
  return static_cast<double>(bytes) / to_s(elapsed) / 1e6;
}

}  // namespace ib12x::sim
