#include "sim/process.hpp"

#include <stdexcept>
#include <utility>

namespace ib12x::sim {

void Waitable::notify_all() {
  // Waiters re-register if their predicate still fails, so the list is
  // consumed wholesale.  Swap first: a woken process may wait again on this
  // same Waitable before notify_all returns is impossible (it resumes via a
  // scheduled event), but an event handler may notify twice.
  std::vector<Process*> ready;
  ready.swap(waiters_);
  for (Process* p : ready) p->wake();
}

Process::Process(Simulator& sim, int id, std::string name, Body body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)),
      fiber_([this] { fiber_main(); }) {}

Process::~Process() {
  if (state_ != State::Finished) {
    // Tear down a stuck/blocked process: resume it with the kill flag set;
    // its next suspend point throws Killed and unwinds the fiber stack.
    kill_requested_ = true;
    resume();
  }
}

void Process::start(Time when) {
  if (state_ != State::Created) throw std::logic_error("Process::start: already started");
  state_ = State::Runnable;
  sim_.at(when, [this] { resume(); });
}

void Process::rethrow_if_failed() {
  if (error_) std::rethrow_exception(error_);
}

void Process::fiber_main() {
  if (!kill_requested_) {
    try {
      body_(*this);
    } catch (const Killed&) {
      // torn down by the runtime; nothing to record
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  state_ = State::Finished;
  // Falling off the end returns control to the driver (Fiber::run_body).
}

thread_local Process* Process::current_ = nullptr;

void Process::resume() {
  state_ = State::Running;
  sim_.note_fiber_switches(2);  // in and back out
  Process* prev = current_;  // always nullptr: fibers resume only from the driver
  current_ = this;
  fiber_.resume();
  current_ = prev;
}

void Process::suspend_to_driver() {
  fiber_.yield();
  if (kill_requested_) throw Killed{};
}

void Process::compute(Time d) {
  if (d < 0) throw std::logic_error("Process::compute: negative duration");
  state_ = State::Runnable;
  sim_.after(d, [this] { resume(); });
  suspend_to_driver();
}

void Process::yield() { compute(0); }

void Process::wait(Waitable& w) {
  state_ = State::Blocked;
  w.waiters_.push_back(this);
  suspend_to_driver();
}

void Process::wake() {
  if (state_ != State::Blocked) return;
  state_ = State::Runnable;
  sim_.after(0, [this] { resume(); });
}

Process& ProcessSet::add(std::string name, Process::Body body) {
  int id = static_cast<int>(procs_.size());
  procs_.push_back(std::make_unique<Process>(sim_, id, std::move(name), std::move(body)));
  return *procs_.back();
}

void ProcessSet::run_all(Time when) {
  start_all(when);
  sim_.run();
  finish_all();
}

void ProcessSet::start_all(Time when) {
  for (auto& p : procs_) p->start(when);
}

void ProcessSet::finish_all() {
  bool all_done = true;
  std::string stuck;
  for (auto& p : procs_) {
    if (!p->finished()) {
      all_done = false;
      if (!stuck.empty()) stuck += ", ";
      stuck += p->name();
    }
  }
  for (auto& p : procs_) p->rethrow_if_failed();
  if (!all_done) {
    throw std::runtime_error("ProcessSet: deadlock — event queue empty but processes blocked: " + stuck);
  }
}

}  // namespace ib12x::sim
