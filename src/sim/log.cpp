#include "sim/log.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace ib12x::sim {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("IB12X_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::Trace;
  return LogLevel::Warn;
}

LogLevel g_level = level_from_env();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "E";
    case LogLevel::Warn: return "W";
    case LogLevel::Info: return "I";
    case LogLevel::Debug: return "D";
    case LogLevel::Trace: return "T";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

void vlog(LogLevel level, Time now, const char* fmt, ...) {
  std::fprintf(stderr, "[%s %12.3fus] ", level_name(level), to_us(now));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace ib12x::sim
