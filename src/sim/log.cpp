#include "sim/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ib12x::sim {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("IB12X_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::Trace;
  return LogLevel::Warn;
}

// Relaxed atomic: the level is set once up front (env or a test helper) and
// read from every shard thread; no ordering is needed, only tear-freedom.
std::atomic<int> g_level{static_cast<int>(level_from_env())};

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "E";
    case LogLevel::Warn: return "W";
    case LogLevel::Info: return "I";
    case LogLevel::Debug: return "D";
    case LogLevel::Trace: return "T";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}
void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void vlog(LogLevel level, Time now, const char* fmt, ...) {
  // Format into a local buffer first so the mutex only covers the final
  // write and concurrent shards cannot interleave fragments of a line.
  char line[1024];
  int off = std::snprintf(line, sizeof line, "[%s %12.3fus] ", level_name(level), to_us(now));
  if (off < 0) off = 0;
  if (off < static_cast<int>(sizeof line)) {
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(line + off, sizeof line - static_cast<std::size_t>(off), fmt, ap);
    va_end(ap);
  }
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fputs(line, stderr);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace ib12x::sim
