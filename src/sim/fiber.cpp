#include "sim/fiber.hpp"

namespace ib12x::sim {

extern "C" void ib12x_fiber_entry(void* self) {
  static_cast<Fiber*>(self)->run_body_entry();
}

}  // namespace ib12x::sim

#ifdef IB12X_FIBER_FAST_SWITCH

// Minimal System V x86-64 context switch.  ucontext's swapcontext saves and
// restores the signal mask with an rt_sigprocmask syscall on every switch
// (~200 ns each); simulated processes never touch the signal mask, so a
// user-space-only switch is sufficient and ~20x cheaper.  Only the
// callee-saved integer registers and the stack pointer move; the x87/MXCSR
// control words are excluded on purpose — nothing in the simulator changes
// FP modes, and skipping them keeps the switch at a handful of cycles.
//
// ib12x_ctx_switch(save, restore): pushes the callee-saved registers, stores
// rsp through `save`, installs `restore` as the new rsp, pops and returns on
// the other stack.  A fresh fiber's stack is seeded (Fiber::seed_stack) so
// that the first "return" lands in ib12x_ctx_entry with the Fiber* parked in
// r12; the entry thunk forwards it to ib12x_fiber_entry and never returns.
asm(R"(
        .text
        .globl  ib12x_ctx_switch
        .type   ib12x_ctx_switch, @function
ib12x_ctx_switch:
        pushq   %rbp
        pushq   %rbx
        pushq   %r12
        pushq   %r13
        pushq   %r14
        pushq   %r15
        movq    %rsp, (%rdi)
        movq    %rsi, %rsp
        popq    %r15
        popq    %r14
        popq    %r13
        popq    %r12
        popq    %rbx
        popq    %rbp
        retq
        .size   ib12x_ctx_switch, .-ib12x_ctx_switch

        .globl  ib12x_ctx_entry
        .type   ib12x_ctx_entry, @function
ib12x_ctx_entry:
        movq    %r12, %rdi
        andq    $-16, %rsp
        callq   ib12x_fiber_entry
        ud2
        .size   ib12x_ctx_entry, .-ib12x_ctx_entry
)");

#endif  // IB12X_FIBER_FAST_SWITCH
