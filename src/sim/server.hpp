// Serialized resources for the queueing-network performance model.
//
// A Server is a single-queue FIFO resource (a DMA engine, a link direction,
// a bus direction, a CPU doing WQE posting): work items occupy it back to
// back.  reserve() implements the classic next-free-time discipline and
// returns the interval the item occupies, letting callers chain pipeline
// stages by passing each stage's finish time as the next stage's
// earliest-start.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace ib12x::sim {

class Simulator;

/// Occupancy interval returned by Server::reserve.
struct Reservation {
  Time start;   ///< when the item begins service
  Time finish;  ///< when the resource frees again
};

class Server {
 public:
  Server() = default;
  explicit Server(std::string name) : name_(std::move(name)) {}

  /// Reserves the resource for `service` time units, starting no earlier
  /// than `earliest`.  The caller supplies the current simulation time so
  /// utilization accounting stays exact.
  Reservation reserve(Time now, Time earliest, Time service) {
    Time start = std::max({now, earliest, free_at_});
    Time finish = start + service;
    free_at_ = finish;
    busy_ += service;
    ++jobs_;
    return {start, finish};
  }

  /// Time at which the resource next becomes free (may be in the past).
  [[nodiscard]] Time free_at() const { return free_at_; }

  /// Total busy time accumulated across all reservations.
  [[nodiscard]] Time busy_time() const { return busy_; }
  [[nodiscard]] std::uint64_t jobs() const { return jobs_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void reset_stats() {
    busy_ = 0;
    jobs_ = 0;
  }

 private:
  std::string name_;
  Time free_at_ = 0;
  Time busy_ = 0;
  std::uint64_t jobs_ = 0;
};

/// A rate-based server: service time derives from a byte count and a fixed
/// bandwidth.  Convenience wrapper used for buses, links and DMA engines.
class BandwidthServer {
 public:
  BandwidthServer() = default;
  BandwidthServer(std::string name, double gigabytes_per_s)
      : server_(std::move(name)), rate_(gigabytes_per_s) {}

  Reservation reserve_bytes(Time now, Time earliest, std::int64_t bytes) {
    return server_.reserve(now, earliest, transfer_time(bytes, rate_));
  }
  Reservation reserve_time(Time now, Time earliest, Time service) {
    return server_.reserve(now, earliest, service);
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] Time free_at() const { return server_.free_at(); }
  [[nodiscard]] Time busy_time() const { return server_.busy_time(); }
  [[nodiscard]] std::uint64_t jobs() const { return server_.jobs(); }
  [[nodiscard]] const std::string& name() const { return server_.name(); }
  void reset_stats() { server_.reset_stats(); }

 private:
  Server server_;
  double rate_ = 1.0;
};

}  // namespace ib12x::sim
