// Minimal leveled logging.  Verbosity comes from the IB12X_LOG environment
// variable (error|warn|info|debug|trace); default is warn so simulations are
// quiet unless asked.  Shard-safe: the level check in IB12X_LOG is a relaxed
// atomic load (lock-free on the hot path, which is overwhelmingly "level too
// low, skip"), and emission formats into a local buffer and writes one line
// at a time under a mutex so concurrent shard threads never interleave
// mid-line (see shard.hpp).
#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace ib12x::sim {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void vlog(LogLevel level, Time now, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
}

}  // namespace ib12x::sim

// Callers pass the current simulation time so messages carry a timestamp.
#define IB12X_LOG(level, now, ...)                                        \
  do {                                                                    \
    if (static_cast<int>(level) <= static_cast<int>(::ib12x::sim::log_level())) \
      ::ib12x::sim::detail::vlog(level, now, __VA_ARGS__);                \
  } while (0)

#define IB12X_WARN(now, ...) IB12X_LOG(::ib12x::sim::LogLevel::Warn, now, __VA_ARGS__)
#define IB12X_INFO(now, ...) IB12X_LOG(::ib12x::sim::LogLevel::Info, now, __VA_ARGS__)
#define IB12X_DEBUG(now, ...) IB12X_LOG(::ib12x::sim::LogLevel::Debug, now, __VA_ARGS__)
#define IB12X_TRACE(now, ...) IB12X_LOG(::ib12x::sim::LogLevel::Trace, now, __VA_ARGS__)
