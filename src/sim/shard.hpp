// Conservative parallel discrete-event engine: N Simulators, one OS thread
// each, synchronized with a barrier-epoch scheme.
//
// The lookahead window W is the minimum virtual-time distance any cross-shard
// interaction can span (for the ib model: wire latency + switch latency — a
// packet leaving shard A cannot affect shard B sooner than one hop).  Each
// epoch:
//
//   b1 ─ every shard has published its cross-shard posts from the previous
//        window into the SPSC mailboxes (mailbox.hpp)
//   drain own inboxes in fixed ascending source-shard order (determinism)
//   publish local_min = earliest pending event time (or kNoPending)
//   b2 ─ every shard reads all local_mins and computes the *same* global
//        minimum T0; if T0 == kNoPending everything is drained → terminate
//   run_window(T0 + W): process strictly events with time < T0 + W
//
// Because every event executed in [T0, T0+W) may only post cross-shard work
// at times >= T0 + W (enforced — Simulator::post_cross throws on violation),
// no shard can receive an event in its own current window, so each window is
// causally closed and the result is bit-identical to the single-threaded
// oracle.  The barriers provide all cross-thread happens-before edges; the
// mailboxes and per-shard state need no atomics on the hot path.
//
// Model-code error handling: a shard whose window throws records the
// exception, reports kNoPending from then on and keeps participating in
// barriers (so nobody deadlocks), and raises the abort flag.  The flag is
// checked only at the point right after b1 — every setter raises it before
// arriving at its next b1, so all shards observe it at the same protocol
// point and break together.  run() rethrows the first error in shard order.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <limits>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {

class Simulator;

/// "No pending events" marker for local_min exchange.
inline constexpr Time kNoPending = std::numeric_limits<Time>::max();

/// Sense-reversing barrier.  Each thread keeps its own sense flag (passed by
/// reference) so the reversal never races with late arrivers.  Spins briefly
/// then yields — shard counts can exceed core counts (CI runners, laptops)
/// and a pure spin would livelock an oversubscribed box.
class EpochBarrier {
 public:
  explicit EpochBarrier(int total) : total_(total) {}

  void arrive_and_wait(bool& local_sense);

 private:
  const int total_;
  std::atomic<int> arrived_{0};
  std::atomic<bool> sense_{false};
};

class ShardEngine {
 public:
  /// `sims[i]` becomes shard i; `lookahead` is the window width W (> 0).
  /// The engine attaches itself to every simulator so Simulator::post can
  /// route cross-shard work through the mailboxes.
  ShardEngine(std::vector<Simulator*> sims, Time lookahead);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Runs all shards to completion (global drain) or first model error.
  /// Shard 0 runs on the calling thread; shards 1..N-1 get OS threads.
  void run();

  /// Producer-side entry, called from Simulator::post_cross on the shard
  /// `src`'s thread.  `when` must be >= the posting shard's window_end.
  void enqueue_cross(int src, int dst, Time when, Event fn);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] int shards() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] Time lookahead() const { return lookahead_; }

  // ---- telemetry (read after run() returns) ----
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t cross_events() const;
  [[nodiscard]] std::size_t mailbox_high_water() const;
  [[nodiscard]] std::uint64_t barrier_wait_ns(int shard) const {
    return per_[static_cast<std::size_t>(shard)].barrier_wait_ns;
  }

 private:
  // Per-shard mutable state, cache-line separated so neighbouring shards'
  // writes don't false-share.
  struct alignas(64) PerShard {
    Time local_min = kNoPending;
    std::uint64_t barrier_wait_ns = 0;
    bool sense1 = false;  // private sense for b1_
    bool sense2 = false;  // private sense for b2_
    std::exception_ptr error;
  };

  void worker_loop(int shard);
  void timed_wait(EpochBarrier& b, bool& sense, PerShard& me);
  Mailbox& mailbox(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) * sims_.size() +
                 static_cast<std::size_t>(dst)];
  }

  std::vector<Simulator*> sims_;
  const Time lookahead_;
  std::vector<Mailbox> mail_;  // [src * N + dst]
  std::vector<PerShard> per_;
  EpochBarrier b1_;
  EpochBarrier b2_;
  std::atomic<bool> abort_{false};
  bool running_ = false;
  std::uint64_t epochs_ = 0;  // written by shard 0 only
};

}  // namespace ib12x::sim
