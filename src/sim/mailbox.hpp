// Cross-shard event mailbox for the parallel engine (see shard.hpp).
//
// One Mailbox exists per ordered (producer shard, consumer shard) pair, so
// each instance is strictly single-producer/single-consumer.  The epoch
// protocol gives it an even stronger guarantee than classic SPSC rings need:
// the producer only calls put() during an epoch's run phase and the consumer
// only calls drain() after the inter-epoch barrier, and the barrier itself
// establishes the happens-before edge.  That lets the hot path be a plain
// std::vector push_back — no atomics, no fences, no per-event allocation
// beyond amortized vector growth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {

class Mailbox {
 public:
  struct Entry {
    Time when;
    Event fn;
  };

  /// Producer side: stash an event destined for the consumer shard.  Only
  /// legal during the run phase of an epoch (before the next barrier).
  void put(Time when, Event fn) {
    entries_.push_back(Entry{when, std::move(fn)});
    if (entries_.size() > high_water_) high_water_ = entries_.size();
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Consumer side: hand every stashed event to `deliver(when, fn)` in FIFO
  /// order and reset.  Only legal between the barrier and the next run phase.
  template <typename Fn>
  void drain(Fn&& deliver) {
    for (Entry& e : entries_) deliver(e.when, std::move(e.fn));
    total_ += entries_.size();
    entries_.clear();
  }

  /// Deepest the mailbox ever got (telemetry: sim.shard.mailbox_hwm).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  /// Events that ever passed through (telemetry: sim.shard.cross_events).
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::vector<Entry> entries_;
  std::size_t high_water_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ib12x::sim
