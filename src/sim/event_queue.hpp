// Deterministic event queue: events fire in (time, insertion-sequence) order,
// so two events scheduled for the same instant always run in the order they
// were scheduled, independent of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ib12x::sim {

/// Action run when an event fires.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`.  `when` may equal the current
  /// time (the event runs after already-queued events for that instant).
  void push(Time when, EventFn fn) {
    heap_.push(Entry{when, next_seq_++, std::move(fn)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest pending event time; only valid when !empty().
  [[nodiscard]] Time next_time() const { return heap_.top().when; }

  /// Removes and returns the earliest event's action, storing its time in
  /// `when`.  Precondition: !empty().
  EventFn pop(Time& when) {
    // std::priority_queue::top() is const; the entry is about to be discarded
    // so moving out of it is safe.
    Entry& top = const_cast<Entry&>(heap_.top());
    when = top.when;
    EventFn fn = std::move(top.fn);
    heap_.pop();
    return fn;
  }

  /// Total number of events ever pushed (monotone counter, for stats).
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ib12x::sim
