// Deterministic event queue: events fire in (time, insertion-sequence) order,
// so two events scheduled for the same instant always run in the order they
// were scheduled, independent of queue internals.
//
// Layout is built for throughput:
//   - Events live in a slot slab; a 4-ary heap orders 24-byte POD entries
//     whose (time, seq) rank is packed into one 128-bit key, so a sift step
//     is a single integer compare and never touches a callable.
//   - Events scheduled for the *current* instant (CQE demux, credit returns,
//     process wakeups — the dominant case) bypass the heap entirely through a
//     same-instant FIFO ring (the "lane").
//   - Slab slots and ring storage are recycled, so a warmed-up queue performs
//     zero allocations per event (alloc_events() counts the exceptions).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`.  `when` may equal the current
  /// time (the event runs after already-queued events for that instant).
  void push(Time when, Event fn) {
    assert(when >= 0 && "simulated time is non-negative (key packing relies on it)");
    const std::uint64_t seq = next_seq_++;
    if (when == lane_time_) {
      lane_emplace(seq, std::move(fn));
      ++lane_pushed_;
      return;
    }
    const std::uint32_t slot = acquire_slot(std::move(fn));
    if (heap_.size() == heap_.capacity()) ++allocs_;
    heap_.push_back(HeapEntry{static_cast<std::uint64_t>(when), seq, slot});
    sift_up(heap_.size() - 1);
    ++heap_pushed_;
  }

  [[nodiscard]] bool empty() const { return lane_count_ == 0 && heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return lane_count_ + heap_.size(); }

  /// Earliest pending event time; only valid when !empty().
  [[nodiscard]] Time next_time() const {
    if (lane_count_ == 0) return static_cast<Time>(heap_.front().when_u);
    if (heap_.empty()) return lane_time_;
    return std::min(lane_time_, static_cast<Time>(heap_.front().when_u));
  }

  /// Removes and returns the earliest event, storing its time in `when`.
  /// Precondition: !empty().
  Event pop(Time& when) {
    if (lane_count_ == 0 || heap_before_lane()) return pop_heap_entry(when);
    return pop_lane_entry(when);
  }

  /// Single-ordering-query variant for Simulator::run_until: pops the
  /// earliest event only if its timestamp is <= `deadline`.
  bool pop_at_or_before(Time deadline, Time& when, Event& out) {
    if (lane_count_ != 0 && !heap_before_lane()) {
      if (lane_time_ > deadline) return false;
      out = pop_lane_entry(when);
      return true;
    }
    if (heap_.empty() || static_cast<Time>(heap_.front().when_u) > deadline) return false;
    out = pop_heap_entry(when);
    return true;
  }

  /// Tells the queue the clock moved to `t` without popping (run_until hit a
  /// deadline beyond the last event), so same-instant pushes at `t` can take
  /// the FIFO lane.  Requires the lane to be drained, which run-to-deadline
  /// guarantees (lane events never postdate the instant they were pushed).
  void advance_to(Time t) {
    if (lane_count_ == 0) lane_time_ = t;
  }

  /// Total number of events ever pushed (monotone counter, for stats).
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }
  /// Pushes that took the same-instant FIFO lane vs. the time-ordered heap.
  [[nodiscard]] std::uint64_t lane_pushed() const { return lane_pushed_; }
  [[nodiscard]] std::uint64_t heap_pushed() const { return heap_pushed_; }
  /// Allocations the queue has performed (storage growth only; a warmed-up
  /// queue recycles slots and pushes events allocation-free).
  [[nodiscard]] std::uint64_t alloc_events() const { return allocs_; }

 private:
  /// (time, seq) packed high/low into one 128-bit integer: lexicographic
  /// order becomes a single unsigned compare.  Sound because simulated time
  /// is non-negative (asserted in push) and seq is monotone.
  using Key = unsigned __int128;
  static Key make_key(Time when, std::uint64_t seq) {
    return (static_cast<Key>(static_cast<std::uint64_t>(when)) << 64) | seq;
  }

  struct HeapEntry {
    // (when, seq) stored as two words — 24-byte entries, not the 32 bytes an
    // aligned __int128 member would force — and compared as one packed key.
    std::uint64_t when_u;
    std::uint64_t seq;
    std::uint32_t slot;
    [[nodiscard]] Key key() const { return (static_cast<Key>(when_u) << 64) | seq; }
  };
  struct LaneEntry {
    std::uint64_t seq = 0;
    Event fn;
  };

  /// True when the heap's top sorts before the lane's front in global
  /// (time, seq) order.  Only meaningful while the lane is non-empty, i.e.
  /// while the current instant is lane_time_; a heap event ties only at that
  /// same instant, and then the smaller sequence number wins.
  [[nodiscard]] bool heap_before_lane() const {
    if (heap_.empty()) return false;
    return heap_.front().key() < make_key(lane_time_, lane_[lane_head_].seq);
  }

  // Min-heap over HeapEntry::key, 4-ary: children of i are 4i+1..4i+4.  The
  // wider fan-out halves the levels a pop touches vs. a binary heap, and the
  // packed keys make each level a handful of branch-predictable compares.
  // Any min-heap pops in identical (time, seq) order — the comparator is a
  // total order — so the arity is invisible to determinism.

  void sift_up(std::size_t i) {
    const HeapEntry e = heap_[i];
    const Key k = e.key();
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (heap_[parent].key() <= k) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Re-seats `e` (the former last element) starting from the root after the
  /// minimum was removed.
  void sift_down_root(const HeapEntry e) {
    const std::size_t n = heap_.size();
    const Key k = e.key();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + 4, n);
      std::size_t min_child = first;
      Key min_key = heap_[first].key();
      for (std::size_t c = first + 1; c < last; ++c) {
        const Key ck = heap_[c].key();
        if (ck < min_key) { min_child = c; min_key = ck; }
      }
      if (k <= min_key) break;
      heap_[i] = heap_[min_child];
      i = min_child;
    }
    heap_[i] = e;
  }

  std::uint32_t acquire_slot(Event fn) {
    if (!free_slots_.empty()) {
      const std::uint32_t s = free_slots_.back();
      free_slots_.pop_back();
      slots_[s] = std::move(fn);
      return s;
    }
    if (slots_.size() == slots_.capacity()) ++allocs_;
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  Event pop_heap_entry(Time& when) {
    const HeapEntry top = heap_.front();
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down_root(tail);
    when = static_cast<Time>(top.when_u);
    lane_time_ = when;  // this is now the current instant
    Event fn = std::move(slots_[top.slot]);
    if (free_slots_.size() == free_slots_.capacity()) ++allocs_;
    free_slots_.push_back(top.slot);
    return fn;
  }

  Event pop_lane_entry(Time& when) {
    when = lane_time_;
    Event fn = std::move(lane_[lane_head_].fn);
    lane_head_ = (lane_head_ + 1) & (lane_.size() - 1);
    --lane_count_;
    return fn;
  }

  void lane_emplace(std::uint64_t seq, Event fn) {
    if (lane_count_ == lane_.size()) grow_lane();
    const std::size_t tail = (lane_head_ + lane_count_) & (lane_.size() - 1);
    lane_[tail].seq = seq;
    lane_[tail].fn = std::move(fn);
    ++lane_count_;
  }

  void grow_lane() {
    const std::size_t cap = lane_.empty() ? 16 : lane_.size() * 2;  // power of two
    std::vector<LaneEntry> next(cap);
    for (std::size_t i = 0; i < lane_count_; ++i) {
      next[i] = std::move(lane_[(lane_head_ + i) & (lane_.size() - 1)]);
    }
    lane_ = std::move(next);
    lane_head_ = 0;
    ++allocs_;
  }

  std::vector<HeapEntry> heap_;           // 4-ary min-heap of POD ordering entries
  std::vector<Event> slots_;              // slab holding heap-ordered events
  std::vector<std::uint32_t> free_slots_; // recycled slab indices
  std::vector<LaneEntry> lane_;           // same-instant FIFO ring (power-of-two)
  std::size_t lane_head_ = 0;
  std::size_t lane_count_ = 0;
  Time lane_time_ = 0;  ///< the current instant: time of the last popped event
  std::uint64_t next_seq_ = 0;
  std::uint64_t lane_pushed_ = 0;
  std::uint64_t heap_pushed_ = 0;
  std::uint64_t allocs_ = 0;
};

}  // namespace ib12x::sim
