// Deterministic random numbers (xoshiro256** seeded via splitmix64).
//
// <random> engines are avoided for model state: their streams are
// implementation-defined across standard libraries, and reproducibility of a
// simulation run is part of this library's contract.
#pragma once

#include <cstdint>
#include <limits>

namespace ib12x::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x12c0ffee) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Independent child stream (for per-rank generators derived from one seed).
  Rng split() { return Rng(next_u64() ^ 0x5851f42d4c957f2dULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace ib12x::sim
