// Lightweight statistics collection used by the model and the bench harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ib12x::sim {

/// Running scalar summary: count / min / max / mean / stddev (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// An (x, y) series — one line of a paper figure.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  [[nodiscard]] std::size_t size() const { return x.size(); }

  /// y value at the given x, or NaN if that x was never recorded.
  [[nodiscard]] double at_x(double xv) const {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] == xv) return y[i];
    }
    return std::numeric_limits<double>::quiet_NaN();
  }
};

/// Fixed-bound histogram (values outside the range clamp to the edge bins).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }

  /// Approximate quantile (q in [0,1]) from bin midpoints.
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return 0.0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) {
        double w = (hi_ - lo_) / static_cast<double>(counts_.size());
        return lo_ + (static_cast<double>(i) + 0.5) * w;
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ib12x::sim
