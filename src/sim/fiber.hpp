// Stackful fibers for simulated processes.
//
// A Fiber is a coroutine with its own stack: resume() transfers control from
// the host (the event loop) into the fiber, yield() transfers back.  Both are
// plain user-space context switches — no mutex, no condvar, no kernel entry —
// which is what makes 64–256-rank simulations feasible (a thread-baton
// suspend/resume costs two kernel context switches, ~5 µs).
//
// On x86-64 the switch is a hand-rolled callee-saved-register swap
// (src/sim/fiber.cpp, ~10 ns round trip).  ucontext's swapcontext would work
// too but performs an rt_sigprocmask syscall per switch (~430 ns round trip —
// measured); it remains the portable fallback on other architectures and can
// be forced with -DIB12X_FIBER_UCONTEXT for debugging.
//
// Contract: the body must not let an exception escape (catch everything and
// record it — unwinding across a context switch is undefined), and a started
// fiber must be driven to completion before destruction (the owner resumes
// it with a kill flag; see sim::Process).
//
// Under AddressSanitizer the switches are annotated with the sanitizer fiber
// API so ASan tracks the active stack region correctly; under
// ThreadSanitizer they use the TSan fiber API so the race detector follows
// the logical thread of execution across stack switches (required for the
// sharded parallel engine's TSan CI lane).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>

#if defined(__x86_64__) && defined(__ELF__) && !defined(IB12X_FIBER_UCONTEXT)
#define IB12X_FIBER_FAST_SWITCH 1
#else
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define IB12X_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IB12X_ASAN_FIBERS 1
#endif
#endif

#ifdef IB12X_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define IB12X_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IB12X_TSAN_FIBERS 1
#endif
#endif

#ifdef IB12X_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

#ifdef IB12X_FIBER_FAST_SWITCH
extern "C" {
/// Saves the callee-saved registers + rsp through `save_sp`, switches to
/// `restore_sp`, restores and returns on that stack (src/sim/fiber.cpp).
void ib12x_ctx_switch(void** save_sp, void* restore_sp);
/// First-activation thunk a seeded stack "returns" into.
void ib12x_ctx_entry();
}
#endif

namespace ib12x::sim {

class Fiber {
 public:
  /// Default stack size per fiber.  Process bodies keep bulk data on the
  /// heap; 512 KiB leaves ample headroom for NAS kernels and deep call
  /// chains.  The pages are only committed when touched.
  static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

  explicit Fiber(std::function<void()> body, std::size_t stack_bytes = kDefaultStackBytes)
      : body_(std::move(body)),
        stack_(new unsigned char[stack_bytes]),  // default-init: pages stay untouched
        stack_bytes_(stack_bytes) {}

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

#ifdef IB12X_TSAN_FIBERS
  ~Fiber() {
    if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
  }
#endif

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool finished() const { return finished_; }

  /// Host side: runs the fiber until it yields or its body returns.
  void resume() {
    if (finished_) throw std::logic_error("Fiber::resume: fiber already finished");
    if (!started_) {
      started_ = true;
      seed_stack();
    }
#ifdef IB12X_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&host_fake_stack_, stack_.get(), stack_bytes_);
#endif
#ifdef IB12X_TSAN_FIBERS
    if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
    tsan_host_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#ifdef IB12X_FIBER_FAST_SWITCH
    ib12x_ctx_switch(&host_sp_, fiber_sp_);
#else
    swapcontext(&host_, &ctx_);
#endif
#ifdef IB12X_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(host_fake_stack_, nullptr, nullptr);
#endif
  }

  /// Fiber side: suspends, returning control to the last resume() call.
  void yield() {
#ifdef IB12X_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&fiber_fake_stack_, host_stack_bottom_, host_stack_size_);
#endif
#ifdef IB12X_TSAN_FIBERS
    __tsan_switch_to_fiber(tsan_host_, 0);
#endif
#ifdef IB12X_FIBER_FAST_SWITCH
    ib12x_ctx_switch(&fiber_sp_, host_sp_);
#else
    swapcontext(&ctx_, &host_);
#endif
#ifdef IB12X_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fiber_fake_stack_, &host_stack_bottom_, &host_stack_size_);
#endif
  }

  /// First-activation entry, reached on the fiber's own stack.  Public only
  /// for the extern-"C" trampoline; never call directly.
  void run_body_entry() { run_body(); }

 private:
#ifdef IB12X_FIBER_FAST_SWITCH
  /// Builds the initial stack frame ib12x_ctx_switch will "return" through:
  /// the six callee-saved register slots (this parked in r12) topped by the
  /// entry thunk's address.
  void seed_stack() {
    auto top = reinterpret_cast<std::uintptr_t>(stack_.get() + stack_bytes_);
    auto** sp = reinterpret_cast<void**>(top & ~static_cast<std::uintptr_t>(15));
    *--sp = nullptr;                                     // spacer keeps entry aligned
    *--sp = reinterpret_cast<void*>(&ib12x_ctx_entry);   // retq target
    *--sp = nullptr;                                     // rbp
    *--sp = nullptr;                                     // rbx
    *--sp = this;                                        // r12 → entry thunk's rdi
    *--sp = nullptr;                                     // r13
    *--sp = nullptr;                                     // r14
    *--sp = nullptr;                                     // r15
    fiber_sp_ = sp;
  }
#else
  void seed_stack() {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = nullptr;  // the body's tail swaps back explicitly
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned int>(self >> 32),
                static_cast<unsigned int>(self & 0xffffffffu));
  }

  static void trampoline(unsigned int hi, unsigned int lo) {
    auto* self = reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                          static_cast<std::uintptr_t>(lo));
    self->run_body();
  }
#endif

  void run_body() {
#ifdef IB12X_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(nullptr, &host_stack_bottom_, &host_stack_size_);
#endif
    body_();  // must not throw (see class contract)
    finished_ = true;
#ifdef IB12X_ASAN_FIBERS
    // Exiting for good: tell ASan this fake stack can be destroyed.
    __sanitizer_start_switch_fiber(nullptr, host_stack_bottom_, host_stack_size_);
#endif
#ifdef IB12X_TSAN_FIBERS
    __tsan_switch_to_fiber(tsan_host_, 0);
#endif
#ifdef IB12X_FIBER_FAST_SWITCH
    ib12x_ctx_switch(&fiber_sp_, host_sp_);  // never returns
#else
    swapcontext(&ctx_, &host_);  // never returns
#endif
  }

  std::function<void()> body_;
  std::unique_ptr<unsigned char[]> stack_;
  std::size_t stack_bytes_;
#ifdef IB12X_FIBER_FAST_SWITCH
  void* fiber_sp_ = nullptr;
  void* host_sp_ = nullptr;
#else
  ucontext_t ctx_{};
  ucontext_t host_{};
#endif
  bool started_ = false;
  bool finished_ = false;
#ifdef IB12X_ASAN_FIBERS
  void* host_fake_stack_ = nullptr;
  void* fiber_fake_stack_ = nullptr;
  const void* host_stack_bottom_ = nullptr;
  std::size_t host_stack_size_ = 0;
#endif
#ifdef IB12X_TSAN_FIBERS
  void* tsan_fiber_ = nullptr;
  void* tsan_host_ = nullptr;
#endif
};

}  // namespace ib12x::sim
