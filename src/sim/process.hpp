// Simulated processes (MPI ranks) on top of the event kernel.
//
// Each Process runs user code on a stackful fiber (sim/fiber.hpp); control is
// handed between the driver (the event loop) and the process by plain
// user-space context switches, so a suspend/resume round trip costs two
// swapcontext calls and nothing else — no mutexes, no condvars, no kernel
// entries.  Exactly one piece of code runs at a time, so model state needs no
// locking and runs are bit-reproducible.
//
// Inside the process body, virtual time advances only through explicit calls:
//   compute(d)   — charge d picoseconds of CPU work
//   wait(w)      — block until Waitable w is notified from event context
//   yield()      — let all events scheduled for the current instant run
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {

class Process;

/// A wake-up channel.  Processes block on it; event handlers notify it.
/// There is no memory: a notify with no waiters is a no-op, so callers must
/// always wait in a predicate loop (Process::wait_until does this).
class Waitable {
 public:
  /// Wakes every currently-blocked waiter (they resume at the current
  /// simulation time, in registration order).  Event/driver context only.
  void notify_all();

 private:
  friend class Process;
  std::vector<Process*> waiters_;
};

class Process {
 public:
  using Body = std::function<void(Process&)>;

  Process(Simulator& sim, int id, std::string name, Body body);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Schedules the first activation at absolute time `when`.
  void start(Time when = 0);

  /// The process whose fiber is currently executing, or nullptr from
  /// event/driver context.  Exactly one fiber runs at a time *per shard
  /// thread*, so a thread-local pointer suffices; code that can run on
  /// behalf of more than one fiber (e.g. the endpoint's send path, used by
  /// both the rank's main process and its collective-progress process) uses
  /// this to charge CPU to the right one.
  [[nodiscard]] static Process* current() { return current_; }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool finished() const { return state_ == State::Finished; }
  [[nodiscard]] bool blocked() const { return state_ == State::Blocked; }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] Time now() const { return sim_.now(); }

  /// Re-raises any exception the body terminated with.
  void rethrow_if_failed();

  // ---- callable only from within the process body ----

  /// Charges `d` of virtual CPU time to this process.
  void compute(Time d);

  /// Suspends until all events at the current instant have run.
  void yield();

  /// Suspends until `w` is notified.
  void wait(Waitable& w);

  /// Waits (re-checking after every notify) until `pred()` holds.
  template <typename Pred>
  void wait_until(Waitable& w, Pred pred) {
    while (!pred()) wait(w);
  }

  // ---- callable only from event/driver context ----

  /// If the process is blocked, schedules it to resume at the current time.
  /// No-op otherwise (the waiter re-checks its predicate anyway).
  void wake();

 private:
  enum class State { Created, Runnable, Running, Blocked, Finished };

  /// Thrown through the body's stack when the runtime tears down a process
  /// that never finished.
  struct Killed {};

  void fiber_main();
  void resume();             // driver side: switch into the fiber until it suspends
  void suspend_to_driver();  // process side: switch back to the event loop

  Simulator& sim_;
  int id_;
  std::string name_;
  Body body_;

  bool kill_requested_ = false;
  State state_ = State::Created;
  std::exception_ptr error_;
  Fiber fiber_;

  static thread_local Process* current_;
};

/// Owns a set of processes and drives them to completion.
class ProcessSet {
 public:
  explicit ProcessSet(Simulator& sim) : sim_(sim) {}

  Process& add(std::string name, Process::Body body);

  /// Starts every process at time `when`, runs the event loop until all
  /// finish, and rethrows the first process failure.  Throws std::runtime_error
  /// naming the blocked processes if the system deadlocks.
  void run_all(Time when = 0);

  /// Split form for callers that drive the event loop themselves (the
  /// sharded World runs one ProcessSet per shard under a single parallel
  /// engine): start_all schedules the first activations, finish_all performs
  /// exactly the post-run failure/deadlock checks of run_all.
  void start_all(Time when = 0);
  void finish_all();

  [[nodiscard]] std::size_t size() const { return procs_.size(); }
  [[nodiscard]] Process& at(std::size_t i) { return *procs_[i]; }

 private:
  Simulator& sim_;
  std::vector<std::unique_ptr<Process>> procs_;
};

}  // namespace ib12x::sim
