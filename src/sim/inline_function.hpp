// Small-buffer inline callable for the event kernel.
//
// Every event the simulator processes used to be a heap-allocated
// std::function<void()>; at tens of millions of events per figure bench the
// allocator and the double indirection dominated kernel wall-clock time.
// InlineFunction stores the callable in 48 bytes of in-place storage — no
// heap, ever: a callable that does not fit is a compile error, so the hot
// paths cannot silently regress.  Oversized cold-path captures wrap
// themselves explicitly with sim::boxed(), which moves the capture behind a
// unique_ptr (one visible allocation at the call site).
//
// InlineFunction is move-only (so events can own unique_ptr state) and
// requires nothrow-movable callables (heap sift operations relocate entries).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ib12x::sim {

class InlineFunction {
 public:
  /// In-place storage size.  48 bytes fits every hot-path event capture
  /// (a few pointers plus a timestamp or a Wc) while keeping a queue entry
  /// within one cache line.
  static constexpr std::size_t kCapacity = 48;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "event capture exceeds the 48-byte in-place storage — capture pointers "
                  "instead of values, or wrap the callable with sim::boxed()");
    static_assert(alignof(Fn) <= kAlign, "over-aligned event capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callables must be nothrow-movable (queue entries relocate)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    if constexpr (std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>) {
      manage_ = nullptr;  // relocated by memcpy, destroyed by forgetting
    } else {
      manage_ = [](void* dst, void* src) {
        if (dst != nullptr) ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(buf_, other.buf_);  // move-construct here, destroy there
      } else {
        std::memcpy(buf_, other.buf_, kCapacity);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (invoke_ != nullptr && manage_ != nullptr) manage_(nullptr, buf_);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(kAlign) unsigned char buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  /// Relocate (dst != null) or destroy (dst == null); null for trivially
  /// copyable callables, which relocate by memcpy with no destructor call.
  void (*manage_)(void*, void*) = nullptr;
};

/// Action run when an event fires.
using Event = InlineFunction;

/// Boxes an oversized callable behind one explicit allocation so it fits the
/// in-place event storage.  Cold paths only: the allocation is the point —
/// it is visible at the call site instead of hidden inside std::function.
template <typename F>
auto boxed(F&& f) {
  using Fn = std::decay_t<F>;
  return [p = std::make_unique<Fn>(std::forward<F>(f))]() { (*p)(); };
}

}  // namespace ib12x::sim
