// Cluster shape and MPI-substrate tuning knobs.
//
// Defaults model the paper's testbed: 2 IBM Power6 nodes with one IBM 12x
// dual-port HCA each, one GX+ bus, one port in use, and MVAPICH-era software
// costs.  The "original MVAPICH" baseline of the paper is qps_per_port = 1
// with Policy::Binding.
#pragma once

#include <cstdint>
#include <vector>

#include "ib/params.hpp"
#include "ib/topology.hpp"
#include "mvx/coll/select.hpp"
#include "mvx/policy.hpp"
#include "sim/time.hpp"

namespace ib12x::mvx {

/// Hard cap on VCIs per rank (wire format carries the VCI id in one byte and
/// benches sweep 1–8; the cap keeps per-peer rail vectors bounded).
inline constexpr int kMaxVcis = 8;

struct ClusterSpec {
  int nodes = 2;
  int procs_per_node = 1;

  [[nodiscard]] int total_ranks() const { return nodes * procs_per_node; }
};

struct Config {
  // ---- rail layout -------------------------------------------------------
  int hcas_per_node = 1;
  int ports_per_hca = 1;  ///< the paper's evaluation uses one port
  int qps_per_port = 1;
  Policy policy = Policy::Binding;

  /// Rails per peer pair.
  [[nodiscard]] int rails() const { return hcas_per_node * ports_per_hca * qps_per_port; }

  /// WeightedStriping: per-rail stripe weights (empty = equal).  Shorter
  /// vectors repeat cyclically over the rails.
  std::vector<double> rail_weights;

  /// Take inbound eager buffers from one shared receive queue per HCA
  /// instead of per-QP receive queues (same protocol, O(1) instead of
  /// O(peers) buffer memory — the SRQ mechanism of §2.1).  On by default
  /// since the connection-scaling refactor; `use_srq = false` together with
  /// `lazy_connect = false` recovers the legacy per-peer wiring exactly.
  bool use_srq = true;
  /// SRQ mode: pooled eager receive slots per local HCA (the shared arena
  /// replacing the per-QP `eager_credits` slots).
  int srq_pool_slots = 256;
  /// SRQ mode: low watermark arming the asynchronous limit-reached event
  /// (verbs srq_limit).  Drained slots are reposted in one batch when the
  /// pool's pending count falls below this; <= 0 reposts each slot
  /// immediately after its CQE (no batching).
  int srq_limit = 32;

  /// Establish connections (QPs, rails, fast-path rings) to a peer on first
  /// send or first matched receive instead of all-pairs at startup, via a
  /// modelled out-of-band handshake of `conn_setup_latency`.  Sends posted
  /// before the handshake completes queue per peer and flush FIFO.
  bool lazy_connect = true;
  sim::Time conn_setup_latency = sim::microseconds(25.0);

  /// MVAPICH's adaptive RDMA fast path: small eager messages are RDMA-written
  /// into a per-peer ring the receiver polls, bypassing the responder's
  /// receive-descriptor and CQE processing.
  bool use_rdma_fast_path = false;
  int fast_path_slots = 32;            ///< ring depth per peer direction
  std::int64_t fast_path_max = 1024;   ///< payload cutoff for the fast path
  sim::Time poll_delay = sim::nanoseconds(100);  ///< poll-loop discovery granularity

  // ---- collective algorithm selection (MVAPICH-era tuning) ---------------
  /// Algorithm forcing, Auto crossovers and multi-lane knobs; the registry
  /// and selection table live in mvx/coll/select.hpp.
  coll::Tuning coll;

  // ---- protocol ----------------------------------------------------------
  std::int64_t rndv_threshold = 16 * 1024;   ///< eager/rendezvous switch (paper §3.3)
  std::int64_t stripe_threshold = 16 * 1024; ///< striping cutoff (same value in the paper)
  std::int64_t min_stripe = 2048;            ///< never cut stripes below this
  int eager_credits = 64;                    ///< preposted recv buffers per rail
  int send_bounce_bufs = 256;                ///< sender-side eager bounce pool

  /// Pipelined zero-copy rendezvous (MVAPICH-lineage pipelined rendezvous,
  /// Liu et al.): the receiver registers the target buffer in
  /// `rndv_pipeline_chunk` pieces and streams one CTS per chunk as its
  /// registration completes, so the sender's first RDMA write departs while
  /// later chunks are still being pinned; the sender registers its own side
  /// chunk by chunk and posts each chunk's stripes as one doorbell-batched
  /// batch.  Off (the default) reproduces the one-shot RTS/CTS/FIN protocol
  /// bit-for-bit, including its exact-pointer registration-cache semantics.
  bool rndv_pipeline = false;
  std::int64_t rndv_pipeline_chunk = 64 * 1024;  ///< per-CTS registration chunk

  /// Pin-down cache byte budget (registered rendezvous buffers kept resident
  /// for reuse).  0 = unlimited (never evict — the legacy behaviour).  When
  /// exceeded, least-recently-used unpinned regions are deregistered and
  /// `rndv.reg_cache_evictions` counts them.
  std::int64_t reg_cache_capacity = 0;

  /// Rendezvous protocol family (ibvBench's enumeration).  WriteRtsCts is
  /// the paper's four-step write rendezvous and the default; ReadRts ships
  /// the sender's rkeys in the RTS and the receiver pulls with RDMA Read
  /// (three steps, receiver-driven); WriteImm collapses CTS + FIN into a
  /// write-with-immediate whose receiver CQE completes the match (three
  /// steps, sender-driven).  The RTS carries the choice, so mixed-config
  /// jobs interoperate per message.
  struct RndvConfig {
    enum class Protocol : std::uint8_t { WriteRtsCts = 0, ReadRts = 1, WriteImm = 2 };
    Protocol protocol = Protocol::WriteRtsCts;

    /// Online adaptive scheduling (rndv_policy.hpp): pick protocol × stripe
    /// width per (peer, size-class) by epsilon-greedy over observed
    /// completion throughput, instead of the static protocol above.  Arms
    /// whose stripe width exceeds the live-rail count are masked out.
    bool adaptive = false;
    double epsilon = 0.1;        ///< exploration rate (0..1)
    std::uint64_t seed = 0;      ///< policy RNG stream (xored with the rank)
    /// Cap on the stripe-width axis of the arm space (0 = up to rails()).
    int max_width = 0;
  };
  RndvConfig rndv;

  // ---- virtual communication interfaces (MPI+threads) ---------------------
  /// Zambre-style VCIs: each rank hosts `vci.count` independent software
  /// channels.  A VCI owns its own QP set per peer (a contiguous slice of
  /// the peer's rail vector, wired lazily per (peer, vci)), a disjoint
  /// sequence-space slice in the matcher, its own CQ-processing server
  /// ("progress fiber") and its own control-message cursors.  `vci.threads`
  /// modeled application threads per rank each run as a sim::Process fiber;
  /// the mapping policy decides which VCI a thread's operations use.  The
  /// default (count = 1, threads = 1) is bit-identical to the single-channel
  /// substrate.
  struct VciConfig {
    int count = 1;    ///< VCIs per rank (1..kMaxVcis)
    int threads = 1;  ///< modeled app threads per rank (>= 1)

    /// Thread → VCI mapping.  RoundRobin: thread t drives VCI t % count
    /// (dedicated channels when threads <= count — the scalable regime).
    /// PerComm: operations map by communicator context, so each communicator
    /// gets a VCI regardless of the issuing thread.  Shared: every thread
    /// funnels through VCI 0 (the contended baseline that flatlines).
    enum class Mapping : std::uint8_t { RoundRobin, PerComm, Shared };
    Mapping mapping = Mapping::RoundRobin;

    /// Cost of one VCI lock acquisition (CAS + fence), charged whenever
    /// threads > 1 and a thread enters a VCI's critical section; contended
    /// acquisitions additionally serialize behind the holder.
    sim::Time lock_cpu = sim::nanoseconds(60);
  };
  VciConfig vci;

  // ---- switched fabric topology -------------------------------------------
  /// Shape, routing and contention model of the subnet (ib/topology.hpp).
  /// The default — single crossbar switch, contention off — reproduces the
  /// seed's closed-form wire path bit for bit; fat-tree/dragonfly shapes and
  /// `topo.contention = true` turn on hop-by-hop routed traversal.  Sizing
  /// fields left at 0 are derived from the cluster shape when the World is
  /// built (smallest fabric of that shape that fits every port).
  ib::TopologySpec topo;

  // ---- parallel simulation ------------------------------------------------
  /// Simulator shards (OS threads) for the conservative parallel engine
  /// (sim/shard.hpp).  1 (the default) runs the exact legacy single-threaded
  /// engine, bit for bit.  N > 1 partitions nodes over min(N, nodes) shards
  /// and produces bit-identical simulated-time results to the
  /// single-threaded oracle.  Requires lazy_connect = false: all QP/rail
  /// wiring must happen single-threaded before the parallel run starts.
  int sim_shards = 1;

  /// Node → shard placement for sim_shards > 1.  RoundRobin is the legacy
  /// node-index-modulo-shards layout; Locality places nodes by their edge
  /// switch (or dragonfly group), so fabric neighbours share a shard and
  /// fewer transfers cross the conservative-sync boundary.  Auto picks
  /// RoundRobin on a crossbar (every placement is equivalent there — keeps
  /// legacy runs bit-identical) and Locality on fat-tree/dragonfly shapes.
  /// Contention mode with sim_shards > 1 requires Locality: every Switch::hop
  /// chain ends with a same-shard hand-off to the destination host, which
  /// only holds when hosts are co-sharded with their edge switch.
  enum class ShardPlacement { Auto, RoundRobin, Locality };
  ShardPlacement shard_placement = ShardPlacement::Auto;

  // ---- fault injection / failover ----------------------------------------
  /// Deterministic fault model (ib::FaultPlan) plus the transport's failover
  /// response.  With enabled == false (the default) every fault hook in the
  /// stack is inert and the simulation is bit-identical to the fault-free
  /// build.
  struct FaultConfig {
    bool enabled = false;
    std::uint64_t seed = 0xfa17;       ///< fault RNG stream (independent of Config::seed)
    double msg_error_rate = 0.0;       ///< per-WQE probability of a transport fault
    double ack_drop_fraction = 0.25;   ///< of faulted WQEs: data lands, ACK lost
    sim::Time retry_latency = sim::microseconds(2.0);   ///< fault → error-CQE delay
    sim::Time rail_recovery = sim::microseconds(20.0);  ///< rail down → retry-up probe
    int eager_retry_limit = 64;        ///< replays of one eager/ctl message before giving up
    int stripe_retry_limit = 64;       ///< re-posts of one rendezvous stripe before giving up

    /// A scheduled link flap: port `port` of HCA `hca` on node `node` goes
    /// down at `down_at` and comes back at `up_at` (ignored if <= down_at).
    struct LinkFlap {
      int node = 0;
      int hca = 0;
      int port = 0;
      sim::Time down_at = 0;
      sim::Time up_at = 0;
    };
    std::vector<LinkFlap> link_flaps;
  };
  FaultConfig fault;

  // ---- software costs (MVAPICH-era, Power6) -------------------------------
  sim::Time post_cpu = sim::nanoseconds(700);      ///< build WQE + ring doorbell (uncached MMIO)
  /// Doorbell-batched posting (pipelined rendezvous only): each WQE costs
  /// wqe_build_cpu and the uncached-MMIO doorbell is paid once per batch.
  /// wqe_build_cpu + doorbell_cpu == post_cpu keeps a 1-stripe batch
  /// identical to the legacy per-stripe cost.
  sim::Time wqe_build_cpu = sim::nanoseconds(250);
  sim::Time doorbell_cpu = sim::nanoseconds(450);
  sim::Time cqe_sw = sim::nanoseconds(750);        ///< poll + process one completion
  sim::Time match_cpu = sim::nanoseconds(450);     ///< per-message header processing / matching
  sim::Time ctl_cpu = sim::nanoseconds(300);       ///< control (RTS/CTS/FIN) handling
  sim::Time reg_cache_miss = sim::nanoseconds(450);///< rendezvous buffer registration (flat part)
  sim::Time reg_cache_hit = sim::nanoseconds(50);
  /// Per-4-KiB-page pin cost added to a registration miss.  0 (the default)
  /// keeps the seed's flat registration model; the rendezvous-pipeline
  /// ablation raises it to the MVAPICH-era measured ~150 ns/page to expose
  /// what chunked registration actually hides.
  sim::Time reg_page_cpu = 0;
  double memcpy_gbps = 2.6;                        ///< host memcpy rate for eager copies

  // ---- shared-memory channel (intra-node) ---------------------------------
  sim::Time shm_latency = sim::nanoseconds(400);
  double shm_gbps = 1.8;

  // ---- hardware -----------------------------------------------------------
  ib::HcaParams hca;
  ib::FabricParams fabric;

  std::uint64_t seed = 0x12c0ffee;

  /// The paper's baseline configuration.
  static Config original() { return Config{}; }

  /// The paper's enhanced configuration: n QPs/port with the given policy.
  static Config enhanced(int qps, Policy p) {
    Config c;
    c.qps_per_port = qps;
    c.policy = p;
    return c;
  }
};

}  // namespace ib12x::mvx
