#include "mvx/net_channel.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "ib/fault.hpp"
#include "mvx/matcher.hpp"

namespace ib12x::mvx {

NetChannel::NetChannel(ChannelHost& host, std::vector<ib::Hca*> hcas)
    : Channel(host),
      hcas_(std::move(hcas)),
      fault_enabled_(host.config().fault.enabled),
      eager_sent_(host.telemetry().counter("net.eager_sent")),
      ctl_sent_(host.telemetry().counter("net.ctl_sent")),
      bytes_sent_(host.telemetry().counter("net.bytes_sent")),
      credit_stalls_(host.telemetry().counter("net.credit_stalls")),
      rail_up_(host.telemetry().counter("rail.up")),
      rail_down_(host.telemetry().counter("rail.down")),
      rail_recovered_(host.telemetry().counter("rail.recovered")),
      send_errors_(host.telemetry().counter("fault.send_errors")),
      recv_flushes_(host.telemetry().counter("fault.recv_flushes")),
      eager_retries_(host.telemetry().counter("fault.eager_retries")),
      qps_created_(host.telemetry().counter("conn.qps_created")),
      eager_pool_bytes_(host.telemetry().counter("eager.pool_bytes")),
      srq_replenishes_(host.telemetry().counter("srq.replenishes")),
      srq_pool_dry_(host.telemetry().counter("srq.pool_dry")) {
  if (static_cast<int>(hcas_.size()) > kMaxHcas) {
    throw std::invalid_argument("NetChannel: too many HCAs per node");
  }
  // vci.* counters exist only when the VCI machinery is enabled, so the
  // default configuration's telemetry snapshot is unchanged.
  const Config& cfg = host.config();
  if (cfg.vci.count > 1 || cfg.vci.threads > 1) {
    vci_credit_split_ = &host.telemetry().counter("vci.credit_split");
  }
  scq_.set_callback([this](const ib::Wc& wc) { on_send_cqe(wc); });
  rcq_.set_callback([this](const ib::Wc& wc) { on_recv_cqe(wc); });
}

NetChannel::~NetChannel() = default;

// --------------------------------------------------- connection / resources

void NetChannel::ensure_net_resources() {
  if (resources_ready_) return;
  resources_ready_ = true;
  const Config& cfg = host_.config();
  if (vci_credit_split_ != nullptr) {
    vci_credit_split_->track_max(static_cast<std::uint64_t>(rail_credits()));
  }
  const std::size_t slot_bytes = kHeaderBytes + static_cast<std::size_t>(cfg.rndv_threshold);

  // Sender-side eager bounce pool, registered in every local HCA domain.
  bounce_.resize(static_cast<std::size_t>(cfg.send_bounce_bufs));
  for (std::size_t i = 0; i < bounce_.size(); ++i) {
    bounce_[i].data.resize(slot_bytes);
    for (std::size_t h = 0; h < hcas_.size(); ++h) {
      bounce_[i].lkey[h] =
          hcas_[h]->mem().register_memory(bounce_[i].data.data(), slot_bytes).lkey;
    }
    free_bounce_.push_back(static_cast<int>(i));
  }

  // SRQ mode: one shared receive queue + one pooled slot arena per local
  // HCA — the receive-buffer footprint is O(1) in the peer count.
  if (!cfg.use_srq) return;
  const int slots = std::max(1, cfg.srq_pool_slots);
  pools_.resize(hcas_.size());
  for (std::size_t h = 0; h < hcas_.size(); ++h) {
    HcaPool& pool = pools_[h];
    pool.srq = &hcas_[h]->create_srq();
    pool.arena.resize(static_cast<std::size_t>(slots) * slot_bytes);
    pool.lkey = hcas_[h]->mem().register_memory(pool.arena.data(), pool.arena.size()).lkey;
    eager_pool_bytes_.add(pool.arena.size());
    for (int i = 0; i < slots; ++i) {
      auto slot = std::make_unique<RecvSlot>();
      slot->srq = pool.srq;
      slot->data = pool.arena.data() + static_cast<std::size_t>(i) * slot_bytes;
      slot->len = static_cast<std::uint32_t>(slot_bytes);
      slot->lkey = pool.lkey;
      slot->hca = static_cast<int>(h);
      pool.srq->post({.wr_id = reinterpret_cast<std::uint64_t>(slot.get()),
                      .dst = slot->data,
                      .length = slot->len,
                      .lkey = slot->lkey});
      recv_slots_.push_back(std::move(slot));
    }
    const int hca_index = static_cast<int>(h);
    pool.srq->set_stall_hook([this] { srq_pool_dry_.inc(); });
    if (cfg.srq_limit > 0) {
      pool.srq->set_limit_handler([this, hca_index] { on_srq_limit(hca_index); });
      pool.srq->arm_limit(cfg.srq_limit);
    }
  }
}

RailCursor& NetChannel::lane_cursor(Peer& c, int vci) {
  return vci == 0 ? c.cursor : c.ext.at(static_cast<std::size_t>(vci) - 1).cursor;
}

RailCursor& NetChannel::lane_ctl(Peer& c, int vci) {
  return vci == 0 ? c.ctl : c.ext.at(static_cast<std::size_t>(vci) - 1).ctl;
}

std::deque<std::pair<MsgHeader, CtsRkeys>>& NetChannel::lane_pending(Peer& c, int vci) {
  return vci == 0 ? c.pending_ctl : c.ext.at(static_cast<std::size_t>(vci) - 1).pending_ctl;
}

int NetChannel::rail_credits() const {
  const Config& cfg = host_.config();
  // With several VCIs the credit budget splits evenly over the VCI groups:
  // each group's rails get their share of the per-QP credits (per-QP RQ
  // mode) or of the shared SRQ arena (the pool stays one per HCA, only the
  // sender-side credit derivation divides).  The World constructor rejects
  // splits that would round to zero.
  if (!cfg.use_srq) return cfg.eager_credits / std::max(1, cfg.vci.count);
  // Re-derive per-rail credits from the shared pool so one peer's rails can
  // never oversubscribe the arena on their own; concurrent senders beyond
  // that are absorbed by RNR backpressure (stall + replenish), not errors.
  const int per_rail =
      std::max(1, cfg.srq_pool_slots) / std::max(1, cfg.rails() * std::max(1, cfg.vci.count));
  return std::min(cfg.eager_credits, std::max(1, per_rail));
}

void NetChannel::open_to(int peer_rank) {
  ensure_net_resources();
  peers_[peer_rank];  // materialize the peer entry (rails wire in establish)
}

ib::QueuePair& NetChannel::open_rail(int peer_rank, int hca_index, int port) {
  const Config& cfg = host_.config();
  Peer& c = peers_.at(peer_rank);
  ib::SharedReceiveQueue* srq =
      cfg.use_srq ? pools_.at(static_cast<std::size_t>(hca_index)).srq : nullptr;
  ib::QueuePair& qp =
      hcas_.at(static_cast<std::size_t>(hca_index))->create_qp(port, scq_, rcq_, srq);
  c.rails.push_back(Rail{&qp, hca_index, rail_credits(), 0});
  // Error-CQE → rail routing, only ever consulted under fault injection;
  // skip the map nodes entirely otherwise.
  if (fault_enabled_) {
    qp_rail_[qp.num()] = {peer_rank, static_cast<int>(c.rails.size()) - 1};
  }
  qps_created_.inc();
  return qp;
}

void NetChannel::prepost_rail(ib::QueuePair& qp, int hca_index, int peer_rank) {
  const Config& cfg = host_.config();
  if (cfg.use_srq) return;  // pooled slots were preposted once per HCA
  const std::size_t slot_bytes = kHeaderBytes + static_cast<std::size_t>(cfg.rndv_threshold);
  for (int i = 0; i < rail_credits(); ++i) {
    auto slot = std::make_unique<RecvSlot>();
    slot->buf.resize(slot_bytes);
    slot->data = slot->buf.data();
    slot->len = static_cast<std::uint32_t>(slot_bytes);
    slot->peer = peer_rank;
    slot->hca = hca_index;
    // Receive buffers only need registration in the domain of the HCA the
    // QP lives on.
    slot->lkey = qp.port().hca().mem().register_memory(slot->buf.data(), slot_bytes).lkey;
    slot->qp = &qp;
    qp.post_recv({.wr_id = reinterpret_cast<std::uint64_t>(slot.get()),
                  .dst = slot->data,
                  .length = slot->len,
                  .lkey = slot->lkey});
    eager_pool_bytes_.add(slot_bytes);
    recv_slots_.push_back(std::move(slot));
  }
}

void NetChannel::establish(NetChannel& a, NetChannel& b) {
  const Config& cfg = a.host_.config();
  a.open_to(b.host_.rank());
  b.open_to(a.host_.rank());
  a.peers_.at(b.host_.rank()).remote = &b;
  b.peers_.at(a.host_.rank()).remote = &a;
  // VCI group 0 always wires with the connection; with lazy_connect the
  // remaining groups wire on first use (ensure_vci).  Eager wiring — which
  // sharded runs require — brings up every group here, single-threaded.
  const int groups = cfg.lazy_connect ? 1 : std::max(1, cfg.vci.count);
  for (int v = 0; v < groups; ++v) wire_vci_group(a, b);
}

void NetChannel::ensure_vci(int peer_rank, int vci) {
  Peer& c = peer(peer_rank);
  while (c.wired_vcis <= vci) wire_vci_group(*this, *c.remote);
}

void NetChannel::wire_vci_group(NetChannel& a, NetChannel& b) {
  const Config& cfg = a.host_.config();
  Peer& pa = a.peers_.at(b.host_.rank());
  Peer& pb = b.peers_.at(a.host_.rank());
  if (pa.wired_vcis >= 1) {
    // Lane state for the new VCI (group 0 lives in the Peer's own members).
    pa.ext.emplace_back();
    pb.ext.emplace_back();
  }
  ++pa.wired_vcis;
  ++pb.wired_vcis;
  ib::FaultPlan* plan = a.fault_enabled_ ? a.hcas_.front()->fabric().fault_plan() : nullptr;

  for (int h = 0; h < cfg.hcas_per_node; ++h) {
    for (int p = 0; p < cfg.ports_per_hca; ++p) {
      for (int q = 0; q < cfg.qps_per_port; ++q) {
        ib::QueuePair& qa = a.open_rail(b.host_.rank(), h, p);
        ib::QueuePair& qb = b.open_rail(a.host_.rank(), h, p);
        ib::Fabric::connect(qa, qb);
        a.rail_up_.inc();
        b.rail_up_.inc();
        a.prepost_rail(qa, h, b.host_.rank());
        b.prepost_rail(qb, h, a.host_.rank());
        if (plan != nullptr) {
          // Lazy wiring can land inside a link-down window: a QP created
          // behind a dead port starts in the error state (its rail parks and
          // probes for recovery like any mid-run failure).
          const int ra = static_cast<int>(a.peers_.at(b.host_.rank()).rails.size()) - 1;
          const int rb = static_cast<int>(b.peers_.at(a.host_.rank()).rails.size()) - 1;
          if (plan->port_down(a.hcas_.at(static_cast<std::size_t>(h)), p)) {
            qa.transition_to_error();
            a.mark_rail_down(b.host_.rank(), ra);
          }
          if (plan->port_down(b.hcas_.at(static_cast<std::size_t>(h)), p)) {
            qb.transition_to_error();
            b.mark_rail_down(a.host_.rank(), rb);
          }
        }
      }
    }
  }
}

NetChannel::Peer& NetChannel::peer(int rank) {
  auto it = peers_.find(rank);
  if (it == peers_.end()) {
    throw std::logic_error("NetChannel " + std::to_string(host_.rank()) +
                           ": no connection to rank " + std::to_string(rank));
  }
  return it->second;
}

const NetChannel::Peer& NetChannel::peer(int rank) const {
  return const_cast<NetChannel*>(this)->peer(rank);
}

bool NetChannel::accepts(int peer_rank, std::int64_t /*bytes*/) const {
  return peers_.count(peer_rank) != 0;
}

int NetChannel::nrails(int peer_rank) const {
  peer(peer_rank);  // preserve the no-connection diagnostic
  return host_.config().rails();
}

RailCursor& NetChannel::cursor(int peer_rank, int vci) {
  ensure_vci(peer_rank, vci);
  return lane_cursor(peer(peer_rank), vci);
}

RailCursor& NetChannel::ctl_cursor(int peer_rank, int vci) {
  ensure_vci(peer_rank, vci);
  return lane_ctl(peer(peer_rank), vci);
}

std::vector<std::int64_t> NetChannel::rail_outstanding(int peer_rank, int vci) const {
  const Peer& c = peer(peer_rank);
  const int n = host_.config().rails();
  const std::size_t base = static_cast<std::size_t>(vci) * static_cast<std::size_t>(n);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(c.rails.at(base + static_cast<std::size_t>(i)).outstanding);
  return out;
}

std::vector<std::uint8_t> NetChannel::rail_up(int peer_rank, int vci) const {
  const Peer& c = peer(peer_rank);
  const int n = host_.config().rails();
  const std::size_t base = static_cast<std::size_t>(vci) * static_cast<std::size_t>(n);
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(c.rails.at(base + static_cast<std::size_t>(i)).up ? 1 : 0);
  }
  return out;
}

std::vector<int> NetChannel::live_rails(int peer_rank, int vci) const {
  const Peer& c = peer(peer_rank);
  const int n = host_.config().rails();
  const int base = vci * n;
  std::vector<int> out;
  for (int i = base; i < base + n; ++i) {
    if (c.rails[static_cast<std::size_t>(i)].up) out.push_back(i);
  }
  return out;
}

int NetChannel::remap_live(const Peer& c, int rail) const {
  // Failover remaps only within the rail's own VCI slice: rails of other
  // VCIs are other channels' resources (and at vci.count = 1 the slice is
  // the whole vector, reproducing the legacy wrap exactly).
  const int n = host_.config().rails();
  const int base = (rail / n) * n;
  for (int i = 0; i < n; ++i) {
    const int cand = base + (rail - base + i) % n;
    if (c.rails[static_cast<std::size_t>(cand)].up) return cand;
  }
  return rail;
}

void NetChannel::wait_any_rail_up(int peer_rank, int vci) {
  Peer& c = peer(peer_rank);
  const int n = host_.config().rails();
  const std::size_t base = static_cast<std::size_t>(vci) * static_cast<std::size_t>(n);
  host_.process().wait_until(host_.progress(), [&c, base, n] {
    for (int i = 0; i < n; ++i) {
      if (c.rails[base + static_cast<std::size_t>(i)].up) return true;
    }
    return false;
  });
}

// ------------------------------------------------------------- eager sends

int NetChannel::acquire_bounce_and_credit(Peer& c, int rail) {
  Rail& r = c.rails.at(static_cast<std::size_t>(rail));
  if (r.credits <= 0 || free_bounce_.empty()) credit_stalls_.inc();
  host_.process().wait_until(host_.progress(), [&] { return r.credits > 0 && !free_bounce_.empty(); });
  // Reserve both resources NOW: between this call and the eventual
  // post_eager the process charges CPU time, during which an event-context
  // control send could otherwise steal the last credit and trigger RNR.
  --r.credits;
  int b = free_bounce_.back();
  free_bounce_.pop_back();
  return b;
}

void NetChannel::post_eager(Peer& c, int peer_rank, int rail, int bounce, const MsgHeader& hdr,
                            const void* payload, std::int64_t bytes) {
  Rail& r = c.rails.at(static_cast<std::size_t>(rail));
  BounceBuf& bb = bounce_[static_cast<std::size_t>(bounce)];
  write_header(bb.data.data(), hdr);
  if (bytes > 0) std::memcpy(bb.data.data() + kHeaderBytes, payload, static_cast<std::size_t>(bytes));

  // The caller has already reserved the credit (acquire_bounce_and_credit
  // or send_ctl); post_eager only performs the copy and the post.
  auto* ctx = new SendCtx{SendCtx::Kind::Bounce, peer_rank, rail, bounce, 0,
                          static_cast<std::int64_t>(kHeaderBytes) + bytes};
  r.outstanding += static_cast<std::int64_t>(kHeaderBytes) + bytes;
  if (r.credits < 0) throw std::logic_error("post_eager: credit underflow");
  r.qp->post_send({.wr_id = reinterpret_cast<std::uint64_t>(ctx),
                   .opcode = ib::Opcode::Send,
                   .src = bb.data.data(),
                   .length = static_cast<std::uint32_t>(kHeaderBytes + bytes),
                   .lkey = bb.lkey[r.hca_index]});
}

void NetChannel::send(int peer_rank, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                      int ctx, const Request& req) {
  const int vci = req->vci;
  ensure_vci(peer_rank, vci);
  Peer& c = peer(peer_rank);
  const Config& cfg = host_.config();
  const int width = cfg.rails();  // rails per VCI: the schedulable slice
  const int base = vci * width;
  int rail;
  if (req->lane >= 0) {
    // Multi-lane collective transfer: pinned to its lane's rail, bypassing
    // the policy (and leaving the policy's cursor undisturbed).
    rail = base + req->lane % width;
  } else {
    Schedule s = choose_schedule(cfg.policy, kind, bytes, width, cfg.stripe_threshold,
                                 lane_cursor(c, vci));
    rail = base + (s.stripe ? 0 : s.rail);  // eager never stripes
    if (cfg.policy == Policy::Adaptive) {
      rail = base + (fault_enabled_
                         ? least_loaded_rail(rail_outstanding(peer_rank, vci),
                                             rail_up(peer_rank, vci))
                         : least_loaded_rail(rail_outstanding(peer_rank, vci)));
    }
  }
  if (fault_enabled_) {
    // Failover: never start an eager send on a rail known to be down.  The
    // schedule above keeps its cursor arithmetic (so fault-free behaviour is
    // untouched); the dead-rail remap happens after the fact.
    wait_any_rail_up(peer_rank, vci);
    rail = remap_live(c, rail);
  }

  int bounce = acquire_bounce_and_credit(c, rail);
  host_.process().compute(cfg.post_cpu +
                          host_.memcpy_time(static_cast<std::int64_t>(kHeaderBytes) + bytes));

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.vci = static_cast<std::uint8_t>(vci);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = host_.matcher().next_send_seq(peer_rank, ctx, vci);
  hdr.size = static_cast<std::uint64_t>(bytes);
  post_eager(c, peer_rank, rail, bounce, hdr, buf, bytes);

  eager_sent_.inc();
  bytes_sent_.add(static_cast<std::uint64_t>(bytes));

  // Eager sends are buffered: the user buffer is reusable immediately.
  req->done = true;
  req->completed_at = host_.simulator().now();
}

bool NetChannel::try_send(int peer_rank, CommKind kind, const void* buf, std::int64_t bytes,
                          int tag, int ctx, const Request& req) {
  // Event-context twin of send(): used to flush sends queued behind a lazy
  // handshake.  It must not block, so instead of waiting on credits it
  // reports failure and leaves the message queued (a later CQE re-flushes).
  const int vci = req->vci;
  ensure_vci(peer_rank, vci);
  Peer& c = peer(peer_rank);
  const Config& cfg = host_.config();
  const int width = cfg.rails();
  const int base = vci * width;
  RailCursor& cur = lane_cursor(c, vci);
  const RailCursor saved = cur;
  int rail;
  if (req->lane >= 0) {
    rail = base + req->lane % width;
  } else {
    Schedule s = choose_schedule(cfg.policy, kind, bytes, width, cfg.stripe_threshold, cur);
    rail = base + (s.stripe ? 0 : s.rail);  // eager never stripes
    if (cfg.policy == Policy::Adaptive) {
      rail = base + (fault_enabled_
                         ? least_loaded_rail(rail_outstanding(peer_rank, vci),
                                             rail_up(peer_rank, vci))
                         : least_loaded_rail(rail_outstanding(peer_rank, vci)));
    }
  }
  if (fault_enabled_) {
    bool any_up = false;
    for (int i = base; i < base + width; ++i) {
      any_up = any_up || c.rails[static_cast<std::size_t>(i)].up;
    }
    if (!any_up) {
      cur = saved;
      return false;
    }
    rail = remap_live(c, rail);
  }
  Rail& r = c.rails.at(static_cast<std::size_t>(rail));
  if (r.credits <= 0 || free_bounce_.empty()) {
    credit_stalls_.inc();
    cur = saved;
    return false;
  }
  --r.credits;
  const int bounce = free_bounce_.back();
  free_bounce_.pop_back();

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.vci = static_cast<std::uint8_t>(vci);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  // Sequence numbers are claimed here, at dispatch, so queued sends to one
  // peer keep MPI ordering no matter when their CPU events run.
  hdr.seq = host_.matcher().next_send_seq(peer_rank, ctx, vci);
  hdr.size = static_cast<std::uint64_t>(bytes);

  host_.schedule_cpu_vci(
      vci, cfg.post_cpu + host_.memcpy_time(static_cast<std::int64_t>(kHeaderBytes) + bytes),
      [this, peer_rank, rail, bounce, hdr, buf, bytes, req] {
        post_eager(peer(peer_rank), peer_rank, rail, bounce, hdr, buf, bytes);
        eager_sent_.inc();
        bytes_sent_.add(static_cast<std::uint64_t>(bytes));
        host_.complete_request(req);
      });
  return true;
}

// ---------------------------------------------------------------- controls

void NetChannel::send_ctl_blocking(int peer_rank, int rail, const MsgHeader& hdr,
                                   const CtsRkeys* rkeys) {
  ensure_vci(peer_rank, hdr.vci);
  Peer& c = peer(peer_rank);
  if (fault_enabled_) {
    wait_any_rail_up(peer_rank, hdr.vci);
    rail = remap_live(c, rail);
  }
  int bounce = acquire_bounce_and_credit(c, rail);
  host_.process().compute(host_.config().post_cpu);
  post_eager(c, peer_rank, rail, bounce, hdr, rkeys,
             rkeys != nullptr ? static_cast<std::int64_t>(sizeof(CtsRkeys)) : 0);
}

int NetChannel::probe_ctl_rail(int peer_rank, int rail) const {
  // Event-context probe for the non-blocking RTS path: returns a rail that
  // can take a control message right now, or -1 (leave the send queued).
  const Peer& c = peer(peer_rank);
  if (free_bounce_.empty()) return -1;
  if (fault_enabled_) {
    bool any_up = false;
    for (const Rail& r : c.rails) any_up = any_up || r.up;
    if (!any_up) return -1;
    rail = remap_live(c, rail);
  }
  if (c.rails.at(static_cast<std::size_t>(rail)).credits <= 0) return -1;
  return rail;
}

void NetChannel::post_ctl_evt(int peer_rank, int rail, const MsgHeader& hdr,
                              const CtsRkeys* rkeys) {
  // Event-context twin of send_ctl_blocking(); the caller has validated the
  // rail with probe_ctl_rail, so the reservation here cannot fail.
  Peer& c = peer(peer_rank);
  --c.rails.at(static_cast<std::size_t>(rail)).credits;
  const int bounce = free_bounce_.back();
  free_bounce_.pop_back();
  const bool with_rkeys = rkeys != nullptr;
  const CtsRkeys rk = with_rkeys ? *rkeys : CtsRkeys{};
  host_.schedule_cpu_vci(hdr.vci, host_.config().post_cpu,
                         [this, peer_rank, rail, bounce, hdr, with_rkeys, rk] {
    post_eager(peer(peer_rank), peer_rank, rail, bounce, hdr, with_rkeys ? &rk : nullptr,
               with_rkeys ? static_cast<std::int64_t>(sizeof(CtsRkeys)) : 0);
  });
}

void NetChannel::send_ctl(int peer_rank, const MsgHeader& hdr, const CtsRkeys& rkeys) {
  const int vci = hdr.vci;
  ensure_vci(peer_rank, vci);
  Peer& c = peer(peer_rank);
  // Pick the first rail of the message's VCI slice (starting at the lane's
  // cursor) with a credit.  In pipeline mode control traffic rotates its own
  // cursor; the legacy protocol scans from the data cursor without advancing
  // it (historical placement, kept for bit-identical legacy figures).
  const bool own_cursor = host_.config().rndv_pipeline;
  const int n = host_.config().rails();
  const int base = vci * n;
  const int start = own_cursor ? lane_ctl(c, vci).next : lane_cursor(c, vci).next;
  int rail = -1;
  for (int i = 0; i < n; ++i) {
    int cand = base + (start + i) % n;
    if (c.rails[static_cast<std::size_t>(cand)].credits > 0 &&
        (!fault_enabled_ || c.rails[static_cast<std::size_t>(cand)].up)) {
      rail = cand;
      break;
    }
  }
  if (rail < 0 || free_bounce_.empty()) {
    lane_pending(c, vci).emplace_back(hdr, rkeys);
    return;
  }
  if (own_cursor) lane_ctl(c, vci).next = (rail - base + 1) % n;
  --c.rails.at(static_cast<std::size_t>(rail)).credits;  // reserve
  int bounce = free_bounce_.back();
  free_bounce_.pop_back();
  // CTS always carries the receiver rkeys; a ReadRts RTS carries the
  // *sender's* rkeys the same way (pending-queue entries reuse the pair).
  const bool carries_rkeys =
      hdr.type == MsgType::Cts ||
      (hdr.type == MsgType::Rts && hdr.proto == static_cast<std::uint8_t>(RndvProto::ReadRts));
  const std::int64_t payload_bytes = carries_rkeys ? sizeof(CtsRkeys) : 0;
  post_eager(c, peer_rank, rail, bounce, hdr, &rkeys, payload_bytes);
  ctl_sent_.inc();
}

void NetChannel::flush_pending_ctl(int peer_rank) {
  Peer& c = peer(peer_rank);
  for (int vci = 0; vci < std::max(1, c.wired_vcis); ++vci) {
    auto& pending = lane_pending(c, vci);
    while (!pending.empty()) {
      auto [hdr, rkeys] = pending.front();
      const std::size_t before = pending.size();
      pending.pop_front();
      send_ctl(peer_rank, hdr, rkeys);
      if (pending.size() >= before) break;  // this lane is still stuck
    }
  }
}

// ------------------------------------------------------- rendezvous writes

void NetChannel::post_write_impl(Peer& c, int peer_rank, const RndvStripe& st, bool deferred) {
  Rail& r = c.rails.at(static_cast<std::size_t>(st.rail));
  auto* sctx = new SendCtx{SendCtx::Kind::RndvWrite, peer_rank, st.rail, -1, st.req_id, st.len};
  sctx->attempts = st.attempts;
  // Keep the full stripe descriptor only under fault injection, where an
  // error CQE hands it back to the Rendezvous module for re-planning.
  if (fault_enabled_) inflight_stripe_.emplace(sctx, st);
  r.outstanding += st.len;
  ib::SendWr wr;
  wr.wr_id = reinterpret_cast<std::uint64_t>(sctx);
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.src = st.src;
  wr.length = static_cast<std::uint32_t>(st.len);
  wr.lkey = st.len > 0 ? st.lkeys[static_cast<std::size_t>(r.hca_index)] : 0;
  wr.remote_addr = st.raddr;
  wr.rkey = st.rkeys.rkey[r.hca_index];
  if (deferred) {
    r.qp->post_send_deferred(wr);
  } else {
    r.qp->post_send(wr);
  }
}

void NetChannel::post_write(int peer_rank, const RndvStripe& st) {
  post_write_impl(peer(peer_rank), peer_rank, st, /*deferred=*/false);
}

void NetChannel::post_write_batch(int peer_rank, const std::vector<RndvStripe>& sts) {
  Peer& c = peer(peer_rank);
  for (const RndvStripe& st : sts) post_write_impl(c, peer_rank, st, /*deferred=*/true);
  // One doorbell per involved rail, in stripe order (a rail appearing twice
  // still rings once — the whole point of list posting).
  for (const RndvStripe& st : sts) {
    c.rails.at(static_cast<std::size_t>(st.rail)).qp->ring_doorbell();
  }
}

// -------------------------------------------------------- rendezvous reads

void NetChannel::post_read_impl(Peer& c, int peer_rank, const RndvStripe& st, bool deferred) {
  Rail& r = c.rails.at(static_cast<std::size_t>(st.rail));
  auto* sctx = new SendCtx{SendCtx::Kind::RndvRead, peer_rank, st.rail, -1, st.req_id, st.len};
  sctx->attempts = st.attempts;
  if (fault_enabled_) inflight_stripe_.emplace(sctx, st);
  r.outstanding += st.len;
  ib::SendWr wr;
  wr.wr_id = reinterpret_cast<std::uint64_t>(sctx);
  wr.opcode = ib::Opcode::RdmaRead;
  // Read convention (mirrors ibv_send_wr): src/lkey name the LOCAL
  // destination slice, remote_addr/rkey the remote source.
  wr.src = st.src;
  wr.length = static_cast<std::uint32_t>(st.len);
  wr.lkey = st.len > 0 ? st.lkeys[static_cast<std::size_t>(r.hca_index)] : 0;
  wr.remote_addr = st.raddr;
  wr.rkey = st.len > 0 ? st.rkeys.rkey[r.hca_index] : 0;
  if (deferred) {
    r.qp->post_send_deferred(wr);
  } else {
    r.qp->post_send(wr);
  }
}

void NetChannel::post_read(int peer_rank, const RndvStripe& st) {
  post_read_impl(peer(peer_rank), peer_rank, st, /*deferred=*/false);
}

void NetChannel::post_read_batch(int peer_rank, const std::vector<RndvStripe>& sts) {
  Peer& c = peer(peer_rank);
  for (const RndvStripe& st : sts) post_read_impl(c, peer_rank, st, /*deferred=*/true);
  for (const RndvStripe& st : sts) {
    c.rails.at(static_cast<std::size_t>(st.rail)).qp->ring_doorbell();
  }
}

// ---------------------------------------------------- rendezvous write-imm

void NetChannel::post_write_imm(int peer_rank, const RndvStripe& st, std::uint32_t imm) {
  Peer& c = peer(peer_rank);
  // The immediate consumes a receive WQE at the responder, so the post takes
  // an eager credit like any channel-semantics message.  Scan the stripe's
  // VCI slice from its planned rail; with no credit anywhere the post parks
  // until a CQE or a rail recovery returns one.
  const int n = host_.config().rails();
  const int base = (st.rail / n) * n;
  int rail = -1;
  for (int i = 0; i < n; ++i) {
    const int cand = base + (st.rail - base + i) % n;
    const Rail& r = c.rails[static_cast<std::size_t>(cand)];
    if (r.credits > 0 && (!fault_enabled_ || r.up)) {
      rail = cand;
      break;
    }
  }
  if (rail < 0) {
    pending_imm_.push_back({peer_rank, st, imm});
    return;
  }
  Rail& r = c.rails.at(static_cast<std::size_t>(rail));
  --r.credits;  // reserve; returns with this WQE's CQE
  RndvStripe actual = st;
  actual.rail = rail;
  auto* sctx = new SendCtx{SendCtx::Kind::RndvImm, peer_rank, rail, -1, st.req_id, st.len};
  sctx->attempts = st.attempts;
  if (fault_enabled_) inflight_stripe_.emplace(sctx, actual);
  r.outstanding += st.len;
  ib::SendWr wr;
  wr.wr_id = reinterpret_cast<std::uint64_t>(sctx);
  wr.opcode = ib::Opcode::RdmaWriteWithImm;
  wr.src = st.src;
  wr.length = static_cast<std::uint32_t>(st.len);
  wr.lkey = st.len > 0 ? st.lkeys[static_cast<std::size_t>(r.hca_index)] : 0;
  wr.remote_addr = st.raddr;
  wr.rkey = st.len > 0 ? st.rkeys.rkey[r.hca_index] : 0;
  wr.imm_data = imm;
  r.qp->post_send(wr);
}

void NetChannel::flush_pending_imm() {
  std::vector<PendingImm> work;
  work.swap(pending_imm_);
  for (const PendingImm& p : work) post_write_imm(p.peer, p.st, p.imm);
}

// ------------------------------------------------------- fast-path posting

void NetChannel::post_fp_write(int peer_rank, const std::byte* src, std::uint32_t len,
                               ib::LKey lkey, std::uint64_t raddr, ib::RKey rkey,
                               std::function<void()> delivered_cb) {
  Peer& c = peer(peer_rank);
  Rail& r = c.rails.front();  // the fast path rides rail 0
  auto* sctx = new SendCtx{SendCtx::Kind::FpWrite, peer_rank, 0, -1, 0,
                           static_cast<std::int64_t>(len)};
  r.outstanding += static_cast<std::int64_t>(len);
  ib::SendWr wr;
  wr.wr_id = reinterpret_cast<std::uint64_t>(sctx);
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.src = src;
  wr.length = len;
  wr.lkey = lkey;
  wr.remote_addr = raddr;
  wr.rkey = rkey;
  wr.delivered_cb = std::move(delivered_cb);
  r.qp->post_send(wr);
}

// ------------------------------------------------------------ inbound path

void NetChannel::on_send_cqe(const ib::Wc& wc) {
  auto* sctx = reinterpret_cast<SendCtx*>(wc.wr_id);
  // A failure verdict rides the side set rather than the lambda capture:
  // [this, sctx] fills std::function's inline buffer exactly, so adding a
  // bool would heap-allocate on every CQE of the fault-free path.
  if (wc.status != ib::WcStatus::Success) failed_send_.insert(sctx);
  // Polling and processing a completion costs host CPU, serialized with all
  // other protocol work of this VCI — per-stripe CQEs are a real per-stripe
  // tax ("receipt of multiple acknowledgments", paper §4.3).  The rail index
  // identifies the owning VCI (rails are VCI-major), so each VCI's CQ slice
  // is polled and processed by its own progress server.
  host_.schedule_cpu_vci(sctx->rail / host_.config().rails(), host_.config().cqe_sw,
                         [this, sctx] {
    const bool failed = fault_enabled_ && failed_send_.erase(sctx) != 0;
    Peer& c = peer(sctx->peer);
    c.rails.at(static_cast<std::size_t>(sctx->rail)).outstanding -= sctx->bytes;
    if (failed) {
      send_errors_.inc();
      mark_rail_down(sctx->peer, sctx->rail);
    }
    switch (sctx->kind) {
      case SendCtx::Kind::Bounce: {
        // The credit always returns (flushed WQEs consumed no receiver slot,
        // and a dropped message's slot survives for the replay).
        ++c.rails.at(static_cast<std::size_t>(sctx->rail)).credits;
        if (failed) {
          // The bounce buffer still holds the wire image: replay it on a
          // live rail rather than recycling it.
          eager_retries_.inc();
          retry_eager(sctx->peer, sctx->bounce, sctx->bytes, sctx->attempts + 1);
        } else {
          free_bounce_.push_back(sctx->bounce);
        }
        if (fault_enabled_ && !pending_retry_.empty()) flush_pending_retries();
        if (!pending_imm_.empty()) flush_pending_imm();
        flush_pending_ctl(sctx->peer);
        host_.on_eager_resources_freed(sctx->peer);
        host_.progress().notify_all();
        break;
      }
      case SendCtx::Kind::FpWrite:
        if (failed) {
          throw std::runtime_error("NetChannel: fast-path write failed (fast path is "
                                   "not fault tolerant; disable it under fault injection)");
        }
        break;  // staging slot reuse is gated by the fast-path credit
      case SendCtx::Kind::RndvWrite: {
        if (fault_enabled_) {
          auto it = inflight_stripe_.find(sctx);
          const RndvStripe st = it->second;
          inflight_stripe_.erase(it);
          if (failed) {
            host_.on_rndv_write_failed(sctx->peer, st);
            break;
          }
        }
        host_.on_rndv_write_done(sctx->peer, sctx->req_id);
        break;
      }
      case SendCtx::Kind::RndvRead: {
        if (fault_enabled_) {
          auto it = inflight_stripe_.find(sctx);
          const RndvStripe st = it->second;
          inflight_stripe_.erase(it);
          if (failed) {
            host_.on_rndv_read_failed(sctx->peer, st);
            break;
          }
        }
        host_.on_rndv_read_done(sctx->peer, sctx->req_id);
        break;
      }
      case SendCtx::Kind::RndvImm: {
        // The immediate consumed a receive slot at the responder; its credit
        // returns here like any channel-semantics send, unblocking queued
        // control messages and parked imm posts.
        ++c.rails.at(static_cast<std::size_t>(sctx->rail)).credits;
        RndvStripe st;
        if (fault_enabled_) {
          auto it = inflight_stripe_.find(sctx);
          st = it->second;
          inflight_stripe_.erase(it);
        }
        if (!pending_imm_.empty()) flush_pending_imm();
        flush_pending_ctl(sctx->peer);
        host_.progress().notify_all();
        if (fault_enabled_ && failed) {
          host_.on_rndv_write_failed(sctx->peer, st);
          break;
        }
        host_.on_rndv_write_done(sctx->peer, sctx->req_id);
        break;
      }
    }
    delete sctx;
  });
}

void NetChannel::on_recv_cqe(const ib::Wc& wc) {
  auto* slot = reinterpret_cast<RecvSlot*>(wc.wr_id);
  if (wc.status != ib::WcStatus::Success) {
    recv_flushes_.inc();
    auto it = qp_rail_.find(wc.qp_num);
    if (slot->srq != nullptr) {
      // Pooled slot flushed through a dying QP: the SRQ itself is healthy, so
      // the slot goes straight back to the shared pool while the rail parks.
      slot->srq->post({.wr_id = wc.wr_id, .dst = slot->data, .length = slot->len,
                       .lkey = slot->lkey});
      if (it != qp_rail_.end()) {
        const auto [peer_rank, rail] = it->second;
        mark_rail_down(peer_rank, rail);
      }
      return;
    }
    // Flushed per-QP receive WQE: the buffer holds no message.  Park the slot
    // on its rail; it is reposted when the rail recovers.
    if (it == qp_rail_.end()) {
      throw std::logic_error("NetChannel: flush CQE from unknown QP");
    }
    const auto [peer_rank, rail] = it->second;
    peers_.at(peer_rank).rails.at(static_cast<std::size_t>(rail)).parked.push_back(slot);
    mark_rail_down(peer_rank, rail);
    return;
  }
  if (wc.has_imm) {
    // Write-with-imm rendezvous completion: the payload landed directly in
    // the matched user buffer, this slot was only consumed for the immediate
    // — there is no header to parse.  The slot recycles below as usual.
    host_.on_rndv_imm(wc.imm_data);
  } else {
    MsgHeader hdr = read_header(slot->data);
    const std::byte* payload = slot->data + kHeaderBytes;

    switch (hdr.type) {
      case MsgType::Eager:
      case MsgType::Rts: {
        std::vector<std::byte> copy;
        if (hdr.type == MsgType::Eager && hdr.size > 0) {
          copy.assign(payload, payload + hdr.size);
        } else if (hdr.type == MsgType::Rts &&
                   hdr.proto == static_cast<std::uint8_t>(RndvProto::ReadRts)) {
          // A ReadRts RTS carries the sender-side rkeys; thread them through
          // the matcher so accept() can post the reads.
          copy.assign(payload, payload + sizeof(CtsRkeys));
        }
        host_.ingress(hdr.src_rank, hdr, std::move(copy));
        break;
      }
      case MsgType::Cts: {
        CtsRkeys rkeys;
        std::memcpy(&rkeys, payload, sizeof(rkeys));
        host_.on_ctl(hdr, rkeys);
        break;
      }
      case MsgType::Fin:
      case MsgType::Done: {
        host_.on_ctl(hdr, CtsRkeys{});
        break;
      }
    }
  }

  if (slot->srq != nullptr && host_.config().srq_limit > 0) {
    // Drained pooled slot: hold it for the batched low-watermark repost
    // (verbs srq_limit) instead of reposting per CQE.
    HcaPool& pool = pools_.at(static_cast<std::size_t>(slot->hca));
    pool.drained.push_back(slot);
    if (pool.want_replenish) try_replenish(slot->hca);
    return;
  }
  // Recycle the receive slot immediately (MVAPICH reposts vbufs eagerly; the
  // sender's credit only returns with its CQE, which is always later).
  const ib::RecvWr repost{.wr_id = wc.wr_id,
                          .dst = slot->data,
                          .length = slot->len,
                          .lkey = slot->lkey};
  if (slot->srq != nullptr) {
    slot->srq->post(repost);
  } else {
    slot->qp->post_recv(repost);
  }
}

void NetChannel::on_srq_limit(int hca_index) {
  pools_.at(static_cast<std::size_t>(hca_index)).want_replenish = true;
  try_replenish(hca_index);
}

void NetChannel::try_replenish(int hca_index) {
  HcaPool& pool = pools_.at(static_cast<std::size_t>(hca_index));
  if (!pool.want_replenish || pool.drained.empty()) return;
  pool.want_replenish = false;
  std::vector<RecvSlot*> batch;
  batch.swap(pool.drained);
  for (RecvSlot* slot : batch) {
    pool.srq->post({.wr_id = reinterpret_cast<std::uint64_t>(slot),
                    .dst = slot->data,
                    .length = slot->len,
                    .lkey = slot->lkey});
  }
  srq_replenishes_.inc();
  const int limit = host_.config().srq_limit;
  pool.srq->arm_limit(limit);
  // Stay hungry if the batch could not refill past the watermark — the next
  // drained CQE must repost without waiting for a limit event that may never
  // fire (no pops happen while every remaining message sits stalled).
  if (pool.srq->pending() < static_cast<std::size_t>(limit)) pool.want_replenish = true;
}

// ---------------------------------------------------------------- failover

namespace {
/// Bound on consecutive still-down recovery probes; a link that flaps for
/// longer than polls × rail_recovery is treated as permanently dead.
constexpr int kMaxRecoveryPolls = 1000;
}  // namespace

void NetChannel::mark_rail_down(int peer_rank, int rail) {
  Rail& r = peer(peer_rank).rails.at(static_cast<std::size_t>(rail));
  if (r.up) {
    r.up = false;
    rail_down_.inc();
  }
  schedule_recovery(peer_rank, rail);
}

void NetChannel::schedule_recovery(int peer_rank, int rail) {
  Rail& r = peer(peer_rank).rails.at(static_cast<std::size_t>(rail));
  if (r.recovery_scheduled) return;
  r.recovery_scheduled = true;
  sim::Simulator& sim = host_.simulator();
  sim.at(sim.now() + host_.config().fault.rail_recovery,
         [this, peer_rank, rail] { try_recover_rail(peer_rank, rail); });
}

void NetChannel::try_recover_rail(int peer_rank, int rail) {
  Rail& r = peer(peer_rank).rails.at(static_cast<std::size_t>(rail));
  r.recovery_scheduled = false;
  if (r.qp->state() != ib::QpState::Ready) {
    // Link still down (the FaultPlan resets the QP pair when it comes back).
    if (++r.recovery_polls <= kMaxRecoveryPolls) schedule_recovery(peer_rank, rail);
    return;
  }
  r.recovery_polls = 0;
  if (r.up) return;
  r.up = true;
  rail_recovered_.inc();
  for (RecvSlot* slot : r.parked) {
    const ib::RecvWr wr{.wr_id = reinterpret_cast<std::uint64_t>(slot),
                        .dst = slot->data,
                        .length = slot->len,
                        .lkey = slot->lkey};
    if (slot->srq != nullptr) {
      slot->srq->post(wr);
    } else {
      slot->qp->post_recv(wr);
    }
  }
  r.parked.clear();
  // Messages that stalled on a dry pool while this QP was in error are
  // parked inside the SRQ; the recovered QP will not see another post unless
  // someone kicks the stall queue.
  for (HcaPool& pool : pools_) pool.srq->kick();
  flush_pending_retries();
  if (!pending_imm_.empty()) flush_pending_imm();
  flush_pending_ctl(peer_rank);
  host_.on_eager_resources_freed(peer_rank);
  host_.progress().notify_all();
}

void NetChannel::retry_eager(int peer_rank, int bounce, std::int64_t wire_bytes, int attempts) {
  if (attempts > host_.config().fault.eager_retry_limit) {
    throw std::runtime_error("NetChannel: eager retry limit exceeded to rank " +
                             std::to_string(peer_rank));
  }
  Peer& c = peer(peer_rank);
  const int n = static_cast<int>(c.rails.size());
  int rail = -1;
  for (int i = 0; i < n; ++i) {
    const int cand = (c.cursor.next + i) % n;
    const Rail& r = c.rails[static_cast<std::size_t>(cand)];
    if (r.up && r.credits > 0) {
      rail = cand;
      break;
    }
  }
  if (rail < 0) {
    // No live rail with credit: park until one recovers or a credit returns.
    pending_retry_.push_back({peer_rank, bounce, wire_bytes, attempts});
    return;
  }
  --c.rails.at(static_cast<std::size_t>(rail)).credits;
  post_bounce_raw(c, peer_rank, rail, bounce, wire_bytes, attempts);
}

void NetChannel::flush_pending_retries() {
  std::vector<PendingRetry> work;
  work.swap(pending_retry_);
  for (const PendingRetry& p : work) retry_eager(p.peer, p.bounce, p.bytes, p.attempts);
}

void NetChannel::post_bounce_raw(Peer& c, int peer_rank, int rail, int bounce,
                                 std::int64_t wire_bytes, int attempts) {
  Rail& r = c.rails.at(static_cast<std::size_t>(rail));
  BounceBuf& bb = bounce_[static_cast<std::size_t>(bounce)];
  auto* ctx = new SendCtx{SendCtx::Kind::Bounce, peer_rank, rail, bounce, 0, wire_bytes};
  ctx->attempts = attempts;
  r.outstanding += wire_bytes;
  r.qp->post_send({.wr_id = reinterpret_cast<std::uint64_t>(ctx),
                   .opcode = ib::Opcode::Send,
                   .src = bb.data.data(),
                   .length = static_cast<std::uint32_t>(wire_bytes),
                   .lkey = bb.lkey[r.hca_index]});
}

}  // namespace ib12x::mvx
