// On-the-wire message formats of the MPI substrate.  Every eager payload and
// every control message starts with a MsgHeader; rendezvous data itself moves
// by RDMA write and carries no header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ib12x::mvx {

enum class MsgType : std::uint8_t {
  Eager,  ///< header + payload, matched like a normal message
  Rts,    ///< rendezvous request-to-send (matched like a message; ReadRts
          ///< variant carries the sender-side rkeys as payload)
  Cts,    ///< clear-to-send: receiver buffer {addr, rkey} (control, unordered)
  Fin,    ///< rendezvous finished (control, unordered)
  Done,   ///< read-rendezvous finished, receiver → sender (control, unordered)
};

/// Selectable rendezvous protocol, carried in the RTS so the receiver obeys
/// the *sender's* choice (the two sides may be configured differently, and
/// the adaptive policy decides per message).  Values are wire format.
enum class RndvProto : std::uint8_t {
  WriteRtsCts = 0,  ///< four-step RTS / CTS / RDMA-write / FIN (the paper's)
  ReadRts = 1,      ///< three-step: RTS carries rkeys, receiver RDMA-reads, Done
  WriteImm = 2,     ///< three-step: RTS / CTS / write-with-imm (FIN elided)
};

struct MsgHeader {
  MsgType type = MsgType::Eager;
  std::uint8_t kind = 0;         ///< CommKind recorded by the communication marker
  std::uint8_t vci = 0;          ///< virtual communication interface (seq-space slice)
  std::uint8_t proto = 0;        ///< Rts: RndvProto the sender chose (wire value)
  std::int32_t src_rank = -1;
  std::int32_t tag = 0;
  std::int32_t ctx = 0;          ///< communicator context id
  std::uint32_t seq = 0;         ///< per (pair, ctx, vci) ordering number (Eager/Rts only)
  std::uint64_t size = 0;        ///< payload bytes (Eager) / full message size (Rts)
                                 ///< / chunk bytes (pipelined Cts)
  std::uint64_t sender_cookie = 0;
  std::uint64_t receiver_cookie = 0;
  std::uint64_t raddr = 0;       ///< Cts: receiver buffer address (chunk base when pipelined)
                                 ///< / ReadRts: sender buffer address
  std::uint32_t rkey = 0;        ///< Cts: receiver buffer rkey
  std::uint32_t chunk = 0;       ///< pipelined Cts: chunk index within the message
                                 ///< / ReadRts: forced stripe width (0 = receiver's choice)
};

inline constexpr std::size_t kHeaderBytes = sizeof(MsgHeader);

// The chunk and vci fields must live in what used to be padding: growing the
// header would change eager slot sizes and memcpy charges, breaking
// byte-identity of the legacy (rndv_pipeline=off, vci.count=1) protocol.
static_assert(sizeof(MsgHeader) == 64, "MsgHeader grew: legacy wire timing would change");

/// Hard cap on HCAs per node the wire format supports (CTS carries one rkey
/// per HCA domain).
inline constexpr int kMaxHcas = 4;

/// CTS payload appended after MsgHeader: rkeys for every HCA domain of the
/// receiving node.
struct CtsRkeys {
  std::uint32_t rkey[kMaxHcas] = {0, 0, 0, 0};
};

inline void write_header(std::byte* dst, const MsgHeader& h) {
  std::memcpy(dst, &h, sizeof(h));
}

inline MsgHeader read_header(const std::byte* src) {
  MsgHeader h;
  std::memcpy(&h, src, sizeof(h));
  return h;
}

}  // namespace ib12x::mvx
