#include "mvx/rendezvous.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mvx/matcher.hpp"
#include "mvx/net_channel.hpp"
#include "sim/log.hpp"

namespace ib12x::mvx {

namespace {

/// Stripe-write req_ids carry the chunk index in the top 16 bits so the
/// completion path can retire pipelined chunks individually; legacy writes
/// use the bare cookie (cookies are sequential and never reach 2^48).
constexpr std::uint64_t kCookieMask = (std::uint64_t{1} << 48) - 1;

std::uint64_t chunk_req_id(std::uint64_t cookie, std::uint32_t chunk) {
  return cookie | (static_cast<std::uint64_t>(chunk) << 48);
}

std::int64_t chunk_bytes(const Config& cfg, std::int64_t total) {
  return cfg.rndv_pipeline_chunk > 0 ? cfg.rndv_pipeline_chunk : total;
}

std::uint32_t chunk_count(const Config& cfg, std::int64_t total) {
  if (total <= 0) return 1;  // zero-byte rendezvous still needs one CTS
  const std::int64_t c = chunk_bytes(cfg, total);
  return static_cast<std::uint32_t>((total + c - 1) / c);
}

}  // namespace

Rendezvous::Rendezvous(ChannelHost& host, NetChannel& net)
    : host_(host),
      net_(net),
      rts_sent_(host.telemetry().counter("rndv.rts_sent")),
      bytes_sent_(host.telemetry().counter("rndv.bytes_sent")),
      stripes_posted_(host.telemetry().counter("rndv.stripes_posted")),
      reg_hits_(host.telemetry().counter("rndv.reg_cache_hits")),
      reg_misses_(host.telemetry().counter("rndv.reg_cache_misses")),
      reg_evictions_(host.telemetry().counter("rndv.reg_cache_evictions")),
      cts_chunks_(host.telemetry().counter("rndv.cts_chunks")),
      pipeline_depth_(host.telemetry().counter("rndv.pipeline_depth")) {
  const Config& cfg = host.config();
  PinCache::Options opts;
  opts.interval = cfg.rndv_pipeline;  // legacy mode keeps exact-pointer semantics
  opts.capacity = cfg.reg_cache_capacity;
  opts.hit_cpu = cfg.reg_cache_hit;
  opts.miss_cpu = cfg.reg_cache_miss;
  opts.page_cpu = cfg.reg_page_cpu;
  pin_cache_ = std::make_unique<PinCache>(net.hcas(), opts, reg_hits_, reg_misses_,
                                          reg_evictions_);
}

Rendezvous::~Rendezvous() = default;

// ----------------------------------------------------------------- cookies

std::uint64_t Rendezvous::new_cookie(const Request& req) {
  std::uint64_t id = next_cookie_++;
  outstanding_[id] = req;
  return id;
}

Request Rendezvous::take_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Rendezvous: unknown request cookie " + std::to_string(id));
  }
  Request r = it->second;
  outstanding_.erase(it);
  return r;
}

Request Rendezvous::peek_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Rendezvous: unknown request cookie " + std::to_string(id));
  }
  return it->second;
}

// ---------------------------------------------------------------- protocol

void Rendezvous::send_rts(int peer, CommKind kind, const void* /*buf*/, std::int64_t bytes,
                          int tag, int ctx, const Request& req) {
  const Config& cfg = host_.config();
  // Control messages round-robin over rails; the data schedule is decided at
  // CTS time by the marker-driven policy.
  Schedule s;
  if (cfg.rndv_pipeline) {
    // Control traffic owns its own per-peer cursor so RTSes rotate over the
    // rails instead of pinning to wherever the data cursor happens to sit.
    s = choose_schedule(Policy::RoundRobin, kind, 0, net_.nrails(peer), cfg.stripe_threshold,
                        net_.ctl_cursor(peer));
  } else {
    RailCursor ctl_cursor = net_.cursor(peer);  // do not disturb the data cursor
    s = choose_schedule(Policy::RoundRobin, kind, 0, net_.nrails(peer), cfg.stripe_threshold,
                        ctl_cursor);
  }

  MsgHeader hdr;
  hdr.type = MsgType::Rts;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = host_.matcher().next_send_seq(peer, ctx);
  hdr.size = static_cast<std::uint64_t>(bytes);
  hdr.sender_cookie = new_cookie(req);
  if (cfg.rndv_pipeline) {
    send_progress_[hdr.sender_cookie].chunks_total = chunk_count(cfg, bytes);
  }
  net_.send_ctl_blocking(peer, s.rail, hdr);
  rts_sent_.inc();
  bytes_sent_.add(static_cast<std::uint64_t>(bytes));
}

void Rendezvous::accept(const MsgHeader& rts, const Request& req) {
  req->status = {rts.src_rank, rts.tag, static_cast<std::int64_t>(rts.size)};
  req->peer = rts.src_rank;

  const Config& cfg = host_.config();
  const int peer = rts.src_rank;
  const std::int64_t total = static_cast<std::int64_t>(rts.size);

  if (!cfg.rndv_pipeline) {
    // One-shot protocol: pin the whole target buffer, then a single CTS.
    sim::Time cost = 0;
    CtsRkeys rkeys;
    const std::uint64_t rcookie = new_cookie(req);
    if (total > 0) {
      PinCache::Region* reg = pin_cache_->acquire(req->recv_buf, total, &cost);
      recv_progress_[rcookie].pins.push_back(reg);
      for (std::size_t h = 0; h < net_.hcas().size(); ++h) rkeys.rkey[h] = reg->mr[h].rkey;
    }

    MsgHeader cts;
    cts.type = MsgType::Cts;
    cts.src_rank = host_.rank();
    cts.ctx = rts.ctx;
    cts.size = rts.size;
    cts.sender_cookie = rts.sender_cookie;
    cts.receiver_cookie = rcookie;
    cts.raddr = reinterpret_cast<std::uint64_t>(req->recv_buf);

    host_.schedule_cpu(cost + cfg.ctl_cpu + cfg.post_cpu,
                       [this, peer, cts, rkeys] { net_.send_ctl(peer, cts, rkeys); });
    return;
  }

  // Pipelined protocol: pin the target buffer chunk by chunk, streaming one
  // CTS as each chunk's registration completes.  The schedule_cpu calls
  // serialize on this rank's CPU, so CTS k departs after the cumulative
  // registration cost of chunks 0..k — the sender's first write overlaps the
  // pinning of everything after chunk 0.
  const std::uint64_t rcookie = new_cookie(req);
  RecvProgress& rp = recv_progress_[rcookie];
  const std::int64_t csz = chunk_bytes(cfg, total);
  const std::uint32_t nchunks = chunk_count(cfg, total);
  const std::uint64_t base = reinterpret_cast<std::uint64_t>(req->recv_buf);
  for (std::uint32_t i = 0; i < nchunks; ++i) {
    const std::int64_t off = static_cast<std::int64_t>(i) * csz;
    const std::int64_t len = total > 0 ? std::min<std::int64_t>(csz, total - off) : 0;
    sim::Time cost = (i == 0 ? cfg.ctl_cpu : 0) + cfg.post_cpu;
    CtsRkeys rkeys;
    if (len > 0) {
      PinCache::Region* reg = pin_cache_->acquire(
          reinterpret_cast<const void*>(base + static_cast<std::uint64_t>(off)), len, &cost);
      rp.pins.push_back(reg);
      for (std::size_t h = 0; h < net_.hcas().size(); ++h) rkeys.rkey[h] = reg->mr[h].rkey;
    }

    MsgHeader cts;
    cts.type = MsgType::Cts;
    cts.src_rank = host_.rank();
    cts.ctx = rts.ctx;
    cts.size = static_cast<std::uint64_t>(len);
    cts.sender_cookie = rts.sender_cookie;
    cts.receiver_cookie = rcookie;
    cts.raddr = base + static_cast<std::uint64_t>(off);
    cts.chunk = i;
    host_.schedule_cpu(cost, [this, peer, cts, rkeys] { net_.send_ctl(peer, cts, rkeys); });
  }
}

void Rendezvous::on_cts(const MsgHeader& hdr, const CtsRkeys& rkeys) {
  Request req = peek_cookie(hdr.sender_cookie);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: CTS for cookie %llu size %llu chunk %u",
              host_.rank(), (unsigned long long)hdr.sender_cookie, (unsigned long long)hdr.size,
              (unsigned)hdr.chunk);
  req->peer_cookie = hdr.receiver_cookie;
  if (send_progress_.count(hdr.sender_cookie) != 0) {
    start_chunk_writes(req->peer, req, hdr, rkeys);
  } else {
    start_writes(req->peer, req, hdr, rkeys);
  }
}

std::vector<Rendezvous::Stripe> Rendezvous::plan_stripes(int peer, const Request& req,
                                                         std::int64_t base_off,
                                                         std::int64_t bytes) {
  const Config& cfg = host_.config();
  const int nrails = net_.nrails(peer);

  std::vector<Stripe> stripes;
  if (req->lane >= 0) {
    // Multi-lane collective transfer: one un-striped write on the lane's
    // rail, bypassing the policy and leaving its cursor undisturbed (the
    // lanes themselves are the striping).
    stripes.push_back({req->lane % nrails, base_off, bytes});
    return stripes;
  }

  Schedule s = choose_schedule(cfg.policy, static_cast<CommKind>(req->kind), bytes, nrails,
                               cfg.stripe_threshold, net_.cursor(peer));
  if (s.stripe && bytes > 0) {
    // Striping over the rails (never cutting below min_stripe); stripe sizes
    // follow the configured rail weights for WeightedStriping, equal shares
    // otherwise.
    const int n = static_cast<int>(std::min<std::int64_t>(
        nrails, std::max<std::int64_t>(1, bytes / cfg.min_stripe)));
    std::vector<double> w(static_cast<std::size_t>(n), 1.0);
    if (cfg.policy == Policy::WeightedStriping && !cfg.rail_weights.empty()) {
      for (int i = 0; i < n; ++i) {
        w[static_cast<std::size_t>(i)] =
            cfg.rail_weights[static_cast<std::size_t>(i) % cfg.rail_weights.size()];
      }
    }
    double wsum = 0;
    for (double x : w) wsum += x;

    // When the message cuts into fewer stripes than rails, rotate the base
    // rail through the peer's cursor so successive transfers spread over all
    // rails instead of always hammering rails 0..n-1.
    int base_rail = 0;
    if (n < nrails) {
      RailCursor& cur = net_.cursor(peer);
      base_rail = cur.next % nrails;
      cur.next = (base_rail + n) % nrails;
    }

    std::int64_t off = 0;
    for (int i = 0; i < n; ++i) {
      const std::int64_t remaining = bytes - off;
      const int left = n - i;
      std::int64_t len;
      if (i + 1 == n) {
        len = remaining;
      } else {
        len = static_cast<std::int64_t>(static_cast<double>(bytes) *
                                        w[static_cast<std::size_t>(i)] / wsum);
        // Weight rounding must not produce sub-min_stripe (or zero/negative)
        // cuts: clamp up to min_stripe and down so every remaining stripe
        // can still get its minimum.  bytes >= n * min_stripe by the choice
        // of n, so both bounds are always satisfiable.
        len = std::max(len, cfg.min_stripe);
        len = std::min(len, remaining - cfg.min_stripe * (left - 1));
      }
      stripes.push_back({(base_rail + i) % nrails, base_off + off, len});
      off += len;
    }
  } else if (cfg.policy == Policy::Adaptive) {
    stripes.push_back({least_loaded_rail(net_.rail_outstanding(peer)), base_off, bytes});
  } else {
    stripes.push_back({s.rail, base_off, bytes});
  }
  return stripes;
}

void Rendezvous::start_writes(int peer, const Request& req, const MsgHeader& cts,
                              const CtsRkeys& rkeys) {
  const Config& cfg = host_.config();
  const std::int64_t bytes = req->bytes;

  std::vector<Stripe> stripes = plan_stripes(peer, req, 0, bytes);

  sim::Time cost = cfg.ctl_cpu;
  std::array<ib::LKey, kMaxHcas> lkeys{};
  if (bytes > 0) {
    PinCache::Region* reg = pin_cache_->acquire(req->send_buf, bytes, &cost);
    send_pins_[cts.sender_cookie] = reg;
    for (int h = 0; h < kMaxHcas; ++h) lkeys[static_cast<std::size_t>(h)] = reg->mr[h].lkey;
  }

  req->pending_writes = static_cast<int>(stripes.size());
  stripes_posted_.add(stripes.size());
  const std::uint64_t req_id = cts.sender_cookie;

  // Descriptor posting is serialized on the host CPU (WQE build + doorbell
  // per stripe), queued behind any other protocol work this rank is doing.
  // This is one of the per-stripe costs that make striping lose to
  // round-robin for medium messages (paper §3.2).
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const Stripe st = stripes[i];
    const sim::Time when = (i == 0 ? cost : 0) + cfg.post_cpu;
    const std::uint64_t raddr = cts.raddr;
    host_.schedule_cpu(when, [this, peer, st, req_id, raddr, rkeys, lkeys] {
      Request req = peek_cookie(req_id);
      NetChannel::RndvStripe wr;
      wr.rail = st.rail;
      wr.src = static_cast<const std::byte*>(req->send_buf) + st.offset;
      wr.len = st.len;
      wr.raddr = raddr + static_cast<std::uint64_t>(st.offset);
      wr.req_id = req_id;
      wr.lkeys = lkeys;
      wr.rkeys = rkeys;
      net_.post_write(peer, wr);
    });
  }
}

void Rendezvous::start_chunk_writes(int peer, const Request& req, const MsgHeader& cts,
                                    const CtsRkeys& rkeys) {
  const Config& cfg = host_.config();
  SendProgress& sp = send_progress_.at(cts.sender_cookie);
  ++sp.cts_seen;
  cts_chunks_.inc();

  const std::int64_t off =
      static_cast<std::int64_t>(cts.chunk) * chunk_bytes(cfg, req->bytes);
  const std::int64_t len = static_cast<std::int64_t>(cts.size);

  // Pin the sender-side chunk (overlapped with the receiver pinning later
  // chunks), then build all of the chunk's stripe WQEs and ring one doorbell.
  sim::Time cost = cfg.ctl_cpu;
  std::array<ib::LKey, kMaxHcas> lkeys{};
  if (len > 0) {
    PinCache::Region* reg = pin_cache_->acquire(
        static_cast<const std::byte*>(req->send_buf) + off, len, &cost);
    sp.pins.push_back(reg);
    for (int h = 0; h < kMaxHcas; ++h) lkeys[static_cast<std::size_t>(h)] = reg->mr[h].lkey;
  }

  std::vector<Stripe> stripes = plan_stripes(peer, req, off, len);
  sp.chunk_writes[cts.chunk] = static_cast<int>(stripes.size());
  pipeline_depth_.track_max(sp.chunk_writes.size());
  stripes_posted_.add(stripes.size());

  // Doorbell batching: per-stripe WQE build, one uncached-MMIO doorbell for
  // the whole batch (instead of legacy's full post_cpu per stripe).
  cost += cfg.wqe_build_cpu * static_cast<std::int64_t>(stripes.size()) + cfg.doorbell_cpu;

  const std::uint64_t req_id = chunk_req_id(cts.sender_cookie, cts.chunk);
  const std::uint64_t chunk_base = cts.raddr;
  host_.schedule_cpu(cost, [this, peer, stripes = std::move(stripes), req_id, chunk_base, off,
                            rkeys, lkeys] {
    const std::uint64_t cookie = req_id & kCookieMask;
    Request req = peek_cookie(cookie);
    std::vector<NetChannel::RndvStripe> batch;
    batch.reserve(stripes.size());
    for (const Stripe& st : stripes) {
      NetChannel::RndvStripe wr;
      wr.rail = st.rail;
      wr.src = static_cast<const std::byte*>(req->send_buf) + st.offset;
      wr.len = st.len;
      wr.raddr = chunk_base + static_cast<std::uint64_t>(st.offset - off);
      wr.req_id = req_id;
      wr.lkeys = lkeys;
      wr.rkeys = rkeys;
      batch.push_back(wr);
    }
    net_.post_write_batch(peer, batch);
  });
}

void Rendezvous::finish_send(int peer, std::uint64_t cookie, const Request& req) {
  // All stripes placed remotely (CQE implies remote visibility): tell the
  // receiver and complete the local send.
  MsgHeader fin;
  fin.type = MsgType::Fin;
  fin.src_rank = host_.rank();
  fin.receiver_cookie = req->peer_cookie;
  net_.send_ctl(peer, fin, CtsRkeys{});
  outstanding_.erase(cookie);
  host_.complete_request(req);
}

void Rendezvous::on_write_done(int peer, std::uint64_t req_id) {
  const std::uint64_t cookie = req_id & kCookieMask;
  auto pit = send_progress_.find(cookie);
  if (pit == send_progress_.end()) {
    // Legacy one-shot protocol: a flat count of stripes in flight.
    Request req = peek_cookie(req_id);
    IB12X_DEBUG(host_.simulator().now(), "rank%d: write CQE cookie %llu remaining %d",
                host_.rank(), (unsigned long long)req_id, req->pending_writes - 1);
    if (--req->pending_writes == 0) {
      auto sit = send_pins_.find(req_id);
      if (sit != send_pins_.end()) {
        pin_cache_->release(sit->second);
        send_pins_.erase(sit);
      }
      finish_send(peer, req_id, req);
    }
    return;
  }

  SendProgress& sp = pit->second;
  const auto chunk = static_cast<std::uint32_t>(req_id >> 48);
  auto cit = sp.chunk_writes.find(chunk);
  if (cit == sp.chunk_writes.end()) {
    throw std::logic_error("Rendezvous: write CQE for unknown chunk");
  }
  if (--cit->second == 0) sp.chunk_writes.erase(cit);
  if (sp.cts_seen == sp.chunks_total && sp.chunk_writes.empty()) {
    Request req = peek_cookie(cookie);
    IB12X_DEBUG(host_.simulator().now(), "rank%d: pipelined send %llu complete (%u chunks)",
                host_.rank(), (unsigned long long)cookie, sp.chunks_total);
    for (PinCache::Region* r : sp.pins) pin_cache_->release(r);
    send_progress_.erase(pit);
    finish_send(peer, cookie, req);
  }
}

void Rendezvous::on_fin(const MsgHeader& hdr) {
  Request req = take_cookie(hdr.receiver_cookie);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: FIN for cookie %llu", host_.rank(),
              (unsigned long long)hdr.receiver_cookie);
  auto it = recv_progress_.find(hdr.receiver_cookie);
  if (it != recv_progress_.end()) {
    for (PinCache::Region* r : it->second.pins) pin_cache_->release(r);
    recv_progress_.erase(it);
  }
  host_.schedule_cpu(host_.config().ctl_cpu, [this, req] { host_.complete_request(req); });
}

}  // namespace ib12x::mvx
