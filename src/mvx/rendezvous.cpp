#include "mvx/rendezvous.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mvx/matcher.hpp"
#include "mvx/net_channel.hpp"
#include "sim/log.hpp"

namespace ib12x::mvx {

Rendezvous::Rendezvous(ChannelHost& host, NetChannel& net)
    : host_(host),
      net_(net),
      rts_sent_(host.telemetry().counter("rndv.rts_sent")),
      bytes_sent_(host.telemetry().counter("rndv.bytes_sent")),
      stripes_posted_(host.telemetry().counter("rndv.stripes_posted")),
      reg_hits_(host.telemetry().counter("rndv.reg_cache_hits")),
      reg_misses_(host.telemetry().counter("rndv.reg_cache_misses")) {}

// ----------------------------------------------------------------- cookies

std::uint64_t Rendezvous::new_cookie(const Request& req) {
  std::uint64_t id = next_cookie_++;
  outstanding_[id] = req;
  return id;
}

Request Rendezvous::take_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Rendezvous: unknown request cookie " + std::to_string(id));
  }
  Request r = it->second;
  outstanding_.erase(it);
  return r;
}

Request Rendezvous::peek_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Rendezvous: unknown request cookie " + std::to_string(id));
  }
  return it->second;
}

// -------------------------------------------------------------- reg cache

const Rendezvous::RegEntry& Rendezvous::register_cached(const void* buf, std::int64_t bytes,
                                                        sim::Time* cpu_cost) {
  const Config& cfg = host_.config();
  auto it = reg_cache_.find(buf);
  if (it != reg_cache_.end()) {
    // A cached entry that is too small must be (cheaply) re-registered.
    if (it->second.mr[0].length >= static_cast<std::uint64_t>(bytes)) {
      *cpu_cost += cfg.reg_cache_hit;
      reg_hits_.inc();
      return it->second;
    }
    reg_cache_.erase(it);
  }
  RegEntry entry;
  const std::vector<ib::Hca*>& hcas = net_.hcas();
  for (std::size_t h = 0; h < hcas.size(); ++h) {
    entry.mr[h] = hcas[h]->mem().register_memory(const_cast<void*>(buf),
                                                 static_cast<std::size_t>(bytes));
  }
  *cpu_cost += cfg.reg_cache_miss;
  reg_misses_.inc();
  return reg_cache_.emplace(buf, entry).first->second;
}

// ---------------------------------------------------------------- protocol

void Rendezvous::send_rts(int peer, CommKind kind, const void* /*buf*/, std::int64_t bytes,
                          int tag, int ctx, const Request& req) {
  // Control messages round-robin over rails; the data schedule is decided at
  // CTS time by the marker-driven policy.
  RailCursor ctl_cursor = net_.cursor(peer);  // do not disturb the data cursor
  Schedule s = choose_schedule(Policy::RoundRobin, kind, 0, net_.nrails(peer),
                               host_.config().stripe_threshold, ctl_cursor);

  MsgHeader hdr;
  hdr.type = MsgType::Rts;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = host_.matcher().next_send_seq(peer, ctx);
  hdr.size = static_cast<std::uint64_t>(bytes);
  hdr.sender_cookie = new_cookie(req);
  net_.send_ctl_blocking(peer, s.rail, hdr);
  rts_sent_.inc();
  bytes_sent_.add(static_cast<std::uint64_t>(bytes));
}

void Rendezvous::accept(const MsgHeader& rts, const Request& req) {
  req->status = {rts.src_rank, rts.tag, static_cast<std::int64_t>(rts.size)};
  req->peer = rts.src_rank;

  const Config& cfg = host_.config();
  sim::Time cost = 0;
  CtsRkeys rkeys;
  if (rts.size > 0) {
    const RegEntry& reg =
        register_cached(req->recv_buf, static_cast<std::int64_t>(rts.size), &cost);
    for (std::size_t h = 0; h < net_.hcas().size(); ++h) rkeys.rkey[h] = reg.mr[h].rkey;
  }

  MsgHeader cts;
  cts.type = MsgType::Cts;
  cts.src_rank = host_.rank();
  cts.ctx = rts.ctx;
  cts.size = rts.size;
  cts.sender_cookie = rts.sender_cookie;
  cts.receiver_cookie = new_cookie(req);
  cts.raddr = reinterpret_cast<std::uint64_t>(req->recv_buf);

  const int peer = rts.src_rank;
  host_.schedule_cpu(cost + cfg.ctl_cpu + cfg.post_cpu,
                     [this, peer, cts, rkeys] { net_.send_ctl(peer, cts, rkeys); });
}

void Rendezvous::on_cts(const MsgHeader& hdr, const CtsRkeys& rkeys) {
  Request req = peek_cookie(hdr.sender_cookie);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: CTS for cookie %llu size %llu", host_.rank(),
              (unsigned long long)hdr.sender_cookie, (unsigned long long)hdr.size);
  req->peer_cookie = hdr.receiver_cookie;
  start_writes(req->peer, req, hdr, rkeys);
}

void Rendezvous::start_writes(int peer, const Request& req, const MsgHeader& cts,
                              const CtsRkeys& rkeys) {
  const Config& cfg = host_.config();
  const std::int64_t bytes = req->bytes;
  const int nrails = net_.nrails(peer);

  struct Stripe {
    int rail;
    std::int64_t offset;
    std::int64_t len;
  };
  std::vector<Stripe> stripes;
  if (req->lane >= 0) {
    // Multi-lane collective transfer: one un-striped write on the lane's
    // rail, bypassing the policy and leaving its cursor undisturbed (the
    // lanes themselves are the striping).
    stripes.push_back({req->lane % nrails, 0, bytes});
  } else {
  Schedule s = choose_schedule(cfg.policy, static_cast<CommKind>(req->kind), bytes, nrails,
                               cfg.stripe_threshold, net_.cursor(peer));
  if (s.stripe && bytes > 0) {
    // Striping over all rails (never cutting below min_stripe); stripe sizes
    // follow the configured rail weights for WeightedStriping, equal shares
    // otherwise.
    const int n = static_cast<int>(std::min<std::int64_t>(
        nrails, std::max<std::int64_t>(1, bytes / cfg.min_stripe)));
    std::vector<double> w(static_cast<std::size_t>(n), 1.0);
    if (cfg.policy == Policy::WeightedStriping && !cfg.rail_weights.empty()) {
      for (int i = 0; i < n; ++i) {
        w[static_cast<std::size_t>(i)] =
            cfg.rail_weights[static_cast<std::size_t>(i) % cfg.rail_weights.size()];
      }
    }
    double wsum = 0;
    for (double x : w) wsum += x;
    std::int64_t off = 0;
    for (int i = 0; i < n; ++i) {
      std::int64_t len = i + 1 == n
                             ? bytes - off
                             : static_cast<std::int64_t>(static_cast<double>(bytes) *
                                                         w[static_cast<std::size_t>(i)] / wsum);
      stripes.push_back({i, off, len});
      off += len;
    }
  } else if (cfg.policy == Policy::Adaptive) {
    stripes.push_back({least_loaded_rail(net_.rail_outstanding(peer)), 0, bytes});
  } else {
    stripes.push_back({s.rail, 0, bytes});
  }
  }

  sim::Time cost = cfg.ctl_cpu;
  std::array<ib::LKey, kMaxHcas> lkeys{};
  if (bytes > 0) {
    const RegEntry& reg = register_cached(req->send_buf, bytes, &cost);
    for (int h = 0; h < kMaxHcas; ++h) lkeys[static_cast<std::size_t>(h)] = reg.mr[h].lkey;
  }

  req->pending_writes = static_cast<int>(stripes.size());
  stripes_posted_.add(stripes.size());
  const std::uint64_t req_id = cts.sender_cookie;

  // Descriptor posting is serialized on the host CPU (WQE build + doorbell
  // per stripe), queued behind any other protocol work this rank is doing.
  // This is one of the per-stripe costs that make striping lose to
  // round-robin for medium messages (paper §3.2).
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const Stripe st = stripes[i];
    const sim::Time when = (i == 0 ? cost : 0) + cfg.post_cpu;
    const std::uint64_t raddr = cts.raddr;
    host_.schedule_cpu(when, [this, peer, st, req_id, raddr, rkeys, lkeys] {
      Request req = peek_cookie(req_id);
      NetChannel::RndvStripe wr;
      wr.rail = st.rail;
      wr.src = static_cast<const std::byte*>(req->send_buf) + st.offset;
      wr.len = st.len;
      wr.raddr = raddr + static_cast<std::uint64_t>(st.offset);
      wr.req_id = req_id;
      wr.lkeys = lkeys;
      wr.rkeys = rkeys;
      net_.post_write(peer, wr);
    });
  }
}

void Rendezvous::on_write_done(int peer, std::uint64_t req_id) {
  Request req = peek_cookie(req_id);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: write CQE cookie %llu remaining %d", host_.rank(),
              (unsigned long long)req_id, req->pending_writes - 1);
  if (--req->pending_writes == 0) {
    // All stripes placed remotely (CQE implies remote visibility): tell the
    // receiver and complete the local send.
    MsgHeader fin;
    fin.type = MsgType::Fin;
    fin.src_rank = host_.rank();
    fin.receiver_cookie = req->peer_cookie;
    net_.send_ctl(peer, fin, CtsRkeys{});
    take_cookie(req_id);
    host_.complete_request(req);
  }
}

void Rendezvous::on_fin(const MsgHeader& hdr) {
  Request req = take_cookie(hdr.receiver_cookie);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: FIN for cookie %llu", host_.rank(),
              (unsigned long long)hdr.receiver_cookie);
  host_.schedule_cpu(host_.config().ctl_cpu, [this, req] { host_.complete_request(req); });
}

}  // namespace ib12x::mvx
