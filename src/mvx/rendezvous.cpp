#include "mvx/rendezvous.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mvx/matcher.hpp"
#include "mvx/net_channel.hpp"
#include "sim/log.hpp"

namespace ib12x::mvx {

namespace {

/// Stripe-write req_ids carry the chunk index in the top 16 bits so the
/// completion path can retire pipelined chunks individually; legacy writes
/// use the bare cookie (cookies are sequential and never reach 2^48).
constexpr std::uint64_t kCookieMask = (std::uint64_t{1} << 48) - 1;

std::uint64_t chunk_req_id(std::uint64_t cookie, std::uint32_t chunk) {
  return cookie | (static_cast<std::uint64_t>(chunk) << 48);
}

std::int64_t chunk_bytes(const Config& cfg, std::int64_t total) {
  return cfg.rndv_pipeline_chunk > 0 ? cfg.rndv_pipeline_chunk : total;
}

std::uint32_t chunk_count(const Config& cfg, std::int64_t total) {
  if (total <= 0) return 1;  // zero-byte rendezvous still needs one CTS
  const std::int64_t c = chunk_bytes(cfg, total);
  return static_cast<std::uint32_t>((total + c - 1) / c);
}

}  // namespace

Rendezvous::Rendezvous(ChannelHost& host, NetChannel& net)
    : host_(host),
      net_(net),
      rts_sent_(host.telemetry().counter("rndv.rts_sent")),
      bytes_sent_(host.telemetry().counter("rndv.bytes_sent")),
      stripes_posted_(host.telemetry().counter("rndv.stripes_posted")),
      reg_hits_(host.telemetry().counter("rndv.reg_cache_hits")),
      reg_misses_(host.telemetry().counter("rndv.reg_cache_misses")),
      reg_evictions_(host.telemetry().counter("rndv.reg_cache_evictions")),
      cts_chunks_(host.telemetry().counter("rndv.cts_chunks")),
      pipeline_depth_(host.telemetry().counter("rndv.pipeline_depth")),
      dup_ctl_dropped_(host.telemetry().counter("rndv.dup_ctl_dropped")),
      restriped_(host.telemetry().counter("fault.rndv_restriped")) {
  const Config& cfg = host.config();
  PinCache::Options opts;
  opts.interval = cfg.rndv_pipeline;  // legacy mode keeps exact-pointer semantics
  opts.capacity = cfg.reg_cache_capacity;
  opts.hit_cpu = cfg.reg_cache_hit;
  opts.miss_cpu = cfg.reg_cache_miss;
  opts.page_cpu = cfg.reg_page_cpu;
  pin_cache_ = std::make_unique<PinCache>(net.hcas(), opts, reg_hits_, reg_misses_,
                                          reg_evictions_);

  // Protocol diversity: counters and the adaptive policy exist only when the
  // machinery can actually run, so default-configuration telemetry snapshots
  // (and allocation sequences) are unchanged.
  rndv_active_ =
      cfg.rndv.adaptive || cfg.rndv.protocol != Config::RndvConfig::Protocol::WriteRtsCts;
  if (rndv_active_) {
    read_stripes_ = &host.telemetry().counter("rndv.read_stripes");
    imm_sent_ = &host.telemetry().counter("rndv.imm_sent");
    imm_folded_ = &host.telemetry().counter("rndv.imm_folded");
    done_sent_ = &host.telemetry().counter("rndv.done_sent");
  }
  if (cfg.rndv.adaptive) {
    policy_ = std::make_unique<RndvPolicy>(cfg, host.rank(), cfg.rails());
    policy_explore_ = &host.telemetry().counter("rndv.policy_explore");
    policy_exploit_ = &host.telemetry().counter("rndv.policy_exploit");
  }
}

Rendezvous::~Rendezvous() = default;

// ----------------------------------------------------------------- cookies

std::uint64_t Rendezvous::new_cookie(const Request& req) {
  std::uint64_t id = next_cookie_++;
  outstanding_[id] = req;
  return id;
}

Request Rendezvous::take_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Rendezvous: unknown request cookie " + std::to_string(id));
  }
  Request r = it->second;
  outstanding_.erase(it);
  return r;
}

Request Rendezvous::peek_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Rendezvous: unknown request cookie " + std::to_string(id));
  }
  return it->second;
}

// ------------------------------------------------------ protocol selection

RndvProto Rendezvous::select_proto(int peer, std::int64_t bytes, const Request& req,
                                   std::uint64_t cookie, int* width_out) {
  *width_out = 0;
  if (!rndv_active_) return RndvProto::WriteRtsCts;
  const Config& cfg = host_.config();
  SendMeta meta;
  meta.start = host_.simulator().now();
  if (policy_) {
    const int live = net_.fault_enabled()
                         ? static_cast<int>(net_.live_rails(peer, req->vci).size())
                         : net_.nrails(peer);
    bool explored = false;
    meta.arm = policy_->choose(peer, bytes, live, &explored);
    const RndvArm& arm = policy_->arm(meta.arm);
    meta.proto = arm.proto;
    meta.width = arm.width;
    (explored ? policy_explore_ : policy_exploit_)->inc();
  } else {
    meta.proto = static_cast<RndvProto>(static_cast<std::uint8_t>(cfg.rndv.protocol));
  }
  send_meta_[cookie] = meta;
  *width_out = meta.width;
  return meta.proto;
}

sim::Time Rendezvous::prepare_read_rts(MsgHeader& hdr, const Request& req, std::int64_t bytes,
                                       int width, CtsRkeys& rkeys) {
  // The RTS itself carries everything the receiver needs to pull: the pinned
  // source address (raddr), the per-HCA rkeys (payload), and the adaptive
  // arm's forced stripe width (chunk field; 0 = receiver's choice).
  hdr.chunk = width > 0 ? static_cast<std::uint32_t>(width) : 0;
  sim::Time cost = 0;
  if (bytes > 0) {
    PinCache::Region* reg = pin_cache_->acquire(req->send_buf, bytes, &cost);
    send_pins_[hdr.sender_cookie] = reg;
    for (std::size_t h = 0; h < net_.hcas().size(); ++h) rkeys.rkey[h] = reg->mr[h].rkey;
    hdr.raddr = reinterpret_cast<std::uint64_t>(req->send_buf);
  }
  return cost;
}

void Rendezvous::record_policy(std::uint64_t cookie, const Request& req) {
  if (send_meta_.empty()) return;
  auto it = send_meta_.find(cookie);
  if (it == send_meta_.end()) return;
  if (policy_ && it->second.arm >= 0) {
    policy_->record(req->peer, req->bytes, it->second.arm,
                    host_.simulator().now() - it->second.start);
  }
  send_meta_.erase(it);
}

// ---------------------------------------------------------------- protocol

void Rendezvous::send_rts(int peer, CommKind kind, const void* /*buf*/, std::int64_t bytes,
                          int tag, int ctx, const Request& req) {
  const Config& cfg = host_.config();
  const int vci = req->vci;
  // Control messages round-robin over the VCI's rail slice; the data
  // schedule is decided at CTS time by the marker-driven policy.
  Schedule s;
  if (cfg.rndv_pipeline) {
    // Control traffic owns its own per-(peer, vci) cursor so RTSes rotate
    // over the rails instead of pinning to wherever the data cursor sits.
    s = choose_schedule(Policy::RoundRobin, kind, 0, net_.nrails(peer), cfg.stripe_threshold,
                        net_.ctl_cursor(peer, vci));
  } else {
    RailCursor ctl_cursor = net_.cursor(peer, vci);  // do not disturb the data cursor
    s = choose_schedule(Policy::RoundRobin, kind, 0, net_.nrails(peer), cfg.stripe_threshold,
                        ctl_cursor);
  }

  MsgHeader hdr;
  hdr.type = MsgType::Rts;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.vci = static_cast<std::uint8_t>(vci);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = host_.matcher().next_send_seq(peer, ctx, vci);
  hdr.size = static_cast<std::uint64_t>(bytes);
  hdr.sender_cookie = new_cookie(req);
  int width = 0;
  const RndvProto proto = select_proto(peer, bytes, req, hdr.sender_cookie, &width);
  hdr.proto = static_cast<std::uint8_t>(proto);
  CtsRkeys rts_rkeys;
  if (proto == RndvProto::ReadRts) {
    const sim::Time pin_cost = prepare_read_rts(hdr, req, bytes, width, rts_rkeys);
    if (pin_cost > 0) host_.process().compute(pin_cost);
  } else if (cfg.rndv_pipeline) {
    send_progress_[hdr.sender_cookie].chunks_total = chunk_count(cfg, bytes);
  }
  net_.send_ctl_blocking(peer, vci * net_.nrails(peer) + s.rail, hdr,
                         proto == RndvProto::ReadRts ? &rts_rkeys : nullptr);
  rts_sent_.inc();
  bytes_sent_.add(static_cast<std::uint64_t>(bytes));
}

bool Rendezvous::try_send_rts(int peer, CommKind kind, const void* /*buf*/, std::int64_t bytes,
                              int tag, int ctx, const Request& req) {
  const Config& cfg = host_.config();
  const int vci = req->vci;
  Schedule s;
  RailCursor saved{};
  if (cfg.rndv_pipeline) {
    saved = net_.ctl_cursor(peer, vci);  // restored if the probe fails
    s = choose_schedule(Policy::RoundRobin, kind, 0, net_.nrails(peer), cfg.stripe_threshold,
                        net_.ctl_cursor(peer, vci));
  } else {
    RailCursor ctl_cursor = net_.cursor(peer, vci);  // do not disturb the data cursor
    s = choose_schedule(Policy::RoundRobin, kind, 0, net_.nrails(peer), cfg.stripe_threshold,
                        ctl_cursor);
  }
  const int rail = net_.probe_ctl_rail(peer, vci * net_.nrails(peer) + s.rail);
  if (rail < 0) {
    if (cfg.rndv_pipeline) net_.ctl_cursor(peer, vci) = saved;
    return false;
  }

  MsgHeader hdr;
  hdr.type = MsgType::Rts;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.vci = static_cast<std::uint8_t>(vci);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = host_.matcher().next_send_seq(peer, ctx, vci);
  hdr.size = static_cast<std::uint64_t>(bytes);
  hdr.sender_cookie = new_cookie(req);
  int width = 0;
  const RndvProto proto = select_proto(peer, bytes, req, hdr.sender_cookie, &width);
  hdr.proto = static_cast<std::uint8_t>(proto);
  CtsRkeys rts_rkeys;
  if (proto == RndvProto::ReadRts) {
    // Event context: the pin cost can't be charged inline, so it occupies
    // the VCI's CPU server ahead of the post event post_ctl_evt schedules.
    const sim::Time pin_cost = prepare_read_rts(hdr, req, bytes, width, rts_rkeys);
    if (pin_cost > 0) host_.schedule_cpu_vci(vci, pin_cost, [] {});
  } else if (cfg.rndv_pipeline) {
    send_progress_[hdr.sender_cookie].chunks_total = chunk_count(cfg, bytes);
  }
  net_.post_ctl_evt(peer, rail, hdr, proto == RndvProto::ReadRts ? &rts_rkeys : nullptr);
  rts_sent_.inc();
  bytes_sent_.add(static_cast<std::uint64_t>(bytes));
  return true;
}

void Rendezvous::accept(const MsgHeader& rts, const Request& req,
                        const std::vector<std::byte>& payload) {
  req->status = {rts.src_rank, rts.tag, static_cast<std::int64_t>(rts.size)};
  req->peer = rts.src_rank;

  const Config& cfg = host_.config();
  const int peer = rts.src_rank;
  const std::int64_t total = static_cast<std::int64_t>(rts.size);

  if (rts.proto == static_cast<std::uint8_t>(RndvProto::ReadRts)) {
    // The sender chose the read protocol: its rkeys ride in the RTS payload
    // and the receiver pulls.  WriteRtsCts and WriteImm are receiver-
    // identical (pin + CTS); the imm-vs-FIN difference only shows at
    // completion time.
    CtsRkeys rkeys;
    if (payload.size() >= sizeof(CtsRkeys)) {
      std::memcpy(&rkeys, payload.data(), sizeof(rkeys));
    }
    accept_read(rts, req, rkeys);
    return;
  }

  if (!cfg.rndv_pipeline) {
    // One-shot protocol: pin the whole target buffer, then a single CTS.
    sim::Time cost = 0;
    CtsRkeys rkeys;
    const std::uint64_t rcookie = new_cookie(req);
    if (total > 0) {
      PinCache::Region* reg = pin_cache_->acquire(req->recv_buf, total, &cost);
      recv_progress_[rcookie].pins.push_back(reg);
      for (std::size_t h = 0; h < net_.hcas().size(); ++h) rkeys.rkey[h] = reg->mr[h].rkey;
    }

    MsgHeader cts;
    cts.type = MsgType::Cts;
    cts.vci = rts.vci;  // the reply stays on the message's VCI
    cts.src_rank = host_.rank();
    cts.ctx = rts.ctx;
    cts.size = rts.size;
    cts.sender_cookie = rts.sender_cookie;
    cts.receiver_cookie = rcookie;
    cts.raddr = reinterpret_cast<std::uint64_t>(req->recv_buf);

    host_.schedule_cpu_vci(rts.vci, cost + cfg.ctl_cpu + cfg.post_cpu,
                           [this, peer, cts, rkeys] { net_.send_ctl(peer, cts, rkeys); });
    return;
  }

  // Pipelined protocol: pin the target buffer chunk by chunk, streaming one
  // CTS as each chunk's registration completes.  The schedule_cpu calls
  // serialize on this rank's CPU, so CTS k departs after the cumulative
  // registration cost of chunks 0..k — the sender's first write overlaps the
  // pinning of everything after chunk 0.
  const std::uint64_t rcookie = new_cookie(req);
  RecvProgress& rp = recv_progress_[rcookie];
  const std::int64_t csz = chunk_bytes(cfg, total);
  const std::uint32_t nchunks = chunk_count(cfg, total);
  const std::uint64_t base = reinterpret_cast<std::uint64_t>(req->recv_buf);
  for (std::uint32_t i = 0; i < nchunks; ++i) {
    const std::int64_t off = static_cast<std::int64_t>(i) * csz;
    const std::int64_t len = total > 0 ? std::min<std::int64_t>(csz, total - off) : 0;
    sim::Time cost = (i == 0 ? cfg.ctl_cpu : 0) + cfg.post_cpu;
    CtsRkeys rkeys;
    if (len > 0) {
      PinCache::Region* reg = pin_cache_->acquire(
          reinterpret_cast<const void*>(base + static_cast<std::uint64_t>(off)), len, &cost);
      rp.pins.push_back(reg);
      for (std::size_t h = 0; h < net_.hcas().size(); ++h) rkeys.rkey[h] = reg->mr[h].rkey;
    }

    MsgHeader cts;
    cts.type = MsgType::Cts;
    cts.vci = rts.vci;  // the reply stays on the message's VCI
    cts.src_rank = host_.rank();
    cts.ctx = rts.ctx;
    cts.size = static_cast<std::uint64_t>(len);
    cts.sender_cookie = rts.sender_cookie;
    cts.receiver_cookie = rcookie;
    cts.raddr = base + static_cast<std::uint64_t>(off);
    cts.chunk = i;
    host_.schedule_cpu_vci(rts.vci, cost,
                           [this, peer, cts, rkeys] { net_.send_ctl(peer, cts, rkeys); });
  }
}

// ---------------------------------------------------------- read rendezvous

std::vector<Rendezvous::Stripe> Rendezvous::plan_limited(int peer, int vci,
                                                         std::int64_t base_off,
                                                         std::int64_t bytes, int width) {
  const Config& cfg = host_.config();
  const int nrails = net_.nrails(peer);
  const int base = vci * nrails;
  std::vector<int> cand;
  if (net_.fault_enabled()) cand = net_.live_rails(peer, vci);
  if (cand.empty()) {
    cand.reserve(static_cast<std::size_t>(nrails));
    for (int i = 0; i < nrails; ++i) cand.push_back(base + i);
  }
  if (width > 0 && width < static_cast<int>(cand.size())) {
    // Forced width: keep `width` candidates starting at the lane cursor so
    // successive narrow transfers still rotate over the whole slice.
    RailCursor& cur = net_.cursor(peer, vci);
    std::vector<int> pick;
    pick.reserve(static_cast<std::size_t>(width));
    for (int k = 0; k < width; ++k) {
      pick.push_back(cand[static_cast<std::size_t>((cur.next + k) % static_cast<int>(cand.size()))]);
    }
    cur.next = (cur.next + width) % static_cast<int>(cand.size());
    cand.swap(pick);
  }
  return mvx::plan_stripes(bytes, base_off, cand, cfg.min_stripe, {}, net_.cursor(peer, vci));
}

void Rendezvous::accept_read(const MsgHeader& rts, const Request& req, const CtsRkeys& rkeys) {
  const Config& cfg = host_.config();
  const int peer = rts.src_rank;
  const int vci = rts.vci;
  const std::int64_t total = static_cast<std::int64_t>(rts.size);
  const std::uint64_t rcookie = new_cookie(req);
  ReadProgress& rp = read_progress_[rcookie];
  rp.sender_cookie = rts.sender_cookie;
  rp.peer = peer;
  rp.vci = vci;

  sim::Time cost = cfg.ctl_cpu;
  if (total <= 0) {
    // Zero-byte rendezvous: nothing to pull, straight to Done.
    host_.schedule_cpu_vci(vci, cost, [this, rcookie] { finish_read(rcookie); });
    return;
  }

  PinCache::Region* reg = pin_cache_->acquire(req->recv_buf, total, &cost);
  rp.pins.push_back(reg);
  std::array<ib::LKey, kMaxHcas> lkeys{};
  for (int h = 0; h < kMaxHcas; ++h) lkeys[static_cast<std::size_t>(h)] = reg->mr[h].lkey;

  // rts.chunk carries the sender's forced stripe width (adaptive arm);
  // 0 leaves the cut to this receiver's own policy inputs.
  std::vector<Stripe> stripes = plan_limited(peer, vci, 0, total, static_cast<int>(rts.chunk));
  if (stripes.empty()) stripes.push_back({vci * net_.nrails(peer), 0, total});
  rp.pending = static_cast<int>(stripes.size());
  if (read_stripes_ != nullptr) read_stripes_->add(stripes.size());

  // Reads ignore rndv_pipeline chunking: the pull is one doorbell-batched
  // shot (sender-side pinning already happened before the RTS, so there is
  // no registration pipeline to overlap with).
  cost += cfg.wqe_build_cpu * static_cast<std::int64_t>(stripes.size()) + cfg.doorbell_cpu;

  const std::uint64_t base_raddr = rts.raddr;
  std::vector<NetChannel::RndvStripe> batch;
  batch.reserve(stripes.size());
  for (const Stripe& st : stripes) {
    NetChannel::RndvStripe wr;
    wr.rail = st.rail;
    // Read convention: src names the *local destination* slice, raddr/rkeys
    // the remote source (the sender's pinned buffer).
    wr.src = static_cast<const std::byte*>(req->recv_buf) + st.offset;
    wr.len = st.len;
    wr.raddr = base_raddr + static_cast<std::uint64_t>(st.offset);
    wr.req_id = rcookie;
    wr.lkeys = lkeys;
    wr.rkeys = rkeys;
    batch.push_back(wr);
  }
  host_.schedule_cpu_vci(vci, cost, [this, peer, batch = std::move(batch)] {
    net_.post_read_batch(peer, batch);
  });
}

void Rendezvous::finish_read(std::uint64_t rcookie) {
  auto it = read_progress_.find(rcookie);
  if (it == read_progress_.end()) {
    throw std::logic_error("Rendezvous: finish_read for unknown cookie " +
                           std::to_string(rcookie));
  }
  ReadProgress rp = std::move(it->second);
  read_progress_.erase(it);
  for (PinCache::Region* r : rp.pins) pin_cache_->release(r);
  Request req = take_cookie(rcookie);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: read rendezvous %llu complete", host_.rank(),
              (unsigned long long)rcookie);

  MsgHeader done;
  done.type = MsgType::Done;
  done.vci = static_cast<std::uint8_t>(rp.vci);
  done.src_rank = host_.rank();
  done.sender_cookie = rp.sender_cookie;
  net_.send_ctl(rp.peer, done, CtsRkeys{});
  if (done_sent_ != nullptr) done_sent_->inc();
  host_.complete_request(req);
}

void Rendezvous::on_read_done(int /*peer*/, std::uint64_t req_id) {
  auto it = read_progress_.find(req_id);
  if (it == read_progress_.end()) {
    // Reads are idempotent and only ever retried after an *error* CQE, so a
    // success completion for an unknown cookie is a protocol bug, not a dup.
    throw std::logic_error("Rendezvous: read CQE for unknown cookie " + std::to_string(req_id));
  }
  if (--it->second.pending == 0) finish_read(req_id);
}

void Rendezvous::on_read_failed(int peer, const RndvStripe& st) {
  restriped_.inc();
  RndvStripe retry = st;
  ++retry.attempts;
  if (retry.attempts > host_.config().fault.stripe_retry_limit) {
    throw std::runtime_error("Rendezvous: read retry limit exceeded to rank " +
                             std::to_string(peer));
  }
  repost_read(peer, retry);
}

void Rendezvous::repost_read(int peer, const RndvStripe& st) {
  const Config& cfg = host_.config();
  const int vci = st.rail / net_.nrails(peer);
  std::vector<int> live = net_.live_rails(peer, vci);
  if (live.empty()) {
    RndvStripe retry = st;
    ++retry.attempts;
    if (retry.attempts > cfg.fault.stripe_retry_limit) {
      throw std::runtime_error("Rendezvous: no rail recovered within the read retry budget");
    }
    sim::Simulator& sim = host_.simulator();
    sim.at(sim.now() + cfg.fault.rail_recovery,
           sim::boxed([this, peer, retry] { repost_read(peer, retry); }));
    return;
  }

  std::vector<Stripe> parts =
      mvx::plan_stripes(st.len, 0, live, cfg.min_stripe, {}, net_.cursor(peer, vci));
  if (parts.empty()) parts.push_back({live.front(), 0, st.len});

  // Same in-flight accounting rule as write failover: the failed read was
  // counted once; k replacement pulls add k-1.
  read_progress_.at(st.req_id).pending += static_cast<int>(parts.size()) - 1;
  if (read_stripes_ != nullptr) read_stripes_->add(parts.size());

  std::vector<NetChannel::RndvStripe> batch;
  batch.reserve(parts.size());
  for (const Stripe& p : parts) {
    RndvStripe wr = st;  // inherits req_id, lkeys, rkeys, attempts
    wr.rail = p.rail;
    wr.src = st.src + p.offset;
    wr.len = p.len;
    wr.raddr = st.raddr + static_cast<std::uint64_t>(p.offset);
    batch.push_back(wr);
  }
  host_.schedule_cpu_vci(
      vci, cfg.wqe_build_cpu * static_cast<std::int64_t>(batch.size()) + cfg.doorbell_cpu,
      [this, peer, batch = std::move(batch)] { net_.post_read_batch(peer, batch); });
}

void Rendezvous::on_cts(const MsgHeader& hdr, const CtsRkeys& rkeys) {
  auto it = outstanding_.find(hdr.sender_cookie);
  if (it == outstanding_.end()) {
    if (net_.fault_enabled()) {
      // A replayed CTS (its first copy did arrive; the sender's CQE errored)
      // for a send that has since completed.
      dup_ctl_dropped_.inc();
      return;
    }
    throw std::logic_error("Rendezvous: unknown request cookie " +
                           std::to_string(hdr.sender_cookie));
  }
  Request req = it->second;
  IB12X_DEBUG(host_.simulator().now(), "rank%d: CTS for cookie %llu size %llu chunk %u",
              host_.rank(), (unsigned long long)hdr.sender_cookie, (unsigned long long)hdr.size,
              (unsigned)hdr.chunk);
  req->peer_cookie = hdr.receiver_cookie;
  if (send_progress_.count(hdr.sender_cookie) != 0) {
    start_chunk_writes(req->peer, req, hdr, rkeys);
  } else {
    if (net_.fault_enabled() && req->pending_writes > 0) {
      dup_ctl_dropped_.inc();  // replayed CTS while the writes are in flight
      return;
    }
    start_writes(req->peer, req, hdr, rkeys);
  }
}

std::vector<Rendezvous::Stripe> Rendezvous::plan_stripes(int peer, const Request& req,
                                                         std::int64_t base_off,
                                                         std::int64_t bytes) {
  const Config& cfg = host_.config();
  const int nrails = net_.nrails(peer);
  const int vci = req->vci;
  const int base = vci * nrails;  // the VCI's flat rail-slice origin

  // Candidate rails: all of the VCI's slice normally — through the identity
  // overload of mvx::plan_stripes, so the fault-free path allocates no
  // candidate list — or the live subset under failover (already flat rail
  // indices).  If an outage leaves none, plan over the full set anyway: the
  // writes fail and the error path re-plans once something recovers.
  std::vector<int> live;
  if (net_.fault_enabled()) live = net_.live_rails(peer, vci);
  const bool masked = !live.empty() && static_cast<int>(live.size()) < nrails;
  const int sched_n = masked ? static_cast<int>(live.size()) : nrails;
  const auto pick = [&](int pos) {
    return masked ? live[static_cast<std::size_t>(pos)] : base + pos;
  };

  std::vector<Stripe> stripes;
  if (req->lane >= 0) {
    // Multi-lane collective transfer: one un-striped write on the lane's
    // rail, bypassing the policy and leaving its cursor undisturbed (the
    // lanes themselves are the striping).
    stripes.push_back({pick(req->lane % sched_n), base_off, bytes});
    return stripes;
  }

  Schedule s = choose_schedule(cfg.policy, static_cast<CommKind>(req->kind), bytes, sched_n,
                               cfg.stripe_threshold, net_.cursor(peer, vci));
  if (s.stripe && bytes > 0) {
    // Striping over the candidate rails (never cutting below min_stripe);
    // stripe sizes follow the configured rail weights for WeightedStriping,
    // equal shares otherwise.  The split math lives in mvx::plan_stripes so
    // the failover re-plan and the property tests exercise the same code.
    static const std::vector<double> kNoWeights;
    const std::vector<double>& w =
        cfg.policy == Policy::WeightedStriping ? cfg.rail_weights : kNoWeights;
    if (masked) {
      return mvx::plan_stripes(bytes, base_off, live, cfg.min_stripe, w, net_.cursor(peer, vci));
    }
    std::vector<Stripe> planned =
        mvx::plan_stripes(bytes, base_off, sched_n, cfg.min_stripe, w, net_.cursor(peer, vci));
    if (base != 0) {  // lift the positional plan into the VCI's slice
      for (Stripe& st : planned) st.rail += base;
    }
    return planned;
  }
  if (cfg.policy == Policy::Adaptive) {
    const int rail =
        base + (net_.fault_enabled()
                    ? least_loaded_rail(net_.rail_outstanding(peer, vci), net_.rail_up(peer, vci))
                    : least_loaded_rail(net_.rail_outstanding(peer, vci)));
    stripes.push_back({rail, base_off, bytes});
  } else {
    stripes.push_back({pick(s.rail % sched_n), base_off, bytes});
  }
  return stripes;
}

void Rendezvous::start_writes(int peer, const Request& req, const MsgHeader& cts,
                              const CtsRkeys& rkeys) {
  const Config& cfg = host_.config();
  const std::int64_t bytes = req->bytes;

  // A forced stripe width (adaptive arm) overrides the marker policy's cut.
  const SendMeta* meta = nullptr;
  if (rndv_active_) {
    auto mit = send_meta_.find(cts.sender_cookie);
    if (mit != send_meta_.end()) meta = &mit->second;
  }
  std::vector<Stripe> stripes;
  if (meta != nullptr && meta->width > 0) {
    stripes = plan_limited(peer, req->vci, 0, bytes, meta->width);
    if (stripes.empty()) stripes.push_back({req->vci * net_.nrails(peer), 0, bytes});
  } else {
    stripes = plan_stripes(peer, req, 0, bytes);
  }

  sim::Time cost = cfg.ctl_cpu;
  std::array<ib::LKey, kMaxHcas> lkeys{};
  if (bytes > 0) {
    PinCache::Region* reg = pin_cache_->acquire(req->send_buf, bytes, &cost);
    send_pins_[cts.sender_cookie] = reg;
    for (int h = 0; h < kMaxHcas; ++h) lkeys[static_cast<std::size_t>(h)] = reg->mr[h].lkey;
  }

  // WriteImm: a single-stripe transfer folds the immediate into the data
  // write itself (true three-step rendezvous); multi-stripe transfers keep
  // plain writes and append a zero-byte trailing imm once all land.
  bool fold = false;
  std::uint32_t imm = 0;
  if (meta != nullptr && meta->proto == RndvProto::WriteImm) {
    if ((cts.receiver_cookie >> 28) != 0) {
      throw std::logic_error("Rendezvous: receiver cookie exceeds imm capacity");
    }
    imm = (static_cast<std::uint32_t>(req->vci) << 28) |
          static_cast<std::uint32_t>(cts.receiver_cookie);
    fold = stripes.size() == 1;
    imm_state_[cts.sender_cookie] = ImmState{imm, fold, req->vci, fold};
    if (fold && imm_folded_ != nullptr) imm_folded_->inc();
  }

  req->pending_writes = static_cast<int>(stripes.size());
  stripes_posted_.add(stripes.size());
  const std::uint64_t req_id = cts.sender_cookie;

  // Descriptor posting is serialized on the host CPU (WQE build + doorbell
  // per stripe), queued behind any other protocol work this rank is doing.
  // This is one of the per-stripe costs that make striping lose to
  // round-robin for medium messages (paper §3.2).
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const Stripe st = stripes[i];
    const sim::Time when = (i == 0 ? cost : 0) + cfg.post_cpu;
    const std::uint64_t raddr = cts.raddr;
    host_.schedule_cpu_vci(req->vci, when,
                           [this, peer, st, req_id, raddr, rkeys, lkeys, fold, imm] {
      Request req = peek_cookie(req_id);
      NetChannel::RndvStripe wr;
      wr.rail = st.rail;
      wr.src = static_cast<const std::byte*>(req->send_buf) + st.offset;
      wr.len = st.len;
      wr.raddr = raddr + static_cast<std::uint64_t>(st.offset);
      wr.req_id = req_id;
      wr.lkeys = lkeys;
      wr.rkeys = rkeys;
      if (fold) {
        net_.post_write_imm(peer, wr, imm);
      } else {
        net_.post_write(peer, wr);
      }
    });
  }
}

void Rendezvous::start_chunk_writes(int peer, const Request& req, const MsgHeader& cts,
                                    const CtsRkeys& rkeys) {
  const Config& cfg = host_.config();
  SendProgress& sp = send_progress_.at(cts.sender_cookie);
  // Dedup bookkeeping only under fault injection: replays cannot happen in
  // the fault-free model, and skipping it keeps the fault-free allocation
  // sequence untouched.
  if (net_.fault_enabled() &&
      !chunks_seen_[cts.sender_cookie].insert(cts.chunk).second) {
    dup_ctl_dropped_.inc();  // replayed CTS for a chunk already in progress
    return;
  }
  // Pipelined WriteImm: chunks move as plain writes; the FIN replacement is
  // a zero-byte trailing imm injected when the last chunk retires.
  if (rndv_active_ && imm_state_.count(cts.sender_cookie) == 0) {
    auto mit = send_meta_.find(cts.sender_cookie);
    if (mit != send_meta_.end() && mit->second.proto == RndvProto::WriteImm) {
      if ((cts.receiver_cookie >> 28) != 0) {
        throw std::logic_error("Rendezvous: receiver cookie exceeds imm capacity");
      }
      const std::uint32_t imm = (static_cast<std::uint32_t>(req->vci) << 28) |
                                static_cast<std::uint32_t>(cts.receiver_cookie);
      imm_state_[cts.sender_cookie] = ImmState{imm, false, req->vci, false};
    }
  }
  ++sp.cts_seen;
  cts_chunks_.inc();

  const std::int64_t off =
      static_cast<std::int64_t>(cts.chunk) * chunk_bytes(cfg, req->bytes);
  const std::int64_t len = static_cast<std::int64_t>(cts.size);

  // Pin the sender-side chunk (overlapped with the receiver pinning later
  // chunks), then build all of the chunk's stripe WQEs and ring one doorbell.
  sim::Time cost = cfg.ctl_cpu;
  std::array<ib::LKey, kMaxHcas> lkeys{};
  if (len > 0) {
    PinCache::Region* reg = pin_cache_->acquire(
        static_cast<const std::byte*>(req->send_buf) + off, len, &cost);
    sp.pins.push_back(reg);
    for (int h = 0; h < kMaxHcas; ++h) lkeys[static_cast<std::size_t>(h)] = reg->mr[h].lkey;
  }

  std::vector<Stripe> stripes = plan_stripes(peer, req, off, len);
  sp.chunk_writes[cts.chunk] = static_cast<int>(stripes.size());
  pipeline_depth_.track_max(sp.chunk_writes.size());
  stripes_posted_.add(stripes.size());

  // Doorbell batching: per-stripe WQE build, one uncached-MMIO doorbell for
  // the whole batch (instead of legacy's full post_cpu per stripe).
  cost += cfg.wqe_build_cpu * static_cast<std::int64_t>(stripes.size()) + cfg.doorbell_cpu;

  const std::uint64_t req_id = chunk_req_id(cts.sender_cookie, cts.chunk);
  const std::uint64_t chunk_base = cts.raddr;
  host_.schedule_cpu_vci(req->vci, cost, [this, peer, stripes = std::move(stripes), req_id,
                                          chunk_base, off, rkeys, lkeys] {
    const std::uint64_t cookie = req_id & kCookieMask;
    Request req = peek_cookie(cookie);
    std::vector<NetChannel::RndvStripe> batch;
    batch.reserve(stripes.size());
    for (const Stripe& st : stripes) {
      NetChannel::RndvStripe wr;
      wr.rail = st.rail;
      wr.src = static_cast<const std::byte*>(req->send_buf) + st.offset;
      wr.len = st.len;
      wr.raddr = chunk_base + static_cast<std::uint64_t>(st.offset - off);
      wr.req_id = req_id;
      wr.lkeys = lkeys;
      wr.rkeys = rkeys;
      batch.push_back(wr);
    }
    net_.post_write_batch(peer, batch);
  });
}

void Rendezvous::finish_send(int peer, std::uint64_t cookie, const Request& req) {
  // All stripes placed remotely (CQE implies remote visibility): tell the
  // receiver and complete the local send.  Under WriteImm the notification
  // already travelled with the immediate, so the FIN is elided.
  bool elide_fin = false;
  if (!imm_state_.empty()) {
    auto im = imm_state_.find(cookie);
    if (im != imm_state_.end()) {
      elide_fin = true;
      imm_state_.erase(im);
    }
  }
  if (!elide_fin) {
    MsgHeader fin;
    fin.type = MsgType::Fin;
    fin.vci = static_cast<std::uint8_t>(req->vci);
    fin.src_rank = host_.rank();
    fin.receiver_cookie = req->peer_cookie;
    net_.send_ctl(peer, fin, CtsRkeys{});
  }
  record_policy(cookie, req);
  outstanding_.erase(cookie);
  host_.complete_request(req);
}

void Rendezvous::post_trailing_imm(int peer, std::uint64_t cookie, const Request& /*req*/,
                                   const ImmState& im) {
  // Zero-byte write-with-imm: consumes a receiver slot but carries no data;
  // post_write_imm scans the VCI slice for a live rail with a credit.
  NetChannel::RndvStripe wr;
  wr.rail = im.vci * net_.nrails(peer);
  wr.len = 0;
  wr.req_id = cookie;
  if (imm_sent_ != nullptr) imm_sent_->inc();
  const std::uint32_t imm = im.imm;
  host_.schedule_cpu_vci(im.vci, host_.config().post_cpu,
                         [this, peer, wr, imm] { net_.post_write_imm(peer, wr, imm); });
}

void Rendezvous::on_write_done(int peer, std::uint64_t req_id) {
  const std::uint64_t cookie = req_id & kCookieMask;
  auto pit = send_progress_.find(cookie);
  if (pit == send_progress_.end()) {
    // Legacy one-shot protocol: a flat count of stripes in flight.
    Request req = peek_cookie(req_id);
    IB12X_DEBUG(host_.simulator().now(), "rank%d: write CQE cookie %llu remaining %d",
                host_.rank(), (unsigned long long)req_id, req->pending_writes - 1);
    if (--req->pending_writes == 0) {
      if (!imm_state_.empty()) {
        // Multi-stripe WriteImm: all data writes landed — the FIN
        // replacement (zero-byte trailing imm) goes out now and counts as
        // one more pending write; its CQE re-enters here and finishes.
        auto im = imm_state_.find(cookie);
        if (im != imm_state_.end() && !im->second.folded && !im->second.posted) {
          im->second.posted = true;
          req->pending_writes = 1;
          post_trailing_imm(peer, cookie, req, im->second);
          return;
        }
      }
      auto sit = send_pins_.find(req_id);
      if (sit != send_pins_.end()) {
        pin_cache_->release(sit->second);
        send_pins_.erase(sit);
      }
      finish_send(peer, req_id, req);
    }
    return;
  }

  SendProgress& sp = pit->second;
  const auto chunk = static_cast<std::uint32_t>(req_id >> 48);
  auto cit = sp.chunk_writes.find(chunk);
  if (cit == sp.chunk_writes.end()) {
    throw std::logic_error("Rendezvous: write CQE for unknown chunk");
  }
  if (--cit->second == 0) sp.chunk_writes.erase(cit);
  if (sp.cts_seen == sp.chunks_total && sp.chunk_writes.empty()) {
    Request req = peek_cookie(cookie);
    if (!imm_state_.empty()) {
      // Pipelined WriteImm: last chunk retired — inject the trailing imm as
      // a synthetic chunk-0 write before finishing.
      auto im = imm_state_.find(cookie);
      if (im != imm_state_.end() && !im->second.folded && !im->second.posted) {
        im->second.posted = true;
        sp.chunk_writes[0] = 1;
        post_trailing_imm(peer, cookie, req, im->second);
        return;
      }
    }
    IB12X_DEBUG(host_.simulator().now(), "rank%d: pipelined send %llu complete (%u chunks)",
                host_.rank(), (unsigned long long)cookie, sp.chunks_total);
    for (PinCache::Region* r : sp.pins) pin_cache_->release(r);
    send_progress_.erase(pit);
    if (net_.fault_enabled()) chunks_seen_.erase(cookie);
    finish_send(peer, cookie, req);
  }
}

void Rendezvous::on_write_failed(int peer, const RndvStripe& st) {
  restriped_.inc();
  RndvStripe retry = st;
  ++retry.attempts;
  if (retry.attempts > host_.config().fault.stripe_retry_limit) {
    throw std::runtime_error("Rendezvous: stripe retry limit exceeded to rank " +
                             std::to_string(peer));
  }
  if (!imm_state_.empty()) {
    // A failed imm-carrying write (folded data write, or the zero-byte
    // trailing imm) replays as an imm write: the receiver never saw the
    // immediate, and the data — if any — is idempotent to rewrite.  A dead
    // rail or empty credit pool is absorbed by post_write_imm's own scan
    // and pending queue.
    auto im = imm_state_.find(st.req_id & kCookieMask);
    if (im != imm_state_.end() && (im->second.folded || st.len == 0)) {
      const Config& cfg = host_.config();
      const std::uint32_t imm = im->second.imm;
      host_.schedule_cpu_vci(im->second.vci, cfg.wqe_build_cpu + cfg.doorbell_cpu,
                             [this, peer, retry, imm] { net_.post_write_imm(peer, retry, imm); });
      return;
    }
  }
  repost_stripe(peer, retry);
}

void Rendezvous::repost_stripe(int peer, const RndvStripe& st) {
  const Config& cfg = host_.config();
  const int vci = st.rail / net_.nrails(peer);  // recover the slice from the flat rail
  std::vector<int> live = net_.live_rails(peer, vci);
  if (live.empty()) {
    // Total outage: wait one recovery interval and try again (bounded by the
    // per-stripe attempt budget).
    RndvStripe retry = st;
    ++retry.attempts;
    if (retry.attempts > cfg.fault.stripe_retry_limit) {
      throw std::runtime_error("Rendezvous: no rail recovered within the stripe retry budget");
    }
    sim::Simulator& sim = host_.simulator();
    sim.at(sim.now() + cfg.fault.rail_recovery,
           sim::boxed([this, peer, retry] { repost_stripe(peer, retry); }));
    return;
  }

  std::vector<Stripe> parts =
      mvx::plan_stripes(st.len, 0, live, cfg.min_stripe, {}, net_.cursor(peer, vci));
  if (parts.empty()) parts.push_back({live.front(), 0, st.len});  // zero-byte stripe

  // The failed stripe was already counted once in the in-flight bookkeeping;
  // splitting it over k live rails adds k-1 writes.  Account them before any
  // completion can retire the chunk.
  const int extra = static_cast<int>(parts.size()) - 1;
  const std::uint64_t cookie = st.req_id & kCookieMask;
  auto pit = send_progress_.find(cookie);
  if (pit != send_progress_.end()) {
    pit->second.chunk_writes.at(static_cast<std::uint32_t>(st.req_id >> 48)) += extra;
  } else {
    peek_cookie(cookie)->pending_writes += extra;
  }
  stripes_posted_.add(parts.size());

  std::vector<NetChannel::RndvStripe> batch;
  batch.reserve(parts.size());
  for (const Stripe& p : parts) {
    RndvStripe wr = st;  // inherits req_id, lkeys, rkeys, attempts
    wr.rail = p.rail;
    wr.src = st.src + p.offset;
    wr.len = p.len;
    wr.raddr = st.raddr + static_cast<std::uint64_t>(p.offset);
    batch.push_back(wr);
  }
  host_.schedule_cpu_vci(
      vci, cfg.wqe_build_cpu * static_cast<std::int64_t>(batch.size()) + cfg.doorbell_cpu,
      [this, peer, batch = std::move(batch)] { net_.post_write_batch(peer, batch); });
}

void Rendezvous::on_fin(const MsgHeader& hdr) {
  auto oit = outstanding_.find(hdr.receiver_cookie);
  if (oit == outstanding_.end()) {
    if (net_.fault_enabled()) {
      dup_ctl_dropped_.inc();  // replayed FIN for an already-finished receive
      return;
    }
    throw std::logic_error("Rendezvous: unknown request cookie " +
                           std::to_string(hdr.receiver_cookie));
  }
  Request req = oit->second;
  outstanding_.erase(oit);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: FIN for cookie %llu", host_.rank(),
              (unsigned long long)hdr.receiver_cookie);
  auto it = recv_progress_.find(hdr.receiver_cookie);
  if (it != recv_progress_.end()) {
    for (PinCache::Region* r : it->second.pins) pin_cache_->release(r);
    recv_progress_.erase(it);
  }
  host_.schedule_cpu_vci(hdr.vci, host_.config().ctl_cpu,
                         [this, req] { host_.complete_request(req); });
}

void Rendezvous::on_done(const MsgHeader& hdr) {
  // Sender side of ReadRts: the receiver finished pulling.  Mirrors on_fin,
  // but keyed by the *sender* cookie and releasing the sender-side pin.
  auto oit = outstanding_.find(hdr.sender_cookie);
  if (oit == outstanding_.end()) {
    if (net_.fault_enabled()) {
      dup_ctl_dropped_.inc();  // replayed Done for an already-finished send
      return;
    }
    throw std::logic_error("Rendezvous: unknown request cookie " +
                           std::to_string(hdr.sender_cookie));
  }
  Request req = oit->second;
  outstanding_.erase(oit);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: Done for cookie %llu", host_.rank(),
              (unsigned long long)hdr.sender_cookie);
  auto sit = send_pins_.find(hdr.sender_cookie);
  if (sit != send_pins_.end()) {
    pin_cache_->release(sit->second);
    send_pins_.erase(sit);
  }
  record_policy(hdr.sender_cookie, req);
  host_.schedule_cpu_vci(hdr.vci, host_.config().ctl_cpu,
                         [this, req] { host_.complete_request(req); });
}

void Rendezvous::on_imm(std::uint32_t imm_data) {
  // WriteImm receiver completion: the FIN is elided, so everything needed to
  // finish — the VCI for CPU routing and the receiver cookie — is decoded
  // from the immediate itself, never from CTS-echoed header fields (which do
  // not exist on this path).  Releasing the pins here is what keeps the
  // PinCache balanced without a FIN.
  const int vci = static_cast<int>(imm_data >> 28);
  const std::uint64_t rcookie = imm_data & ((std::uint32_t{1} << 28) - 1);
  auto oit = outstanding_.find(rcookie);
  if (oit == outstanding_.end()) {
    if (net_.fault_enabled()) {
      dup_ctl_dropped_.inc();  // replayed imm (its first copy did land)
      return;
    }
    throw std::logic_error("Rendezvous: unknown request cookie " + std::to_string(rcookie));
  }
  Request req = oit->second;
  outstanding_.erase(oit);
  IB12X_DEBUG(host_.simulator().now(), "rank%d: imm completion for cookie %llu vci %d",
              host_.rank(), (unsigned long long)rcookie, vci);
  auto it = recv_progress_.find(rcookie);
  if (it != recv_progress_.end()) {
    for (PinCache::Region* r : it->second.pins) pin_cache_->release(r);
    recv_progress_.erase(it);
  }
  host_.schedule_cpu_vci(vci, host_.config().ctl_cpu,
                         [this, req] { host_.complete_request(req); });
}

}  // namespace ib12x::mvx
