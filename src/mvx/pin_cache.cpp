#include "mvx/pin_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "ib/hca.hpp"

namespace ib12x::mvx {

namespace {
constexpr std::int64_t kPageBytes = 4096;
}

PinCache::PinCache(const std::vector<ib::Hca*>& hcas, const Options& opts, Counter& hits,
                   Counter& misses, Counter& evictions)
    : hcas_(hcas), opts_(opts), hits_(hits), misses_(misses), evictions_(evictions) {}

PinCache::~PinCache() = default;

PinCache::Region* PinCache::find(std::uint64_t base, std::int64_t bytes) {
  if (opts_.interval) {
    // Greatest entry base <= query base; a hit must cover the whole interval.
    auto it = regions_.upper_bound(base);
    if (it != regions_.begin()) {
      --it;
      Region* r = it->second.get();
      if (r->base + static_cast<std::uint64_t>(r->len) >=
          base + static_cast<std::uint64_t>(bytes)) {
        return r;
      }
      // An exact-base entry that is too short would shadow every future
      // lookup from this base: replace it rather than accumulate.
      if (r->base == base) detach(r);
    }
    return nullptr;
  }
  auto it = regions_.find(base);
  if (it == regions_.end()) return nullptr;
  if (it->second->len >= bytes) return it->second.get();
  // Legacy semantics: a cached entry that is too small is dropped and the
  // buffer (cheaply) re-registered at the larger size.
  detach(it->second.get());
  return nullptr;
}

PinCache::Region* PinCache::acquire(const void* buf, std::int64_t bytes, sim::Time* cpu_cost) {
  const std::uint64_t base = reinterpret_cast<std::uint64_t>(buf);
  if (Region* r = find(base, bytes)) {
    *cpu_cost += opts_.hit_cpu;
    hits_.inc();
    ++r->pins;
    lru_.splice(lru_.end(), lru_, r->lru);  // most recently used
    return r;
  }

  auto reg = std::make_unique<Region>();
  reg->base = base;
  reg->len = bytes;
  for (std::size_t h = 0; h < hcas_.size(); ++h) {
    reg->mr[h] = hcas_[h]->mem().register_memory(const_cast<void*>(buf),
                                                 static_cast<std::size_t>(bytes));
  }
  const std::int64_t pages = (bytes + kPageBytes - 1) / kPageBytes;
  *cpu_cost += opts_.miss_cpu + opts_.page_cpu * pages;
  misses_.inc();

  Region* r = reg.get();
  auto [it, inserted] = regions_.emplace(base, std::move(reg));
  if (!inserted) throw std::logic_error("PinCache: duplicate base after failed lookup");
  r->pins = 1;
  r->lru = lru_.insert(lru_.end(), base);
  resident_bytes_ += bytes;
  evict_to_capacity();
  return r;
}

void PinCache::release(Region* r) {
  if (r->pins <= 0) throw std::logic_error("PinCache: release without matching acquire");
  --r->pins;
  if (r->zombie && r->pins == 0) {
    deregister(r);
    auto it = std::find_if(zombies_.begin(), zombies_.end(),
                           [r](const std::unique_ptr<Region>& z) { return z.get() == r; });
    if (it == zombies_.end()) throw std::logic_error("PinCache: unknown zombie region");
    zombies_.erase(it);
  }
}

void PinCache::detach(Region* r) {
  lru_.erase(r->lru);
  resident_bytes_ -= r->len;
  auto it = regions_.find(r->base);
  if (r->pins == 0) {
    deregister(r);
    regions_.erase(it);
    return;
  }
  // Still referenced by in-flight RDMA: keep the registration alive until
  // the last release (delayed deregistration).  Region* handles stay valid —
  // the node just moves from the map to the zombie list.
  r->zombie = true;
  zombies_.push_back(std::move(it->second));
  regions_.erase(it);
}

void PinCache::deregister(Region* r) {
  for (std::size_t h = 0; h < hcas_.size(); ++h) hcas_[h]->mem().deregister(r->mr[h]);
}

void PinCache::evict_to_capacity() {
  if (opts_.capacity <= 0) return;
  auto it = lru_.begin();
  while (resident_bytes_ > opts_.capacity && it != lru_.end()) {
    Region* r = regions_.at(*it).get();
    if (r->pins > 0) {
      ++it;  // never evict an interval the hardware may still be writing from
      continue;
    }
    it = lru_.erase(it);
    resident_bytes_ -= r->len;
    deregister(r);
    regions_.erase(r->base);
    evictions_.inc();
  }
}

}  // namespace ib12x::mvx
