// MVAPICH's adaptive RDMA fast path as a channel: small eager messages are
// RDMA-written into a per-peer ring the receiver polls, bypassing the
// responder's receive-descriptor and CQE processing.  The channel owns the
// rings, staging buffers, and slot credits; the actual write is posted on
// rail 0 through the NetChannel so rail accounting stays in one place.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "ib/verbs.hpp"
#include "mvx/channel.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

class NetChannel;

class FastPathChannel final : public Channel {
 public:
  FastPathChannel(ChannelHost& host, NetChannel& net);

  /// Registers the rings between two channels (the addr/rkey exchange
  /// happens out of band at setup; real MVAPICH piggybacks it on connection
  /// establishment).  No-op unless cfg.use_rdma_fast_path.
  static void connect(FastPathChannel& a, FastPathChannel& b);

  /// Accepts small messages while the peer ring has free slots; exhaustion
  /// falls through to the net channel's eager path.
  [[nodiscard]] bool accepts(int peer, std::int64_t bytes) const override;

  void send(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
            const Request& req) override;

  /// Event-context twin of send() for flushing sends queued behind a lazy
  /// handshake.  The caller must have checked accepts(); the slot and credit
  /// are reserved synchronously, so this cannot fail.
  void send_evt(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
                const Request& req);

 private:
  struct Peer {
    FastPathChannel* remote = nullptr;
    std::vector<std::byte> recv_ring;   ///< my inbound ring (peer writes here)
    std::vector<std::byte> send_stage;  ///< local staging for in-flight writes
    ib::LKey stage_lkey = 0;
    std::uint64_t raddr = 0;  ///< peer ring base address
    ib::RKey rkey = 0;
    std::size_t slot_bytes = 0;
    int head = 0;     ///< next slot to write
    int credits = 0;  ///< free peer-ring slots
  };

  /// Receiver side: the poll loop noticed a completed write in ring slot
  /// `slot` from `src` (invoked via the write's delivered_cb).
  void arrival(int src, int slot);
  /// Sender side: the receiver drained the slot — credit comes back
  /// (modelled as a piggybacked credit, no wire cost).
  void credit_return(int peer);

  NetChannel& net_;
  std::map<int, Peer> peers_;
  Counter& sent_;
  Counter& bytes_sent_;
};

}  // namespace ib12x::mvx
