#include "mvx/matcher.hpp"

#include <utility>

namespace ib12x::mvx {

Matcher::Matcher(TelemetryRegistry& tel)
    : unexpected_ctr_(tel.counter("matcher.unexpected")),
      reorder_parked_ctr_(tel.counter("matcher.reorder_parked")),
      reorder_depth_peak_(tel.counter("matcher.reorder_depth_peak")),
      matched_ctr_(tel.counter("matcher.matched")),
      dup_dropped_(tel.counter("fault.dup_dropped")) {}

std::uint32_t Matcher::next_send_seq(int peer, int ctx, int vci) {
  return send_seq_[{peer, ctx, vci}]++;
}

std::vector<Matcher::Inbound> Matcher::sequence(int peer, const MsgHeader& hdr,
                                                std::vector<std::byte> payload) {
  std::vector<Inbound> ready;
  const int vci = hdr.vci;
  std::uint32_t& next = next_seq_[{peer, hdr.ctx, vci}];
  if (hdr.seq < next ||
      (hdr.seq != next && reorder_.count({peer, hdr.ctx, vci, hdr.seq}) != 0)) {
    // Duplicate delivery: a fault-injection replay of a message whose first
    // copy arrived but whose sender-side CQE reported an error.  Unreachable
    // without fault injection (every seq is delivered exactly once).
    dup_dropped_.inc();
    return ready;
  }
  if (hdr.seq != next) {
    // Arrived ahead of order (multi-rail round robin / striping race): park
    // until the gap closes.
    reorder_.emplace(std::make_tuple(peer, hdr.ctx, vci, hdr.seq),
                     Inbound{hdr, std::move(payload)});
    reorder_parked_ctr_.inc();
    reorder_depth_peak_.track_max(reorder_.size());
    return ready;
  }
  ++next;
  ready.push_back(Inbound{hdr, std::move(payload)});
  // Drain any now-contiguous parked messages.
  for (auto it = reorder_.find({peer, hdr.ctx, vci, next}); it != reorder_.end();
       it = reorder_.find({peer, hdr.ctx, vci, next})) {
    ready.push_back(std::move(it->second));
    reorder_.erase(it);
    ++next;
  }
  return ready;
}

bool Matcher::header_matches(const MsgHeader& hdr, int src, int tag, int ctx) {
  if (hdr.ctx != ctx) return false;
  if (src != -1 && hdr.src_rank != src) return false;
  if (tag != -1 && hdr.tag != tag) return false;
  return true;
}

Request Matcher::match_posted(const MsgHeader& hdr) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!header_matches(hdr, it->src, it->tag, it->ctx)) continue;
    Request req = it->req;
    posted_.erase(it);
    matched_ctr_.inc();
    return req;
  }
  return nullptr;
}

void Matcher::store_unexpected(Inbound&& msg) {
  unexpected_ctr_.inc();
  unexpected_.push_back(std::move(msg));
}

std::optional<Matcher::Inbound> Matcher::claim_unexpected(int src, int tag, int ctx) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!header_matches(it->hdr, src, tag, ctx)) continue;
    Inbound msg = std::move(*it);
    unexpected_.erase(it);
    matched_ctr_.inc();
    return msg;
  }
  return std::nullopt;
}

void Matcher::post(Request req, int src, int tag, int ctx) {
  posted_.push_back(PostedRecv{std::move(req), src, tag, ctx});
}

bool Matcher::iprobe(int src, int tag, int ctx, Status* st) const {
  for (const Inbound& u : unexpected_) {
    if (!header_matches(u.hdr, src, tag, ctx)) continue;
    if (st != nullptr) {
      *st = {u.hdr.src_rank, u.hdr.tag, static_cast<std::int64_t>(u.hdr.size)};
    }
    return true;
  }
  return false;
}

}  // namespace ib12x::mvx
