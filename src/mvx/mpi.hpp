// Umbrella header: the complete public API of the mvx MPI substrate.
#pragma once

#include "mvx/comm.hpp"      // IWYU pragma: export
#include "mvx/config.hpp"    // IWYU pragma: export
#include "mvx/datatype.hpp"  // IWYU pragma: export
#include "mvx/endpoint.hpp"  // IWYU pragma: export
#include "mvx/policy.hpp"    // IWYU pragma: export
#include "mvx/request.hpp"   // IWYU pragma: export
#include "mvx/telemetry.hpp" // IWYU pragma: export
#include "mvx/world.hpp"     // IWYU pragma: export
