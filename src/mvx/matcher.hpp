// MPI tag matching, decoupled from the endpoint (paper fig. 2's "tag
// matching" box plus the ordering restoration the multi-rail design needs).
//
// The matcher owns three data structures:
//   * per-(peer, ctx, vci) sequence counters — send-side allocation and
//     receive-side reordering, so MPI ordering survives round-robin and
//     striped schedules that race messages across rails.  Each VCI is an
//     independent sequence space: ordering (and the fault-replay dedup key)
//     is only promised within one VCI, never across VCIs;
//   * the posted-receive queue, scanned in post order with MPI wildcard
//     (ANY_SOURCE / ANY_TAG) semantics;
//   * the unexpected queue, scanned in arrival order by receives and probes.
//
// It is a pure data structure: no simulator, process, or channel types, so
// it is unit-testable in isolation.  The endpoint drives it from both
// process context (post / claim_unexpected / iprobe) and event context
// (sequence / match_posted / store_unexpected).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "mvx/request.hpp"
#include "mvx/telemetry.hpp"
#include "mvx/wire.hpp"

namespace ib12x::mvx {

class Matcher {
 public:
  explicit Matcher(TelemetryRegistry& tel);

  /// A sequenced inbound message (Eager payload or Rts) awaiting matching.
  struct Inbound {
    MsgHeader hdr;
    std::vector<std::byte> payload;
  };

  // ---- sender side ----

  /// Allocates the next wire sequence number for (peer, ctx, vci).
  std::uint32_t next_send_seq(int peer, int ctx, int vci);

  // ---- receive side, step 1: per-(peer, ctx, vci) ordering ----

  /// Admits one arrival.  Returns the messages that are now deliverable in
  /// order: empty if `hdr.seq` is ahead of its turn (the message is parked
  /// until the gap closes), otherwise the message itself followed by any
  /// previously parked messages that became contiguous.
  std::vector<Inbound> sequence(int peer, const MsgHeader& hdr, std::vector<std::byte> payload);

  // ---- receive side, step 2: matching ----

  /// Matches an in-order arrival against the posted-receive queue; removes
  /// and returns the matching receive, or nullptr if none is posted.
  Request match_posted(const MsgHeader& hdr);

  /// Queues an arrival no posted receive matched.
  void store_unexpected(Inbound&& msg);

  // ---- process-context receive path ----

  /// Claims the first unexpected message matching (src, tag, ctx); wildcards
  /// use -1.  Returns nullopt when a receive should be posted instead.
  std::optional<Inbound> claim_unexpected(int src, int tag, int ctx);

  /// Appends to the posted-receive queue.
  void post(Request req, int src, int tag, int ctx);

  /// MPI_Iprobe semantics over the unexpected queue.
  bool iprobe(int src, int tag, int ctx, Status* st) const;

  [[nodiscard]] std::size_t posted_count() const { return posted_.size(); }
  [[nodiscard]] std::size_t unexpected_count() const { return unexpected_.size(); }
  [[nodiscard]] std::size_t reorder_count() const { return reorder_.size(); }

 private:
  struct PostedRecv {
    Request req;
    int src;  // -1 = any
    int tag;  // -1 = any
    int ctx;
  };

  static bool header_matches(const MsgHeader& hdr, int src, int tag, int ctx);

  // Sequence counters and the reorder park are keyed by (peer, ctx, vci):
  // every VCI is its own ordered stream, so a replayed (peer, seq) pair from
  // one VCI can never alias a live message on another.
  using SeqKey = std::tuple<int, int, int>;               // (peer, ctx, vci)
  std::map<SeqKey, std::uint32_t> send_seq_;
  std::map<SeqKey, std::uint32_t> next_seq_;              // receive side
  std::map<std::tuple<int, int, int, std::uint32_t>, Inbound> reorder_;  // (peer, ctx, vci, seq)

  std::vector<PostedRecv> posted_;
  std::list<Inbound> unexpected_;

  Counter& unexpected_ctr_;
  Counter& reorder_parked_ctr_;
  Counter& reorder_depth_peak_;
  Counter& matched_ctr_;
  Counter& dup_dropped_;  ///< replayed eager/RTS duplicates discarded
};

}  // namespace ib12x::mvx
