// World: the "mpirun" of the simulation.  Builds the cluster (fabric, HCAs,
// endpoints, rails, shm channels), spawns one simulated process per rank,
// and runs the user's rank function to completion in virtual time.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "ib/verbs.hpp"
#include "mvx/comm.hpp"
#include "mvx/config.hpp"
#include "mvx/endpoint.hpp"
#include "mvx/telemetry.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace ib12x::sim {
class ShardEngine;
}

namespace ib12x::mvx {

class World {
 public:
  World(ClusterSpec spec, Config cfg);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `rank_main` on every rank; returns when all ranks finish.  The
  /// simulation clock keeps its value across multiple run() calls.
  void run(const std::function<void(Communicator&)>& rank_main);

  [[nodiscard]] int ranks() const { return spec_.total_ranks(); }
  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  /// Simulator shards actually in use (1 without the parallel engine).
  [[nodiscard]] int shard_count() const { return static_cast<int>(sims_.size()); }
  /// Shard index node `node`'s objects live on (0 when unsharded).  Filled by
  /// the placement policy (Config::shard_placement): round-robin or fabric
  /// locality.
  [[nodiscard]] int node_shard(int node) const {
    return node_shard_.empty() ? 0 : node_shard_[static_cast<std::size_t>(node)];
  }
  /// The shard node `node`'s objects live on (== simulator() when unsharded).
  [[nodiscard]] sim::Simulator& shard_sim(int node) {
    return *sims_[static_cast<std::size_t>(node_shard(node))];
  }
  /// Events processed across every shard (the oracle-comparable total).
  [[nodiscard]] std::uint64_t events_processed() const {
    std::uint64_t n = 0;
    for (const sim::Simulator* s : sims_) n += s->events_processed();
    return n;
  }
  [[nodiscard]] ib::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] Endpoint& endpoint(int rank) { return *eps_.at(static_cast<std::size_t>(rank)); }

  /// Process-wide telemetry: counters from every rank's channels, matcher,
  /// and rendezvous engine, plus gauges sampled from the ib HCA model.
  [[nodiscard]] TelemetryRegistry& telemetry() { return tel_; }
  [[nodiscard]] const TelemetryRegistry& telemetry() const { return tel_; }

  /// Virtual time when the last rank finished the most recent run().
  [[nodiscard]] sim::Time end_time() const { return end_time_; }

  // Context-id allocation for dup/split (see Communicator).  Atomic because
  // ranks on different shards may dup/split concurrently; the CAS-max keeps
  // allocations monotone (concurrent allocations on distinct shards remain a
  // documented timing-dependent corner, exactly as interleaved allocations
  // were under the single-threaded engine).
  [[nodiscard]] int peek_next_ctx() const { return next_ctx_.load(std::memory_order_relaxed); }
  void bump_ctx(int at_least) {
    int cur = next_ctx_.load(std::memory_order_relaxed);
    while (cur < at_least &&
           !next_ctx_.compare_exchange_weak(cur, at_least, std::memory_order_relaxed)) {
    }
  }

 private:
  /// Builds every channel between ranks `i` and `j` (shm or net+fast-path)
  /// and marks both connection managers Ready.  Idempotent; used by both the
  /// legacy all-pairs loop and the lazy managers' wire function.
  void wire_pair(int i, int j);

  void run_sharded(const std::function<void(Communicator&)>& rank_main);

  ClusterSpec spec_;
  Config cfg_;
  sim::Simulator sim_;
  // Parallel engine state.  Declared before fabric_/eps_ on purpose: members
  // destroy in reverse order, so the fabric (whose HCAs point at shard
  // simulators) and endpoints go away before the extra simulators and the
  // engine do.  shard_sims_ owns shards 1..N-1; shard 0 is sim_ itself so
  // sim_shards = 1 shares every code path with the legacy engine.
  std::vector<std::unique_ptr<sim::Simulator>> shard_sims_;
  std::unique_ptr<sim::ShardEngine> engine_;
  std::vector<sim::Simulator*> sims_;  ///< all shards; size 1 when unsharded
  std::vector<int> node_shard_;        ///< node -> shard index (placement policy)
  std::unique_ptr<ib::Fabric> fabric_;
  std::vector<std::vector<ib::Hca*>> node_hcas_;
  TelemetryRegistry tel_;  ///< declared before eps_: endpoints hold handles into it
  std::vector<std::unique_ptr<Endpoint>> eps_;
  sim::Time end_time_ = 0;
  std::atomic<int> next_ctx_{2};  // ctx 0/1 belong to the world communicator
};

}  // namespace ib12x::mvx
