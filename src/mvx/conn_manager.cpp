#include "mvx/conn_manager.hpp"

#include <stdexcept>
#include <string>

namespace ib12x::mvx {

ConnManager::ConnManager(ChannelHost& host)
    : host_(host),
      established_(host.telemetry().counter("conn.established")),
      inflight_hwm_(host.telemetry().counter("conn.handshakes_inflight")) {}

ConnManager::State ConnManager::state(int peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? State::Unconnected : it->second.st;
}

bool ConnManager::has_queued(int peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && !it->second.q.empty();
}

std::size_t ConnManager::queued(int peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.q.size();
}

std::vector<int> ConnManager::queued_peers() const {
  std::vector<int> out;
  for (const auto& [rank, pc] : peers_) {
    if (!pc.q.empty()) out.push_back(rank);
  }
  return out;
}

void ConnManager::initiate(int peer) {
  PeerConn& pc = peers_[peer];
  if (pc.st != State::Unconnected) return;
  pc.st = State::Connecting;
  ++inflight_;
  inflight_hwm_.track_max(static_cast<std::uint64_t>(inflight_));
  sim::Simulator& sim = host_.simulator();
  sim.at(sim.now() + host_.config().conn_setup_latency,
         [this, peer] { complete_handshake(peer); });
}

void ConnManager::complete_handshake(int peer) {
  --inflight_;
  PeerConn& pc = peers_[peer];
  if (pc.st == State::Ready) {
    // Simultaneous connect: the peer's handshake landed first and its wire
    // function already built this pair (and marked us Ready).  Nothing to
    // wire — just make sure anything queued meanwhile drains.
    if (flush_fn_) flush_fn_(peer);
    return;
  }
  if (!wire_fn_) {
    throw std::logic_error("ConnManager: handshake completed with no wire function");
  }
  // wire_fn_ wires both endpoints of the pair and calls mark_ready on both
  // managers (which flushes this side's queue).
  wire_fn_(peer);
  if (pc.st != State::Ready) {
    throw std::logic_error("ConnManager: wire function left peer " + std::to_string(peer) +
                           " not Ready");
  }
}

void ConnManager::mark_ready(int peer) {
  PeerConn& pc = peers_[peer];
  if (pc.st == State::Ready) return;
  pc.st = State::Ready;
  established_.inc();
  if (flush_fn_) flush_fn_(peer);
}

void ConnManager::enqueue(int peer, QueuedSend qs) {
  peers_[peer].q.push_back(std::move(qs));
}

QueuedSend& ConnManager::front(int peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.q.empty()) {
    throw std::logic_error("ConnManager: front() on empty queue");
  }
  return it->second.q.front();
}

void ConnManager::pop_front(int peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.q.empty()) {
    throw std::logic_error("ConnManager: pop_front() on empty queue");
  }
  it->second.q.pop_front();
}

}  // namespace ib12x::mvx
