// The public MPI-like interface of the substrate.
//
// A Communicator is the per-rank handle user code receives from World::run.
// Point-to-point calls are routed through the ADI endpoint with the
// communication marker set from the call type (send/recv = blocking,
// isend/irecv = non-blocking); collectives run pt2pt algorithms whose
// internal transfers are marked Collective — exactly the distinction the
// EPC policy keys on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mvx/coll/select.hpp"
#include "mvx/coll/tags.hpp"
#include "mvx/datatype.hpp"
#include "mvx/endpoint.hpp"
#include "mvx/policy.hpp"
#include "mvx/request.hpp"
#include "sim/time.hpp"

namespace ib12x::mvx {

namespace coll {
struct BuildCtx;
}

class World;

inline constexpr int ANY_SOURCE = -1;
inline constexpr int ANY_TAG = -1;

class Communicator {
 public:
  Communicator(World* world, Endpoint* ep, std::vector<int> group, int my_index, int ctx_base);

  [[nodiscard]] int rank() const { return my_index_; }
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }
  [[nodiscard]] int world_rank(int comm_rank) const {
    return group_.at(static_cast<std::size_t>(comm_rank));
  }

  // ---- point-to-point ----
  void send(const void* buf, std::size_t count, Datatype dt, int dst, int tag);
  void recv(void* buf, std::size_t count, Datatype dt, int src, int tag, Status* st = nullptr);
  Request isend(const void* buf, std::size_t count, Datatype dt, int dst, int tag);
  Request irecv(void* buf, std::size_t count, Datatype dt, int src, int tag);
  void wait(const Request& r, Status* st = nullptr);
  void waitall(std::vector<Request>& reqs);
  /// MPI_Waitany: blocks until at least one request is complete and returns
  /// the lowest complete index (-1 if `reqs` is empty / all null).
  int waitany(const std::vector<Request>& reqs);
  /// MPI_Waitsome: blocks until at least one request is complete and returns
  /// every complete index (empty if `reqs` is empty / all null).
  std::vector<int> waitsome(const std::vector<Request>& reqs);
  bool test(const Request& r);
  void sendrecv(const void* sbuf, std::size_t scount, Datatype sdt, int dst, int stag,
                void* rbuf, std::size_t rcount, Datatype rdt, int src, int rtag,
                Status* st = nullptr);
  /// MPI_Iprobe: true if a matching message has arrived (unreceived).
  bool iprobe(int src, int tag, Status* st = nullptr);
  /// MPI_Probe: blocks until a matching message arrives.
  void probe(int src, int tag, Status* st = nullptr);

  // ---- non-blocking collectives (schedule-engine backed) ----
  //
  // Each call compiles the collective into a CollSchedule (mvx/coll/) and
  // hands it to the endpoint's CollEngine; the returned Request completes
  // when the whole schedule has executed and is waitable exactly like a
  // pt2pt request (wait / waitall / waitany / test).  All buffers must stay
  // untouched until completion, as MPI requires.
  Request ibarrier();
  Request ibcast(void* buf, std::size_t count, Datatype dt, int root);
  Request ireduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt, Op op,
                  int root);
  Request iallreduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt, Op op);
  Request iallgather(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt);
  Request ialltoall(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt);

  // ---- collectives (blocking = build schedule, then wait) ----
  void barrier();
  void bcast(void* buf, std::size_t count, Datatype dt, int root);
  void reduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt, Op op, int root);
  void allreduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt, Op op);
  void gather(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt, int root);
  void scatter(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt, int root);
  void allgather(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt);
  void alltoall(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt);
  void alltoallv(const void* sendbuf, const std::vector<std::int64_t>& scounts,
                 const std::vector<std::int64_t>& sdispls, void* recvbuf,
                 const std::vector<std::int64_t>& rcounts,
                 const std::vector<std::int64_t>& rdispls, Datatype dt);
  /// MPI_Reduce_scatter_block: reduce then scatter equal blocks.
  void reduce_scatter_block(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                            Op op);
  /// MPI_Scan (inclusive prefix reduction by rank order).
  void scan(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt, Op op);
  /// MPI_Allgatherv.
  void allgatherv(const void* sendbuf, std::size_t sendcount, void* recvbuf,
                  const std::vector<std::int64_t>& counts,
                  const std::vector<std::int64_t>& displs, Datatype dt);
  /// MPI_Gatherv (root collects variable-size blocks).
  void gatherv(const void* sendbuf, std::size_t sendcount, void* recvbuf,
               const std::vector<std::int64_t>& counts, const std::vector<std::int64_t>& displs,
               Datatype dt, int root);

  // ---- communicator management ----
  Communicator dup();
  /// MPI_Comm_split: every member calls with a color (>=0) and key; members
  /// sharing a color form a new communicator ordered by (key, old rank).
  Communicator split(int color, int key);

  // ---- time ----
  [[nodiscard]] sim::Time now() const;
  [[nodiscard]] double wtime() const { return sim::to_s(now()); }
  /// Charges virtual compute time to this rank (models application work).
  void compute(sim::Time t);

  [[nodiscard]] Endpoint& endpoint() const { return *ep_; }

  /// Index of the modeled app thread driving this call (0 unless the rank
  /// was configured with vci.threads > 1 and this fiber was registered).
  [[nodiscard]] int thread_id() const { return ep_->current_thread(); }

  /// Test hook: this communicator's collective tag ring (wraparound tests).
  [[nodiscard]] coll::TagRing& debug_tag_ring() { return *tag_ring_; }

 private:
  friend class World;

  /// Internal pt2pt with an explicit communication-marker kind.
  Request isend_kind(CommKind kind, const void* buf, std::size_t bytes, int dst, int tag, int ctx);
  Request irecv_ctx(void* buf, std::size_t bytes, int src, int tag, int ctx);

  /// Geometry half of a BuildCtx (p, me, group, ctx, cfg, rails).
  [[nodiscard]] coll::BuildCtx base_ctx() const;
  /// Reserves a tag slot (waiting out a wrap-boundary collision), selects
  /// the algorithm, builds the schedule and hands it to the engine.
  Request launch_coll(coll::CollKind kind, coll::BuildCtx& c, std::int64_t total_bytes,
                      std::size_t count);

  // self-messaging (same rank) is satisfied locally
  struct SelfMsg {
    int tag;
    int ctx;
    std::vector<std::byte> data;
  };
  std::vector<SelfMsg> self_q_;
  bool try_self_recv(void* buf, std::size_t bytes, int tag, int ctx, Status* st);

  World* world_;
  Endpoint* ep_;
  std::vector<int> group_;   ///< comm rank → world rank
  int my_index_;
  int ctx_base_;             ///< pt2pt ctx = ctx_base_, collective ctx = ctx_base_ + 1
  // shared_ptr: in-flight schedules hold the ring (for slot release on
  // completion) even if the Communicator object is moved or destroyed.
  std::shared_ptr<coll::TagRing> tag_ring_ = std::make_shared<coll::TagRing>();
};

}  // namespace ib12x::mvx
