// The ADI-layer endpoint: one per MPI rank.
//
// Since the channel decomposition this is a thin facade over the layered
// architecture (paper fig. 2, DESIGN.md "Architecture"):
//
//   * channels — ShmChannel (intra-node), FastPathChannel (RDMA polled
//     ring), NetChannel (rails, credits, eager protocol, completion
//     filter); each owns its per-peer transport state;
//   * Matcher — posted/unexpected queues, per-(pair, ctx) sequencing and
//     reordering, probe semantics;
//   * Rendezvous — RTS/CTS/FIN state machine, stripe planning, the
//     registration cache;
//   * TelemetryRegistry — named counters/gauges every layer registers.
//
// The facade routes each send to the highest-priority channel that accepts
// it, glues in-order arrivals into matching and protocol dispatch, and owns
// the two cross-cutting resources: the serialized host-CPU server for
// event-context protocol work, and the progress waitable blocking calls
// park on.
//
// Threading model: the owning rank's code runs in process context (and is
// charged CPU via Process::compute); network completions arrive in event
// context and communicate with the process through the progress Waitable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mvx/channel.hpp"
#include "mvx/config.hpp"
#include "mvx/policy.hpp"
#include "mvx/request.hpp"
#include "mvx/wire.hpp"
#include "sim/process.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"

namespace ib12x::ib {
class Hca;
}

namespace ib12x::mvx {

namespace coll {
class CollEngine;
}

class ConnManager;
class Counter;
class FastPathChannel;
class Matcher;
class NetChannel;
class Rendezvous;
class ShmChannel;
class TelemetryRegistry;

class Endpoint final : public ChannelHost {
 public:
  Endpoint(sim::Simulator& sim, int rank, int node, std::vector<ib::Hca*> node_hcas,
           const Config& cfg, TelemetryRegistry& tel);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Builds the rail set (hcas × ports × qps QP pairs) between two endpoints
  /// on different nodes, plus the RDMA fast-path rings if enabled.
  static void connect_net(Endpoint& a, Endpoint& b);

  /// Connects two endpoints on the same node through the shm channel.
  static void connect_shm(Endpoint& a, Endpoint& b);

  /// The lazy connection manager (always constructed; only consulted when
  /// Config::lazy_connect is on).  World injects the wire function.
  [[nodiscard]] ConnManager& conn() { return *conn_; }

  /// Binds the simulated process that runs this rank's code.
  void attach_process(sim::Process* p) { proc_ = p; }

  /// Registers one modeled application thread's fiber (vci.threads > 1).
  /// Thread 0 is the rank's main fiber; every registered fiber may issue
  /// sends/recvs concurrently and is mapped to a VCI by vci_for().
  void register_thread(sim::Process* p, int tid);

  /// Index of the modeled app thread running right now (0 when the current
  /// fiber is not a registered app thread — e.g. the collective-progress
  /// helper, or any fiber in the default single-threaded configuration).
  [[nodiscard]] int current_thread() const;

  /// The VCI carrying an operation issued from the current thread on
  /// communicator context `ctx`, per the configured thread → VCI mapping.
  [[nodiscard]] int vci_for(int ctx) const;

  // ---- process-context API (called by Communicator) ----

  /// `lane >= 0` pins the transfer to rail (lane % nrails) instead of letting
  /// the EPC policy schedule it — the multi-lane collective decomposition.
  Request start_send(CommKind kind, const void* buf, std::int64_t bytes, int dst, int tag, int ctx,
                     int lane = -1);
  Request start_recv(void* buf, std::int64_t capacity, int src, int tag, int ctx);
  void wait(const Request& r);
  [[nodiscard]] bool test(const Request& r) const { return r->done; }

  /// Non-blocking probe of the unexpected queue (MPI_Iprobe semantics: an
  /// in-order message matching (src, tag, ctx) has arrived but not been
  /// received).  Fills `st` on a hit.
  bool iprobe(int src, int tag, int ctx, Status* st);
  /// Blocking probe: waits until iprobe succeeds.
  void probe(int src, int tag, int ctx, Status* st);

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int node() const { return node_; }
  /// The process to charge CPU to: the currently executing fiber when there
  /// is one (the rank's own, or its collective-progress helper), otherwise
  /// the attached rank process.  This is what routes channel-level compute()
  /// charges to whichever fiber is actually driving the endpoint.
  [[nodiscard]] sim::Process& process() const override {
    if (sim::Process* cur = sim::Process::current()) return *cur;
    return *proc_;
  }
  /// The schedule executor for this rank's collectives.
  [[nodiscard]] coll::CollEngine& coll_engine() { return *coll_engine_; }
  [[nodiscard]] sim::Simulator& simulator() const override { return sim_; }
  [[nodiscard]] const Config& config() const override { return cfg_; }

  // ---- ChannelHost surface (channels and protocol modules call these) ----

  Matcher& matcher() override { return *matcher_; }
  TelemetryRegistry& telemetry() override { return tel_; }
  sim::Waitable& progress() override { return progress_; }
  void schedule_cpu(sim::Time cost, std::function<void()> fn) override;
  void schedule_cpu_vci(int vci, sim::Time cost, std::function<void()> fn) override;
  [[nodiscard]] sim::Time memcpy_time(std::int64_t bytes) const override;
  void ingress(int peer, const MsgHeader& hdr, std::vector<std::byte> payload) override;
  void on_ctl(const MsgHeader& hdr, const CtsRkeys& rkeys) override;
  void on_rndv_write_done(int peer, std::uint64_t req_id) override;
  void on_rndv_write_failed(int peer, const RndvStripe& st) override;
  void on_rndv_read_done(int peer, std::uint64_t req_id) override;
  void on_rndv_read_failed(int peer, const RndvStripe& st) override;
  void on_rndv_imm(std::uint32_t imm_data) override;
  void on_eager_resources_freed(int peer) override;
  void complete_request(const Request& req) override;

 private:
  /// Drains `peer`'s queued sends in FIFO order through the channels'
  /// event-context paths, stopping at the first one that cannot get
  /// resources (a later CQE re-flushes).
  void flush_queued(int peer);
  /// Matched eager arrival: copy out, then complete after the copy's CPU
  /// time has been charged (on the message's VCI progress server).
  void complete_recv(const Request& req, const MsgHeader& hdr, const std::byte* payload,
                     sim::Time extra_delay);

  /// Fiber-level VCI critical section, modeled only when vci.threads > 1:
  /// a thread entering a VCI's issue path acquires the VCI's lock (charging
  /// vci.lock_cpu) and contended acquisitions serialize behind the holder —
  /// the Zambre shared-VCI flatline.  No-ops in single-threaded ranks.
  void lock_vci(int vci);
  void unlock_vci(int vci);

  sim::Simulator& sim_;
  int rank_;
  int node_;
  Config cfg_;
  TelemetryRegistry& tel_;
  sim::Process* proc_ = nullptr;

  std::unique_ptr<Matcher> matcher_;
  std::unique_ptr<ConnManager> conn_;
  std::unique_ptr<NetChannel> net_;
  std::unique_ptr<ShmChannel> shm_;
  std::unique_ptr<FastPathChannel> fast_path_;
  std::unique_ptr<Rendezvous> rndv_;
  std::unique_ptr<coll::CollEngine> coll_engine_;

  sim::Server cpu_;  ///< serialized host-CPU time for event-context protocol work
  sim::Waitable progress_;

  // ---- VCI state (all empty/null in the default configuration) ----
  /// Dedicated progress servers of VCIs 1.. (VCI 0 keeps the legacy cpu_
  /// server, so single-VCI timing is bit-identical); each serializes its own
  /// VCI's event-context protocol work and runs in parallel with the others.
  std::vector<std::unique_ptr<sim::Server>> vci_cpu_;
  /// Registered app-thread fibers, indexed by thread id.
  std::vector<sim::Process*> thread_procs_;
  /// Per-VCI lock word (allocated only when vci.threads > 1).
  std::vector<std::uint8_t> vci_locked_;
  /// Gated vci.* counters — null/empty by default so snapshots are unchanged.
  std::vector<Counter*> vci_sends_;
  Counter* vci_lock_contentions_ = nullptr;
  Counter* vci_wakeups_ = nullptr;
};

}  // namespace ib12x::mvx
