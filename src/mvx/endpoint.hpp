// The ADI-layer endpoint: one per MPI rank.
//
// Responsibilities (paper fig. 2):
//   * communication marker      — records {blocking, non-blocking, collective}
//     per transfer and feeds the scheduling-policy table (policy.hpp);
//   * communication scheduler   — rail manager over multiple QPs/port, ports
//     and HCAs; executes single-rail or striped schedules;
//   * eager protocol            — bounce-buffer copies over Send/Recv channel
//     semantics with credit-based flow control (preposted receive WQEs);
//   * rendezvous protocol       — RTS → CTS(rkey) → striped RDMA writes →
//     FIN, with a registration cache for user buffers;
//   * completion filter         — demultiplexes CQEs back to requests;
//   * tag matching              — posted/unexpected queues with MPI ordering
//     restored across rails via per-(pair, context) sequence numbers;
//   * shared-memory channel     — intra-node peers bypass the HCA.
//
// Threading model: the owning rank's code runs in process context (and is
// charged CPU via Process::compute); network completions arrive in event
// context and communicate with the process through the progress Waitable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "ib/verbs.hpp"
#include "mvx/config.hpp"
#include "mvx/policy.hpp"
#include "mvx/request.hpp"
#include "mvx/wire.hpp"
#include "sim/process.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"

namespace ib12x::mvx {

/// Hard cap on HCAs per node the wire format supports (CTS carries one rkey
/// per HCA domain).
inline constexpr int kMaxHcas = 4;

/// CTS payload appended after MsgHeader: rkeys for every HCA domain of the
/// receiving node.
struct CtsRkeys {
  std::uint32_t rkey[kMaxHcas] = {0, 0, 0, 0};
};

class Endpoint {
 public:
  Endpoint(sim::Simulator& sim, int rank, int node, std::vector<ib::Hca*> node_hcas,
           const Config& cfg);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Builds the rail set (hcas × ports × qps QP pairs) between two endpoints
  /// on different nodes.
  static void connect_net(Endpoint& a, Endpoint& b);

  /// Connects two endpoints on the same node through the shm channel.
  static void connect_shm(Endpoint& a, Endpoint& b);

  /// Binds the simulated process that runs this rank's code.
  void attach_process(sim::Process* p) { proc_ = p; }

  // ---- process-context API (called by Communicator) ----

  Request start_send(CommKind kind, const void* buf, std::int64_t bytes, int dst, int tag, int ctx);
  Request start_recv(void* buf, std::int64_t capacity, int src, int tag, int ctx);
  void wait(const Request& r);
  [[nodiscard]] bool test(const Request& r) const { return r->done; }

  /// Non-blocking probe of the unexpected queue (MPI_Iprobe semantics: an
  /// in-order message matching (src, tag, ctx) has arrived but not been
  /// received).  Fills `st` on a hit.
  bool iprobe(int src, int tag, int ctx, Status* st);
  /// Blocking probe: waits until iprobe succeeds.
  void probe(int src, int tag, int ctx, Status* st);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] sim::Process& process() const { return *proc_; }
  [[nodiscard]] sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  struct Stats {
    std::uint64_t eager_sent = 0;
    std::uint64_t rndv_sent = 0;
    std::uint64_t stripes_posted = 0;
    std::uint64_t ctl_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t shm_sent = 0;
    std::uint64_t fast_path_sent = 0;
    std::uint64_t unexpected = 0;
    std::uint64_t credit_stalls = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // ---- internal structures ----

  /// A preposted receive slot on one QP; recycled after each inbound message.
  struct RecvSlot {
    ib::QueuePair* qp = nullptr;              ///< repost target (per-QP RQ mode)
    ib::SharedReceiveQueue* srq = nullptr;    ///< repost target (SRQ mode)
    std::vector<std::byte> buf;
    ib::LKey lkey = 0;
    int peer = -1;
  };

  /// One rail to one peer: a connected QP plus sender-side credits and the
  /// outstanding-byte gauge the Adaptive policy balances on.
  struct Rail {
    ib::QueuePair* qp = nullptr;
    int hca_index = 0;
    int credits = 0;
    std::int64_t outstanding = 0;
  };

  /// An eager bounce buffer registered in every local HCA domain.
  struct BounceBuf {
    std::vector<std::byte> data;
    ib::LKey lkey[kMaxHcas] = {0, 0, 0, 0};
  };

  /// A message (Eager payload or RTS) that passed sequencing but found no
  /// matching posted receive yet.
  struct Unexpected {
    MsgHeader hdr;
    std::vector<std::byte> payload;
  };

  /// Per-peer connection state.
  struct PeerConn {
    int peer = -1;
    bool shm = false;
    Endpoint* peer_ep = nullptr;  // shm channel / RDMA-fast-path back-pointer
    std::vector<Rail> rails;
    // ---- RDMA fast path (small eager messages over a polled ring) ----
    std::vector<std::byte> fp_recv_ring;   ///< my inbound ring (peer writes here)
    std::vector<std::byte> fp_send_stage;  ///< local staging for in-flight writes
    ib::LKey fp_stage_lkey = 0;
    std::uint64_t fp_raddr = 0;            ///< peer ring base address
    ib::RKey fp_rkey = 0;
    std::size_t fp_slot_bytes = 0;
    int fp_head = 0;                       ///< next slot to write
    int fp_credits = 0;                    ///< free peer-ring slots
    RailCursor cursor;
    std::map<int, std::uint32_t> send_seq;  // by ctx
    std::map<int, std::uint32_t> next_seq;  // by ctx, receive side
    std::map<std::pair<int, std::uint32_t>, Unexpected> reorder;  // (ctx, seq)
    sim::BandwidthServer shm_pipe;  // this → peer direction
    /// Control messages waiting for rail credit.
    std::deque<std::pair<MsgHeader, CtsRkeys>> pending_ctl;
  };

  struct PostedRecv {
    Request req;
    int src;  // -1 = any
    int tag;  // -1 = any
    int ctx;
  };

  /// Sender-side context attached to each send WQE via wr_id.
  struct SendCtx {
    enum class Kind : std::uint8_t { Bounce, RndvWrite, FpWrite } kind = Kind::Bounce;
    int peer = -1;
    int rail = -1;
    int bounce = -1;           // Bounce: index into bounce pool
    std::uint64_t req_id = 0;  // RndvWrite: outstanding request
    std::int64_t bytes = 0;    // outstanding-byte accounting
  };

  /// Rail with the fewest outstanding bytes (the Adaptive policy's pick).
  int least_loaded_rail(const PeerConn& c) const;

  // ---- helpers ----

  PeerConn& conn(int peer);
  [[nodiscard]] sim::Time memcpy_time(std::int64_t bytes) const;

  /// Blocks the process until rail `r` of `c` has a send credit and a bounce
  /// buffer is free; returns the bounce index.
  int acquire_bounce_and_credit(PeerConn& c, int rail);

  /// Sends header(+payload) on one rail, consuming a credit and a bounce
  /// buffer that the caller acquired.  Process- or event-context agnostic.
  void post_eager(PeerConn& c, int rail, int bounce, const MsgHeader& hdr,
                  const void* payload, std::int64_t bytes);

  /// Control-message send from event context: takes credit/bounce if
  /// available, otherwise queues until a credit returns.
  void send_ctl(PeerConn& c, const MsgHeader& hdr, const CtsRkeys& rkeys);
  void flush_pending_ctl(PeerConn& c);

  /// Registration cache lookup for rendezvous buffers; returns per-HCA keys
  /// and charges hit/miss cost to `*cpu_cost`.
  struct RegEntry {
    ib::MemoryRegion mr[kMaxHcas];
  };
  const RegEntry& register_cached(const void* buf, std::int64_t bytes, sim::Time* cpu_cost);

  // ---- protocol steps ----

  void send_eager_msg(PeerConn& c, CommKind kind, const void* buf, std::int64_t bytes,
                      int tag, int ctx, const Request& req);
  void send_rts(PeerConn& c, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                int ctx, const Request& req);
  void handle_cts(const MsgHeader& hdr, const CtsRkeys& rkeys);
  void start_rndv_writes(PeerConn& c, const Request& req, const MsgHeader& cts,
                         const CtsRkeys& rkeys);
  void handle_fin(const MsgHeader& hdr);
  /// Receiver side of a matched RTS: register, reply CTS.
  void accept_rndv(const MsgHeader& rts, const Request& req);

  // ---- inbound path (event context) ----

  void on_send_cqe(const ib::Wc& wc);
  void on_recv_cqe(const ib::Wc& wc);
  /// Sequencing: admit Eager/Rts messages in per-(pair, ctx) seq order.
  void sequence_incoming(PeerConn& c, const MsgHeader& hdr, const std::byte* payload);
  /// An in-order message enters matching.
  void deliver_ordered(PeerConn& c, const MsgHeader& hdr, std::vector<std::byte> payload);
  /// Tries to match an inbound message against the posted-receive queue.
  bool try_match_inbound(const MsgHeader& hdr, const std::byte* payload);
  void complete_recv(const Request& req, const MsgHeader& hdr, const std::byte* payload,
                     sim::Time extra_delay);
  void complete_request(const Request& req);

  // ---- shm channel ----
  void send_shm(PeerConn& c, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                int ctx, const Request& req);
  void receive_shm(int src, MsgHeader hdr, std::vector<std::byte> payload);

  // ---- RDMA fast path ----
  void send_fast_path(PeerConn& c, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                      int ctx, const Request& req);
  /// Receiver side: the poll loop noticed a completed write in ring slot
  /// `slot` from `src` (invoked via the write's delivered_cb).
  void fast_path_arrival(int src, int slot);
  /// Sender side: the receiver drained slot — credit comes back (modelled as
  /// a piggybacked credit, no wire cost).
  void fast_path_credit(int peer);

  std::uint64_t new_cookie(const Request& req);
  Request take_cookie(std::uint64_t id);
  Request peek_cookie(std::uint64_t id);

  /// Serializes event-context protocol work (stripe posting, CQE handling,
  /// control processing, receive copies) on this rank's host CPU: `fn` runs
  /// once the CPU has spent `cost` on it, queued behind earlier work.  This
  /// is what makes per-stripe software overheads bind at high message rates
  /// — the effect the paper attributes striping's medium-message losses to.
  void schedule_cpu(sim::Time cost, std::function<void()> fn);

  sim::Simulator& sim_;
  int rank_;
  int node_;
  std::vector<ib::Hca*> hcas_;
  Config cfg_;
  sim::Process* proc_ = nullptr;

  ib::CompletionQueue scq_;
  ib::CompletionQueue rcq_;

  std::map<int, PeerConn> conns_;
  std::vector<std::unique_ptr<RecvSlot>> recv_slots_;

  std::vector<BounceBuf> bounce_;
  std::vector<int> free_bounce_;

  std::vector<PostedRecv> posted_;
  std::list<Unexpected> unexpected_;

  std::map<std::uint64_t, Request> outstanding_;
  std::uint64_t next_cookie_ = 1;

  std::map<const void*, RegEntry> reg_cache_;
  std::vector<ib::SharedReceiveQueue*> srqs_;  ///< per local HCA, SRQ mode only

  sim::Server cpu_;  ///< serialized host-CPU time for event-context protocol work
  sim::Waitable progress_;
  Stats stats_;
};

}  // namespace ib12x::mvx
