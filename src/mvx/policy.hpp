// Multi-rail communication scheduling policies (§3.2 of the paper) and the
// communication-marker classification (§3.3).
//
// A *rail* is one queue pair: the cross product of HCAs × ports × QPs-per-
// port.  A policy maps (message kind, message size) to a schedule: either a
// single rail carries the whole message, or the message is striped across
// all rails.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ib12x::mvx {

enum class Policy : std::uint8_t {
  Binding,          ///< every message on one fixed rail (the paper's "original" baseline uses this with 1 QP/port)
  RoundRobin,       ///< whole messages on successive rails, circularly
  EvenStriping,     ///< messages >= stripe threshold split equally over all rails
  EPC,              ///< Enhanced Point-to-point and Collective: marker-driven (the paper's contribution)
  WeightedStriping, ///< extension: striping proportional to configured rail weights
  Adaptive,         ///< extension: whole messages to the least-loaded rail
};

/// What the ADI-layer communication marker knows about a transfer.
enum class CommKind : std::uint8_t {
  Blocking,     ///< MPI_Send/MPI_Recv: one message outstanding per pair
  Nonblocking,  ///< MPI_Isend/MPI_Irecv windows
  Collective,   ///< issued from inside a collective algorithm step
};

/// The scheduling decision for one message.
struct Schedule {
  bool stripe = false;  ///< split across all rails
  int rail = 0;         ///< rail index when !stripe
};

/// Per-peer scheduling state (round-robin cursor, outstanding bytes for the
/// adaptive policy).
struct RailCursor {
  int next = 0;
};

const char* to_string(Policy p);
const char* to_string(CommKind k);

/// The communication marker + policy table: decides how `bytes` of kind
/// `kind` travel over `nrails` rails.  `stripe_threshold` is the paper's
/// 16 KiB cutoff (also the rendezvous threshold).
///
/// EPC resolution (paper §3.2–3.3):
///   blocking     → even striping   (exploit parallel engines on one message)
///   non-blocking → round robin     (avoid per-stripe posting/ACK overheads;
///                                   the window supplies engine parallelism)
///   collective   → even striping   (each algorithm step is synchronous, so
///                                   its non-blocking calls behave like
///                                   blocking traffic)
Schedule choose_schedule(Policy policy, CommKind kind, std::int64_t bytes,
                         int nrails, std::int64_t stripe_threshold, RailCursor& cursor);

/// The Adaptive policy's rail pick: the rail with the fewest outstanding
/// bytes (ties broken toward the lowest index).  `outstanding` is the
/// per-rail outstanding-byte gauge the channel maintains.
int least_loaded_rail(const std::vector<std::int64_t>& outstanding);

}  // namespace ib12x::mvx
