// Multi-rail communication scheduling policies (§3.2 of the paper) and the
// communication-marker classification (§3.3).
//
// A *rail* is one queue pair: the cross product of HCAs × ports × QPs-per-
// port.  A policy maps (message kind, message size) to a schedule: either a
// single rail carries the whole message, or the message is striped across
// all rails.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ib12x::mvx {

enum class Policy : std::uint8_t {
  Binding,          ///< every message on one fixed rail (the paper's "original" baseline uses this with 1 QP/port)
  RoundRobin,       ///< whole messages on successive rails, circularly
  EvenStriping,     ///< messages >= stripe threshold split equally over all rails
  EPC,              ///< Enhanced Point-to-point and Collective: marker-driven (the paper's contribution)
  WeightedStriping, ///< extension: striping proportional to configured rail weights
  Adaptive,         ///< extension: whole messages to the least-loaded rail
};

/// What the ADI-layer communication marker knows about a transfer.
enum class CommKind : std::uint8_t {
  Blocking,     ///< MPI_Send/MPI_Recv: one message outstanding per pair
  Nonblocking,  ///< MPI_Isend/MPI_Irecv windows
  Collective,   ///< issued from inside a collective algorithm step
};

/// The scheduling decision for one message.
struct Schedule {
  bool stripe = false;  ///< split across all rails
  int rail = 0;         ///< rail index when !stripe
};

/// Per-peer scheduling state (round-robin cursor, outstanding bytes for the
/// adaptive policy).
struct RailCursor {
  int next = 0;
};

const char* to_string(Policy p);
const char* to_string(CommKind k);

/// The communication marker + policy table: decides how `bytes` of kind
/// `kind` travel over `nrails` rails.  `stripe_threshold` is the paper's
/// 16 KiB cutoff (also the rendezvous threshold).
///
/// EPC resolution (paper §3.2–3.3):
///   blocking     → even striping   (exploit parallel engines on one message)
///   non-blocking → round robin     (avoid per-stripe posting/ACK overheads;
///                                   the window supplies engine parallelism)
///   collective   → even striping   (each algorithm step is synchronous, so
///                                   its non-blocking calls behave like
///                                   blocking traffic)
Schedule choose_schedule(Policy policy, CommKind kind, std::int64_t bytes,
                         int nrails, std::int64_t stripe_threshold, RailCursor& cursor);

/// The Adaptive policy's rail pick: the rail with the fewest outstanding
/// bytes (ties broken toward the lowest index).  `outstanding` is the
/// per-rail outstanding-byte gauge the channel maintains.
int least_loaded_rail(const std::vector<std::int64_t>& outstanding);

/// Masked overload for failover: only rails with up[i] != 0 are candidates.
/// Falls back to plain least-loaded when no rail is up (the caller's
/// recovery machinery will resurrect one).
int least_loaded_rail(const std::vector<std::int64_t>& outstanding,
                      const std::vector<std::uint8_t>& up);

/// One planned stripe of a striped transfer; `offset` is absolute within the
/// message.
struct Stripe {
  int rail;
  std::int64_t offset;
  std::int64_t len;
};

/// Splits `bytes` at message offset `base_off` into stripes over the listed
/// rails.  `rails` is the candidate list — every rail normally, the live
/// subset under failover — and stripes are assigned over list *positions*,
/// starting at a base that rotates through `cursor` whenever fewer stripes
/// than candidates are cut (so successive transfers spread over all rails).
/// Stripe lengths follow `weights` cyclically (empty = equal shares), never
/// fall below `min_stripe`, and always sum to `bytes`.  Returns an empty
/// vector for bytes <= 0 or an empty rail list.
std::vector<Stripe> plan_stripes(std::int64_t bytes, std::int64_t base_off,
                                 const std::vector<int>& rails, std::int64_t min_stripe,
                                 const std::vector<double>& weights, RailCursor& cursor);

/// Identity-rail overload: candidates are rails 0..nrails-1.  This is the
/// no-failover fast path — it allocates no candidate list, so the fault-free
/// pipeline's allocation sequence is unchanged by the failover machinery.
std::vector<Stripe> plan_stripes(std::int64_t bytes, std::int64_t base_off, int nrails,
                                 std::int64_t min_stripe, const std::vector<double>& weights,
                                 RailCursor& cursor);

}  // namespace ib12x::mvx
