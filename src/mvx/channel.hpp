// The channel layer of the decomposed ADI endpoint (paper fig. 2).
//
// A Channel moves bytes to a set of peers over one transport; the endpoint
// is a thin facade that routes each send to the highest-priority channel
// that accepts it (shm → RDMA fast path → net) and glues inbound arrivals
// back into the matcher and the rendezvous protocol.
//
// Channels never see the Endpoint class itself — only the narrow
// ChannelHost surface below — so each transport is independently testable
// and replaceable, and new transports slot in without touching the facade's
// callers (Communicator / Collectives).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "ib/types.hpp"
#include "mvx/config.hpp"
#include "mvx/request.hpp"
#include "mvx/wire.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"

namespace ib12x::mvx {

class Matcher;
class TelemetryRegistry;

/// One rendezvous RDMA-write stripe; lkeys/rkeys are per HCA domain and the
/// net channel resolves them through the rail's HCA index.  Lives at
/// namespace scope (not inside NetChannel) because the failover hand-back —
/// ChannelHost::on_rndv_write_failed — must carry the full descriptor so the
/// Rendezvous module can re-plan and re-post it.
struct RndvStripe {
  int rail = 0;
  const std::byte* src = nullptr;
  std::int64_t len = 0;
  std::uint64_t raddr = 0;
  std::uint64_t req_id = 0;  ///< reported back via ChannelHost::on_rndv_write_done
  std::array<ib::LKey, kMaxHcas> lkeys{};
  CtsRkeys rkeys;
  int attempts = 0;  ///< failover re-posts of this stripe so far
};

/// What a channel (or protocol module) may ask of its owning endpoint.
class ChannelHost {
 public:
  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual const Config& config() const = 0;
  [[nodiscard]] virtual sim::Simulator& simulator() const = 0;
  [[nodiscard]] virtual sim::Process& process() const = 0;
  virtual Matcher& matcher() = 0;
  virtual TelemetryRegistry& telemetry() = 0;
  /// The progress waitable blocking calls park on; channels notify it when
  /// resources (credits, ring slots) free up.
  virtual sim::Waitable& progress() = 0;

  /// Serializes event-context protocol work (stripe posting, CQE handling,
  /// control processing, receive copies) on this rank's host CPU: `fn` runs
  /// once the CPU has spent `cost` on it, queued behind earlier work.
  virtual void schedule_cpu(sim::Time cost, std::function<void()> fn) = 0;

  /// VCI-routed variant of schedule_cpu: protocol work belonging to VCI
  /// `vci` is serialized on that VCI's own progress server instead of the
  /// rank-wide one, so independent VCIs process completions in parallel.
  /// Default forwards to schedule_cpu (single-channel hosts).
  virtual void schedule_cpu_vci(int vci, sim::Time cost, std::function<void()> fn) {
    (void)vci;
    schedule_cpu(cost, std::move(fn));
  }
  [[nodiscard]] virtual sim::Time memcpy_time(std::int64_t bytes) const = 0;

  /// Entry point for every sequenced inbound message (Eager/Rts): ordering,
  /// matching, and protocol dispatch.  Event context.
  virtual void ingress(int peer, const MsgHeader& hdr, std::vector<std::byte> payload) = 0;
  /// Rendezvous control arrival (Cts/Fin) from the net channel.
  virtual void on_ctl(const MsgHeader& hdr, const CtsRkeys& rkeys) = 0;
  /// A rendezvous stripe write finished on the wire (requester CQE).
  virtual void on_rndv_write_done(int peer, std::uint64_t req_id) = 0;
  /// A rendezvous stripe write failed (error CQE under fault injection) and
  /// needs re-planning over the surviving rails.  Default no-op: only hosts
  /// with failover support override it, and it can only fire when a
  /// FaultPlan is attached.
  virtual void on_rndv_write_failed(int peer, const RndvStripe& st) {
    (void)peer;
    (void)st;
  }

  /// A rendezvous RDMA-read stripe finished (read-rendezvous; the receiver
  /// is the requester).  Default no-op: only hosts with the read protocol
  /// enabled override it.
  virtual void on_rndv_read_done(int peer, std::uint64_t req_id) {
    (void)peer;
    (void)req_id;
  }
  /// A rendezvous RDMA-read stripe failed (error CQE under fault injection).
  /// Same contract as on_rndv_write_failed, receiver-side.  Default no-op.
  virtual void on_rndv_read_failed(int peer, const RndvStripe& st) {
    (void)peer;
    (void)st;
  }
  /// A write-with-immediate landed on this (receiving) rank: the imm word
  /// carries the packed {vci, receiver cookie} that completes the rendezvous
  /// without a FIN.  Event context.  Default no-op.
  virtual void on_rndv_imm(std::uint32_t imm_data) { (void)imm_data; }

  /// A send-side eager resource (bounce buffer, credit, rail) returned to
  /// the pool.  Hosts with a lazy connection manager override this to flush
  /// sends queued behind resource exhaustion; the pool is shared across
  /// peers, so an implementation must consider every queued peer, not just
  /// `peer`.  Event context.  Default no-op.
  virtual void on_eager_resources_freed(int peer) { (void)peer; }

  /// Marks `req` complete and wakes waiters.
  virtual void complete_request(const Request& req) = 0;

 protected:
  ~ChannelHost() = default;
};

/// One transport to a set of peers.
class Channel {
 public:
  explicit Channel(ChannelHost& host) : host_(host) {}
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// True if this channel can carry `bytes` to `peer` right now (routing is
  /// re-evaluated per message, so e.g. fast-path exhaustion falls through to
  /// the net channel).
  [[nodiscard]] virtual bool accepts(int peer, std::int64_t bytes) const = 0;

  /// Starts one message.  Process context; may block on channel resources.
  virtual void send(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                    int ctx, const Request& req) = 0;

 protected:
  ChannelHost& host_;
};

}  // namespace ib12x::mvx
