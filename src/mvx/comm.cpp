#include "mvx/comm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mvx/world.hpp"

namespace ib12x::mvx {

Communicator::Communicator(World* world, Endpoint* ep, std::vector<int> group, int my_index,
                           int ctx_base)
    : world_(world), ep_(ep), group_(std::move(group)), my_index_(my_index),
      ctx_base_(ctx_base) {}

sim::Time Communicator::now() const { return ep_->simulator().now(); }

void Communicator::compute(sim::Time t) { ep_->process().compute(t); }

// ------------------------------------------------------------ point-to-point

bool Communicator::try_self_recv(void* buf, std::size_t bytes, int tag, int ctx, Status* st) {
  for (auto it = self_q_.begin(); it != self_q_.end(); ++it) {
    if (it->ctx != ctx) continue;
    if (tag != ANY_TAG && it->tag != tag) continue;
    if (it->data.size() > bytes) throw std::runtime_error("recv: self-message truncation");
    std::memcpy(buf, it->data.data(), it->data.size());
    if (st != nullptr) *st = {my_index_, it->tag, static_cast<std::int64_t>(it->data.size())};
    self_q_.erase(it);
    return true;
  }
  return false;
}

Request Communicator::isend_kind(CommKind kind, const void* buf, std::size_t bytes, int dst,
                                 int tag, int ctx) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("send: bad destination rank");
  if (dst == my_index_) {
    // Local loopback: store a copy; a matching recv drains it.
    SelfMsg m;
    m.tag = tag;
    m.ctx = ctx;
    m.data.assign(static_cast<const std::byte*>(buf),
                  static_cast<const std::byte*>(buf) + bytes);
    compute(sim::transfer_time(static_cast<std::int64_t>(bytes), ep_->config().memcpy_gbps));
    self_q_.push_back(std::move(m));
    Request r = make_request();
    r->is_send = true;
    r->done = true;
    return r;
  }
  return ep_->start_send(kind, buf, static_cast<std::int64_t>(bytes), world_rank(dst), tag, ctx);
}

Request Communicator::irecv_ctx(void* buf, std::size_t bytes, int src, int tag, int ctx) {
  if (src != ANY_SOURCE && (src < 0 || src >= size())) {
    throw std::invalid_argument("recv: bad source rank");
  }
  if (src == my_index_) {
    Request r = make_request();
    Status st;
    if (!try_self_recv(buf, bytes, tag, ctx, &st)) {
      throw std::runtime_error("recv from self with no matching self-send (would deadlock)");
    }
    r->status = st;
    r->done = true;
    return r;
  }
  const int world_src = src == ANY_SOURCE ? ANY_SOURCE : world_rank(src);
  return ep_->start_recv(buf, static_cast<std::int64_t>(bytes), world_src, tag, ctx);
}

void Communicator::send(const void* buf, std::size_t count, Datatype dt, int dst, int tag) {
  Request r = isend_kind(CommKind::Blocking, buf, count * dt.size, dst, tag, ctx_base_);
  ep_->wait(r);
}

void Communicator::recv(void* buf, std::size_t count, Datatype dt, int src, int tag, Status* st) {
  Request r = irecv_ctx(buf, count * dt.size, src, tag, ctx_base_);
  ep_->wait(r);
  if (st != nullptr) *st = r->status;
}

Request Communicator::isend(const void* buf, std::size_t count, Datatype dt, int dst, int tag) {
  return isend_kind(CommKind::Nonblocking, buf, count * dt.size, dst, tag, ctx_base_);
}

Request Communicator::irecv(void* buf, std::size_t count, Datatype dt, int src, int tag) {
  return irecv_ctx(buf, count * dt.size, src, tag, ctx_base_);
}

void Communicator::wait(const Request& r, Status* st) {
  ep_->wait(r);
  if (st != nullptr) *st = r->status;
}

void Communicator::waitall(std::vector<Request>& reqs) {
  for (auto& r : reqs) ep_->wait(r);
}

int Communicator::waitany(const std::vector<Request>& reqs) {
  bool any = false;
  for (const Request& r : reqs) {
    if (r != nullptr) any = true;
  }
  if (!any) return -1;
  int idx = -1;
  ep_->process().wait_until(ep_->progress(), [&] {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i] != nullptr && reqs[i]->done) {
        idx = static_cast<int>(i);
        return true;
      }
    }
    return false;
  });
  return idx;
}

std::vector<int> Communicator::waitsome(const std::vector<Request>& reqs) {
  std::vector<int> done;
  bool any = false;
  for (const Request& r : reqs) {
    if (r != nullptr) any = true;
  }
  if (!any) return done;
  ep_->process().wait_until(ep_->progress(), [&] {
    done.clear();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i] != nullptr && reqs[i]->done) done.push_back(static_cast<int>(i));
    }
    return !done.empty();
  });
  return done;
}

bool Communicator::test(const Request& r) { return ep_->test(r); }

void Communicator::sendrecv(const void* sbuf, std::size_t scount, Datatype sdt, int dst, int stag,
                            void* rbuf, std::size_t rcount, Datatype rdt, int src, int rtag,
                            Status* st) {
  Request rr = irecv_ctx(rbuf, rcount * rdt.size, src, rtag, ctx_base_);
  Request sr = isend_kind(CommKind::Nonblocking, sbuf, scount * sdt.size, dst, stag, ctx_base_);
  ep_->wait(sr);
  ep_->wait(rr);
  if (st != nullptr) *st = rr->status;
}

bool Communicator::iprobe(int src, int tag, Status* st) {
  const int world_src = src == ANY_SOURCE ? ANY_SOURCE : world_rank(src);
  return ep_->iprobe(world_src, tag, ctx_base_, st);
}

void Communicator::probe(int src, int tag, Status* st) {
  const int world_src = src == ANY_SOURCE ? ANY_SOURCE : world_rank(src);
  ep_->probe(world_src, tag, ctx_base_, st);
}

// ----------------------------------------------------- communicator mgmt

Communicator Communicator::dup() {
  // Agree on a fresh context pair: all members take the max of their local
  // counters, which the allreduce also synchronizes.
  std::int64_t mine = world_->peek_next_ctx();
  std::int64_t agreed = 0;
  allreduce(&mine, &agreed, 1, INT64, Op::Max);
  world_->bump_ctx(static_cast<int>(agreed) + 2);
  return Communicator(world_, ep_, group_, my_index_, static_cast<int>(agreed));
}

Communicator Communicator::split(int color, int key) {
  struct Entry {
    std::int64_t color, key, old_rank, world;
  };
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  Entry mine{color, key, my_index_, world_rank(my_index_)};
  allgather(&mine, all.data(), sizeof(Entry), BYTE);

  std::int64_t next = world_->peek_next_ctx();
  std::int64_t agreed = 0;
  allreduce(&next, &agreed, 1, INT64, Op::Max);
  // Colors get distinct contexts: color c uses agreed + 2*c.
  std::int64_t max_color = 0;
  for (const Entry& e : all) max_color = std::max(max_color, e.color);
  world_->bump_ctx(static_cast<int>(agreed + 2 * (max_color + 1)));

  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.old_rank < b.old_rank;
  });
  std::vector<int> group;
  int my_new = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(static_cast<int>(members[i].world));
    if (members[i].old_rank == my_index_) my_new = static_cast<int>(i);
  }
  return Communicator(world_, ep_, std::move(group), my_new,
                      static_cast<int>(agreed + 2 * color));
}

}  // namespace ib12x::mvx
