// Lazy connection manager (the connection-scaling half of the refactor).
//
// MVAPICH-era MPI wired every pair of ranks at MPI_Init: O(ranks²) QPs and
// eager slots across the job, which is exactly the memory wall §2.1 of the
// paper's lineage attacks with SRQ.  This manager instead establishes a
// peer's QPs and rails on first contact — first send or first matched
// receive — through a modelled out-of-band handshake (UD/CM exchange in real
// MVAPICH) of `Config::conn_setup_latency`.
//
// Per peer the state machine is Unconnected → Connecting → Ready and every
// transition is idempotent: simultaneous connects (both sides initiate in
// the same window) resolve because the actual wiring (`wire_fn_`, provided
// by World) wires both endpoints of the pair at once and marks both sides
// Ready; the loser's handshake completion then just flushes.
//
// Sends posted while Connecting are queued FIFO per peer and flushed — in
// order, via the channels' event-context send paths — when the peer turns
// Ready (`flush_fn_`, provided by Endpoint).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "mvx/channel.hpp"
#include "mvx/policy.hpp"
#include "mvx/request.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

/// One send captured while its peer's handshake is in flight (or parked
/// behind exhausted eager resources).  `buf` stays owned by the MPI caller:
/// eager completion semantics fire only when the send actually dispatches.
struct QueuedSend {
  CommKind kind{};
  const void* buf = nullptr;
  std::int64_t bytes = 0;
  int tag = 0;
  int ctx = 0;
  Request req;
};

class ConnManager {
 public:
  enum class State : std::uint8_t { Unconnected, Connecting, Ready };

  explicit ConnManager(ChannelHost& host);

  ConnManager(const ConnManager&) = delete;
  ConnManager& operator=(const ConnManager&) = delete;

  /// Wires one pair end to end (both sides' QPs/rails/rings) once a
  /// handshake completes; must call mark_ready on both sides' managers.
  void set_wire_fn(std::function<void(int)> fn) { wire_fn_ = std::move(fn); }
  /// Drains a Ready peer's send queue through event-context channel paths.
  void set_flush_fn(std::function<void(int)> fn) { flush_fn_ = std::move(fn); }

  [[nodiscard]] State state(int peer) const;
  [[nodiscard]] bool ready(int peer) const { return state(peer) == State::Ready; }
  [[nodiscard]] bool has_queued(int peer) const;
  [[nodiscard]] std::size_t queued(int peer) const;
  /// Peers with at least one queued send, ascending (deterministic flush
  /// order when a shared resource frees up).
  [[nodiscard]] std::vector<int> queued_peers() const;

  /// Starts the handshake to `peer` unless one is already running or done.
  /// Callable from either process or event context.
  void initiate(int peer);

  /// Transition to Ready (idempotent).  Called by the wire function for both
  /// sides of a freshly wired pair — including the passive side, which may
  /// never have initiated anything.
  void mark_ready(int peer);

  void enqueue(int peer, QueuedSend qs);
  [[nodiscard]] QueuedSend& front(int peer);
  void pop_front(int peer);

 private:
  void complete_handshake(int peer);

  struct PeerConn {
    State st = State::Unconnected;
    std::deque<QueuedSend> q;
  };

  ChannelHost& host_;
  std::map<int, PeerConn> peers_;
  int inflight_ = 0;

  Counter& established_;
  Counter& inflight_hwm_;

  std::function<void(int)> wire_fn_;
  std::function<void(int)> flush_fn_;
};

}  // namespace ib12x::mvx
