// The inter-node network channel: rails (QPs across HCAs × ports), credit-
// based eager flow control over bounce buffers, control-message transport
// for the rendezvous protocol, and the CQE demultiplexers (paper fig. 2's
// "communication scheduler" + "eager protocol" + "completion filter" boxes).
//
// The channel owns everything rail-shaped that used to live tangled in the
// endpoint's PeerConn: per-peer rail vectors, credits, the round-robin
// cursor, the pending-control queue, the shared bounce pool, preposted
// receive slots and SRQs.  Rendezvous data movement is planned by the
// Rendezvous module but posted through this channel (post_write), so all
// rail accounting stays in one place.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ib/verbs.hpp"
#include "mvx/channel.hpp"
#include "mvx/policy.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

class NetChannel final : public Channel {
 public:
  NetChannel(ChannelHost& host, std::vector<ib::Hca*> hcas);
  ~NetChannel() override;

  /// Per-side connection surface, driven by the connection manager (or the
  /// legacy all-pairs loop): open_to(peer) creates this side's peer entry
  /// and — lazily, once — the shared send/receive resources (bounce pool;
  /// SRQ + pooled eager arena per local HCA in SRQ mode); establish(a, b)
  /// then wires the rail set (hcas × ports × qps QP pairs) between two
  /// opened sides and preposts per-QP eager slots in per-QP-RQ mode.
  void open_to(int peer);
  static void establish(NetChannel& a, NetChannel& b);

  /// Wires one more VCI's QP group between two established sides: the next
  /// hcas × ports × qps rail block is appended to each side's flat rail
  /// vector, so VCI v owns the contiguous slice [v·rails(), (v+1)·rails()).
  /// establish() wires group 0 (and, when lazy_connect is off — which
  /// sharded runs require — every group); ensure_vci wires the rest on
  /// first use.
  static void wire_vci_group(NetChannel& a, NetChannel& b);

  /// Lazily wires every VCI QP group up to and including `vci` towards
  /// `peer` (symmetrically, on both sides).  No-op for already-wired groups.
  void ensure_vci(int peer, int vci);

  [[nodiscard]] bool accepts(int peer, std::int64_t bytes) const override;

  /// Eager send (bytes < rndv_threshold); larger messages go through the
  /// Rendezvous module, which posts on this channel.
  void send(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
            const Request& req) override;

  /// Event-context eager send for the connection manager's queued-send
  /// flush: same rail choice as send(), but never blocks — returns false
  /// (cursor restored, nothing reserved) when no credit, bounce buffer or
  /// live rail is available.  On success the post + copy CPU is charged via
  /// schedule_cpu and the request completes once posted.
  bool try_send(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
                const Request& req);

  /// Event-context RTS support for the queued-send flush: probe_ctl_rail
  /// returns the rail (remapped to a live one under faults) on which a
  /// credit and bounce are reservable right now, or -1; post_ctl_evt then
  /// reserves them and posts the header-only message after post_cpu.
  [[nodiscard]] int probe_ctl_rail(int peer, int rail) const;
  void post_ctl_evt(int peer, int rail, const MsgHeader& hdr, const CtsRkeys* rkeys = nullptr);

  // ---- services for the Rendezvous module ----

  /// Control-message send from event context: takes credit/bounce if
  /// available, otherwise queues until a credit returns.
  void send_ctl(int peer, const MsgHeader& hdr, const CtsRkeys& rkeys);

  /// Process-context control send (RTS): blocks for credit and bounce on
  /// `rail`, charges post_cpu, then posts the header-only message (or, for
  /// a ReadRts RTS, the header plus the sender-side rkeys payload).
  void send_ctl_blocking(int peer, int rail, const MsgHeader& hdr,
                         const CtsRkeys* rkeys = nullptr);

  /// Rails per VCI (the schedulable width one message sees); the flat rail
  /// vector holds wired_vcis × nrails entries.
  [[nodiscard]] int nrails(int peer) const;
  /// Data cursor of one VCI's rail slice (local indices 0..nrails-1); wires
  /// the VCI's QP group on first use.
  [[nodiscard]] RailCursor& cursor(int peer, int vci);
  /// Dedicated round-robin cursor for control traffic (RTS/CTS/FIN) so it
  /// spreads over the rails without disturbing the data cursor.  Only
  /// consulted when Config::rndv_pipeline is on; the legacy protocol keeps
  /// its historical placement (a non-advancing copy of the data cursor).
  [[nodiscard]] RailCursor& ctl_cursor(int peer, int vci);
  /// Per-rail outstanding bytes of one VCI's slice (the gauge the Adaptive
  /// policy balances on), indexed locally 0..nrails-1.
  [[nodiscard]] std::vector<std::int64_t> rail_outstanding(int peer, int vci) const;
  /// Per-rail health mask of one VCI's slice (1 = up).  All-ones unless
  /// fault injection is on.
  [[nodiscard]] std::vector<std::uint8_t> rail_up(int peer, int vci) const;
  /// Flat indices of the currently-up rails in one VCI's slice (may be empty
  /// mid-outage).
  [[nodiscard]] std::vector<int> live_rails(int peer, int vci) const;
  [[nodiscard]] bool fault_enabled() const { return fault_enabled_; }

  /// Moved to namespace scope (channel.hpp) so the failover hand-back can
  /// carry it; the member alias keeps NetChannel::RndvStripe spelling valid.
  using RndvStripe = mvx::RndvStripe;
  void post_write(int peer, const RndvStripe& st);
  /// Posts a chunk's stripes as one doorbell batch: every WQE is built and
  /// appended deferred, then each involved rail's doorbell rings once
  /// (QueuePair::post_send_deferred / ring_doorbell).
  void post_write_batch(int peer, const std::vector<RndvStripe>& sts);

  /// Read-rendezvous: posts one RDMA Read pulling `st.len` bytes from the
  /// sender.  Stripe field roles flip relative to a write — st.src names the
  /// *local destination* slice and st.raddr/st.rkeys the remote source.
  /// Reads consume no responder receive WQE, so no credit is taken.
  void post_read(int peer, const RndvStripe& st);
  void post_read_batch(int peer, const std::vector<RndvStripe>& sts);

  /// Write-imm rendezvous: posts `st` as an RDMA write with immediate `imm`.
  /// The immediate consumes a receive WQE at the responder, so the post takes
  /// an eager credit on a live rail of the stripe's VCI slice; with none
  /// available the post queues and drains when a credit returns.
  void post_write_imm(int peer, const RndvStripe& st, std::uint32_t imm);

  // ---- services for the fast-path channel (rides rail 0) ----

  void post_fp_write(int peer, const std::byte* src, std::uint32_t len, ib::LKey lkey,
                     std::uint64_t raddr, ib::RKey rkey, std::function<void()> delivered_cb);

  [[nodiscard]] const std::vector<ib::Hca*>& hcas() const { return hcas_; }

 private:
  /// A preposted receive slot; recycled after each inbound message.  Per-QP
  /// RQ slots own their buffer (`buf`); SRQ slots point into the per-HCA
  /// pool arena and belong to no peer.
  struct RecvSlot {
    ib::QueuePair* qp = nullptr;            ///< repost target (per-QP RQ mode)
    ib::SharedReceiveQueue* srq = nullptr;  ///< repost target (SRQ mode)
    std::byte* data = nullptr;
    std::uint32_t len = 0;
    std::vector<std::byte> buf;  ///< backing store in per-QP RQ mode only
    ib::LKey lkey = 0;
    int peer = -1;  ///< owning peer (per-QP RQ mode); -1 for pooled slots
    int hca = 0;
  };

  /// SRQ mode: the pooled eager receive side of one local HCA — the shared
  /// receive queue, one registered arena of srq_pool_slots slots, and the
  /// batched-replenish state driven by the srq_limit low-watermark event.
  struct HcaPool {
    ib::SharedReceiveQueue* srq = nullptr;
    std::vector<std::byte> arena;
    ib::LKey lkey = 0;
    std::vector<RecvSlot*> drained;  ///< consumed slots awaiting batched repost
    bool want_replenish = false;     ///< a limit event fired since the last repost
  };

  /// One rail to one peer: a connected QP plus sender-side credits and the
  /// outstanding-byte gauge the Adaptive policy balances on.
  struct Rail {
    ib::QueuePair* qp = nullptr;
    int hca_index = 0;
    int credits = 0;
    std::int64_t outstanding = 0;
    // ---- failover state (inert unless fault injection is on) ----
    bool up = true;
    bool recovery_scheduled = false;  ///< a try_recover_rail event is pending
    int recovery_polls = 0;           ///< consecutive still-down probes (bounded)
    /// Receive slots flushed when the rail died; reposted on recovery.
    std::vector<RecvSlot*> parked;
  };

  /// An eager bounce buffer registered in every local HCA domain.
  struct BounceBuf {
    std::vector<std::byte> data;
    ib::LKey lkey[kMaxHcas] = {0, 0, 0, 0};
  };

  /// Per-(peer, VCI) channel state for VCIs >= 1: each extra VCI gets its
  /// own cursors and pending-control queue over its own rail slice.  VCI 0
  /// keeps using the Peer's historical members, so the default single-VCI
  /// configuration allocates and touches exactly what it always did.
  struct VciLane {
    RailCursor cursor;
    RailCursor ctl;
    std::deque<std::pair<MsgHeader, CtsRkeys>> pending_ctl;
  };

  struct Peer {
    std::vector<Rail> rails;  ///< flat, VCI-major: VCI v owns [v·R, (v+1)·R)
    RailCursor cursor;
    RailCursor ctl;  ///< control-traffic cursor (rndv_pipeline mode)
    /// Control messages waiting for rail credit.
    std::deque<std::pair<MsgHeader, CtsRkeys>> pending_ctl;
    /// Lane state of VCIs 1..; empty (never allocated) at vci.count = 1.
    std::vector<VciLane> ext;
    /// The peer's channel, kept for symmetric lazy VCI-group wiring.
    NetChannel* remote = nullptr;
    int wired_vcis = 0;  ///< QP groups wired so far (rails.size() / rails())
  };

  /// Sender-side context attached to each send WQE via wr_id.  Kept at 40
  /// bytes — the same glibc bin as before failover support — so fault-free
  /// allocation sizes are unchanged; the full stripe descriptor an error CQE
  /// needs for re-planning lives in the inflight_stripe_ side map instead,
  /// populated only when fault injection is on.
  struct SendCtx {
    // RndvRead / RndvImm are appended enum values only — the struct stays at
    // 40 bytes so fault-free allocation sizes are unchanged.
    enum class Kind : std::uint8_t {
      Bounce,
      RndvWrite,
      FpWrite,
      RndvRead,
      RndvImm,
    } kind = Kind::Bounce;
    int peer = -1;
    int rail = -1;
    int bounce = -1;           // Bounce: index into bounce pool
    std::uint64_t req_id = 0;  // RndvWrite: outstanding request
    std::int64_t bytes = 0;    // outstanding-byte accounting
    int attempts = 0;          // failover replays of this message so far
  };

  /// An eager/ctl message whose retry found no usable rail; drained when a
  /// rail recovers.
  struct PendingRetry {
    int peer = -1;
    int bounce = -1;
    std::int64_t bytes = 0;
    int attempts = 0;
  };

  /// A write-imm post waiting for an eager credit; drained when one returns.
  struct PendingImm {
    int peer = -1;
    RndvStripe st;
    std::uint32_t imm = 0;
  };

  Peer& peer(int rank);
  [[nodiscard]] const Peer& peer(int rank) const;

  // VCI-lane accessors: VCI 0 resolves to the Peer's own members, higher
  // VCIs to their ext entry (wired on demand by the callers).
  [[nodiscard]] static RailCursor& lane_cursor(Peer& c, int vci);
  [[nodiscard]] static RailCursor& lane_ctl(Peer& c, int vci);
  [[nodiscard]] static std::deque<std::pair<MsgHeader, CtsRkeys>>& lane_pending(Peer& c, int vci);

  /// One-time lazy allocation of the shared send/receive resources: the
  /// sender bounce pool, and in SRQ mode one SRQ + preposted slot arena per
  /// local HCA.  Runs at the first open_to — a rank that never touches the
  /// network allocates nothing.
  void ensure_net_resources();
  /// Creates one rail QP towards `peer` (bookkeeping only; the caller wires
  /// it to the remote side via ib::Fabric::connect).
  ib::QueuePair& open_rail(int peer, int hca_index, int port);
  /// Per-QP RQ mode: preposts eager_credits owned slots on `qp`.  No-op in
  /// SRQ mode, where the pooled arena is preposted once per HCA.
  void prepost_rail(ib::QueuePair& qp, int hca_index, int peer);
  /// Per-rail credits: eager_credits in per-QP RQ mode; re-derived from the
  /// shared pool (srq_pool_slots spread over the rail count) in SRQ mode.
  [[nodiscard]] int rail_credits() const;

  /// SRQ low-watermark machinery: the async limit event marks the pool
  /// wanting a replenish; try_replenish batch-reposts every drained slot and
  /// re-arms once both conditions hold.
  void on_srq_limit(int hca_index);
  void try_replenish(int hca_index);

  /// Blocks the process until rail `r` has a send credit and a bounce buffer
  /// is free; returns the bounce index.
  int acquire_bounce_and_credit(Peer& c, int rail);

  /// Sends header(+payload) on one rail, consuming a credit and a bounce
  /// buffer the caller already reserved.  Process- or event-context
  /// agnostic.
  void post_eager(Peer& c, int peer_rank, int rail, int bounce, const MsgHeader& hdr,
                  const void* payload, std::int64_t bytes);
  /// Builds the SendWr for one rendezvous stripe; deferred WQEs need an
  /// explicit ring_doorbell on the rail's QP afterwards.
  void post_write_impl(Peer& c, int peer_rank, const RndvStripe& st, bool deferred);
  /// Builds the SendWr for one rendezvous read stripe (read-rendezvous).
  void post_read_impl(Peer& c, int peer_rank, const RndvStripe& st, bool deferred);
  void flush_pending_ctl(int peer_rank);
  void flush_pending_imm();

  void on_send_cqe(const ib::Wc& wc);
  void on_recv_cqe(const ib::Wc& wc);

  // ---- failover machinery (reachable only with fault injection on) ----

  /// First up rail at-or-after `rail` within its VCI's slice, wrapping
  /// inside the slice; `rail` itself if none is up.
  [[nodiscard]] int remap_live(const Peer& c, int rail) const;
  /// Blocks the calling process until some rail of VCI `vci` to `peer_rank`
  /// is up.
  void wait_any_rail_up(int peer_rank, int vci);
  /// Error CQE seen on (peer, rail): mark it down and start the timed
  /// recovery probe.
  void mark_rail_down(int peer_rank, int rail);
  void schedule_recovery(int peer_rank, int rail);
  void try_recover_rail(int peer_rank, int rail);
  /// Replays a failed eager/ctl message (the bounce buffer still holds the
  /// wire image) on a live rail, or parks it until one recovers.
  void retry_eager(int peer_rank, int bounce, std::int64_t wire_bytes, int attempts);
  void flush_pending_retries();
  /// Raw re-post of an already-filled bounce buffer (credit already taken).
  void post_bounce_raw(Peer& c, int peer_rank, int rail, int bounce, std::int64_t wire_bytes,
                       int attempts);

  std::vector<ib::Hca*> hcas_;

  ib::CompletionQueue scq_;
  ib::CompletionQueue rcq_;

  std::map<int, Peer> peers_;
  std::vector<std::unique_ptr<RecvSlot>> recv_slots_;
  std::vector<HcaPool> pools_;  ///< per local HCA, SRQ mode only

  std::vector<BounceBuf> bounce_;
  std::vector<int> free_bounce_;
  bool resources_ready_ = false;  ///< ensure_net_resources has run

  const bool fault_enabled_;
  /// QP number → (peer rank, rail index): routes error CQEs — which carry
  /// only the qp_num — back to the rail they belong to.
  std::map<ib::QpNum, std::pair<int, int>> qp_rail_;
  /// A vector, not a deque: an empty deque heap-allocates its map block on
  /// construction, and this member must cost nothing when faults are off.
  std::vector<PendingRetry> pending_retry_;
  /// Credit-starved write-imm posts (WriteImm protocol only; empty — and
  /// unallocated — in the default configuration).
  std::vector<PendingImm> pending_imm_;
  /// RndvWrite stripe descriptors for in-flight WQEs, so an error CQE can
  /// hand the write back to the Rendezvous module for re-planning.  Only
  /// populated under fault injection.
  std::map<const SendCtx*, RndvStripe> inflight_stripe_;
  /// SendCtxs whose CQE carried an error status, recorded between the CQE
  /// callback and its deferred CPU processing.  Only populated under fault
  /// injection (the fault-free model produces no error CQEs).
  std::set<const SendCtx*> failed_send_;

  Counter& eager_sent_;
  Counter& ctl_sent_;
  Counter& bytes_sent_;
  Counter& credit_stalls_;
  Counter& rail_up_;         ///< rail activations (connect time)
  Counter& rail_down_;       ///< up → down transitions
  Counter& rail_recovered_;  ///< down → up transitions
  Counter& send_errors_;     ///< error CQEs on the send side
  Counter& recv_flushes_;    ///< flushed receive WQEs (slots parked)
  Counter& eager_retries_;   ///< eager/ctl messages replayed after an error
  Counter& qps_created_;     ///< own-side rail QPs created (conn.qps_created)
  Counter& eager_pool_bytes_;  ///< eager receive-buffer bytes allocated
  Counter& srq_replenishes_;   ///< batched SRQ reposts (low-watermark events served)
  Counter& srq_pool_dry_;      ///< inbound messages stalled on an empty pool
  /// Gated VCI counter (null in the default config so snapshots are
  /// unchanged): per-rail credits after the split across vci.count groups.
  Counter* vci_credit_split_ = nullptr;
};

}  // namespace ib12x::mvx
