#include "mvx/fast_path_channel.hpp"

#include <cstring>

#include "mvx/matcher.hpp"
#include "mvx/net_channel.hpp"

namespace ib12x::mvx {

FastPathChannel::FastPathChannel(ChannelHost& host, NetChannel& net)
    : Channel(host),
      net_(net),
      sent_(host.telemetry().counter("fastpath.sent")),
      bytes_sent_(host.telemetry().counter("fastpath.bytes_sent")) {}

void FastPathChannel::connect(FastPathChannel& a, FastPathChannel& b) {
  auto setup = [](FastPathChannel& me, FastPathChannel& other) {
    const Config& cfg = me.host_.config();
    if (!cfg.use_rdma_fast_path) return;
    Peer& mine = me.peers_[other.host_.rank()];
    mine.remote = &other;
    mine.slot_bytes = kHeaderBytes + static_cast<std::size_t>(cfg.fast_path_max);
    mine.recv_ring.resize(mine.slot_bytes * static_cast<std::size_t>(cfg.fast_path_slots));
    mine.send_stage.resize(mine.slot_bytes * static_cast<std::size_t>(cfg.fast_path_slots));
    // The ring is written over rail 0, so registration in HCA 0's domain
    // suffices.
    ib::Hca* hca0 = me.net_.hcas().front();
    ib::MemoryRegion rmr = hca0->mem().register_memory(mine.recv_ring.data(),
                                                       mine.recv_ring.size());
    mine.stage_lkey =
        hca0->mem().register_memory(mine.send_stage.data(), mine.send_stage.size()).lkey;
    mine.credits = cfg.fast_path_slots;
    // Tell the other side where to write.
    Peer& theirs = other.peers_[me.host_.rank()];
    theirs.raddr = rmr.addr;
    theirs.rkey = rmr.rkey;
  };
  setup(a, b);
  setup(b, a);
}

bool FastPathChannel::accepts(int peer, std::int64_t bytes) const {
  const Config& cfg = host_.config();
  if (!cfg.use_rdma_fast_path || bytes > cfg.fast_path_max) return false;
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.credits > 0;
}

void FastPathChannel::send(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                           int ctx, const Request& req) {
  Peer& c = peers_.at(peer);
  const Config& cfg = host_.config();
  const int slot = c.head;
  c.head = (c.head + 1) % cfg.fast_path_slots;
  --c.credits;

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  // The fast path is mutually exclusive with VCIs (enforced by World's config
  // validation), so its traffic always rides sequence space 0.
  hdr.seq = host_.matcher().next_send_seq(peer, ctx, 0);
  hdr.size = static_cast<std::uint64_t>(bytes);

  std::byte* stage = c.send_stage.data() + static_cast<std::size_t>(slot) * c.slot_bytes;
  write_header(stage, hdr);
  if (bytes > 0) std::memcpy(stage + kHeaderBytes, buf, static_cast<std::size_t>(bytes));
  host_.process().compute(cfg.post_cpu +
                          host_.memcpy_time(static_cast<std::int64_t>(kHeaderBytes) + bytes));

  // The receiver's poll loop notices the tail flag one poll period after the
  // data lands.
  FastPathChannel* remote = c.remote;
  const int me = host_.rank();
  sim::Simulator& sim = host_.simulator();
  const sim::Time poll = cfg.poll_delay;
  net_.post_fp_write(peer, stage, static_cast<std::uint32_t>(kHeaderBytes + bytes), c.stage_lkey,
                     c.raddr + static_cast<std::uint64_t>(slot) * c.slot_bytes, c.rkey,
                     [remote, me, slot, &sim, poll] {
                       sim.after(poll, [remote, me, slot] { remote->arrival(me, slot); });
                     });

  sent_.inc();
  bytes_sent_.add(static_cast<std::uint64_t>(bytes));
  req->done = true;  // buffered: the payload is staged
  req->completed_at = sim.now();
}

void FastPathChannel::send_evt(int peer, CommKind kind, const void* buf, std::int64_t bytes,
                               int tag, int ctx, const Request& req) {
  Peer& c = peers_.at(peer);
  const Config& cfg = host_.config();
  const int slot = c.head;
  c.head = (c.head + 1) % cfg.fast_path_slots;
  --c.credits;

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  // Claimed at dispatch so a flushed queue keeps MPI ordering (see
  // NetChannel::try_send).  Fast path is VCI-exclusive: sequence space 0.
  hdr.seq = host_.matcher().next_send_seq(peer, ctx, 0);
  hdr.size = static_cast<std::uint64_t>(bytes);

  std::byte* stage = c.send_stage.data() + static_cast<std::size_t>(slot) * c.slot_bytes;
  write_header(stage, hdr);
  if (bytes > 0) std::memcpy(stage + kHeaderBytes, buf, static_cast<std::size_t>(bytes));

  host_.schedule_cpu(
      cfg.post_cpu + host_.memcpy_time(static_cast<std::int64_t>(kHeaderBytes) + bytes),
      [this, peer, slot, stage, bytes, req] {
        Peer& cc = peers_.at(peer);
        FastPathChannel* remote = cc.remote;
        const int me = host_.rank();
        sim::Simulator& sim = host_.simulator();
        const sim::Time poll = host_.config().poll_delay;
        net_.post_fp_write(peer, stage, static_cast<std::uint32_t>(kHeaderBytes + bytes),
                           cc.stage_lkey,
                           cc.raddr + static_cast<std::uint64_t>(slot) * cc.slot_bytes, cc.rkey,
                           [remote, me, slot, &sim, poll] {
                             sim.after(poll, [remote, me, slot] { remote->arrival(me, slot); });
                           });
        sent_.inc();
        bytes_sent_.add(static_cast<std::uint64_t>(bytes));
        host_.complete_request(req);
      });
}

void FastPathChannel::arrival(int src, int slot) {
  Peer& c = peers_.at(src);
  const std::byte* base = c.recv_ring.data() + static_cast<std::size_t>(slot) * c.slot_bytes;
  MsgHeader hdr = read_header(base);
  std::vector<std::byte> payload;
  if (hdr.size > 0) {
    payload.assign(base + kHeaderBytes, base + kHeaderBytes + hdr.size);
  }
  host_.ingress(src, hdr, std::move(payload));
  // The payload is copied out; the slot is free.  Credit return is
  // piggybacked on reverse traffic in MVAPICH — modelled as free after the
  // drain's CPU cost.
  FastPathChannel* remote = c.remote;
  const int me = host_.rank();
  host_.schedule_cpu(host_.config().ctl_cpu, [remote, me] { remote->credit_return(me); });
}

void FastPathChannel::credit_return(int peer) {
  ++peers_.at(peer).credits;
  host_.progress().notify_all();
}

}  // namespace ib12x::mvx
