// The rendezvous protocol module: RTS → CTS(rkeys) → striped RDMA writes →
// FIN (paper fig. 2's "rendezvous protocol" box plus the striping half of
// the communication scheduler).
//
// Two protocol variants share this module, selected by Config::rndv_pipeline:
//
//  * one-shot (legacy, the default): the receiver registers the whole target
//    buffer before replying with a single CTS, and the sender registers its
//    whole buffer before posting every stripe with a full post_cpu each;
//  * pipelined zero-copy: the receiver registers the buffer in
//    rndv_pipeline_chunk pieces and streams one CTS per chunk as its
//    registration completes, the sender registers chunk-by-chunk behind the
//    arriving CTSes, and each chunk's stripes are posted as one
//    doorbell-batched batch (k × wqe_build_cpu + one doorbell_cpu).
//
// Buffer pinning goes through the PinCache (exact-pointer semantics in
// legacy mode, interval lookup + LRU eviction in pipelined mode).  Data and
// control movement go through the NetChannel so rail credits and
// outstanding-byte accounting stay in one place.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ib/verbs.hpp"
#include "mvx/channel.hpp"
#include "mvx/pin_cache.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

class NetChannel;

class Rendezvous {
 public:
  Rendezvous(ChannelHost& host, NetChannel& net);
  ~Rendezvous();

  Rendezvous(const Rendezvous&) = delete;
  Rendezvous& operator=(const Rendezvous&) = delete;

  /// Sender entry (process context): bytes >= rndv_threshold.
  void send_rts(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
                const Request& req);

  /// Event-context twin of send_rts for flushing sends queued behind a lazy
  /// handshake: instead of blocking on a control credit it reports failure
  /// and leaves the send queued (claiming no sequence number or cookie).
  bool try_send_rts(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                    int ctx, const Request& req);

  /// Receiver side of a matched RTS: register the buffer, reply CTS.
  void accept(const MsgHeader& rts, const Request& req);

  /// CTS arrival at the sender (event context, CPU already charged).
  void on_cts(const MsgHeader& hdr, const CtsRkeys& rkeys);
  /// FIN arrival at the receiver (event context).
  void on_fin(const MsgHeader& hdr);
  /// One stripe write completed on the wire (requester CQE, CPU charged).
  void on_write_done(int peer, std::uint64_t req_id);
  /// One stripe write failed (error CQE under fault injection): re-plan it
  /// over the surviving rails and re-post (event context, CPU charged).
  void on_write_failed(int peer, const RndvStripe& st);

  /// One planned RDMA-write stripe (the planning math lives in
  /// mvx::plan_stripes; the alias keeps Rendezvous::Stripe spelling valid
  /// for the stripe-planning tests).
  using Stripe = mvx::Stripe;

 private:
  /// Sender-side pipeline state, keyed by sender cookie (only present while
  /// Config::rndv_pipeline is driving the transfer).
  struct SendProgress {
    std::uint32_t chunks_total = 0;
    std::uint32_t cts_seen = 0;
    /// Per-chunk stripes still in flight; an entry disappears when its chunk
    /// fully lands, and the map's size is the live pipeline depth.
    std::map<std::uint32_t, int> chunk_writes;
    std::vector<PinCache::Region*> pins;
  };
  /// Receiver-side pin bookkeeping, keyed by receiver cookie (both modes).
  struct RecvProgress {
    std::vector<PinCache::Region*> pins;
  };

  /// Splits `bytes` at message offset `base_off` into rail stripes following
  /// the configured policy (even/weighted/adaptive, multi-lane pinning).
  /// Stripe lengths never fall below min_stripe and always sum to `bytes`;
  /// when fewer stripes than rails are cut, the base rail rotates through
  /// the peer's cursor so all rails see load.
  std::vector<Stripe> plan_stripes(int peer, const Request& req, std::int64_t base_off,
                                   std::int64_t bytes);

  /// Sender side of CTS: register, plan stripes and post them.  Legacy mode
  /// covers the whole message; pipelined mode runs once per chunk.
  void start_writes(int peer, const Request& req, const MsgHeader& cts, const CtsRkeys& rkeys);
  void start_chunk_writes(int peer, const Request& req, const MsgHeader& cts,
                          const CtsRkeys& rkeys);
  /// Sends FIN and completes the local send request.
  void finish_send(int peer, std::uint64_t cookie, const Request& req);
  /// Re-plans a failed stripe over the live rails and posts the pieces; if
  /// no rail is alive, parks itself until the recovery interval elapses.
  void repost_stripe(int peer, const RndvStripe& st);

  std::uint64_t new_cookie(const Request& req);
  Request take_cookie(std::uint64_t id);
  Request peek_cookie(std::uint64_t id);

  ChannelHost& host_;
  NetChannel& net_;

  std::unique_ptr<PinCache> pin_cache_;
  std::map<std::uint64_t, Request> outstanding_;
  std::map<std::uint64_t, SendProgress> send_progress_;
  /// Chunks whose CTS has been processed, keyed by sender cookie — replayed
  /// CTSes (fault-injection retries of control messages that did arrive) are
  /// dropped here.  Kept out of SendProgress, and only touched under fault
  /// injection, so fault-free allocation sizes are unchanged.
  std::map<std::uint64_t, std::set<std::uint32_t>> chunks_seen_;
  std::map<std::uint64_t, RecvProgress> recv_progress_;
  std::map<std::uint64_t, PinCache::Region*> send_pins_;  ///< legacy-mode sender pins
  std::uint64_t next_cookie_ = 1;

  Counter& rts_sent_;
  Counter& bytes_sent_;
  Counter& stripes_posted_;
  Counter& reg_hits_;
  Counter& reg_misses_;
  Counter& reg_evictions_;
  Counter& cts_chunks_;
  Counter& pipeline_depth_;  ///< high-water mark of chunks in flight (track_max)
  Counter& dup_ctl_dropped_;  ///< replayed CTS/FIN duplicates discarded
  Counter& restriped_;        ///< failed stripes re-planned over live rails
};

}  // namespace ib12x::mvx
