// The rendezvous protocol module: RTS → CTS(rkeys) → striped RDMA writes →
// FIN (paper fig. 2's "rendezvous protocol" box plus the striping half of
// the communication scheduler).
//
// Three wire protocols share the module, selected by Config::rndv.protocol
// (the sender's choice rides in the RTS, so mixed configurations interop):
//
//  * WriteRtsCts (default): the four-step RTS / CTS / RDMA-write / FIN above;
//  * ReadRts: the RTS carries the sender's pinned-buffer rkeys, the receiver
//    pulls by striped RDMA Read and answers with a Done control message —
//    one control round-trip fewer on the critical path;
//  * WriteImm: like WriteRtsCts, but the FIN is elided — the last (or only)
//    write is posted with an immediate carrying {vci, receiver cookie}, and
//    the receiver completes straight off that CQE.
//
// With Config::rndv.adaptive the per-message choice moves to RndvPolicy, an
// epsilon-greedy bandit over protocol × stripe width per (peer, size class).
//
// Two pacing variants share the write path, selected by Config::rndv_pipeline:
//
//  * one-shot (legacy, the default): the receiver registers the whole target
//    buffer before replying with a single CTS, and the sender registers its
//    whole buffer before posting every stripe with a full post_cpu each;
//  * pipelined zero-copy: the receiver registers the buffer in
//    rndv_pipeline_chunk pieces and streams one CTS per chunk as its
//    registration completes, the sender registers chunk-by-chunk behind the
//    arriving CTSes, and each chunk's stripes are posted as one
//    doorbell-batched batch (k × wqe_build_cpu + one doorbell_cpu).
//
// Buffer pinning goes through the PinCache (exact-pointer semantics in
// legacy mode, interval lookup + LRU eviction in pipelined mode).  Data and
// control movement go through the NetChannel so rail credits and
// outstanding-byte accounting stay in one place.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ib/verbs.hpp"
#include "mvx/channel.hpp"
#include "mvx/pin_cache.hpp"
#include "mvx/rndv_policy.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

class NetChannel;

class Rendezvous {
 public:
  Rendezvous(ChannelHost& host, NetChannel& net);
  ~Rendezvous();

  Rendezvous(const Rendezvous&) = delete;
  Rendezvous& operator=(const Rendezvous&) = delete;

  /// Sender entry (process context): bytes >= rndv_threshold.
  void send_rts(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
                const Request& req);

  /// Event-context twin of send_rts for flushing sends queued behind a lazy
  /// handshake: instead of blocking on a control credit it reports failure
  /// and leaves the send queued (claiming no sequence number or cookie).
  bool try_send_rts(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                    int ctx, const Request& req);

  /// Receiver side of a matched RTS: dispatches on the RTS's protocol field.
  /// Write protocols register the buffer and reply CTS; ReadRts pulls the
  /// payload by RDMA Read using the rkeys carried in `payload`.
  void accept(const MsgHeader& rts, const Request& req,
              const std::vector<std::byte>& payload = {});

  /// CTS arrival at the sender (event context, CPU already charged).
  void on_cts(const MsgHeader& hdr, const CtsRkeys& rkeys);
  /// FIN arrival at the receiver (event context).
  void on_fin(const MsgHeader& hdr);
  /// Done arrival at the sender (ReadRts; event context).
  void on_done(const MsgHeader& hdr);
  /// Write-with-imm landed on this receiving rank (WriteImm protocol): the
  /// imm word packs (vci << 28) | receiver_cookie and replaces the FIN.
  void on_imm(std::uint32_t imm_data);
  /// One stripe write completed on the wire (requester CQE, CPU charged).
  void on_write_done(int peer, std::uint64_t req_id);
  /// One stripe write failed (error CQE under fault injection): re-plan it
  /// over the surviving rails and re-post (event context, CPU charged).
  void on_write_failed(int peer, const RndvStripe& st);
  /// One rendezvous read completed / failed (ReadRts; receiver-side CQE).
  void on_read_done(int peer, std::uint64_t req_id);
  void on_read_failed(int peer, const RndvStripe& st);

  /// One planned RDMA-write stripe (the planning math lives in
  /// mvx::plan_stripes; the alias keeps Rendezvous::Stripe spelling valid
  /// for the stripe-planning tests).
  using Stripe = mvx::Stripe;

 private:
  /// Sender-side pipeline state, keyed by sender cookie (only present while
  /// Config::rndv_pipeline is driving the transfer).
  struct SendProgress {
    std::uint32_t chunks_total = 0;
    std::uint32_t cts_seen = 0;
    /// Per-chunk stripes still in flight; an entry disappears when its chunk
    /// fully lands, and the map's size is the live pipeline depth.
    std::map<std::uint32_t, int> chunk_writes;
    std::vector<PinCache::Region*> pins;
  };
  /// Receiver-side pin bookkeeping, keyed by receiver cookie (both modes).
  struct RecvProgress {
    std::vector<PinCache::Region*> pins;
  };
  /// Receiver-side read-rendezvous state, keyed by receiver cookie.  A
  /// separate map — not new RecvProgress fields — so the default protocol's
  /// allocation sizes stay untouched.
  struct ReadProgress {
    int pending = 0;                 ///< read stripes still in flight
    std::uint64_t sender_cookie = 0; ///< echoed in the Done control message
    int peer = -1;
    int vci = 0;
    std::vector<PinCache::Region*> pins;
  };
  /// Sender-side per-message protocol record (adaptive arm + chosen
  /// protocol), keyed by sender cookie.  Only populated when the rendezvous
  /// diversity machinery is active.
  struct SendMeta {
    RndvProto proto = RndvProto::WriteRtsCts;
    int arm = -1;     ///< RndvPolicy arm, -1 for static selection
    int width = 0;    ///< forced stripe width, 0 = policy default
    sim::Time start = 0;
  };
  /// Sender-side WriteImm state, keyed by sender cookie.
  struct ImmState {
    std::uint32_t imm = 0;  ///< (vci << 28) | receiver_cookie
    bool folded = false;    ///< imm rides the single data write itself
    int vci = 0;
    bool posted = false;    ///< trailing imm already on the wire
  };

  /// Splits `bytes` at message offset `base_off` into rail stripes following
  /// the configured policy (even/weighted/adaptive, multi-lane pinning).
  /// Stripe lengths never fall below min_stripe and always sum to `bytes`;
  /// when fewer stripes than rails are cut, the base rail rotates through
  /// the peer's cursor so all rails see load.
  std::vector<Stripe> plan_stripes(int peer, const Request& req, std::int64_t base_off,
                                   std::int64_t bytes);

  /// Sender side of CTS: register, plan stripes and post them.  Legacy mode
  /// covers the whole message; pipelined mode runs once per chunk.
  void start_writes(int peer, const Request& req, const MsgHeader& cts, const CtsRkeys& rkeys);
  void start_chunk_writes(int peer, const Request& req, const MsgHeader& cts,
                          const CtsRkeys& rkeys);
  /// Sends FIN (unless the protocol elided it) and completes the local send.
  void finish_send(int peer, std::uint64_t cookie, const Request& req);
  /// Re-plans a failed stripe over the live rails and posts the pieces; if
  /// no rail is alive, parks itself until the recovery interval elapses.
  void repost_stripe(int peer, const RndvStripe& st);

  /// Picks the protocol (and forced width) for one outgoing rendezvous and
  /// records the SendMeta ticket; WriteRtsCts with everything off.
  RndvProto select_proto(int peer, std::int64_t bytes, const Request& req,
                         std::uint64_t cookie, int* width_out);
  /// Pins the send buffer for a ReadRts RTS and fills raddr/width/rkeys.
  /// Returns the pin cost to charge.
  sim::Time prepare_read_rts(MsgHeader& hdr, const Request& req, std::int64_t bytes, int width,
                             CtsRkeys& rkeys);
  /// Receiver side of a ReadRts RTS: pin, plan read stripes, post the pulls.
  void accept_read(const MsgHeader& rts, const Request& req, const CtsRkeys& rkeys);
  /// Stripe planning over at most `width` rails of the VCI slice (0 = the
  /// legacy full-slice plan), shared by reads and width-forced writes.
  std::vector<Stripe> plan_limited(int peer, int vci, std::int64_t base_off, std::int64_t bytes,
                                   int width);
  /// All read stripes landed: release pins, send Done, complete the receive.
  void finish_read(std::uint64_t rcookie);
  /// Re-plans a failed read stripe over the live rails (receiver side).
  void repost_read(int peer, const RndvStripe& st);
  /// Posts the zero-byte trailing write-with-imm once every data write of a
  /// multi-stripe WriteImm transfer has completed.
  void post_trailing_imm(int peer, std::uint64_t cookie, const Request& req, const ImmState& im);
  /// Feeds the adaptive policy the observed completion time and drops the
  /// SendMeta ticket.  No-op when the machinery is off.
  void record_policy(std::uint64_t cookie, const Request& req);

  std::uint64_t new_cookie(const Request& req);
  Request take_cookie(std::uint64_t id);
  Request peek_cookie(std::uint64_t id);

  ChannelHost& host_;
  NetChannel& net_;

  std::unique_ptr<PinCache> pin_cache_;
  std::map<std::uint64_t, Request> outstanding_;
  std::map<std::uint64_t, SendProgress> send_progress_;
  /// Chunks whose CTS has been processed, keyed by sender cookie — replayed
  /// CTSes (fault-injection retries of control messages that did arrive) are
  /// dropped here.  Kept out of SendProgress, and only touched under fault
  /// injection, so fault-free allocation sizes are unchanged.
  std::map<std::uint64_t, std::set<std::uint32_t>> chunks_seen_;
  std::map<std::uint64_t, RecvProgress> recv_progress_;
  std::map<std::uint64_t, PinCache::Region*> send_pins_;  ///< legacy-mode sender pins
  /// Protocol-diversity state: all empty (and never touched) while the
  /// default static WriteRtsCts configuration runs.
  std::map<std::uint64_t, ReadProgress> read_progress_;
  std::map<std::uint64_t, SendMeta> send_meta_;
  std::map<std::uint64_t, ImmState> imm_state_;
  std::unique_ptr<RndvPolicy> policy_;  ///< only with Config::rndv.adaptive
  bool rndv_active_ = false;  ///< adaptive or a non-default static protocol
  std::uint64_t next_cookie_ = 1;

  Counter& rts_sent_;
  Counter& bytes_sent_;
  Counter& stripes_posted_;
  Counter& reg_hits_;
  Counter& reg_misses_;
  Counter& reg_evictions_;
  Counter& cts_chunks_;
  Counter& pipeline_depth_;  ///< high-water mark of chunks in flight (track_max)
  Counter& dup_ctl_dropped_;  ///< replayed CTS/FIN duplicates discarded
  Counter& restriped_;        ///< failed stripes re-planned over live rails

  // Gated counters (null in the default configuration so the telemetry
  // snapshot of legacy runs is unchanged).
  Counter* read_stripes_ = nullptr;    ///< rndv.read_stripes
  Counter* imm_sent_ = nullptr;        ///< rndv.imm_sent (trailing imm posts)
  Counter* imm_folded_ = nullptr;      ///< rndv.imm_folded (imm rode the data write)
  Counter* done_sent_ = nullptr;       ///< rndv.done_sent
  Counter* policy_explore_ = nullptr;  ///< rndv.policy_explore
  Counter* policy_exploit_ = nullptr;  ///< rndv.policy_exploit
};

}  // namespace ib12x::mvx
