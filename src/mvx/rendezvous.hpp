// The rendezvous protocol module: RTS → CTS(rkeys) → striped RDMA writes →
// FIN (paper fig. 2's "rendezvous protocol" box plus the striping half of
// the communication scheduler).
//
// Owns the sender/receiver cookie table, the registration cache for user
// buffers, and stripe planning (even / weighted / adaptive splits).  Data
// and control movement go through the NetChannel so rail credits and
// outstanding-byte accounting stay in one place.
#pragma once

#include <cstdint>
#include <map>

#include "ib/verbs.hpp"
#include "mvx/channel.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

class NetChannel;

class Rendezvous {
 public:
  Rendezvous(ChannelHost& host, NetChannel& net);

  Rendezvous(const Rendezvous&) = delete;
  Rendezvous& operator=(const Rendezvous&) = delete;

  /// Sender entry (process context): bytes >= rndv_threshold.
  void send_rts(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
                const Request& req);

  /// Receiver side of a matched RTS: register the buffer, reply CTS.
  void accept(const MsgHeader& rts, const Request& req);

  /// CTS arrival at the sender (event context, CPU already charged).
  void on_cts(const MsgHeader& hdr, const CtsRkeys& rkeys);
  /// FIN arrival at the receiver (event context).
  void on_fin(const MsgHeader& hdr);
  /// One stripe write completed on the wire (requester CQE, CPU charged).
  void on_write_done(int peer, std::uint64_t req_id);

 private:
  /// Registration cache entry: per-HCA keys for one user buffer.
  struct RegEntry {
    ib::MemoryRegion mr[kMaxHcas];
  };

  /// Cache lookup; charges hit/miss cost to `*cpu_cost`.
  const RegEntry& register_cached(const void* buf, std::int64_t bytes, sim::Time* cpu_cost);

  /// Sender side of CTS: plan stripes and post them through the channel.
  void start_writes(int peer, const Request& req, const MsgHeader& cts, const CtsRkeys& rkeys);

  std::uint64_t new_cookie(const Request& req);
  Request take_cookie(std::uint64_t id);
  Request peek_cookie(std::uint64_t id);

  ChannelHost& host_;
  NetChannel& net_;

  std::map<const void*, RegEntry> reg_cache_;
  std::map<std::uint64_t, Request> outstanding_;
  std::uint64_t next_cookie_ = 1;

  Counter& rts_sent_;
  Counter& bytes_sent_;
  Counter& stripes_posted_;
  Counter& reg_hits_;
  Counter& reg_misses_;
};

}  // namespace ib12x::mvx
