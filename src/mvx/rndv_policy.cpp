#include "mvx/rndv_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace ib12x::mvx {

RndvPolicy::RndvPolicy(const Config& cfg, int rank, int nrails)
    : rng_(cfg.rndv.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rank + 1))),
      epsilon_(cfg.rndv.epsilon) {
  if (epsilon_ < 0.0 || epsilon_ > 1.0) {
    throw std::invalid_argument("RndvPolicy: epsilon must be in [0, 1]");
  }
  int cap = std::max(1, nrails);
  if (cfg.rndv.max_width > 0) cap = std::min(cap, cfg.rndv.max_width);
  static constexpr RndvProto kProtos[] = {RndvProto::WriteRtsCts, RndvProto::ReadRts,
                                          RndvProto::WriteImm};
  for (RndvProto p : kProtos) {
    for (int w = 1; w <= cap; w *= 2) arms_.push_back({p, w});
  }
}

int RndvPolicy::size_class(std::int64_t bytes) {
  int c = 0;
  while (bytes > 1) {
    bytes >>= 1;
    ++c;
  }
  return c;
}

std::vector<RndvPolicy::ArmStat>& RndvPolicy::cell(int peer, std::int64_t bytes) {
  auto& stats = cells_[{peer, size_class(bytes)}];
  if (stats.empty()) stats.resize(arms_.size());
  return stats;
}

int RndvPolicy::choose(int peer, std::int64_t bytes, int live_count, bool* explored) {
  if (explored != nullptr) *explored = false;
  std::vector<ArmStat>& stats = cell(peer, bytes);
  const int max_w = std::max(1, live_count);

  // Eligible = arms whose stripe width fits the live-rail mask.  The arm
  // list always contains width 1, so the set is never empty.
  std::vector<int> eligible;
  eligible.reserve(arms_.size());
  for (int i = 0; i < static_cast<int>(arms_.size()); ++i) {
    if (arms_[static_cast<std::size_t>(i)].width <= max_w) eligible.push_back(i);
  }

  // Unplayed arms first, in index order: deterministic warm-up so every arm
  // has a measurement before the greedy comparison means anything.
  for (int i : eligible) {
    if (stats[static_cast<std::size_t>(i)].plays == 0) {
      if (explored != nullptr) *explored = true;
      return i;
    }
  }

  if (rng_.next_double() < epsilon_) {
    if (explored != nullptr) *explored = true;
    return eligible[static_cast<std::size_t>(
        rng_.next_below(static_cast<std::uint64_t>(eligible.size())))];
  }

  int best = eligible.front();
  for (int i : eligible) {
    if (stats[static_cast<std::size_t>(i)].mean > stats[static_cast<std::size_t>(best)].mean) {
      best = i;
    }
  }
  return best;
}

void RndvPolicy::record(int peer, std::int64_t bytes, int arm_index, sim::Time elapsed) {
  std::vector<ArmStat>& stats = cell(peer, bytes);
  ArmStat& s = stats.at(static_cast<std::size_t>(arm_index));
  const double reward =
      static_cast<double>(bytes) / static_cast<double>(std::max<sim::Time>(elapsed, 1));
  ++s.plays;
  s.mean += (reward - s.mean) / static_cast<double>(s.plays);
}

}  // namespace ib12x::mvx
