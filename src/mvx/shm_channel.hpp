// The intra-node shared-memory channel: peers on the same node bypass the
// HCA entirely.  Each direction is a bandwidth server (the modelled shared
// segment) plus a fixed hand-off latency; delivery re-enters the common
// ingress path, so ordering and matching behave exactly like net traffic.
#pragma once

#include <map>

#include "mvx/channel.hpp"
#include "mvx/telemetry.hpp"
#include "sim/server.hpp"

namespace ib12x::mvx {

class ShmChannel final : public Channel {
 public:
  explicit ShmChannel(ChannelHost& host);

  /// Connects two channels on the same node (both directions).
  static void connect(ShmChannel& a, ShmChannel& b);

  [[nodiscard]] bool accepts(int peer, std::int64_t bytes) const override;

  void send(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
            const Request& req) override;

  /// Event-context twin of send(), for flushing sends queued behind a lazy
  /// handshake: the copy cost is charged through schedule_cpu instead of the
  /// (unavailable) process fiber.  The pipe never refuses, so unlike the net
  /// channel's try_send this cannot fail.
  void send_evt(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag, int ctx,
                const Request& req);

 private:
  struct Peer {
    ShmChannel* remote = nullptr;
    sim::BandwidthServer pipe;  ///< this → peer direction
  };

  /// Delivery on the receiving side (invoked by the sender's event).
  void deliver(int src, MsgHeader hdr, std::vector<std::byte> payload);

  std::map<int, Peer> peers_;
  Counter& sent_;
  Counter& bytes_sent_;
};

}  // namespace ib12x::mvx
