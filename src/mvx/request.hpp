// MPI request objects.  A Request is a shared handle; the substrate holds
// its own reference while a transfer is in flight, so user code may drop the
// handle of an isend it never waits on (the standard allows completion to be
// inferred from other events).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/time.hpp"

namespace ib12x::mvx {

struct Status {
  int source = -1;
  int tag = -1;
  std::int64_t bytes = 0;
};

struct RequestState {
  bool done = false;
  bool is_send = false;
  Status status;          ///< filled on receive completion
  sim::Time completed_at = 0;

  // -- internal bookkeeping (rendezvous) --
  const void* send_buf = nullptr;
  void* recv_buf = nullptr;
  std::int64_t bytes = 0;
  int peer = -1;
  int tag = -1;
  int ctx = 0;
  std::uint8_t kind = 0;        ///< CommKind, recorded by the marker at start
  int lane = -1;                ///< multi-lane rail pin (lane % nrails); -1 = policy decides
  int vci = 0;                  ///< virtual communication interface carrying this message
  int pending_writes = 0;       ///< outstanding rendezvous stripe writes
  std::uint64_t peer_cookie = 0;///< the other side's request cookie
};

using Request = std::shared_ptr<RequestState>;

inline Request make_request() { return std::make_shared<RequestState>(); }

}  // namespace ib12x::mvx
