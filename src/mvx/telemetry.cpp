#include "mvx/telemetry.hpp"

#include <algorithm>
#include <map>

namespace ib12x::mvx {

Counter& TelemetryRegistry::counter(const std::string& name) {
  counters_.push_back(NamedCounter{name, std::unique_ptr<Counter>(new Counter())});
  return *counters_.back().counter;
}

void TelemetryRegistry::gauge(const std::string& name, std::function<double()> sample) {
  gauges_.push_back(NamedGauge{name, std::move(sample)});
}

std::vector<TelemetryRegistry::Sample> TelemetryRegistry::snapshot() const {
  std::map<std::string, double> agg;
  for (const NamedCounter& c : counters_) {
    agg[c.name] += static_cast<double>(c.counter->value());
  }
  for (const NamedGauge& g : gauges_) {
    agg[g.name] += g.sample();
  }
  std::vector<Sample> out;
  out.reserve(agg.size());
  for (const auto& [name, value] : agg) out.push_back(Sample{name, value});
  return out;
}

std::uint64_t TelemetryRegistry::counter_value(const std::string& name) const {
  std::uint64_t sum = 0;
  for (const NamedCounter& c : counters_) {
    if (c.name == name) sum += c.counter->value();
  }
  return sum;
}

TelemetryRegistry::ScopedReset::ScopedReset(TelemetryRegistry& reg) {
  saved_.reserve(reg.counters_.size());
  for (const NamedCounter& c : reg.counters_) {
    saved_.emplace_back(c.counter.get(), c.counter->value_);
    c.counter->value_ = 0;
  }
}

TelemetryRegistry::ScopedReset::~ScopedReset() {
  for (const auto& [counter, value] : saved_) counter->value_ += value;
}

void TelemetryRegistry::dump(std::FILE* out, const char* title) const {
  const std::vector<Sample> samples = snapshot();
  std::size_t width = 0;
  for (const Sample& s : samples) width = std::max(width, s.name.size());
  std::fprintf(out, "-- %s --\n", title);
  for (const Sample& s : samples) {
    std::fprintf(out, "  %-*s %16.2f\n", static_cast<int>(width), s.name.c_str(), s.value);
  }
}

}  // namespace ib12x::mvx
