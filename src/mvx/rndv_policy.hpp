// Online adaptive rendezvous-protocol selection.
//
// The static rules (Config::rndv.protocol plus the striping threshold) pick
// one protocol shape for the whole run; this module instead treats every
// (peer, size-class) pair as its own epsilon-greedy bandit whose arms are the
// cross product of rendezvous protocol × forced stripe width.  Rewards are
// observed end-to-end throughput (message bytes over the RTS→completion
// interval), so the policy folds in everything the telemetry gauges see —
// rail queue depth, rail health, protocol overheads — without modelling any
// of it explicitly.
//
// Determinism contract: the arm stream is a pure function of the seed
// (Config::rndv.seed xor the rank) and the call sequence.  No wall-clock, no
// host randomness; a rerun with the same seed replays bit-identically.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mvx/config.hpp"
#include "mvx/wire.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ib12x::mvx {

/// One bandit arm: a rendezvous protocol plus a forced stripe width (the
/// number of rails a large transfer spreads over; 1 = no striping).
struct RndvArm {
  RndvProto proto = RndvProto::WriteRtsCts;
  int width = 1;
};

class RndvPolicy {
 public:
  /// `nrails` is the per-VCI rail count; widths enumerate the powers of two
  /// up to min(nrails, Config::rndv.max_width) (max_width 0 = no cap).
  RndvPolicy(const Config& cfg, int rank, int nrails);

  /// Picks an arm for a `bytes`-byte message to `peer` with `live_count`
  /// rails currently up.  Arms whose width exceeds the live count are never
  /// candidates (the dead-rail mask).  Unplayed eligible arms are drawn
  /// first, in index order, so every arm gets at least one measurement;
  /// after that the pick is epsilon-greedy on mean observed throughput.
  /// `explored` (optional) reports whether this pick was an exploration.
  int choose(int peer, std::int64_t bytes, int live_count, bool* explored = nullptr);

  /// Records a finished transfer for the arm `choose` returned: `elapsed`
  /// simulated time from RTS to completion.
  void record(int peer, std::int64_t bytes, int arm_index, sim::Time elapsed);

  [[nodiscard]] const RndvArm& arm(int index) const {
    return arms_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] int arms() const { return static_cast<int>(arms_.size()); }

  /// Size-class bucketing: floor(log2(bytes)) clamped to >= 0 — every power
  /// of two is its own bandit.
  [[nodiscard]] static int size_class(std::int64_t bytes);

 private:
  struct ArmStat {
    std::uint64_t plays = 0;
    double mean = 0.0;  ///< running mean reward (bytes per unit sim-time)
  };

  std::vector<ArmStat>& cell(int peer, std::int64_t bytes);

  std::vector<RndvArm> arms_;
  std::map<std::pair<int, int>, std::vector<ArmStat>> cells_;
  sim::Rng rng_;
  double epsilon_;
};

}  // namespace ib12x::mvx
