// Pin-down cache for rendezvous user buffers (Liu et al.'s MPICH2-over-IB
// registration cache, the mechanism MVAPICH calls "dreg").
//
// Each entry pins one address interval in every local HCA domain.  Lookup
// runs in one of two modes:
//
//  * exact mode (legacy, `rndv_pipeline=off`): a hit requires the query base
//    to equal an entry base and the entry to be at least as long — the
//    semantics of the seed's `std::map<const void*, RegEntry>` cache,
//    reproduced so legacy figure outputs stay byte-identical;
//  * interval mode (pipelined rendezvous): a send from `base+offset` inside
//    any pinned interval is a hit, so chunked registrations and interior
//    pointers (e.g. alltoallv slices) reuse existing pins.
//
// Entries are reference-counted: an acquire pins the interval until the
// matching release, and LRU eviction against the `Config::reg_cache_capacity`
// byte budget only ever deregisters unpinned intervals (an interval evicted
// while pinned lingers as a zombie and is deregistered on its last release —
// real dreg's "delayed deregistration").
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "ib/mem.hpp"
#include "mvx/telemetry.hpp"
#include "mvx/wire.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {
class Hca;
}

namespace ib12x::mvx {

class PinCache {
 public:
  struct Options {
    bool interval = false;          ///< interval-covering lookup (else exact-base)
    std::int64_t capacity = 0;      ///< byte budget; 0 = unlimited (never evict)
    sim::Time hit_cpu = 0;
    sim::Time miss_cpu = 0;         ///< flat part of a registration
    sim::Time page_cpu = 0;         ///< per-4-KiB page pin cost on miss
  };

  /// One pinned interval, registered in every HCA domain of the node.
  struct Region {
    std::uint64_t base = 0;
    std::int64_t len = 0;
    ib::MemoryRegion mr[kMaxHcas];
    int pins = 0;
    bool zombie = false;  ///< evicted while pinned; deregister on last release
    std::list<std::uint64_t>::iterator lru;
  };

  PinCache(const std::vector<ib::Hca*>& hcas, const Options& opts, Counter& hits,
           Counter& misses, Counter& evictions);
  ~PinCache();

  PinCache(const PinCache&) = delete;
  PinCache& operator=(const PinCache&) = delete;

  /// Returns a pinned region covering [buf, buf+bytes), registering it on a
  /// miss; adds the hit/miss CPU cost to `*cpu_cost`.  Every acquire must be
  /// paired with a release once the hardware is done with the interval.
  Region* acquire(const void* buf, std::int64_t bytes, sim::Time* cpu_cost);
  void release(Region* r);

  [[nodiscard]] std::int64_t resident_bytes() const { return resident_bytes_; }
  [[nodiscard]] std::size_t entries() const { return regions_.size(); }

 private:
  /// Cache hit for [base, base+bytes) under the configured lookup mode, or
  /// nullptr.  Detaches an exact-base entry that is too short (the legacy
  /// erase-and-re-register path) so at most one entry exists per base.
  Region* find(std::uint64_t base, std::int64_t bytes);
  /// Removes `r` from the cache; deregisters now if unpinned, else marks it
  /// a zombie for the last release to collect.
  void detach(Region* r);
  void deregister(Region* r);
  void evict_to_capacity();

  std::vector<ib::Hca*> hcas_;  ///< copied: the cache may outlive its channel
  Options opts_;

  // Regions live on the heap so the Region* handles acquire hands out stay
  // valid across detachment (a pinned entry replaced or evicted moves to
  // zombies_ without changing address).
  std::map<std::uint64_t, std::unique_ptr<Region>> regions_;  ///< by base address
  std::list<std::uint64_t> lru_;  ///< front = least recently used
  std::vector<std::unique_ptr<Region>> zombies_;
  std::int64_t resident_bytes_ = 0;

  Counter& hits_;
  Counter& misses_;
  Counter& evictions_;
};

}  // namespace ib12x::mvx
