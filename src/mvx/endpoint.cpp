#include "mvx/endpoint.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "mvx/coll/engine.hpp"
#include "mvx/conn_manager.hpp"
#include "mvx/fast_path_channel.hpp"
#include "mvx/matcher.hpp"
#include "mvx/net_channel.hpp"
#include "mvx/rendezvous.hpp"
#include "mvx/shm_channel.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

Endpoint::Endpoint(sim::Simulator& sim, int rank, int node, std::vector<ib::Hca*> node_hcas,
                   const Config& cfg, TelemetryRegistry& tel)
    : sim_(sim), rank_(rank), node_(node), cfg_(cfg), tel_(tel) {
  matcher_ = std::make_unique<Matcher>(tel_);
  conn_ = std::make_unique<ConnManager>(*this);
  conn_->set_flush_fn([this](int peer) { flush_queued(peer); });
  net_ = std::make_unique<NetChannel>(*this, std::move(node_hcas));
  shm_ = std::make_unique<ShmChannel>(*this);
  fast_path_ = std::make_unique<FastPathChannel>(*this, *net_);
  rndv_ = std::make_unique<Rendezvous>(*this, *net_);
  coll_engine_ = std::make_unique<coll::CollEngine>(*this);

  // VCI machinery and its gated vci.* counters exist only when enabled, so
  // the default configuration allocates nothing and snapshots are unchanged.
  if (cfg_.vci.count > 1 || cfg_.vci.threads > 1) {
    for (int v = 1; v < cfg_.vci.count; ++v) {
      vci_cpu_.push_back(std::make_unique<sim::Server>());
    }
    if (cfg_.vci.threads > 1) {
      vci_locked_.assign(static_cast<std::size_t>(std::max(1, cfg_.vci.count)), 0);
    }
    for (int v = 0; v < std::max(1, cfg_.vci.count); ++v) {
      vci_sends_.push_back(&tel_.counter("vci.sends.v" + std::to_string(v)));
    }
    vci_lock_contentions_ = &tel_.counter("vci.lock_contentions");
    vci_wakeups_ = &tel_.counter("vci.progress_wakeups");
  }
}

Endpoint::~Endpoint() = default;

void Endpoint::connect_net(Endpoint& a, Endpoint& b) {
  if (a.node_ == b.node_) throw std::logic_error("connect_net: same node — use connect_shm");
  NetChannel::establish(*a.net_, *b.net_);
  FastPathChannel::connect(*a.fast_path_, *b.fast_path_);
}

void Endpoint::connect_shm(Endpoint& a, Endpoint& b) {
  if (a.node_ != b.node_) throw std::logic_error("connect_shm: different nodes");
  ShmChannel::connect(*a.shm_, *b.shm_);
}

void Endpoint::schedule_cpu(sim::Time cost, std::function<void()> fn) {
  auto r = cpu_.reserve(sim_.now(), sim_.now(), cost);
  sim_.at(r.finish, std::move(fn));
}

void Endpoint::schedule_cpu_vci(int vci, sim::Time cost, std::function<void()> fn) {
  if (vci_wakeups_ != nullptr) vci_wakeups_->inc();
  if (vci <= 0 || vci_cpu_.empty()) {
    // VCI 0 (and every message in the default configuration) stays on the
    // legacy serialized server — bit-identical single-channel timing.
    schedule_cpu(cost, std::move(fn));
    return;
  }
  sim::Server& srv = *vci_cpu_.at(static_cast<std::size_t>(vci) - 1);
  auto r = srv.reserve(sim_.now(), sim_.now(), cost);
  sim_.at(r.finish, std::move(fn));
}

void Endpoint::register_thread(sim::Process* p, int tid) {
  if (tid >= static_cast<int>(thread_procs_.size())) {
    thread_procs_.resize(static_cast<std::size_t>(tid) + 1, nullptr);
  }
  thread_procs_[static_cast<std::size_t>(tid)] = p;
}

int Endpoint::current_thread() const {
  sim::Process* cur = sim::Process::current();
  if (cur != nullptr) {
    for (std::size_t i = 0; i < thread_procs_.size(); ++i) {
      if (thread_procs_[i] == cur) return static_cast<int>(i);
    }
  }
  return 0;
}

int Endpoint::vci_for(int ctx) const {
  const int n = cfg_.vci.count;
  if (n <= 1) return 0;
  switch (cfg_.vci.mapping) {
    case Config::VciConfig::Mapping::Shared:
      return 0;
    case Config::VciConfig::Mapping::PerComm:
      // Each communicator owns two contexts (pt2pt = base, coll = base + 1);
      // both map to the same VCI so one communicator is one channel.
      return (ctx / 2) % n;
    case Config::VciConfig::Mapping::RoundRobin:
      break;
  }
  return current_thread() % n;
}

void Endpoint::lock_vci(int vci) {
  if (vci_locked_.empty()) return;  // single-threaded rank: no lock modeled
  std::uint8_t& held = vci_locked_.at(static_cast<std::size_t>(vci));
  if (held != 0) {
    if (vci_lock_contentions_ != nullptr) vci_lock_contentions_->inc();
    process().wait_until(progress_, [&held] { return held == 0; });
  }
  held = 1;
  process().compute(cfg_.vci.lock_cpu);
}

void Endpoint::unlock_vci(int vci) {
  if (vci_locked_.empty()) return;
  vci_locked_.at(static_cast<std::size_t>(vci)) = 0;
  progress_.notify_all();
}

sim::Time Endpoint::memcpy_time(std::int64_t bytes) const {
  return sim::transfer_time(bytes, cfg_.memcpy_gbps);
}

// --------------------------------------------------------------- public API

Request Endpoint::start_send(CommKind kind, const void* buf, std::int64_t bytes, int dst,
                             int tag, int ctx, int lane) {
  if (bytes < 0) throw std::invalid_argument("start_send: negative size");
  if (dst == rank_) throw std::invalid_argument("start_send: self-sends go through sendrecv_self");
  Request req = make_request();
  req->is_send = true;
  req->send_buf = buf;
  req->bytes = bytes;
  req->peer = dst;
  req->tag = tag;
  req->ctx = ctx;
  req->kind = static_cast<std::uint8_t>(kind);
  req->lane = lane;
  req->vci = vci_for(ctx);
  if (!vci_sends_.empty()) vci_sends_.at(static_cast<std::size_t>(req->vci))->inc();

  if (cfg_.lazy_connect && (!conn_->ready(dst) || conn_->has_queued(dst))) {
    // First contact (or a flush still in progress, which queued sends must
    // not overtake): start the handshake and park the send.  initiate() is
    // idempotent, so re-queueing behind an in-flight flush costs nothing.
    conn_->initiate(dst);
    conn_->enqueue(dst, QueuedSend{kind, buf, bytes, tag, ctx, req});
    return req;
  }

  // The issue path below is one VCI's critical section: threads sharing a
  // VCI serialize here (lock + serialized doorbells), threads on dedicated
  // VCIs proceed independently.  No-op in single-threaded ranks.
  lock_vci(req->vci);
  // Route to the highest-priority channel that accepts the message; the net
  // channel splits at the rendezvous threshold between the eager protocol
  // and the RTS/CTS/FIN state machine.
  if (shm_->accepts(dst, bytes)) {
    shm_->send(dst, kind, buf, bytes, tag, ctx, req);
  } else if (fast_path_->accepts(dst, bytes)) {
    fast_path_->send(dst, kind, buf, bytes, tag, ctx, req);
  } else if (net_->accepts(dst, bytes)) {
    if (bytes < cfg_.rndv_threshold) {
      net_->send(dst, kind, buf, bytes, tag, ctx, req);
    } else {
      rndv_->send_rts(dst, kind, buf, bytes, tag, ctx, req);
    }
  } else {
    unlock_vci(req->vci);
    throw std::logic_error("Endpoint " + std::to_string(rank_) + ": no connection to rank " +
                           std::to_string(dst));
  }
  unlock_vci(req->vci);
  return req;
}

Request Endpoint::start_recv(void* buf, std::int64_t capacity, int src, int tag, int ctx) {
  if (capacity < 0) throw std::invalid_argument("start_recv: negative capacity");
  Request req = make_request();
  req->recv_buf = buf;
  req->bytes = capacity;
  req->peer = src;
  req->tag = tag;
  req->ctx = ctx;

  if (cfg_.lazy_connect && src >= 0 && src != rank_) {
    // A directed receive names its sender: start that handshake now so the
    // rails exist by the time the (possibly simultaneous) send needs them.
    // Wildcard receives cannot pre-connect anybody.
    conn_->initiate(src);
  }

  // The receive issue path shares the issuing thread's VCI critical section
  // (the matcher and posted queues are rank-wide structures an MPI library
  // guards in its per-VCI critical sections).  No-op when single-threaded.
  const int issue_vci = vci_for(ctx);
  lock_vci(issue_vci);
  // Unexpected-queue scan first (arrival order).
  if (auto msg = matcher_->claim_unexpected(src, tag, ctx)) {
    const MsgHeader& hdr = msg->hdr;
    if (hdr.type == MsgType::Eager) {
      if (static_cast<std::int64_t>(hdr.size) > capacity) {
        throw std::runtime_error("start_recv: message truncation (unexpected eager)");
      }
      process().compute(cfg_.match_cpu + memcpy_time(static_cast<std::int64_t>(hdr.size)));
      if (hdr.size > 0) std::memcpy(buf, msg->payload.data(), hdr.size);
      req->status = {hdr.src_rank, hdr.tag, static_cast<std::int64_t>(hdr.size)};
      req->done = true;
      req->completed_at = sim_.now();
    } else {  // Rts
      if (static_cast<std::int64_t>(hdr.size) > capacity) {
        throw std::runtime_error("start_recv: message truncation (unexpected rendezvous)");
      }
      process().compute(cfg_.match_cpu);
      rndv_->accept(hdr, req, msg->payload);
    }
    unlock_vci(issue_vci);
    return req;
  }

  matcher_->post(req, src, tag, ctx);
  unlock_vci(issue_vci);
  return req;
}

void Endpoint::wait(const Request& r) {
  process().wait_until(progress_, [&] { return r->done; });
}

bool Endpoint::iprobe(int src, int tag, int ctx, Status* st) {
  return matcher_->iprobe(src, tag, ctx, st);
}

void Endpoint::probe(int src, int tag, int ctx, Status* st) {
  process().wait_until(progress_, [&] { return iprobe(src, tag, ctx, st); });
}

// --------------------------------------------------- inbound glue (events)

void Endpoint::ingress(int peer, const MsgHeader& hdr, std::vector<std::byte> payload) {
  for (Matcher::Inbound& m : matcher_->sequence(peer, hdr, std::move(payload))) {
    Request req = matcher_->match_posted(m.hdr);
    if (req == nullptr) {
      matcher_->store_unexpected(std::move(m));
      progress_.notify_all();  // wake blocking probes
      continue;
    }
    if (m.hdr.type == MsgType::Eager) {
      if (static_cast<std::int64_t>(m.hdr.size) > req->bytes) {
        throw std::runtime_error("recv: message truncation (eager)");
      }
      complete_recv(req, m.hdr, m.payload.data(),
                    cfg_.match_cpu + memcpy_time(static_cast<std::int64_t>(m.hdr.size)));
    } else {  // Rts
      if (static_cast<std::int64_t>(m.hdr.size) > req->bytes) {
        throw std::runtime_error("recv: message truncation (rendezvous)");
      }
      const MsgHeader rts = m.hdr;
      // A ReadRts RTS carries the sender's rkeys as payload; move it into the
      // lambda so accept() can hand it to the read path.
      schedule_cpu_vci(rts.vci, cfg_.match_cpu,
                       [this, rts, req, payload = std::move(m.payload)] {
                         rndv_->accept(rts, req, payload);
                       });
    }
  }
}

void Endpoint::on_ctl(const MsgHeader& hdr, const CtsRkeys& rkeys) {
  if (hdr.type == MsgType::Cts) {
    // CTS handling consumes host CPU before the stripes are posted.
    schedule_cpu_vci(hdr.vci, cfg_.ctl_cpu, [this, hdr, rkeys] { rndv_->on_cts(hdr, rkeys); });
  } else if (hdr.type == MsgType::Done) {
    rndv_->on_done(hdr);
  } else {  // Fin
    rndv_->on_fin(hdr);
  }
}

void Endpoint::on_rndv_write_done(int peer, std::uint64_t req_id) {
  rndv_->on_write_done(peer, req_id);
}

void Endpoint::on_rndv_write_failed(int peer, const RndvStripe& st) {
  rndv_->on_write_failed(peer, st);
}

void Endpoint::on_rndv_read_done(int peer, std::uint64_t req_id) {
  rndv_->on_read_done(peer, req_id);
}

void Endpoint::on_rndv_read_failed(int peer, const RndvStripe& st) {
  rndv_->on_read_failed(peer, st);
}

void Endpoint::on_rndv_imm(std::uint32_t imm_data) { rndv_->on_imm(imm_data); }

void Endpoint::flush_queued(int peer) {
  while (conn_->has_queued(peer)) {
    QueuedSend& qs = conn_->front(peer);
    bool sent;
    if (shm_->accepts(peer, qs.bytes)) {
      shm_->send_evt(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
      sent = true;
    } else if (fast_path_->accepts(peer, qs.bytes)) {
      fast_path_->send_evt(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
      sent = true;
    } else if (qs.bytes < cfg_.rndv_threshold) {
      sent = net_->try_send(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
    } else {
      sent = rndv_->try_send_rts(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
    }
    if (!sent) return;  // resources dry — the freeing CQE re-flushes
    conn_->pop_front(peer);
  }
}

void Endpoint::on_eager_resources_freed(int /*peer*/) {
  if (!cfg_.lazy_connect) return;
  // The bounce pool and (in SRQ mode) the eager slot arena are shared across
  // peers, so the freed resource can unblock any queued peer — not just the
  // one whose CQE fired.
  for (int p : conn_->queued_peers()) {
    if (conn_->ready(p)) flush_queued(p);
  }
}

void Endpoint::complete_request(const Request& req) {
  req->done = true;
  req->completed_at = sim_.now();
  progress_.notify_all();
}

void Endpoint::complete_recv(const Request& req, const MsgHeader& hdr, const std::byte* payload,
                             sim::Time extra_delay) {
  if (hdr.size > 0) std::memcpy(req->recv_buf, payload, hdr.size);
  req->status = {hdr.src_rank, hdr.tag, static_cast<std::int64_t>(hdr.size)};
  // The copy out of the bounce buffer runs on the message's VCI progress CPU.
  schedule_cpu_vci(hdr.vci, extra_delay, [this, req] { complete_request(req); });
}

}  // namespace ib12x::mvx
