#include "mvx/endpoint.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/log.hpp"

namespace ib12x::mvx {

Endpoint::Endpoint(sim::Simulator& sim, int rank, int node, std::vector<ib::Hca*> node_hcas,
                   const Config& cfg)
    : sim_(sim), rank_(rank), node_(node), hcas_(std::move(node_hcas)), cfg_(cfg) {
  if (static_cast<int>(hcas_.size()) > kMaxHcas) {
    throw std::invalid_argument("Endpoint: too many HCAs per node");
  }
  scq_.set_callback([this](const ib::Wc& wc) { on_send_cqe(wc); });
  rcq_.set_callback([this](const ib::Wc& wc) { on_recv_cqe(wc); });

  const std::size_t slot_bytes = kHeaderBytes + static_cast<std::size_t>(cfg_.rndv_threshold);
  bounce_.resize(static_cast<std::size_t>(cfg_.send_bounce_bufs));
  for (std::size_t i = 0; i < bounce_.size(); ++i) {
    bounce_[i].data.resize(slot_bytes);
    for (std::size_t h = 0; h < hcas_.size(); ++h) {
      bounce_[i].lkey[h] =
          hcas_[h]->mem().register_memory(bounce_[i].data.data(), slot_bytes).lkey;
    }
    free_bounce_.push_back(static_cast<int>(i));
  }
}

Endpoint::~Endpoint() = default;

void Endpoint::connect_net(Endpoint& a, Endpoint& b) {
  if (a.node_ == b.node_) throw std::logic_error("connect_net: same node — use connect_shm");
  const Config& cfg = a.cfg_;
  PeerConn& ca = a.conns_[b.rank_];
  PeerConn& cb = b.conns_[a.rank_];
  ca.peer = b.rank_;
  cb.peer = a.rank_;

  // SRQ mode: one shared receive queue per local HCA, created on first use.
  auto ensure_srqs = [](Endpoint& ep) {
    if (!ep.cfg_.use_srq || !ep.srqs_.empty()) return;
    for (ib::Hca* hca : ep.hcas_) ep.srqs_.push_back(&hca->create_srq());
  };
  ensure_srqs(a);
  ensure_srqs(b);

  const std::size_t slot_bytes = kHeaderBytes + static_cast<std::size_t>(cfg.rndv_threshold);
  auto prepost = [&](Endpoint& ep, ib::QueuePair* qp, int hca_index, int peer) {
    for (int i = 0; i < cfg.eager_credits; ++i) {
      auto slot = std::make_unique<RecvSlot>();
      slot->buf.resize(slot_bytes);
      slot->peer = peer;
      // Receive buffers only need registration in the domain of the HCA the
      // QP lives on.
      slot->lkey = qp->port().hca().mem().register_memory(slot->buf.data(), slot_bytes).lkey;
      const ib::RecvWr wr{.wr_id = reinterpret_cast<std::uint64_t>(slot.get()),
                          .dst = slot->buf.data(),
                          .length = static_cast<std::uint32_t>(slot_bytes),
                          .lkey = slot->lkey};
      if (cfg.use_srq) {
        slot->srq = ep.srqs_.at(static_cast<std::size_t>(hca_index));
        slot->srq->post(wr);
      } else {
        slot->qp = qp;
        qp->post_recv(wr);
      }
      ep.recv_slots_.push_back(std::move(slot));
    }
  };

  auto setup_fast_path = [&cfg](Endpoint& me, PeerConn& mine, Endpoint& other) {
    if (!cfg.use_rdma_fast_path) return;
    mine.peer_ep = &other;
    mine.fp_slot_bytes = kHeaderBytes + static_cast<std::size_t>(cfg.fast_path_max);
    mine.fp_recv_ring.resize(mine.fp_slot_bytes * static_cast<std::size_t>(cfg.fast_path_slots));
    mine.fp_send_stage.resize(mine.fp_slot_bytes * static_cast<std::size_t>(cfg.fast_path_slots));
    // The ring is written over rail 0, so registration in HCA 0's domain
    // suffices; the addr/rkey exchange happens out of band at setup (real
    // MVAPICH piggybacks it on connection establishment).
    ib::MemoryRegion rmr = me.hcas_[0]->mem().register_memory(mine.fp_recv_ring.data(),
                                                              mine.fp_recv_ring.size());
    mine.fp_stage_lkey =
        me.hcas_[0]->mem().register_memory(mine.fp_send_stage.data(), mine.fp_send_stage.size())
            .lkey;
    mine.fp_credits = cfg.fast_path_slots;
    // Tell the other side where to write.
    PeerConn& theirs = other.conns_[me.rank_];
    theirs.fp_raddr = rmr.addr;
    theirs.fp_rkey = rmr.rkey;
  };
  setup_fast_path(a, ca, b);
  setup_fast_path(b, cb, a);

  for (int h = 0; h < cfg.hcas_per_node; ++h) {
    for (int p = 0; p < cfg.ports_per_hca; ++p) {
      for (int q = 0; q < cfg.qps_per_port; ++q) {
        ib::SharedReceiveQueue* srq_a =
            cfg.use_srq ? a.srqs_.at(static_cast<std::size_t>(h)) : nullptr;
        ib::SharedReceiveQueue* srq_b =
            cfg.use_srq ? b.srqs_.at(static_cast<std::size_t>(h)) : nullptr;
        ib::QueuePair& qa =
            a.hcas_.at(static_cast<std::size_t>(h))->create_qp(p, a.scq_, a.rcq_, srq_a);
        ib::QueuePair& qb =
            b.hcas_.at(static_cast<std::size_t>(h))->create_qp(p, b.scq_, b.rcq_, srq_b);
        ib::Fabric::connect(qa, qb);
        ca.rails.push_back(Rail{&qa, h, cfg.eager_credits, 0});
        cb.rails.push_back(Rail{&qb, h, cfg.eager_credits, 0});
        prepost(a, &qa, h, b.rank_);
        prepost(b, &qb, h, a.rank_);
      }
    }
  }
}

void Endpoint::connect_shm(Endpoint& a, Endpoint& b) {
  if (a.node_ != b.node_) throw std::logic_error("connect_shm: different nodes");
  PeerConn& ca = a.conns_[b.rank_];
  PeerConn& cb = b.conns_[a.rank_];
  ca.peer = b.rank_;
  ca.shm = true;
  ca.peer_ep = &b;
  ca.shm_pipe = sim::BandwidthServer("shm", a.cfg_.shm_gbps);
  cb.peer = a.rank_;
  cb.shm = true;
  cb.peer_ep = &a;
  cb.shm_pipe = sim::BandwidthServer("shm", b.cfg_.shm_gbps);
}

void Endpoint::schedule_cpu(sim::Time cost, std::function<void()> fn) {
  auto r = cpu_.reserve(sim_.now(), sim_.now(), cost);
  sim_.at(r.finish, std::move(fn));
}

Endpoint::PeerConn& Endpoint::conn(int peer) {
  auto it = conns_.find(peer);
  if (it == conns_.end()) {
    throw std::logic_error("Endpoint " + std::to_string(rank_) + ": no connection to rank " +
                           std::to_string(peer));
  }
  return it->second;
}

int Endpoint::least_loaded_rail(const PeerConn& c) const {
  int best = 0;
  for (int i = 1; i < static_cast<int>(c.rails.size()); ++i) {
    if (c.rails[static_cast<std::size_t>(i)].outstanding <
        c.rails[static_cast<std::size_t>(best)].outstanding) {
      best = i;
    }
  }
  return best;
}

bool Endpoint::iprobe(int src, int tag, int ctx, Status* st) {
  for (const Unexpected& u : unexpected_) {
    if (u.hdr.ctx != ctx) continue;
    if (src != -1 && u.hdr.src_rank != src) continue;
    if (tag != -1 && u.hdr.tag != tag) continue;
    if (st != nullptr) {
      *st = {u.hdr.src_rank, u.hdr.tag, static_cast<std::int64_t>(u.hdr.size)};
    }
    return true;
  }
  return false;
}

void Endpoint::probe(int src, int tag, int ctx, Status* st) {
  proc_->wait_until(progress_, [&] { return iprobe(src, tag, ctx, st); });
}

sim::Time Endpoint::memcpy_time(std::int64_t bytes) const {
  return sim::transfer_time(bytes, cfg_.memcpy_gbps);
}

std::uint64_t Endpoint::new_cookie(const Request& req) {
  std::uint64_t id = next_cookie_++;
  outstanding_[id] = req;
  return id;
}

Request Endpoint::take_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Endpoint: unknown request cookie " + std::to_string(id));
  }
  Request r = it->second;
  outstanding_.erase(it);
  return r;
}

Request Endpoint::peek_cookie(std::uint64_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    throw std::logic_error("Endpoint: unknown request cookie " + std::to_string(id));
  }
  return it->second;
}

// --------------------------------------------------------------- public API

Request Endpoint::start_send(CommKind kind, const void* buf, std::int64_t bytes, int dst,
                             int tag, int ctx) {
  if (bytes < 0) throw std::invalid_argument("start_send: negative size");
  if (dst == rank_) throw std::invalid_argument("start_send: self-sends go through sendrecv_self");
  Request req = make_request();
  req->is_send = true;
  req->send_buf = buf;
  req->bytes = bytes;
  req->peer = dst;
  req->tag = tag;
  req->ctx = ctx;
  req->kind = static_cast<std::uint8_t>(kind);

  PeerConn& c = conn(dst);
  if (c.shm) {
    send_shm(c, kind, buf, bytes, tag, ctx, req);
  } else if (cfg_.use_rdma_fast_path && bytes <= cfg_.fast_path_max && c.fp_credits > 0) {
    send_fast_path(c, kind, buf, bytes, tag, ctx, req);
  } else if (bytes < cfg_.rndv_threshold) {
    send_eager_msg(c, kind, buf, bytes, tag, ctx, req);
  } else {
    send_rts(c, kind, buf, bytes, tag, ctx, req);
  }
  return req;
}

Request Endpoint::start_recv(void* buf, std::int64_t capacity, int src, int tag, int ctx) {
  if (capacity < 0) throw std::invalid_argument("start_recv: negative capacity");
  Request req = make_request();
  req->recv_buf = buf;
  req->bytes = capacity;
  req->peer = src;
  req->tag = tag;
  req->ctx = ctx;

  // Unexpected-queue scan first (arrival order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    const MsgHeader& h = it->hdr;
    if (h.ctx != ctx) continue;
    if (src != -1 && h.src_rank != src) continue;
    if (tag != -1 && h.tag != tag) continue;
    MsgHeader hdr = h;
    std::vector<std::byte> payload = std::move(it->payload);
    unexpected_.erase(it);
    if (hdr.type == MsgType::Eager) {
      if (static_cast<std::int64_t>(hdr.size) > capacity) {
        throw std::runtime_error("start_recv: message truncation (unexpected eager)");
      }
      proc_->compute(cfg_.match_cpu + memcpy_time(static_cast<std::int64_t>(hdr.size)));
      if (hdr.size > 0) std::memcpy(buf, payload.data(), hdr.size);
      req->status = {hdr.src_rank, hdr.tag, static_cast<std::int64_t>(hdr.size)};
      req->done = true;
      req->completed_at = sim_.now();
    } else {  // Rts
      if (static_cast<std::int64_t>(hdr.size) > capacity) {
        throw std::runtime_error("start_recv: message truncation (unexpected rendezvous)");
      }
      proc_->compute(cfg_.match_cpu);
      accept_rndv(hdr, req);
    }
    return req;
  }

  posted_.push_back(PostedRecv{req, src, tag, ctx});
  return req;
}

void Endpoint::wait(const Request& r) {
  proc_->wait_until(progress_, [&] { return r->done; });
}

// ------------------------------------------------------------- eager sends

int Endpoint::acquire_bounce_and_credit(PeerConn& c, int rail) {
  Rail& r = c.rails.at(static_cast<std::size_t>(rail));
  if (r.credits <= 0 || free_bounce_.empty()) ++stats_.credit_stalls;
  proc_->wait_until(progress_, [&] { return r.credits > 0 && !free_bounce_.empty(); });
  // Reserve both resources NOW: between this call and the eventual
  // post_eager the process charges CPU time, during which an event-context
  // control send could otherwise steal the last credit and trigger RNR.
  --r.credits;
  int b = free_bounce_.back();
  free_bounce_.pop_back();
  return b;
}

void Endpoint::post_eager(PeerConn& c, int rail, int bounce, const MsgHeader& hdr,
                          const void* payload, std::int64_t bytes) {
  Rail& r = c.rails.at(static_cast<std::size_t>(rail));
  BounceBuf& bb = bounce_[static_cast<std::size_t>(bounce)];
  write_header(bb.data.data(), hdr);
  if (bytes > 0) std::memcpy(bb.data.data() + kHeaderBytes, payload, static_cast<std::size_t>(bytes));

  // The caller has already reserved the credit (acquire_bounce_and_credit
  // or send_ctl); post_eager only performs the copy and the post.
  auto* ctx = new SendCtx{SendCtx::Kind::Bounce, c.peer, rail, bounce, 0,
                          static_cast<std::int64_t>(kHeaderBytes) + bytes};
  r.outstanding += static_cast<std::int64_t>(kHeaderBytes) + bytes;
  if (r.credits < 0) throw std::logic_error("post_eager: credit underflow");
  r.qp->post_send({.wr_id = reinterpret_cast<std::uint64_t>(ctx),
                   .opcode = ib::Opcode::Send,
                   .src = bb.data.data(),
                   .length = static_cast<std::uint32_t>(kHeaderBytes + bytes),
                   .lkey = bb.lkey[r.hca_index]});
}

void Endpoint::send_eager_msg(PeerConn& c, CommKind kind, const void* buf, std::int64_t bytes,
                              int tag, int ctx, const Request& req) {
  Schedule s = choose_schedule(cfg_.policy, kind, bytes, static_cast<int>(c.rails.size()),
                               cfg_.stripe_threshold, c.cursor);
  int rail = s.stripe ? 0 : s.rail;  // eager never stripes
  if (cfg_.policy == Policy::Adaptive) rail = least_loaded_rail(c);

  int bounce = acquire_bounce_and_credit(c, rail);
  proc_->compute(cfg_.post_cpu + memcpy_time(static_cast<std::int64_t>(kHeaderBytes) + bytes));

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = rank_;
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = c.send_seq[ctx]++;
  hdr.size = static_cast<std::uint64_t>(bytes);
  post_eager(c, rail, bounce, hdr, buf, bytes);

  ++stats_.eager_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(bytes);

  // Eager sends are buffered: the user buffer is reusable immediately.
  req->done = true;
  req->completed_at = sim_.now();
}

// ---------------------------------------------------------------- controls

void Endpoint::send_ctl(PeerConn& c, const MsgHeader& hdr, const CtsRkeys& rkeys) {
  // Pick the first rail (starting at the cursor) with a credit.
  const int n = static_cast<int>(c.rails.size());
  int rail = -1;
  for (int i = 0; i < n; ++i) {
    int cand = (c.cursor.next + i) % n;
    if (c.rails[static_cast<std::size_t>(cand)].credits > 0) {
      rail = cand;
      break;
    }
  }
  if (rail < 0 || free_bounce_.empty()) {
    c.pending_ctl.emplace_back(hdr, rkeys);
    return;
  }
  --c.rails.at(static_cast<std::size_t>(rail)).credits;  // reserve
  int bounce = free_bounce_.back();
  free_bounce_.pop_back();
  const std::int64_t payload_bytes = hdr.type == MsgType::Cts ? sizeof(CtsRkeys) : 0;
  post_eager(c, rail, bounce, hdr, &rkeys, payload_bytes);
  ++stats_.ctl_sent;
}

void Endpoint::flush_pending_ctl(PeerConn& c) {
  while (!c.pending_ctl.empty()) {
    auto [hdr, rkeys] = c.pending_ctl.front();
    const std::size_t before = c.pending_ctl.size();
    c.pending_ctl.pop_front();
    send_ctl(c, hdr, rkeys);
    if (c.pending_ctl.size() >= before) return;  // still stuck
  }
}

// --------------------------------------------------------------- rendezvous

const Endpoint::RegEntry& Endpoint::register_cached(const void* buf, std::int64_t bytes,
                                                    sim::Time* cpu_cost) {
  auto it = reg_cache_.find(buf);
  if (it != reg_cache_.end()) {
    // A cached entry that is too small must be (cheaply) re-registered.
    if (it->second.mr[0].length >= static_cast<std::uint64_t>(bytes)) {
      *cpu_cost += cfg_.reg_cache_hit;
      return it->second;
    }
    reg_cache_.erase(it);
  }
  RegEntry entry;
  for (std::size_t h = 0; h < hcas_.size(); ++h) {
    entry.mr[h] = hcas_[h]->mem().register_memory(const_cast<void*>(buf),
                                                  static_cast<std::size_t>(bytes));
  }
  *cpu_cost += cfg_.reg_cache_miss;
  return reg_cache_.emplace(buf, entry).first->second;
}

void Endpoint::send_rts(PeerConn& c, CommKind kind, const void* /*buf*/, std::int64_t bytes,
                        int tag, int ctx, const Request& req) {
  // Control messages round-robin over rails; the data schedule is decided at
  // CTS time by the marker-driven policy.
  RailCursor ctl_cursor = c.cursor;  // do not disturb the data cursor
  Schedule s = choose_schedule(Policy::RoundRobin, kind, 0, static_cast<int>(c.rails.size()),
                               cfg_.stripe_threshold, ctl_cursor);
  int bounce = acquire_bounce_and_credit(c, s.rail);
  proc_->compute(cfg_.post_cpu);

  MsgHeader hdr;
  hdr.type = MsgType::Rts;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = rank_;
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = c.send_seq[ctx]++;
  hdr.size = static_cast<std::uint64_t>(bytes);
  hdr.sender_cookie = new_cookie(req);
  post_eager(c, s.rail, bounce, hdr, nullptr, 0);
  ++stats_.rndv_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(bytes);
}

void Endpoint::accept_rndv(const MsgHeader& rts, const Request& req) {
  req->status = {rts.src_rank, rts.tag, static_cast<std::int64_t>(rts.size)};
  req->peer = rts.src_rank;

  sim::Time cost = 0;
  CtsRkeys rkeys;
  if (rts.size > 0) {
    const RegEntry& reg = register_cached(req->recv_buf, static_cast<std::int64_t>(rts.size), &cost);
    for (std::size_t h = 0; h < hcas_.size(); ++h) rkeys.rkey[h] = reg.mr[h].rkey;
  }

  MsgHeader cts;
  cts.type = MsgType::Cts;
  cts.src_rank = rank_;
  cts.ctx = rts.ctx;
  cts.size = rts.size;
  cts.sender_cookie = rts.sender_cookie;
  cts.receiver_cookie = new_cookie(req);
  cts.raddr = reinterpret_cast<std::uint64_t>(req->recv_buf);

  const int peer = rts.src_rank;
  schedule_cpu(cost + cfg_.ctl_cpu + cfg_.post_cpu,
               [this, peer, cts, rkeys] { send_ctl(conn(peer), cts, rkeys); });
}

void Endpoint::handle_cts(const MsgHeader& hdr, const CtsRkeys& rkeys) {
  Request req = peek_cookie(hdr.sender_cookie);
  IB12X_DEBUG(sim_.now(), "rank%d: CTS for cookie %llu size %llu", rank_,
              (unsigned long long)hdr.sender_cookie, (unsigned long long)hdr.size);
  req->peer_cookie = hdr.receiver_cookie;
  start_rndv_writes(conn(req->peer), req, hdr, rkeys);
}

void Endpoint::start_rndv_writes(PeerConn& c, const Request& req, const MsgHeader& cts,
                                 const CtsRkeys& rkeys) {
  const std::int64_t bytes = req->bytes;
  const int nrails = static_cast<int>(c.rails.size());
  Schedule s = choose_schedule(cfg_.policy, static_cast<CommKind>(req->kind), bytes, nrails,
                               cfg_.stripe_threshold, c.cursor);

  struct Stripe {
    int rail;
    std::int64_t offset;
    std::int64_t len;
  };
  std::vector<Stripe> stripes;
  if (s.stripe && bytes > 0) {
    // Striping over all rails (never cutting below min_stripe); stripe sizes
    // follow the configured rail weights for WeightedStriping, equal shares
    // otherwise.
    const int n = static_cast<int>(std::min<std::int64_t>(
        nrails, std::max<std::int64_t>(1, bytes / cfg_.min_stripe)));
    std::vector<double> w(static_cast<std::size_t>(n), 1.0);
    if (cfg_.policy == Policy::WeightedStriping && !cfg_.rail_weights.empty()) {
      for (int i = 0; i < n; ++i) {
        w[static_cast<std::size_t>(i)] =
            cfg_.rail_weights[static_cast<std::size_t>(i) % cfg_.rail_weights.size()];
      }
    }
    double wsum = 0;
    for (double x : w) wsum += x;
    std::int64_t off = 0;
    for (int i = 0; i < n; ++i) {
      std::int64_t len = i + 1 == n
                             ? bytes - off
                             : static_cast<std::int64_t>(static_cast<double>(bytes) *
                                                         w[static_cast<std::size_t>(i)] / wsum);
      stripes.push_back({i, off, len});
      off += len;
    }
  } else if (cfg_.policy == Policy::Adaptive) {
    stripes.push_back({least_loaded_rail(c), 0, bytes});
  } else {
    stripes.push_back({s.rail, 0, bytes});
  }

  sim::Time cost = cfg_.ctl_cpu;
  std::array<ib::LKey, kMaxHcas> lkeys{};
  if (bytes > 0) {
    const RegEntry& reg = register_cached(req->send_buf, bytes, &cost);
    for (int h = 0; h < kMaxHcas; ++h) lkeys[static_cast<std::size_t>(h)] = reg.mr[h].lkey;
  }

  req->pending_writes = static_cast<int>(stripes.size());
  stats_.stripes_posted += stripes.size();
  const std::uint64_t req_id = cts.sender_cookie;

  // Descriptor posting is serialized on the host CPU (WQE build + doorbell
  // per stripe), queued behind any other protocol work this rank is doing.
  // This is one of the per-stripe costs that make striping lose to
  // round-robin for medium messages (paper §3.2).
  for (std::size_t i = 0; i < stripes.size(); ++i) {
    const Stripe st = stripes[i];
    const sim::Time when = (i == 0 ? cost : 0) + cfg_.post_cpu;
    schedule_cpu(when, [this, &c, st, req_id, cts, rkeys, lkeys] {
      Rail& r = c.rails.at(static_cast<std::size_t>(st.rail));
      auto* sctx = new SendCtx{SendCtx::Kind::RndvWrite, c.peer, st.rail, -1, req_id, st.len};
      r.outstanding += st.len;
      Request req = peek_cookie(req_id);
      ib::SendWr wr;
      wr.wr_id = reinterpret_cast<std::uint64_t>(sctx);
      wr.opcode = ib::Opcode::RdmaWrite;
      wr.src = static_cast<const std::byte*>(req->send_buf) + st.offset;
      wr.length = static_cast<std::uint32_t>(st.len);
      wr.lkey = st.len > 0 ? lkeys[static_cast<std::size_t>(r.hca_index)] : 0;
      wr.remote_addr = cts.raddr + static_cast<std::uint64_t>(st.offset);
      wr.rkey = rkeys.rkey[r.hca_index];
      r.qp->post_send(wr);
    });
  }
}

void Endpoint::handle_fin(const MsgHeader& hdr) {
  Request req = take_cookie(hdr.receiver_cookie);
  IB12X_DEBUG(sim_.now(), "rank%d: FIN for cookie %llu", rank_, (unsigned long long)hdr.receiver_cookie);
  schedule_cpu(cfg_.ctl_cpu, [this, req] { complete_request(req); });
}

void Endpoint::complete_request(const Request& req) {
  req->done = true;
  req->completed_at = sim_.now();
  progress_.notify_all();
}

// ------------------------------------------------------------ inbound path

void Endpoint::on_send_cqe(const ib::Wc& wc) {
  auto* sctx = reinterpret_cast<SendCtx*>(wc.wr_id);
  // Polling and processing a completion costs host CPU, serialized with all
  // other protocol work of this rank — per-stripe CQEs are a real per-stripe
  // tax ("receipt of multiple acknowledgments", paper §4.3).
  schedule_cpu(cfg_.cqe_sw, [this, sctx] {
    PeerConn& c = conn(sctx->peer);
    c.rails.at(static_cast<std::size_t>(sctx->rail)).outstanding -= sctx->bytes;
    switch (sctx->kind) {
      case SendCtx::Kind::Bounce: {
        ++c.rails.at(static_cast<std::size_t>(sctx->rail)).credits;
        free_bounce_.push_back(sctx->bounce);
        flush_pending_ctl(c);
        progress_.notify_all();
        break;
      }
      case SendCtx::Kind::FpWrite:
        break;  // staging slot reuse is gated by the fast-path credit
      case SendCtx::Kind::RndvWrite: {
        Request req = peek_cookie(sctx->req_id);
        IB12X_DEBUG(sim_.now(), "rank%d: write CQE cookie %llu remaining %d", rank_,
                    (unsigned long long)sctx->req_id, req->pending_writes - 1);
        if (--req->pending_writes == 0) {
          // All stripes placed remotely (CQE implies remote visibility):
          // tell the receiver and complete the local send.
          MsgHeader fin;
          fin.type = MsgType::Fin;
          fin.src_rank = rank_;
          fin.receiver_cookie = req->peer_cookie;
          send_ctl(c, fin, CtsRkeys{});
          take_cookie(sctx->req_id);
          complete_request(req);
        }
        break;
      }
    }
    delete sctx;
  });
}

void Endpoint::on_recv_cqe(const ib::Wc& wc) {
  auto* slot = reinterpret_cast<RecvSlot*>(wc.wr_id);
  MsgHeader hdr = read_header(slot->buf.data());
  const std::byte* payload = slot->buf.data() + kHeaderBytes;

  switch (hdr.type) {
    case MsgType::Eager:
    case MsgType::Rts: {
      sequence_incoming(conn(hdr.src_rank), hdr, payload);
      break;
    }
    case MsgType::Cts: {
      CtsRkeys rkeys;
      std::memcpy(&rkeys, payload, sizeof(rkeys));
      // CTS handling consumes host CPU before the stripes are posted.
      schedule_cpu(cfg_.ctl_cpu, [this, hdr, rkeys] { handle_cts(hdr, rkeys); });
      break;
    }
    case MsgType::Fin: {
      handle_fin(hdr);
      break;
    }
  }

  // Recycle the receive slot immediately (MVAPICH reposts vbufs eagerly; the
  // sender's credit only returns with its CQE, which is always later).
  const ib::RecvWr repost{.wr_id = wc.wr_id,
                          .dst = slot->buf.data(),
                          .length = static_cast<std::uint32_t>(slot->buf.size()),
                          .lkey = slot->lkey};
  if (slot->srq != nullptr) {
    slot->srq->post(repost);
  } else {
    slot->qp->post_recv(repost);
  }
}

void Endpoint::sequence_incoming(PeerConn& c, const MsgHeader& hdr, const std::byte* payload) {
  std::vector<std::byte> copy;
  if (hdr.type == MsgType::Eager && hdr.size > 0) {
    copy.assign(payload, payload + hdr.size);
  }
  std::uint32_t& next = c.next_seq[hdr.ctx];
  if (hdr.seq != next) {
    // Arrived ahead of order (multi-rail round robin / striping race): park
    // until the gap closes.
    c.reorder.emplace(std::make_pair(hdr.ctx, hdr.seq), Unexpected{hdr, std::move(copy)});
    return;
  }
  ++next;
  deliver_ordered(c, hdr, std::move(copy));
  // Drain any now-contiguous parked messages.
  for (auto it = c.reorder.find({hdr.ctx, next}); it != c.reorder.end();
       it = c.reorder.find({hdr.ctx, next})) {
    Unexpected u = std::move(it->second);
    c.reorder.erase(it);
    ++next;
    deliver_ordered(c, u.hdr, std::move(u.payload));
  }
}

void Endpoint::deliver_ordered(PeerConn& c, const MsgHeader& hdr, std::vector<std::byte> payload) {
  (void)c;
  if (try_match_inbound(hdr, payload.data())) return;
  ++stats_.unexpected;
  unexpected_.push_back(Unexpected{hdr, std::move(payload)});
  progress_.notify_all();  // wake blocking probes
}

bool Endpoint::try_match_inbound(const MsgHeader& hdr, const std::byte* payload) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->ctx != hdr.ctx) continue;
    if (it->src != -1 && it->src != hdr.src_rank) continue;
    if (it->tag != -1 && it->tag != hdr.tag) continue;
    Request req = it->req;
    posted_.erase(it);
    if (hdr.type == MsgType::Eager) {
      if (static_cast<std::int64_t>(hdr.size) > req->bytes) {
        throw std::runtime_error("recv: message truncation (eager)");
      }
      complete_recv(req, hdr, payload,
                    cfg_.match_cpu + memcpy_time(static_cast<std::int64_t>(hdr.size)));
    } else {  // Rts
      if (static_cast<std::int64_t>(hdr.size) > req->bytes) {
        throw std::runtime_error("recv: message truncation (rendezvous)");
      }
      schedule_cpu(cfg_.match_cpu, [this, hdr, req] { accept_rndv(hdr, req); });
    }
    return true;
  }
  return false;
}

void Endpoint::complete_recv(const Request& req, const MsgHeader& hdr, const std::byte* payload,
                             sim::Time extra_delay) {
  if (hdr.size > 0) std::memcpy(req->recv_buf, payload, hdr.size);
  req->status = {hdr.src_rank, hdr.tag, static_cast<std::int64_t>(hdr.size)};
  // The copy out of the bounce buffer runs on this rank's CPU.
  schedule_cpu(extra_delay, [this, req] { complete_request(req); });
}

// ---------------------------------------------------------- RDMA fast path

void Endpoint::send_fast_path(PeerConn& c, CommKind kind, const void* buf, std::int64_t bytes,
                              int tag, int ctx, const Request& req) {
  const int slot = c.fp_head;
  c.fp_head = (c.fp_head + 1) % cfg_.fast_path_slots;
  --c.fp_credits;

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = rank_;
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = c.send_seq[ctx]++;
  hdr.size = static_cast<std::uint64_t>(bytes);

  std::byte* stage = c.fp_send_stage.data() + static_cast<std::size_t>(slot) * c.fp_slot_bytes;
  write_header(stage, hdr);
  if (bytes > 0) std::memcpy(stage + kHeaderBytes, buf, static_cast<std::size_t>(bytes));
  proc_->compute(cfg_.post_cpu + memcpy_time(static_cast<std::int64_t>(kHeaderBytes) + bytes));

  Rail& r = c.rails.front();  // the fast path rides rail 0
  auto* sctx = new SendCtx{SendCtx::Kind::FpWrite, c.peer, 0, -1, 0,
                           static_cast<std::int64_t>(kHeaderBytes) + bytes};
  r.outstanding += static_cast<std::int64_t>(kHeaderBytes) + bytes;

  Endpoint* peer_ep = c.peer_ep;
  const int me = rank_;
  ib::SendWr wr;
  wr.wr_id = reinterpret_cast<std::uint64_t>(sctx);
  wr.opcode = ib::Opcode::RdmaWrite;
  wr.src = stage;
  wr.length = static_cast<std::uint32_t>(kHeaderBytes + bytes);
  wr.lkey = c.fp_stage_lkey;
  wr.remote_addr = c.fp_raddr + static_cast<std::uint64_t>(slot) * c.fp_slot_bytes;
  wr.rkey = c.fp_rkey;
  // The receiver's poll loop notices the tail flag one poll period after the
  // data lands.
  sim::Simulator& sim = sim_;
  const sim::Time poll = cfg_.poll_delay;
  wr.delivered_cb = [peer_ep, me, slot, &sim, poll] {
    sim.after(poll, [peer_ep, me, slot] { peer_ep->fast_path_arrival(me, slot); });
  };
  r.qp->post_send(wr);

  ++stats_.fast_path_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(bytes);
  req->done = true;  // buffered: the payload is staged
  req->completed_at = sim_.now();
}

void Endpoint::fast_path_arrival(int src, int slot) {
  PeerConn& c = conn(src);
  const std::byte* base = c.fp_recv_ring.data() + static_cast<std::size_t>(slot) * c.fp_slot_bytes;
  MsgHeader hdr = read_header(base);
  sequence_incoming(c, hdr, base + kHeaderBytes);
  // sequence_incoming copied the payload; the slot is free.  Credit return
  // is piggybacked on reverse traffic in MVAPICH — modelled as free after
  // the drain's CPU cost.
  Endpoint* peer_ep = c.peer_ep;
  const int me = rank_;
  schedule_cpu(cfg_.ctl_cpu, [peer_ep, me] { peer_ep->fast_path_credit(me); });
}

void Endpoint::fast_path_credit(int peer) {
  ++conn(peer).fp_credits;
  progress_.notify_all();
}

// ------------------------------------------------------------- shm channel

void Endpoint::send_shm(PeerConn& c, CommKind kind, const void* buf, std::int64_t bytes,
                        int tag, int ctx, const Request& req) {
  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.src_rank = rank_;
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = c.send_seq[ctx]++;
  hdr.size = static_cast<std::uint64_t>(bytes);

  // Copy into the (modelled) shared segment; the sender's CPU does this.
  std::vector<std::byte> payload;
  if (bytes > 0) {
    payload.assign(static_cast<const std::byte*>(buf),
                   static_cast<const std::byte*>(buf) + bytes);
  }
  proc_->compute(cfg_.post_cpu + memcpy_time(bytes));

  auto res = c.shm_pipe.reserve_bytes(sim_.now(), sim_.now(),
                                      static_cast<std::int64_t>(kHeaderBytes) + bytes);
  const sim::Time deliver_at = res.finish + cfg_.shm_latency;
  Endpoint* peer = c.peer_ep;
  const int me = rank_;
  sim_.at(deliver_at, [peer, me, hdr, payload = std::move(payload)]() mutable {
    peer->receive_shm(me, hdr, std::move(payload));
  });

  ++stats_.shm_sent;
  stats_.bytes_sent += static_cast<std::uint64_t>(bytes);
  req->done = true;
  req->completed_at = sim_.now();
}

void Endpoint::receive_shm(int src, MsgHeader hdr, std::vector<std::byte> payload) {
  PeerConn& c = conn(src);
  std::uint32_t& next = c.next_seq[hdr.ctx];
  if (hdr.seq != next) {
    c.reorder.emplace(std::make_pair(hdr.ctx, hdr.seq), Unexpected{hdr, std::move(payload)});
    return;
  }
  ++next;
  deliver_ordered(c, hdr, std::move(payload));
  for (auto it = c.reorder.find({hdr.ctx, next}); it != c.reorder.end();
       it = c.reorder.find({hdr.ctx, next})) {
    Unexpected u = std::move(it->second);
    c.reorder.erase(it);
    ++next;
    deliver_ordered(c, u.hdr, std::move(u.payload));
  }
}

}  // namespace ib12x::mvx
