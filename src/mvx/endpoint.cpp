#include "mvx/endpoint.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "mvx/coll/engine.hpp"
#include "mvx/conn_manager.hpp"
#include "mvx/fast_path_channel.hpp"
#include "mvx/matcher.hpp"
#include "mvx/net_channel.hpp"
#include "mvx/rendezvous.hpp"
#include "mvx/shm_channel.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {

Endpoint::Endpoint(sim::Simulator& sim, int rank, int node, std::vector<ib::Hca*> node_hcas,
                   const Config& cfg, TelemetryRegistry& tel)
    : sim_(sim), rank_(rank), node_(node), cfg_(cfg), tel_(tel) {
  matcher_ = std::make_unique<Matcher>(tel_);
  conn_ = std::make_unique<ConnManager>(*this);
  conn_->set_flush_fn([this](int peer) { flush_queued(peer); });
  net_ = std::make_unique<NetChannel>(*this, std::move(node_hcas));
  shm_ = std::make_unique<ShmChannel>(*this);
  fast_path_ = std::make_unique<FastPathChannel>(*this, *net_);
  rndv_ = std::make_unique<Rendezvous>(*this, *net_);
  coll_engine_ = std::make_unique<coll::CollEngine>(*this);
}

Endpoint::~Endpoint() = default;

void Endpoint::connect_net(Endpoint& a, Endpoint& b) {
  if (a.node_ == b.node_) throw std::logic_error("connect_net: same node — use connect_shm");
  NetChannel::establish(*a.net_, *b.net_);
  FastPathChannel::connect(*a.fast_path_, *b.fast_path_);
}

void Endpoint::connect_shm(Endpoint& a, Endpoint& b) {
  if (a.node_ != b.node_) throw std::logic_error("connect_shm: different nodes");
  ShmChannel::connect(*a.shm_, *b.shm_);
}

void Endpoint::schedule_cpu(sim::Time cost, std::function<void()> fn) {
  auto r = cpu_.reserve(sim_.now(), sim_.now(), cost);
  sim_.at(r.finish, std::move(fn));
}

sim::Time Endpoint::memcpy_time(std::int64_t bytes) const {
  return sim::transfer_time(bytes, cfg_.memcpy_gbps);
}

// --------------------------------------------------------------- public API

Request Endpoint::start_send(CommKind kind, const void* buf, std::int64_t bytes, int dst,
                             int tag, int ctx, int lane) {
  if (bytes < 0) throw std::invalid_argument("start_send: negative size");
  if (dst == rank_) throw std::invalid_argument("start_send: self-sends go through sendrecv_self");
  Request req = make_request();
  req->is_send = true;
  req->send_buf = buf;
  req->bytes = bytes;
  req->peer = dst;
  req->tag = tag;
  req->ctx = ctx;
  req->kind = static_cast<std::uint8_t>(kind);
  req->lane = lane;

  if (cfg_.lazy_connect && (!conn_->ready(dst) || conn_->has_queued(dst))) {
    // First contact (or a flush still in progress, which queued sends must
    // not overtake): start the handshake and park the send.  initiate() is
    // idempotent, so re-queueing behind an in-flight flush costs nothing.
    conn_->initiate(dst);
    conn_->enqueue(dst, QueuedSend{kind, buf, bytes, tag, ctx, req});
    return req;
  }

  // Route to the highest-priority channel that accepts the message; the net
  // channel splits at the rendezvous threshold between the eager protocol
  // and the RTS/CTS/FIN state machine.
  if (shm_->accepts(dst, bytes)) {
    shm_->send(dst, kind, buf, bytes, tag, ctx, req);
  } else if (fast_path_->accepts(dst, bytes)) {
    fast_path_->send(dst, kind, buf, bytes, tag, ctx, req);
  } else if (net_->accepts(dst, bytes)) {
    if (bytes < cfg_.rndv_threshold) {
      net_->send(dst, kind, buf, bytes, tag, ctx, req);
    } else {
      rndv_->send_rts(dst, kind, buf, bytes, tag, ctx, req);
    }
  } else {
    throw std::logic_error("Endpoint " + std::to_string(rank_) + ": no connection to rank " +
                           std::to_string(dst));
  }
  return req;
}

Request Endpoint::start_recv(void* buf, std::int64_t capacity, int src, int tag, int ctx) {
  if (capacity < 0) throw std::invalid_argument("start_recv: negative capacity");
  Request req = make_request();
  req->recv_buf = buf;
  req->bytes = capacity;
  req->peer = src;
  req->tag = tag;
  req->ctx = ctx;

  if (cfg_.lazy_connect && src >= 0 && src != rank_) {
    // A directed receive names its sender: start that handshake now so the
    // rails exist by the time the (possibly simultaneous) send needs them.
    // Wildcard receives cannot pre-connect anybody.
    conn_->initiate(src);
  }

  // Unexpected-queue scan first (arrival order).
  if (auto msg = matcher_->claim_unexpected(src, tag, ctx)) {
    const MsgHeader& hdr = msg->hdr;
    if (hdr.type == MsgType::Eager) {
      if (static_cast<std::int64_t>(hdr.size) > capacity) {
        throw std::runtime_error("start_recv: message truncation (unexpected eager)");
      }
      process().compute(cfg_.match_cpu + memcpy_time(static_cast<std::int64_t>(hdr.size)));
      if (hdr.size > 0) std::memcpy(buf, msg->payload.data(), hdr.size);
      req->status = {hdr.src_rank, hdr.tag, static_cast<std::int64_t>(hdr.size)};
      req->done = true;
      req->completed_at = sim_.now();
    } else {  // Rts
      if (static_cast<std::int64_t>(hdr.size) > capacity) {
        throw std::runtime_error("start_recv: message truncation (unexpected rendezvous)");
      }
      process().compute(cfg_.match_cpu);
      rndv_->accept(hdr, req);
    }
    return req;
  }

  matcher_->post(req, src, tag, ctx);
  return req;
}

void Endpoint::wait(const Request& r) {
  process().wait_until(progress_, [&] { return r->done; });
}

bool Endpoint::iprobe(int src, int tag, int ctx, Status* st) {
  return matcher_->iprobe(src, tag, ctx, st);
}

void Endpoint::probe(int src, int tag, int ctx, Status* st) {
  process().wait_until(progress_, [&] { return iprobe(src, tag, ctx, st); });
}

// --------------------------------------------------- inbound glue (events)

void Endpoint::ingress(int peer, const MsgHeader& hdr, std::vector<std::byte> payload) {
  for (Matcher::Inbound& m : matcher_->sequence(peer, hdr, std::move(payload))) {
    Request req = matcher_->match_posted(m.hdr);
    if (req == nullptr) {
      matcher_->store_unexpected(std::move(m));
      progress_.notify_all();  // wake blocking probes
      continue;
    }
    if (m.hdr.type == MsgType::Eager) {
      if (static_cast<std::int64_t>(m.hdr.size) > req->bytes) {
        throw std::runtime_error("recv: message truncation (eager)");
      }
      complete_recv(req, m.hdr, m.payload.data(),
                    cfg_.match_cpu + memcpy_time(static_cast<std::int64_t>(m.hdr.size)));
    } else {  // Rts
      if (static_cast<std::int64_t>(m.hdr.size) > req->bytes) {
        throw std::runtime_error("recv: message truncation (rendezvous)");
      }
      const MsgHeader rts = m.hdr;
      schedule_cpu(cfg_.match_cpu, [this, rts, req] { rndv_->accept(rts, req); });
    }
  }
}

void Endpoint::on_ctl(const MsgHeader& hdr, const CtsRkeys& rkeys) {
  if (hdr.type == MsgType::Cts) {
    // CTS handling consumes host CPU before the stripes are posted.
    schedule_cpu(cfg_.ctl_cpu, [this, hdr, rkeys] { rndv_->on_cts(hdr, rkeys); });
  } else {  // Fin
    rndv_->on_fin(hdr);
  }
}

void Endpoint::on_rndv_write_done(int peer, std::uint64_t req_id) {
  rndv_->on_write_done(peer, req_id);
}

void Endpoint::on_rndv_write_failed(int peer, const RndvStripe& st) {
  rndv_->on_write_failed(peer, st);
}

void Endpoint::flush_queued(int peer) {
  while (conn_->has_queued(peer)) {
    QueuedSend& qs = conn_->front(peer);
    bool sent;
    if (shm_->accepts(peer, qs.bytes)) {
      shm_->send_evt(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
      sent = true;
    } else if (fast_path_->accepts(peer, qs.bytes)) {
      fast_path_->send_evt(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
      sent = true;
    } else if (qs.bytes < cfg_.rndv_threshold) {
      sent = net_->try_send(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
    } else {
      sent = rndv_->try_send_rts(peer, qs.kind, qs.buf, qs.bytes, qs.tag, qs.ctx, qs.req);
    }
    if (!sent) return;  // resources dry — the freeing CQE re-flushes
    conn_->pop_front(peer);
  }
}

void Endpoint::on_eager_resources_freed(int /*peer*/) {
  if (!cfg_.lazy_connect) return;
  // The bounce pool and (in SRQ mode) the eager slot arena are shared across
  // peers, so the freed resource can unblock any queued peer — not just the
  // one whose CQE fired.
  for (int p : conn_->queued_peers()) {
    if (conn_->ready(p)) flush_queued(p);
  }
}

void Endpoint::complete_request(const Request& req) {
  req->done = true;
  req->completed_at = sim_.now();
  progress_.notify_all();
}

void Endpoint::complete_recv(const Request& req, const MsgHeader& hdr, const std::byte* payload,
                             sim::Time extra_delay) {
  if (hdr.size > 0) std::memcpy(req->recv_buf, payload, hdr.size);
  req->status = {hdr.src_rank, hdr.tag, static_cast<std::int64_t>(hdr.size)};
  // The copy out of the bounce buffer runs on this rank's CPU.
  schedule_cpu(extra_delay, [this, req] { complete_request(req); });
}

}  // namespace ib12x::mvx
