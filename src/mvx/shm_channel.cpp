#include "mvx/shm_channel.hpp"

#include <utility>

#include "mvx/matcher.hpp"

namespace ib12x::mvx {

ShmChannel::ShmChannel(ChannelHost& host)
    : Channel(host),
      sent_(host.telemetry().counter("shm.sent")),
      bytes_sent_(host.telemetry().counter("shm.bytes_sent")) {}

void ShmChannel::connect(ShmChannel& a, ShmChannel& b) {
  Peer& pa = a.peers_[b.host_.rank()];
  pa.remote = &b;
  pa.pipe = sim::BandwidthServer("shm", a.host_.config().shm_gbps);
  Peer& pb = b.peers_[a.host_.rank()];
  pb.remote = &a;
  pb.pipe = sim::BandwidthServer("shm", b.host_.config().shm_gbps);
}

bool ShmChannel::accepts(int peer, std::int64_t /*bytes*/) const {
  return peers_.count(peer) != 0;
}

void ShmChannel::send(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                      int ctx, const Request& req) {
  Peer& c = peers_.at(peer);
  const Config& cfg = host_.config();
  sim::Simulator& sim = host_.simulator();

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.vci = static_cast<std::uint8_t>(req->vci);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  hdr.seq = host_.matcher().next_send_seq(peer, ctx, req->vci);
  hdr.size = static_cast<std::uint64_t>(bytes);

  // Copy into the (modelled) shared segment; the sender's CPU does this.
  std::vector<std::byte> payload;
  if (bytes > 0) {
    payload.assign(static_cast<const std::byte*>(buf),
                   static_cast<const std::byte*>(buf) + bytes);
  }
  host_.process().compute(cfg.post_cpu + host_.memcpy_time(bytes));

  auto res = c.pipe.reserve_bytes(sim.now(), sim.now(),
                                  static_cast<std::int64_t>(kHeaderBytes) + bytes);
  const sim::Time deliver_at = res.finish + cfg.shm_latency;
  // Header + payload exceed the kernel's in-place event storage; box them in
  // one heap block and let the event own it.
  struct Delivery {
    ShmChannel* remote;
    int src;
    MsgHeader hdr;
    std::vector<std::byte> payload;
  };
  auto d = std::make_unique<Delivery>(
      Delivery{c.remote, host_.rank(), hdr, std::move(payload)});
  sim.at(deliver_at, [d = std::move(d)]() mutable {
    d->remote->deliver(d->src, d->hdr, std::move(d->payload));
  });

  sent_.inc();
  bytes_sent_.add(static_cast<std::uint64_t>(bytes));
  req->done = true;
  req->completed_at = sim.now();
}

void ShmChannel::send_evt(int peer, CommKind kind, const void* buf, std::int64_t bytes, int tag,
                          int ctx, const Request& req) {
  const Config& cfg = host_.config();

  MsgHeader hdr;
  hdr.type = MsgType::Eager;
  hdr.kind = static_cast<std::uint8_t>(kind);
  hdr.vci = static_cast<std::uint8_t>(req->vci);
  hdr.src_rank = host_.rank();
  hdr.tag = tag;
  hdr.ctx = ctx;
  // Claimed at dispatch so a flushed queue keeps MPI ordering (see
  // NetChannel::try_send).
  hdr.seq = host_.matcher().next_send_seq(peer, ctx, req->vci);
  hdr.size = static_cast<std::uint64_t>(bytes);

  // shared_ptr, not a moved vector: schedule_cpu takes a copyable callable.
  auto payload = std::make_shared<std::vector<std::byte>>();
  if (bytes > 0) {
    payload->assign(static_cast<const std::byte*>(buf),
                    static_cast<const std::byte*>(buf) + bytes);
  }

  host_.schedule_cpu_vci(
      req->vci, cfg.post_cpu + host_.memcpy_time(bytes), [this, peer, hdr, payload, bytes, req] {
        Peer& c = peers_.at(peer);
        sim::Simulator& sim = host_.simulator();
        auto res = c.pipe.reserve_bytes(sim.now(), sim.now(),
                                        static_cast<std::int64_t>(kHeaderBytes) + bytes);
        const sim::Time deliver_at = res.finish + host_.config().shm_latency;
        // Header + shared payload exceed the kernel's in-place event storage;
        // box them so the event captures one pointer (see send()).
        struct Delivery {
          ShmChannel* remote;
          int src;
          MsgHeader hdr;
          std::shared_ptr<std::vector<std::byte>> payload;
        };
        auto d = std::make_unique<Delivery>(Delivery{c.remote, host_.rank(), hdr, payload});
        sim.at(deliver_at, [d = std::move(d)]() mutable {
          d->remote->deliver(d->src, d->hdr, std::move(*d->payload));
        });
        sent_.inc();
        bytes_sent_.add(static_cast<std::uint64_t>(bytes));
        host_.complete_request(req);
      });
}

void ShmChannel::deliver(int src, MsgHeader hdr, std::vector<std::byte> payload) {
  host_.ingress(src, hdr, std::move(payload));
}

}  // namespace ib12x::mvx
