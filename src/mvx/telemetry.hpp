// Process-wide telemetry registry: named counters and sampled gauges that
// every layer of the stack (channels, matcher, rendezvous, the ib HCA model)
// registers at construction time, replacing per-module ad-hoc stat structs.
//
// Counters are cheap monotonic handles owned by the registry; several
// modules may register the same name (one per channel instance, one per
// rank) and the registry aggregates them by name at snapshot time.  Gauges
// are sampled lazily when a snapshot is taken, so registering one costs
// nothing on the hot path.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ib12x::mvx {

class TelemetryRegistry;

/// A monotonic counter handle.  inc/add are the only hot-path operations the
/// telemetry layer performs; everything else happens at dump time.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void add(std::uint64_t n) { value_ += n; }
  /// High-water-mark update (for depth-style metrics reported as counters).
  void track_max(std::uint64_t v) {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class TelemetryRegistry;
  Counter() = default;
  std::uint64_t value_ = 0;
};

class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// Registers a new counter under `name`.  Each call returns a distinct
  /// handle; same-name handles (e.g. one per channel) sum on snapshot.
  Counter& counter(const std::string& name);

  /// Registers a sampled gauge: `sample` is invoked at snapshot time.
  /// Same-name gauges also aggregate by summing.
  void gauge(const std::string& name, std::function<double()> sample);

  struct Sample {
    std::string name;
    double value = 0;
  };

  /// Aggregated view of every counter and gauge, sorted by name (so dumps
  /// are deterministic regardless of registration order).
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Sum of all counters registered under `name` (0 if none).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Human-readable per-layer breakdown table.
  void dump(std::FILE* out, const char* title = "telemetry") const;

  /// Zeroes every registered counter for the scope's lifetime and restores
  /// the saved values (adding back anything accumulated inside the scope) on
  /// exit, so per-case assertions in tests don't depend on what earlier
  /// cases did while the registry's global totals stay monotonic.  Counters
  /// registered *inside* the scope are left untouched on exit.
  class ScopedReset {
   public:
    explicit ScopedReset(TelemetryRegistry& reg);
    ~ScopedReset();

    ScopedReset(const ScopedReset&) = delete;
    ScopedReset& operator=(const ScopedReset&) = delete;

   private:
    std::vector<std::pair<Counter*, std::uint64_t>> saved_;
  };

 private:
  struct NamedCounter {
    std::string name;
    std::unique_ptr<Counter> counter;
  };
  struct NamedGauge {
    std::string name;
    std::function<double()> sample;
  };

  std::vector<NamedCounter> counters_;
  std::vector<NamedGauge> gauges_;
};

}  // namespace ib12x::mvx
