#include "mvx/policy.hpp"

namespace ib12x::mvx {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::Binding: return "binding";
    case Policy::RoundRobin: return "round-robin";
    case Policy::EvenStriping: return "even-striping";
    case Policy::EPC: return "EPC";
    case Policy::WeightedStriping: return "weighted-striping";
    case Policy::Adaptive: return "adaptive";
  }
  return "?";
}

const char* to_string(CommKind k) {
  switch (k) {
    case CommKind::Blocking: return "blocking";
    case CommKind::Nonblocking: return "non-blocking";
    case CommKind::Collective: return "collective";
  }
  return "?";
}

namespace {

Schedule round_robin(int nrails, RailCursor& cursor) {
  Schedule s;
  s.rail = cursor.next;
  cursor.next = (cursor.next + 1) % nrails;
  return s;
}

Schedule striping(std::int64_t bytes, int nrails, std::int64_t threshold) {
  Schedule s;
  if (bytes >= threshold && nrails > 1) {
    s.stripe = true;
  } else {
    s.rail = 0;  // small messages ride a single QP (paper fig. 3)
  }
  return s;
}

}  // namespace

Schedule choose_schedule(Policy policy, CommKind kind, std::int64_t bytes,
                         int nrails, std::int64_t stripe_threshold, RailCursor& cursor) {
  if (nrails <= 1) return Schedule{};
  switch (policy) {
    case Policy::Binding:
      return Schedule{};  // rail 0
    case Policy::RoundRobin:
      return round_robin(nrails, cursor);
    case Policy::EvenStriping:
    case Policy::WeightedStriping:  // weights applied at stripe-split time
      return striping(bytes, nrails, stripe_threshold);
    case Policy::Adaptive:
      // Resolved by the rail manager, which knows per-rail load; default to
      // round robin here so a bare choose_schedule call stays sensible.
      return round_robin(nrails, cursor);
    case Policy::EPC:
      switch (kind) {
        case CommKind::Nonblocking:
          return round_robin(nrails, cursor);
        case CommKind::Blocking:
          return striping(bytes, nrails, stripe_threshold);
        case CommKind::Collective:
          // Stripe at/above the threshold; below it the collective's many
          // small steps still benefit from engine parallelism via RR.
          if (bytes >= stripe_threshold) return striping(bytes, nrails, stripe_threshold);
          return round_robin(nrails, cursor);
      }
  }
  return Schedule{};
}

int least_loaded_rail(const std::vector<std::int64_t>& outstanding) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(outstanding.size()); ++i) {
    if (outstanding[static_cast<std::size_t>(i)] < outstanding[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

}  // namespace ib12x::mvx
