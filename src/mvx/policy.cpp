#include "mvx/policy.hpp"

#include <algorithm>
#include <cstddef>

namespace ib12x::mvx {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::Binding: return "binding";
    case Policy::RoundRobin: return "round-robin";
    case Policy::EvenStriping: return "even-striping";
    case Policy::EPC: return "EPC";
    case Policy::WeightedStriping: return "weighted-striping";
    case Policy::Adaptive: return "adaptive";
  }
  return "?";
}

const char* to_string(CommKind k) {
  switch (k) {
    case CommKind::Blocking: return "blocking";
    case CommKind::Nonblocking: return "non-blocking";
    case CommKind::Collective: return "collective";
  }
  return "?";
}

namespace {

Schedule round_robin(int nrails, RailCursor& cursor) {
  Schedule s;
  s.rail = cursor.next;
  cursor.next = (cursor.next + 1) % nrails;
  return s;
}

Schedule striping(std::int64_t bytes, int nrails, std::int64_t threshold) {
  Schedule s;
  if (bytes >= threshold && nrails > 1) {
    s.stripe = true;
  } else {
    s.rail = 0;  // small messages ride a single QP (paper fig. 3)
  }
  return s;
}

}  // namespace

Schedule choose_schedule(Policy policy, CommKind kind, std::int64_t bytes,
                         int nrails, std::int64_t stripe_threshold, RailCursor& cursor) {
  if (nrails <= 1) return Schedule{};
  switch (policy) {
    case Policy::Binding:
      return Schedule{};  // rail 0
    case Policy::RoundRobin:
      return round_robin(nrails, cursor);
    case Policy::EvenStriping:
    case Policy::WeightedStriping:  // weights applied at stripe-split time
      return striping(bytes, nrails, stripe_threshold);
    case Policy::Adaptive:
      // Resolved by the rail manager, which knows per-rail load; default to
      // round robin here so a bare choose_schedule call stays sensible.
      return round_robin(nrails, cursor);
    case Policy::EPC:
      switch (kind) {
        case CommKind::Nonblocking:
          return round_robin(nrails, cursor);
        case CommKind::Blocking:
          return striping(bytes, nrails, stripe_threshold);
        case CommKind::Collective:
          // Stripe at/above the threshold; below it the collective's many
          // small steps still benefit from engine parallelism via RR.
          if (bytes >= stripe_threshold) return striping(bytes, nrails, stripe_threshold);
          return round_robin(nrails, cursor);
      }
  }
  return Schedule{};
}

int least_loaded_rail(const std::vector<std::int64_t>& outstanding) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(outstanding.size()); ++i) {
    if (outstanding[static_cast<std::size_t>(i)] < outstanding[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

int least_loaded_rail(const std::vector<std::int64_t>& outstanding,
                      const std::vector<std::uint8_t>& up) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(outstanding.size()); ++i) {
    if (i < static_cast<int>(up.size()) && up[static_cast<std::size_t>(i)] == 0) continue;
    if (best < 0 ||
        outstanding[static_cast<std::size_t>(i)] < outstanding[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best >= 0 ? best : least_loaded_rail(outstanding);
}

std::vector<Stripe> plan_stripes(std::int64_t bytes, std::int64_t base_off,
                                 const std::vector<int>& rails, std::int64_t min_stripe,
                                 const std::vector<double>& weights, RailCursor& cursor) {
  std::vector<Stripe> stripes =
      plan_stripes(bytes, base_off, static_cast<int>(rails.size()), min_stripe, weights, cursor);
  for (Stripe& s : stripes) s.rail = rails[static_cast<std::size_t>(s.rail)];
  return stripes;
}

std::vector<Stripe> plan_stripes(std::int64_t bytes, std::int64_t base_off, int nrails,
                                 std::int64_t min_stripe, const std::vector<double>& weights,
                                 RailCursor& cursor) {
  std::vector<Stripe> stripes;
  if (nrails <= 0 || bytes <= 0) return stripes;

  const int n = static_cast<int>(
      std::min<std::int64_t>(nrails, std::max<std::int64_t>(1, bytes / min_stripe)));
  std::vector<double> w(static_cast<std::size_t>(n), 1.0);
  if (!weights.empty()) {
    for (int i = 0; i < n; ++i) {
      w[static_cast<std::size_t>(i)] = weights[static_cast<std::size_t>(i) % weights.size()];
    }
  }
  double wsum = 0;
  for (double x : w) wsum += x;

  // When the message cuts into fewer stripes than candidate rails, rotate
  // the base position through the shared cursor so successive transfers
  // spread over all rails instead of always hammering positions 0..n-1.
  int base = 0;
  if (n < nrails) {
    base = cursor.next % nrails;
    cursor.next = (base + n) % nrails;
  }

  std::int64_t off = 0;
  for (int i = 0; i < n; ++i) {
    const std::int64_t remaining = bytes - off;
    const int left = n - i;
    std::int64_t len;
    if (i + 1 == n) {
      len = remaining;
    } else {
      len = static_cast<std::int64_t>(static_cast<double>(bytes) *
                                      w[static_cast<std::size_t>(i)] / wsum);
      // Weight rounding must not produce sub-min_stripe (or zero/negative)
      // cuts: clamp up to min_stripe and down so every remaining stripe can
      // still get its minimum.  bytes >= n * min_stripe by the choice of n,
      // so both bounds are always satisfiable.
      len = std::max(len, min_stripe);
      len = std::min(len, remaining - min_stripe * (left - 1));
    }
    stripes.push_back({(base + i) % nrails, base_off + off, len});
    off += len;
  }
  return stripes;
}

}  // namespace ib12x::mvx
