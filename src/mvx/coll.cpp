// Collective entry points.
//
// Every collective — blocking or non-blocking — is compiled into a
// CollSchedule by the registered builder that coll::select picks
// (mvx/coll/select.cpp) and handed to the endpoint's CollEngine.  The
// blocking variants are build-then-wait wrappers; the i-variants return the
// engine's Request, which completes when the whole schedule has executed.
// All internal transfers still carry the Collective communication-marker
// kind — the distinction the EPC policy keys on.
//
// The wrappers keep the exact call-time semantics of the old inline
// algorithms: argument validation, p == 1 fast paths, and the synchronous
// seed copies (recvbuf <- sendbuf for allreduce/scan, the self block for
// allgather/alltoall/alltoallv/allgatherv) all happen before the schedule
// is built.
#include <cstring>
#include <stdexcept>
#include <vector>

#include "mvx/coll/builders.hpp"
#include "mvx/coll/engine.hpp"
#include "mvx/comm.hpp"

namespace ib12x::mvx {

namespace {

Request done_request() {
  Request r = make_request();
  r->done = true;
  return r;
}

}  // namespace

coll::BuildCtx Communicator::base_ctx() const {
  coll::BuildCtx c;
  c.p = size();
  c.me = my_index_;
  c.group = &group_;
  c.ctx = ctx_base_ + 1;
  c.cfg = &ep_->config();
  c.nrails = ep_->config().rails();
  c.scratch = &ep_->coll_engine().scratch_pool();
  return c;
}

Request Communicator::launch_coll(coll::CollKind kind, coll::BuildCtx& c,
                                  std::int64_t total_bytes, std::size_t count) {
  // Wrap-boundary safety: the slot this collective will use is a pure
  // function of the per-comm sequence number, so every rank computes the
  // same tags without agreement traffic.  If the slot is still held by a
  // schedule launched 2^16 collectives ago, wait it out locally — tag
  // values never depend on release order, so ranks cannot disagree.
  if (tag_ring_->next_busy()) {
    ep_->process().wait_until(ep_->progress(), [&] { return !tag_ring_->next_busy(); });
  }
  c.tags = tag_ring_->reserve();

  const coll::AlgoEntry& algo =
      coll::select(kind, ep_->config().coll, c.p, total_bytes, count, c.nrails);
  coll::CollSchedule s = algo.build(c);
  std::shared_ptr<coll::TagRing> ring = tag_ring_;
  const int slot = c.tags.slot;
  s.on_complete = [ring, slot] { ring->release(slot); };
  return ep_->coll_engine().launch(std::move(s));
}

// ---- non-blocking collectives -------------------------------------------

Request Communicator::ibarrier() {
  if (size() == 1) return done_request();
  coll::BuildCtx c = base_ctx();
  return launch_coll(coll::CollKind::Barrier, c, 0, 0);
}

Request Communicator::ibcast(void* buf, std::size_t count, Datatype dt, int root) {
  if (size() == 1) return done_request();
  coll::BuildCtx c = base_ctx();
  c.recvbuf = buf;
  c.count = count;
  c.dt = dt;
  c.root = root;
  return launch_coll(coll::CollKind::Bcast, c, static_cast<std::int64_t>(count * dt.size), count);
}

Request Communicator::ireduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                              Op op, int root) {
  const std::size_t bytes = count * dt.size;
  if (size() == 1) {
    if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
    return done_request();
  }
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = count;
  c.dt = dt;
  c.redop = op;
  c.root = root;
  return launch_coll(coll::CollKind::Reduce, c, static_cast<std::int64_t>(bytes), count);
}

Request Communicator::iallreduce(const void* sendbuf, void* recvbuf, std::size_t count,
                                 Datatype dt, Op op) {
  const std::size_t bytes = count * dt.size;
  if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
  if (size() == 1) return done_request();
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;  // pre-seeded with this rank's contribution
  c.count = count;
  c.dt = dt;
  c.redop = op;
  return launch_coll(coll::CollKind::Allreduce, c, static_cast<std::int64_t>(bytes), count);
}

Request Communicator::iallgather(const void* sendbuf, void* recvbuf, std::size_t count,
                                 Datatype dt) {
  const std::size_t bytes = count * dt.size;
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_index_) * bytes, sendbuf, bytes);
  if (size() == 1) return done_request();
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = count;
  c.dt = dt;
  return launch_coll(coll::CollKind::Allgather, c, static_cast<std::int64_t>(bytes), count);
}

Request Communicator::ialltoall(const void* sendbuf, void* recvbuf, std::size_t count,
                                Datatype dt) {
  const std::size_t bytes = count * dt.size;
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_index_) * bytes,
              in + static_cast<std::size_t>(my_index_) * bytes, bytes);
  if (size() == 1) return done_request();
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = count;
  c.dt = dt;
  return launch_coll(coll::CollKind::Alltoall, c, static_cast<std::int64_t>(bytes), count);
}

// ---- blocking collectives (build schedule, then wait) -------------------

void Communicator::barrier() {
  Request r = ibarrier();
  ep_->wait(r);
}

void Communicator::bcast(void* buf, std::size_t count, Datatype dt, int root) {
  Request r = ibcast(buf, count, dt, root);
  ep_->wait(r);
}

void Communicator::reduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                          Op op, int root) {
  Request r = ireduce(sendbuf, recvbuf, count, dt, op, root);
  ep_->wait(r);
}

void Communicator::allreduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                             Op op) {
  Request r = iallreduce(sendbuf, recvbuf, count, dt, op);
  ep_->wait(r);
}

void Communicator::gather(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                          int root) {
  const std::size_t bytes = count * dt.size;
  if (size() == 1) {
    std::memcpy(recvbuf, sendbuf, bytes);
    return;
  }
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = count;
  c.dt = dt;
  c.root = root;
  Request r = launch_coll(coll::CollKind::Gather, c, static_cast<std::int64_t>(bytes), count);
  ep_->wait(r);
}

void Communicator::scatter(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                           int root) {
  const std::size_t bytes = count * dt.size;
  if (size() == 1) {
    std::memcpy(recvbuf, sendbuf, bytes);
    return;
  }
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = count;
  c.dt = dt;
  c.root = root;
  Request r = launch_coll(coll::CollKind::Scatter, c, static_cast<std::int64_t>(bytes), count);
  ep_->wait(r);
}

void Communicator::allgather(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt) {
  Request r = iallgather(sendbuf, recvbuf, count, dt);
  ep_->wait(r);
}

void Communicator::alltoall(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt) {
  Request r = ialltoall(sendbuf, recvbuf, count, dt);
  ep_->wait(r);
}

void Communicator::alltoallv(const void* sendbuf, const std::vector<std::int64_t>& scounts,
                             const std::vector<std::int64_t>& sdispls, void* recvbuf,
                             const std::vector<std::int64_t>& rcounts,
                             const std::vector<std::int64_t>& rdispls, Datatype dt) {
  const int p = size();
  if (static_cast<int>(scounts.size()) != p || static_cast<int>(rcounts.size()) != p) {
    throw std::invalid_argument("alltoallv: counts arrays must have comm-size entries");
  }
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  const std::size_t es = dt.size;
  std::memcpy(out + static_cast<std::size_t>(rdispls[static_cast<std::size_t>(my_index_)]) * es,
              in + static_cast<std::size_t>(sdispls[static_cast<std::size_t>(my_index_)]) * es,
              static_cast<std::size_t>(scounts[static_cast<std::size_t>(my_index_)]) * es);
  if (p == 1) return;
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.dt = dt;
  c.scounts = &scounts;
  c.sdispls = &sdispls;
  c.rcounts = &rcounts;
  c.rdispls = &rdispls;
  Request r = launch_coll(coll::CollKind::Alltoallv, c, 0, 0);
  ep_->wait(r);
}

void Communicator::reduce_scatter_block(const void* sendbuf, void* recvbuf, std::size_t count,
                                        Datatype dt, Op op) {
  const std::size_t block = count * dt.size;
  if (size() == 1) {
    std::memcpy(recvbuf, sendbuf, block);
    return;
  }
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = count;
  c.dt = dt;
  c.redop = op;
  Request r = launch_coll(coll::CollKind::ReduceScatterBlock, c, static_cast<std::int64_t>(block),
                          count);
  ep_->wait(r);
}

void Communicator::scan(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                        Op op) {
  const std::size_t bytes = count * dt.size;
  if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
  if (size() == 1) return;
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;  // pre-seeded with this rank's contribution
  c.count = count;
  c.dt = dt;
  c.redop = op;
  Request r = launch_coll(coll::CollKind::Scan, c, static_cast<std::int64_t>(bytes), count);
  ep_->wait(r);
}

void Communicator::allgatherv(const void* sendbuf, std::size_t sendcount, void* recvbuf,
                              const std::vector<std::int64_t>& counts,
                              const std::vector<std::int64_t>& displs, Datatype dt) {
  const int p = size();
  if (static_cast<int>(counts.size()) != p) {
    throw std::invalid_argument("allgatherv: counts must have comm-size entries");
  }
  if (static_cast<std::int64_t>(sendcount) != counts[static_cast<std::size_t>(my_index_)]) {
    throw std::invalid_argument("allgatherv: sendcount disagrees with counts[rank]");
  }
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(displs[static_cast<std::size_t>(my_index_)]) * dt.size,
              sendbuf, sendcount * dt.size);
  if (p == 1) return;
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = sendcount;
  c.dt = dt;
  c.rcounts = &counts;
  c.rdispls = &displs;
  Request r = launch_coll(coll::CollKind::Allgatherv, c, 0, 0);
  ep_->wait(r);
}

void Communicator::gatherv(const void* sendbuf, std::size_t sendcount, void* recvbuf,
                           const std::vector<std::int64_t>& counts,
                           const std::vector<std::int64_t>& displs, Datatype dt, int root) {
  const int p = size();
  if (my_index_ == root && static_cast<int>(counts.size()) != p) {
    throw std::invalid_argument("gatherv: counts must have comm-size entries");
  }
  if (p == 1) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(displs[0]) * dt.size, sendbuf,
                static_cast<std::size_t>(counts[0]) * dt.size);
    return;
  }
  coll::BuildCtx c = base_ctx();
  c.sendbuf = sendbuf;
  c.recvbuf = recvbuf;
  c.count = sendcount;
  c.dt = dt;
  c.root = root;
  c.rcounts = &counts;
  c.rdispls = &displs;
  Request r = launch_coll(coll::CollKind::Gatherv, c, 0, 0);
  ep_->wait(r);
}

}  // namespace ib12x::mvx
