// Collective algorithms, built from point-to-point exactly as the paper
// describes (§3.2.2): each algorithm step issues non-blocking sendrecv pairs
// and completes them before the next step.  All internal transfers carry the
// Collective communication-marker kind, which is what lets EPC treat them
// differently from user-level non-blocking traffic.
#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "mvx/comm.hpp"

namespace ib12x::mvx {

namespace {

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace

int Communicator::coll_tag() {
  // Collectives execute in the same order on every member, so a per-comm
  // sequence number gives matching tags without cross-talk between
  // overlapping collectives on different communicators (contexts differ).
  return 0x40000000 | (coll_seq_++ & 0x00ffffff);
}

void Communicator::coll_sendrecv(const void* sbuf, std::size_t sbytes, int dst, void* rbuf,
                                 std::size_t rbytes, int src, int tag) {
  const int ctx = ctx_base_ + 1;
  Request rr = irecv_ctx(rbuf, rbytes, src, tag, ctx);
  Request sr = isend_kind(CommKind::Collective, sbuf, sbytes, dst, tag, ctx);
  ep_->wait(sr);
  ep_->wait(rr);
}

void Communicator::barrier() {
  const int p = size();
  if (p == 1) return;
  const int tag = coll_tag();
  // Dissemination barrier: ceil(log2 p) rounds.
  for (int k = 1; k < p; k <<= 1) {
    const int to = (my_index_ + k) % p;
    const int from = (my_index_ - k + p) % p;
    std::byte dummy{};
    coll_sendrecv(&dummy, 0, to, &dummy, 0, from, tag + 0);
  }
}

void Communicator::bcast(void* buf, std::size_t count, Datatype dt, int root) {
  const int p = size();
  if (p == 1) return;
  const std::size_t bytes = count * dt.size;
  const int tag = coll_tag();
  const int ctx = ctx_base_ + 1;
  const int vrank = (my_index_ - root + p) % p;  // root becomes 0

  // Binomial tree: receive from parent, forward to children.
  if (vrank != 0) {
    int parent = 0;
    for (int mask = 1; mask < p; mask <<= 1) {
      if (vrank & mask) {
        parent = vrank ^ mask;
        break;
      }
    }
    Request r = irecv_ctx(buf, bytes, (parent + root) % p, tag, ctx);
    ep_->wait(r);
  }
  int low = 1;
  while (low < p && (vrank & low) == 0) low <<= 1;  // first set bit bounds children
  for (int mask = low >> 1; mask >= 1; mask >>= 1) {
    const int child = vrank | mask;
    if (child < p && child != vrank) {
      Request s = isend_kind(CommKind::Collective, buf, bytes, (child + root) % p, tag, ctx);
      ep_->wait(s);
    }
  }
}

void Communicator::reduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                          Op op, int root) {
  const int p = size();
  const std::size_t bytes = count * dt.size;
  if (p == 1) {
    if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
    return;
  }
  const int tag = coll_tag();
  const int ctx = ctx_base_ + 1;
  const int vrank = (my_index_ - root + p) % p;

  std::vector<std::byte> acc(bytes), tmp(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);

  // Binomial reduction towards vrank 0.
  for (int mask = 1; mask < p; mask <<= 1) {
    if (vrank & mask) {
      const int parent = ((vrank ^ mask) + root) % p;
      Request s = isend_kind(CommKind::Collective, acc.data(), bytes, parent, tag, ctx);
      ep_->wait(s);
      break;
    }
    const int child = vrank | mask;
    if (child < p) {
      Request r = irecv_ctx(tmp.data(), bytes, (child + root) % p, tag, ctx);
      ep_->wait(r);
      reduce_apply(op, dt, acc.data(), tmp.data(), count);
    }
  }
  if (vrank == 0) std::memcpy(recvbuf, acc.data(), bytes);
}

void Communicator::allreduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                             Op op) {
  const int p = size();
  const std::size_t bytes = count * dt.size;
  if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
  if (p == 1) return;

  using Algo = Config::AllreduceAlgo;
  Algo algo = ep_->config().allreduce_algo;
  if (algo == Algo::Auto) {
    // MVAPICH-era selection: latency-optimal recursive doubling for short
    // vectors, bandwidth-optimal reduce-scatter + allgather (Rabenseifner)
    // for long ones; the tree fallback covers non-power-of-two sizes.
    if (static_cast<std::int64_t>(bytes) >= ep_->config().rabenseifner_threshold &&
        count >= static_cast<std::size_t>(p)) {
      algo = Algo::Rabenseifner;
    } else if (is_pow2(p)) {
      algo = Algo::RecursiveDoubling;
    } else {
      algo = Algo::ReduceBcast;
    }
  }
  if (algo == Algo::RecursiveDoubling && !is_pow2(p)) algo = Algo::ReduceBcast;
  if (algo == Algo::Rabenseifner && count < static_cast<std::size_t>(p)) algo = Algo::ReduceBcast;

  switch (algo) {
    case Algo::RecursiveDoubling: {
      const int tag = coll_tag();
      std::vector<std::byte> tmp(bytes);
      for (int mask = 1; mask < p; mask <<= 1) {
        const int partner = my_index_ ^ mask;
        coll_sendrecv(recvbuf, bytes, partner, tmp.data(), bytes, partner, tag);
        reduce_apply(op, dt, recvbuf, tmp.data(), count);
      }
      return;
    }
    case Algo::Rabenseifner: {
      // Reduce-scatter over padded equal blocks, then allgatherv of the
      // unpadded pieces.  Moves 2·(p-1)/p of the vector instead of log p
      // full copies — the long-vector winner.
      const std::size_t per = (count + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
      std::vector<std::byte> padded(per * static_cast<std::size_t>(p) * dt.size, std::byte{});
      std::memcpy(padded.data(), recvbuf, bytes);
      std::vector<std::byte> mine(per * dt.size);
      reduce_scatter_block(padded.data(), mine.data(), per, dt, op);

      std::vector<std::int64_t> counts(static_cast<std::size_t>(p)), displs(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        const std::size_t lo = std::min(count, static_cast<std::size_t>(r) * per);
        const std::size_t hi = std::min(count, (static_cast<std::size_t>(r) + 1) * per);
        counts[static_cast<std::size_t>(r)] = static_cast<std::int64_t>(hi - lo);
        displs[static_cast<std::size_t>(r)] = static_cast<std::int64_t>(lo);
      }
      allgatherv(mine.data(), static_cast<std::size_t>(counts[static_cast<std::size_t>(my_index_)]),
                 recvbuf, counts, displs, dt);
      return;
    }
    case Algo::ReduceBcast:
    case Algo::Auto: {
      reduce(recvbuf, recvbuf, count, dt, op, 0);
      bcast(recvbuf, count, dt, 0);
      return;
    }
  }
}

void Communicator::gather(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                          int root) {
  const int p = size();
  const std::size_t bytes = count * dt.size;
  const int tag = coll_tag();
  const int ctx = ctx_base_ + 1;
  if (my_index_ == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == my_index_) {
        std::memcpy(out + static_cast<std::size_t>(r) * bytes, sendbuf, bytes);
      } else {
        reqs.push_back(irecv_ctx(out + static_cast<std::size_t>(r) * bytes, bytes, r, tag, ctx));
      }
    }
    for (auto& r : reqs) ep_->wait(r);
  } else {
    Request s = isend_kind(CommKind::Collective, sendbuf, bytes, root, tag, ctx);
    ep_->wait(s);
  }
}

void Communicator::scatter(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                           int root) {
  const int p = size();
  const std::size_t bytes = count * dt.size;
  const int tag = coll_tag();
  const int ctx = ctx_base_ + 1;
  if (my_index_ == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == my_index_) {
        std::memcpy(recvbuf, in + static_cast<std::size_t>(r) * bytes, bytes);
      } else {
        reqs.push_back(isend_kind(CommKind::Collective, in + static_cast<std::size_t>(r) * bytes,
                                  bytes, r, tag, ctx));
      }
    }
    for (auto& r : reqs) ep_->wait(r);
  } else {
    Request r = irecv_ctx(recvbuf, bytes, root, tag, ctx);
    ep_->wait(r);
  }
}

void Communicator::allgather(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt) {
  const int p = size();
  const std::size_t bytes = count * dt.size;
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_index_) * bytes, sendbuf, bytes);
  if (p == 1) return;
  const int tag = coll_tag();

  // Ring: in step s we forward the block that originated s hops upstream.
  const int right = (my_index_ + 1) % p;
  const int left = (my_index_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (my_index_ - s + p) % p;
    const int recv_block = (my_index_ - s - 1 + p) % p;
    coll_sendrecv(out + static_cast<std::size_t>(send_block) * bytes, bytes, right,
                  out + static_cast<std::size_t>(recv_block) * bytes, bytes, left, tag);
  }
}

void Communicator::alltoall(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt) {
  const int p = size();
  const std::size_t bytes = count * dt.size;
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(my_index_) * bytes,
              in + static_cast<std::size_t>(my_index_) * bytes, bytes);
  if (p == 1) return;

  using Algo = Config::AlltoallAlgo;
  Algo algo = ep_->config().alltoall_algo;
  if (algo == Algo::Auto) {
    // Bruck trades p-1 small messages for ceil(log2 p) larger ones plus
    // local copies — the short-block winner once p > 2.
    algo = (static_cast<std::int64_t>(bytes) < ep_->config().bruck_threshold && p > 2)
               ? Algo::Bruck
               : Algo::Pairwise;
  }

  if (algo == Algo::Bruck) {
    // Bruck's algorithm.  Phase 1: local rotation so slot i holds the block
    // for rank (me + i) mod p.
    std::vector<std::byte> work(bytes * static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      std::memcpy(work.data() + static_cast<std::size_t>(i) * bytes,
                  in + static_cast<std::size_t>((my_index_ + i) % p) * bytes, bytes);
    }
    // Phase 2: for each bit k, ship every block whose slot index has bit k.
    const int tag = coll_tag();
    std::vector<std::byte> sendpack(bytes * static_cast<std::size_t>(p));
    std::vector<std::byte> recvpack(bytes * static_cast<std::size_t>(p));
    for (int k = 1; k < p; k <<= 1) {
      std::vector<int> idx;
      for (int i = 1; i < p; ++i) {
        if (i & k) idx.push_back(i);
      }
      for (std::size_t j = 0; j < idx.size(); ++j) {
        std::memcpy(sendpack.data() + j * bytes,
                    work.data() + static_cast<std::size_t>(idx[j]) * bytes, bytes);
      }
      compute(sim::transfer_time(static_cast<std::int64_t>(idx.size() * bytes),
                                 ep_->config().memcpy_gbps));
      const int to = (my_index_ + k) % p;
      const int from = (my_index_ - k + p) % p;
      coll_sendrecv(sendpack.data(), idx.size() * bytes, to, recvpack.data(), idx.size() * bytes,
                    from, tag);
      for (std::size_t j = 0; j < idx.size(); ++j) {
        std::memcpy(work.data() + static_cast<std::size_t>(idx[j]) * bytes,
                    recvpack.data() + j * bytes, bytes);
      }
      compute(sim::transfer_time(static_cast<std::int64_t>(idx.size() * bytes),
                                 ep_->config().memcpy_gbps));
    }
    // Phase 3: slot i now holds the block FROM rank (me - i) mod p.
    for (int i = 0; i < p; ++i) {
      std::memcpy(out + static_cast<std::size_t>((my_index_ - i + p) % p) * bytes,
                  work.data() + static_cast<std::size_t>(i) * bytes, bytes);
    }
    return;
  }

  // Pairwise exchange (MPI_Sendrecv per step, as the paper's collectives do).
  const int tag = coll_tag();
  for (int s = 1; s < p; ++s) {
    int to, from;
    if (is_pow2(p)) {
      to = from = my_index_ ^ s;
    } else {
      to = (my_index_ + s) % p;
      from = (my_index_ - s + p) % p;
    }
    coll_sendrecv(in + static_cast<std::size_t>(to) * bytes, bytes, to,
                  out + static_cast<std::size_t>(from) * bytes, bytes, from, tag);
  }
}

void Communicator::alltoallv(const void* sendbuf, const std::vector<std::int64_t>& scounts,
                             const std::vector<std::int64_t>& sdispls, void* recvbuf,
                             const std::vector<std::int64_t>& rcounts,
                             const std::vector<std::int64_t>& rdispls, Datatype dt) {
  const int p = size();
  if (static_cast<int>(scounts.size()) != p || static_cast<int>(rcounts.size()) != p) {
    throw std::invalid_argument("alltoallv: counts arrays must have comm-size entries");
  }
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  const std::size_t es = dt.size;

  std::memcpy(out + static_cast<std::size_t>(rdispls[static_cast<std::size_t>(my_index_)]) * es,
              in + static_cast<std::size_t>(sdispls[static_cast<std::size_t>(my_index_)]) * es,
              static_cast<std::size_t>(scounts[static_cast<std::size_t>(my_index_)]) * es);
  if (p == 1) return;
  const int tag = coll_tag();

  for (int s = 1; s < p; ++s) {
    int to, from;
    if (is_pow2(p)) {
      to = from = my_index_ ^ s;
    } else {
      to = (my_index_ + s) % p;
      from = (my_index_ - s + p) % p;
    }
    coll_sendrecv(in + static_cast<std::size_t>(sdispls[static_cast<std::size_t>(to)]) * es,
                  static_cast<std::size_t>(scounts[static_cast<std::size_t>(to)]) * es, to,
                  out + static_cast<std::size_t>(rdispls[static_cast<std::size_t>(from)]) * es,
                  static_cast<std::size_t>(rcounts[static_cast<std::size_t>(from)]) * es, from,
                  tag);
  }
}

void Communicator::reduce_scatter_block(const void* sendbuf, void* recvbuf, std::size_t count,
                                        Datatype dt, Op op) {
  const int p = size();
  const std::size_t block = count * dt.size;
  if (p == 1) {
    std::memcpy(recvbuf, sendbuf, block);
    return;
  }
  // Pairwise-exchange reduce-scatter: accumulate my block from everyone.
  const int tag = coll_tag();
  std::vector<std::byte> acc(block), tmp(block);
  std::memcpy(acc.data(), static_cast<const std::byte*>(sendbuf) +
                              static_cast<std::size_t>(my_index_) * block, block);
  for (int s = 1; s < p; ++s) {
    const int to = (my_index_ + s) % p;
    const int from = (my_index_ - s + p) % p;
    coll_sendrecv(static_cast<const std::byte*>(sendbuf) + static_cast<std::size_t>(to) * block,
                  block, to, tmp.data(), block, from, tag);
    reduce_apply(op, dt, acc.data(), tmp.data(), count);
  }
  std::memcpy(recvbuf, acc.data(), block);
}

void Communicator::scan(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
                        Op op) {
  const std::size_t bytes = count * dt.size;
  if (recvbuf != sendbuf) std::memcpy(recvbuf, sendbuf, bytes);
  const int p = size();
  if (p == 1) return;
  // Hillis–Steele inclusive scan: log2 p rounds; rank r folds in the value
  // from r - 2^k when it exists.
  const int tag = coll_tag();
  const int ctx = ctx_base_ + 1;
  std::vector<std::byte> carry(bytes), tmp(bytes);
  std::memcpy(carry.data(), recvbuf, bytes);
  for (int k = 1; k < p; k <<= 1) {
    Request rr, sr;
    const bool has_left = my_index_ - k >= 0;
    const bool has_right = my_index_ + k < p;
    // Receives are posted before sends everywhere, so the rendezvous chain
    // cannot deadlock; the send must complete before `carry` is mutated.
    if (has_left) rr = irecv_ctx(tmp.data(), bytes, my_index_ - k, tag, ctx);
    if (has_right) {
      sr = isend_kind(CommKind::Collective, carry.data(), bytes, my_index_ + k, tag, ctx);
      ep_->wait(sr);
    }
    if (has_left) {
      ep_->wait(rr);
      // Prefix order matters for non-commutative ops: left value first.
      std::vector<std::byte> combined = tmp;
      reduce_apply(op, dt, combined.data(), carry.data(), count);
      carry = combined;
    }
  }
  std::memcpy(recvbuf, carry.data(), bytes);
}

void Communicator::allgatherv(const void* sendbuf, std::size_t sendcount, void* recvbuf,
                              const std::vector<std::int64_t>& counts,
                              const std::vector<std::int64_t>& displs, Datatype dt) {
  const int p = size();
  if (static_cast<int>(counts.size()) != p) {
    throw std::invalid_argument("allgatherv: counts must have comm-size entries");
  }
  if (static_cast<std::int64_t>(sendcount) != counts[static_cast<std::size_t>(my_index_)]) {
    throw std::invalid_argument("allgatherv: sendcount disagrees with counts[rank]");
  }
  auto* out = static_cast<std::byte*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(displs[static_cast<std::size_t>(my_index_)]) * dt.size,
              sendbuf, sendcount * dt.size);
  if (p == 1) return;
  const int tag = coll_tag();
  const int right = (my_index_ + 1) % p;
  const int left = (my_index_ - 1 + p) % p;
  // Ring with variable block sizes.
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (my_index_ - s + p) % p;
    const int recv_block = (my_index_ - s - 1 + p) % p;
    coll_sendrecv(
        out + static_cast<std::size_t>(displs[static_cast<std::size_t>(send_block)]) * dt.size,
        static_cast<std::size_t>(counts[static_cast<std::size_t>(send_block)]) * dt.size, right,
        out + static_cast<std::size_t>(displs[static_cast<std::size_t>(recv_block)]) * dt.size,
        static_cast<std::size_t>(counts[static_cast<std::size_t>(recv_block)]) * dt.size, left,
        tag);
  }
}

void Communicator::gatherv(const void* sendbuf, std::size_t sendcount, void* recvbuf,
                           const std::vector<std::int64_t>& counts,
                           const std::vector<std::int64_t>& displs, Datatype dt, int root) {
  const int p = size();
  const int tag = coll_tag();
  const int ctx = ctx_base_ + 1;
  if (my_index_ == root) {
    if (static_cast<int>(counts.size()) != p) {
      throw std::invalid_argument("gatherv: counts must have comm-size entries");
    }
    auto* out = static_cast<std::byte*>(recvbuf);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      const std::size_t bytes = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]) * dt.size;
      std::byte* dst = out + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) * dt.size;
      if (r == my_index_) {
        std::memcpy(dst, sendbuf, bytes);
      } else {
        reqs.push_back(irecv_ctx(dst, bytes, r, tag, ctx));
      }
    }
    for (auto& r : reqs) ep_->wait(r);
  } else {
    Request s = isend_kind(CommKind::Collective, sendbuf, sendcount * dt.size, root, tag, ctx);
    ep_->wait(s);
  }
}

}  // namespace ib12x::mvx
