#include "mvx/coll/engine.hpp"

#include <algorithm>
#include <cstring>

#include "mvx/endpoint.hpp"
#include "mvx/telemetry.hpp"
#include "sim/process.hpp"

namespace ib12x::mvx::coll {

struct CollEngine::Exec {
  CollSchedule sched;
  Request user;

  struct Round {
    int deps_left = 0;
    bool issued = false;
    bool done = false;
    std::vector<Request> pending;  ///< posted transfers of this round
  };
  std::vector<Round> rounds;
  std::vector<std::vector<int>> dependents;
  int left = 0;  ///< rounds not yet done
};

CollEngine::CollEngine(Endpoint& ep)
    : ep_(ep),
      schedules_(ep.telemetry().counter("coll.schedules")),
      rounds_done_(ep.telemetry().counter("coll.rounds")),
      ops_issued_(ep.telemetry().counter("coll.ops")) {}

CollEngine::~CollEngine() = default;

void CollEngine::issue_round(Exec& e, int r) {
  Exec::Round& round = e.rounds[static_cast<std::size_t>(r)];
  round.issued = true;
  // Ops run in listed order: local ops inline (on the current fiber, which
  // charges any Cpu op to whoever is driving progress), transfers posted.
  for (const CollOp& op : e.sched.rounds()[static_cast<std::size_t>(r)].ops) {
    ops_issued_.inc();
    switch (op.kind) {
      case CollOp::Kind::Isend:
        round.pending.push_back(ep_.start_send(CommKind::Collective, op.src, op.bytes, op.peer,
                                               op.tag, e.sched.ctx, op.lane));
        break;
      case CollOp::Kind::Irecv:
        round.pending.push_back(ep_.start_recv(op.dst, op.bytes, op.peer, op.tag, e.sched.ctx));
        break;
      case CollOp::Kind::ReduceLocal:
        reduce_apply(op.redop, op.dt, op.dst, op.src, op.count);
        break;
      case CollOp::Kind::Copy:
        if (op.bytes > 0) std::memcpy(op.dst, op.src, static_cast<std::size_t>(op.bytes));
        break;
      case CollOp::Kind::Cpu:
        if (op.cpu > 0) ep_.process().compute(op.cpu);
        break;
    }
  }
}

bool CollEngine::step(Exec& e) {
  // Drive to a local fixpoint: completing a round can unblock others, and a
  // freshly issued all-local round completes immediately.
  bool moved = true;
  while (moved) {
    moved = false;
    const int n = static_cast<int>(e.rounds.size());
    for (int r = 0; r < n; ++r) {
      Exec::Round& round = e.rounds[static_cast<std::size_t>(r)];
      if (!round.issued && round.deps_left == 0) {
        issue_round(e, r);
        moved = true;
      }
      if (round.issued && !round.done) {
        bool all_done = true;
        for (const Request& q : round.pending) {
          if (!q->done) {
            all_done = false;
            break;
          }
        }
        if (all_done) {
          round.done = true;
          round.pending.clear();
          --e.left;
          rounds_done_.inc();
          for (int d : e.dependents[static_cast<std::size_t>(r)]) {
            --e.rounds[static_cast<std::size_t>(d)].deps_left;
          }
          moved = true;
        }
      }
    }
  }
  return e.left == 0;
}

void CollEngine::finish(Exec& e) {
  if (e.sched.on_complete) e.sched.on_complete();
  ep_.complete_request(e.user);
}

Request CollEngine::launch(CollSchedule sched) {
  schedules_.inc();
  auto e = std::make_unique<Exec>();
  e->sched = std::move(sched);
  e->user = make_request();

  const auto& rounds = e->sched.rounds();
  const int n = static_cast<int>(rounds.size());
  e->rounds.resize(static_cast<std::size_t>(n));
  e->dependents.resize(static_cast<std::size_t>(n));
  e->left = n;
  for (int r = 0; r < n; ++r) {
    e->rounds[static_cast<std::size_t>(r)].deps_left =
        static_cast<int>(rounds[static_cast<std::size_t>(r)].deps.size());
    for (int d : rounds[static_cast<std::size_t>(r)].deps) {
      e->dependents[static_cast<std::size_t>(d)].push_back(r);
    }
  }

  // First pass runs on the caller: a blocking collective's initial posts and
  // pack charges land on the rank's own fiber, as the inline code's did.
  if (step(*e)) {
    finish(*e);
    return e->user;
  }
  Request user = e->user;
  active_.push_back(std::move(e));
  return user;
}

bool CollEngine::poll_ready() const {
  for (const auto& e : active_) {
    const int n = static_cast<int>(e->rounds.size());
    for (int r = 0; r < n; ++r) {
      const Exec::Round& round = e->rounds[static_cast<std::size_t>(r)];
      if (!round.issued && round.deps_left == 0) return true;
      if (round.issued && !round.done) {
        bool all_done = true;
        for (const Request& q : round.pending) {
          if (!q->done) {
            all_done = false;
            break;
          }
        }
        if (all_done) return true;
      }
    }
  }
  return false;
}

void CollEngine::run_ready() {
  // Index loop: step() can block mid-issue (credits), during which the rank
  // fiber may launch() and append — the new exec is picked up next pass.
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i] != nullptr && step(*active_[i])) {
      finish(*active_[i]);
      active_[i] = nullptr;
    }
  }
  active_.erase(std::remove(active_.begin(), active_.end(), nullptr), active_.end());
}

void CollEngine::progress_main(sim::Process& p) {
  for (;;) {
    p.wait_until(ep_.progress(),
                 [&] { return (shutdown_ && active_.empty()) || poll_ready(); });
    if (shutdown_ && active_.empty()) return;
    run_ready();
  }
}

void CollEngine::request_shutdown() {
  shutdown_ = true;
  ep_.progress().notify_all();
}

}  // namespace ib12x::mvx::coll
