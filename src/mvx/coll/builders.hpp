// Collective schedule builders.
//
// Each builder compiles one collective call into a CollSchedule whose round
// structure mirrors the step structure of the classic blocking algorithm it
// replaces (paper §3.2.2): one round per completed sendrecv step, sequential
// child sends in the binomial trees as chained single-send rounds, root-side
// gather/scatter fan as one round of posts.  Local data movement that the
// blocking code did synchronously before any communication (seeding
// accumulators, Bruck's initial rotation) happens at build time, so a
// schedule executed to completion produces byte-identical buffers *and*
// identical virtual-time behaviour to the code it replaced.
//
// The multi-lane builders (Träff-style lanes) instead emit several
// independent round chains — one per lane, each pinned to a rail via the op
// lane field — which the engine progresses concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "mvx/coll/schedule.hpp"
#include "mvx/coll/tags.hpp"
#include "mvx/datatype.hpp"

namespace ib12x::mvx {
struct Config;
}

namespace ib12x::mvx::coll {

/// Everything a builder needs: communicator geometry, the reserved tag
/// block, tuning, and the call's arguments (only the relevant subset is
/// filled for any given collective).
struct BuildCtx {
  // ---- communicator geometry ----
  int p = 1;                                ///< communicator size
  int me = 0;                               ///< my comm rank
  const std::vector<int>* group = nullptr;  ///< comm rank -> world rank
  int ctx = 0;                              ///< collective context id
  TagRing::Block tags;                      ///< reserved 256-tag sub-range
  const Config* cfg = nullptr;
  int nrails = 1;
  ScratchPool* scratch = nullptr;           ///< the rank's scratch recycling pool

  // ---- call arguments ----
  const void* sendbuf = nullptr;
  void* recvbuf = nullptr;
  std::size_t count = 0;
  Datatype dt{};
  Op redop = Op::Sum;
  int root = 0;
  const std::vector<std::int64_t>* scounts = nullptr;
  const std::vector<std::int64_t>* sdispls = nullptr;
  const std::vector<std::int64_t>* rcounts = nullptr;
  const std::vector<std::int64_t>* rdispls = nullptr;

  [[nodiscard]] int wr(int comm_rank) const {
    return (*group)[static_cast<std::size_t>(comm_rank)];
  }
  /// Draws the next unused tag of the reserved block (deterministic: every
  /// rank draws in the same builder-defined order).
  [[nodiscard]] int fresh_tag() const { return tags.tag(tag_cursor_++); }

 private:
  mutable int tag_cursor_ = 0;
};

// ---- one builder per registered algorithm (registry: coll/select.cpp) ----

CollSchedule build_barrier_dissemination(const BuildCtx& c);

CollSchedule build_bcast_binomial(const BuildCtx& c);
CollSchedule build_bcast_multilane(const BuildCtx& c);

CollSchedule build_reduce_binomial(const BuildCtx& c);

CollSchedule build_allreduce_recursive_doubling(const BuildCtx& c);
CollSchedule build_allreduce_reduce_bcast(const BuildCtx& c);
CollSchedule build_allreduce_rabenseifner(const BuildCtx& c);
CollSchedule build_allreduce_multilane(const BuildCtx& c);

CollSchedule build_gather_linear(const BuildCtx& c);
CollSchedule build_gatherv_linear(const BuildCtx& c);
CollSchedule build_scatter_linear(const BuildCtx& c);

CollSchedule build_allgather_ring(const BuildCtx& c);
CollSchedule build_allgatherv_ring(const BuildCtx& c);

CollSchedule build_alltoall_pairwise(const BuildCtx& c);
CollSchedule build_alltoall_bruck(const BuildCtx& c);
CollSchedule build_alltoallv_pairwise(const BuildCtx& c);

CollSchedule build_reduce_scatter_block_pairwise(const BuildCtx& c);

CollSchedule build_scan_hillis_steele(const BuildCtx& c);

}  // namespace ib12x::mvx::coll
