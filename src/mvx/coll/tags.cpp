#include "mvx/coll/tags.hpp"

#include <stdexcept>
#include <string>

namespace ib12x::mvx::coll {

int TagRing::Block::tag(int index) const {
  if (index < 0 || index >= kTagsPerSlot) {
    throw std::logic_error("TagRing: schedule exceeded its " +
                           std::to_string(kTagsPerSlot) + "-tag sub-range");
  }
  return base + index;
}

void TagRing::ensure_held() {
  if (held_.empty()) held_.assign(kSlots, false);
}

bool TagRing::next_busy() const {
  if (held_.empty()) return false;
  return held_[static_cast<std::size_t>(next_slot())];
}

TagRing::Block TagRing::reserve() {
  ensure_held();
  const int slot = next_slot();
  if (held_[static_cast<std::size_t>(slot)]) {
    throw std::logic_error("TagRing::reserve: slot " + std::to_string(slot) +
                           " still held by an in-flight collective");
  }
  held_[static_cast<std::size_t>(slot)] = true;
  ++active_;
  ++seq_;
  return Block{slot, kCollectiveBit | (slot << kIndexBits)};
}

void TagRing::release(int slot) {
  if (slot < 0 || slot >= kSlots || held_.empty() || !held_[static_cast<std::size_t>(slot)]) {
    throw std::logic_error("TagRing::release: slot " + std::to_string(slot) + " not held");
  }
  held_[static_cast<std::size_t>(slot)] = false;
  --active_;
}

}  // namespace ib12x::mvx::coll
