#include "mvx/coll/select.hpp"

#include <algorithm>

#include "mvx/coll/builders.hpp"

namespace ib12x::mvx::coll {

namespace {

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

constexpr AlgoEntry kBarrier[] = {
    {"dissemination", build_barrier_dissemination},
};
constexpr AlgoEntry kBcast[] = {
    {"binomial", build_bcast_binomial},
    {"multilane", build_bcast_multilane},
};
constexpr AlgoEntry kReduce[] = {
    {"binomial", build_reduce_binomial},
};
constexpr AlgoEntry kAllreduce[] = {
    {"recursive_doubling", build_allreduce_recursive_doubling},
    {"reduce_bcast", build_allreduce_reduce_bcast},
    {"rabenseifner", build_allreduce_rabenseifner},
    {"multilane", build_allreduce_multilane},
};
constexpr AlgoEntry kGather[] = {{"linear", build_gather_linear}};
constexpr AlgoEntry kGatherv[] = {{"linear", build_gatherv_linear}};
constexpr AlgoEntry kScatter[] = {{"linear", build_scatter_linear}};
constexpr AlgoEntry kAllgather[] = {{"ring", build_allgather_ring}};
constexpr AlgoEntry kAllgatherv[] = {{"ring", build_allgatherv_ring}};
constexpr AlgoEntry kAlltoall[] = {
    {"pairwise", build_alltoall_pairwise},
    {"bruck", build_alltoall_bruck},
};
constexpr AlgoEntry kAlltoallv[] = {{"pairwise", build_alltoallv_pairwise}};
constexpr AlgoEntry kReduceScatterBlock[] = {{"pairwise", build_reduce_scatter_block_pairwise}};
constexpr AlgoEntry kScan[] = {{"hillis_steele", build_scan_hillis_steele}};

/// True when the tuning enables lanes and the payload is big enough that
/// Auto selection should decompose it.
bool lanes_engage(const Tuning& t, std::int64_t total_bytes, int nrails) {
  return t.lanes != 1 && nrails > 1 && total_bytes >= t.lane_threshold;
}

}  // namespace

AlgoList algorithms(CollKind kind) {
  switch (kind) {
    case CollKind::Barrier: return {kBarrier, std::size(kBarrier)};
    case CollKind::Bcast: return {kBcast, std::size(kBcast)};
    case CollKind::Reduce: return {kReduce, std::size(kReduce)};
    case CollKind::Allreduce: return {kAllreduce, std::size(kAllreduce)};
    case CollKind::Gather: return {kGather, std::size(kGather)};
    case CollKind::Gatherv: return {kGatherv, std::size(kGatherv)};
    case CollKind::Scatter: return {kScatter, std::size(kScatter)};
    case CollKind::Allgather: return {kAllgather, std::size(kAllgather)};
    case CollKind::Allgatherv: return {kAllgatherv, std::size(kAllgatherv)};
    case CollKind::Alltoall: return {kAlltoall, std::size(kAlltoall)};
    case CollKind::Alltoallv: return {kAlltoallv, std::size(kAlltoallv)};
    case CollKind::ReduceScatterBlock:
      return {kReduceScatterBlock, std::size(kReduceScatterBlock)};
    case CollKind::Scan: return {kScan, std::size(kScan)};
  }
  return {kBarrier, std::size(kBarrier)};  // unreachable
}

int lane_width(const Tuning& t, int nrails) {
  const int nr = std::max(1, nrails);
  if (t.lanes == 0) return nr;
  return std::max(1, std::min(t.lanes, nr));
}

const AlgoEntry& select(CollKind kind, const Tuning& t, int p, std::int64_t total_bytes,
                        std::size_t count, int nrails) {
  switch (kind) {
    case CollKind::Bcast: {
      BcastAlgo algo = t.bcast_algo;
      if (algo == BcastAlgo::Auto) {
        algo = lanes_engage(t, total_bytes, nrails) ? BcastAlgo::MultiLane : BcastAlgo::Binomial;
      }
      return kBcast[algo == BcastAlgo::MultiLane ? 1 : 0];
    }
    case CollKind::Allreduce: {
      AllreduceAlgo algo = t.allreduce_algo;
      if (algo == AllreduceAlgo::Auto) {
        // Lane decomposition first when enabled; otherwise the MVAPICH-era
        // rules: bandwidth-optimal Rabenseifner for long vectors,
        // latency-optimal recursive doubling for power-of-two p, tree
        // fallback for the rest.
        if (lanes_engage(t, total_bytes, nrails) && p > 1) {
          algo = AllreduceAlgo::MultiLane;
        } else if (total_bytes >= t.rabenseifner_threshold &&
                   count >= static_cast<std::size_t>(p)) {
          algo = AllreduceAlgo::Rabenseifner;
        } else if (is_pow2(p)) {
          algo = AllreduceAlgo::RecursiveDoubling;
        } else {
          algo = AllreduceAlgo::ReduceBcast;
        }
      }
      if (algo == AllreduceAlgo::RecursiveDoubling && !is_pow2(p)) {
        algo = AllreduceAlgo::ReduceBcast;
      }
      if (algo == AllreduceAlgo::Rabenseifner && count < static_cast<std::size_t>(p)) {
        algo = AllreduceAlgo::ReduceBcast;
      }
      switch (algo) {
        case AllreduceAlgo::RecursiveDoubling: return kAllreduce[0];
        case AllreduceAlgo::Rabenseifner: return kAllreduce[2];
        case AllreduceAlgo::MultiLane: return kAllreduce[3];
        case AllreduceAlgo::ReduceBcast:
        case AllreduceAlgo::Auto: return kAllreduce[1];
      }
      return kAllreduce[1];
    }
    case CollKind::Alltoall: {
      AlltoallAlgo algo = t.alltoall_algo;
      if (algo == AlltoallAlgo::Auto) {
        // Bruck trades p-1 small messages for ceil(log2 p) larger ones plus
        // local copies — the short-block winner once p > 2.
        algo = (total_bytes < t.bruck_threshold && p > 2) ? AlltoallAlgo::Bruck
                                                          : AlltoallAlgo::Pairwise;
      }
      return kAlltoall[algo == AlltoallAlgo::Bruck ? 1 : 0];
    }
    default:
      return algorithms(kind).entries[0];
  }
}

}  // namespace ib12x::mvx::coll
