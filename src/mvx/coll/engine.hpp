// Progress-driven executor for collective schedules.
//
// One CollEngine hangs off each Endpoint.  launch() issues every round of a
// schedule whose dependencies are already met — on the *calling* fiber, so a
// blocking collective charges its first posts to the rank exactly like the
// old inline code — and registers the remainder.  From then on a dedicated
// per-rank progress fiber (World::run spawns one alongside each rank,
// modelling an asynchronous progress thread) advances the schedule: whenever
// the endpoint's progress waitable fires it completes rounds whose transfers
// finished, issues newly unblocked rounds, and finally completes the user's
// Request.  That fiber is what makes collectives *non-blocking*: the rank's
// own fiber can sit in compute() while its iallreduce keeps moving.
//
// Execution is deterministic: execs and rounds are scanned in creation/index
// order, and all posts happen from fiber context in a fixed order, so runs
// remain bit-reproducible.
#pragma once

#include <memory>
#include <vector>

#include "mvx/coll/schedule.hpp"
#include "mvx/request.hpp"

namespace ib12x::sim {
class Process;
}

namespace ib12x::mvx {
class Counter;
class Endpoint;
}

namespace ib12x::mvx::coll {

class CollEngine {
 public:
  explicit CollEngine(Endpoint& ep);
  ~CollEngine();

  CollEngine(const CollEngine&) = delete;
  CollEngine& operator=(const CollEngine&) = delete;

  /// Starts executing `sched`: runs all currently-ready rounds on the
  /// calling fiber, then hands the rest to the progress fiber.  The returned
  /// Request completes (waitable with Endpoint::wait / Communicator::wait)
  /// when every round has.
  Request launch(CollSchedule sched);

  /// Body of the per-rank progress fiber (runs until request_shutdown() and
  /// all in-flight schedules have drained).
  void progress_main(sim::Process& p);

  /// Re-arms the engine for a new World::run invocation.
  void begin_run() { shutdown_ = false; }

  /// Asks progress_main to exit once no schedules remain in flight.
  void request_shutdown();

  /// Number of schedules currently in flight.
  [[nodiscard]] int in_flight() const { return static_cast<int>(active_.size()); }

  /// The rank's scratch recycling pool (attached to every schedule this
  /// rank builds; see ScratchPool).
  [[nodiscard]] ScratchPool& scratch_pool() { return scratch_pool_; }

 private:
  struct Exec;

  void issue_round(Exec& e, int r);
  /// Issues/completes every ready round of `e` until nothing moves; true
  /// when the whole schedule has finished.
  bool step(Exec& e);
  void finish(Exec& e);
  [[nodiscard]] bool poll_ready() const;
  void run_ready();

  Endpoint& ep_;
  std::vector<std::unique_ptr<Exec>> active_;
  ScratchPool scratch_pool_;
  bool shutdown_ = false;

  Counter& schedules_;
  Counter& rounds_done_;
  Counter& ops_issued_;
};

}  // namespace ib12x::mvx::coll
