#include "mvx/coll/builders.hpp"

#include <algorithm>
#include <cstring>

#include "mvx/coll/select.hpp"
#include "mvx/config.hpp"
#include "sim/time.hpp"

namespace ib12x::mvx::coll {

namespace {

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

std::vector<int> dep(int after) {
  return after < 0 ? std::vector<int>{} : std::vector<int>{after};
}

const std::byte* bytes_of(const void* p) { return static_cast<const std::byte*>(p); }
std::byte* bytes_of(void* p) { return static_cast<std::byte*>(p); }

// ---- composable sub-builders -------------------------------------------
//
// Each appends its rounds after round `after` (-1 = a DAG root) and returns
// the index of its last round (`after` unchanged if it appended nothing),
// so composite algorithms — reduce+bcast, Rabenseifner, the multi-lane
// decompositions — chain phases and lanes from the same primitives.

int append_bcast_binomial(CollSchedule& s, const BuildCtx& c, std::byte* buf, std::size_t bytes,
                          int root, int tag, int lane, int after) {
  int cur = after;
  const int vrank = (c.me - root + c.p) % c.p;
  // Binomial tree: receive from parent, forward to children one at a time
  // (the blocking code waited out each child send — one round per child).
  if (vrank != 0) {
    int parent = 0;
    for (int mask = 1; mask < c.p; mask <<= 1) {
      if (vrank & mask) {
        parent = vrank ^ mask;
        break;
      }
    }
    cur = s.add_round(dep(cur));
    s.irecv(cur, c.wr((parent + root) % c.p), tag, buf, static_cast<std::int64_t>(bytes), lane);
  }
  int low = 1;
  while (low < c.p && (vrank & low) == 0) low <<= 1;  // first set bit bounds children
  for (int mask = low >> 1; mask >= 1; mask >>= 1) {
    const int child = vrank | mask;
    if (child < c.p && child != vrank) {
      cur = s.add_round(dep(cur));
      s.isend(cur, c.wr((child + root) % c.p), tag, buf, static_cast<std::int64_t>(bytes), lane);
    }
  }
  return cur;
}

int append_reduce_binomial(CollSchedule& s, const BuildCtx& c, const void* sendbuf, void* recvbuf,
                           std::size_t count, Datatype dt, Op op, int root, int tag, int lane,
                           int after) {
  const std::size_t bytes = count * dt.size;
  std::byte* acc = s.scratch(bytes);
  std::byte* tmp = s.scratch(bytes);
  std::memcpy(acc, sendbuf, bytes);  // seeded at build time, like the blocking code
  int cur = after;
  const int vrank = (c.me - root + c.p) % c.p;
  // Binomial reduction towards vrank 0.  A completed child receive is folded
  // in at the start of the next round, before that round's post.
  bool fold = false;
  for (int mask = 1; mask < c.p; mask <<= 1) {
    if (vrank & mask) {
      cur = s.add_round(dep(cur));
      if (fold) s.reduce_local(cur, op, dt, acc, tmp, count);
      fold = false;
      s.isend(cur, c.wr(((vrank ^ mask) + root) % c.p), tag, acc,
              static_cast<std::int64_t>(bytes), lane);
      break;
    }
    const int child = vrank | mask;
    if (child < c.p) {
      cur = s.add_round(dep(cur));
      if (fold) s.reduce_local(cur, op, dt, acc, tmp, count);
      s.irecv(cur, c.wr((child + root) % c.p), tag, tmp, static_cast<std::int64_t>(bytes), lane);
      fold = true;
    }
  }
  if (vrank == 0) {
    cur = s.add_round(dep(cur));
    if (fold) s.reduce_local(cur, op, dt, acc, tmp, count);
    s.copy(cur, recvbuf, acc, static_cast<std::int64_t>(bytes));
  }
  return cur;
}

int append_allreduce_rd(CollSchedule& s, const BuildCtx& c, void* recvbuf, std::size_t count,
                        Datatype dt, Op op, int tag, int lane, int after) {
  // Recursive doubling (p must be a power of two); recvbuf is pre-seeded
  // with this rank's contribution.
  const std::size_t bytes = count * dt.size;
  std::byte* tmp = s.scratch(bytes);
  int cur = after;
  bool fold = false;
  for (int mask = 1; mask < c.p; mask <<= 1) {
    const int partner = c.wr(c.me ^ mask);
    cur = s.add_round(dep(cur));
    if (fold) s.reduce_local(cur, op, dt, recvbuf, tmp, count);
    s.irecv(cur, partner, tag, tmp, static_cast<std::int64_t>(bytes), lane);
    s.isend(cur, partner, tag, recvbuf, static_cast<std::int64_t>(bytes), lane);
    fold = true;
  }
  cur = s.add_round(dep(cur));
  s.reduce_local(cur, op, dt, recvbuf, tmp, count);
  return cur;
}

int append_reduce_scatter_block(CollSchedule& s, const BuildCtx& c, const void* sendbuf,
                                void* recvbuf, std::size_t count, Datatype dt, Op op, int tag,
                                int lane, int after) {
  // Pairwise-exchange reduce-scatter: accumulate my block from everyone.
  const std::size_t block = count * dt.size;
  const auto* in = bytes_of(sendbuf);
  std::byte* acc = s.scratch(block);
  std::byte* tmp = s.scratch(block);
  std::memcpy(acc, in + static_cast<std::size_t>(c.me) * block, block);
  int cur = after;
  bool fold = false;
  for (int st = 1; st < c.p; ++st) {
    const int to = (c.me + st) % c.p;
    const int from = (c.me - st + c.p) % c.p;
    cur = s.add_round(dep(cur));
    if (fold) s.reduce_local(cur, op, dt, acc, tmp, count);
    s.irecv(cur, c.wr(from), tag, tmp, static_cast<std::int64_t>(block), lane);
    s.isend(cur, c.wr(to), tag, in + static_cast<std::size_t>(to) * block,
            static_cast<std::int64_t>(block), lane);
    fold = true;
  }
  cur = s.add_round(dep(cur));
  s.reduce_local(cur, op, dt, acc, tmp, count);
  s.copy(cur, recvbuf, acc, static_cast<std::int64_t>(block));
  return cur;
}

int append_allgatherv_ring(CollSchedule& s, const BuildCtx& c, std::byte* out,
                           const std::vector<std::int64_t>& counts,
                           const std::vector<std::int64_t>& displs, std::size_t es, int tag,
                           int lane, int after, const void* seed_src) {
  // Ring with (possibly) variable block sizes: in step st we forward the
  // block that originated st hops upstream.  `seed_src`, when given, is
  // copied into my block at the start of the first round — needed when the
  // seed is produced by an earlier phase of the same schedule (Rabenseifner)
  // rather than being available at build time.
  const int right = c.wr((c.me + 1) % c.p);
  const int left = c.wr((c.me - 1 + c.p) % c.p);
  int cur = after;
  for (int st = 0; st < c.p - 1; ++st) {
    const int sb = (c.me - st + c.p) % c.p;
    const int rb = (c.me - st - 1 + c.p) % c.p;
    cur = s.add_round(dep(cur));
    if (st == 0 && seed_src != nullptr) {
      s.copy(cur, out + static_cast<std::size_t>(displs[static_cast<std::size_t>(c.me)]) * es,
             seed_src,
             static_cast<std::int64_t>(static_cast<std::size_t>(
                                           counts[static_cast<std::size_t>(c.me)]) * es));
    }
    s.irecv(cur, left, tag, out + static_cast<std::size_t>(displs[static_cast<std::size_t>(rb)]) * es,
            static_cast<std::int64_t>(static_cast<std::size_t>(counts[static_cast<std::size_t>(rb)]) * es),
            lane);
    s.isend(cur, right, tag,
            out + static_cast<std::size_t>(displs[static_cast<std::size_t>(sb)]) * es,
            static_cast<std::int64_t>(static_cast<std::size_t>(counts[static_cast<std::size_t>(sb)]) * es),
            lane);
  }
  return cur;
}

/// Lane widths for splitting `total` units across the resolved lane count:
/// lane l gets total/L rounded up for the first total%L lanes.
std::vector<std::size_t> lane_split(std::size_t total, int lanes) {
  const auto L = static_cast<std::size_t>(lanes);
  std::vector<std::size_t> out(L, total / L);
  for (std::size_t l = 0; l < total % L; ++l) ++out[l];
  return out;
}

}  // namespace

// ---- registered builders ------------------------------------------------

CollSchedule build_barrier_dissemination(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const int tag = c.fresh_tag();
  std::byte* dummy = s.scratch(1);
  // Dissemination barrier: ceil(log2 p) rounds of zero-byte sendrecv.
  int cur = -1;
  for (int k = 1; k < c.p; k <<= 1) {
    const int to = (c.me + k) % c.p;
    const int from = (c.me - k + c.p) % c.p;
    cur = s.add_round(dep(cur));
    s.irecv(cur, c.wr(from), tag, dummy, 0);
    s.isend(cur, c.wr(to), tag, dummy, 0);
  }
  return s;
}

CollSchedule build_bcast_binomial(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  append_bcast_binomial(s, c, bytes_of(c.recvbuf), c.count * c.dt.size, c.root, c.fresh_tag(), -1,
                        -1);
  return s;
}

CollSchedule build_bcast_multilane(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const std::size_t bytes = c.count * c.dt.size;
  const int L = std::max(1, std::min<int>(lane_width(c.cfg->coll, c.nrails),
                                          static_cast<int>(std::max<std::size_t>(bytes, 1))));
  const auto widths = lane_split(bytes, L);
  std::byte* buf = bytes_of(c.recvbuf);
  std::size_t off = 0;
  // One independent binomial tree per lane, pinned to rail (lane % nrails):
  // the lanes pipeline through the tree concurrently.
  for (int l = 0; l < L; ++l) {
    append_bcast_binomial(s, c, buf + off, widths[static_cast<std::size_t>(l)], c.root,
                          c.fresh_tag(), l, -1);
    off += widths[static_cast<std::size_t>(l)];
  }
  return s;
}

CollSchedule build_reduce_binomial(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  append_reduce_binomial(s, c, c.sendbuf, c.recvbuf, c.count, c.dt, c.redop, c.root, c.fresh_tag(),
                         -1, -1);
  return s;
}

CollSchedule build_allreduce_recursive_doubling(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  append_allreduce_rd(s, c, c.recvbuf, c.count, c.dt, c.redop, c.fresh_tag(), -1, -1);
  return s;
}

CollSchedule build_allreduce_reduce_bcast(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  // reduce to comm rank 0, then broadcast — the non-power-of-two fallback.
  const int tag_reduce = c.fresh_tag();
  const int tag_bcast = c.fresh_tag();
  int tail = append_reduce_binomial(s, c, c.recvbuf, c.recvbuf, c.count, c.dt, c.redop, 0,
                                    tag_reduce, -1, -1);
  append_bcast_binomial(s, c, bytes_of(c.recvbuf), c.count * c.dt.size, 0, tag_bcast, -1, tail);
  return s;
}

CollSchedule build_allreduce_rabenseifner(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  // Reduce-scatter over padded equal blocks, then allgatherv of the unpadded
  // pieces.  Moves 2·(p-1)/p of the vector instead of log p full copies.
  const std::size_t bytes = c.count * c.dt.size;
  const auto p = static_cast<std::size_t>(c.p);
  const std::size_t per = (c.count + p - 1) / p;
  std::byte* padded = s.scratch(per * p * c.dt.size);  // scratch is zero-filled
  std::memcpy(padded, c.recvbuf, bytes);
  std::byte* mine = s.scratch(per * c.dt.size);

  const int tag_rs = c.fresh_tag();
  const int tag_ag = c.fresh_tag();
  int tail = append_reduce_scatter_block(s, c, padded, mine, per, c.dt, c.redop, tag_rs, -1, -1);

  std::vector<std::int64_t> counts(p), displs(p);
  for (int r = 0; r < c.p; ++r) {
    const std::size_t lo = std::min(c.count, static_cast<std::size_t>(r) * per);
    const std::size_t hi = std::min(c.count, (static_cast<std::size_t>(r) + 1) * per);
    counts[static_cast<std::size_t>(r)] = static_cast<std::int64_t>(hi - lo);
    displs[static_cast<std::size_t>(r)] = static_cast<std::int64_t>(lo);
  }
  // `mine` is produced by the reduce-scatter rounds, so the allgatherv seeds
  // it into place as a round op rather than at build time.
  append_allgatherv_ring(s, c, bytes_of(c.recvbuf), counts, displs, c.dt.size, tag_ag, -1, tail,
                         mine);
  return s;
}

CollSchedule build_allreduce_multilane(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  // Element-aligned lane decomposition: each lane allreduces its slice with
  // the base algorithm on its own tag, pinned to rail (lane % nrails).
  const int L = std::max(1, std::min<int>(lane_width(c.cfg->coll, c.nrails),
                                          static_cast<int>(std::max<std::size_t>(c.count, 1))));
  const auto widths = lane_split(c.count, L);
  std::byte* buf = bytes_of(c.recvbuf);
  std::size_t elem_off = 0;
  for (int l = 0; l < L; ++l) {
    const std::size_t n = widths[static_cast<std::size_t>(l)];
    std::byte* slice = buf + elem_off * c.dt.size;
    if (is_pow2(c.p)) {
      append_allreduce_rd(s, c, slice, n, c.dt, c.redop, c.fresh_tag(), l, -1);
    } else {
      const int tag_reduce = c.fresh_tag();
      const int tag_bcast = c.fresh_tag();
      int tail = append_reduce_binomial(s, c, slice, slice, n, c.dt, c.redop, 0, tag_reduce, l, -1);
      append_bcast_binomial(s, c, slice, n * c.dt.size, 0, tag_bcast, l, tail);
    }
    elem_off += n;
  }
  return s;
}

CollSchedule build_gather_linear(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const std::size_t bytes = c.count * c.dt.size;
  const int tag = c.fresh_tag();
  const int r0 = s.add_round();
  if (c.me == c.root) {
    auto* out = bytes_of(c.recvbuf);
    for (int r = 0; r < c.p; ++r) {
      if (r == c.me) {
        s.copy(r0, out + static_cast<std::size_t>(r) * bytes, c.sendbuf,
               static_cast<std::int64_t>(bytes));
      } else {
        s.irecv(r0, c.wr(r), tag, out + static_cast<std::size_t>(r) * bytes,
                static_cast<std::int64_t>(bytes));
      }
    }
  } else {
    s.isend(r0, c.wr(c.root), tag, c.sendbuf, static_cast<std::int64_t>(bytes));
  }
  return s;
}

CollSchedule build_gatherv_linear(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const int tag = c.fresh_tag();
  const int r0 = s.add_round();
  if (c.me == c.root) {
    const auto& counts = *c.rcounts;
    const auto& displs = *c.rdispls;
    auto* out = bytes_of(c.recvbuf);
    for (int r = 0; r < c.p; ++r) {
      const std::size_t bytes = static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]) * c.dt.size;
      std::byte* dst = out + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]) * c.dt.size;
      if (r == c.me) {
        s.copy(r0, dst, c.sendbuf, static_cast<std::int64_t>(bytes));
      } else {
        s.irecv(r0, c.wr(r), tag, dst, static_cast<std::int64_t>(bytes));
      }
    }
  } else {
    s.isend(r0, c.wr(c.root), tag, c.sendbuf,
            static_cast<std::int64_t>(c.count * c.dt.size));
  }
  return s;
}

CollSchedule build_scatter_linear(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const std::size_t bytes = c.count * c.dt.size;
  const int tag = c.fresh_tag();
  const int r0 = s.add_round();
  if (c.me == c.root) {
    const auto* in = bytes_of(c.sendbuf);
    for (int r = 0; r < c.p; ++r) {
      if (r == c.me) {
        s.copy(r0, c.recvbuf, in + static_cast<std::size_t>(r) * bytes,
               static_cast<std::int64_t>(bytes));
      } else {
        s.isend(r0, c.wr(r), tag, in + static_cast<std::size_t>(r) * bytes,
                static_cast<std::int64_t>(bytes));
      }
    }
  } else {
    s.irecv(r0, c.wr(c.root), tag, c.recvbuf, static_cast<std::int64_t>(bytes));
  }
  return s;
}

CollSchedule build_allgather_ring(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const auto n = static_cast<std::int64_t>(c.count);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(c.p), n);
  std::vector<std::int64_t> displs(static_cast<std::size_t>(c.p));
  for (int r = 0; r < c.p; ++r) displs[static_cast<std::size_t>(r)] = n * r;
  append_allgatherv_ring(s, c, bytes_of(c.recvbuf), counts, displs, c.dt.size, c.fresh_tag(), -1,
                         -1, nullptr);
  return s;
}

CollSchedule build_allgatherv_ring(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  append_allgatherv_ring(s, c, bytes_of(c.recvbuf), *c.rcounts, *c.rdispls, c.dt.size,
                         c.fresh_tag(), -1, -1, nullptr);
  return s;
}

CollSchedule build_alltoall_pairwise(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  // Pairwise exchange (MPI_Sendrecv per step): XOR partners when p is a
  // power of two, ring offsets otherwise.
  const std::size_t bytes = c.count * c.dt.size;
  const auto* in = bytes_of(c.sendbuf);
  auto* out = bytes_of(c.recvbuf);
  const int tag = c.fresh_tag();
  int cur = -1;
  for (int st = 1; st < c.p; ++st) {
    int to, from;
    if (is_pow2(c.p)) {
      to = from = c.me ^ st;
    } else {
      to = (c.me + st) % c.p;
      from = (c.me - st + c.p) % c.p;
    }
    cur = s.add_round(dep(cur));
    s.irecv(cur, c.wr(from), tag, out + static_cast<std::size_t>(from) * bytes,
            static_cast<std::int64_t>(bytes));
    s.isend(cur, c.wr(to), tag, in + static_cast<std::size_t>(to) * bytes,
            static_cast<std::int64_t>(bytes));
  }
  return s;
}

CollSchedule build_alltoall_bruck(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const std::size_t bytes = c.count * c.dt.size;
  const auto* in = bytes_of(c.sendbuf);
  auto* out = bytes_of(c.recvbuf);
  const auto p = static_cast<std::size_t>(c.p);
  const double gbps = c.cfg->memcpy_gbps;

  // Phase 1 (build time, like the blocking code's synchronous rotation):
  // slot i holds the block for rank (me + i) mod p.
  std::byte* work = s.scratch(bytes * p);
  for (int i = 0; i < c.p; ++i) {
    std::memcpy(work + static_cast<std::size_t>(i) * bytes,
                in + static_cast<std::size_t>((c.me + i) % c.p) * bytes, bytes);
  }

  // Phase 2: for each bit k, ship every block whose slot index has bit k.
  // Pack/unpack copies are billed at the host memcpy rate, exactly like the
  // blocking implementation; the unpack of round k opens round k+1.
  const int tag = c.fresh_tag();
  std::byte* sendpack = s.scratch(bytes * p);
  std::byte* recvpack = s.scratch(bytes * p);
  int cur = -1;
  std::vector<int> prev;  // indices shipped in the previous round
  auto unpack = [&](int round, const std::vector<int>& idx) {
    for (std::size_t j = 0; j < idx.size(); ++j) {
      s.copy(round, work + static_cast<std::size_t>(idx[j]) * bytes, recvpack + j * bytes,
             static_cast<std::int64_t>(bytes));
    }
    s.cpu(round, sim::transfer_time(static_cast<std::int64_t>(idx.size() * bytes), gbps));
  };
  for (int k = 1; k < c.p; k <<= 1) {
    std::vector<int> idx;
    for (int i = 1; i < c.p; ++i) {
      if (i & k) idx.push_back(i);
    }
    cur = s.add_round(dep(cur));
    if (!prev.empty()) unpack(cur, prev);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      s.copy(cur, sendpack + j * bytes, work + static_cast<std::size_t>(idx[j]) * bytes,
             static_cast<std::int64_t>(bytes));
    }
    s.cpu(cur, sim::transfer_time(static_cast<std::int64_t>(idx.size() * bytes), gbps));
    const int to = (c.me + k) % c.p;
    const int from = (c.me - k + c.p) % c.p;
    s.irecv(cur, c.wr(from), tag, recvpack, static_cast<std::int64_t>(idx.size() * bytes));
    s.isend(cur, c.wr(to), tag, sendpack, static_cast<std::int64_t>(idx.size() * bytes));
    prev = std::move(idx);
  }

  // Phase 3: slot i now holds the block FROM rank (me - i) mod p.
  cur = s.add_round(dep(cur));
  unpack(cur, prev);
  for (int i = 0; i < c.p; ++i) {
    s.copy(cur, out + static_cast<std::size_t>((c.me - i + c.p) % c.p) * bytes,
           work + static_cast<std::size_t>(i) * bytes, static_cast<std::int64_t>(bytes));
  }
  return s;
}

CollSchedule build_alltoallv_pairwise(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  const auto* in = bytes_of(c.sendbuf);
  auto* out = bytes_of(c.recvbuf);
  const std::size_t es = c.dt.size;
  const auto& sc = *c.scounts;
  const auto& sd = *c.sdispls;
  const auto& rc = *c.rcounts;
  const auto& rd = *c.rdispls;
  const int tag = c.fresh_tag();
  int cur = -1;
  for (int st = 1; st < c.p; ++st) {
    int to, from;
    if (is_pow2(c.p)) {
      to = from = c.me ^ st;
    } else {
      to = (c.me + st) % c.p;
      from = (c.me - st + c.p) % c.p;
    }
    cur = s.add_round(dep(cur));
    s.irecv(cur, c.wr(from), tag,
            out + static_cast<std::size_t>(rd[static_cast<std::size_t>(from)]) * es,
            static_cast<std::int64_t>(static_cast<std::size_t>(rc[static_cast<std::size_t>(from)]) * es));
    s.isend(cur, c.wr(to), tag,
            in + static_cast<std::size_t>(sd[static_cast<std::size_t>(to)]) * es,
            static_cast<std::int64_t>(static_cast<std::size_t>(sc[static_cast<std::size_t>(to)]) * es));
  }
  return s;
}

CollSchedule build_reduce_scatter_block_pairwise(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  append_reduce_scatter_block(s, c, c.sendbuf, c.recvbuf, c.count, c.dt, c.redop, c.fresh_tag(),
                              -1, -1);
  return s;
}

CollSchedule build_scan_hillis_steele(const BuildCtx& c) {
  CollSchedule s;
  s.ctx = c.ctx;
  s.set_scratch_pool(c.scratch);
  // Hillis–Steele inclusive scan: log2 p rounds; rank r folds in the value
  // from r - 2^k when it exists.  recvbuf is pre-seeded by the caller.
  const std::size_t bytes = c.count * c.dt.size;
  const int tag = c.fresh_tag();
  std::byte* carry = s.scratch(bytes);
  std::byte* tmp = s.scratch(bytes);
  std::memcpy(carry, c.recvbuf, bytes);
  int cur = -1;
  bool fold = false;
  auto fold_left = [&](int round) {
    // Prefix order matters for non-commutative ops: left value (tmp) first.
    s.reduce_local(round, c.redop, c.dt, tmp, carry, c.count);
    s.copy(round, carry, tmp, static_cast<std::int64_t>(bytes));
  };
  for (int k = 1; k < c.p; k <<= 1) {
    const bool has_left = c.me - k >= 0;
    const bool has_right = c.me + k < c.p;
    if (!has_left && !has_right) continue;
    cur = s.add_round(dep(cur));
    if (fold) fold_left(cur);
    fold = false;
    // Receives before sends, so the rendezvous chain cannot deadlock; the
    // send completes before the next round mutates carry.
    if (has_left) {
      s.irecv(cur, c.wr(c.me - k), tag, tmp, static_cast<std::int64_t>(bytes));
      fold = true;
    }
    if (has_right) s.isend(cur, c.wr(c.me + k), tag, carry, static_cast<std::int64_t>(bytes));
  }
  cur = s.add_round(dep(cur));
  if (fold) fold_left(cur);
  s.copy(cur, c.recvbuf, carry, static_cast<std::int64_t>(bytes));
  return s;
}

}  // namespace ib12x::mvx::coll
