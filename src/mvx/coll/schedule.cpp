#include "mvx/coll/schedule.hpp"

#include <numeric>
#include <stdexcept>

namespace ib12x::mvx::coll {

int CollSchedule::add_round(std::vector<int> deps) {
  const int idx = static_cast<int>(rounds_.size());
  for (int d : deps) {
    if (d < 0 || d >= idx) throw std::logic_error("CollSchedule: dep on a later/unknown round");
  }
  rounds_.push_back(CollRound{{}, std::move(deps)});
  return idx;
}

int CollSchedule::add_barrier_round() {
  std::vector<int> all(rounds_.size());
  std::iota(all.begin(), all.end(), 0);
  return add_round(std::move(all));
}

void CollSchedule::isend(int r, int peer_world, int tag, const void* src, std::int64_t bytes,
                         int lane) {
  CollOp op;
  op.kind = CollOp::Kind::Isend;
  op.peer = peer_world;
  op.tag = tag;
  op.lane = lane;
  op.src = src;
  op.bytes = bytes;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::irecv(int r, int peer_world, int tag, void* dst, std::int64_t bytes, int lane) {
  CollOp op;
  op.kind = CollOp::Kind::Irecv;
  op.peer = peer_world;
  op.tag = tag;
  op.lane = lane;
  op.dst = dst;
  op.bytes = bytes;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::reduce_local(int r, Op redop, Datatype dt, void* inout, const void* in,
                                std::size_t count) {
  CollOp op;
  op.kind = CollOp::Kind::ReduceLocal;
  op.redop = redop;
  op.dt = dt;
  op.dst = inout;
  op.src = in;
  op.count = count;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::copy(int r, void* dst, const void* src, std::int64_t bytes) {
  CollOp op;
  op.kind = CollOp::Kind::Copy;
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::cpu(int r, sim::Time t) {
  CollOp op;
  op.kind = CollOp::Kind::Cpu;
  op.cpu = t;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

std::byte* CollSchedule::scratch(std::size_t n) {
  scratch_.emplace_back(n);
  return scratch_.back().data();
}

}  // namespace ib12x::mvx::coll
