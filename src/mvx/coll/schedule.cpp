#include "mvx/coll/schedule.hpp"

#include <cstring>
#include <numeric>
#include <stdexcept>

namespace ib12x::mvx::coll {

int CollSchedule::add_round(std::vector<int> deps) {
  const int idx = static_cast<int>(rounds_.size());
  for (int d : deps) {
    if (d < 0 || d >= idx) throw std::logic_error("CollSchedule: dep on a later/unknown round");
  }
  rounds_.push_back(CollRound{{}, std::move(deps)});
  return idx;
}

int CollSchedule::add_barrier_round() {
  std::vector<int> all(rounds_.size());
  std::iota(all.begin(), all.end(), 0);
  return add_round(std::move(all));
}

void CollSchedule::isend(int r, int peer_world, int tag, const void* src, std::int64_t bytes,
                         int lane) {
  CollOp op;
  op.kind = CollOp::Kind::Isend;
  op.peer = peer_world;
  op.tag = tag;
  op.lane = lane;
  op.src = src;
  op.bytes = bytes;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::irecv(int r, int peer_world, int tag, void* dst, std::int64_t bytes, int lane) {
  CollOp op;
  op.kind = CollOp::Kind::Irecv;
  op.peer = peer_world;
  op.tag = tag;
  op.lane = lane;
  op.dst = dst;
  op.bytes = bytes;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::reduce_local(int r, Op redop, Datatype dt, void* inout, const void* in,
                                std::size_t count) {
  CollOp op;
  op.kind = CollOp::Kind::ReduceLocal;
  op.redop = redop;
  op.dt = dt;
  op.dst = inout;
  op.src = in;
  op.count = count;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::copy(int r, void* dst, const void* src, std::int64_t bytes) {
  CollOp op;
  op.kind = CollOp::Kind::Copy;
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

void CollSchedule::cpu(int r, sim::Time t) {
  CollOp op;
  op.kind = CollOp::Kind::Cpu;
  op.cpu = t;
  rounds_.at(static_cast<std::size_t>(r)).ops.push_back(op);
}

std::byte* CollSchedule::scratch(std::size_t n) {
  if (pool_ != nullptr) {
    std::byte* p = pool_->get(n);
    pooled_.emplace_back(p, n);
    return p;
  }
  scratch_.emplace_back(n);
  return scratch_.back().data();
}

CollSchedule::~CollSchedule() {
  for (const auto& [p, n] : pooled_) pool_->put(p, n);
}

std::byte* ScratchPool::get(std::size_t n) {
  auto it = free_.find(n);
  if (it != free_.end() && !it->second.empty()) {
    std::byte* p = it->second.back();
    it->second.pop_back();
    std::memset(p, 0, n);  // scratch is zero-filled, reused or fresh
    return p;
  }
  blocks_.push_back(std::make_unique<std::byte[]>(n));  // value-init: zeroed
  return blocks_.back().get();
}

void ScratchPool::put(std::byte* p, std::size_t n) { free_[n].push_back(p); }

}  // namespace ib12x::mvx::coll
