// The compiled form of a collective: a small DAG of rounds.
//
// A builder (coll/builders.cpp) translates one collective call into a
// CollSchedule at the moment the collective starts; the CollEngine then
// executes it incrementally as the underlying transfers complete.  A *round*
// is the engine's unit of synchronization: its ops are issued in listed
// order (local ops — reduce_local / copy / cpu — execute inline, isend /
// irecv post to the endpoint), and the round completes when every posted
// transfer has completed.  A round becomes eligible the moment all rounds in
// its `deps` list are complete, so independent chains — the multi-lane
// decomposition's per-lane pipelines — progress without synchronizing with
// each other, while a `barrier_round` (a round depending on every currently
// known round) joins the whole DAG.
//
// The schedule owns its scratch memory (accumulators, pack buffers): user
// buffers must stay valid until the collective completes, exactly as MPI
// requires, but nothing in a schedule refers to the stack frame that built
// it, which is what lets a non-blocking collective outlive its initiating
// call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "mvx/datatype.hpp"
#include "sim/time.hpp"

namespace ib12x::mvx::coll {

/// Per-rank recycling arena for schedule scratch blocks.  A schedule returns
/// its blocks on destruction and later schedules reuse them (exact-size LIFO
/// buckets), so a rank's collective staging addresses stabilize after the
/// first collective of each size — real MPI libraries pool collective
/// staging for exactly this reason: it keeps the registration cache warm.
/// It is also what makes repeated runs bit-reproducible: fresh malloc per
/// collective would let the host allocator decide whether a new block lands
/// on a previously pinned (and still cached) address, and that decision is
/// not stable across two runs in one process.
class ScratchPool {
 public:
  /// Returns a zero-filled block of exactly `n` bytes, reusing a returned
  /// block of the same size when one exists (LIFO).
  std::byte* get(std::size_t n);
  /// Hands a block obtained from get(n) back for reuse.
  void put(std::byte* p, std::size_t n);

 private:
  std::vector<std::unique_ptr<std::byte[]>> blocks_;     ///< owns every block
  std::map<std::size_t, std::vector<std::byte*>> free_;  ///< size -> LIFO free list
};

struct CollOp {
  enum class Kind : std::uint8_t {
    Isend,        ///< post a Collective-marked send (peer = world rank)
    Irecv,        ///< post a receive on the collective context
    ReduceLocal,  ///< dst[i] = redop(dst[i], src[i]) elementwise
    Copy,         ///< memcpy dst <- src (no CPU charge; pair with Cpu to bill)
    Cpu,          ///< charge `cpu` of host time to the executing context
  };

  Kind kind = Kind::Copy;
  int peer = -1;             ///< world rank (Isend/Irecv)
  int tag = 0;               ///< full wire tag (Isend/Irecv)
  int lane = -1;             ///< rail pin for multi-lane transfers; -1 = policy decides
  const void* src = nullptr; ///< Isend / Copy / ReduceLocal input
  void* dst = nullptr;       ///< Irecv / Copy destination, ReduceLocal accumulator
  std::int64_t bytes = 0;    ///< Isend/Irecv/Copy byte count
  std::size_t count = 0;     ///< ReduceLocal element count
  Datatype dt{};             ///< ReduceLocal element type
  Op redop = Op::Sum;        ///< ReduceLocal operator
  sim::Time cpu = 0;         ///< Cpu charge
};

struct CollRound {
  std::vector<CollOp> ops;
  std::vector<int> deps;  ///< indices of rounds that must complete first
};

class CollSchedule {
 public:
  CollSchedule() = default;
  CollSchedule(CollSchedule&&) noexcept = default;
  CollSchedule& operator=(CollSchedule&&) noexcept = default;
  ~CollSchedule();  ///< returns pooled scratch blocks (no-op if moved-from)

  /// Appends an empty round; `deps` lists prerequisite round indices
  /// (pass {} for a DAG root, or {prev} to chain).  Returns its index.
  int add_round(std::vector<int> deps = {});

  /// Appends a round depending on *every* round added so far — the
  /// barrier_round primitive joining all open chains.
  int add_barrier_round();

  // ---- op emitters (append to round `r`) ----
  void isend(int r, int peer_world, int tag, const void* src, std::int64_t bytes, int lane = -1);
  void irecv(int r, int peer_world, int tag, void* dst, std::int64_t bytes, int lane = -1);
  void reduce_local(int r, Op redop, Datatype dt, void* inout, const void* in, std::size_t count);
  void copy(int r, void* dst, const void* src, std::int64_t bytes);
  void cpu(int r, sim::Time t);

  /// Allocates `n` bytes of zero-filled scratch owned by (and living as long
  /// as) the schedule.  Addresses are stable across later allocations.  With
  /// a pool attached the block is leased from it and returned at schedule
  /// destruction; otherwise the schedule mallocs privately (test-built
  /// schedules without a BuildCtx).
  std::byte* scratch(std::size_t n);

  /// Attaches the per-rank recycling pool; must precede any scratch() call.
  void set_scratch_pool(ScratchPool* p) { pool_ = p; }

  [[nodiscard]] std::size_t round_count() const { return rounds_.size(); }
  [[nodiscard]] const std::vector<CollRound>& rounds() const { return rounds_; }

  int ctx = 0;                        ///< context id for every posted transfer
  std::function<void()> on_complete;  ///< run when the schedule finishes (tag-slot release)

 private:
  std::vector<CollRound> rounds_;
  ScratchPool* pool_ = nullptr;
  std::vector<std::pair<std::byte*, std::size_t>> pooled_;  // leased blocks to return
  std::deque<std::vector<std::byte>> scratch_;  // pool-less fallback: stable addresses
};

}  // namespace ib12x::mvx::coll
