// Collective algorithm registry and selection table.
//
// Every collective has one or more registered *builders* (coll/builders.cpp)
// that compile a call into a CollSchedule.  This module owns the choice of
// builder: the per-collective tuning knobs that used to live loose in
// Config (AlltoallAlgo / AllreduceAlgo and the Auto crossovers measured in
// bench/ablation_coll_algos) plus the multi-lane decomposition knobs, and a
// select() keyed on (collective, p, bytes) that applies the MVAPICH-era
// crossover rules:
//
//   * alltoall — Bruck below bruck_threshold per block (log p larger
//     messages beat p-1 small ones), pairwise exchange above;
//   * allreduce — latency-optimal recursive doubling for short vectors
//     (power-of-two p), bandwidth-optimal Rabenseifner (reduce-scatter +
//     allgather) at/above rabenseifner_threshold, reduce+bcast fallback;
//   * bcast / allreduce multi-lane — when `lanes` enables it and the
//     payload is at least lane_threshold, split into per-rail lanes each
//     running the base algorithm concurrently (Träff-style decomposition).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ib12x::mvx::coll {

class CollSchedule;
struct BuildCtx;

enum class AlltoallAlgo { Auto, Pairwise, Bruck };
enum class AllreduceAlgo { Auto, RecursiveDoubling, ReduceBcast, Rabenseifner, MultiLane };
enum class BcastAlgo { Auto, Binomial, MultiLane };

/// Per-collective tuning: algorithm forcing plus the Auto crossovers.
struct Tuning {
  AlltoallAlgo alltoall_algo = AlltoallAlgo::Auto;
  AllreduceAlgo allreduce_algo = AllreduceAlgo::Auto;
  BcastAlgo bcast_algo = BcastAlgo::Auto;

  /// Auto crossovers (measured in bench/ablation_coll_algos): Bruck for
  /// alltoall blocks below bruck_threshold; Rabenseifner for allreduce
  /// vectors at/above rabenseifner_threshold bytes.
  std::int64_t bruck_threshold = 512;
  std::int64_t rabenseifner_threshold = 128 * 1024;

  /// Multi-lane decomposition width: 1 = off (default), 0 = one lane per
  /// rail, n > 1 = exactly n lanes (clamped to the rail count).  Auto
  /// selection only engages lanes for payloads >= lane_threshold.
  int lanes = 1;
  std::int64_t lane_threshold = 256 * 1024;
};

enum class CollKind {
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Gather,
  Gatherv,
  Scatter,
  Allgather,
  Allgatherv,
  Alltoall,
  Alltoallv,
  ReduceScatterBlock,
  Scan,
};

/// One registered algorithm: a name (for benches/tests/introspection) and
/// the builder that compiles a call into a schedule.
struct AlgoEntry {
  const char* name;
  CollSchedule (*build)(const BuildCtx&);
};

/// All algorithms registered for `kind`, selection-order first.
struct AlgoList {
  const AlgoEntry* entries;
  std::size_t count;
};
AlgoList algorithms(CollKind kind);

/// Picks the builder for one call.  `total_bytes` is the per-rank payload
/// (block size for alltoall), `count` the element count (Rabenseifner needs
/// count >= p), `nrails` the rail width available for lane pinning.
const AlgoEntry& select(CollKind kind, const Tuning& t, int p, std::int64_t total_bytes,
                        std::size_t count, int nrails);

/// Resolved lane width for a multi-lane schedule under `t` (>= 1).
int lane_width(const Tuning& t, int nrails);

}  // namespace ib12x::mvx::coll
