// Collective tag-space management.
//
// Collectives match internal transfers by tag on the collective context
// (ctx_base + 1).  The old scheme handed every collective one tag,
// `0x40000000 | (seq & 0xffffff)`: after 2^24 collectives the sequence
// wrapped and a tag could cross-match with a transfer of a collective that
// was still in flight.  Overlapping non-blocking collectives make the hazard
// concrete, and the multi-lane builders need several tags per collective
// anyway, so the 24-bit field is now split into
//
//     [ slot : 16 bits ][ index : 8 bits ]
//
// Each *schedule* reserves one slot — a sub-range of 256 tags — for its
// whole lifetime; builders draw per-lane / per-phase tags from the index
// byte.  The slot is a pure function of the per-communicator collective
// sequence number, so every member of the communicator computes identical
// tags without agreement traffic.  Wraparound safety is local: before
// reusing slot s (seq ≥ seq' + 2^16 with schedule seq' still in flight) the
// caller blocks until the old schedule releases it, which cannot mismatch
// tags across ranks because tag values never depend on release order.
#pragma once

#include <cstdint>
#include <vector>

namespace ib12x::mvx::coll {

class TagRing {
 public:
  static constexpr int kSlotBits = 16;
  static constexpr int kIndexBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr int kTagsPerSlot = 1 << kIndexBits;
  static constexpr int kCollectiveBit = 0x40000000;

  struct Block {
    int slot = -1;
    int base = 0;  ///< first tag of the reserved sub-range

    [[nodiscard]] int tag(int index) const;  ///< throws past kTagsPerSlot
  };

  /// The slot the next collective will use (same on every rank at the same
  /// collective count).
  [[nodiscard]] int next_slot() const { return static_cast<int>(seq_ % kSlots); }

  /// True if `next_slot()` is still held by an in-flight schedule; the
  /// caller must wait for that schedule before reserving.
  [[nodiscard]] bool next_busy() const;

  /// Reserves the next slot (must not be busy) and advances the sequence.
  Block reserve();

  /// Releases a reserved slot (called when its schedule completes).
  void release(int slot);

  [[nodiscard]] std::int64_t seq() const { return seq_; }
  [[nodiscard]] int active() const { return active_; }

  /// Test hook: jump the sequence counter (e.g. next to the wrap boundary).
  void set_seq_for_test(std::int64_t s) { seq_ = s; }

 private:
  std::int64_t seq_ = 0;
  int active_ = 0;
  // One bit per slot; 2^16 slots = 8 KiB. Allocated lazily on first reserve
  // so idle communicators (dup/split temporaries) stay cheap.
  std::vector<bool> held_;
  void ensure_held();
};

}  // namespace ib12x::mvx::coll
