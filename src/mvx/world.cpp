#include "mvx/world.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "ib/fault.hpp"
#include "ib/hca.hpp"
#include "ib/topology.hpp"
#include "mvx/coll/engine.hpp"
#include "mvx/conn_manager.hpp"
#include "sim/shard.hpp"
#include "sim/time.hpp"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace ib12x::mvx {

namespace {

/// The pin-down cache models registration reuse by real buffer address, so
/// bit-reproducibility of repeated in-process runs needs the host allocator
/// to place identical allocation sequences identically.  glibc's *dynamic*
/// mmap threshold breaks that: the first free of a >=128 KiB mmap'd block
/// raises the threshold, silently moving later same-sized buffers from mmap
/// to the brk heap — so a second, identical run sees a different aliasing
/// pattern than the first and reg-cache hit counts diverge.  Pinning the
/// threshold at its default disables the adjustment (the placement policy,
/// not the placements, becomes run-invariant).  No-op off glibc.
void pin_host_allocator_policy() {
#if defined(__GLIBC__)
  static const bool once = [] {
    mallopt(M_MMAP_THRESHOLD, 128 * 1024);
    return true;
  }();
  (void)once;
#endif
}

}  // namespace

World::World(ClusterSpec spec, Config cfg) : spec_(spec), cfg_(cfg) {
  pin_host_allocator_policy();
  if (cfg_.ports_per_hca > cfg_.hca.ports) {
    // Make the modelled HCA expose as many ports as the rail layout uses.
    cfg_.hca.ports = cfg_.ports_per_hca;
  }

  // Normalize the topology spec against the cluster shape: auto-derived
  // fat-tree/dragonfly parameters must seat every host port, fixed ones must
  // be big enough.  The normalized spec is written back so config() exposes
  // the derived geometry.
  const int ports_per_node = cfg_.hcas_per_node * cfg_.hca.ports;
  cfg_.topo.min_hosts = spec_.nodes * ports_per_node;
  cfg_.topo = ib::Topology::normalize(cfg_.topo);
  const std::int64_t cap = ib::Topology::capacity_of(cfg_.topo);
  if (cap >= 0 && cap < cfg_.topo.min_hosts) {
    throw std::invalid_argument(
        "Config: topo shape seats " + std::to_string(cap) + " host ports but the cluster needs " +
        std::to_string(cfg_.topo.min_hosts) +
        " (nodes * hcas_per_node * hca.ports); raise the fixed shape parameters "
        "(topo.fattree_k / topo.df_*) or leave them 0 to auto-derive");
  }

  // VCI knobs: fail fast on shapes the model cannot represent.
  if (cfg_.vci.count < 1 || cfg_.vci.count > kMaxVcis) {
    throw std::invalid_argument(
        "Config: vci.count = " + std::to_string(cfg_.vci.count) +
        " is out of range: each rank hosts between 1 and " + std::to_string(kMaxVcis) +
        " virtual communication interfaces.  Supported combinations: 1 <= vci.count <= " +
        std::to_string(kMaxVcis));
  }
  if (cfg_.vci.threads < 1) {
    throw std::invalid_argument(
        "Config: vci.threads = " + std::to_string(cfg_.vci.threads) +
        " is out of range: every rank needs at least its main thread.  Supported "
        "combinations: vci.threads >= 1");
  }
  if ((cfg_.vci.count > 1 || cfg_.vci.threads > 1) && cfg_.use_rdma_fast_path) {
    throw std::invalid_argument(
        "Config: vci.count = " + std::to_string(cfg_.vci.count) +
        " / vci.threads = " + std::to_string(cfg_.vci.threads) +
        " conflicts with use_rdma_fast_path = true: the polled ring is a "
        "single-channel resource pinned to rail 0 and cannot be sliced per VCI.  "
        "Supported combinations: VCIs with use_rdma_fast_path = false, or the "
        "fast path with vci.count = 1 and vci.threads = 1");
  }
  if (cfg_.vci.count > 1) {
    if (cfg_.use_srq) {
      if (cfg_.srq_pool_slots / std::max(1, cfg_.rails() * cfg_.vci.count) < 1) {
        throw std::invalid_argument(
            "Config: vci.count = " + std::to_string(cfg_.vci.count) +
            " conflicts with srq_pool_slots = " + std::to_string(cfg_.srq_pool_slots) +
            ": splitting the SRQ arena over " +
            std::to_string(cfg_.rails() * cfg_.vci.count) +
            " rail slices (rails() * vci.count) rounds the per-rail credit share "
            "to zero.  Supported combinations: srq_pool_slots >= rails() * "
            "vci.count, fewer VCIs, or use_srq = false");
      }
    } else if (cfg_.eager_credits / cfg_.vci.count < 1) {
      throw std::invalid_argument(
          "Config: vci.count = " + std::to_string(cfg_.vci.count) +
          " conflicts with eager_credits = " + std::to_string(cfg_.eager_credits) +
          ": splitting the per-rail credit window over the VCIs rounds each "
          "slice to zero.  Supported combinations: eager_credits >= vci.count, "
          "or fewer VCIs");
    }
  }

  // Rendezvous-protocol knobs: fail fast on nonsense arm spaces.
  if (cfg_.rndv.epsilon < 0.0 || cfg_.rndv.epsilon > 1.0) {
    throw std::invalid_argument(
        "Config: rndv.epsilon = " + std::to_string(cfg_.rndv.epsilon) +
        " is out of range: the exploration rate is a probability.  Supported "
        "combinations: 0 <= rndv.epsilon <= 1");
  }
  if (cfg_.rndv.max_width < 0 || cfg_.rndv.max_width > cfg_.rails()) {
    throw std::invalid_argument(
        "Config: rndv.max_width = " + std::to_string(cfg_.rndv.max_width) +
        " conflicts with rails() = " + std::to_string(cfg_.rails()) +
        ": a stripe cannot spread over more rails than a peer pair has.  "
        "Supported combinations: 0 (no cap) <= rndv.max_width <= rails()");
  }

  // Parallel engine: min(sim_shards, nodes) shards.  Nodes are placed whole
  // (endpoints, shm channels, HCAs of one node always share a shard, so only
  // fabric traffic crosses shards); *which* shard is the placement policy
  // below.  Shard 0 is sim_ itself: with one shard nothing below ever
  // branches off the legacy path.
  const int shards = std::min(std::max(cfg_.sim_shards, 1), std::max(spec_.nodes, 1));
  using SP = Config::ShardPlacement;
  SP place = cfg_.shard_placement;
  if (place == SP::Auto) {
    // On a crossbar every placement is equivalent (one switch, uniform
    // distance) — RoundRobin keeps legacy sharded runs bit-identical.  The
    // multi-switch shapes default to fabric locality.
    place = cfg_.topo.shape == ib::TopoShape::Crossbar ? SP::RoundRobin : SP::Locality;
  }
  sims_.push_back(&sim_);
  if (shards > 1) {
    if (cfg_.lazy_connect) {
      throw std::invalid_argument(
          "Config: sim_shards = " + std::to_string(cfg_.sim_shards) +
          " conflicts with lazy_connect = true: the parallel engine needs every "
          "QP/rail wired single-threaded before the shard threads start, but "
          "lazy_connect wires pairs mid-run on first contact.  Supported "
          "combinations: sim_shards > 1 with lazy_connect = false, or "
          "lazy_connect = true with sim_shards = 1");
    }
    if (cfg_.topo.contention) {
      if (cfg_.topo.shape == ib::TopoShape::Crossbar) {
        throw std::invalid_argument(
            "Config: topo.contention = true with topo.shape = Crossbar conflicts "
            "with sim_shards = " + std::to_string(cfg_.sim_shards) +
            ": a single-switch fabric serializes every hop through one arbiter "
            "and cannot be partitioned across shards.  Supported combinations: "
            "contention on FatTree/Dragonfly with sim_shards > 1, or a Crossbar "
            "with sim_shards = 1");
      }
      if (place == SP::RoundRobin) {
        throw std::invalid_argument(
            "Config: shard_placement = RoundRobin conflicts with topo.contention "
            "= true and sim_shards = " + std::to_string(cfg_.sim_shards) +
            ": hop events mutate switch queue state, so every host must share a "
            "shard with its edge switch.  Use shard_placement = Locality (or "
            "Auto, which picks it on switched shapes)");
      }
    }
  }

  fabric_ = std::make_unique<ib::Fabric>(sim_, cfg_.hca, cfg_.fabric, cfg_.topo);

  if (shards > 1) {
    for (int s = 1; s < shards; ++s) {
      shard_sims_.push_back(std::make_unique<sim::Simulator>());
      sims_.push_back(shard_sims_.back().get());
    }
    // Conservative lookahead: one wire + switch hop is the minimum virtual
    // time any cross-shard interaction spans (see Port::stage_uplink and
    // Switch::hop).
    engine_ = std::make_unique<sim::ShardEngine>(sims_, fabric_->topology().min_hop_latency());
  }

  // Node -> shard placement.  LIDs are assigned in node order below, so node
  // n's ports occupy lids [n*ports_per_node, (n+1)*ports_per_node).
  node_shard_.assign(static_cast<std::size_t>(std::max(spec_.nodes, 1)), 0);
  if (shards > 1) {
    if (place == SP::RoundRobin) {
      for (int n = 0; n < spec_.nodes; ++n) node_shard_[static_cast<std::size_t>(n)] = n % shards;
    } else {
      // Locality: nodes hanging off the same edge switch (dragonfly router)
      // must land on one shard, and neighbouring switches should too.  LIDs
      // ascend with node index and edge_switch_of is monotone in the lid, so
      // grouping is a single pass: a node opens a new group only when its
      // first port's switch is past every switch the previous nodes touched
      // (a node whose ports straddle two switches fuses them into one group).
      // Groups are then block-partitioned over the shards in order.
      const ib::Topology& topo = fabric_->topology();
      std::vector<int> node_group(static_cast<std::size_t>(spec_.nodes), 0);
      int groups = 0;
      int last_edge = -1;
      for (int n = 0; n < spec_.nodes; ++n) {
        const auto first = static_cast<ib::Lid>(n * ports_per_node);
        const auto last = static_cast<ib::Lid>((n + 1) * ports_per_node - 1);
        const int first_edge = topo.edge_switch_of(first);
        if (first_edge > last_edge) ++groups;
        node_group[static_cast<std::size_t>(n)] = groups - 1;
        last_edge = std::max(last_edge, topo.edge_switch_of(last));
      }
      for (int n = 0; n < spec_.nodes; ++n) {
        node_shard_[static_cast<std::size_t>(n)] =
            static_cast<int>(static_cast<std::int64_t>(node_group[static_cast<std::size_t>(n)]) *
                             shards / groups);
      }
    }
  }

  node_hcas_.resize(static_cast<std::size_t>(spec_.nodes));
  for (int n = 0; n < spec_.nodes; ++n) {
    for (int h = 0; h < cfg_.hcas_per_node; ++h) {
      node_hcas_[static_cast<std::size_t>(n)].push_back(&fabric_->add_hca(n, shard_sim(n)));
    }
  }

  // Sharded contention mode: each switch's queue state must live on the
  // shard thread of the hosts it serves (the Locality placement above makes
  // the assignment well-defined).
  if (engine_ && fabric_->topology().contention()) {
    std::vector<sim::Simulator*> sim_of_lid;
    sim_of_lid.reserve(static_cast<std::size_t>(spec_.nodes * ports_per_node));
    for (int n = 0; n < spec_.nodes; ++n) {
      for (int p = 0; p < ports_per_node; ++p) sim_of_lid.push_back(&shard_sim(n));
    }
    fabric_->topology().assign_switch_sims(sim_of_lid, sims_);
  }

  if (cfg_.fault.enabled) {
    ib::FaultPlan::Params fp;
    fp.seed = cfg_.fault.seed;
    fp.msg_error_rate = cfg_.fault.msg_error_rate;
    fp.ack_drop_fraction = cfg_.fault.ack_drop_fraction;
    fp.retry_latency = cfg_.fault.retry_latency;
    auto plan = std::make_unique<ib::FaultPlan>(fp);
    for (const Config::FaultConfig::LinkFlap& f : cfg_.fault.link_flaps) {
      ib::Hca* hca = node_hcas_.at(static_cast<std::size_t>(f.node))
                         .at(static_cast<std::size_t>(f.hca));
      plan->add_link_event(f.down_at, hca, f.port, /*up=*/false);
      if (f.up_at > f.down_at) plan->add_link_event(f.up_at, hca, f.port, /*up=*/true);
    }
    if (engine_) {
      plan->enable_sharded_streams(fabric_->hca_count());
      plan->arm_sharded(sims_);
    } else {
      plan->arm(sim_);
    }
    ib::FaultPlan* raw = plan.get();
    fabric_->attach_fault(std::move(plan));
    tel_.gauge("fault.injected_errors",
               [raw] { return static_cast<double>(raw->injected_errors()); });
    tel_.gauge("fault.link_transitions",
               [raw] { return static_cast<double>(raw->link_transitions()); });
    tel_.gauge("fault.rnr_drops", [raw] { return static_cast<double>(raw->rnr_drops()); });
  }

  for (int r = 0; r < spec_.total_ranks(); ++r) {
    const int node = r / spec_.procs_per_node;
    eps_.push_back(std::make_unique<Endpoint>(shard_sim(node), r, node,
                                              node_hcas_[static_cast<std::size_t>(node)], cfg_,
                                              tel_));
  }

  // Hardware-layer gauges, sampled when a telemetry snapshot is taken.
  for (auto& node : node_hcas_) {
    for (ib::Hca* hca : node) {
      tel_.gauge("ib.send_engine_busy_us",
                 [hca] { return sim::to_s(hca->total_send_engine_busy()) * 1e6; });
      tel_.gauge("ib.qp_send_depth",
                 [hca] { return static_cast<double>(hca->total_send_queue_depth()); });
      tel_.gauge("ib.wqes_serviced",
                 [hca] { return static_cast<double>(hca->total_wqes_serviced()); });
      tel_.gauge("ib.bytes_tx", [hca] { return static_cast<double>(hca->total_bytes_tx()); });
      tel_.gauge("hca.doorbells",
                 [hca] { return static_cast<double>(hca->total_doorbells()); });
    }
  }

  // Switched-fabric telemetry.  Registered only when the topology actually
  // routes (multi-switch shape) or arbitrates (contention), so the default
  // crossbar-without-contention snapshot stays byte-identical to previous
  // releases.  The queue/stall counters move only in contention mode; the
  // hops histogram counts on every shape.
  if (cfg_.topo.shape != ib::TopoShape::Crossbar || cfg_.topo.contention) {
    ib::Topology* topo = &fabric_->topology();
    tel_.gauge("fabric.switch.count",
               [topo] { return static_cast<double>(topo->switch_count()); });
    tel_.gauge("fabric.switch.routed_pkts",
               [topo] { return static_cast<double>(topo->total_routed_pkts()); });
    tel_.gauge("fabric.switch.stalls",
               [topo] { return static_cast<double>(topo->total_stalls()); });
    tel_.gauge("fabric.switch.drops",
               [topo] { return static_cast<double>(topo->total_drops()); });
    tel_.gauge("fabric.switch.queue_hwm_bytes",
               [topo] { return static_cast<double>(topo->max_queue_hwm_bytes()); });
    for (int h = 1; h <= ib::kMaxRouteHops; ++h) {
      tel_.gauge("fabric.switch.hops.h" + std::to_string(h), [this, h] {
        std::uint64_t n = 0;
        for (const auto& node : node_hcas_) {
          for (const ib::Hca* hca : node) n += hca->total_hops_taken(h);
        }
        return static_cast<double>(n);
      });
    }
  }

  // Event-kernel self-telemetry, summed over every shard (size-1 sums keep
  // the unsharded values bit-identical to the legacy single-simulator
  // gauges).  Gauges derived from wall-clock time live under "sim.wall." so
  // determinism checks can exclude them when comparing snapshots of two runs
  // (virtual-time state must match bit for bit; host speed obviously need
  // not).  With the parallel engine the run phases overlap in wall time, so
  // rate gauges divide by the *slowest* shard's wall time.
  auto sum_u64 = [this](std::uint64_t (sim::Simulator::*f)() const) {
    std::uint64_t n = 0;
    for (const sim::Simulator* s : sims_) n += (s->*f)();
    return static_cast<double>(n);
  };
  auto max_wall = [this] {
    double w = 0.0;
    for (const sim::Simulator* s : sims_) w = std::max(w, s->run_wall_seconds());
    return w;
  };
  tel_.gauge("sim.events", [sum_u64] { return sum_u64(&sim::Simulator::events_processed); });
  tel_.gauge("sim.lane_events", [sum_u64] { return sum_u64(&sim::Simulator::lane_events); });
  tel_.gauge("sim.heap_events", [sum_u64] { return sum_u64(&sim::Simulator::heap_events); });
  tel_.gauge("sim.kernel_allocs",
             [sum_u64] { return sum_u64(&sim::Simulator::kernel_allocs); });
  tel_.gauge("sim.allocs_per_event", [sum_u64] {
    const double events = sum_u64(&sim::Simulator::events_processed);
    return events == 0.0 ? 0.0 : sum_u64(&sim::Simulator::kernel_allocs) / events;
  });
  tel_.gauge("sim.fiber_switches",
             [sum_u64] { return sum_u64(&sim::Simulator::fiber_switches); });
  tel_.gauge("sim.wall.run_seconds", max_wall);
  tel_.gauge("sim.wall.events_per_sec", [sum_u64, max_wall] {
    const double w = max_wall();
    return w == 0.0 ? 0.0 : sum_u64(&sim::Simulator::events_processed) / w;
  });
  tel_.gauge("sim.wall.switches_per_sec", [sum_u64, max_wall] {
    const double w = max_wall();
    return w == 0.0 ? 0.0 : sum_u64(&sim::Simulator::fiber_switches) / w;
  });

  // Parallel-engine telemetry (registered only when sharding is active, so
  // unsharded snapshots stay byte-identical to previous releases).  The
  // barrier waits are wall-clock quantities and live under a ".wall."
  // segment for the same exclusion reason as above.
  if (engine_) {
    sim::ShardEngine* eng = engine_.get();
    tel_.gauge("sim.shard.count", [eng] { return static_cast<double>(eng->shards()); });
    tel_.gauge("sim.shard.epochs", [eng] { return static_cast<double>(eng->epochs()); });
    tel_.gauge("sim.shard.cross_events",
               [eng] { return static_cast<double>(eng->cross_events()); });
    tel_.gauge("sim.shard.mailbox_hwm",
               [eng] { return static_cast<double>(eng->mailbox_high_water()); });
    for (int s = 0; s < engine_->shards(); ++s) {
      tel_.gauge("sim.shard.wall.barrier_ns.s" + std::to_string(s),
                 [eng, s] { return static_cast<double>(eng->barrier_wait_ns(s)); });
    }
  }

  if (cfg_.lazy_connect) {
    // Lazy wiring: no pair is built here.  Each endpoint's connection
    // manager drives wire_pair on first contact, after the modelled
    // handshake; wire_pair marks both sides Ready (flushing their queues).
    for (int r = 0; r < spec_.total_ranks(); ++r) {
      Endpoint* ep = eps_[static_cast<std::size_t>(r)].get();
      ep->conn().set_wire_fn([this, r](int peer) { wire_pair(r, peer); });
    }
  } else {
    // Legacy eager wiring: all pairs at startup, O(ranks²) QPs.
    for (int i = 0; i < spec_.total_ranks(); ++i) {
      for (int j = i + 1; j < spec_.total_ranks(); ++j) {
        wire_pair(i, j);
      }
    }
  }
}

void World::wire_pair(int i, int j) {
  Endpoint& a = *eps_.at(static_cast<std::size_t>(i));
  Endpoint& b = *eps_.at(static_cast<std::size_t>(j));
  // Idempotent: simultaneous lazy connects resolve to one wiring (the second
  // handshake finds both sides already Ready and only flushes).
  if (a.conn().ready(j)) return;
  if (a.node() == b.node()) {
    Endpoint::connect_shm(a, b);
  } else {
    Endpoint::connect_net(a, b);
  }
  a.conn().mark_ready(j);
  b.conn().mark_ready(i);
}

World::~World() = default;

void World::run(const std::function<void(Communicator&)>& rank_main) {
  if (engine_) {
    run_sharded(rank_main);
    return;
  }
  sim::ProcessSet procs(sim_);
  std::vector<int> group(static_cast<std::size_t>(ranks()));
  std::iota(group.begin(), group.end(), 0);

  const int nthreads = std::max(1, cfg_.vci.threads);
  for (int r = 0; r < ranks(); ++r) {
    Endpoint* ep = eps_[static_cast<std::size_t>(r)].get();
    ep->coll_engine().begin_run();
    if (nthreads == 1) {
      procs.add("rank" + std::to_string(r), [this, ep, group, &rank_main](sim::Process& p) {
        ep->attach_process(&p);
        Communicator comm(this, ep, group, ep->rank(), /*ctx_base=*/0);
        rank_main(comm);
        // Rank code is done: let the collective-progress fiber drain any
        // schedules still in flight, then exit.
        ep->coll_engine().request_shutdown();
      });
    } else {
      // Multi-threaded rank: every modeled app thread is its own fiber, all
      // running rank_main against the shared endpoint (user code branches on
      // comm.thread_id()).  The last thread out shuts the collective engine.
      auto remaining = std::make_shared<int>(nthreads);
      for (int t = 0; t < nthreads; ++t) {
        procs.add("rank" + std::to_string(r) + ".t" + std::to_string(t),
                  [this, ep, group, t, remaining, &rank_main](sim::Process& p) {
                    if (t == 0) ep->attach_process(&p);
                    ep->register_thread(&p, t);
                    Communicator comm(this, ep, group, ep->rank(), /*ctx_base=*/0);
                    rank_main(comm);
                    if (--*remaining == 0) ep->coll_engine().request_shutdown();
                  });
      }
    }
    // The rank's collective-progress fiber: models the asynchronous progress
    // thread that advances in-flight collective schedules while the rank's
    // own fiber computes or waits.
    procs.add("collprog" + std::to_string(r), [ep](sim::Process& p) {
      ep->coll_engine().progress_main(p);
    });
  }
  procs.run_all(sim_.now());
  end_time_ = sim_.now();
}

void World::run_sharded(const std::function<void(Communicator&)>& rank_main) {
  // One ProcessSet per shard: every rank's fibers are owned (created, run,
  // torn down) by the shard thread its node lives on.  The post-run failure
  // and deadlock checks walk the *global* add order so the first error
  // reported matches what the single-threaded run_all would have raised.
  std::vector<std::unique_ptr<sim::ProcessSet>> sets;
  sets.reserve(sims_.size());
  for (sim::Simulator* s : sims_) sets.push_back(std::make_unique<sim::ProcessSet>(*s));

  std::vector<int> group(static_cast<std::size_t>(ranks()));
  std::iota(group.begin(), group.end(), 0);
  std::vector<sim::Process*> order;
  order.reserve(static_cast<std::size_t>(ranks()) * 2);

  const int nthreads = std::max(1, cfg_.vci.threads);
  for (int r = 0; r < ranks(); ++r) {
    const int node = r / spec_.procs_per_node;
    sim::ProcessSet& procs = *sets[static_cast<std::size_t>(node_shard(node))];
    Endpoint* ep = eps_[static_cast<std::size_t>(r)].get();
    ep->coll_engine().begin_run();
    if (nthreads == 1) {
      order.push_back(
          &procs.add("rank" + std::to_string(r), [this, ep, group, &rank_main](sim::Process& p) {
            ep->attach_process(&p);
            Communicator comm(this, ep, group, ep->rank(), /*ctx_base=*/0);
            rank_main(comm);
            ep->coll_engine().request_shutdown();
          }));
    } else {
      auto remaining = std::make_shared<int>(nthreads);
      for (int t = 0; t < nthreads; ++t) {
        order.push_back(&procs.add("rank" + std::to_string(r) + ".t" + std::to_string(t),
                                   [this, ep, group, t, remaining, &rank_main](sim::Process& p) {
                                     if (t == 0) ep->attach_process(&p);
                                     ep->register_thread(&p, t);
                                     Communicator comm(this, ep, group, ep->rank(),
                                                       /*ctx_base=*/0);
                                     rank_main(comm);
                                     if (--*remaining == 0) ep->coll_engine().request_shutdown();
                                   }));
      }
    }
    order.push_back(&procs.add("collprog" + std::to_string(r), [ep](sim::Process& p) {
      ep->coll_engine().progress_main(p);
    }));
  }

  // Clocks may differ across shards after a previous run (each stops at its
  // own last event); start the next wave at the global frontier so no shard
  // schedules into its past.
  sim::Time start = 0;
  for (const sim::Simulator* s : sims_) start = std::max(start, s->now());
  for (auto& set : sets) set->start_all(start);

  engine_->run();

  bool all_done = true;
  std::string stuck;
  for (sim::Process* p : order) {
    if (!p->finished()) {
      all_done = false;
      if (!stuck.empty()) stuck += ", ";
      stuck += p->name();
    }
  }
  for (sim::Process* p : order) p->rethrow_if_failed();
  if (!all_done) {
    throw std::runtime_error(
        "World::run: deadlock — event queues empty but processes blocked: " + stuck);
  }
  sim::Time end = 0;
  for (const sim::Simulator* s : sims_) end = std::max(end, s->now());
  end_time_ = end;
}

}  // namespace ib12x::mvx
