#include "mvx/world.hpp"

#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "ib/fault.hpp"
#include "ib/hca.hpp"
#include "mvx/coll/engine.hpp"
#include "mvx/conn_manager.hpp"
#include "sim/time.hpp"

namespace ib12x::mvx {

World::World(ClusterSpec spec, Config cfg) : spec_(spec), cfg_(cfg) {
  if (cfg_.ports_per_hca > cfg_.hca.ports) {
    // Make the modelled HCA expose as many ports as the rail layout uses.
    cfg_.hca.ports = cfg_.ports_per_hca;
  }
  fabric_ = std::make_unique<ib::Fabric>(sim_, cfg_.hca, cfg_.fabric);

  node_hcas_.resize(static_cast<std::size_t>(spec_.nodes));
  for (int n = 0; n < spec_.nodes; ++n) {
    for (int h = 0; h < cfg_.hcas_per_node; ++h) {
      node_hcas_[static_cast<std::size_t>(n)].push_back(&fabric_->add_hca(n));
    }
  }

  if (cfg_.fault.enabled) {
    ib::FaultPlan::Params fp;
    fp.seed = cfg_.fault.seed;
    fp.msg_error_rate = cfg_.fault.msg_error_rate;
    fp.ack_drop_fraction = cfg_.fault.ack_drop_fraction;
    fp.retry_latency = cfg_.fault.retry_latency;
    auto plan = std::make_unique<ib::FaultPlan>(fp);
    for (const Config::FaultConfig::LinkFlap& f : cfg_.fault.link_flaps) {
      ib::Hca* hca = node_hcas_.at(static_cast<std::size_t>(f.node))
                         .at(static_cast<std::size_t>(f.hca));
      plan->add_link_event(f.down_at, hca, f.port, /*up=*/false);
      if (f.up_at > f.down_at) plan->add_link_event(f.up_at, hca, f.port, /*up=*/true);
    }
    plan->arm(sim_);
    ib::FaultPlan* raw = plan.get();
    fabric_->attach_fault(std::move(plan));
    tel_.gauge("fault.injected_errors",
               [raw] { return static_cast<double>(raw->injected_errors()); });
    tel_.gauge("fault.link_transitions",
               [raw] { return static_cast<double>(raw->link_transitions()); });
    tel_.gauge("fault.rnr_drops", [raw] { return static_cast<double>(raw->rnr_drops()); });
  }

  for (int r = 0; r < spec_.total_ranks(); ++r) {
    const int node = r / spec_.procs_per_node;
    eps_.push_back(std::make_unique<Endpoint>(sim_, r, node,
                                              node_hcas_[static_cast<std::size_t>(node)], cfg_,
                                              tel_));
  }

  // Hardware-layer gauges, sampled when a telemetry snapshot is taken.
  for (auto& node : node_hcas_) {
    for (ib::Hca* hca : node) {
      tel_.gauge("ib.send_engine_busy_us",
                 [hca] { return sim::to_s(hca->total_send_engine_busy()) * 1e6; });
      tel_.gauge("ib.qp_send_depth",
                 [hca] { return static_cast<double>(hca->total_send_queue_depth()); });
      tel_.gauge("ib.wqes_serviced",
                 [hca] { return static_cast<double>(hca->total_wqes_serviced()); });
      tel_.gauge("ib.bytes_tx", [hca] { return static_cast<double>(hca->total_bytes_tx()); });
      tel_.gauge("hca.doorbells",
                 [hca] { return static_cast<double>(hca->total_doorbells()); });
    }
  }

  // Event-kernel self-telemetry.  Gauges derived from wall-clock time live
  // under "sim.wall." so determinism checks can exclude them when comparing
  // snapshots of two runs (virtual-time state must match bit for bit; host
  // speed obviously need not).
  tel_.gauge("sim.events", [this] { return static_cast<double>(sim_.events_processed()); });
  tel_.gauge("sim.lane_events", [this] { return static_cast<double>(sim_.lane_events()); });
  tel_.gauge("sim.heap_events", [this] { return static_cast<double>(sim_.heap_events()); });
  tel_.gauge("sim.kernel_allocs", [this] { return static_cast<double>(sim_.kernel_allocs()); });
  tel_.gauge("sim.allocs_per_event", [this] { return sim_.allocs_per_event(); });
  tel_.gauge("sim.fiber_switches",
             [this] { return static_cast<double>(sim_.fiber_switches()); });
  tel_.gauge("sim.wall.run_seconds", [this] { return sim_.run_wall_seconds(); });
  tel_.gauge("sim.wall.events_per_sec", [this] { return sim_.events_per_wall_sec(); });
  tel_.gauge("sim.wall.switches_per_sec", [this] { return sim_.switches_per_wall_sec(); });

  if (cfg_.lazy_connect) {
    // Lazy wiring: no pair is built here.  Each endpoint's connection
    // manager drives wire_pair on first contact, after the modelled
    // handshake; wire_pair marks both sides Ready (flushing their queues).
    for (int r = 0; r < spec_.total_ranks(); ++r) {
      Endpoint* ep = eps_[static_cast<std::size_t>(r)].get();
      ep->conn().set_wire_fn([this, r](int peer) { wire_pair(r, peer); });
    }
  } else {
    // Legacy eager wiring: all pairs at startup, O(ranks²) QPs.
    for (int i = 0; i < spec_.total_ranks(); ++i) {
      for (int j = i + 1; j < spec_.total_ranks(); ++j) {
        wire_pair(i, j);
      }
    }
  }
}

void World::wire_pair(int i, int j) {
  Endpoint& a = *eps_.at(static_cast<std::size_t>(i));
  Endpoint& b = *eps_.at(static_cast<std::size_t>(j));
  // Idempotent: simultaneous lazy connects resolve to one wiring (the second
  // handshake finds both sides already Ready and only flushes).
  if (a.conn().ready(j)) return;
  if (a.node() == b.node()) {
    Endpoint::connect_shm(a, b);
  } else {
    Endpoint::connect_net(a, b);
  }
  a.conn().mark_ready(j);
  b.conn().mark_ready(i);
}

World::~World() = default;

void World::run(const std::function<void(Communicator&)>& rank_main) {
  sim::ProcessSet procs(sim_);
  std::vector<int> group(static_cast<std::size_t>(ranks()));
  std::iota(group.begin(), group.end(), 0);

  for (int r = 0; r < ranks(); ++r) {
    Endpoint* ep = eps_[static_cast<std::size_t>(r)].get();
    ep->coll_engine().begin_run();
    procs.add("rank" + std::to_string(r), [this, ep, group, &rank_main](sim::Process& p) {
      ep->attach_process(&p);
      Communicator comm(this, ep, group, ep->rank(), /*ctx_base=*/0);
      rank_main(comm);
      // Rank code is done: let the collective-progress fiber drain any
      // schedules still in flight, then exit.
      ep->coll_engine().request_shutdown();
    });
    // The rank's collective-progress fiber: models the asynchronous progress
    // thread that advances in-flight collective schedules while the rank's
    // own fiber computes or waits.
    procs.add("collprog" + std::to_string(r), [ep](sim::Process& p) {
      ep->coll_engine().progress_main(p);
    });
  }
  procs.run_all(sim_.now());
  end_time_ = sim_.now();
}

}  // namespace ib12x::mvx
