#include "mvx/datatype.hpp"

#include <algorithm>
#include <stdexcept>

namespace ib12x::mvx {

namespace {

template <typename T>
void apply_arith(Op op, T* inout, const T* in, std::size_t n) {
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] + in[i];
      return;
    case Op::Prod:
      for (std::size_t i = 0; i < n; ++i) inout[i] = inout[i] * in[i];
      return;
    case Op::Max:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::max(inout[i], in[i]);
      return;
    case Op::Min:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::min(inout[i], in[i]);
      return;
    default:
      throw std::invalid_argument("reduce_apply: bitwise op on arithmetic type");
  }
}

template <typename T>
void apply_bits(Op op, T* inout, const T* in, std::size_t n) {
  switch (op) {
    case Op::Band:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] & in[i]);
      return;
    case Op::Bor:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] | in[i]);
      return;
    default:
      apply_arith(op, inout, in, n);
      return;
  }
}

void apply_complex(Op op, std::complex<double>* inout, const std::complex<double>* in,
                   std::size_t n) {
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < n; ++i) inout[i] += in[i];
      return;
    case Op::Prod:
      for (std::size_t i = 0; i < n; ++i) inout[i] *= in[i];
      return;
    default:
      throw std::invalid_argument("reduce_apply: unsupported op for complex");
  }
}

}  // namespace

void reduce_apply(Op op, Datatype dt, void* inout, const void* in, std::size_t count) {
  switch (dt.id) {
    case TypeId::Byte:
      apply_bits(op, static_cast<std::uint8_t*>(inout), static_cast<const std::uint8_t*>(in), count);
      return;
    case TypeId::Int32:
      apply_bits(op, static_cast<std::int32_t*>(inout), static_cast<const std::int32_t*>(in), count);
      return;
    case TypeId::Int64:
      apply_bits(op, static_cast<std::int64_t*>(inout), static_cast<const std::int64_t*>(in), count);
      return;
    case TypeId::Double:
      apply_arith(op, static_cast<double*>(inout), static_cast<const double*>(in), count);
      return;
    case TypeId::Complex:
      apply_complex(op, static_cast<std::complex<double>*>(inout),
                    static_cast<const std::complex<double>*>(in), count);
      return;
  }
  throw std::invalid_argument("reduce_apply: unknown datatype");
}

}  // namespace ib12x::mvx
