// Minimal MPI-style datatypes and reduction operators.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace ib12x::mvx {

enum class TypeId : std::uint8_t { Byte, Int32, Int64, Double, Complex };

struct Datatype {
  TypeId id = TypeId::Byte;
  std::size_t size = 1;  ///< bytes per element
};

inline constexpr Datatype BYTE{TypeId::Byte, 1};
inline constexpr Datatype INT32{TypeId::Int32, 4};
inline constexpr Datatype INT64{TypeId::Int64, 8};
inline constexpr Datatype DOUBLE{TypeId::Double, 8};
inline constexpr Datatype COMPLEX{TypeId::Complex, 16};  ///< std::complex<double>

enum class Op : std::uint8_t { Sum, Prod, Max, Min, Band, Bor };

/// Applies `inout[i] = op(inout[i], in[i])` elementwise for `count` elements
/// of type `dt`.  Byte supports only Band/Bor/Max/Min; Complex only Sum/Prod.
void reduce_apply(Op op, Datatype dt, void* inout, const void* in, std::size_t count);

}  // namespace ib12x::mvx
