// Microbenchmark drivers reproducing the paper's §4.2 test semantics:
//
//   latency   — ping-pong with blocking MPI_Send/MPI_Recv; steady state is
//               measured by skipping warm-up iterations;
//   uni-BW    — "ping-ping": sender issues a 64-deep window of MPI_Isend,
//               receiver window of MPI_Irecv, 1-byte acknowledgment per
//               window;
//   bi-BW     — exchange: both sides issue the window after preposting
//               receives; the peer's messages act as the acknowledgment;
//   alltoall  — Pallas/IMB-style: timed MPI_Alltoall per message size.
//
// A Runner owns one simulated cluster (one configuration); each measurement
// runs the ranks afresh on the same fabric, so state (registration caches,
// QP hand-off) warms up exactly like a long-lived MPI job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/table.hpp"
#include "mvx/mpi.hpp"

namespace ib12x::harness {

struct BenchParams {
  int lat_iters = 100;
  int lat_skip = 20;
  int bw_window = 64;
  int bw_iters = 12;
  int bw_skip = 2;
  int a2a_iters = 20;
  int a2a_skip = 4;
};

class Runner {
 public:
  Runner(mvx::ClusterSpec spec, mvx::Config cfg, BenchParams bp = {})
      : world_(spec, cfg), bp_(bp) {}

  /// One-way ping-pong latency in microseconds (ranks 0 and 1).
  double latency_us(std::int64_t bytes);

  /// Uni-directional windowed bandwidth, MB/s (decimal, as the paper plots).
  double uni_bw_mbs(std::int64_t bytes);

  /// Bi-directional exchange bandwidth, MB/s (sum of both directions).
  double bi_bw_mbs(std::int64_t bytes);

  /// Average MPI_Alltoall completion time in microseconds for `bytes` per
  /// destination, over all ranks of the cluster.
  double alltoall_us(std::int64_t bytes);

  mvx::World& world() { return world_; }

 private:
  mvx::World world_;
  BenchParams bp_;
};

/// Power-of-two sweep helper: {from, 2·from, …, to}.
std::vector<std::int64_t> pow2_sizes(std::int64_t from, std::int64_t to);

/// A world's telemetry registry (counters from every layer, gauges from the
/// HCA model) rendered as a one-column table, one row per metric.
Table telemetry_table(mvx::World& world, std::string title = "per-layer telemetry");

}  // namespace ib12x::harness
