// Plain-text table / CSV emission for the figure-regeneration binaries.
// Each bench prints one table whose rows are message sizes (or process
// counts) and whose columns are the configurations a paper figure compares.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ib12x::harness {

class Table {
 public:
  Table(std::string title, std::string row_header)
      : title_(std::move(title)), row_header_(std::move(row_header)) {}

  void add_column(std::string name) { columns_.push_back(std::move(name)); }

  void add_row(std::string label, std::vector<double> values) {
    rows_.push_back({std::move(label), std::move(values)});
  }

  /// Fixed-width human-readable table.
  void print(std::FILE* out = stdout, int precision = 2) const;

  /// Machine-readable CSV (same content).
  void print_csv(std::FILE* out, int precision = 4) const;

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::string& row_header() const { return row_header_; }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] const std::string& column_label(std::size_t col) const {
    return columns_.at(col);
  }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] double value(std::size_t row, std::size_t col) const {
    return rows_.at(row).values.at(col);
  }
  [[nodiscard]] const std::string& row_label(std::size_t row) const { return rows_.at(row).label; }

 private:
  struct Row {
    std::string label;
    std::vector<double> values;
  };

  std::string title_;
  std::string row_header_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// "1K", "64K", "1M" labels like the paper's figure axes.
std::string size_label(std::int64_t bytes);

/// Prints a `paper vs measured` check line used by EXPERIMENTS.md.
void print_check(const char* what, double measured, double paper_lo, double paper_hi);

}  // namespace ib12x::harness
