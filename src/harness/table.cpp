#include "harness/table.hpp"

#include <algorithm>
#include <cinttypes>

namespace ib12x::harness {

void Table::print(std::FILE* out, int precision) const {
  std::fprintf(out, "\n== %s ==\n", title_.c_str());
  std::size_t label_w = row_header_.size();
  for (const Row& r : rows_) label_w = std::max(label_w, r.label.size());

  std::fprintf(out, "%-*s", static_cast<int>(label_w + 2), row_header_.c_str());
  for (const auto& c : columns_) std::fprintf(out, "%16s", c.c_str());
  std::fputc('\n', out);

  for (const Row& r : rows_) {
    std::fprintf(out, "%-*s", static_cast<int>(label_w + 2), r.label.c_str());
    for (double v : r.values) std::fprintf(out, "%16.*f", precision, v);
    std::fputc('\n', out);
  }
}

void Table::print_csv(std::FILE* out, int precision) const {
  std::fprintf(out, "%s", row_header_.c_str());
  for (const auto& c : columns_) std::fprintf(out, ",%s", c.c_str());
  std::fputc('\n', out);
  for (const Row& r : rows_) {
    std::fprintf(out, "%s", r.label.c_str());
    for (double v : r.values) std::fprintf(out, ",%.*f", precision, v);
    std::fputc('\n', out);
  }
}

std::string size_label(std::int64_t bytes) {
  if (bytes >= (1 << 20) && bytes % (1 << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

void print_check(const char* what, double measured, double paper_lo, double paper_hi) {
  const bool ok = measured >= paper_lo && measured <= paper_hi;
  std::printf("  check %-46s measured %10.2f   paper-band [%.2f, %.2f]   %s\n", what, measured,
              paper_lo, paper_hi, ok ? "OK" : "OUT-OF-BAND");
}

}  // namespace ib12x::harness
