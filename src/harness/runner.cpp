#include "harness/runner.hpp"

#include <algorithm>
#include <stdexcept>

namespace ib12x::harness {

using mvx::BYTE;
using mvx::Communicator;
using mvx::Request;

double Runner::latency_us(std::int64_t bytes) {
  double result = 0;
  const int iters = bp_.lat_iters, skip = bp_.lat_skip;
  world_.run([&](Communicator& c) {
    if (c.rank() > 1) return;
    std::vector<std::byte> buf(static_cast<std::size_t>(std::max<std::int64_t>(bytes, 1)));
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) t0 = c.now();
      if (c.rank() == 0) {
        c.send(buf.data(), static_cast<std::size_t>(bytes), BYTE, 1, 0);
        c.recv(buf.data(), static_cast<std::size_t>(bytes), BYTE, 1, 0);
      } else {
        c.recv(buf.data(), static_cast<std::size_t>(bytes), BYTE, 0, 0);
        c.send(buf.data(), static_cast<std::size_t>(bytes), BYTE, 0, 0);
      }
    }
    if (c.rank() == 0) result = sim::to_us(c.now() - t0) / (2.0 * (iters - skip));
  });
  return result;
}

double Runner::uni_bw_mbs(std::int64_t bytes) {
  double result = 0;
  const int window = bp_.bw_window, iters = bp_.bw_iters, skip = bp_.bw_skip;
  world_.run([&](Communicator& c) {
    if (c.rank() > 1) return;
    std::vector<std::byte> buf(static_cast<std::size_t>(std::max<std::int64_t>(bytes, 1)));
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) t0 = c.now();
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(window));
      if (c.rank() == 0) {
        for (int m = 0; m < window; ++m) {
          reqs.push_back(c.isend(buf.data(), static_cast<std::size_t>(bytes), BYTE, 1, 0));
        }
        c.waitall(reqs);
        std::byte ack;
        c.recv(&ack, 1, BYTE, 1, 1);
      } else {
        for (int m = 0; m < window; ++m) {
          reqs.push_back(c.irecv(buf.data(), static_cast<std::size_t>(bytes), BYTE, 0, 0));
        }
        c.waitall(reqs);
        std::byte ack{};
        c.send(&ack, 1, BYTE, 0, 1);
      }
    }
    if (c.rank() == 0) {
      result = static_cast<double>(bytes) * window * (iters - skip) / sim::to_s(c.now() - t0) / 1e6;
    }
  });
  return result;
}

double Runner::bi_bw_mbs(std::int64_t bytes) {
  double result = 0;
  const int window = bp_.bw_window, iters = bp_.bw_iters, skip = bp_.bw_skip;
  world_.run([&](Communicator& c) {
    if (c.rank() > 1) return;
    const int peer = 1 - c.rank();
    std::vector<std::byte> sbuf(static_cast<std::size_t>(std::max<std::int64_t>(bytes, 1)));
    std::vector<std::byte> rbuf(static_cast<std::size_t>(std::max<std::int64_t>(bytes, 1)));
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) t0 = c.now();
      std::vector<Request> reqs;
      reqs.reserve(static_cast<std::size_t>(2 * window));
      for (int m = 0; m < window; ++m) {
        reqs.push_back(c.irecv(rbuf.data(), static_cast<std::size_t>(bytes), BYTE, peer, 0));
      }
      for (int m = 0; m < window; ++m) {
        reqs.push_back(c.isend(sbuf.data(), static_cast<std::size_t>(bytes), BYTE, peer, 0));
      }
      c.waitall(reqs);
    }
    if (c.rank() == 0) {
      // Sum of both directions, as the paper reports (5362 MB/s peak).
      result = 2.0 * static_cast<double>(bytes) * window * (iters - skip) /
               sim::to_s(c.now() - t0) / 1e6;
    }
  });
  return result;
}

double Runner::alltoall_us(std::int64_t bytes) {
  double result = 0;
  const int iters = bp_.a2a_iters, skip = bp_.a2a_skip;
  world_.run([&](Communicator& c) {
    const std::size_t per = static_cast<std::size_t>(bytes);
    std::vector<std::byte> sendbuf(per * static_cast<std::size_t>(c.size()));
    std::vector<std::byte> recvbuf(per * static_cast<std::size_t>(c.size()));
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) {
        c.barrier();
        t0 = c.now();
      }
      c.alltoall(sendbuf.data(), recvbuf.data(), per, BYTE);
    }
    c.barrier();
    if (c.rank() == 0) result = sim::to_us(c.now() - t0) / (iters - skip);
  });
  return result;
}

std::vector<std::int64_t> pow2_sizes(std::int64_t from, std::int64_t to) {
  if (from <= 0 || from > to) throw std::invalid_argument("pow2_sizes: bad range");
  std::vector<std::int64_t> v;
  for (std::int64_t s = from; s <= to; s *= 2) v.push_back(s);
  return v;
}

Table telemetry_table(mvx::World& world, std::string title) {
  Table t(std::move(title), "metric");
  t.add_column("value");
  for (const auto& s : world.telemetry().snapshot()) {
    t.add_row(s.name, {s.value});
  }
  return t;
}

}  // namespace ib12x::harness
