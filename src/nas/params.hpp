// NAS Parallel Benchmark problem classes as used in this reproduction.
//
// The algorithms are the NPB 2.x MPI ones (IS: bucketed counting sort with
// all-to-all key redistribution; FT: 3-D complex FFT with an all-to-all slab
// transpose).  Problem sizes are *structurally faithful but scaled* versus
// the official classes — the official class B FT would push >100 GB of real
// copies through a single-core discrete-event simulation.  Scale factors:
//
//   IS  A: 2^22 keys / 2^19 max-key   (official: 2^23 / 2^19  → ½ keys)
//   IS  B: 2^24 keys / 2^21 max-key   (official: 2^25 / 2^21  → ½ keys)
//   FT  A: 128×128×64                 (official: 256×256×128  → 1/8 points)
//   FT  B: 256×128×128                (official: 512×256×256  → 1/8 points)
//
// Virtual per-element compute costs are calibrated so the communication /
// computation ratio matches a 2007 Power6 node (see DESIGN.md §5 and the
// EXPERIMENTS.md calibration table); they are what make the paper's 5–13 %
// end-to-end improvements reproducible in shape.
#pragma once

#include <cstdint>

namespace ib12x::nas {

enum class NasClass { S, A, B };

const char* to_string(NasClass c);

struct IsParams {
  std::int64_t total_keys;
  std::int64_t max_key;
  int iterations;
  // virtual CPU costs (per key, nanoseconds)
  double hist_ns_per_key = 0.45;  ///< bucket classification pass
  double move_ns_per_key = 0.55;  ///< pack keys to per-destination buffers
  double rank_ns_per_key = 0.8;  ///< counting-sort / ranking pass
};

struct FtParams {
  int nx, ny, nz;
  int iterations;
  double gflops = 3.5;             ///< sustained local FFT rate (Power6-era)
  double evolve_ns_per_point = 0.35;
};

IsParams is_params(NasClass c);
FtParams ft_params(NasClass c);

}  // namespace ib12x::nas
