#include "nas/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ib12x::nas {

Fft::Fft(std::size_t n) : n_(n) {
  if (n == 0 || (n & (n - 1)) != 0) throw std::invalid_argument("Fft: size must be a power of 2");
  log2n_ = 0;
  while ((1u << log2n_) < n) ++log2n_;

  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < log2n_; ++b) {
      if (i & (1u << b)) r |= 1u << (log2n_ - 1 - b);
    }
    bitrev_[i] = r;
  }

  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_[k] = Complex(std::cos(ang), std::sin(ang));
  }
  scratch_.resize(n);
}

void Fft::transform(Complex* data, int sign) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t tstep = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Complex w = twiddle_[k * tstep];
        if (sign > 0) w = std::conj(w);
        const Complex u = data[base + k];
        const Complex t = w * data[base + k + half];
        data[base + k] = u + t;
        data[base + k + half] = u - t;
      }
    }
  }
  if (sign > 0) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] *= inv;
  }
}

void Fft::transform_strided(Complex* data, std::size_t stride, int sign) const {
  if (stride == 1) {
    transform(data, sign);
    return;
  }
  for (std::size_t i = 0; i < n_; ++i) scratch_[i] = data[i * stride];
  transform(scratch_.data(), sign);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch_[i];
}

double Fft::flops() const {
  return 5.0 * static_cast<double>(n_) * log2n_;
}

}  // namespace ib12x::nas
