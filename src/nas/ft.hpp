// NAS FT (3-D FFT PDE solver) on the mvx substrate.
//
// NPB 2.x MPI algorithm with 1-D (slab) decomposition: the forward 3-D FFT
// runs x- and y-FFTs on local z-slabs, transposes the volume with an
// MPI_Alltoall so every rank owns an x-slab, and finishes with z-FFTs.  Each
// timestep evolves the spectrum and runs the inverse transform — one full
// all-to-all of the volume per iteration, which is the communication the
// paper's fig. 11/12 measure.
#pragma once

#include <complex>
#include <vector>

#include "mvx/comm.hpp"
#include "nas/params.hpp"

namespace ib12x::nas {

struct FtResult {
  double seconds = 0;    ///< virtual execution time of the timed region
  bool verified = false; ///< checksums finite and layout checks passed
  std::vector<std::complex<double>> checksums;  ///< one per iteration
};

FtResult run_ft(mvx::Communicator& comm, NasClass cls);
FtResult run_ft(mvx::Communicator& comm, const FtParams& params);

}  // namespace ib12x::nas
