// NAS IS (Integer Sort) on the mvx substrate.
//
// NPB 2.x MPI algorithm: every iteration classifies the local keys into
// per-destination buckets, exchanges bucket sizes (MPI_Alltoall), moves the
// keys (MPI_Alltoallv) so rank r ends up with the keys in its key-range, and
// ranks them locally with a counting sort.  Communication volume per
// iteration is the entire key array, which is why IS is the NPB kernel most
// sensitive to the MPI bandwidth improvements the paper measures (fig. 9/10).
#pragma once

#include <cstdint>
#include <vector>

#include "mvx/comm.hpp"
#include "nas/params.hpp"

namespace ib12x::nas {

struct IsResult {
  double seconds = 0;          ///< virtual execution time of the timed region
  bool verified = false;       ///< global sortedness + key conservation
  std::uint64_t checksum = 0;  ///< deterministic digest of the final ranking
  std::int64_t keys_moved = 0; ///< total keys this rank sent through alltoallv
};

IsResult run_is(mvx::Communicator& comm, NasClass cls);
IsResult run_is(mvx::Communicator& comm, const IsParams& params);

}  // namespace ib12x::nas
