// Serial complex FFT used by the FT kernel: iterative radix-2 with cached
// twiddle factors.  Sizes must be powers of two.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ib12x::nas {

using Complex = std::complex<double>;

class Fft {
 public:
  explicit Fft(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place transform of `data` (length size()).  sign = -1 forward,
  /// +1 inverse; the inverse includes the 1/n normalization.
  void transform(Complex* data, int sign) const;

  /// Strided transform: elements data[offset + i*stride], i in [0, size()).
  void transform_strided(Complex* data, std::size_t stride, int sign) const;

  /// Flop estimate for one transform of this size (the classic 5·n·log2 n).
  [[nodiscard]] double flops() const;

 private:
  std::size_t n_;
  int log2n_;
  std::vector<std::size_t> bitrev_;
  std::vector<Complex> twiddle_;  ///< exp(-2πi k / n), k in [0, n/2)
  mutable std::vector<Complex> scratch_;
};

}  // namespace ib12x::nas
