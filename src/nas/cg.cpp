#include "nas/cg.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ib12x::nas {

using mvx::Communicator;
using mvx::DOUBLE;
using mvx::Op;

CgParams cg_params(NasClass c) {
  CgParams p{};
  switch (c) {
    case NasClass::S:
      p.n = 1400;
      p.nonzeros_per_row = 7;
      p.iterations = 15;
      return p;
    case NasClass::A:
      p.n = 14000;
      p.nonzeros_per_row = 11;
      p.iterations = 15;
      return p;
    case NasClass::B:
      p.n = 75000;
      p.nonzeros_per_row = 13;
      p.iterations = 20;
      return p;
  }
  throw std::invalid_argument("cg_params: unknown class");
}

namespace {

/// splitmix64 — deterministic per-row structure generation.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

sim::Time flop_cost(double ns_per_flop, double flops) {
  return static_cast<sim::Time>(ns_per_flop * flops * static_cast<double>(sim::kNanosecond));
}

}  // namespace

CgResult run_cg(Communicator& comm, NasClass cls) { return run_cg(comm, cg_params(cls)); }

CgResult run_cg(Communicator& comm, const CgParams& P) {
  const int p = comm.size();
  const int r = comm.rank();

  // Row partition (block, remainder to the first ranks).
  std::vector<std::int64_t> counts(static_cast<std::size_t>(p)), displs(static_cast<std::size_t>(p));
  {
    std::int64_t off = 0;
    for (int i = 0; i < p; ++i) {
      counts[static_cast<std::size_t>(i)] = P.n / p + (i < P.n % p ? 1 : 0);
      displs[static_cast<std::size_t>(i)] = off;
      off += counts[static_cast<std::size_t>(i)];
    }
  }
  const std::int64_t row0 = displs[static_cast<std::size_t>(r)];
  const std::int64_t nloc = counts[static_cast<std::size_t>(r)];

  // Local CSR slice of a symmetric positive-definite matrix: strong diagonal
  // plus couplings at fixed symmetric strides (a multi-band structure, like
  // structured-grid operators).  Symmetry holds by construction — row i
  // couples to i±d for every stride d — and the value of each coupling is a
  // hash of the unordered index pair, so A(i,j) == A(j,i) exactly.
  static const std::int64_t kStrides[] = {1, 3, 17, 91, 541, 2903, 9377};
  const int n_strides = std::min<int>(P.nonzeros_per_row / 2,
                                      static_cast<int>(std::size(kStrides)));
  std::vector<std::int64_t> col_idx;
  std::vector<double> val;
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(nloc) + 1, 0);
  auto coupling = [](std::int64_t a, std::int64_t b) {
    const std::uint64_t h = mix(static_cast<std::uint64_t>(std::min(a, b)) * 1000003u +
                                static_cast<std::uint64_t>(std::max(a, b)));
    return -0.5 * (static_cast<double>(h % 1000) / 1000.0 + 0.1);
  };
  for (std::int64_t i = 0; i < nloc; ++i) {
    const std::int64_t grow = row0 + i;
    double offdiag_sum = 0;
    for (int s = 0; s < n_strides; ++s) {
      for (std::int64_t c : {grow - kStrides[s], grow + kStrides[s]}) {
        if (c < 0 || c >= P.n) continue;
        const double v = coupling(grow, c);
        col_idx.push_back(c);
        val.push_back(v);
        offdiag_sum += std::abs(v);
      }
    }
    // Diagonal dominance ⇒ SPD.
    col_idx.push_back(grow);
    val.push_back(offdiag_sum + 1.0);
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<std::int64_t>(col_idx.size());
  }

  // b = A * ones — the exact solution is the ones vector.
  std::vector<double> x_full(static_cast<std::size_t>(P.n), 0.0);
  std::vector<double> ones(static_cast<std::size_t>(P.n), 1.0);
  auto matvec = [&](const std::vector<double>& full_in, std::vector<double>& local_out) {
    for (std::int64_t i = 0; i < nloc; ++i) {
      double acc = 0;
      for (std::int64_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        acc += val[static_cast<std::size_t>(k)] *
               full_in[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
      }
      local_out[static_cast<std::size_t>(i)] = acc;
    }
    comm.compute(flop_cost(P.flop_ns, 2.0 * static_cast<double>(col_idx.size())));
  };
  auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double local = 0;
    for (std::int64_t i = 0; i < nloc; ++i) {
      local += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    }
    comm.compute(flop_cost(P.flop_ns, 2.0 * static_cast<double>(nloc)));
    double global = 0;
    comm.allreduce(&local, &global, 1, DOUBLE, Op::Sum);
    return global;
  };

  std::vector<double> b_loc(static_cast<std::size_t>(nloc));
  matvec(ones, b_loc);

  CgResult result;
  comm.barrier();
  const sim::Time t0 = comm.now();

  // CG from x = 0: r = b, p = r.
  std::vector<double> x_loc(static_cast<std::size_t>(nloc), 0.0);
  std::vector<double> res = b_loc;
  std::vector<double> dir = res;
  std::vector<double> dir_full(static_cast<std::size_t>(P.n));
  std::vector<double> q(static_cast<std::size_t>(nloc));
  double rho = dot(res, res);
  const double rho0 = rho;
  bool monotone = true;

  for (int it = 0; it < P.iterations; ++it) {
    // Gather the full direction vector for the distributed matvec.
    comm.allgatherv(dir.data(), static_cast<std::size_t>(nloc), dir_full.data(), counts, displs,
                    DOUBLE);
    matvec(dir_full, q);
    const double alpha = rho / dot(dir, q);
    for (std::int64_t i = 0; i < nloc; ++i) {
      x_loc[static_cast<std::size_t>(i)] += alpha * dir[static_cast<std::size_t>(i)];
      res[static_cast<std::size_t>(i)] -= alpha * q[static_cast<std::size_t>(i)];
    }
    comm.compute(flop_cost(P.flop_ns, 4.0 * static_cast<double>(nloc)));
    const double rho_new = dot(res, res);
    if (rho_new > rho * 1.0001) monotone = false;
    const double beta = rho_new / rho;
    rho = rho_new;
    for (std::int64_t i = 0; i < nloc; ++i) {
      dir[static_cast<std::size_t>(i)] = res[static_cast<std::size_t>(i)] +
                                         beta * dir[static_cast<std::size_t>(i)];
    }
    comm.compute(flop_cost(P.flop_ns, 2.0 * static_cast<double>(nloc)));
  }

  result.seconds = sim::to_s(comm.now() - t0);
  result.final_residual = std::sqrt(rho);
  result.verified = monotone && rho < rho0 * 1e-6;

  double local_sum = 0;
  for (std::int64_t i = 0; i < nloc; ++i) local_sum += x_loc[static_cast<std::size_t>(i)];
  comm.allreduce(&local_sum, &result.checksum, 1, DOUBLE, Op::Sum);
  return result;
}

}  // namespace ib12x::nas
