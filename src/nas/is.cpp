#include "nas/is.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"

namespace ib12x::nas {

using mvx::Communicator;
using mvx::INT32;
using mvx::INT64;
using mvx::Op;

namespace {

sim::Time key_cost(double ns_per_key, std::int64_t keys) {
  return static_cast<sim::Time>(ns_per_key * static_cast<double>(keys) *
                                static_cast<double>(sim::kNanosecond));
}

}  // namespace

IsResult run_is(Communicator& comm, NasClass cls) { return run_is(comm, is_params(cls)); }

IsResult run_is(Communicator& comm, const IsParams& P) {
  const int p = comm.size();
  const int r = comm.rank();
  if (P.total_keys % p != 0) throw std::invalid_argument("run_is: ranks must divide total keys");
  const std::int64_t n_local = P.total_keys / p;
  // Key range owned by rank d: [d*range, (d+1)*range).
  const std::int64_t range = (P.max_key + p - 1) / p;

  // Deterministic key generation hashed from the *global* key index, so the
  // key multiset is identical for every process count and policy — results
  // can be compared bit-for-bit across configurations.
  auto hashed_key = [&P](std::uint64_t global_index) {
    std::uint64_t z = global_index + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<std::int32_t>(z % static_cast<std::uint64_t>(P.max_key));
  };
  std::vector<std::int32_t> keys(static_cast<std::size_t>(n_local));
  for (std::int64_t i = 0; i < n_local; ++i) {
    keys[static_cast<std::size_t>(i)] =
        hashed_key(static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(n_local) +
                   static_cast<std::uint64_t>(i));
  }

  IsResult result;
  comm.barrier();
  const sim::Time t0 = comm.now();

  std::vector<std::int64_t> send_counts(static_cast<std::size_t>(p));
  std::vector<std::int64_t> send_displs(static_cast<std::size_t>(p));
  std::vector<std::int64_t> recv_counts(static_cast<std::size_t>(p));
  std::vector<std::int64_t> recv_displs(static_cast<std::size_t>(p));
  std::vector<std::int32_t> send_keys(static_cast<std::size_t>(n_local));
  std::vector<std::int32_t> recv_keys;
  std::vector<std::int32_t> local_counts(static_cast<std::size_t>(range));

  for (int iter = 0; iter < P.iterations; ++iter) {
    // NPB perturbs one key per iteration so the work cannot be cached.
    keys[static_cast<std::size_t>(iter) % keys.size()] =
        static_cast<std::int32_t>((keys[static_cast<std::size_t>(iter) % keys.size()] + iter) %
                                  P.max_key);

    // 1. Classify keys by destination rank.
    std::fill(send_counts.begin(), send_counts.end(), 0);
    for (std::int32_t k : keys) ++send_counts[static_cast<std::size_t>(k / range)];
    comm.compute(key_cost(P.hist_ns_per_key, n_local));

    // 2. Exchange counts.
    std::fill(send_displs.begin(), send_displs.end(), 0);
    for (int d = 1; d < p; ++d) {
      send_displs[static_cast<std::size_t>(d)] =
          send_displs[static_cast<std::size_t>(d - 1)] + send_counts[static_cast<std::size_t>(d - 1)];
    }
    comm.alltoall(send_counts.data(), recv_counts.data(), 1, INT64);

    // 3. Pack keys per destination.
    {
      std::vector<std::int64_t> cursor = send_displs;
      for (std::int32_t k : keys) {
        send_keys[static_cast<std::size_t>(cursor[static_cast<std::size_t>(k / range)]++)] = k;
      }
      comm.compute(key_cost(P.move_ns_per_key, n_local));
    }

    // 4. Redistribute keys.
    std::int64_t total_recv = 0;
    for (int d = 0; d < p; ++d) {
      recv_displs[static_cast<std::size_t>(d)] = total_recv;
      total_recv += recv_counts[static_cast<std::size_t>(d)];
    }
    recv_keys.resize(static_cast<std::size_t>(total_recv));
    comm.alltoallv(send_keys.data(), send_counts, send_displs, recv_keys.data(), recv_counts,
                   recv_displs, INT32);
    result.keys_moved += n_local;

    // 5. Local ranking (counting sort over this rank's key range).
    std::fill(local_counts.begin(), local_counts.end(), 0);
    const std::int32_t base = static_cast<std::int32_t>(r) * static_cast<std::int32_t>(range);
    for (std::int32_t k : recv_keys) {
      const std::int64_t off = k - base;
      if (off < 0 || off >= range) throw std::runtime_error("run_is: misrouted key");
      ++local_counts[static_cast<std::size_t>(off)];
    }
    comm.compute(key_cost(P.rank_ns_per_key, total_recv));
  }

  result.seconds = sim::to_s(comm.now() - t0);

  // ---- verification (outside the timed region, like NPB's full check) ----
  // (a) key conservation.
  std::int64_t got = static_cast<std::int64_t>(recv_keys.size()), total = 0;
  comm.allreduce(&got, &total, 1, INT64, Op::Sum);
  bool ok = total == P.total_keys;
  // (b) the counting sort gives a globally sorted sequence: my largest key
  //     must be <= right neighbour's smallest.  Keys are already range-
  //     partitioned, so it suffices that every key is in-range (checked
  //     above) — assert the prefix structure via a digest instead.
  std::uint64_t digest = 1469598103934665603ull;
  for (std::size_t i = 0; i < local_counts.size(); ++i) {
    digest ^= static_cast<std::uint64_t>(local_counts[i]) + i;
    digest *= 1099511628211ull;
  }
  // Fold all ranks' digests into a stable global checksum.
  std::int64_t digest_lo = static_cast<std::int64_t>(digest & 0x7fffffffffffffffull), sum = 0;
  comm.allreduce(&digest_lo, &sum, 1, INT64, Op::Sum);
  result.checksum = static_cast<std::uint64_t>(sum);
  result.verified = ok;
  return result;
}

}  // namespace ib12x::nas
