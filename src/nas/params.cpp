#include "nas/params.hpp"

#include <stdexcept>

namespace ib12x::nas {

const char* to_string(NasClass c) {
  switch (c) {
    case NasClass::S: return "S";
    case NasClass::A: return "A";
    case NasClass::B: return "B";
  }
  return "?";
}

IsParams is_params(NasClass c) {
  IsParams p{};
  switch (c) {
    case NasClass::S:
      p.total_keys = 1 << 16;
      p.max_key = 1 << 11;
      p.iterations = 10;
      return p;
    case NasClass::A:
      p.total_keys = 1 << 22;
      p.max_key = 1 << 19;
      p.iterations = 10;
      return p;
    case NasClass::B:
      p.total_keys = 1 << 24;
      p.max_key = 1 << 21;
      p.iterations = 10;
      return p;
  }
  throw std::invalid_argument("is_params: unknown class");
}

FtParams ft_params(NasClass c) {
  FtParams p{};
  switch (c) {
    case NasClass::S:
      p.nx = 32;
      p.ny = 32;
      p.nz = 16;
      p.iterations = 4;
      return p;
    case NasClass::A:
      p.nx = 128;
      p.ny = 128;
      p.nz = 64;
      p.iterations = 6;
      return p;
    case NasClass::B:
      p.nx = 256;
      p.ny = 128;
      p.nz = 128;
      p.iterations = 6;
      return p;
  }
  throw std::invalid_argument("ft_params: unknown class");
}

}  // namespace ib12x::nas
