#include "nas/ft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "nas/fft.hpp"
#include "sim/rng.hpp"

namespace ib12x::nas {

using mvx::COMPLEX;
using mvx::Communicator;
using mvx::Op;

namespace {

sim::Time flop_cost(double flops, double gflops) {
  return static_cast<sim::Time>(flops / gflops * static_cast<double>(sim::kNanosecond));
}

sim::Time point_cost(double ns_per_point, std::int64_t points) {
  return static_cast<sim::Time>(ns_per_point * static_cast<double>(points) *
                                static_cast<double>(sim::kNanosecond));
}

}  // namespace

FtResult run_ft(Communicator& comm, NasClass cls) { return run_ft(comm, ft_params(cls)); }

FtResult run_ft(Communicator& comm, const FtParams& P) {
  const int p = comm.size();
  const int r = comm.rank();
  const int nx = P.nx, ny = P.ny, nz = P.nz;
  if (nz % p != 0 || nx % p != 0) {
    throw std::invalid_argument("run_ft: ranks must divide nx and nz");
  }
  const int nzl = nz / p;  // z-slab height (phase 1 layout)
  const int nxl = nx / p;  // x-slab width (phase 2 layout)
  const std::size_t slab_points = static_cast<std::size_t>(nx) * ny * nzl;
  const std::size_t xslab_points = static_cast<std::size_t>(nxl) * ny * nz;
  const std::size_t block_points = static_cast<std::size_t>(nxl) * ny * nzl;

  Fft fft_x(static_cast<std::size_t>(nx));
  Fft fft_y(static_cast<std::size_t>(ny));
  Fft fft_z(static_cast<std::size_t>(nz));

  // u0: initial condition on z-slabs, layout [z][y][x].  Seeded per *global*
  // z-plane so the field is identical for every process decomposition —
  // checksums can then be compared bit-for-bit across layouts and policies.
  std::vector<Complex> u0(slab_points);
  for (int z = 0; z < nzl; ++z) {
    sim::Rng rng(0xf7 + static_cast<std::uint64_t>(r * nzl + z) * 104729);
    Complex* plane = u0.data() + static_cast<std::size_t>(z) * ny * nx;
    for (std::size_t i = 0; i < static_cast<std::size_t>(ny) * nx; ++i) {
      plane[i] = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
    }
  }

  std::vector<Complex> work(slab_points);
  std::vector<Complex> sendbuf(slab_points);
  std::vector<Complex> recvbuf(xslab_points);
  std::vector<Complex> spectrum(xslab_points);  // [xl][y][z]
  std::vector<Complex> evolved(xslab_points);

  auto xy_ffts = [&](std::vector<Complex>& a, int sign) {
    // FFT along x for every (y, z) row, then along y for every (x, z) column.
    for (int z = 0; z < nzl; ++z) {
      Complex* plane = a.data() + static_cast<std::size_t>(z) * ny * nx;
      for (int y = 0; y < ny; ++y) {
        fft_x.transform(plane + static_cast<std::size_t>(y) * nx, sign);
      }
      for (int x = 0; x < nx; ++x) {
        fft_y.transform_strided(plane + x, static_cast<std::size_t>(nx), sign);
      }
    }
    comm.compute(flop_cost(static_cast<double>(nzl) * (ny * fft_x.flops() + nx * fft_y.flops()),
                           P.gflops));
  };

  auto pack_for_transpose = [&](const std::vector<Complex>& a) {
    // Destination d gets x in [d·nxl, (d+1)·nxl), all y, all local z.
    std::size_t out = 0;
    for (int d = 0; d < p; ++d) {
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < ny; ++y) {
          const Complex* row =
              a.data() + (static_cast<std::size_t>(z) * ny + static_cast<std::size_t>(y)) * nx +
              static_cast<std::size_t>(d) * nxl;
          for (int x = 0; x < nxl; ++x) sendbuf[out++] = row[x];
        }
      }
    }
    comm.compute(point_cost(0.3, static_cast<std::int64_t>(slab_points)));
  };

  auto unpack_to_xslab = [&](std::vector<Complex>& out) {
    // Block from rank d covers z in [d·nzl, (d+1)·nzl); target layout [xl][y][z].
    for (int d = 0; d < p; ++d) {
      const Complex* block = recvbuf.data() + static_cast<std::size_t>(d) * block_points;
      std::size_t in = 0;
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < nxl; ++x) {
            out[(static_cast<std::size_t>(x) * ny + static_cast<std::size_t>(y)) * nz +
                static_cast<std::size_t>(d) * nzl + static_cast<std::size_t>(z)] = block[in++];
          }
        }
      }
    }
    comm.compute(point_cost(0.3, static_cast<std::int64_t>(xslab_points)));
  };

  auto pack_from_xslab = [&](const std::vector<Complex>& a) {
    // Inverse of unpack_to_xslab: destination d gets z in [d·nzl, (d+1)·nzl).
    std::size_t out = 0;
    for (int d = 0; d < p; ++d) {
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < nxl; ++x) {
            sendbuf[out++] = a[(static_cast<std::size_t>(x) * ny + static_cast<std::size_t>(y)) * nz +
                               static_cast<std::size_t>(d) * nzl + static_cast<std::size_t>(z)];
          }
        }
      }
    }
    comm.compute(point_cost(0.3, static_cast<std::int64_t>(xslab_points)));
  };

  auto unpack_to_zslab = [&](std::vector<Complex>& out) {
    // Block from rank d covers x in [d·nxl, (d+1)·nxl).
    for (int d = 0; d < p; ++d) {
      const Complex* block = recvbuf.data() + static_cast<std::size_t>(d) * block_points;
      std::size_t in = 0;
      for (int z = 0; z < nzl; ++z) {
        for (int y = 0; y < ny; ++y) {
          Complex* row =
              out.data() + (static_cast<std::size_t>(z) * ny + static_cast<std::size_t>(y)) * nx +
              static_cast<std::size_t>(d) * nxl;
          for (int x = 0; x < nxl; ++x) row[x] = block[in++];
        }
      }
    }
    comm.compute(point_cost(0.3, static_cast<std::int64_t>(slab_points)));
  };

  auto z_ffts = [&](std::vector<Complex>& a, int sign) {
    for (int x = 0; x < nxl; ++x) {
      for (int y = 0; y < ny; ++y) {
        fft_z.transform(a.data() + (static_cast<std::size_t>(x) * ny + static_cast<std::size_t>(y)) * nz,
                        sign);
      }
    }
    comm.compute(flop_cost(static_cast<double>(nxl) * ny * fft_z.flops(), P.gflops));
  };

  FtResult result;
  comm.barrier();
  const sim::Time t0 = comm.now();

  // ---- forward 3-D FFT (once) ----
  work = u0;
  xy_ffts(work, -1);
  pack_for_transpose(work);
  comm.alltoall(sendbuf.data(), recvbuf.data(), block_points, COMPLEX);
  unpack_to_xslab(spectrum);
  z_ffts(spectrum, -1);

  // Pre-compute the evolution exponents exp(-4π²α|k|²) for one timestep.
  const double alpha = 1e-6;
  std::vector<double> ez(static_cast<std::size_t>(nz)), ey(static_cast<std::size_t>(ny)),
      ex(static_cast<std::size_t>(nx));
  auto wave2 = [](int i, int n) {
    const int k = i <= n / 2 ? i : i - n;
    return static_cast<double>(k) * k;
  };
  for (int i = 0; i < nx; ++i) ex[static_cast<std::size_t>(i)] = wave2(i, nx);
  for (int i = 0; i < ny; ++i) ey[static_cast<std::size_t>(i)] = wave2(i, ny);
  for (int i = 0; i < nz; ++i) ez[static_cast<std::size_t>(i)] = wave2(i, nz);

  std::vector<Complex> inv_zslab(slab_points);
  for (int iter = 1; iter <= P.iterations; ++iter) {
    // evolve: ũ(k, t) = u(k) · exp(-4π²α|k|²·t)
    const double t = static_cast<double>(iter);
    for (int x = 0; x < nxl; ++x) {
      const double kx2 = ex[static_cast<std::size_t>(r * nxl + x)];
      for (int y = 0; y < ny; ++y) {
        const double ky2 = ey[static_cast<std::size_t>(y)];
        Complex* row = spectrum.data() + (static_cast<std::size_t>(x) * ny + static_cast<std::size_t>(y)) * nz;
        Complex* out = evolved.data() + (static_cast<std::size_t>(x) * ny + static_cast<std::size_t>(y)) * nz;
        for (int z = 0; z < nz; ++z) {
          const double factor =
              std::exp(-4.0 * std::numbers::pi * std::numbers::pi * alpha * t *
                       (kx2 + ky2 + ez[static_cast<std::size_t>(z)]));
          out[static_cast<std::size_t>(z)] = row[static_cast<std::size_t>(z)] * factor;
        }
      }
    }
    comm.compute(point_cost(P.evolve_ns_per_point, static_cast<std::int64_t>(xslab_points)));

    // inverse 3-D FFT: z-FFTs, transpose back, y- and x-FFTs.
    z_ffts(evolved, +1);
    pack_from_xslab(evolved);
    comm.alltoall(sendbuf.data(), recvbuf.data(), block_points, COMPLEX);
    unpack_to_zslab(inv_zslab);
    xy_ffts(inv_zslab, +1);

    // checksum: 1024 strided samples of the physical-space solution.
    Complex local_sum(0, 0);
    for (int j = 1; j <= 1024; ++j) {
      const int xg = (5 * j) % nx;
      const int yg = (3 * j) % ny;
      const int zg = j % nz;
      if (zg / nzl == r) {
        local_sum += inv_zslab[(static_cast<std::size_t>(zg % nzl) * ny +
                                static_cast<std::size_t>(yg)) *
                                   nx +
                               static_cast<std::size_t>(xg)];
      }
    }
    Complex global_sum(0, 0);
    comm.allreduce(&local_sum, &global_sum, 1, COMPLEX, Op::Sum);
    result.checksums.push_back(global_sum);
  }

  result.seconds = sim::to_s(comm.now() - t0);
  result.verified = true;
  for (const Complex& cs : result.checksums) {
    if (!std::isfinite(cs.real()) || !std::isfinite(cs.imag())) result.verified = false;
  }
  return result;
}

}  // namespace ib12x::nas
