// NAS CG (Conjugate Gradient) on the mvx substrate.
//
// The paper reports "no performance degradation" on the NAS kernels beyond
// IS and FT; CG is the canonical representative of that class: its
// communication is dominated by short allreduce dot-products plus a
// vector allgather per matrix-vector product, so multi-rail bandwidth
// policies should move it very little in either direction.
//
// Structure follows NPB CG with a 1-D row partition of a synthetic sparse
// symmetric positive-definite matrix (diagonally dominant band + scattered
// couplings, generated deterministically per global row).
#pragma once

#include <cstdint>

#include "mvx/comm.hpp"
#include "nas/params.hpp"

namespace ib12x::nas {

struct CgParams {
  std::int64_t n;          ///< global unknowns
  int nonzeros_per_row;    ///< off-diagonal couplings per row
  int iterations;          ///< CG iterations (one matvec + 2 dots each)
  double flop_ns = 0.45;   ///< per-flop virtual cost (matvec / axpy)
};

CgParams cg_params(NasClass c);

struct CgResult {
  double seconds = 0;        ///< virtual time of the timed region
  bool verified = false;     ///< residual decreased monotonically to tolerance
  double final_residual = 0; ///< ||b - Ax|| after the last iteration
  double checksum = 0;       ///< deterministic digest of the solution vector
};

CgResult run_cg(mvx::Communicator& comm, NasClass cls);
CgResult run_cg(mvx::Communicator& comm, const CgParams& params);

}  // namespace ib12x::nas
