// Switched-fabric topology layer: LID-addressed hosts behind an explicit
// switch graph with per-switch forwarding tables.
//
// Three shapes:
//  * Crossbar   — one switch, every host port one hop away.  With contention
//                 disabled this reproduces the legacy closed-form
//                 `wire + switch + wire` path bit for bit (the refactor's
//                 safety rail); with contention enabled the single arbiter
//                 saturates at `nonblocking_radix` ports worth of bandwidth,
//                 which is exactly why real clusters move to multi-stage
//                 topologies.
//  * FatTree    — k-ary 3-level folded Clos (k pods, k/2 edge + k/2 agg
//                 switches per pod, (k/2)^2 cores) with deterministic
//                 D-mod-k up/down routing.  Up/down needs no VLs: the
//                 channel dependency graph of any up*/down* route set is
//                 acyclic by construction (verified by deadlock_free()).
//  * Dragonfly  — canonical (p, a, h, g) groups with minimal l-g-l routing
//                 or Valiant (random intermediate group, chosen by a
//                 stateless hash so sharded runs stay deterministic).  The
//                 VL of a hop is the number of global links already crossed,
//                 the standard dragonfly deadlock-avoidance discipline.
//
// Transfers consult Topology::resolve(src, dst) for the hop list.  With
// contention off only the summed forward latency is used (same event
// structure as the legacy formula); with contention on each hop is a real
// event on the owning switch's simulator, with backplane and per-output-port
// bandwidth servers modelling arbitration and output queuing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ib/params.hpp"
#include "sim/server.hpp"
#include "sim/time.hpp"

namespace ib12x::sim {
class Simulator;
}

namespace ib12x::ib {

class Port;
class Topology;
struct Transfer;

/// Local identifier: one per attached host port, assigned in attach order.
using Lid = std::uint16_t;
inline constexpr Lid kInvalidLid = 0xffff;

enum class TopoShape : std::uint8_t { Crossbar, FatTree, Dragonfly };
enum class RoutePolicy : std::uint8_t { Minimal, Valiant };

struct TopologySpec {
  TopoShape shape = TopoShape::Crossbar;
  RoutePolicy routing = RoutePolicy::Minimal;

  /// Model switch arbitration and output queuing (per-hop events).  Off, the
  /// topology contributes only per-pair forward latencies and the event
  /// structure is identical to the legacy single-switch formula.
  bool contention = false;

  /// Fat-tree arity (even).  0 derives the smallest even k >= 4 whose
  /// k^3/4 host ports cover `min_hosts`.
  int fattree_k = 0;

  /// Dragonfly parameters: p hosts/router, a routers/group, h global
  /// links/router, g groups.  Zeros derive the balanced configuration
  /// (a = 2h, p = h, g = a*h + 1) from the smallest h covering `min_hosts`.
  int df_hosts_per_router = 0;
  int df_routers_per_group = 0;
  int df_global_per_router = 0;
  int df_groups = 0;

  /// Host ports the builder must accommodate; World fills this from the
  /// cluster spec before handing the spec to Fabric.  Only consulted when
  /// the shape parameters above are auto-derived (left 0).
  int min_hosts = 0;

  // ---- contention model ---------------------------------------------------
  /// Ports worth of link bandwidth one switch ASIC can arbitrate internally
  /// (InfiniScale-class crossbars are non-blocking up to ~24 ports).  A
  /// switch with more ports than this oversubscribes its backplane — the
  /// mechanism that makes a monolithic 256-port "crossbar" degrade where a
  /// fat-tree of small non-blocking switches does not.
  int nonblocking_radix = 24;
  /// Output-buffer depth per switch; a reservation finding more than this
  /// many bytes queued counts a stall (lossless fabric: never a drop).
  std::int64_t out_buf_bytes = 128 * 1024;
  /// Latency of inter-group (dragonfly global) cables; 0 uses the regular
  /// FabricParams::wire_latency.
  sim::Time global_wire_latency = 0;
  /// Stateless hash seed for Valiant intermediate-group selection.
  std::uint64_t valiant_seed = 0x5eed;
};

inline constexpr int kMaxRouteHops = 8;

/// One switch traversal on a route: the switch, the output port taken, the
/// virtual lane of the *outgoing* link and whether that link is a global
/// (inter-group) cable.
struct RouteHop {
  std::int16_t sw = -1;
  std::int16_t out_port = -1;
  std::uint8_t vl = 0;
  bool global = false;
};

struct Route {
  int count = 0;
  sim::Time fwd_latency = 0;  ///< sum of (wire-in + switch) over all hops
  RouteHop hop[kMaxRouteHops];
};

/// A switch: radix ports, a shared backplane server (arbitration) and, for
/// switch-to-switch links, per-output-port serialization servers.  Forwarding
/// is table-driven (lid -> out port, plus group -> out port for dragonfly).
class Switch {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] int group() const { return group_; }
  [[nodiscard]] int radix() const { return static_cast<int>(ports_.size()); }

  /// The simulator (= shard) whose thread owns this switch's queue state.
  [[nodiscard]] sim::Simulator* simulator() const { return sim_; }

  /// One port's wiring, for tests that walk routes structurally.
  struct Link {
    int peer_sw = -1;    ///< peer switch id, or -1 for a host port
    int peer_port = -1;  ///< port index on the peer switch
    Lid host = kInvalidLid;  ///< attached host lid when a host port
    bool global = false;     ///< inter-group (dragonfly) cable
  };
  [[nodiscard]] const Link& link(int port) const {
    return ports_.at(static_cast<std::size_t>(port));
  }

  /// Contention-mode pipeline stage: one per-hop event per transit.  Runs on
  /// this switch's simulator; defined in hca.cpp next to the other stages.
  void hop(std::unique_ptr<Transfer> st);

  // ---- telemetry ----------------------------------------------------------
  [[nodiscard]] std::uint64_t routed_pkts() const { return routed_pkts_; }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::int64_t queue_hwm_bytes() const { return queue_hwm_bytes_; }

 private:
  friend class Topology;

  Topology* topo_ = nullptr;
  int id_ = 0;
  int level_ = 0;   ///< 0 = edge/router, 1 = aggregation, 2 = core
  int group_ = -1;  ///< fat-tree pod / dragonfly group; -1 for cores
  std::vector<Link> ports_;
  std::vector<std::int16_t> fwd_;           ///< lid -> out port
  std::vector<std::int16_t> toward_group_;  ///< dragonfly: group -> out port
  sim::BandwidthServer backplane_;
  /// Per-output-port servers for switch-to-switch links (nullptr for host
  /// ports — the destination HCA's link_rx_ models host egress, exactly as
  /// in the legacy path).  Only built in contention mode.
  std::vector<std::unique_ptr<sim::BandwidthServer>> out_srv_;
  sim::Simulator* sim_ = nullptr;

  std::uint64_t routed_pkts_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t drops_ = 0;  ///< always 0: the fabric is lossless (IB credits)
  std::int64_t queue_hwm_bytes_ = 0;
};

class Topology {
 public:
  Topology(TopologySpec spec, FabricParams fp);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Fills in derived shape parameters (fat-tree k, dragonfly p/a/h/g) the
  /// way the constructor will; lets callers validate before building.
  static TopologySpec normalize(TopologySpec spec);
  /// Host-port capacity of a normalized spec (crossbar: unbounded, -1).
  static std::int64_t capacity_of(const TopologySpec& normalized);

  /// Assigns the next LID (attach order).  Throws when the shape is full.
  Lid attach_host();

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] const FabricParams& fabric_params() const { return fp_; }
  [[nodiscard]] bool contention() const { return spec_.contention; }
  [[nodiscard]] int attached() const { return attached_; }
  [[nodiscard]] std::int64_t host_capacity() const { return capacity_of(spec_); }
  [[nodiscard]] int switch_count() const { return static_cast<int>(switches_.size()); }
  [[nodiscard]] Switch& switch_at(int i) { return *switches_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const Switch& switch_at(int i) const {
    return *switches_.at(static_cast<std::size_t>(i));
  }

  /// The edge switch (or dragonfly router) a host lid hangs off.  Pure
  /// arithmetic on the shape — valid for any lid below capacity, attached or
  /// not, so shard placement can run before the HCAs exist.
  [[nodiscard]] int edge_switch_of(Lid lid) const;

  /// Hop list + summed forward latency from src's uplink to the last switch
  /// before dst's downlink.  Deterministic, stateless (Valiant picks its
  /// intermediate group by hashing (src, dst, seed)).
  [[nodiscard]] Route resolve(Lid src, Lid dst) const;
  /// resolve(src, dst).fwd_latency with a constant fast path for crossbar.
  [[nodiscard]] sim::Time fwd_latency(Lid src, Lid dst) const;

  /// Minimum virtual time any cross-shard interaction spans: one wire + one
  /// switch traversal.  The parallel engine's lookahead window.
  [[nodiscard]] sim::Time min_hop_latency() const {
    return fp_.wire_latency + fp_.switch_latency;
  }
  [[nodiscard]] sim::Time global_wire_latency() const {
    return spec_.global_wire_latency > 0 ? spec_.global_wire_latency : fp_.wire_latency;
  }

  /// Points every switch at `sim` (the unsharded default).
  void set_default_sim(sim::Simulator* sim);
  /// Sharded contention mode: a switch with attached hosts runs on those
  /// hosts' shard (throws if they disagree — the Locality placement
  /// guarantees they cannot); host-less aggs follow their pod, cores spread
  /// round-robin.  `sim_of_lid[lid]` maps attached lids to shard simulators.
  void assign_switch_sims(const std::vector<sim::Simulator*>& sim_of_lid,
                          const std::vector<sim::Simulator*>& all);

  /// Exhaustive channel-dependency check over all attached (src, dst) pairs:
  /// true iff the (link, VL) dependency graph is acyclic, i.e. the routing +
  /// VL assignment cannot credit-deadlock.
  [[nodiscard]] bool deadlock_free() const;

  // ---- telemetry roll-ups -------------------------------------------------
  [[nodiscard]] std::uint64_t total_routed_pkts() const;
  [[nodiscard]] std::uint64_t total_stalls() const;
  [[nodiscard]] std::uint64_t total_drops() const;
  [[nodiscard]] std::int64_t max_queue_hwm_bytes() const;

 private:
  friend class Switch;

  Switch& add_switch(int level, int group);
  void link_switches(int a, int pa, int b, int pb, bool global);
  void build_fattree();
  void build_dragonfly();
  void build_contention_servers();

  [[nodiscard]] Route resolve_fattree(Lid src, Lid dst) const;
  [[nodiscard]] Route resolve_dragonfly(Lid src, Lid dst) const;

  // Dragonfly index helpers.
  [[nodiscard]] int df_router_of(Lid lid) const { return lid / spec_.df_hosts_per_router; }
  [[nodiscard]] int df_group_of(int router) const { return router / spec_.df_routers_per_group; }

  TopologySpec spec_;
  FabricParams fp_;
  std::vector<std::unique_ptr<Switch>> switches_;
  int attached_ = 0;
};

}  // namespace ib12x::ib
