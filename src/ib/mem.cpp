#include "ib/mem.hpp"

#include <stdexcept>
#include <string>

namespace ib12x::ib {

MemoryRegion MemoryDomain::register_memory(void* buf, std::size_t len) {
  MemoryRegion mr;
  mr.addr = reinterpret_cast<std::uint64_t>(buf);
  mr.length = len;
  mr.lkey = next_key_;
  mr.rkey = next_key_;
  ++next_key_;
  by_rkey_[mr.rkey] = mr;
  by_lkey_[mr.lkey] = mr;
  return mr;
}

const MemoryRegion& MemoryDomain::register_memory_const(const void* buf, std::size_t len) {
  last_ = register_memory(const_cast<void*>(buf), len);
  return last_;
}

void MemoryDomain::deregister(const MemoryRegion& mr) {
  by_rkey_.erase(mr.rkey);
  by_lkey_.erase(mr.lkey);
}

std::byte* MemoryDomain::translate_rkey(RKey rkey, std::uint64_t addr, std::uint64_t len) const {
  auto it = by_rkey_.find(rkey);
  if (it == by_rkey_.end()) {
    throw std::runtime_error("MemoryDomain: remote access with unknown rkey " + std::to_string(rkey));
  }
  const MemoryRegion& mr = it->second;
  if (addr < mr.addr || addr + len > mr.addr + mr.length) {
    throw std::runtime_error("MemoryDomain: remote access out of bounds (rkey " + std::to_string(rkey) +
                             ", addr " + std::to_string(addr) + ", len " + std::to_string(len) + ")");
  }
  return reinterpret_cast<std::byte*>(addr);
}

void MemoryDomain::check_lkey(LKey lkey, const void* addr, std::uint64_t len) const {
  auto it = by_lkey_.find(lkey);
  if (it == by_lkey_.end()) {
    throw std::runtime_error("MemoryDomain: local access with unknown lkey " + std::to_string(lkey));
  }
  const MemoryRegion& mr = it->second;
  auto a = reinterpret_cast<std::uint64_t>(addr);
  if (a < mr.addr || a + len > mr.addr + mr.length) {
    throw std::runtime_error("MemoryDomain: local access out of bounds (lkey " + std::to_string(lkey) + ")");
  }
}

}  // namespace ib12x::ib
