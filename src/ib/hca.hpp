// The IBM 12x dual-port HCA model: GX+ bus attachment, per-port send/recv
// DMA engine pools, the hardware send scheduler (round-robin over ready QPs),
// and reliable-connection queue pairs.
//
// Timing model per send WQE (see DESIGN.md §3/§5): once the scheduler hands
// a WQE to a free send engine, the message flows in `model_segment_bytes`
// store-and-forward segments through
//
//   host bus (GX+) → send engine → port link → wire → switch → downlink
//   → recv engine → remote bus → delivery
//
// with every stage a FIFO next-free-time server, so segments of one message
// pipeline across stages and concurrent messages contend realistically.
// The responder ACKs after the last packet (RC), consuming reverse link
// bandwidth; the requester CQE is generated from the ACK.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ib/cq.hpp"
#include "ib/gx_bus.hpp"
#include "ib/mem.hpp"
#include "ib/params.hpp"
#include "ib/topology.hpp"
#include "ib/types.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"

namespace ib12x::ib {

class Hca;
class Port;
class Fabric;
class FaultPlan;
class QueuePair;
struct Transfer;  // per-message pipeline state (hca.cpp)

/// Queue-pair state, reduced to the two states the fault model needs.
/// Ready covers INIT/RTR/RTS (connection setup is not modelled); Error is
/// entered on an injected link/QP fault and flushes both work queues.
enum class QpState : std::uint8_t { Ready, Error };

/// Receive queue shared between QPs on one HCA (verbs SRQ), including the
/// two behaviours the scaled eager path needs:
///
///  * the `srq_limit` low-watermark event (IBV_EVENT_SRQ_LIMIT_REACHED): when
///    a pop leaves fewer than `limit` WQEs and the limit is armed, the handler
///    fires once asynchronously and the limit disarms until re-armed — the
///    consumer's cue to batch-repost drained slots;
///  * RNR backpressure: an inbound message that meets an empty SRQ is parked
///    (payload copied — the sender's bounce buffer recycles at its CQE) and
///    redelivered FIFO as new WQEs are posted, modelling the responder's
///    RNR NAK + requester retry without fabricating an error.
class SharedReceiveQueue {
 public:
  SharedReceiveQueue(Hca& hca, int capacity) : hca_(&hca), capacity_(capacity) {}

  void post(const RecvWr& wr);
  bool pop(RecvWr& out);
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Handler for the asynchronous limit-reached event (fires from the event
  /// queue, never from inside pop()).
  void set_limit_handler(std::function<void()> h) { limit_handler_ = std::move(h); }
  /// Arms the low watermark: the next pop that leaves pending() < limit
  /// schedules the handler and disarms.  limit <= 0 disarms.
  void arm_limit(int limit);
  /// Called on every stall (inbound message parked on an empty queue);
  /// consumers hang telemetry on it.
  void set_stall_hook(std::function<void()> h) { stall_hook_ = std::move(h); }
  /// Redelivers parked messages if WQEs are available.  Recovery path: a QP
  /// reset cleared its error state, but nothing has posted to the SRQ since,
  /// so no drain has run and a parked message could otherwise wait forever.
  void kick() {
    if (!stalled_.empty()) drain_stalled();
  }

  [[nodiscard]] std::size_t stalled() const { return stalled_.size(); }
  [[nodiscard]] std::uint64_t total_stalls() const { return total_stalls_; }
  [[nodiscard]] std::uint64_t limit_events() const { return limit_events_; }

 private:
  friend class Port;

  /// Parks one inbound message until a WQE is posted (Port::deliver).
  void stall(QueuePair* dst, const SendWr& wr, QpNum src_qp_num);
  /// Redelivers the oldest stalled message; called after each post while
  /// both a WQE and a stalled message exist.
  void drain_stalled();

  struct Stalled {
    QueuePair* dst = nullptr;
    QpNum src_qp = 0;
    SendWr wr;                       ///< wr.src repointed at `payload`
    std::vector<std::byte> payload;  ///< owned copy of the wire image
  };

  Hca* hca_;
  int capacity_;
  std::deque<RecvWr> queue_;
  std::deque<Stalled> stalled_;
  std::function<void()> limit_handler_;
  std::function<void()> stall_hook_;
  int limit_ = 0;
  bool armed_ = false;
  std::uint64_t total_stalls_ = 0;
  std::uint64_t limit_events_ = 0;
};

/// Reliable-connection queue pair.  Created unconnected; Fabric::connect
/// pairs two of them.
class QueuePair {
 public:
  void post_send(const SendWr& wr);
  void post_recv(const RecvWr& wr);

  /// Doorbell batching: appends a WQE to the send queue WITHOUT ringing the
  /// doorbell — the hardware scheduler does not see it until ring_doorbell().
  /// Callers must ring before returning to the event loop; the batch is the
  /// set of WQEs built between two doorbells (MVAPICH-style list posting,
  /// one uncached-MMIO write per batch instead of per WQE).
  void post_send_deferred(const SendWr& wr);
  /// Publishes every deferred WQE to the hardware scheduler.  No-op when
  /// nothing is deferred; counts one doorbell otherwise.
  void ring_doorbell();

  [[nodiscard]] QpNum num() const { return num_; }
  [[nodiscard]] Port& port() const { return *port_; }
  [[nodiscard]] QueuePair* peer() const { return peer_; }
  [[nodiscard]] bool connected() const { return peer_ != nullptr; }
  [[nodiscard]] CompletionQueue& send_cq() const { return *scq_; }
  [[nodiscard]] CompletionQueue& recv_cq() const { return *rcq_; }
  [[nodiscard]] QpState state() const { return state_; }

  /// Moves the QP to the error state (no-op if already there) and flushes
  /// every queued WQE — send queue first (published then deferred, in post
  /// order), then the receive queue — as WrFlushErr completions carrying the
  /// original wr_id.  Mirrors real RC semantics where a fatal transport error
  /// drains both work queues so the consumer can reclaim its buffers.
  void transition_to_error();
  /// Error → Ready (verbs QP reset + re-connect collapsed into one step; the
  /// simulator keeps the peer wiring, so recovery is just re-arming).
  void reset();

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t send_wqes_posted() const { return send_wqes_posted_; }
  [[nodiscard]] std::uint64_t doorbells() const { return doorbells_; }
  [[nodiscard]] std::size_t send_queue_depth() const { return sq_.size(); }

 private:
  friend class Hca;
  friend class Port;
  friend class Fabric;

  QueuePair(Port& port, QpNum num, CompletionQueue& scq, CompletionQueue& rcq,
            SharedReceiveQueue* srq, int recv_engine_idx)
      : port_(&port), scq_(&scq), rcq_(&rcq), srq_(srq), num_(num),
        recv_engine_idx_(recv_engine_idx) {}

  /// Takes a receive WQE for an inbound message (QP RQ, or SRQ if attached).
  RecvWr take_recv_wqe();

  Port* port_;
  CompletionQueue* scq_;
  CompletionQueue* rcq_;
  SharedReceiveQueue* srq_;
  QpNum num_;
  int recv_engine_idx_;
  QueuePair* peer_ = nullptr;

  std::deque<SendWr> sq_;
  std::deque<RecvWr> rq_;
  /// WQEs built but not yet published (between post_send_deferred and
  /// ring_doorbell).  Kept out of sq_ so the scheduler cannot service them.
  std::deque<SendWr> deferred_;
  /// True while the QP sits in the port's ready queue or an engine services it.
  bool scheduled_ = false;
  QpState state_ = QpState::Ready;

  /// Immediate flush completion for a WQE that cannot be (or no longer is)
  /// queued: the error state short-circuits the whole pipeline.
  void flush_send_wr(const SendWr& wr);
  void flush_recv_wr(const RecvWr& wr);

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t send_wqes_posted_ = 0;
  std::uint64_t doorbells_ = 0;
};

/// One 12x port: link servers, DMA engine pools, hardware send scheduler.
class Port {
 public:
  [[nodiscard]] Hca& hca() const { return *hca_; }
  [[nodiscard]] int index() const { return index_; }
  /// Topology-assigned local identifier (set when Fabric attaches the HCA).
  [[nodiscard]] Lid lid() const { return lid_; }
  void set_lid(Lid lid) { lid_ = lid; }

  /// Source-side route-length histogram: hops_taken(h) counts messages this
  /// port sent whose route crossed h switches (1 on a crossbar).  Counted at
  /// WQE service time so it is shard-safe by construction.
  [[nodiscard]] std::uint64_t hops_taken(int hops) const {
    return (hops >= 1 && hops <= kMaxRouteHops)
               ? hops_hist_[static_cast<std::size_t>(hops)]
               : 0;
  }

  [[nodiscard]] int send_engine_count() const { return static_cast<int>(send_engines_.size()); }
  [[nodiscard]] sim::Time send_engine_busy(int i) const { return send_engines_[i].busy_time(); }
  [[nodiscard]] sim::Time send_engine_busy_total() const {
    sim::Time t = 0;
    for (const auto& e : send_engines_) t += e.busy_time();
    return t;
  }
  [[nodiscard]] std::uint64_t wqes_serviced() const { return wqes_serviced_; }
  [[nodiscard]] std::uint64_t bytes_tx() const { return bytes_tx_; }

 private:
  friend class Hca;
  friend class QueuePair;
  friend class Fabric;
  friend class Switch;              ///< hop-by-hop traversal hands to stage_downlink
  friend class SharedReceiveQueue;  ///< redelivery of stalled SRQ messages

  Port(Hca& hca, int index);

  /// QP transitioned empty→non-empty: enter the scheduler.
  void notify_ready(QueuePair* qp);
  /// Assigns ready QPs to free engines.
  void try_dispatch();
  /// Runs the pipeline model for qp's head WQE on engine `eng`.
  void service(QueuePair* qp, int eng);
  void engine_done(int eng, QueuePair* qp);

  // Bulk-message pipeline stages.  One Transfer is allocated per serviced
  // WQE and handed stage to stage through the event queue (each event
  // captures just {this, unique_ptr} and fits the kernel's in-place event
  // storage — the old per-stage std::function closures were 5-6 heap
  // allocations per message).
  void stage_engine(std::unique_ptr<Transfer> st);
  void stage_uplink(std::unique_ptr<Transfer> st);
  void stage_downlink(std::unique_ptr<Transfer> st);
  void stage_recv_engine(std::unique_ptr<Transfer> st);
  void stage_dest_bus(std::unique_ptr<Transfer> st);
  /// Schedules delivery (and the requester CQE for signaled WRs) once the
  /// delivered-time is known.  Shared by the small-message fast path and the
  /// bulk pipeline tail.
  void finish_transfer(std::unique_ptr<Transfer> st, sim::Time delivered, sim::Time cqe_time);

  /// Inbound delivery (runs on the destination port, from event context).
  /// Returns false when the message was dropped because the responder had no
  /// receive WQE posted (RNR with a FaultPlan attached; throws without one).
  bool deliver(QueuePair* dst_qp, const SendWr& wr, QpNum src_qp_num);

  /// Responder side of an RDMA Read: runs on the *responder* port (and its
  /// shard) once the request packet arrives, translates the rkey on the
  /// responder memory domain, and streams the response payload back through
  /// this port's engine/link pipeline toward the requester.  The Transfer
  /// arrives response-oriented: st->qp is the responder QP (route source),
  /// st->dst the requester QP that owns the RdmaReadComplete CQE.
  void read_respond(std::unique_ptr<Transfer> st);

  Hca* hca_;
  int index_;
  Lid lid_ = kInvalidLid;

  sim::BandwidthServer link_tx_;  ///< port → switch
  sim::BandwidthServer link_rx_;  ///< switch → port (egress of the switch)
  std::vector<sim::BandwidthServer> send_engines_;
  std::vector<sim::BandwidthServer> recv_engines_;
  std::vector<bool> engine_busy_;
  std::deque<QueuePair*> ready_;

  std::uint64_t wqes_serviced_ = 0;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t hops_hist_[kMaxRouteHops + 1] = {};
  int next_recv_engine_ = 0;
};

class Hca {
 public:
  [[nodiscard]] int node() const { return node_; }
  /// Dense per-fabric index (creation order); keys per-HCA fault RNG streams.
  [[nodiscard]] int uid() const { return uid_; }
  [[nodiscard]] const HcaParams& params() const { return params_; }
  [[nodiscard]] Port& port(int i) { return *ports_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int port_count() const { return static_cast<int>(ports_.size()); }
  [[nodiscard]] MemoryDomain& mem() { return mem_; }
  [[nodiscard]] GxBus& bus() { return bus_; }
  [[nodiscard]] Fabric& fabric() const { return *fabric_; }
  /// The simulator (= shard) this HCA lives on.  With the parallel engine
  /// different HCAs may answer with different simulators; everything an HCA
  /// schedules for itself goes through this one.
  [[nodiscard]] sim::Simulator& simulator() const { return *sim_; }

  /// Creates an RC QP on port `port_idx`.  If `srq` is non-null the QP takes
  /// inbound receive WQEs from it instead of its own RQ.
  QueuePair& create_qp(int port_idx, CompletionQueue& scq, CompletionQueue& rcq,
                       SharedReceiveQueue* srq = nullptr);

  SharedReceiveQueue& create_srq();

  /// All QPs created on port `port_idx` (fault-plan bookkeeping: a link-down
  /// event transitions every QP behind the port to the error state).
  [[nodiscard]] std::vector<QueuePair*> port_qps(int port_idx) const {
    std::vector<QueuePair*> out;
    for (const auto& qp : qps_) {
      if (qp->port_->index() == port_idx) out.push_back(qp.get());
    }
    return out;
  }

  /// Telemetry: instantaneous sum of send-queue depths over every QP.
  [[nodiscard]] std::size_t total_send_queue_depth() const {
    std::size_t d = 0;
    for (const auto& qp : qps_) d += qp->send_queue_depth();
    return d;
  }
  /// Telemetry: total WQEs serviced / bytes transmitted across all ports.
  [[nodiscard]] std::uint64_t total_wqes_serviced() const {
    std::uint64_t n = 0;
    for (const auto& p : ports_) n += p->wqes_serviced();
    return n;
  }
  [[nodiscard]] std::uint64_t total_bytes_tx() const {
    std::uint64_t n = 0;
    for (const auto& p : ports_) n += p->bytes_tx();
    return n;
  }
  /// Telemetry: doorbells rung across all QPs (each plain post_send is one
  /// doorbell; a deferred batch counts one regardless of its WQE count).
  [[nodiscard]] std::uint64_t total_doorbells() const {
    std::uint64_t n = 0;
    for (const auto& qp : qps_) n += qp->doorbells();
    return n;
  }
  [[nodiscard]] sim::Time total_send_engine_busy() const {
    sim::Time t = 0;
    for (const auto& p : ports_) t += p->send_engine_busy_total();
    return t;
  }
  /// Telemetry: messages sent whose route crossed `hops` switches.
  [[nodiscard]] std::uint64_t total_hops_taken(int hops) const {
    std::uint64_t n = 0;
    for (const auto& p : ports_) n += p->hops_taken(hops);
    return n;
  }

 private:
  friend class Fabric;
  friend class Port;

  Hca(Fabric& fabric, int node, const HcaParams& params, sim::Simulator& sim, int uid);

  Fabric* fabric_;
  sim::Simulator* sim_;
  int node_;
  int uid_;
  HcaParams params_;
  GxBus bus_;
  MemoryDomain mem_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::vector<std::unique_ptr<SharedReceiveQueue>> srqs_;
};

}  // namespace ib12x::ib
