#include "ib/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ib12x::ib {

namespace {

/// splitmix64 finalizer: the stateless hash behind Valiant intermediate-group
/// selection.  No shared RNG stream — the choice depends only on
/// (src, dst, seed), so resolve() stays a pure function and sharded runs
/// reproduce the single-threaded oracle bit for bit.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Local-mesh port offset for router i talking to router j (full mesh with
/// the self slot skipped).
int mesh_slot(int i, int j) { return j < i ? j : j - 1; }

}  // namespace

TopologySpec Topology::normalize(TopologySpec s) {
  switch (s.shape) {
    case TopoShape::Crossbar:
      break;
    case TopoShape::FatTree: {
      if (s.fattree_k == 0) {
        int k = 4;
        const std::int64_t need = std::max(s.min_hosts, 1);
        while (static_cast<std::int64_t>(k) * k * k / 4 < need) k += 2;
        s.fattree_k = k;
      }
      if (s.fattree_k < 2 || s.fattree_k % 2 != 0) {
        throw std::invalid_argument(
            "TopologySpec: topo.fattree_k must be an even arity >= 2 (got " +
            std::to_string(s.fattree_k) + ")");
      }
      break;
    }
    case TopoShape::Dragonfly: {
      int h = s.df_global_per_router;
      if (h == 0) {
        if (s.df_routers_per_group > 0) {
          h = std::max(1, s.df_routers_per_group / 2);  // balanced a = 2h
        } else {
          h = 1;
          const std::int64_t need = std::max(s.min_hosts, 1);
          // Balanced dragonfly capacity: p*a*g = h * 2h * (2h^2 + 1).
          while (static_cast<std::int64_t>(h) * 2 * h * (2 * h * h + 1) < need) ++h;
        }
      }
      s.df_global_per_router = h;
      if (s.df_routers_per_group == 0) s.df_routers_per_group = 2 * h;
      if (s.df_hosts_per_router == 0) s.df_hosts_per_router = h;
      if (s.df_groups == 0) {
        s.df_groups = s.df_routers_per_group * s.df_global_per_router + 1;
      }
      if (s.df_hosts_per_router < 1 || s.df_routers_per_group < 1 ||
          s.df_global_per_router < 1 || s.df_groups < 1) {
        throw std::invalid_argument(
            "TopologySpec: dragonfly parameters (topo.df_hosts_per_router, "
            "topo.df_routers_per_group, topo.df_global_per_router, topo.df_groups) "
            "must all be >= 1 after derivation");
      }
      if (s.df_groups > s.df_routers_per_group * s.df_global_per_router + 1) {
        throw std::invalid_argument(
            "TopologySpec: topo.df_groups = " + std::to_string(s.df_groups) +
            " exceeds the a*h + 1 = " +
            std::to_string(s.df_routers_per_group * s.df_global_per_router + 1) +
            " groups the per-group global channels can reach (raise "
            "topo.df_routers_per_group or topo.df_global_per_router)");
      }
      break;
    }
  }
  return s;
}

std::int64_t Topology::capacity_of(const TopologySpec& s) {
  switch (s.shape) {
    case TopoShape::Crossbar:
      return -1;  // single switch, radix grows with attachments
    case TopoShape::FatTree: {
      const std::int64_t k = s.fattree_k;
      return k * k * k / 4;
    }
    case TopoShape::Dragonfly:
      return static_cast<std::int64_t>(s.df_groups) * s.df_routers_per_group *
             s.df_hosts_per_router;
  }
  return -1;
}

Topology::Topology(TopologySpec spec, FabricParams fp)
    : spec_(normalize(spec)), fp_(fp) {
  switch (spec_.shape) {
    case TopoShape::Crossbar:
      add_switch(/*level=*/0, /*group=*/0);  // ports grow as hosts attach
      break;
    case TopoShape::FatTree:
      build_fattree();
      break;
    case TopoShape::Dragonfly:
      build_dragonfly();
      break;
  }
  if (spec_.contention && spec_.shape != TopoShape::Crossbar) {
    build_contention_servers();
  }
}

Switch& Topology::add_switch(int level, int group) {
  auto sw = std::make_unique<Switch>();
  sw->topo_ = this;
  sw->id_ = static_cast<int>(switches_.size());
  sw->level_ = level;
  sw->group_ = group;
  switches_.push_back(std::move(sw));
  return *switches_.back();
}

void Topology::link_switches(int a, int pa, int b, int pb, bool global) {
  Switch& sa = *switches_[static_cast<std::size_t>(a)];
  Switch& sb = *switches_[static_cast<std::size_t>(b)];
  if (pa >= static_cast<int>(sa.ports_.size())) sa.ports_.resize(static_cast<std::size_t>(pa) + 1);
  if (pb >= static_cast<int>(sb.ports_.size())) sb.ports_.resize(static_cast<std::size_t>(pb) + 1);
  sa.ports_[static_cast<std::size_t>(pa)] = Switch::Link{b, pb, kInvalidLid, global};
  sb.ports_[static_cast<std::size_t>(pb)] = Switch::Link{a, pa, kInvalidLid, global};
}

void Topology::build_fattree() {
  const int k = spec_.fattree_k;
  const int half = k / 2;
  const int pods = k;
  const int n_edge = pods * half;
  const int n_agg = pods * half;
  const int n_core = half * half;
  const std::int64_t lids = capacity_of(spec_);

  for (int p = 0; p < pods; ++p)
    for (int e = 0; e < half; ++e) add_switch(/*level=*/0, /*group=*/p);
  for (int p = 0; p < pods; ++p)
    for (int a = 0; a < half; ++a) add_switch(/*level=*/1, /*group=*/p);
  for (int c = 0; c < n_core; ++c) add_switch(/*level=*/2, /*group=*/-1);

  const auto edge_id = [&](int pod, int e) { return pod * half + e; };
  const auto agg_id = [&](int pod, int a) { return n_edge + pod * half + a; };
  const auto core_id = [&](int c) { return n_edge + n_agg + c; };

  // Host ports (edge ports [0, half)): lids assigned pod-major, edge-major.
  for (int pod = 0; pod < pods; ++pod) {
    for (int e = 0; e < half; ++e) {
      Switch& sw = *switches_[static_cast<std::size_t>(edge_id(pod, e))];
      sw.ports_.resize(static_cast<std::size_t>(k));
      for (int i = 0; i < half; ++i) {
        const Lid lid = static_cast<Lid>(pod * half * half + e * half + i);
        sw.ports_[static_cast<std::size_t>(i)] = Switch::Link{-1, -1, lid, false};
      }
    }
  }
  // Edge <-> agg (within the pod) and agg <-> core.
  for (int pod = 0; pod < pods; ++pod) {
    for (int e = 0; e < half; ++e)
      for (int j = 0; j < half; ++j)
        link_switches(edge_id(pod, e), half + j, agg_id(pod, j), e, /*global=*/false);
    for (int a = 0; a < half; ++a)
      for (int i = 0; i < half; ++i)
        link_switches(agg_id(pod, a), half + i, core_id(a * half + i), pod, /*global=*/false);
  }

  // D-mod-k forwarding: down-routes are exact, up-routes hash on the
  // destination lid so every (src, dst) pair takes one deterministic path
  // and the paths spread over the aggs/cores.
  const auto pod_of = [&](std::int64_t lid) { return static_cast<int>(lid / (half * half)); };
  for (int pod = 0; pod < pods; ++pod) {
    for (int e = 0; e < half; ++e) {
      Switch& sw = *switches_[static_cast<std::size_t>(edge_id(pod, e))];
      sw.fwd_.resize(static_cast<std::size_t>(lids));
      for (std::int64_t lid = 0; lid < lids; ++lid) {
        const bool mine = pod_of(lid) == pod && (lid / half) % half == e;
        sw.fwd_[static_cast<std::size_t>(lid)] =
            static_cast<std::int16_t>(mine ? lid % half : half + lid % half);
      }
    }
    for (int a = 0; a < half; ++a) {
      Switch& sw = *switches_[static_cast<std::size_t>(agg_id(pod, a))];
      sw.fwd_.resize(static_cast<std::size_t>(lids));
      for (std::int64_t lid = 0; lid < lids; ++lid) {
        const std::int64_t edge_in_pod = (lid / half) % half;
        sw.fwd_[static_cast<std::size_t>(lid)] = static_cast<std::int16_t>(
            pod_of(lid) == pod ? edge_in_pod : half + edge_in_pod);
      }
    }
  }
  for (int c = 0; c < n_core; ++c) {
    Switch& sw = *switches_[static_cast<std::size_t>(core_id(c))];
    sw.fwd_.resize(static_cast<std::size_t>(lids));
    for (std::int64_t lid = 0; lid < lids; ++lid) {
      sw.fwd_[static_cast<std::size_t>(lid)] = static_cast<std::int16_t>(pod_of(lid));
    }
  }
}

void Topology::build_dragonfly() {
  const int p = spec_.df_hosts_per_router;
  const int a = spec_.df_routers_per_group;
  const int h = spec_.df_global_per_router;
  const int g = spec_.df_groups;
  const std::int64_t lids = capacity_of(spec_);
  const int radix = p + (a - 1) + h;

  for (int r = 0; r < g * a; ++r) add_switch(/*level=*/0, /*group=*/r / a);

  for (int r = 0; r < g * a; ++r) {
    Switch& sw = *switches_[static_cast<std::size_t>(r)];
    sw.ports_.resize(static_cast<std::size_t>(radix));
    for (int i = 0; i < p; ++i) {
      sw.ports_[static_cast<std::size_t>(i)] =
          Switch::Link{-1, -1, static_cast<Lid>(r * p + i), false};
    }
  }
  // Local full mesh within each group.
  for (int grp = 0; grp < g; ++grp) {
    for (int i = 0; i < a; ++i)
      for (int j = i + 1; j < a; ++j)
        link_switches(grp * a + i, p + mesh_slot(i, j), grp * a + j, p + mesh_slot(j, i),
                      /*global=*/false);
  }
  // Canonical global wiring: router i of group G owns global channels
  // gc in [i*h, (i+1)*h), channel gc reaching group (gc < G ? gc : gc + 1).
  // Wire each (G, D) pair once, from the lower-numbered group's side.
  for (int G = 0; G < g; ++G) {
    for (int D = G + 1; D < g; ++D) {
      const int gc_src = D - 1;  // D > G
      const int gc_dst = G;      // G < D
      link_switches(G * a + gc_src / h, p + (a - 1) + gc_src % h,
                    D * a + gc_dst / h, p + (a - 1) + gc_dst % h, /*global=*/true);
    }
  }

  for (int r = 0; r < g * a; ++r) {
    Switch& sw = *switches_[static_cast<std::size_t>(r)];
    const int G = r / a;
    const int i = r % a;
    // Per-group steering: the port towards each remote group (own global
    // channel, or a local hop to the router owning it).
    sw.toward_group_.assign(static_cast<std::size_t>(g), -1);
    for (int D = 0; D < g; ++D) {
      if (D == G) continue;
      const int gc = D < G ? D : D - 1;
      const int owner = gc / h;
      sw.toward_group_[static_cast<std::size_t>(D)] = static_cast<std::int16_t>(
          owner == i ? p + (a - 1) + gc % h : p + mesh_slot(i, owner));
    }
    // In-group lid forwarding (host port or one local hop).
    sw.fwd_.assign(static_cast<std::size_t>(lids), -1);
    for (std::int64_t lid = G * static_cast<std::int64_t>(a) * p;
         lid < (G + 1) * static_cast<std::int64_t>(a) * p; ++lid) {
      const int j = static_cast<int>(lid / p) % a;
      sw.fwd_[static_cast<std::size_t>(lid)] =
          static_cast<std::int16_t>(j == i ? lid % p : p + mesh_slot(i, j));
    }
  }
}

void Topology::build_contention_servers() {
  for (auto& swp : switches_) {
    Switch& sw = *swp;
    const std::string base = "sw" + std::to_string(sw.id_);
    const double bp_rate =
        fp_.downlink_rate_gbps * std::min(sw.radix(), spec_.nonblocking_radix);
    sw.backplane_ = sim::BandwidthServer(base + ".bp", bp_rate);
    sw.out_srv_.clear();
    sw.out_srv_.resize(sw.ports_.size());
    for (std::size_t port = 0; port < sw.ports_.size(); ++port) {
      if (sw.ports_[port].peer_sw >= 0) {
        sw.out_srv_[port] = std::make_unique<sim::BandwidthServer>(
            base + ".out" + std::to_string(port), fp_.downlink_rate_gbps);
      }
    }
  }
}

Lid Topology::attach_host() {
  const std::int64_t cap = host_capacity();
  if (cap >= 0 && attached_ >= cap) {
    throw std::invalid_argument(
        "Topology::attach_host: shape provides " + std::to_string(cap) +
        " host ports, all in use (raise topo.fattree_k or the dragonfly "
        "group parameters, or lower the host count)");
  }
  const Lid lid = static_cast<Lid>(attached_++);
  if (spec_.shape == TopoShape::Crossbar) {
    Switch& sw = *switches_[0];
    sw.ports_.push_back(Switch::Link{-1, -1, lid, false});
    sw.fwd_.push_back(static_cast<std::int16_t>(lid));
    if (spec_.contention) {
      // Radix grows with each attachment; rebuild the arbiter at the new
      // aggregate rate (attachment precedes all traffic, so the server is
      // idle).  Rate caps at nonblocking_radix ports — the point where a
      // monolithic crossbar stops scaling.
      const double bp_rate =
          fp_.downlink_rate_gbps * std::min(sw.radix(), spec_.nonblocking_radix);
      sw.backplane_ = sim::BandwidthServer("sw0.bp", bp_rate);
      sw.out_srv_.resize(sw.ports_.size());  // host ports: no out server
    }
  }
  return lid;
}

int Topology::edge_switch_of(Lid lid) const {
  switch (spec_.shape) {
    case TopoShape::Crossbar:
      return 0;
    case TopoShape::FatTree:
      return lid / (spec_.fattree_k / 2);
    case TopoShape::Dragonfly:
      return df_router_of(lid);
  }
  return 0;
}

namespace {

/// Shared tail: accumulate forward latency over the hop list.  The wire into
/// hop 0 is the host uplink; the wire into hop i+1 is hop i's outgoing link
/// (global cables may be longer).
void finish_route(Route& r, const FabricParams& fp, sim::Time global_wire) {
  sim::Time wire_in = fp.wire_latency;
  for (int i = 0; i < r.count; ++i) {
    r.fwd_latency += wire_in + fp.switch_latency;
    wire_in = r.hop[i].global ? global_wire : fp.wire_latency;
  }
}

}  // namespace

Route Topology::resolve(Lid src, Lid dst) const {
  switch (spec_.shape) {
    case TopoShape::Crossbar: {
      Route r;
      r.count = 1;
      r.hop[0] = RouteHop{0, static_cast<std::int16_t>(dst), 0, false};
      r.fwd_latency = fp_.wire_latency + fp_.switch_latency;
      return r;
    }
    case TopoShape::FatTree:
      return resolve_fattree(src, dst);
    case TopoShape::Dragonfly:
      return resolve_dragonfly(src, dst);
  }
  return {};
}

Route Topology::resolve_fattree(Lid src, Lid dst) const {
  Route r;
  int cur = edge_switch_of(src);
  while (true) {
    const Switch& sw = *switches_[static_cast<std::size_t>(cur)];
    const std::int16_t out = sw.fwd_[dst];
    if (r.count >= kMaxRouteHops) {
      throw std::logic_error("Topology::resolve: fat-tree route exceeds hop bound");
    }
    r.hop[r.count++] = RouteHop{static_cast<std::int16_t>(cur), out, 0, false};
    const Switch::Link& l = sw.ports_[static_cast<std::size_t>(out)];
    if (l.peer_sw < 0) break;  // host port: arrived at dst's edge switch
    cur = l.peer_sw;
  }
  finish_route(r, fp_, global_wire_latency());
  return r;
}

Route Topology::resolve_dragonfly(Lid src, Lid dst) const {
  const int g = spec_.df_groups;
  const int gsrc = df_group_of(df_router_of(src));
  const int gdst = df_group_of(df_router_of(dst));

  // Valiant: bounce through a hash-chosen intermediate group (never src's or
  // dst's own), spreading adversarial traffic over all global channels.
  int imm = -1;
  if (spec_.routing == RoutePolicy::Valiant && gsrc != gdst && g > 2) {
    imm = static_cast<int>(
        mix64(spec_.valiant_seed ^ (static_cast<std::uint64_t>(src) << 20 ^ dst)) %
        static_cast<std::uint64_t>(g));
    while (imm == gsrc || imm == gdst) imm = (imm + 1) % g;
  }

  Route r;
  int cur = df_router_of(src);
  std::uint8_t vl = 0;
  bool to_imm = imm >= 0;
  while (true) {
    const Switch& sw = *switches_[static_cast<std::size_t>(cur)];
    if (to_imm && sw.group() == imm) to_imm = false;
    const std::int16_t out = sw.group() == gdst
                                 ? sw.fwd_[dst]
                                 : sw.toward_group_[static_cast<std::size_t>(
                                       to_imm ? imm : gdst)];
    if (r.count >= kMaxRouteHops) {
      throw std::logic_error("Topology::resolve: dragonfly route exceeds hop bound");
    }
    const Switch::Link& l = sw.ports_[static_cast<std::size_t>(out)];
    r.hop[r.count++] = RouteHop{static_cast<std::int16_t>(cur), out, vl, l.global};
    if (l.peer_sw < 0) break;  // host port: arrived
    if (l.global) ++vl;  // VL = global hops taken: the dragonfly deadlock discipline
    cur = l.peer_sw;
  }
  finish_route(r, fp_, global_wire_latency());
  return r;
}

sim::Time Topology::fwd_latency(Lid src, Lid dst) const {
  if (spec_.shape == TopoShape::Crossbar) {
    return fp_.wire_latency + fp_.switch_latency;
  }
  return resolve(src, dst).fwd_latency;
}

void Topology::set_default_sim(sim::Simulator* sim) {
  for (auto& sw : switches_) sw->sim_ = sim;
}

void Topology::assign_switch_sims(const std::vector<sim::Simulator*>& sim_of_lid,
                                  const std::vector<sim::Simulator*>& all) {
  // Pass 1: a switch with attached hosts lives on their shard.  Hop events
  // mutate switch queue state, and the final hop posts to the destination
  // port with sub-window latency, so hosts sharing an edge switch must share
  // its shard — the Locality placement guarantees this; anything else is a
  // configuration error.
  for (auto& swp : switches_) {
    Switch& sw = *swp;
    sim::Simulator* sim = nullptr;
    for (const Switch::Link& l : sw.ports_) {
      if (l.peer_sw >= 0 || l.host == kInvalidLid) continue;
      if (l.host >= sim_of_lid.size()) continue;  // beyond attached hosts
      sim::Simulator* s = sim_of_lid[l.host];
      if (sim == nullptr) {
        sim = s;
      } else if (sim != s) {
        throw std::invalid_argument(
            "Topology::assign_switch_sims: hosts attached to switch " +
            std::to_string(sw.id_) +
            " are placed on different shards; contention mode requires "
            "switch-locality placement (shard_placement = Locality)");
      }
    }
    sw.sim_ = sim;  // may stay null: host-less or fully unattached switch
  }
  // Pass 2: host-less switches with a group (fat-tree aggs) follow their
  // group's edge shard; cores (and unattached edges) spread round-robin.
  for (auto& swp : switches_) {
    Switch& sw = *swp;
    if (sw.sim_ != nullptr) continue;
    if (sw.group_ >= 0) {
      for (const auto& other : switches_) {
        if (other->group_ == sw.group_ && other->sim_ != nullptr) {
          sw.sim_ = other->sim_;
          break;
        }
      }
    }
    if (sw.sim_ == nullptr) {
      sw.sim_ = all[static_cast<std::size_t>(sw.id_) % all.size()];
    }
  }
}

bool Topology::deadlock_free() const {
  // Channels are (switch, out-port, VL) triples over switch-to-switch links.
  // Walk every attached (src, dst) route and add a dependency edge between
  // consecutive channels; the routing + VL assignment is deadlock-free iff
  // the resulting graph is acyclic.
  int max_ports = 1;
  for (const auto& sw : switches_) max_ports = std::max(max_ports, sw->radix());
  constexpr int kVl = 4;
  const auto chan = [&](const RouteHop& hop) {
    return (static_cast<std::int64_t>(hop.sw) * max_ports + hop.out_port) * kVl + hop.vl;
  };

  const std::int64_t n_chan =
      static_cast<std::int64_t>(switches_.size()) * max_ports * kVl;
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(n_chan));
  std::unordered_set<std::int64_t> seen_edges;

  for (int src = 0; src < attached_; ++src) {
    for (int dst = 0; dst < attached_; ++dst) {
      if (src == dst) continue;
      const Route r = resolve(static_cast<Lid>(src), static_cast<Lid>(dst));
      std::int64_t prev = -1;
      for (int i = 0; i < r.count; ++i) {
        const Switch& sw = *switches_[static_cast<std::size_t>(r.hop[i].sw)];
        if (sw.ports_[static_cast<std::size_t>(r.hop[i].out_port)].peer_sw < 0) continue;
        const std::int64_t c = chan(r.hop[i]);
        if (prev >= 0 && seen_edges.insert(prev * n_chan + c).second) {
          adj[static_cast<std::size_t>(prev)].push_back(static_cast<std::int32_t>(c));
        }
        prev = c;
      }
    }
  }

  // Iterative three-colour DFS cycle detection.
  std::vector<std::uint8_t> colour(static_cast<std::size_t>(n_chan), 0);
  std::vector<std::pair<std::int32_t, std::size_t>> stack;
  for (std::int64_t start = 0; start < n_chan; ++start) {
    if (colour[static_cast<std::size_t>(start)] != 0) continue;
    stack.emplace_back(static_cast<std::int32_t>(start), 0);
    colour[static_cast<std::size_t>(start)] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto& edges = adj[static_cast<std::size_t>(node)];
      if (idx < edges.size()) {
        const std::int32_t next = edges[idx++];
        if (colour[static_cast<std::size_t>(next)] == 1) return false;  // back edge
        if (colour[static_cast<std::size_t>(next)] == 0) {
          colour[static_cast<std::size_t>(next)] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        colour[static_cast<std::size_t>(node)] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

std::uint64_t Topology::total_routed_pkts() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) n += sw->routed_pkts();
  return n;
}

std::uint64_t Topology::total_stalls() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) n += sw->stalls();
  return n;
}

std::uint64_t Topology::total_drops() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) n += sw->drops();
  return n;
}

std::int64_t Topology::max_queue_hwm_bytes() const {
  std::int64_t n = 0;
  for (const auto& sw : switches_) n = std::max(n, sw->queue_hwm_bytes());
  return n;
}

}  // namespace ib12x::ib
