#include "ib/fabric.hpp"

#include <stdexcept>
#include <utility>

#include "ib/fault.hpp"

namespace ib12x::ib {

Fabric::Fabric(sim::Simulator& sim, HcaParams hca_params, FabricParams fabric_params,
               TopologySpec topo_spec)
    : sim_(sim), hca_params_(hca_params), fabric_params_(fabric_params),
      topology_(std::make_unique<Topology>(topo_spec, fabric_params)) {
  // Switches run on the fabric's own simulator unless the parallel engine
  // re-homes them (Topology::assign_switch_sims, driven by mvx::World).
  topology_->set_default_sim(&sim_);
}

Fabric::~Fabric() = default;

void Fabric::attach_fault(std::unique_ptr<FaultPlan> plan) { fault_ = std::move(plan); }

Hca& Fabric::add_hca(int node) { return add_hca(node, sim_); }

Hca& Fabric::add_hca(int node, sim::Simulator& sim) {
  const int uid = static_cast<int>(hcas_.size());
  hcas_.push_back(std::unique_ptr<Hca>(new Hca(*this, node, hca_params_, sim, uid)));
  Hca& hca = *hcas_.back();
  // Every port gets the next LID in attach order; the topology's host-port
  // enumeration follows the same order, so LID assignment is just a counter.
  for (int p = 0; p < hca.port_count(); ++p) {
    hca.port(p).set_lid(topology_->attach_host());
  }
  return hca;
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  if (a.connected() || b.connected()) {
    throw std::logic_error("Fabric::connect: QP already connected");
  }
  if (&a == &b) throw std::logic_error("Fabric::connect: cannot self-connect a QP");
  a.peer_ = &b;
  b.peer_ = &a;
}

}  // namespace ib12x::ib
