#include "ib/fabric.hpp"

#include <stdexcept>
#include <utility>

#include "ib/fault.hpp"

namespace ib12x::ib {

Fabric::Fabric(sim::Simulator& sim, HcaParams hca_params, FabricParams fabric_params)
    : sim_(sim), hca_params_(hca_params), fabric_params_(fabric_params) {}

Fabric::~Fabric() = default;

void Fabric::attach_fault(std::unique_ptr<FaultPlan> plan) { fault_ = std::move(plan); }

Hca& Fabric::add_hca(int node) { return add_hca(node, sim_); }

Hca& Fabric::add_hca(int node, sim::Simulator& sim) {
  const int uid = static_cast<int>(hcas_.size());
  hcas_.push_back(std::unique_ptr<Hca>(new Hca(*this, node, hca_params_, sim, uid)));
  return *hcas_.back();
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  if (a.connected() || b.connected()) {
    throw std::logic_error("Fabric::connect: QP already connected");
  }
  if (&a == &b) throw std::logic_error("Fabric::connect: cannot self-connect a QP");
  a.peer_ = &b;
  b.peer_ = &a;
}

}  // namespace ib12x::ib
