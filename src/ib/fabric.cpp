#include "ib/fabric.hpp"

#include <stdexcept>

namespace ib12x::ib {

Hca& Fabric::add_hca(int node) {
  hcas_.push_back(std::unique_ptr<Hca>(new Hca(*this, node, hca_params_)));
  return *hcas_.back();
}

void Fabric::connect(QueuePair& a, QueuePair& b) {
  if (a.connected() || b.connected()) {
    throw std::logic_error("Fabric::connect: QP already connected");
  }
  if (&a == &b) throw std::logic_error("Fabric::connect: cannot self-connect a QP");
  a.peer_ = &b;
  b.peer_ = &a;
}

}  // namespace ib12x::ib
