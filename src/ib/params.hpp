// Calibration constants for the IBM 12x dual-port HCA model.
//
// Sources: the paper's §2.2 hardware description (GX+ @ 950 MHz ⇒ 7.6 GB/s
// theoretical; 12x ⇒ 3 GB/s/direction/port; multiple send/recv DMA engines
// per port serviced round-robin over ready QPs) and its measured envelope
// (original 1 QP/port: 1661 MB/s uni / ~3.1 GB/s bi; 4 QP/port EPC:
// 2745 MB/s uni / 5362 MB/s bi).  See DESIGN.md §5.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ib12x::ib {

struct HcaParams {
  int ports = 2;

  /// DMA engine pools.  The paper never publishes the exact count; 4 per
  /// direction per port makes a single engine the 1-QP bottleneck and four
  /// of them oversubscribe the 12x link, which is exactly the regime the
  /// measurements show.
  int send_engines_per_port = 4;
  int recv_engines_per_port = 4;

  /// Peak of one send/recv DMA engine, GB/s.  1.70 reproduces the 1661 MB/s
  /// single-rail uni-bandwidth after per-WQE overheads.
  double engine_rate_gbps = 1.70;

  /// 12x link, GB/s per direction (payload rate is shaved further by
  /// per-MTU packet headers, see pkt_header_bytes).
  double link_rate_gbps = 3.0;

  /// GX+ bus: per-direction and combined effective caps, GB/s.  The
  /// combined cap (DMA setup turnaround, CQE/doorbell traffic) is what
  /// limits bi-directional traffic to ~5.4 GB/s on the real machine.
  double bus_dir_rate_gbps = 2.95;
  double bus_core_rate_gbps = 5.5;

  std::int64_t mtu_bytes = 2048;
  std::int64_t pkt_header_bytes = 66;  ///< LRH+BTH+iCRC+VCRC per MTU packet

  /// HCA-side cost to fetch + translate one WQE once an engine picks it up.
  sim::Time wqe_fetch = sim::nanoseconds(250);
  /// Responder-side ACK generation delay after the last packet lands.
  sim::Time ack_gen = sim::nanoseconds(150);
  /// CQE writeback delay (HCA internal) before the host can see it.
  sim::Time cqe_delay = sim::nanoseconds(200);

  std::int64_t ack_wire_bytes = 78;  ///< ACK packet incl. headers
  std::int64_t cqe_bus_bytes = 64;   ///< CQE DMA over the bus

  /// Pipeline-modelling granularity: stage k+1 of the
  /// bus→engine→link→switch→link→engine→bus chain may start once stage k has
  /// moved one segment of this size (cut-through), and the final segment
  /// drains the chain at this granularity.  A couple of MTUs approximates
  /// the HCA's packet-level store-and-forward without per-packet events.
  std::int64_t model_segment_bytes = 4 * 1024;

  int max_send_wqes = 1024;
  int max_recv_wqes = 8192;
};

struct FabricParams {
  /// One-way cable + SerDes latency per hop (node↔switch).
  sim::Time wire_latency = sim::nanoseconds(500);
  /// Switch forwarding latency (cut-through era, ~200 ns).
  sim::Time switch_latency = sim::nanoseconds(200);
  /// Switch egress (downlink) rate towards each HCA port, GB/s/direction.
  double downlink_rate_gbps = 3.0;
};

}  // namespace ib12x::ib
