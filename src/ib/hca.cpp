#include "ib/hca.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "ib/fabric.hpp"
#include "ib/fault.hpp"
#include "sim/log.hpp"

namespace ib12x::ib {

// ---------------------------------------------------------------- SRQ / QP

void SharedReceiveQueue::post(const RecvWr& wr) {
  if (static_cast<int>(queue_.size()) >= capacity_) {
    throw std::runtime_error("SharedReceiveQueue overflow");
  }
  queue_.push_back(wr);
  if (!stalled_.empty()) drain_stalled();
}

bool SharedReceiveQueue::pop(RecvWr& out) {
  if (queue_.empty()) return false;
  out = queue_.front();
  queue_.pop_front();
  if (armed_ && static_cast<int>(queue_.size()) < limit_) {
    // Verbs semantics: the limit event is asynchronous (it surfaces on the
    // async event channel, not inline with the consuming work request) and
    // one-shot — it disarms until the consumer re-arms after reposting.
    armed_ = false;
    ++limit_events_;
    if (limit_handler_) {
      sim::Simulator& sim = hca_->simulator();
      sim.at(sim.now(), limit_handler_);
    }
  }
  return true;
}

void SharedReceiveQueue::arm_limit(int limit) {
  limit_ = limit;
  armed_ = limit > 0;
}

void SharedReceiveQueue::stall(QueuePair* dst, const SendWr& wr, QpNum src_qp_num) {
  Stalled s;
  s.dst = dst;
  s.src_qp = src_qp_num;
  s.wr = wr;
  if (wr.length > 0) {
    // The sender's bounce buffer recycles at its (already successful) CQE,
    // so the parked message must own its wire image.
    s.payload.assign(wr.src, wr.src + wr.length);
    s.wr.src = s.payload.data();
  }
  stalled_.push_back(std::move(s));
  ++total_stalls_;
  if (stall_hook_) stall_hook_();
}

void SharedReceiveQueue::drain_stalled() {
  // One scan per drain: an entry whose destination QP is flushing (error
  // state) rotates to the back — its sender already completed successfully,
  // so dropping it would lose data; it redelivers once the QP recovers.
  std::size_t scan = stalled_.size();
  while (scan-- > 0 && !queue_.empty()) {
    Stalled s = std::move(stalled_.front());
    stalled_.pop_front();
    if (s.dst->state() != QpState::Ready) {
      stalled_.push_back(std::move(s));
      continue;
    }
    // Redeliver through the normal path; the WQE now exists so this consumes
    // it.  The payload copy keeps the wire image alive past the sender CQE.
    (void)s.dst->port().deliver(s.dst, s.wr, s.src_qp);
  }
}

void QueuePair::post_send(const SendWr& wr) {
  if (peer_ == nullptr) throw std::logic_error("QueuePair::post_send: QP not connected");
  if (state_ == QpState::Error) {
    // Real RC semantics: posting to an error-state QP is legal but the WQE
    // completes immediately with a flush error and never reaches the wire.
    flush_send_wr(wr);
    return;
  }
  if (static_cast<int>(sq_.size()) >= port_->hca().params().max_send_wqes) {
    throw std::runtime_error("QueuePair::post_send: send queue full (qp " + std::to_string(num_) + ")");
  }
  if (wr.length > 0 && wr.src == nullptr) {
    throw std::logic_error("QueuePair::post_send: null source with non-zero length");
  }
  sq_.push_back(wr);
  ++send_wqes_posted_;
  ++doorbells_;
  if (!scheduled_) port_->notify_ready(this);
}

void QueuePair::post_send_deferred(const SendWr& wr) {
  if (peer_ == nullptr) throw std::logic_error("QueuePair::post_send_deferred: QP not connected");
  if (state_ == QpState::Error) {
    flush_send_wr(wr);
    return;
  }
  if (static_cast<int>(sq_.size() + deferred_.size()) >= port_->hca().params().max_send_wqes) {
    throw std::runtime_error("QueuePair::post_send_deferred: send queue full (qp " +
                             std::to_string(num_) + ")");
  }
  if (wr.length > 0 && wr.src == nullptr) {
    throw std::logic_error("QueuePair::post_send_deferred: null source with non-zero length");
  }
  deferred_.push_back(wr);
  ++send_wqes_posted_;
}

void QueuePair::ring_doorbell() {
  if (deferred_.empty()) return;
  for (auto& wr : deferred_) sq_.push_back(wr);
  deferred_.clear();
  ++doorbells_;
  if (!scheduled_) port_->notify_ready(this);
}

void QueuePair::post_recv(const RecvWr& wr) {
  if (srq_ != nullptr) throw std::logic_error("QueuePair::post_recv: QP uses an SRQ");
  if (state_ == QpState::Error) {
    flush_recv_wr(wr);
    return;
  }
  if (static_cast<int>(rq_.size()) >= port_->hca().params().max_recv_wqes) {
    throw std::runtime_error("QueuePair::post_recv: receive queue full");
  }
  rq_.push_back(wr);
}

void QueuePair::flush_send_wr(const SendWr& wr) {
  Wc wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = wr.opcode == Opcode::Send       ? WcOpcode::SendComplete
              : wr.opcode == Opcode::RdmaRead ? WcOpcode::RdmaReadComplete
                                              : WcOpcode::RdmaWriteComplete;
  wc.status = WcStatus::WrFlushErr;
  wc.byte_len = wr.length;
  wc.qp_num = num_;
  wc.timestamp = port_->hca().simulator().now();
  scq_->push(wc);
}

void QueuePair::flush_recv_wr(const RecvWr& wr) {
  Wc wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = WcOpcode::RecvComplete;
  wc.status = WcStatus::WrFlushErr;
  wc.byte_len = 0;
  wc.qp_num = num_;
  wc.timestamp = port_->hca().simulator().now();
  rcq_->push(wc);
}

void QueuePair::transition_to_error() {
  if (state_ == QpState::Error) return;
  state_ = QpState::Error;
  // Swap the queues out first: a flush completion callback may post follow-up
  // WQEs (which take the immediate-flush path above) and must not mutate the
  // deques mid-drain.  Flush order matches real hardware: send queue in post
  // order (published, then the un-rung deferred batch), then the receive side.
  std::deque<SendWr> sq;
  sq.swap(sq_);
  std::deque<SendWr> def;
  def.swap(deferred_);
  std::deque<RecvWr> rq;
  rq.swap(rq_);
  for (const auto& wr : sq) flush_send_wr(wr);
  for (const auto& wr : def) flush_send_wr(wr);
  for (const auto& wr : rq) flush_recv_wr(wr);
}

void QueuePair::reset() { state_ = QpState::Ready; }

RecvWr QueuePair::take_recv_wqe() {
  RecvWr wr;
  if (srq_ != nullptr) {
    if (!srq_->pop(wr)) {
      throw std::runtime_error("QP " + std::to_string(num_) + ": inbound message with empty SRQ (RNR)");
    }
    return wr;
  }
  if (rq_.empty()) {
    throw std::runtime_error("QP " + std::to_string(num_) + ": inbound message with empty RQ (RNR)");
  }
  wr = rq_.front();
  rq_.pop_front();
  return wr;
}

// ----------------------------------------------------------------- Transfer

/// Per-message pipeline state.  Allocated once when an engine picks up a
/// WQE and handed stage to stage through the event queue; the stage events
/// capture only {Port*, unique_ptr<Transfer>} so they fit the kernel's
/// 48-byte in-place event storage (SendWr alone is larger than that).
struct Transfer {
  SendWr wr;
  QueuePair* qp = nullptr;   ///< requester QP
  QueuePair* dst = nullptr;  ///< responder QP
  Port* dport = nullptr;
  Hca* dhca = nullptr;
  sim::BandwidthServer* engine = nullptr;   ///< send DMA engine (source port)
  sim::BandwidthServer* rengine = nullptr;  ///< recv DMA engine (dest port)
  // `eng` is dead once stage_engine has captured it; the contention-mode hop
  // chain (Switch::hop) reuses the slot as its hop index.  A union instead
  // of a new member because this struct's allocation size must stay exactly
  // as it was (see the fault-state note below).
  union {
    int eng = 0;  ///< send engine index (service → stage_engine)
    int hop_idx;  ///< contention mode: position in the re-resolved route
  };
  QpNum src_qp_num = 0;
  std::int64_t bytes = 0;
  std::int64_t wire_bytes = 0;
  // No fault state here: an injected failure verdict (AckDrop, RNR drop) is
  // tracked in the FaultPlan's side set, keyed by this Transfer's address, so
  // the fault-free pipeline's allocation sizes stay byte-identical (the
  // interval pin-down cache above is sensitive to heap layout).
  sim::Time t_bus_seg = 0, t_eng_seg = 0, t_tx_seg = 0, t_dl_seg = 0, t_re_seg = 0,
            t_dbus_seg = 0;
  // Upstream last-byte bounds, filled in as the stages run.  tx_last changes
  // meaning once stage 3 runs: stage_uplink (latency-only) or the Switch::hop
  // chain (contention mode) advances it to the last-byte arrival bound at the
  // final switch's egress, which stage_downlink consumes.  No route state is
  // stored here — routes are pure functions of (src lid, dst lid) and are
  // re-resolved wherever needed, for the same allocation-size reason as above.
  sim::Time bus_last = 0, eng_last = 0, tx_last = 0, dl_last = 0, re_last = 0;
};

// --------------------------------------------------------------------- Port

Port::Port(Hca& hca, int index) : hca_(&hca), index_(index) {
  const HcaParams& p = hca.params();
  std::string base = "hca" + std::to_string(hca.node()) + ".p" + std::to_string(index);
  link_tx_ = sim::BandwidthServer(base + ".link_tx", p.link_rate_gbps);
  link_rx_ = sim::BandwidthServer(base + ".link_rx", hca.fabric().fabric_params().downlink_rate_gbps);
  for (int i = 0; i < p.send_engines_per_port; ++i) {
    send_engines_.emplace_back(base + ".se" + std::to_string(i), p.engine_rate_gbps);
  }
  for (int i = 0; i < p.recv_engines_per_port; ++i) {
    recv_engines_.emplace_back(base + ".re" + std::to_string(i), p.engine_rate_gbps);
  }
  engine_busy_.assign(send_engines_.size(), false);
}

void Port::notify_ready(QueuePair* qp) {
  qp->scheduled_ = true;
  ready_.push_back(qp);
  try_dispatch();
}

void Port::try_dispatch() {
  const int n = static_cast<int>(send_engines_.size());
  int eng = 0;
  while (eng < n && !ready_.empty()) {
    if (engine_busy_[static_cast<std::size_t>(eng)]) {
      ++eng;
      continue;
    }
    QueuePair* qp = ready_.front();
    ready_.pop_front();
    if (qp->sq_.empty()) {
      // An error-state flush drained the send queue while the QP sat in the
      // ready deque; retire it without consuming an engine.
      qp->scheduled_ = false;
      continue;
    }
    engine_busy_[static_cast<std::size_t>(eng)] = true;
    service(qp, eng);
    ++eng;
  }
}

void Port::engine_done(int eng, QueuePair* qp) {
  engine_busy_[static_cast<std::size_t>(eng)] = false;
  if (!qp->sq_.empty()) {
    // Round-robin fairness: a QP with more work re-enters at the back.
    ready_.push_back(qp);
  } else {
    qp->scheduled_ = false;
  }
  try_dispatch();
}

void Port::service(QueuePair* qp, int eng) {
  sim::Simulator& sim = hca_->simulator();
  const HcaParams& P = hca_->params();
  const FabricParams& F = hca_->fabric().fabric_params();
  const sim::Time now = sim.now();

  SendWr wr = qp->sq_.front();
  qp->sq_.pop_front();

  QueuePair* dst = qp->peer_;
  Port& dport = *dst->port_;
  Hca& dhca = *dport.hca_;

  if (wr.length > 0) hca_->mem().check_lkey(wr.lkey, wr.src, wr.length);

  // Per-message fault injection (only when a FaultPlan is attached — the
  // branch is a single null check on the fault-free path).
  FaultPlan* plan = hca_->fabric().fault_plan();
  MsgFault fault = MsgFault::None;
  if (plan != nullptr) fault = plan->draw_msg_fault(*hca_);
  // A read has no separate ACK — the response *is* the acknowledgment — so
  // both fault flavours collapse to retry exhaustion with no data moved.
  // Reads are idempotent, which is why the clean full-retry (no duplicate
  // bookkeeping) is the faithful model.
  if (wr.opcode == Opcode::RdmaRead && fault != MsgFault::None) fault = MsgFault::Drop;
  if (fault == MsgFault::Drop) {
    // Transport retry exhaustion: the engine fetched the WQE but no data
    // reached the responder.  The error CQE surfaces after the (modelled)
    // retry timeout; it is generated even for unsignaled WQEs, as on real
    // hardware, because the consumer must learn about the loss.
    ++wqes_serviced_;
    auto& dengine = send_engines_[static_cast<std::size_t>(eng)];
    auto fetch = dengine.reserve_time(now, now, P.wqe_fetch);
    sim.at(fetch.finish, [this, eng, qp] { engine_done(eng, qp); });
    Wc wc;
    wc.wr_id = wr.wr_id;
    wc.opcode = wr.opcode == Opcode::Send       ? WcOpcode::SendComplete
                : wr.opcode == Opcode::RdmaRead ? WcOpcode::RdmaReadComplete
                                                : WcOpcode::RdmaWriteComplete;
    wc.status = WcStatus::RetryExcErr;
    wc.byte_len = wr.length;
    wc.qp_num = qp->num_;
    const sim::Time cqe_time = now + plan->retry_latency();
    wc.timestamp = cqe_time;
    sim.at(cqe_time, [qp, wc] { qp->scq_->push(wc); });
    return;
  }

  auto& engine = send_engines_[static_cast<std::size_t>(eng)];
  auto& rengine = dport.recv_engines_[static_cast<std::size_t>(dst->recv_engine_idx_)];

  // Route resolution: a pure function of (source lid, destination lid), so
  // it can run on any shard without coordination.  The hops histogram is
  // counted source-side for the same reason.
  Topology& topo = hca_->fabric().topology();
  const Route route = topo.resolve(lid_, dport.lid_);
  ++hops_hist_[static_cast<std::size_t>(std::min(route.count, kMaxRouteHops))];

  if (wr.opcode == Opcode::RdmaRead) {
    // Requester side of an RDMA Read: the engine fetches the WQE and emits a
    // single header-only request packet, which (like all control traffic)
    // rides the latency-only path even in contention mode.  Everything else —
    // rkey translation, payload streaming, the response pipeline — runs on
    // the responder port once the request lands there (read_respond).  The
    // forward latency is >= one wire + switch hop, so the cross-shard post
    // below is conservative-sync safe.
    ++wqes_serviced_;
    auto fetch = engine.reserve_time(now, now, P.wqe_fetch);
    sim.at(fetch.finish, [this, eng, qp] { engine_done(eng, qp); });

    auto st = std::make_unique<Transfer>();
    // Response orientation: data flows responder → requester, so the source
    // fields name the responder and the destination fields the requester.
    // st->wr keeps the caller's pointer roles (src = local destination);
    // read_respond swaps them after translating the rkey.
    st->qp = dst;    // responder QP: route source of the response
    st->dst = qp;    // requester QP: owns the RdmaReadComplete CQE
    st->dport = this;
    st->dhca = hca_;
    st->rengine = &recv_engines_[static_cast<std::size_t>(qp->recv_engine_idx_)];
    st->src_qp_num = dst->num_;
    st->wr = std::move(wr);
    Port* rp = &dport;
    sim::Simulator& dsim = dhca.simulator();
    const sim::Time t_req = fetch.finish + route.fwd_latency + F.wire_latency;
    sim.post(dsim, t_req, [rp, st = std::move(st)]() mutable { rp->read_respond(std::move(st)); });
    return;
  }

  // Pipeline model.  Each bandwidth stage is a FIFO next-free-time server
  // that carries the whole message as one contiguous reservation at its own
  // rate, so shared stages (bus, links) pack concurrent messages back to
  // back and aggregate bandwidth comes out right.  Crucially, every stage
  // reserves *at the simulated time its first data arrives* (via a chained
  // event), never with a far-future earliest-start — eager reservation would
  // punch unusable holes into the shared servers and serialize unrelated
  // traffic.  A running `last_byte` bound models starvation by slower
  // upstream stages: stage k cannot finish before the upstream last byte
  // plus one cut-through segment of its own service.
  const std::int64_t bytes = wr.length;
  const std::int64_t seg = std::min<std::int64_t>(std::max<std::int64_t>(bytes, 0),
                                                  P.model_segment_bytes);
  std::int64_t pkts = (bytes + P.mtu_bytes - 1) / P.mtu_bytes;
  if (pkts == 0) pkts = 1;  // zero-length messages still emit one packet
  const std::int64_t wire_bytes = bytes + pkts * P.pkt_header_bytes;
  // Wire bytes corresponding to one cut-through segment.
  const std::int64_t seg_pkts = (seg + P.mtu_bytes - 1) / P.mtu_bytes;
  const std::int64_t seg_wire = seg + (seg_pkts == 0 ? 1 : seg_pkts) * P.pkt_header_bytes;

  const sim::Time t_bus_seg = sim::transfer_time(seg, hca_->bus().dir_rate());
  const sim::Time t_eng_seg = sim::transfer_time(seg, P.engine_rate_gbps);
  const sim::Time t_tx_seg = sim::transfer_time(seg_wire, P.link_rate_gbps);
  const sim::Time t_dl_seg = sim::transfer_time(seg_wire, F.downlink_rate_gbps);
  const sim::Time t_re_seg = sim::transfer_time(seg, P.engine_rate_gbps);
  const sim::Time t_dbus_seg = sim::transfer_time(seg, dhca.bus().dir_rate());

  ++wqes_serviced_;
  bytes_tx_ += wr.length;
  qp->bytes_sent_ += wr.length;
  const QpNum src_qp_num = qp->num_;

  auto st = std::make_unique<Transfer>();
  st->qp = qp;
  st->dst = dst;
  st->dport = &dport;
  st->dhca = &dhca;
  st->engine = &engine;
  st->rengine = &rengine;
  st->eng = eng;
  st->src_qp_num = src_qp_num;
  st->bytes = bytes;
  st->wire_bytes = wire_bytes;
  st->t_bus_seg = t_bus_seg;
  st->t_eng_seg = t_eng_seg;
  st->t_tx_seg = t_tx_seg;
  st->t_dl_seg = t_dl_seg;
  st->t_re_seg = t_re_seg;
  st->t_dbus_seg = t_dbus_seg;
  // AckDrop: the data packets arrive but the ACK is lost, so the requester
  // retries until exhaustion and completes in error — while the responder has
  // already seen the message.  This is the fault that exercises duplicate
  // suppression above the verbs layer.
  if (fault == MsgFault::AckDrop) plan->mark_transfer_failed(st.get());

  // Single-packet messages (all MPI control traffic — RTS/CTS/FIN — and tiny
  // eager payloads) take a latency-only fast path through the shared pipes.
  // Bus and link arbitration on the real hardware is packet-granular, so a
  // 64-byte packet never waits behind a whole megabyte DMA the way a
  // message-granular FIFO reservation would make it; its own bandwidth is
  // negligible.  The engine is still held (WQE fetch + transfer), keeping
  // per-QP service order and engine-count limits honest.
  if (bytes <= P.mtu_bytes) {
    auto fetch_small = engine.reserve_time(now, now, P.wqe_fetch + t_eng_seg);
    const sim::Time eng_done = fetch_small.finish;
    sim.at(eng_done, [this, eng, qp] { engine_done(eng, qp); });

    // Latency-only even in contention mode: single packets interleave at
    // packet granularity through the switches and their bandwidth is
    // negligible, exactly as on the bus and links (see above).  The route's
    // forward latency on a crossbar is the legacy wire + switch sum, bit for
    // bit; the ACK retraces the route in reverse (one packet, latency-only).
    const sim::Time delivered = eng_done + t_bus_seg + t_tx_seg + route.fwd_latency +
                                t_dl_seg + F.wire_latency + t_re_seg + t_dbus_seg;
    const sim::Time cqe_time =
        wr.signaled
            ? delivered + P.ack_gen + topo.fwd_latency(dport.lid_, lid_) + F.wire_latency +
                  P.cqe_delay + sim::transfer_time(P.cqe_bus_bytes, hca_->bus().dir_rate())
            : 0;
    st->wr = std::move(wr);
    finish_transfer(std::move(st), delivered, cqe_time);
    return;
  }

  // Stage 1 (now): WQE fetch on the engine, then host → HCA over GX+.
  auto fetch = engine.reserve_time(now, now, P.wqe_fetch);
  auto s_bus = hca_->bus().reserve(BusDir::ToHca, now, fetch.finish, bytes);
  st->bus_last = s_bus.finish;

  IB12X_TRACE(now, "qp%u wr%llu len=%u eng%d: bus[%.3f,%.3f]us", qp->num_,
              static_cast<unsigned long long>(wr.wr_id), wr.length, eng,
              sim::to_us(s_bus.start), sim::to_us(s_bus.finish));

  st->wr = std::move(wr);
  const sim::Time t_stage2 = s_bus.start + t_bus_seg;
  sim.at(t_stage2, [this, st = std::move(st)]() mutable { stage_engine(std::move(st)); });
}

// Responder side of an RDMA Read (runs on the responder port's shard).
void Port::read_respond(std::unique_ptr<Transfer> st) {
  sim::Simulator& sim = hca_->simulator();
  const HcaParams& P = hca_->params();
  const FabricParams& F = hca_->fabric().fabric_params();
  const sim::Time now = sim.now();
  Topology& topo = hca_->fabric().topology();

  QueuePair* rqp = st->qp;   // responder QP
  QueuePair* reqr = st->dst; // requester QP

  if (rqp->state_ != QpState::Ready) {
    // The responder QP is flushing (injected link fault): the request is
    // NAKed, the requester's retries exhaust, and it completes in error with
    // no data moved.  The NAK retraces the route before the retry timer runs.
    FaultPlan* plan = hca_->fabric().fault_plan();
    const sim::Time cqe_time = now + topo.fwd_latency(lid_, st->dport->lid_) + F.wire_latency +
                               (plan != nullptr ? plan->retry_latency() : 0);
    Wc wc;
    wc.wr_id = st->wr.wr_id;
    wc.opcode = WcOpcode::RdmaReadComplete;
    wc.status = WcStatus::RetryExcErr;
    wc.byte_len = st->wr.length;
    wc.qp_num = reqr->num_;
    wc.timestamp = cqe_time;
    sim.post(reqr->port().hca().simulator(), cqe_time, [reqr, wc] { reqr->scq_->push(wc); });
    return;
  }

  // Translate the remote source on the responder memory domain, then swap
  // pointer roles: wr.src becomes the responder-local source and
  // wr.remote_addr stashes the requester-local destination for the memcpy
  // at delivery time (finish_transfer's read branch).
  if (st->wr.length > 0) {
    std::byte* rsrc = hca_->mem().translate_rkey(st->wr.rkey, st->wr.remote_addr, st->wr.length);
    st->wr.remote_addr = reinterpret_cast<std::uint64_t>(st->wr.src);
    st->wr.src = rsrc;
  }

  const Route route = topo.resolve(lid_, st->dport->lid_);
  ++hops_hist_[static_cast<std::size_t>(std::min(route.count, kMaxRouteHops))];

  const std::int64_t bytes = st->wr.length;
  const std::int64_t seg = std::min<std::int64_t>(std::max<std::int64_t>(bytes, 0),
                                                  P.model_segment_bytes);
  std::int64_t pkts = (bytes + P.mtu_bytes - 1) / P.mtu_bytes;
  if (pkts == 0) pkts = 1;
  const std::int64_t wire_bytes = bytes + pkts * P.pkt_header_bytes;
  const std::int64_t seg_pkts = (seg + P.mtu_bytes - 1) / P.mtu_bytes;
  const std::int64_t seg_wire = seg + (seg_pkts == 0 ? 1 : seg_pkts) * P.pkt_header_bytes;

  st->bytes = bytes;
  st->wire_bytes = wire_bytes;
  st->t_bus_seg = sim::transfer_time(seg, hca_->bus().dir_rate());
  st->t_eng_seg = sim::transfer_time(seg, P.engine_rate_gbps);
  st->t_tx_seg = sim::transfer_time(seg_wire, P.link_rate_gbps);
  st->t_dl_seg = sim::transfer_time(seg_wire, F.downlink_rate_gbps);
  st->t_re_seg = sim::transfer_time(seg, P.engine_rate_gbps);
  st->t_dbus_seg = sim::transfer_time(seg, st->dhca->bus().dir_rate());
  bytes_tx_ += bytes;

  // The response streams through one of this (responder) port's send DMA
  // engines.  The engine is picked deterministically per requester QP and
  // shares bandwidth with scheduler-dispatched sends, but is never marked
  // busy for the scheduler — responder-side read logic bypasses the WQE
  // scheduler on real hardware too (there is no WQE to schedule).
  auto& engine =
      send_engines_[static_cast<std::size_t>(reqr->num_) % send_engines_.size()];
  st->engine = &engine;

  // Single-packet responses ride the latency-only fast path, like the
  // small-message branch of service().
  if (bytes <= P.mtu_bytes) {
    auto resp = engine.reserve_time(now, now, P.wqe_fetch + st->t_eng_seg);
    const sim::Time delivered = resp.finish + st->t_bus_seg + st->t_tx_seg + route.fwd_latency +
                                st->t_dl_seg + F.wire_latency + st->t_re_seg + st->t_dbus_seg;
    const sim::Time cqe_time =
        st->wr.signaled
            ? delivered + P.cqe_delay +
                  sim::transfer_time(P.cqe_bus_bytes, st->dhca->bus().dir_rate())
            : 0;
    finish_transfer(std::move(st), delivered, cqe_time);
    return;
  }

  // Bulk response: responder DMA fetch, then host → HCA over the responder
  // GX+ bus, then the regular stage 2-6 pipeline toward the requester.
  auto fetch = engine.reserve_time(now, now, P.wqe_fetch);
  auto s_bus = hca_->bus().reserve(BusDir::ToHca, now, fetch.finish, bytes);
  st->bus_last = s_bus.finish;
  const sim::Time t_stage2 = s_bus.start + st->t_bus_seg;
  sim.at(t_stage2, [this, st = std::move(st)]() mutable { stage_engine(std::move(st)); });
}

// Stage 2 (first segment on-chip): send DMA engine.
void Port::stage_engine(std::unique_ptr<Transfer> st) {
  sim::Simulator& sim = hca_->simulator();
  auto s_eng = st->engine->reserve_bytes(sim.now(), sim.now(), st->bytes);
  st->eng_last = std::max(s_eng.finish, st->bus_last + st->t_eng_seg);
  // The engine frees once the last segment has left it (including any
  // stretch from bus starvation).  Read responses never dispatched through
  // the scheduler, so there is no engine-busy slot to release for them.
  if (st->wr.opcode != Opcode::RdmaRead) {
    sim.at(st->eng_last, [this, eng = st->eng, qp = st->qp] { engine_done(eng, qp); });
  }

  const sim::Time t_next = s_eng.start + st->t_eng_seg;
  sim.at(t_next, [this, st = std::move(st)]() mutable { stage_uplink(std::move(st)); });
}

// Stage 3: port uplink to the switch (wire framing overhead applies).
void Port::stage_uplink(std::unique_ptr<Transfer> st) {
  sim::Simulator& sim = hca_->simulator();
  const FabricParams& F = hca_->fabric().fabric_params();
  Topology& topo = hca_->fabric().topology();
  auto s_tx = link_tx_.reserve_bytes(sim.now(), sim.now(), st->wire_bytes);
  st->tx_last = std::max(s_tx.finish, st->eng_last + st->t_tx_seg);

  if (!topo.contention()) {
    // Latency-only traversal: the hop chain collapses into the summed
    // forward latency, preserving the legacy event structure (on a crossbar
    // the forward latency == wire + switch, making this branch bit-identical
    // to the closed-form path this refactor replaced).  tx_last advances to
    // the arrival bound at the final switch's egress (see Transfer).
    //
    // Shard hand-off point: the forward latency >= one wire + switch hop,
    // which is exactly the parallel engine's lookahead window, so t_next is
    // always >= the epoch's window end and the cross-shard post below can
    // never violate conservative sync.  From stage 4 on, everything runs on
    // the *destination* port (and thus the destination HCA's simulator/
    // shard) — the event invokes the method on st->dport, which is also why
    // stages 4-6 may use their own hca_ freely.
    const sim::Time fwd_lat = topo.fwd_latency(lid_, st->dport->lid_);
    st->tx_last += fwd_lat;
    const sim::Time t_next = s_tx.start + st->t_tx_seg + fwd_lat;
    sim::Simulator& dsim = st->dport->hca().simulator();
    Port* dport = st->dport;
    sim.post(dsim, t_next,
             [dport, st = std::move(st)]() mutable { dport->stage_downlink(std::move(st)); });
    return;
  }

  // Contention mode: traverse the route switch by switch (each hop event
  // re-resolves the route — a pure function — rather than carrying it).  The
  // first hop arrives one wire + switch after its first segment leaves the
  // uplink — at least the lookahead window, so the post is conservative-sync
  // safe even when the source edge switch lives on another shard.
  const Route route = topo.resolve(lid_, st->dport->lid_);
  st->hop_idx = 0;
  Switch* sw = &topo.switch_at(route.hop[0].sw);
  const sim::Time t_hop = s_tx.start + st->t_tx_seg + F.wire_latency + F.switch_latency;
  sim.post(*sw->simulator(), t_hop,
           [sw, st = std::move(st)]() mutable { sw->hop(std::move(st)); });
}

// Stage 3b (contention mode only): one event per switch traversal, running
// on the switch's own simulator.  Reserves the shared backplane (arbitration
// capped at nonblocking_radix ports' worth of bandwidth) and, for
// switch-to-switch links, the output port's serializer; tracks output-queue
// depth against the configured buffer.  The fabric is lossless, so a full
// buffer is a counted stall (credit backpressure), never a drop.
void Switch::hop(std::unique_ptr<Transfer> st) {
  sim::Simulator& sim = *sim_;
  const sim::Time now = sim.now();
  const FabricParams& F = topo_->fabric_params();
  const Route route = topo_->resolve(st->qp->port().lid(), st->dport->lid());
  const RouteHop h = route.hop[st->hop_idx];
  ++routed_pkts_;

  // Queue occupancy ahead of this message, in bytes booked but not yet
  // drained (next-free-time backlog × rate).
  const auto backlog_bytes = [now](const sim::BandwidthServer& s) -> std::int64_t {
    const sim::Time backlog = s.free_at() - now;
    if (backlog <= 0) return 0;
    return static_cast<std::int64_t>(static_cast<double>(backlog) * s.rate() / 1000.0);
  };
  std::int64_t occ = backlog_bytes(backplane_);
  auto s_bp = backplane_.reserve_bytes(now, now, st->wire_bytes);
  sim::Time start = s_bp.start;
  sim::Time fin = s_bp.finish;
  sim::BandwidthServer* out = out_srv_.empty() ? nullptr : out_srv_[h.out_port].get();
  if (out != nullptr) {
    occ = std::max(occ, backlog_bytes(*out));
    auto s_out = out->reserve_bytes(now, s_bp.start, st->wire_bytes);
    start = s_out.start;
    fin = std::max(fin, s_out.finish);
  }
  if (occ + st->wire_bytes > topo_->spec().out_buf_bytes) ++stalls_;
  queue_hwm_bytes_ = std::max(queue_hwm_bytes_, occ + st->wire_bytes);

  // Cut-through last-byte bound: the last byte cannot clear this switch
  // before it arrived (upstream bound + inbound wire + switch) plus one
  // segment of forwarding.  tx_last carries the running bound (see Transfer).
  const sim::Time wire_in =
      st->hop_idx == 0 ? F.wire_latency
                       : (route.hop[st->hop_idx - 1].global ? topo_->global_wire_latency()
                                                            : F.wire_latency);
  st->tx_last = std::max(fin, st->tx_last + wire_in + F.switch_latency + st->t_tx_seg);

  ++st->hop_idx;
  if (st->hop_idx >= route.count) {
    // Final switch: hand the message to the destination port's downlink.
    // Hosts are co-sharded with their edge switch (assign_switch_sims
    // enforces it), so this sub-window post never crosses a shard.
    Port* dport = st->dport;
    sim::Simulator& dsim = dport->hca().simulator();
    const sim::Time t_down = start + st->t_tx_seg;  // before the lambda moves st
    sim.post(dsim, t_down,
             [dport, st = std::move(st)]() mutable { dport->stage_downlink(std::move(st)); });
    return;
  }
  // Next switch: first segment out + wire + its switch latency.  Always
  // >= the lookahead window, so cross-shard hops are conservative-sync safe.
  Switch* next = &topo_->switch_at(route.hop[st->hop_idx].sw);
  const sim::Time wire_out = h.global ? topo_->global_wire_latency() : F.wire_latency;
  const sim::Time t_next = start + st->t_tx_seg + wire_out + F.switch_latency;
  sim.post(*next->simulator(), t_next,
           [next, st = std::move(st)]() mutable { next->hop(std::move(st)); });
}

// Stage 4: switch egress / downlink towards the destination port.
void Port::stage_downlink(std::unique_ptr<Transfer> st) {
  sim::Simulator& sim = hca_->simulator();
  const FabricParams& F = hca_->fabric().fabric_params();
  auto s_dl = st->dport->link_rx_.reserve_bytes(sim.now(), sim.now(), st->wire_bytes);
  // tx_last was advanced to the final switch's egress bound in stage 3/3b.
  st->dl_last = std::max(s_dl.finish, st->tx_last + st->t_dl_seg);

  const sim::Time t_next = s_dl.start + st->t_dl_seg + F.wire_latency;
  sim.at(t_next, [this, st = std::move(st)]() mutable { stage_recv_engine(std::move(st)); });
}

// Stage 5: receive DMA engine at the destination.
void Port::stage_recv_engine(std::unique_ptr<Transfer> st) {
  sim::Simulator& sim = hca_->simulator();
  const FabricParams& F = hca_->fabric().fabric_params();
  auto s_re = st->rengine->reserve_bytes(sim.now(), sim.now(), st->bytes);
  st->re_last = std::max(s_re.finish, st->dl_last + F.wire_latency + st->t_re_seg);

  const sim::Time t_next = s_re.start + st->t_re_seg;
  sim.at(t_next, [this, st = std::move(st)]() mutable { stage_dest_bus(std::move(st)); });
}

// Stage 6: HCA → host over the destination GX+ bus.
void Port::stage_dest_bus(std::unique_ptr<Transfer> st) {
  sim::Simulator& sim = hca_->simulator();
  const HcaParams& P = hca_->params();
  const FabricParams& F = hca_->fabric().fabric_params();
  auto s_dbus = st->dhca->bus().reserve(BusDir::ToHost, sim.now(), sim.now(), st->bytes);
  const sim::Time delivered = std::max(s_dbus.finish, st->re_last + st->t_dbus_seg);

  // RC acknowledgment: the responder HCA acks once the last packet is placed
  // (a requester CQE therefore implies remote data is visible — the invariant
  // rendezvous FIN relies on).  The ACK is one packet retracing the route in
  // reverse, latency-only — it rides the fast path (packet-granular link
  // arbitration) like the small-message branch.  On a crossbar the reverse
  // forward latency is the legacy wire + switch sum, bit for bit.
  // The CQE writeback burns *requester-side* bus time (this method now runs
  // on the destination port, so name the requester's HCA explicitly; all
  // HCAs share one HcaParams so the value is unchanged).
  sim::Time cqe_time = 0;
  if (st->wr.signaled) {
    if (st->wr.opcode == Opcode::RdmaRead) {
      // Read response: the data *is* the acknowledgment, and this stage is
      // already running requester-side (st->dport), so the CQE follows the
      // delivery directly — no ACK retrace.
      cqe_time = delivered + P.cqe_delay +
                 sim::transfer_time(P.cqe_bus_bytes, st->dhca->bus().dir_rate());
    } else {
      const sim::Time ack_lat =
          hca_->fabric().topology().fwd_latency(st->dport->lid_, st->qp->port().lid_);
      cqe_time = delivered + P.ack_gen + sim::transfer_time(P.ack_wire_bytes, P.link_rate_gbps) +
                 ack_lat + F.wire_latency + P.cqe_delay +
                 sim::transfer_time(P.cqe_bus_bytes, st->qp->port().hca().bus().dir_rate());
    }
  }
  finish_transfer(std::move(st), delivered, cqe_time);
}

void Port::finish_transfer(std::unique_ptr<Transfer> st, sim::Time delivered,
                           sim::Time cqe_time) {
  // Runs on the source port (small-message fast path) or the destination
  // port (bulk pipeline tail); `sim` is whichever shard is executing.  The
  // delivery lands on the responder's shard, the CQE on the requester's —
  // post() degenerates to plain at() whenever those coincide.
  sim::Simulator& sim = hca_->simulator();
  sim::Simulator& dsim = st->dport->hca().simulator();
  if (st->wr.opcode == Opcode::RdmaRead) {
    // Read response landing: place the data in requester host memory (the
    // requester-local destination was stashed in remote_addr by
    // read_respond), then complete on the requester's *send* CQ.  Both
    // events live on the requester shard (dsim); the delivery fires first
    // (strictly earlier, or FIFO at an equal instant since it is pushed
    // first), so the CQE observes the data.
    Transfer* raw = st.get();
    sim.post(dsim, delivered, [raw] {
      if (raw->wr.length > 0) {
        std::memcpy(reinterpret_cast<std::byte*>(raw->wr.remote_addr), raw->wr.src,
                    raw->wr.length);
      }
      if (raw->wr.delivered_cb) raw->wr.delivered_cb();
    });
    if (!st->wr.signaled) {
      // Keep the Transfer alive until the delivery event has consumed it.
      sim.post(dsim, delivered, [st = std::move(st)] {});
      return;
    }
    sim.post(dsim, cqe_time, [st = std::move(st), cqe_time] {
      Wc wc;
      wc.wr_id = st->wr.wr_id;
      wc.opcode = WcOpcode::RdmaReadComplete;
      wc.byte_len = st->wr.length;
      wc.qp_num = st->dst->num();
      wc.timestamp = cqe_time;
      st->dst->scq_->push(wc);
    });
    return;
  }
  if (!st->wr.signaled) {
    // Data visible in responder host memory → deliver (copy + CQE).
    sim.post(dsim, delivered, [st = std::move(st)] {
      (void)st->dport->deliver(st->dst, st->wr, st->src_qp_num);
    });
    return;
  }
  // The delivery event fires before the CQE event (strictly earlier time, or
  // FIFO order at an equal instant since it is pushed first; across shards
  // the CQE trails delivery by a full ACK round — more than the lookahead
  // window — so it lands in a later epoch), so it may annotate the
  // Transfer's failure verdict in the FaultPlan for the CQE event to consume.
  sim::Simulator& rsim = st->qp->port().hca().simulator();
  Transfer* raw = st.get();
  sim.post(dsim, delivered, [raw] {
    if (!raw->dport->deliver(raw->dst, raw->wr, raw->src_qp_num)) {
      // RNR drop → requester error CQE.  deliver() can only return false
      // with a FaultPlan attached.
      raw->dhca->fabric().fault_plan()->mark_transfer_failed(raw);
    }
  });
  sim.post(rsim, cqe_time, [st = std::move(st), cqe_time] {
    Wc wc;
    wc.wr_id = st->wr.wr_id;
    wc.opcode =
        st->wr.opcode == Opcode::Send ? WcOpcode::SendComplete : WcOpcode::RdmaWriteComplete;
    FaultPlan* plan = st->qp->port().hca().fabric().fault_plan();
    if (plan != nullptr && plan->take_transfer_failed(st.get())) {
      wc.status = WcStatus::RetryExcErr;
    }
    wc.byte_len = st->wr.length;
    wc.qp_num = st->qp->num();
    wc.timestamp = cqe_time;
    st->qp->scq_->push(wc);
  });
}

bool Port::deliver(QueuePair* dst_qp, const SendWr& wr, QpNum src_qp_num) {
  sim::Simulator& sim = hca_->simulator();
  const HcaParams& P = hca_->params();
  const sim::Time now = sim.now();

  const bool consumes_recv = wr.opcode == Opcode::Send || wr.opcode == Opcode::RdmaWriteWithImm;

  if (wr.opcode == Opcode::RdmaWrite || wr.opcode == Opcode::RdmaWriteWithImm) {
    if (wr.length > 0) {
      std::byte* dstp = hca_->mem().translate_rkey(wr.rkey, wr.remote_addr, wr.length);
      std::memcpy(dstp, wr.src, wr.length);
    }
    if (wr.delivered_cb) wr.delivered_cb();
    if (!consumes_recv) return true;  // plain RDMA write: invisible to the responder
  }

  if (consumes_recv) {
    FaultPlan* plan = hca_->fabric().fault_plan();
    if (plan != nullptr && dst_qp->state_ == QpState::Error) {
      // The responder QP is flushing (link fault): the message is NAKed, the
      // requester's retries exhaust and it completes in error.  Matches the
      // per-QP-RQ mode, where the flush leaves the RQ empty; the SRQ pool
      // stays populated for the surviving QPs, so state is what gates here.
      plan->count_rnr_drop();
      return false;
    }
    if (dst_qp->srq_ != nullptr) {
      if (dst_qp->srq_->pending() == 0) {
        // Shared pool ran dry: RNR backpressure, not an error.  The message
        // parks (payload copied) and redelivers FIFO as slots are reposted —
        // the responder's RNR NAK + requester retry loop, collapsed.
        dst_qp->srq_->stall(dst_qp, wr, src_qp_num);
        return true;
      }
    } else if (plan != nullptr && dst_qp->rq_.empty()) {
      // With fault injection active, RNR (no receive posted — possible in the
      // recovery window after a flush, before the consumer reposts its slots)
      // becomes a modelled drop: retries exhaust and the requester completes
      // in error.  Without a plan the condition still indicates a substrate
      // bug and take_recv_wqe() throws.
      plan->count_rnr_drop();
      return false;
    }
  }

  RecvWr rwr = dst_qp->take_recv_wqe();
  if (wr.opcode == Opcode::Send) {
    if (wr.length > rwr.length) {
      throw std::runtime_error("QP " + std::to_string(dst_qp->num()) +
                               ": inbound Send larger than posted receive buffer");
    }
    if (wr.length > 0) {
      hca_->mem().check_lkey(rwr.lkey, rwr.dst, wr.length);
      std::memcpy(rwr.dst, wr.src, wr.length);
    }
  }

  // CQE writeback is one 64-byte bus packet: like ACKs and control packets
  // it interleaves at packet granularity and must not queue behind bulk
  // message-granular bus reservations (that would delay receive-buffer
  // recycling past the sender's credit return and fabricate RNRs).
  const sim::Time cqe_time =
      now + P.cqe_delay + sim::transfer_time(P.cqe_bus_bytes, hca_->bus().dir_rate());
  Wc wc;
  wc.wr_id = rwr.wr_id;
  wc.opcode = WcOpcode::RecvComplete;
  wc.byte_len = wr.length;
  wc.qp_num = dst_qp->num();
  wc.src_qp = src_qp_num;
  wc.has_imm = wr.opcode == Opcode::RdmaWriteWithImm;
  wc.imm_data = wc.has_imm ? wr.imm_data : 0;
  wc.timestamp = cqe_time;
  sim.at(cqe_time, [dst_qp, wc] { dst_qp->rcq_->push(wc); });
  return true;
}

// ---------------------------------------------------------------------- Hca

Hca::Hca(Fabric& fabric, int node, const HcaParams& params, sim::Simulator& sim, int uid)
    : fabric_(&fabric), sim_(&sim), node_(node), uid_(uid), params_(params),
      bus_(params.bus_dir_rate_gbps, params.bus_core_rate_gbps) {
  for (int i = 0; i < params.ports; ++i) {
    ports_.push_back(std::unique_ptr<Port>(new Port(*this, i)));
  }
}

QueuePair& Hca::create_qp(int port_idx, CompletionQueue& scq, CompletionQueue& rcq,
                          SharedReceiveQueue* srq) {
  Port& p = port(port_idx);
  const int recv_engine = p.next_recv_engine_++ % static_cast<int>(p.recv_engines_.size());
  qps_.push_back(std::unique_ptr<QueuePair>(
      new QueuePair(p, fabric_->next_qp_num(), scq, rcq, srq, recv_engine)));
  return *qps_.back();
}

SharedReceiveQueue& Hca::create_srq() {
  srqs_.push_back(std::make_unique<SharedReceiveQueue>(*this, params_.max_recv_wqes));
  return *srqs_.back();
}

}  // namespace ib12x::ib
