// Completion queue.  Supports both the polling interface real verbs offers
// (used heavily by the tests) and an event-context callback that fires the
// instant a CQE lands, which is how the MPI substrate's progress engine is
// driven.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>

#include "ib/types.hpp"

namespace ib12x::ib {

class CompletionQueue {
 public:
  explicit CompletionQueue(int capacity = 65536) : capacity_(capacity) {}

  using Callback = std::function<void(const Wc&)>;

  /// Installs a handler called (from event context) for every CQE at the
  /// moment it arrives.  Handled CQEs still enter the poll queue unless the
  /// handler returns having consumed it — we keep it simple: when a callback
  /// is installed, CQEs are delivered to it *instead of* the poll queue.
  void set_callback(Callback cb) { callback_ = std::move(cb); }

  /// Model side: deliver a completion.
  void push(const Wc& wc) {
    if (callback_) {
      callback_(wc);
      return;
    }
    if (static_cast<int>(queue_.size()) >= capacity_) {
      throw std::runtime_error("CompletionQueue overflow (capacity " + std::to_string(capacity_) + ")");
    }
    queue_.push_back(wc);
  }

  /// Non-blocking poll; returns false if no CQE is pending.
  bool poll(Wc& out) {
    if (queue_.empty()) return false;
    out = queue_.front();
    queue_.pop_front();
    return true;
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  int capacity_;
  std::deque<Wc> queue_;
  Callback callback_;
};

}  // namespace ib12x::ib
