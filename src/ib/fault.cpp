#include "ib/fault.hpp"

#include <algorithm>

#include "ib/hca.hpp"

namespace ib12x::ib {

void FaultPlan::add_link_event(sim::Time at, Hca* hca, int port_idx, bool up) {
  events_.push_back(LinkEvent{at, hca, port_idx, up});
}

void FaultPlan::arm(sim::Simulator& sim) {
  for (const LinkEvent& ev : events_) {
    sim.at(ev.at, [this, ev] { apply(ev); });
  }
}

MsgFault FaultPlan::draw_msg_fault() {
  if (params_.msg_error_rate <= 0.0) return MsgFault::None;
  if (rng_.next_double() >= params_.msg_error_rate) return MsgFault::None;
  ++injected_errors_;
  return rng_.next_double() < params_.ack_drop_fraction ? MsgFault::AckDrop : MsgFault::Drop;
}

bool FaultPlan::port_down(const Hca* hca, int port_idx) const {
  return std::find(down_.begin(), down_.end(), std::pair<const Hca*, int>{hca, port_idx}) !=
         down_.end();
}

void FaultPlan::apply(const LinkEvent& ev) {
  const std::pair<const Hca*, int> key{ev.hca, ev.port};
  if (ev.up) {
    auto it = std::find(down_.begin(), down_.end(), key);
    if (it == down_.end()) return;  // spurious up event
    down_.erase(it);
    ++link_transitions_;
    // Re-arm each QP pair, but only once both endpoints' ports are up — a
    // half-recovered link stays unusable until the far side returns too.
    for (QueuePair* qp : ev.hca->port_qps(ev.port)) {
      QueuePair* peer = qp->peer();
      if (peer == nullptr) continue;
      if (port_down(&peer->port().hca(), peer->port().index())) continue;
      qp->reset();
      peer->reset();
    }
    return;
  }
  if (port_down(ev.hca, ev.port)) return;  // already down
  down_.push_back(key);
  ++link_transitions_;
  // Both directions of every RC pair crossing the dead link flush: the local
  // QP because its port died, the peer because its retries will exhaust.
  for (QueuePair* qp : ev.hca->port_qps(ev.port)) {
    qp->transition_to_error();
    if (qp->peer() != nullptr) qp->peer()->transition_to_error();
  }
}

}  // namespace ib12x::ib
