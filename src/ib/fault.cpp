#include "ib/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "ib/hca.hpp"

namespace ib12x::ib {

void FaultPlan::add_link_event(sim::Time at, Hca* hca, int port_idx, bool up) {
  events_.push_back(LinkEvent{at, hca, port_idx, up});
}

void FaultPlan::arm(sim::Simulator& sim) {
  views_.resize(1);
  views_[0].self = nullptr;  // legacy view owns every QP
  for (const LinkEvent& ev : events_) {
    sim.at(ev.at, [this, ev] { apply(ev, views_[0]); });
  }
}

void FaultPlan::arm_sharded(const std::vector<sim::Simulator*>& sims) {
  if (sims.empty()) throw std::invalid_argument("FaultPlan::arm_sharded: no shards");
  views_.clear();
  views_.resize(sims.size());
  for (std::size_t i = 0; i < sims.size(); ++i) {
    views_[i].self = sims[i];
    // The view vector is stable from here on; each replica event captures a
    // raw pointer to its shard's view (keeps the capture inside the event
    // kernel's in-place storage).
    LinkView* view = &views_[i];
    for (const LinkEvent& ev : events_) {
      sims[i]->at(ev.at, [this, ev, view] { apply(ev, *view); });
    }
  }
}

void FaultPlan::enable_sharded_streams(int hca_count) {
  hca_rngs_.clear();
  hca_rngs_.reserve(static_cast<std::size_t>(hca_count));
  for (int uid = 0; uid < hca_count; ++uid) {
    // Splitmix-style decorrelation of the per-HCA seeds from the plan seed.
    hca_rngs_.emplace_back(params_.seed ^
                           (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(uid + 1)));
  }
  sharded_streams_ = true;
}

MsgFault FaultPlan::draw_msg_fault(const Hca& src) {
  if (params_.msg_error_rate <= 0.0) return MsgFault::None;
  sim::Rng& rng =
      sharded_streams_ ? hca_rngs_.at(static_cast<std::size_t>(src.uid())) : rng_;
  if (rng.next_double() >= params_.msg_error_rate) return MsgFault::None;
  injected_errors_.fetch_add(1, std::memory_order_relaxed);
  return rng.next_double() < params_.ack_drop_fraction ? MsgFault::AckDrop : MsgFault::Drop;
}

bool FaultPlan::down_in(const LinkView& view, const Hca* hca, int port_idx) {
  return std::find(view.down.begin(), view.down.end(),
                   std::pair<const Hca*, int>{hca, port_idx}) != view.down.end();
}

bool FaultPlan::port_down(const Hca* hca, int port_idx) const {
  return down_in(views_.front(), hca, port_idx);
}

bool FaultPlan::owns_qp(const LinkView& view, const QueuePair* qp) {
  return view.self == nullptr || &qp->port().hca().simulator() == view.self;
}

void FaultPlan::apply(const LinkEvent& ev, LinkView& view) {
  // Every replica tracks the full link state (so the already-down/spurious-up
  // guards agree across shards) but only transitions the QPs it owns, and
  // only the flapped HCA's home shard counts the transition (keeps the
  // telemetry equal to the legacy single-view numbers).
  const bool count_here = view.self == nullptr || &ev.hca->simulator() == view.self;
  const std::pair<const Hca*, int> key{ev.hca, ev.port};
  if (ev.up) {
    auto it = std::find(view.down.begin(), view.down.end(), key);
    if (it == view.down.end()) return;  // spurious up event
    view.down.erase(it);
    if (count_here) link_transitions_.fetch_add(1, std::memory_order_relaxed);
    // Re-arm each QP pair, but only once both endpoints' ports are up — a
    // half-recovered link stays unusable until the far side returns too.
    for (QueuePair* qp : ev.hca->port_qps(ev.port)) {
      QueuePair* peer = qp->peer();
      if (peer == nullptr) continue;
      if (down_in(view, &peer->port().hca(), peer->port().index())) continue;
      if (owns_qp(view, qp)) qp->reset();
      if (owns_qp(view, peer)) peer->reset();
    }
    return;
  }
  if (down_in(view, ev.hca, ev.port)) return;  // already down
  view.down.push_back(key);
  if (count_here) link_transitions_.fetch_add(1, std::memory_order_relaxed);
  // Both directions of every RC pair crossing the dead link flush: the local
  // QP because its port died, the peer because its retries will exhaust.
  for (QueuePair* qp : ev.hca->port_qps(ev.port)) {
    if (owns_qp(view, qp)) qp->transition_to_error();
    QueuePair* peer = qp->peer();
    if (peer != nullptr && owns_qp(view, peer)) peer->transition_to_error();
  }
}

}  // namespace ib12x::ib
