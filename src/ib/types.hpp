// Work-request / completion types for the verbs-like model API.
//
// Shapes deliberately mirror OpenIB Gen2 (ibv_send_wr / ibv_recv_wr / ibv_wc)
// so the MPI substrate above reads like code written against real verbs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/time.hpp"

namespace ib12x::ib {

using QpNum = std::uint32_t;
using LKey = std::uint32_t;
using RKey = std::uint32_t;

enum class Opcode : std::uint8_t {
  Send,              ///< channel semantics; consumes a receive WQE at the responder
  RdmaWrite,         ///< memory semantics; invisible to the responder
  RdmaWriteWithImm,  ///< RDMA write that additionally consumes a receive WQE
  RdmaRead,          ///< memory semantics; responder HCA streams data back
};

struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::Send;
  const std::byte* src = nullptr;  ///< registered local buffer
  std::uint32_t length = 0;
  LKey lkey = 0;
  // RDMA only.  For RdmaRead, `src`/`lkey` name the *local destination*
  // buffer and `remote_addr`/`rkey` the remote source (ibv_send_wr uses the
  // same sg-list fields for both directions).
  std::uint64_t remote_addr = 0;
  RKey rkey = 0;
  // RdmaWriteWithImm only:
  std::uint32_t imm_data = 0;
  /// Unsignaled sends produce no completion (used for credit piggybacking).
  bool signaled = true;
  /// Optional simulator affordance for RDMA writes: invoked (in event
  /// context) the instant the data is placed in remote host memory.  Models
  /// a remote polling loop noticing the write's tail flag — real verbs has
  /// no such callback, but a polled RDMA fast-path channel behaves exactly
  /// this way and simulating the poll loop itself would add nothing.
  std::function<void()> delivered_cb;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  std::byte* dst = nullptr;
  std::uint32_t length = 0;
  LKey lkey = 0;
};

enum class WcOpcode : std::uint8_t {
  SendComplete,       ///< Send WQE acknowledged by the responder
  RdmaWriteComplete,  ///< RDMA write acknowledged (remote memory updated)
  RdmaReadComplete,   ///< RDMA read response landed in local memory
  RecvComplete,       ///< inbound Send (or write-with-imm) landed
};

/// Completion status (mirrors ibv_wc_status).  Anything but Success means the
/// WQE's data did not (necessarily) reach the remote side: WrFlushErr marks
/// WQEs drained from a queue when its QP entered the error state, RetryExcErr
/// marks transport-level delivery failure (injected message faults, RNR retry
/// exhaustion while the responder has no receive posted).
enum class WcStatus : std::uint8_t {
  Success,
  WrFlushErr,
  RetryExcErr,
};

inline const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::Success: return "success";
    case WcStatus::WrFlushErr: return "flush-err";
    case WcStatus::RetryExcErr: return "retry-exceeded";
  }
  return "?";
}

/// Work completion.
struct Wc {
  std::uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::SendComplete;
  WcStatus status = WcStatus::Success;
  std::uint32_t byte_len = 0;
  QpNum qp_num = 0;      ///< local QP this completion belongs to
  QpNum src_qp = 0;      ///< remote QP (receive completions)
  bool has_imm = false;
  std::uint32_t imm_data = 0;
  sim::Time timestamp = 0;
};

}  // namespace ib12x::ib
