// Deterministic fault injection for the fabric model.
//
// A FaultPlan owns every source of modelled failure:
//   * scheduled link events — a port goes down (all QPs behind it, and their
//     peers, transition to the error state and flush) and later comes back up
//     (QPs re-arm once both endpoints' ports are up);
//   * per-message completion errors — each serviced send WQE draws from a
//     seeded RNG and may be dropped (retries exhaust, data never arrives) or
//     ack-dropped (data arrives but the requester still completes in error);
//   * RNR drops — with a plan attached, an inbound message meeting an empty
//     receive queue is counted and dropped instead of aborting the run.
//
// Everything is driven by seeded sim::Rng streams, so a given plan replays
// identically run to run.  Without an attached plan the HCA pipeline's fault
// hooks are single null checks and behaviour is bit-identical to the
// fault-free model.
//
// Parallel engine (sim/shard.hpp): under arm_sharded() every shard gets its
// own link-state view replica — each shard applies every link event at the
// same virtual time but only transitions the QPs living on its own
// simulator, so no shard ever touches another shard's QP state.  Message
// faults switch to per-HCA RNG streams (enable_sharded_streams) because the
// global service order that fed the single stream no longer exists across
// shards; each HCA's own service order is still deterministic, so sharded
// faulty runs stay bit-reproducible per seed (but draw a different fault
// sequence than the single-stream legacy mode).  The counters are relaxed
// atomics and the cross-shard failed-transfer side set takes a mutex — both
// off the fault-free hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {

class Hca;
class QueuePair;

/// Fate of one serviced send WQE.
enum class MsgFault : std::uint8_t {
  None,     ///< delivered normally
  Drop,     ///< transport retries exhausted; no data delivered, error CQE
  AckDrop,  ///< data delivered, ACK lost; error CQE despite remote success
};

class FaultPlan {
 public:
  struct Params {
    std::uint64_t seed = 1;
    /// Per-WQE probability of a transport fault (0 disables message faults).
    double msg_error_rate = 0.0;
    /// Of faulted WQEs, the fraction whose data still lands (lost ACK).
    double ack_drop_fraction = 0.25;
    /// Modelled time between servicing a faulted WQE and its error CQE
    /// (retry exhaustion on the wire).
    sim::Time retry_latency = sim::microseconds(2.0);
  };

  explicit FaultPlan(const Params& p) : params_(p), rng_(p.seed), views_(1) {}

  /// Schedules a link transition for port `port_idx` of `hca` at time `at`.
  void add_link_event(sim::Time at, Hca* hca, int port_idx, bool up);

  /// Registers every scheduled link event with the simulator.  Call once,
  /// after all add_link_event calls and before the simulation runs.
  void arm(sim::Simulator& sim);

  /// Sharded alternative to arm(): every shard's simulator gets a replica of
  /// every link event against its own link-state view, transitioning only
  /// the QPs that live on that shard.
  void arm_sharded(const std::vector<sim::Simulator*>& sims);

  /// Switches message-fault draws to one independent RNG stream per HCA
  /// (keyed by Hca::uid(), seeds derived from the plan seed).  Required
  /// before a sharded run with msg_error_rate > 0.
  void enable_sharded_streams(int hca_count);

  /// Draws the fate of one serviced send WQE on `src` (advances an RNG
  /// stream only when msg_error_rate is non-zero).
  MsgFault draw_msg_fault(const Hca& src);

  [[nodiscard]] sim::Time retry_latency() const { return params_.retry_latency; }
  /// Link state as seen by shard 0's view (also the legacy single view).
  /// Only meaningful from shard 0 / pre-run contexts (NetChannel::establish).
  [[nodiscard]] bool port_down(const Hca* hca, int port_idx) const;

  void count_rnr_drop() { rnr_drops_.fetch_add(1, std::memory_order_relaxed); }

  /// Marks an in-flight transfer's requester CQE as failed (AckDrop or RNR
  /// drop discovered at delivery time).  Kept here — not in the Transfer
  /// struct — so the fault-free pipeline's allocations stay byte-identical
  /// (the interval pin-down cache is sensitive to heap layout).  Mutexed:
  /// marked on the responder's shard, consumed on the requester's (always a
  /// later epoch — the ACK round exceeds the lookahead window).
  void mark_transfer_failed(const void* transfer) {
    std::lock_guard<std::mutex> lock(failed_mu_);
    failed_transfers_.insert(transfer);
  }
  /// Consumes the failure verdict for `transfer`; true if it was marked.
  bool take_transfer_failed(const void* transfer) {
    std::lock_guard<std::mutex> lock(failed_mu_);
    return failed_transfers_.erase(transfer) != 0;
  }

  [[nodiscard]] std::uint64_t injected_errors() const {
    return injected_errors_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t link_transitions() const {
    return link_transitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rnr_drops() const {
    return rnr_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct LinkEvent {
    sim::Time at = 0;
    Hca* hca = nullptr;
    int port = 0;
    bool up = false;
  };

  /// One shard's private picture of which ports are down.  `self` is the
  /// shard's simulator, or nullptr for the legacy single-threaded view
  /// (which owns every QP).
  struct LinkView {
    std::vector<std::pair<const Hca*, int>> down;
    const sim::Simulator* self = nullptr;
  };

  void apply(const LinkEvent& ev, LinkView& view);
  static bool down_in(const LinkView& view, const Hca* hca, int port_idx);
  /// True when `view` (not nullptr-self) excludes QPs on other shards.
  static bool owns_qp(const LinkView& view, const QueuePair* qp);

  Params params_;
  sim::Rng rng_;
  std::vector<sim::Rng> hca_rngs_;  ///< per-HCA streams (sharded mode)
  bool sharded_streams_ = false;
  std::vector<LinkEvent> events_;
  std::vector<LinkView> views_;  ///< one per shard; [0] doubles as legacy
  std::set<const void*> failed_transfers_;
  std::mutex failed_mu_;
  std::atomic<std::uint64_t> injected_errors_{0};
  std::atomic<std::uint64_t> link_transitions_{0};
  std::atomic<std::uint64_t> rnr_drops_{0};
};

}  // namespace ib12x::ib
