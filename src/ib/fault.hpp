// Deterministic fault injection for the fabric model.
//
// A FaultPlan owns every source of modelled failure:
//   * scheduled link events — a port goes down (all QPs behind it, and their
//     peers, transition to the error state and flush) and later comes back up
//     (QPs re-arm once both endpoints' ports are up);
//   * per-message completion errors — each serviced send WQE draws from a
//     seeded RNG and may be dropped (retries exhaust, data never arrives) or
//     ack-dropped (data arrives but the requester still completes in error);
//   * RNR drops — with a plan attached, an inbound message meeting an empty
//     receive queue is counted and dropped instead of aborting the run.
//
// Everything is driven by one sim::Rng, so a given plan replays identically
// run to run.  Without an attached plan the HCA pipeline's fault hooks are
// single null checks and behaviour is bit-identical to the fault-free model.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {

class Hca;

/// Fate of one serviced send WQE.
enum class MsgFault : std::uint8_t {
  None,     ///< delivered normally
  Drop,     ///< transport retries exhausted; no data delivered, error CQE
  AckDrop,  ///< data delivered, ACK lost; error CQE despite remote success
};

class FaultPlan {
 public:
  struct Params {
    std::uint64_t seed = 1;
    /// Per-WQE probability of a transport fault (0 disables message faults).
    double msg_error_rate = 0.0;
    /// Of faulted WQEs, the fraction whose data still lands (lost ACK).
    double ack_drop_fraction = 0.25;
    /// Modelled time between servicing a faulted WQE and its error CQE
    /// (retry exhaustion on the wire).
    sim::Time retry_latency = sim::microseconds(2.0);
  };

  explicit FaultPlan(const Params& p) : params_(p), rng_(p.seed) {}

  /// Schedules a link transition for port `port_idx` of `hca` at time `at`.
  void add_link_event(sim::Time at, Hca* hca, int port_idx, bool up);

  /// Registers every scheduled link event with the simulator.  Call once,
  /// after all add_link_event calls and before the simulation runs.
  void arm(sim::Simulator& sim);

  /// Draws the fate of one serviced send WQE (advances the RNG stream only
  /// when msg_error_rate is non-zero).
  MsgFault draw_msg_fault();

  [[nodiscard]] sim::Time retry_latency() const { return params_.retry_latency; }
  [[nodiscard]] bool port_down(const Hca* hca, int port_idx) const;

  void count_rnr_drop() { ++rnr_drops_; }

  /// Marks an in-flight transfer's requester CQE as failed (AckDrop or RNR
  /// drop discovered at delivery time).  Kept here — not in the Transfer
  /// struct — so the fault-free pipeline's allocations stay byte-identical
  /// (the interval pin-down cache is sensitive to heap layout).
  void mark_transfer_failed(const void* transfer) { failed_transfers_.insert(transfer); }
  /// Consumes the failure verdict for `transfer`; true if it was marked.
  bool take_transfer_failed(const void* transfer) {
    return failed_transfers_.erase(transfer) != 0;
  }

  [[nodiscard]] std::uint64_t injected_errors() const { return injected_errors_; }
  [[nodiscard]] std::uint64_t link_transitions() const { return link_transitions_; }
  [[nodiscard]] std::uint64_t rnr_drops() const { return rnr_drops_; }

 private:
  struct LinkEvent {
    sim::Time at = 0;
    Hca* hca = nullptr;
    int port = 0;
    bool up = false;
  };

  void apply(const LinkEvent& ev);

  Params params_;
  sim::Rng rng_;
  std::vector<LinkEvent> events_;
  std::vector<std::pair<const Hca*, int>> down_;
  std::set<const void*> failed_transfers_;
  std::uint64_t injected_errors_ = 0;
  std::uint64_t link_transitions_ = 0;
  std::uint64_t rnr_drops_ = 0;
};

}  // namespace ib12x::ib
