// Memory registration.  A MemoryDomain plays the role of a protection
// domain's MR table: RDMA operations must name a registered region by rkey
// and stay within its bounds, which catches a whole class of MPI-layer bugs
// (stale CTS, wrong stripe offsets) at the point of damage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "ib/types.hpp"

namespace ib12x::ib {

struct MemoryRegion {
  std::uint64_t addr = 0;  ///< start address (host pointer value)
  std::uint64_t length = 0;
  LKey lkey = 0;
  RKey rkey = 0;
};

class MemoryDomain {
 public:
  /// Registers [buf, buf+len).  Overlapping registrations are allowed, as in
  /// real verbs.
  MemoryRegion register_memory(void* buf, std::size_t len);
  const MemoryRegion& register_memory_const(const void* buf, std::size_t len);

  void deregister(const MemoryRegion& mr);

  /// Resolves an rkey-qualified remote access; throws std::runtime_error on
  /// unknown rkey or out-of-bounds access.
  std::byte* translate_rkey(RKey rkey, std::uint64_t addr, std::uint64_t len) const;

  /// Validates a local-key access the same way.
  void check_lkey(LKey lkey, const void* addr, std::uint64_t len) const;

  [[nodiscard]] std::size_t region_count() const { return by_rkey_.size(); }

 private:
  std::map<RKey, MemoryRegion> by_rkey_;
  std::map<LKey, MemoryRegion> by_lkey_;
  std::uint32_t next_key_ = 1;
  MemoryRegion last_;
};

}  // namespace ib12x::ib
