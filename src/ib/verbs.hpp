// Umbrella header: the complete verbs-like API of the IBM 12x HCA model.
#pragma once

#include "ib/cq.hpp"        // IWYU pragma: export
#include "ib/fabric.hpp"    // IWYU pragma: export
#include "ib/gx_bus.hpp"    // IWYU pragma: export
#include "ib/hca.hpp"       // IWYU pragma: export
#include "ib/mem.hpp"       // IWYU pragma: export
#include "ib/params.hpp"    // IWYU pragma: export
#include "ib/types.hpp"     // IWYU pragma: export
