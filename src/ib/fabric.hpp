// Fabric: the switched InfiniBand subnet plus the HCAs attached to it.
// Owns the simulator reference, the global QP number space and the topology
// (switches, links, LID forwarding tables).  The default topology is the
// paper's testbed: a single crossbar switch with one 12x downlink per HCA
// port and contention modelling off, which reproduces the legacy closed-form
// latency path bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "ib/params.hpp"
#include "ib/topology.hpp"
#include "sim/simulator.hpp"

namespace ib12x::ib {

class FaultPlan;

class Fabric {
 public:
  // Ctor/dtor out of line: fault_ is a unique_ptr to a forward declaration.
  explicit Fabric(sim::Simulator& sim, HcaParams hca_params = {}, FabricParams fabric_params = {},
                  TopologySpec topo_spec = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Attaches a new HCA for the given node id, living on the fabric's own
  /// simulator (the single-threaded engine).
  Hca& add_hca(int node);
  /// Attaches a new HCA placed on an explicit simulator shard (the parallel
  /// engine's object→shard placement; see sim/shard.hpp).
  Hca& add_hca(int node, sim::Simulator& sim);

  /// Connects two QPs into an RC pair (both directions).
  static void connect(QueuePair& a, QueuePair& b);

  /// Installs the fault-injection plan.  Without one (the default) every
  /// fault hook in the HCA pipeline reduces to a null check.
  void attach_fault(std::unique_ptr<FaultPlan> plan);
  [[nodiscard]] FaultPlan* fault_plan() const { return fault_.get(); }

  [[nodiscard]] sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const HcaParams& hca_params() const { return hca_params_; }
  [[nodiscard]] const FabricParams& fabric_params() const { return fabric_params_; }
  [[nodiscard]] Topology& topology() { return *topology_; }
  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] int hca_count() const { return static_cast<int>(hcas_.size()); }
  [[nodiscard]] Hca& hca(int i) { return *hcas_.at(static_cast<std::size_t>(i)); }

  QpNum next_qp_num() { return next_qp_num_++; }

 private:
  sim::Simulator& sim_;
  HcaParams hca_params_;
  FabricParams fabric_params_;
  std::unique_ptr<Topology> topology_;
  std::vector<std::unique_ptr<Hca>> hcas_;
  std::unique_ptr<FaultPlan> fault_;
  QpNum next_qp_num_ = 1;
};

}  // namespace ib12x::ib
