// GX+ host bus model: one serialized pipe per direction plus a shared "core"
// pipe both directions also occupy.  The per-direction rate bounds what one
// direction can stream; the core rate bounds the combined load — this is the
// mechanism that caps bi-directional MPI bandwidth at ~5.4 GB/s on the real
// machine even though 2 × 12x would allow 6 GB/s.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/server.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {

enum class BusDir { ToHca, ToHost };

class GxBus {
 public:
  GxBus(double dir_rate_gbps, double core_rate_gbps)
      : dir_rate_(dir_rate_gbps), core_rate_(core_rate_gbps) {}

  /// Reserves the bus for `bytes` in direction `dir`, starting no earlier
  /// than `earliest`.  Returns the occupancy interval of the directional pipe.
  ///
  /// Contention model: each direction is a FIFO pipe.  While a transfer
  /// overlaps the other direction's booked window it proceeds at the shared
  /// rate min(dir_rate, core_rate/2) — the two directions squeeze into the
  /// core's combined capacity; once the other direction drains, the
  /// remainder streams at the full directional rate.  A direction running
  /// alone therefore gets dir_rate, and sustained symmetric bi-directional
  /// load converges to core_rate/2 per direction (the GX+ behaviour that
  /// caps the paper's bi-BW at ~5.4 GB/s).  Unlike a scalar shared-core
  /// FIFO, this never lets one direction's future bookings starve the
  /// other's present ones.
  sim::Reservation reserve(BusDir dir, sim::Time now, sim::Time earliest, std::int64_t bytes) {
    sim::Time& dfree = dir == BusDir::ToHca ? to_hca_free_ : to_host_free_;
    const sim::Time ofree = dir == BusDir::ToHca ? to_host_free_ : to_hca_free_;
    const sim::Time start = std::max({now, earliest, dfree});

    const double shared_rate = std::min(dir_rate_, core_rate_ / 2.0);
    sim::Time finish;
    if (bytes == 0) {
      finish = start;
    } else if (ofree <= start) {
      finish = start + sim::transfer_time(bytes, dir_rate_);
    } else {
      // Bytes that fit into the contended window [start, ofree).
      const auto contended_bytes = static_cast<std::int64_t>(
          static_cast<double>(ofree - start) * shared_rate / 1000.0);
      if (contended_bytes >= bytes) {
        finish = start + sim::transfer_time(bytes, shared_rate);
      } else {
        finish = ofree + sim::transfer_time(bytes - contended_bytes, dir_rate_);
      }
    }
    busy_[dir == BusDir::ToHca ? 0 : 1] += finish - start;
    dfree = finish;
    return {start, finish};
  }

  [[nodiscard]] double dir_rate() const { return dir_rate_; }
  [[nodiscard]] double core_rate() const { return core_rate_; }
  [[nodiscard]] sim::Time busy_time(BusDir dir) const { return busy_[dir == BusDir::ToHca ? 0 : 1]; }

 private:
  double dir_rate_;
  double core_rate_;
  sim::Time to_hca_free_ = 0;
  sim::Time to_host_free_ = 0;
  sim::Time busy_[2] = {0, 0};
};

}  // namespace ib12x::ib
