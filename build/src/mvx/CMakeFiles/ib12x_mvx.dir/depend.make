# Empty dependencies file for ib12x_mvx.
# This may be replaced when dependencies are built.
