
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mvx/coll.cpp" "src/mvx/CMakeFiles/ib12x_mvx.dir/coll.cpp.o" "gcc" "src/mvx/CMakeFiles/ib12x_mvx.dir/coll.cpp.o.d"
  "/root/repo/src/mvx/comm.cpp" "src/mvx/CMakeFiles/ib12x_mvx.dir/comm.cpp.o" "gcc" "src/mvx/CMakeFiles/ib12x_mvx.dir/comm.cpp.o.d"
  "/root/repo/src/mvx/datatype.cpp" "src/mvx/CMakeFiles/ib12x_mvx.dir/datatype.cpp.o" "gcc" "src/mvx/CMakeFiles/ib12x_mvx.dir/datatype.cpp.o.d"
  "/root/repo/src/mvx/endpoint.cpp" "src/mvx/CMakeFiles/ib12x_mvx.dir/endpoint.cpp.o" "gcc" "src/mvx/CMakeFiles/ib12x_mvx.dir/endpoint.cpp.o.d"
  "/root/repo/src/mvx/policy.cpp" "src/mvx/CMakeFiles/ib12x_mvx.dir/policy.cpp.o" "gcc" "src/mvx/CMakeFiles/ib12x_mvx.dir/policy.cpp.o.d"
  "/root/repo/src/mvx/world.cpp" "src/mvx/CMakeFiles/ib12x_mvx.dir/world.cpp.o" "gcc" "src/mvx/CMakeFiles/ib12x_mvx.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ib/CMakeFiles/ib12x_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ib12x_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
