file(REMOVE_RECURSE
  "libib12x_mvx.a"
)
