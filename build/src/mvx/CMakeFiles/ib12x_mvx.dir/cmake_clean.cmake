file(REMOVE_RECURSE
  "CMakeFiles/ib12x_mvx.dir/coll.cpp.o"
  "CMakeFiles/ib12x_mvx.dir/coll.cpp.o.d"
  "CMakeFiles/ib12x_mvx.dir/comm.cpp.o"
  "CMakeFiles/ib12x_mvx.dir/comm.cpp.o.d"
  "CMakeFiles/ib12x_mvx.dir/datatype.cpp.o"
  "CMakeFiles/ib12x_mvx.dir/datatype.cpp.o.d"
  "CMakeFiles/ib12x_mvx.dir/endpoint.cpp.o"
  "CMakeFiles/ib12x_mvx.dir/endpoint.cpp.o.d"
  "CMakeFiles/ib12x_mvx.dir/policy.cpp.o"
  "CMakeFiles/ib12x_mvx.dir/policy.cpp.o.d"
  "CMakeFiles/ib12x_mvx.dir/world.cpp.o"
  "CMakeFiles/ib12x_mvx.dir/world.cpp.o.d"
  "libib12x_mvx.a"
  "libib12x_mvx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib12x_mvx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
