# Empty dependencies file for ib12x_sim.
# This may be replaced when dependencies are built.
