file(REMOVE_RECURSE
  "CMakeFiles/ib12x_sim.dir/log.cpp.o"
  "CMakeFiles/ib12x_sim.dir/log.cpp.o.d"
  "CMakeFiles/ib12x_sim.dir/process.cpp.o"
  "CMakeFiles/ib12x_sim.dir/process.cpp.o.d"
  "libib12x_sim.a"
  "libib12x_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib12x_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
