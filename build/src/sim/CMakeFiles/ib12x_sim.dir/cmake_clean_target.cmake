file(REMOVE_RECURSE
  "libib12x_sim.a"
)
