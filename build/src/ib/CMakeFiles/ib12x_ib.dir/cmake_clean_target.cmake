file(REMOVE_RECURSE
  "libib12x_ib.a"
)
