# Empty compiler generated dependencies file for ib12x_ib.
# This may be replaced when dependencies are built.
