file(REMOVE_RECURSE
  "CMakeFiles/ib12x_ib.dir/fabric.cpp.o"
  "CMakeFiles/ib12x_ib.dir/fabric.cpp.o.d"
  "CMakeFiles/ib12x_ib.dir/hca.cpp.o"
  "CMakeFiles/ib12x_ib.dir/hca.cpp.o.d"
  "CMakeFiles/ib12x_ib.dir/mem.cpp.o"
  "CMakeFiles/ib12x_ib.dir/mem.cpp.o.d"
  "libib12x_ib.a"
  "libib12x_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib12x_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
