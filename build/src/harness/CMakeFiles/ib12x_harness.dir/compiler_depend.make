# Empty compiler generated dependencies file for ib12x_harness.
# This may be replaced when dependencies are built.
