file(REMOVE_RECURSE
  "CMakeFiles/ib12x_harness.dir/runner.cpp.o"
  "CMakeFiles/ib12x_harness.dir/runner.cpp.o.d"
  "CMakeFiles/ib12x_harness.dir/table.cpp.o"
  "CMakeFiles/ib12x_harness.dir/table.cpp.o.d"
  "libib12x_harness.a"
  "libib12x_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib12x_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
