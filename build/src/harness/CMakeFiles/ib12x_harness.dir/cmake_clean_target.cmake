file(REMOVE_RECURSE
  "libib12x_harness.a"
)
