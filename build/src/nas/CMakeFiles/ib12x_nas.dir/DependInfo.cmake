
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/cg.cpp" "src/nas/CMakeFiles/ib12x_nas.dir/cg.cpp.o" "gcc" "src/nas/CMakeFiles/ib12x_nas.dir/cg.cpp.o.d"
  "/root/repo/src/nas/fft.cpp" "src/nas/CMakeFiles/ib12x_nas.dir/fft.cpp.o" "gcc" "src/nas/CMakeFiles/ib12x_nas.dir/fft.cpp.o.d"
  "/root/repo/src/nas/ft.cpp" "src/nas/CMakeFiles/ib12x_nas.dir/ft.cpp.o" "gcc" "src/nas/CMakeFiles/ib12x_nas.dir/ft.cpp.o.d"
  "/root/repo/src/nas/is.cpp" "src/nas/CMakeFiles/ib12x_nas.dir/is.cpp.o" "gcc" "src/nas/CMakeFiles/ib12x_nas.dir/is.cpp.o.d"
  "/root/repo/src/nas/params.cpp" "src/nas/CMakeFiles/ib12x_nas.dir/params.cpp.o" "gcc" "src/nas/CMakeFiles/ib12x_nas.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mvx/CMakeFiles/ib12x_mvx.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/ib12x_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ib12x_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
