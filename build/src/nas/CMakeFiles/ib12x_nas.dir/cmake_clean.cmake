file(REMOVE_RECURSE
  "CMakeFiles/ib12x_nas.dir/cg.cpp.o"
  "CMakeFiles/ib12x_nas.dir/cg.cpp.o.d"
  "CMakeFiles/ib12x_nas.dir/fft.cpp.o"
  "CMakeFiles/ib12x_nas.dir/fft.cpp.o.d"
  "CMakeFiles/ib12x_nas.dir/ft.cpp.o"
  "CMakeFiles/ib12x_nas.dir/ft.cpp.o.d"
  "CMakeFiles/ib12x_nas.dir/is.cpp.o"
  "CMakeFiles/ib12x_nas.dir/is.cpp.o.d"
  "CMakeFiles/ib12x_nas.dir/params.cpp.o"
  "CMakeFiles/ib12x_nas.dir/params.cpp.o.d"
  "libib12x_nas.a"
  "libib12x_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib12x_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
