file(REMOVE_RECURSE
  "libib12x_nas.a"
)
