# Empty dependencies file for ib12x_nas.
# This may be replaced when dependencies are built.
