file(REMOVE_RECURSE
  "CMakeFiles/nas_runner.dir/nas_runner.cpp.o"
  "CMakeFiles/nas_runner.dir/nas_runner.cpp.o.d"
  "nas_runner"
  "nas_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
