# Empty dependencies file for nas_runner.
# This may be replaced when dependencies are built.
