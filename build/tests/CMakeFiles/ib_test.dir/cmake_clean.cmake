file(REMOVE_RECURSE
  "CMakeFiles/ib_test.dir/ib/contention_test.cpp.o"
  "CMakeFiles/ib_test.dir/ib/contention_test.cpp.o.d"
  "CMakeFiles/ib_test.dir/ib/cq_test.cpp.o"
  "CMakeFiles/ib_test.dir/ib/cq_test.cpp.o.d"
  "CMakeFiles/ib_test.dir/ib/engine_sched_test.cpp.o"
  "CMakeFiles/ib_test.dir/ib/engine_sched_test.cpp.o.d"
  "CMakeFiles/ib_test.dir/ib/gx_bus_test.cpp.o"
  "CMakeFiles/ib_test.dir/ib/gx_bus_test.cpp.o.d"
  "CMakeFiles/ib_test.dir/ib/mem_test.cpp.o"
  "CMakeFiles/ib_test.dir/ib/mem_test.cpp.o.d"
  "CMakeFiles/ib_test.dir/ib/rdma_test.cpp.o"
  "CMakeFiles/ib_test.dir/ib/rdma_test.cpp.o.d"
  "CMakeFiles/ib_test.dir/ib/transfer_test.cpp.o"
  "CMakeFiles/ib_test.dir/ib/transfer_test.cpp.o.d"
  "ib_test"
  "ib_test.pdb"
  "ib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
