
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ib/contention_test.cpp" "tests/CMakeFiles/ib_test.dir/ib/contention_test.cpp.o" "gcc" "tests/CMakeFiles/ib_test.dir/ib/contention_test.cpp.o.d"
  "/root/repo/tests/ib/cq_test.cpp" "tests/CMakeFiles/ib_test.dir/ib/cq_test.cpp.o" "gcc" "tests/CMakeFiles/ib_test.dir/ib/cq_test.cpp.o.d"
  "/root/repo/tests/ib/engine_sched_test.cpp" "tests/CMakeFiles/ib_test.dir/ib/engine_sched_test.cpp.o" "gcc" "tests/CMakeFiles/ib_test.dir/ib/engine_sched_test.cpp.o.d"
  "/root/repo/tests/ib/gx_bus_test.cpp" "tests/CMakeFiles/ib_test.dir/ib/gx_bus_test.cpp.o" "gcc" "tests/CMakeFiles/ib_test.dir/ib/gx_bus_test.cpp.o.d"
  "/root/repo/tests/ib/mem_test.cpp" "tests/CMakeFiles/ib_test.dir/ib/mem_test.cpp.o" "gcc" "tests/CMakeFiles/ib_test.dir/ib/mem_test.cpp.o.d"
  "/root/repo/tests/ib/rdma_test.cpp" "tests/CMakeFiles/ib_test.dir/ib/rdma_test.cpp.o" "gcc" "tests/CMakeFiles/ib_test.dir/ib/rdma_test.cpp.o.d"
  "/root/repo/tests/ib/transfer_test.cpp" "tests/CMakeFiles/ib_test.dir/ib/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/ib_test.dir/ib/transfer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ib12x_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/ib12x_ib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
