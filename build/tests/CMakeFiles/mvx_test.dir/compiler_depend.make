# Empty compiler generated dependencies file for mvx_test.
# This may be replaced when dependencies are built.
