
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mvx/coll_algo_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/coll_algo_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/coll_algo_test.cpp.o.d"
  "/root/repo/tests/mvx/coll_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/coll_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/coll_test.cpp.o.d"
  "/root/repo/tests/mvx/ext_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/ext_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/ext_test.cpp.o.d"
  "/root/repo/tests/mvx/fast_path_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/fast_path_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/fast_path_test.cpp.o.d"
  "/root/repo/tests/mvx/multirail_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/multirail_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/multirail_test.cpp.o.d"
  "/root/repo/tests/mvx/perf_shape_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/perf_shape_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/perf_shape_test.cpp.o.d"
  "/root/repo/tests/mvx/policy_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/policy_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/policy_test.cpp.o.d"
  "/root/repo/tests/mvx/pt2pt_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/pt2pt_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/pt2pt_test.cpp.o.d"
  "/root/repo/tests/mvx/random_traffic_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/random_traffic_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/random_traffic_test.cpp.o.d"
  "/root/repo/tests/mvx/shm_comm_test.cpp" "tests/CMakeFiles/mvx_test.dir/mvx/shm_comm_test.cpp.o" "gcc" "tests/CMakeFiles/mvx_test.dir/mvx/shm_comm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ib12x_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/ib12x_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/mvx/CMakeFiles/ib12x_mvx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
