file(REMOVE_RECURSE
  "CMakeFiles/mvx_test.dir/mvx/coll_algo_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/coll_algo_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/coll_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/coll_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/ext_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/ext_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/fast_path_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/fast_path_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/multirail_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/multirail_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/perf_shape_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/perf_shape_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/policy_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/policy_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/pt2pt_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/pt2pt_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/random_traffic_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/random_traffic_test.cpp.o.d"
  "CMakeFiles/mvx_test.dir/mvx/shm_comm_test.cpp.o"
  "CMakeFiles/mvx_test.dir/mvx/shm_comm_test.cpp.o.d"
  "mvx_test"
  "mvx_test.pdb"
  "mvx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
