file(REMOVE_RECURSE
  "CMakeFiles/ablation_qps.dir/ablation_qps.cpp.o"
  "CMakeFiles/ablation_qps.dir/ablation_qps.cpp.o.d"
  "ablation_qps"
  "ablation_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
