# Empty compiler generated dependencies file for ablation_qps.
# This may be replaced when dependencies are built.
