# Empty compiler generated dependencies file for fig06_bw_uni_large.
# This may be replaced when dependencies are built.
