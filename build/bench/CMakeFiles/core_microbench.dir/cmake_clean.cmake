file(REMOVE_RECURSE
  "CMakeFiles/core_microbench.dir/core_microbench.cpp.o"
  "CMakeFiles/core_microbench.dir/core_microbench.cpp.o.d"
  "core_microbench"
  "core_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
