# Empty compiler generated dependencies file for ablation_stripe_floor.
# This may be replaced when dependencies are built.
