file(REMOVE_RECURSE
  "CMakeFiles/ablation_stripe_floor.dir/ablation_stripe_floor.cpp.o"
  "CMakeFiles/ablation_stripe_floor.dir/ablation_stripe_floor.cpp.o.d"
  "ablation_stripe_floor"
  "ablation_stripe_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stripe_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
