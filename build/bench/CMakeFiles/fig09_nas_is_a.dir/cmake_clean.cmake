file(REMOVE_RECURSE
  "CMakeFiles/fig09_nas_is_a.dir/fig09_nas_is_a.cpp.o"
  "CMakeFiles/fig09_nas_is_a.dir/fig09_nas_is_a.cpp.o.d"
  "fig09_nas_is_a"
  "fig09_nas_is_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nas_is_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
