# Empty dependencies file for fig09_nas_is_a.
# This may be replaced when dependencies are built.
