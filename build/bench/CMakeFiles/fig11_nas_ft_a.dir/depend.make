# Empty dependencies file for fig11_nas_ft_a.
# This may be replaced when dependencies are built.
