file(REMOVE_RECURSE
  "CMakeFiles/fig11_nas_ft_a.dir/fig11_nas_ft_a.cpp.o"
  "CMakeFiles/fig11_nas_ft_a.dir/fig11_nas_ft_a.cpp.o.d"
  "fig11_nas_ft_a"
  "fig11_nas_ft_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_nas_ft_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
