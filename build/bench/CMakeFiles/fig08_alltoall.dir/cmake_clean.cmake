file(REMOVE_RECURSE
  "CMakeFiles/fig08_alltoall.dir/fig08_alltoall.cpp.o"
  "CMakeFiles/fig08_alltoall.dir/fig08_alltoall.cpp.o.d"
  "fig08_alltoall"
  "fig08_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
