# Empty compiler generated dependencies file for fig08_alltoall.
# This may be replaced when dependencies are built.
