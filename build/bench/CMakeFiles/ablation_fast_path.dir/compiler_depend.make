# Empty compiler generated dependencies file for ablation_fast_path.
# This may be replaced when dependencies are built.
