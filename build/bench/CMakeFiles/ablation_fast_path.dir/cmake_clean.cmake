file(REMOVE_RECURSE
  "CMakeFiles/ablation_fast_path.dir/ablation_fast_path.cpp.o"
  "CMakeFiles/ablation_fast_path.dir/ablation_fast_path.cpp.o.d"
  "ablation_fast_path"
  "ablation_fast_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fast_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
