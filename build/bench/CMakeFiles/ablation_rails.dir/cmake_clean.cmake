file(REMOVE_RECURSE
  "CMakeFiles/ablation_rails.dir/ablation_rails.cpp.o"
  "CMakeFiles/ablation_rails.dir/ablation_rails.cpp.o.d"
  "ablation_rails"
  "ablation_rails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
