# Empty compiler generated dependencies file for ablation_rails.
# This may be replaced when dependencies are built.
