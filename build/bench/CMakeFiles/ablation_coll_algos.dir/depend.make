# Empty dependencies file for ablation_coll_algos.
# This may be replaced when dependencies are built.
