file(REMOVE_RECURSE
  "CMakeFiles/ablation_coll_algos.dir/ablation_coll_algos.cpp.o"
  "CMakeFiles/ablation_coll_algos.dir/ablation_coll_algos.cpp.o.d"
  "ablation_coll_algos"
  "ablation_coll_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coll_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
