# Empty compiler generated dependencies file for pallas_collectives.
# This may be replaced when dependencies are built.
