file(REMOVE_RECURSE
  "CMakeFiles/pallas_collectives.dir/pallas_collectives.cpp.o"
  "CMakeFiles/pallas_collectives.dir/pallas_collectives.cpp.o.d"
  "pallas_collectives"
  "pallas_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pallas_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
