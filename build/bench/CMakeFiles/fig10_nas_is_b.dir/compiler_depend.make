# Empty compiler generated dependencies file for fig10_nas_is_b.
# This may be replaced when dependencies are built.
