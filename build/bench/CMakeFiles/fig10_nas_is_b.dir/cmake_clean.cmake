file(REMOVE_RECURSE
  "CMakeFiles/fig10_nas_is_b.dir/fig10_nas_is_b.cpp.o"
  "CMakeFiles/fig10_nas_is_b.dir/fig10_nas_is_b.cpp.o.d"
  "fig10_nas_is_b"
  "fig10_nas_is_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nas_is_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
