file(REMOVE_RECURSE
  "CMakeFiles/fig03_latency_small.dir/fig03_latency_small.cpp.o"
  "CMakeFiles/fig03_latency_small.dir/fig03_latency_small.cpp.o.d"
  "fig03_latency_small"
  "fig03_latency_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_latency_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
