# Empty compiler generated dependencies file for fig03_latency_small.
# This may be replaced when dependencies are built.
