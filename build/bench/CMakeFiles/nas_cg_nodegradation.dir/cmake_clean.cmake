file(REMOVE_RECURSE
  "CMakeFiles/nas_cg_nodegradation.dir/nas_cg_nodegradation.cpp.o"
  "CMakeFiles/nas_cg_nodegradation.dir/nas_cg_nodegradation.cpp.o.d"
  "nas_cg_nodegradation"
  "nas_cg_nodegradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_cg_nodegradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
