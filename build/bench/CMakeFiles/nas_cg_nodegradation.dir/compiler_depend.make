# Empty compiler generated dependencies file for nas_cg_nodegradation.
# This may be replaced when dependencies are built.
