file(REMOVE_RECURSE
  "CMakeFiles/fig07_bw_bi_large.dir/fig07_bw_bi_large.cpp.o"
  "CMakeFiles/fig07_bw_bi_large.dir/fig07_bw_bi_large.cpp.o.d"
  "fig07_bw_bi_large"
  "fig07_bw_bi_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bw_bi_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
