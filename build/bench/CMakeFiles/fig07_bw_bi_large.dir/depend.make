# Empty dependencies file for fig07_bw_bi_large.
# This may be replaced when dependencies are built.
