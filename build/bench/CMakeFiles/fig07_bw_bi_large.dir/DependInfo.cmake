
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_bw_bi_large.cpp" "bench/CMakeFiles/fig07_bw_bi_large.dir/fig07_bw_bi_large.cpp.o" "gcc" "bench/CMakeFiles/fig07_bw_bi_large.dir/fig07_bw_bi_large.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ib12x_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/ib12x_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/mvx/CMakeFiles/ib12x_mvx.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/ib12x_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ib12x_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
