# Empty dependencies file for fig04_latency_large.
# This may be replaced when dependencies are built.
