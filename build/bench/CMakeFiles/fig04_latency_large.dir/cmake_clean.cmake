file(REMOVE_RECURSE
  "CMakeFiles/fig04_latency_large.dir/fig04_latency_large.cpp.o"
  "CMakeFiles/fig04_latency_large.dir/fig04_latency_large.cpp.o.d"
  "fig04_latency_large"
  "fig04_latency_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_latency_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
