# Empty compiler generated dependencies file for fig05_bw_small.
# This may be replaced when dependencies are built.
