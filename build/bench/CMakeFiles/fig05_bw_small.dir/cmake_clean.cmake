file(REMOVE_RECURSE
  "CMakeFiles/fig05_bw_small.dir/fig05_bw_small.cpp.o"
  "CMakeFiles/fig05_bw_small.dir/fig05_bw_small.cpp.o.d"
  "fig05_bw_small"
  "fig05_bw_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bw_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
