# Empty compiler generated dependencies file for fig12_nas_ft_b.
# This may be replaced when dependencies are built.
