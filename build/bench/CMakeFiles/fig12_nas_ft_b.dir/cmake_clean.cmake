file(REMOVE_RECURSE
  "CMakeFiles/fig12_nas_ft_b.dir/fig12_nas_ft_b.cpp.o"
  "CMakeFiles/fig12_nas_ft_b.dir/fig12_nas_ft_b.cpp.o.d"
  "fig12_nas_ft_b"
  "fig12_nas_ft_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nas_ft_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
