// Policy explorer: sweep every scheduling policy over message sizes and
// communication patterns (blocking / non-blocking window / collective) and
// print the winner per cell — a compact view of the trade-off table that
// motivates EPC (no single static policy wins everywhere; EPC picks the
// right one per marker class).
//
//   $ ./build/examples/policy_explorer
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "mvx/mpi.hpp"

using namespace ib12x;

int main() {
  std::printf("policy_explorer — which policy wins for which traffic? (4 QPs/port)\n");
  const std::vector<std::pair<std::string, mvx::Policy>> policies = {
      {"binding", mvx::Policy::Binding},
      {"round-robin", mvx::Policy::RoundRobin},
      {"striping", mvx::Policy::EvenStriping},
      {"EPC", mvx::Policy::EPC},
  };
  const std::vector<std::int64_t> sizes = {4 * 1024, 16 * 1024, 64 * 1024, 1 << 20};

  harness::BenchParams bp;
  bp.lat_iters = 60;
  bp.lat_skip = 10;
  bp.bw_iters = 8;
  bp.bw_skip = 2;

  struct Cell {
    std::vector<double> lat, bw, a2a;
  };
  std::vector<Cell> cells(sizes.size());
  std::optional<harness::Table> epc_telemetry;
  for (const auto& [name, pol] : policies) {
    harness::Runner r(mvx::ClusterSpec{2, 1}, mvx::Config::enhanced(4, pol), bp);
    harness::Runner ra(mvx::ClusterSpec{2, 2}, mvx::Config::enhanced(4, pol), bp);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      cells[i].lat.push_back(r.latency_us(sizes[i]));
      cells[i].bw.push_back(r.uni_bw_mbs(sizes[i]));
      cells[i].a2a.push_back(ra.alltoall_us(sizes[i]));
    }
    if (pol == mvx::Policy::EPC) {
      epc_telemetry = harness::telemetry_table(
          r.world(), "EPC per-layer telemetry (2-rank sweep, all sizes)");
    }
  }

  auto winner = [&](const std::vector<double>& v, bool smaller_is_better) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (smaller_is_better ? v[i] < v[best] : v[i] > v[best]) best = i;
    }
    return policies[best].first;
  };

  std::printf("\n%10s %22s %26s %22s\n", "size", "blocking latency", "non-blocking bandwidth",
              "alltoall (2x2)");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10s %22s %26s %22s\n", harness::size_label(sizes[i]).c_str(),
                winner(cells[i].lat, true).c_str(), winner(cells[i].bw, false).c_str(),
                winner(cells[i].a2a, true).c_str());
  }

  std::printf("\nDetail (latency us / bandwidth MB/s / alltoall us):\n");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("  %s:\n", harness::size_label(sizes[i]).c_str());
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::printf("    %-12s lat %10.2f   bw %10.1f   a2a %10.1f\n", policies[p].first.c_str(),
                  cells[i].lat[p], cells[i].bw[p], cells[i].a2a[p]);
    }
  }
  std::printf("\nEPC should appear as (or tie with) the winner in every column — that is\n"
              "exactly its design goal: fall back to the optimal policy per traffic class.\n");

  if (epc_telemetry.has_value()) {
    std::printf("\nWhere the EPC sweep's messages actually went, per layer:\n");
    epc_telemetry->print();
  }
  return 0;
}
