// Stencil halo exchange — the communication pattern the paper names as
// future work ("we plan to study the impact of these policies on other
// communication types like stencil communication").
//
// A 2-D Jacobi iteration on a px × py process grid: every step exchanges
// halo rows/columns with the four neighbours (non-blocking sendrecv pairs),
// then relaxes the interior.  The example sweeps the scheduling policies and
// reports time per step — showing that for this pattern (a few medium
// messages per step, non-blocking) round robin and EPC behave alike, and
// striping only pays off once halos cross the 16 KiB threshold.
//
//   $ ./build/examples/stencil_halo
#include <cstdio>
#include <vector>

#include "mvx/mpi.hpp"

using namespace ib12x;

namespace {

struct GridResult {
  double us_per_step = 0;
  double residual = 0;
};

GridResult run_stencil(mvx::Config cfg, int px, int py, int n_local, int steps) {
  mvx::World world(mvx::ClusterSpec{px * py, 1}, cfg);  // one rank per node
  GridResult result;

  world.run([&](mvx::Communicator& comm) {
    const int rank = comm.rank();
    const int cx = rank % px, cy = rank / px;
    const int west = cx > 0 ? rank - 1 : -1;
    const int east = cx < px - 1 ? rank + 1 : -1;
    const int north = cy > 0 ? rank - px : -1;
    const int south = cy < py - 1 ? rank + px : -1;

    // Local tile with a one-cell halo ring.
    const int w = n_local + 2;
    std::vector<double> grid(static_cast<std::size_t>(w) * w, 0.0);
    std::vector<double> next = grid;
    // Dirichlet boundary on the global west edge drives the diffusion.
    if (cx == 0) {
      for (int y = 0; y < w; ++y) grid[static_cast<std::size_t>(y) * w] = 100.0;
    }

    std::vector<double> col_out(static_cast<std::size_t>(n_local));
    std::vector<double> col_in_w(static_cast<std::size_t>(n_local));
    std::vector<double> col_in_e(static_cast<std::size_t>(n_local));

    comm.barrier();
    const sim::Time t0 = comm.now();
    for (int s = 0; s < steps; ++s) {
      std::vector<mvx::Request> reqs;
      // Row halos are contiguous; column halos are packed.
      if (north >= 0) {
        reqs.push_back(comm.irecv(&grid[1], n_local, mvx::DOUBLE, north, 0));
        reqs.push_back(comm.isend(&grid[static_cast<std::size_t>(w) + 1], n_local, mvx::DOUBLE, north, 1));
      }
      if (south >= 0) {
        reqs.push_back(comm.irecv(&grid[static_cast<std::size_t>(w) * (n_local + 1) + 1], n_local,
                                  mvx::DOUBLE, south, 1));
        reqs.push_back(comm.isend(&grid[static_cast<std::size_t>(w) * n_local + 1], n_local,
                                  mvx::DOUBLE, south, 0));
      }
      if (west >= 0) {
        for (int y = 0; y < n_local; ++y) col_out[static_cast<std::size_t>(y)] = grid[static_cast<std::size_t>(y + 1) * w + 1];
        reqs.push_back(comm.irecv(col_in_w.data(), n_local, mvx::DOUBLE, west, 2));
        reqs.push_back(comm.isend(col_out.data(), n_local, mvx::DOUBLE, west, 3));
      }
      if (east >= 0) {
        for (int y = 0; y < n_local; ++y) col_out[static_cast<std::size_t>(y)] = grid[static_cast<std::size_t>(y + 1) * w + n_local];
        reqs.push_back(comm.irecv(col_in_e.data(), n_local, mvx::DOUBLE, east, 3));
        reqs.push_back(comm.isend(col_out.data(), n_local, mvx::DOUBLE, east, 2));
      }
      comm.waitall(reqs);
      if (west >= 0) {
        for (int y = 0; y < n_local; ++y) grid[static_cast<std::size_t>(y + 1) * w] = col_in_w[static_cast<std::size_t>(y)];
      }
      if (east >= 0) {
        for (int y = 0; y < n_local; ++y) grid[static_cast<std::size_t>(y + 1) * w + n_local + 1] = col_in_e[static_cast<std::size_t>(y)];
      }

      // Jacobi relaxation of the interior (and charge its virtual cost).
      for (int y = 1; y <= n_local; ++y) {
        for (int x = 1; x <= n_local; ++x) {
          const std::size_t i = static_cast<std::size_t>(y) * w + static_cast<std::size_t>(x);
          next[i] = 0.25 * (grid[i - 1] + grid[i + 1] + grid[i - static_cast<std::size_t>(w)] +
                            grid[i + static_cast<std::size_t>(w)]);
        }
      }
      comm.compute(sim::nanoseconds(2.2 * n_local * n_local));  // ~4 flops + loads per cell
      std::swap(grid, next);
      // Keep the driven boundary pinned.
      if (cx == 0) {
        for (int y = 0; y < w; ++y) grid[static_cast<std::size_t>(y) * w] = 100.0;
      }
    }
    const double us = sim::to_us(comm.now() - t0) / steps;

    // Global residual just to show collective use (and verify determinism).
    double local = 0;
    for (int y = 1; y <= n_local; ++y) {
      for (int x = 1; x <= n_local; ++x) {
        local += grid[static_cast<std::size_t>(y) * w + static_cast<std::size_t>(x)];
      }
    }
    double global = 0;
    comm.allreduce(&local, &global, 1, mvx::DOUBLE, mvx::Op::Sum);
    if (comm.rank() == 0) {
      result.us_per_step = us;
      result.residual = global;
    }
  });
  return result;
}

}  // namespace

int main() {
  std::printf("stencil_halo — 2-D Jacobi halo exchange across policies (2x2 grid of nodes)\n\n");
  std::printf("%12s %18s %18s %14s\n", "tile", "policy", "us/step", "field sum");
  for (int n_local : {256, 2048}) {  // 2 KiB vs 16 KiB halos (below/at threshold)
    for (auto [name, cfg] :
         {std::pair{"original", mvx::Config::original()},
          std::pair{"EPC-4QP", mvx::Config::enhanced(4, mvx::Policy::EPC)},
          std::pair{"striping-4QP", mvx::Config::enhanced(4, mvx::Policy::EvenStriping)},
          std::pair{"rr-4QP", mvx::Config::enhanced(4, mvx::Policy::RoundRobin)}}) {
      GridResult r = run_stencil(cfg, 2, 2, n_local, 20);
      std::printf("%8dx%-4d %18s %18.2f %14.1f\n", n_local, n_local, name, r.us_per_step,
                  r.residual);
    }
  }
  std::printf(
      "\nFinding (the paper's §6 future-work question): halo exchange moves only a\n"
      "few KiB–16 KiB per neighbour per step, so it is latency- and compute-bound —\n"
      "multi-rail scheduling policies barely separate, unlike the bandwidth-bound\n"
      "alltoall/window patterns of the main evaluation.\n");
  return 0;
}
