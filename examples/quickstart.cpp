// Quickstart: build a simulated two-node IBM 12x cluster, run an MPI
// ping-pong, and compare the original single-rail configuration with the
// paper's EPC multi-QP design — in ~40 lines of user code.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "mvx/mpi.hpp"

using namespace ib12x;

double pingpong_us(mvx::Config cfg, std::size_t bytes) {
  // Two nodes, one process each — the paper's microbenchmark layout.
  mvx::World world(mvx::ClusterSpec{2, 1}, cfg);
  double result = 0;

  world.run([&](mvx::Communicator& comm) {
    std::vector<std::byte> buf(bytes);
    const int iters = 50, skip = 10;
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) t0 = comm.now();
      if (comm.rank() == 0) {
        comm.send(buf.data(), bytes, mvx::BYTE, 1, 0);
        comm.recv(buf.data(), bytes, mvx::BYTE, 1, 0);
      } else {
        comm.recv(buf.data(), bytes, mvx::BYTE, 0, 0);
        comm.send(buf.data(), bytes, mvx::BYTE, 0, 0);
      }
    }
    if (comm.rank() == 0) {
      result = sim::to_us(comm.now() - t0) / (2.0 * (iters - skip));
    }
  });
  return result;
}

int main() {
  std::printf("ib12x quickstart — ping-pong latency on the simulated 12x cluster\n\n");
  std::printf("%10s %14s %14s %8s\n", "bytes", "original (us)", "EPC 4QP (us)", "speedup");
  for (std::size_t bytes : {8ul, 1024ul, 65536ul, 1048576ul}) {
    const double orig = pingpong_us(mvx::Config::original(), bytes);
    const double epc = pingpong_us(mvx::Config::enhanced(4, mvx::Policy::EPC), bytes);
    std::printf("%10zu %14.2f %14.2f %7.2fx\n", bytes, orig, epc, orig / epc);
  }
  std::printf("\nSmall messages ride one QP either way; large blocking messages are\n"
              "striped across the four QPs' DMA engines by the EPC policy.\n");
  return 0;
}
