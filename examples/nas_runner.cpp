// NAS kernel runner: execute IS or FT on a chosen cluster layout and
// configuration from the command line — the "application" face of the
// library.
//
//   $ ./build/examples/nas_runner is A 2x4 epc4
//   $ ./build/examples/nas_runner ft S 2x1 orig
//   usage: nas_runner <is|ft> <S|A|B> <nodes>x<procs> <orig|epc2|epc4|stripe4|rr4>
#include <cstdio>
#include <cstring>
#include <string>

#include "mvx/mpi.hpp"
#include "nas/ft.hpp"
#include "nas/is.hpp"

using namespace ib12x;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nas_runner <is|ft> <S|A|B> <nodes>x<procs> <orig|epc2|epc4|stripe4|rr4>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel = argc > 1 ? argv[1] : "is";
  std::string cls_s = argc > 2 ? argv[2] : "S";
  std::string layout = argc > 3 ? argv[3] : "2x2";
  std::string cfg_s = argc > 4 ? argv[4] : "epc4";

  nas::NasClass cls;
  if (cls_s == "S") cls = nas::NasClass::S;
  else if (cls_s == "A") cls = nas::NasClass::A;
  else if (cls_s == "B") cls = nas::NasClass::B;
  else return usage();

  const auto x = layout.find('x');
  if (x == std::string::npos) return usage();
  mvx::ClusterSpec spec;
  spec.nodes = std::stoi(layout.substr(0, x));
  spec.procs_per_node = std::stoi(layout.substr(x + 1));

  mvx::Config cfg;
  if (cfg_s == "orig") cfg = mvx::Config::original();
  else if (cfg_s == "epc2") cfg = mvx::Config::enhanced(2, mvx::Policy::EPC);
  else if (cfg_s == "epc4") cfg = mvx::Config::enhanced(4, mvx::Policy::EPC);
  else if (cfg_s == "stripe4") cfg = mvx::Config::enhanced(4, mvx::Policy::EvenStriping);
  else if (cfg_s == "rr4") cfg = mvx::Config::enhanced(4, mvx::Policy::RoundRobin);
  else return usage();

  std::printf("nas_runner: %s class %s on %dx%d, config %s (%d QPs/port, policy %s)\n",
              kernel.c_str(), nas::to_string(cls), spec.nodes, spec.procs_per_node,
              cfg_s.c_str(), cfg.qps_per_port, mvx::to_string(cfg.policy));

  mvx::World world(spec, cfg);
  if (kernel == "is") {
    nas::IsResult res;
    world.run([&](mvx::Communicator& c) {
      nas::IsResult r = nas::run_is(c, cls);
      if (c.rank() == 0) res = r;
    });
    std::printf("IS: %.4f s (virtual), verified=%s, checksum=%016llx\n", res.seconds,
                res.verified ? "yes" : "NO", static_cast<unsigned long long>(res.checksum));
    return res.verified ? 0 : 1;
  }
  if (kernel == "ft") {
    nas::FtResult res;
    world.run([&](mvx::Communicator& c) {
      nas::FtResult r = nas::run_ft(c, cls);
      if (c.rank() == 0) res = r;
    });
    std::printf("FT: %.4f s (virtual), verified=%s\n", res.seconds, res.verified ? "yes" : "NO");
    for (std::size_t i = 0; i < res.checksums.size(); ++i) {
      std::printf("  checksum[%zu] = %.6e %+.6ei\n", i, res.checksums[i].real(),
                  res.checksums[i].imag());
    }
    return res.verified ? 0 : 1;
  }
  return usage();
}
