// The hardware send scheduler: round-robin over ready QPs, engine-count
// limits, and the multi-QP parallelism that the whole paper hinges on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ib/verbs.hpp"
#include "ib_test_util.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {
namespace {

using testutil::TwoNodeFabric;
using testutil::pattern_buffer;

/// Streams `count` messages of `msg` bytes over `nqp` QPs (round-robin) and
/// returns the achieved aggregate rate in GB/s.
double stream_rate(TwoNodeFabric& f, int nqp, std::int64_t msg, int count) {
  auto src = pattern_buffer(static_cast<std::size_t>(msg));
  std::vector<std::byte> dst(static_cast<std::size_t>(msg));
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  for (int i = 0; i < count; ++i) {
    f.b.qps[static_cast<std::size_t>(i % nqp)]->post_recv(
        {.wr_id = static_cast<std::uint64_t>(i), .dst = dst.data(),
         .length = static_cast<std::uint32_t>(msg), .lkey = dst_mr.lkey});
  }
  for (int i = 0; i < count; ++i) {
    f.a.qps[static_cast<std::size_t>(i % nqp)]->post_send(
        {.wr_id = static_cast<std::uint64_t>(i), .opcode = Opcode::Send, .src = src.data(),
         .length = static_cast<std::uint32_t>(msg), .lkey = src_mr.lkey});
  }
  f.sim.run();
  Wc wc;
  sim::Time last = 0;
  int n = 0;
  while (f.b.rcq.poll(wc)) {
    last = std::max(last, wc.timestamp);
    ++n;
  }
  EXPECT_EQ(n, count);
  return static_cast<double>(msg) * count / static_cast<double>(last) * 1000.0;
}

TEST(EngineScheduler, MoreQpsMoreThroughputUntilLinkLimit) {
  const std::int64_t msg = 1 << 20;
  double r1, r2, r4;
  {
    TwoNodeFabric f({}, {}, 1);
    r1 = stream_rate(f, 1, msg, 16);
  }
  {
    TwoNodeFabric f({}, {}, 2);
    r2 = stream_rate(f, 2, msg, 16);
  }
  {
    TwoNodeFabric f({}, {}, 4);
    r4 = stream_rate(f, 4, msg, 16);
  }
  EXPECT_GT(r2, r1 * 1.5);    // two engines nearly double
  EXPECT_GE(r4, r2 * 0.98);   // four engines at least hold the link/bus ceiling
  EXPECT_LT(r4, 3.0);         // cannot beat the 12x link
  EXPECT_GT(r4, 2.5);         // but gets close (the paper's 2745 MB/s regime)
}

TEST(EngineScheduler, QpCountBeyondEngineCountAddsNothing) {
  const std::int64_t msg = 1 << 20;
  double r4, r8;
  {
    TwoNodeFabric f({}, {}, 4);
    r4 = stream_rate(f, 4, msg, 32);
  }
  {
    TwoNodeFabric f({}, {}, 8);
    r8 = stream_rate(f, 8, msg, 32);
  }
  EXPECT_NEAR(r8, r4, 0.15);
}

TEST(EngineScheduler, RoundRobinSharesFairlyBetweenQps) {
  TwoNodeFabric f({}, {}, 2);
  const std::int64_t msg = 256 * 1024;
  const int per_qp = 8;
  auto src = pattern_buffer(static_cast<std::size_t>(msg));
  std::vector<std::byte> dst(static_cast<std::size_t>(msg));
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  for (int q = 0; q < 2; ++q) {
    for (int i = 0; i < per_qp; ++i) {
      f.b.qps[static_cast<std::size_t>(q)]->post_recv(
          {.wr_id = static_cast<std::uint64_t>(q * 100 + i), .dst = dst.data(),
           .length = static_cast<std::uint32_t>(msg), .lkey = dst_mr.lkey});
      f.a.qps[static_cast<std::size_t>(q)]->post_send(
          {.wr_id = static_cast<std::uint64_t>(q * 100 + i), .opcode = Opcode::Send,
           .src = src.data(), .length = static_cast<std::uint32_t>(msg), .lkey = src_mr.lkey});
    }
  }
  f.sim.run();
  // Both QPs moved the same volume and neither starved.
  EXPECT_EQ(f.a.qps[0]->bytes_sent(), f.a.qps[1]->bytes_sent());
  EXPECT_EQ(f.a.qps[0]->bytes_sent(), static_cast<std::uint64_t>(msg) * per_qp);
}

TEST(EngineScheduler, SingleEngineConfigSerializesQps) {
  HcaParams hp;
  hp.send_engines_per_port = 1;
  hp.recv_engines_per_port = 1;
  TwoNodeFabric f(hp, {}, 4);
  double r = stream_rate(f, 4, 1 << 20, 16);
  // With one engine, extra QPs cannot add bandwidth.
  EXPECT_LT(r, hp.engine_rate_gbps * 1.01);
}

TEST(EngineScheduler, EngineBusyTimeBalanced) {
  TwoNodeFabric f({}, {}, 4);
  stream_rate(f, 4, 1 << 20, 32);
  Port& p = f.a.hca->port(0);
  std::vector<double> busy;
  for (int i = 0; i < p.send_engine_count(); ++i) {
    busy.push_back(sim::to_us(p.send_engine_busy(i)));
  }
  double mx = *std::max_element(busy.begin(), busy.end());
  double mn = *std::min_element(busy.begin(), busy.end());
  EXPECT_GT(mn, 0.0);
  EXPECT_LT(mx / mn, 1.3);
}

TEST(EngineScheduler, PortsAreIndependentResources) {
  // One QP on each of the two ports of the dual-port HCA: aggregate exceeds a
  // single port's engine but each port only used its own engines.
  TwoNodeFabric f({}, {}, 0);
  f.add_qp_pair(0, 0);
  f.add_qp_pair(1, 1);
  double r = stream_rate(f, 2, 1 << 20, 16);
  EXPECT_GT(r, 2.8);  // two engines on two ports, bus-direction limited
  EXPECT_EQ(f.a.hca->port(0).wqes_serviced(), 8u);
  EXPECT_EQ(f.a.hca->port(1).wqes_serviced(), 8u);
}

TEST(EngineScheduler, WqeFetchChargedPerMessage) {
  // Many tiny messages: per-WQE overheads dominate, throughput in msgs/s is
  // bounded by wqe_fetch on one engine.
  TwoNodeFabric f({}, {}, 1);
  const int count = 64;
  auto src = pattern_buffer(8);
  std::vector<std::byte> dst(8);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  for (int i = 0; i < count; ++i) {
    f.b.qps[0]->post_recv({.wr_id = static_cast<std::uint64_t>(i), .dst = dst.data(),
                           .length = 8, .lkey = dst_mr.lkey});
    f.a.qps[0]->post_send({.wr_id = static_cast<std::uint64_t>(i), .opcode = Opcode::Send,
                           .src = src.data(), .length = 8, .lkey = src_mr.lkey});
  }
  f.sim.run();
  Wc wc;
  sim::Time last = 0;
  while (f.b.rcq.poll(wc)) last = std::max(last, wc.timestamp);
  const auto& hp = f.fabric.hca_params();
  // 64 messages serialized on one engine: at least count * wqe_fetch total.
  EXPECT_GE(last, hp.wqe_fetch * count);
}

}  // namespace
}  // namespace ib12x::ib
