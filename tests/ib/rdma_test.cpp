// RDMA write semantics: remote placement, rkey enforcement, write-with-imm,
// and the ordering guarantee the MPI rendezvous protocol depends on
// (requester completion implies remote memory updated).
#include <gtest/gtest.h>

#include <cstring>

#include "ib/verbs.hpp"
#include "ib_test_util.hpp"

namespace ib12x::ib {
namespace {

using testutil::TwoNodeFabric;
using testutil::pattern_buffer;

TEST(Rdma, WritePlacesDataRemotely) {
  TwoNodeFabric f;
  auto src = pattern_buffer(8192);
  std::vector<std::byte> dst(8192);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());

  f.a.qps[0]->post_send({.wr_id = 1, .opcode = Opcode::RdmaWrite, .src = src.data(),
                         .length = 8192, .lkey = src_mr.lkey,
                         .remote_addr = dst_mr.addr, .rkey = dst_mr.rkey});
  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].opcode, WcOpcode::RdmaWriteComplete);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 8192), 0);
  // Plain RDMA write is invisible to the responder.
  Wc wc;
  EXPECT_FALSE(f.b.rcq.poll(wc));
}

TEST(Rdma, WriteAtOffset) {
  TwoNodeFabric f;
  auto src = pattern_buffer(1024);
  std::vector<std::byte> dst(4096);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.a.qps[0]->post_send({.wr_id = 1, .opcode = Opcode::RdmaWrite, .src = src.data(),
                         .length = 1024, .lkey = src_mr.lkey,
                         .remote_addr = dst_mr.addr + 2048, .rkey = dst_mr.rkey});
  f.sim.run();
  EXPECT_EQ(std::memcmp(src.data(), dst.data() + 2048, 1024), 0);
  // Bytes outside the window untouched.
  for (int i = 0; i < 2048; ++i) EXPECT_EQ(dst[static_cast<std::size_t>(i)], std::byte{0});
}

TEST(Rdma, BadRkeyFaults) {
  TwoNodeFabric f;
  auto src = pattern_buffer(64);
  std::vector<std::byte> dst(64);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.a.qps[0]->post_send({.wr_id = 1, .opcode = Opcode::RdmaWrite, .src = src.data(),
                         .length = 64, .lkey = src_mr.lkey,
                         .remote_addr = reinterpret_cast<std::uint64_t>(dst.data()),
                         .rkey = 0xdead});
  EXPECT_THROW(f.sim.run(), std::runtime_error);
}

TEST(Rdma, OutOfBoundsWriteFaults) {
  TwoNodeFabric f;
  auto src = pattern_buffer(128);
  std::vector<std::byte> dst(64);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.a.qps[0]->post_send({.wr_id = 1, .opcode = Opcode::RdmaWrite, .src = src.data(),
                         .length = 128, .lkey = src_mr.lkey,
                         .remote_addr = dst_mr.addr, .rkey = dst_mr.rkey});
  EXPECT_THROW(f.sim.run(), std::runtime_error);
}

TEST(Rdma, WriteWithImmConsumesRecvAndCarriesImm) {
  TwoNodeFabric f;
  auto src = pattern_buffer(512);
  std::vector<std::byte> dst(512);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 77, .dst = nullptr, .length = 0, .lkey = 0});
  f.a.qps[0]->post_send({.wr_id = 1, .opcode = Opcode::RdmaWriteWithImm, .src = src.data(),
                         .length = 512, .lkey = src_mr.lkey,
                         .remote_addr = dst_mr.addr, .rkey = dst_mr.rkey,
                         .imm_data = 0xabcd1234});
  f.sim.run();
  Wc rwc;
  ASSERT_TRUE(f.b.rcq.poll(rwc));
  EXPECT_EQ(rwc.wr_id, 77u);
  EXPECT_TRUE(rwc.has_imm);
  EXPECT_EQ(rwc.imm_data, 0xabcd1234u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 512), 0);
}

TEST(Rdma, CompletionImpliesRemoteDataVisible) {
  // Rendezvous correctness hinges on this: when the requester's write CQE
  // arrives, a subsequent FIN Send (even on another QP) cannot beat the data.
  TwoNodeFabric f;
  auto src = pattern_buffer(64 * 1024);
  std::vector<std::byte> dst(64 * 1024);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.a.qps[0]->post_send({.wr_id = 1, .opcode = Opcode::RdmaWrite, .src = src.data(),
                         .length = 64 * 1024, .lkey = src_mr.lkey,
                         .remote_addr = dst_mr.addr, .rkey = dst_mr.rkey});

  bool checked = false;
  f.a.scq.set_callback([&](const Wc& wc) {
    ASSERT_EQ(wc.opcode, WcOpcode::RdmaWriteComplete);
    // At CQE time the remote buffer is already fully written.
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), 64 * 1024), 0);
    checked = true;
  });
  f.sim.run();
  EXPECT_TRUE(checked);
}

TEST(Rdma, StripedWritesLandDisjointly) {
  // Four stripes to four offsets via four QPs — the multi-rail data path.
  TwoNodeFabric f({}, {}, 4);
  const std::size_t total = 256 * 1024, stripe = total / 4;
  auto src = pattern_buffer(total);
  std::vector<std::byte> dst(total);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  for (int i = 0; i < 4; ++i) {
    f.a.qps[static_cast<std::size_t>(i)]->post_send(
        {.wr_id = static_cast<std::uint64_t>(i), .opcode = Opcode::RdmaWrite,
         .src = src.data() + static_cast<std::size_t>(i) * stripe,
         .length = static_cast<std::uint32_t>(stripe), .lkey = src_mr.lkey,
         .remote_addr = dst_mr.addr + static_cast<std::uint64_t>(i) * stripe,
         .rkey = dst_mr.rkey});
  }
  auto wcs = f.drain(f.a.scq);
  EXPECT_EQ(wcs.size(), 4u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), total), 0);
}

}  // namespace
}  // namespace ib12x::ib
