// End-to-end Send/Recv transfers through the full HCA + fabric pipeline:
// data integrity, completion semantics, ordering, latency/bandwidth sanity.
#include <gtest/gtest.h>

#include <cstring>

#include "ib/verbs.hpp"
#include "ib_test_util.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {
namespace {

using testutil::TwoNodeFabric;
using testutil::pattern_buffer;

TEST(Transfer, SendDeliversDataIntact) {
  TwoNodeFabric f;
  auto src = pattern_buffer(4096);
  std::vector<std::byte> dst(4096);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());

  f.b.qps[0]->post_recv({.wr_id = 10, .dst = dst.data(), .length = 4096, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 20, .opcode = Opcode::Send, .src = src.data(),
                         .length = 4096, .lkey = src_mr.lkey});

  auto send_wcs = f.drain(f.a.scq);
  ASSERT_EQ(send_wcs.size(), 1u);
  EXPECT_EQ(send_wcs[0].wr_id, 20u);
  EXPECT_EQ(send_wcs[0].opcode, WcOpcode::SendComplete);
  EXPECT_EQ(send_wcs[0].byte_len, 4096u);

  Wc rwc;
  ASSERT_TRUE(f.b.rcq.poll(rwc));
  EXPECT_EQ(rwc.wr_id, 10u);
  EXPECT_EQ(rwc.opcode, WcOpcode::RecvComplete);
  EXPECT_EQ(rwc.src_qp, f.a.qps[0]->num());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4096), 0);
}

TEST(Transfer, RecvCompletesBeforeSendCqe) {
  // The responder sees the data before the requester sees the ACK-driven CQE.
  TwoNodeFabric f;
  auto src = pattern_buffer(1024);
  std::vector<std::byte> dst(1024);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 1024, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(),
                         .length = 1024, .lkey = src_mr.lkey});
  f.sim.run();
  Wc swc, rwc;
  ASSERT_TRUE(f.a.scq.poll(swc));
  ASSERT_TRUE(f.b.rcq.poll(rwc));
  EXPECT_LT(rwc.timestamp, swc.timestamp);
}

TEST(Transfer, ZeroLengthSendWorks) {
  TwoNodeFabric f;
  f.b.qps[0]->post_recv({.wr_id = 5, .dst = nullptr, .length = 0, .lkey = 0});
  f.a.qps[0]->post_send({.wr_id = 6, .opcode = Opcode::Send, .src = nullptr, .length = 0, .lkey = 0});
  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 1u);
  Wc rwc;
  ASSERT_TRUE(f.b.rcq.poll(rwc));
  EXPECT_EQ(rwc.byte_len, 0u);
}

TEST(Transfer, MessagesOnOneQpArriveInOrder) {
  TwoNodeFabric f;
  const int n = 16;
  std::vector<std::vector<std::byte>> srcs, dsts;
  for (int i = 0; i < n; ++i) {
    srcs.push_back(pattern_buffer(2048, static_cast<unsigned>(i)));
    dsts.emplace_back(2048);
  }
  for (int i = 0; i < n; ++i) {
    auto mr = f.b.hca->mem().register_memory(dsts[static_cast<std::size_t>(i)].data(), 2048);
    f.b.qps[0]->post_recv({.wr_id = static_cast<std::uint64_t>(i),
                           .dst = dsts[static_cast<std::size_t>(i)].data(),
                           .length = 2048, .lkey = mr.lkey});
  }
  for (int i = 0; i < n; ++i) {
    auto mr = f.a.hca->mem().register_memory(srcs[static_cast<std::size_t>(i)].data(), 2048);
    f.a.qps[0]->post_send({.wr_id = static_cast<std::uint64_t>(100 + i), .opcode = Opcode::Send,
                           .src = srcs[static_cast<std::size_t>(i)].data(), .length = 2048,
                           .lkey = mr.lkey});
  }
  f.sim.run();
  // RC guarantees in-order delivery per QP: recv i gets payload i.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(std::memcmp(srcs[static_cast<std::size_t>(i)].data(),
                          dsts[static_cast<std::size_t>(i)].data(), 2048), 0)
        << "message " << i;
  }
  std::size_t count = 0;
  Wc wc;
  sim::Time prev = -1;
  while (f.b.rcq.poll(wc)) {
    EXPECT_EQ(wc.wr_id, count);
    EXPECT_GE(wc.timestamp, prev);
    prev = wc.timestamp;
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(n));
}

TEST(Transfer, UnsignaledSendProducesNoSendCqe) {
  TwoNodeFabric f;
  auto src = pattern_buffer(128);
  std::vector<std::byte> dst(128);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 128, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(), .length = 128,
                         .lkey = src_mr.lkey, .signaled = false});
  f.sim.run();
  Wc wc;
  EXPECT_FALSE(f.a.scq.poll(wc));
  EXPECT_TRUE(f.b.rcq.poll(wc));
}

TEST(Transfer, RnrWithoutRecvWqeThrows) {
  TwoNodeFabric f;
  auto src = pattern_buffer(64);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  f.a.qps[0]->post_send({.wr_id = 1, .opcode = Opcode::Send, .src = src.data(), .length = 64,
                         .lkey = src_mr.lkey});
  EXPECT_THROW(f.sim.run(), std::runtime_error);
}

TEST(Transfer, RecvBufferTooSmallThrows) {
  TwoNodeFabric f;
  auto src = pattern_buffer(256);
  std::vector<std::byte> dst(64);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 64, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(), .length = 256,
                         .lkey = src_mr.lkey});
  EXPECT_THROW(f.sim.run(), std::runtime_error);
}

TEST(Transfer, UnregisteredSourceThrows) {
  TwoNodeFabric f;
  auto src = pattern_buffer(64);
  std::vector<std::byte> dst(64);
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 64, .lkey = dst_mr.lkey});
  // The lkey check runs when the scheduler picks the WQE up, which with free
  // engines is synchronous with the post.
  EXPECT_THROW(f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(),
                                      .length = 64, .lkey = 12345}),
               std::runtime_error);
}

TEST(Transfer, PostToUnconnectedQpThrows) {
  sim::Simulator s;
  Fabric fabric(s);
  Hca& hca = fabric.add_hca(0);
  CompletionQueue scq, rcq;
  QueuePair& qp = hca.create_qp(0, scq, rcq);
  auto buf = pattern_buffer(16);
  auto mr = hca.mem().register_memory(buf.data(), buf.size());
  EXPECT_THROW(qp.post_send({.wr_id = 1, .opcode = Opcode::Send, .src = buf.data(), .length = 16,
                             .lkey = mr.lkey}),
               std::logic_error);
}

TEST(Transfer, SmallMessageLatencyInHardwareBudget) {
  // One 8-byte send, default parameters: the pure-hardware one-way latency
  // (no MPI software on top) should land roughly in the 1.3–2.5 us window a
  // 2007-era RC verbs ping leg takes.
  TwoNodeFabric f;
  auto src = pattern_buffer(8);
  std::vector<std::byte> dst(8);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 8, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(), .length = 8,
                         .lkey = src_mr.lkey});
  f.sim.run();
  Wc rwc;
  ASSERT_TRUE(f.b.rcq.poll(rwc));
  EXPECT_GT(sim::to_us(rwc.timestamp), 0.8);
  EXPECT_LT(sim::to_us(rwc.timestamp), 2.5);
}

TEST(Transfer, LargeMessageSingleQpBandwidthIsEngineLimited) {
  // Stream 32 MB through one QP: the single send engine (1.72 GB/s) must be
  // the bottleneck, not the 3 GB/s link.
  TwoNodeFabric f;
  const std::int64_t msg = 1 << 20;
  const int count = 32;
  auto src = pattern_buffer(static_cast<std::size_t>(msg));
  std::vector<std::byte> dst(static_cast<std::size_t>(msg));
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  for (int i = 0; i < count; ++i) {
    f.b.qps[0]->post_recv({.wr_id = static_cast<std::uint64_t>(i), .dst = dst.data(),
                           .length = static_cast<std::uint32_t>(msg), .lkey = dst_mr.lkey});
  }
  for (int i = 0; i < count; ++i) {
    f.a.qps[0]->post_send({.wr_id = static_cast<std::uint64_t>(i), .opcode = Opcode::Send,
                           .src = src.data(), .length = static_cast<std::uint32_t>(msg),
                           .lkey = src_mr.lkey});
  }
  f.sim.run();
  Wc wc;
  sim::Time last = 0;
  int n = 0;
  while (f.b.rcq.poll(wc)) {
    last = std::max(last, wc.timestamp);
    ++n;
  }
  ASSERT_EQ(n, count);
  const double gbps = static_cast<double>(msg) * count / static_cast<double>(last) * 1000.0;
  EXPECT_GT(gbps, 1.45);
  EXPECT_LT(gbps, 1.75);  // must not exceed one engine's rate
}

}  // namespace
}  // namespace ib12x::ib
