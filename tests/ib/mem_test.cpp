#include "ib/mem.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ib12x::ib {
namespace {

TEST(MemoryDomain, RegisterAndTranslate) {
  MemoryDomain md;
  std::vector<std::byte> buf(256);
  MemoryRegion mr = md.register_memory(buf.data(), buf.size());
  EXPECT_NE(mr.rkey, 0u);
  std::byte* p = md.translate_rkey(mr.rkey, mr.addr + 16, 64);
  EXPECT_EQ(p, buf.data() + 16);
}

TEST(MemoryDomain, UnknownRkeyThrows) {
  MemoryDomain md;
  EXPECT_THROW(md.translate_rkey(999, 0x1000, 4), std::runtime_error);
}

TEST(MemoryDomain, OutOfBoundsThrows) {
  MemoryDomain md;
  std::vector<std::byte> buf(128);
  MemoryRegion mr = md.register_memory(buf.data(), buf.size());
  EXPECT_THROW(md.translate_rkey(mr.rkey, mr.addr + 120, 16), std::runtime_error);
  EXPECT_THROW(md.translate_rkey(mr.rkey, mr.addr - 8, 8), std::runtime_error);
}

TEST(MemoryDomain, ExactBoundsAllowed) {
  MemoryDomain md;
  std::vector<std::byte> buf(128);
  MemoryRegion mr = md.register_memory(buf.data(), buf.size());
  EXPECT_NO_THROW(md.translate_rkey(mr.rkey, mr.addr, 128));
}

TEST(MemoryDomain, DeregisterInvalidatesKeys) {
  MemoryDomain md;
  std::vector<std::byte> buf(64);
  MemoryRegion mr = md.register_memory(buf.data(), buf.size());
  md.deregister(mr);
  EXPECT_THROW(md.translate_rkey(mr.rkey, mr.addr, 1), std::runtime_error);
  EXPECT_EQ(md.region_count(), 0u);
}

TEST(MemoryDomain, LkeyValidation) {
  MemoryDomain md;
  std::vector<std::byte> buf(64);
  MemoryRegion mr = md.register_memory(buf.data(), buf.size());
  EXPECT_NO_THROW(md.check_lkey(mr.lkey, buf.data(), 64));
  EXPECT_THROW(md.check_lkey(mr.lkey, buf.data() + 1, 64), std::runtime_error);
  EXPECT_THROW(md.check_lkey(777, buf.data(), 1), std::runtime_error);
}

TEST(MemoryDomain, OverlappingRegistrationsCoexist) {
  MemoryDomain md;
  std::vector<std::byte> buf(256);
  MemoryRegion a = md.register_memory(buf.data(), 256);
  MemoryRegion b = md.register_memory(buf.data() + 64, 64);
  EXPECT_NE(a.rkey, b.rkey);
  EXPECT_NO_THROW(md.translate_rkey(a.rkey, a.addr + 200, 8));
  EXPECT_THROW(md.translate_rkey(b.rkey, a.addr + 200, 8), std::runtime_error);
  EXPECT_EQ(md.region_count(), 2u);
}

TEST(MemoryDomain, ConstRegistration) {
  MemoryDomain md;
  const std::vector<std::byte> buf(32);
  const MemoryRegion& mr = md.register_memory_const(buf.data(), buf.size());
  EXPECT_NO_THROW(md.check_lkey(mr.lkey, buf.data(), 32));
}

}  // namespace
}  // namespace ib12x::ib
