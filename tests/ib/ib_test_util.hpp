// Shared scaffolding for IB-model tests: a two-node fabric with one
// connected QP pair (more can be added), registered scratch buffers, and a
// drain helper that runs the simulator and collects completions.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "ib/verbs.hpp"
#include "sim/simulator.hpp"

namespace ib12x::ib::testutil {

struct Endpoint {
  Hca* hca = nullptr;
  CompletionQueue scq;
  CompletionQueue rcq;
  std::vector<QueuePair*> qps;
};

struct TwoNodeFabric {
  explicit TwoNodeFabric(HcaParams hp = {}, FabricParams fp = {}, int qps_per_side = 1)
      : fabric(sim, hp, fp) {
    a.hca = &fabric.add_hca(0);
    b.hca = &fabric.add_hca(1);
    for (int i = 0; i < qps_per_side; ++i) add_qp_pair(0, 0);
  }

  /// Adds one connected QP pair on the given ports of each side.
  void add_qp_pair(int port_a, int port_b) {
    QueuePair& qa = a.hca->create_qp(port_a, a.scq, a.rcq);
    QueuePair& qb = b.hca->create_qp(port_b, b.scq, b.rcq);
    Fabric::connect(qa, qb);
    a.qps.push_back(&qa);
    b.qps.push_back(&qb);
  }

  /// Runs the event loop to completion and returns all CQEs from `cq`.
  std::vector<Wc> drain(CompletionQueue& cq) {
    sim.run();
    std::vector<Wc> out;
    Wc wc;
    while (cq.poll(wc)) out.push_back(wc);
    return out;
  }

  sim::Simulator sim;
  Fabric fabric;
  Endpoint a;
  Endpoint b;
};

inline std::vector<std::byte> pattern_buffer(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + seed * 7) & 0xff);
  }
  return v;
}

}  // namespace ib12x::ib::testutil
