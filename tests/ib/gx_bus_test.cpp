#include "ib/gx_bus.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace ib12x::ib {
namespace {

using sim::transfer_time;

TEST(GxBus, SingleDirectionRunsAtDirRate) {
  GxBus bus(/*dir=*/2.0, /*core=*/4.0);
  auto r = bus.reserve(BusDir::ToHca, 0, 0, 2000);
  EXPECT_EQ(r.finish - r.start, transfer_time(2000, 2.0));
}

TEST(GxBus, DirectionSerializes) {
  GxBus bus(2.0, 4.0);
  auto r1 = bus.reserve(BusDir::ToHca, 0, 0, 1000);
  auto r2 = bus.reserve(BusDir::ToHca, 0, 0, 1000);
  EXPECT_GE(r2.start, r1.finish - transfer_time(1000, 4.0));
  // dir pipe fully serializes within a direction when core is not limiting:
  // core frees earlier (core faster), so start is dir-limited.
  EXPECT_EQ(r2.start, r1.finish);
}

TEST(GxBus, ContendedTransferRunsAtSharedRate) {
  // dir 3.0 each, core 4.0 → shared rate 2.0.  While direction A's booked
  // window covers it entirely, a B-direction transfer runs at 2.0.
  GxBus bus(3.0, 4.0);
  // Deep A-direction queue: horizon far in the future.
  for (int i = 0; i < 10; ++i) bus.reserve(BusDir::ToHca, 0, 0, 3'000'000);
  auto r = bus.reserve(BusDir::ToHost, 0, 0, 600'000);
  EXPECT_EQ(r.finish - r.start, transfer_time(600'000, 2.0));
}

TEST(GxBus, TransferSpeedsUpWhenOtherDirectionDrains) {
  // A transfer that overlaps the tail of the other direction's window pays
  // the shared rate only for the overlapped bytes.
  GxBus bus(3.0, 4.0);
  bus.reserve(BusDir::ToHca, 0, 0, 300'000);  // busy until 100 us
  auto r = bus.reserve(BusDir::ToHost, 0, 0, 600'000);
  // Contended until t=100us at 2.0 → 200 KB; remaining 400 KB at 3.0.
  const sim::Time expect = transfer_time(300'000, 3.0) + transfer_time(400'000, 3.0);
  EXPECT_EQ(r.start, 0);
  EXPECT_EQ(r.finish, expect);
}

TEST(GxBus, SustainedBidirConvergesToCoreCap) {
  // Both directions keep deep queues (bookings made while the other side's
  // horizon is long): combined throughput settles at the core rate.
  GxBus bus(3.0, 4.0);
  const std::int64_t bytes = 300000;
  sim::Time end = 0;
  // Prime both horizons, then alternate under mutual contention.
  bus.reserve(BusDir::ToHca, 0, 0, bytes);
  bus.reserve(BusDir::ToHost, 0, 0, bytes);
  for (int i = 0; i < 40; ++i) {
    end = std::max(end, bus.reserve(BusDir::ToHca, 0, 0, bytes).finish);
    end = std::max(end, bus.reserve(BusDir::ToHost, 0, 0, bytes).finish);
  }
  const double total_bytes = 2.0 * 41 * static_cast<double>(bytes);
  const double achieved_gbps = total_bytes / static_cast<double>(end) * 1000.0;
  // With shallow one-message-deep alternation the overlap model admits up to
  // ~(dir + shared)/2 per direction transiently; deep pipelines (the regime
  // MPI windows create, see Contention.BidirectionalIsBusCoupled) converge
  // to the core cap.  Bound the shallow case at dir + shared.
  EXPECT_LE(achieved_gbps, 3.0 + 2.0 + 0.05);
  EXPECT_GE(achieved_gbps, 3.8);
}

TEST(GxBus, OneDirectionAloneNotCoreLimited) {
  GxBus bus(2.0, 5.0);
  sim::Time end = 0;
  for (int i = 0; i < 10; ++i) end = bus.reserve(BusDir::ToHca, 0, 0, 100000).finish;
  const double achieved = 10 * 100000.0 / static_cast<double>(end) * 1000.0;
  EXPECT_NEAR(achieved, 2.0, 0.01);
}

TEST(GxBus, BusyTimePerDirection) {
  GxBus bus(1.0, 2.0);
  bus.reserve(BusDir::ToHca, 0, 0, 500);
  bus.reserve(BusDir::ToHost, 0, 0, 300);
  EXPECT_EQ(bus.busy_time(BusDir::ToHca), transfer_time(500, 1.0));
  EXPECT_EQ(bus.busy_time(BusDir::ToHost), transfer_time(300, 1.0));
}

}  // namespace
}  // namespace ib12x::ib
