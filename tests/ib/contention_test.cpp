// Resource-contention behaviour: bi-directional bus coupling, SRQ sharing,
// ACK traffic on the reverse link, and parameterized engine-count sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "ib/verbs.hpp"
#include "ib_test_util.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {
namespace {

using testutil::TwoNodeFabric;
using testutil::pattern_buffer;

struct StreamResult {
  double fwd_gbps = 0;
  double rev_gbps = 0;
};

/// Streams `count` messages of `msg` bytes A→B over all of A's QPs, and (if
/// bidir) the same B→A, then reports per-direction goodput.
StreamResult stream(TwoNodeFabric& f, std::int64_t msg, int count, bool bidir) {
  const int nqp = static_cast<int>(f.a.qps.size());
  auto src = pattern_buffer(static_cast<std::size_t>(msg));
  std::vector<std::byte> dst_b(static_cast<std::size_t>(msg)), dst_a(static_cast<std::size_t>(msg));
  auto a_src = f.a.hca->mem().register_memory(src.data(), src.size());
  auto b_src = f.b.hca->mem().register_memory(src.data(), src.size());
  auto b_dst = f.b.hca->mem().register_memory(dst_b.data(), dst_b.size());
  auto a_dst = f.a.hca->mem().register_memory(dst_a.data(), dst_a.size());
  for (int i = 0; i < count; ++i) {
    f.b.qps[static_cast<std::size_t>(i % nqp)]->post_recv(
        {.wr_id = 1, .dst = dst_b.data(), .length = static_cast<std::uint32_t>(msg), .lkey = b_dst.lkey});
    if (bidir) {
      f.a.qps[static_cast<std::size_t>(i % nqp)]->post_recv(
          {.wr_id = 2, .dst = dst_a.data(), .length = static_cast<std::uint32_t>(msg), .lkey = a_dst.lkey});
    }
  }
  for (int i = 0; i < count; ++i) {
    f.a.qps[static_cast<std::size_t>(i % nqp)]->post_send(
        {.wr_id = 3, .opcode = Opcode::Send, .src = src.data(),
         .length = static_cast<std::uint32_t>(msg), .lkey = a_src.lkey});
    if (bidir) {
      f.b.qps[static_cast<std::size_t>(i % nqp)]->post_send(
          {.wr_id = 4, .opcode = Opcode::Send, .src = src.data(),
           .length = static_cast<std::uint32_t>(msg), .lkey = b_src.lkey});
    }
  }
  f.sim.run();
  StreamResult r;
  Wc wc;
  sim::Time last_b = 0, last_a = 0;
  while (f.b.rcq.poll(wc)) last_b = std::max(last_b, wc.timestamp);
  while (f.a.rcq.poll(wc)) last_a = std::max(last_a, wc.timestamp);
  r.fwd_gbps = static_cast<double>(msg) * count / static_cast<double>(last_b) * 1000.0;
  if (bidir) r.rev_gbps = static_cast<double>(msg) * count / static_cast<double>(last_a) * 1000.0;
  return r;
}

TEST(Contention, BidirectionalIsBusCoupled) {
  // 4 QPs: uni direction reaches ~2.7–2.9 GB/s; bidir total lands at the
  // GX+ core cap (~5.4 GB/s), not 2× the uni rate of 5.8.
  double uni, bidir_total;
  {
    TwoNodeFabric f({}, {}, 4);
    uni = stream(f, 1 << 20, 32, false).fwd_gbps;
  }
  {
    TwoNodeFabric f({}, {}, 4);
    auto r = stream(f, 1 << 20, 32, true);
    bidir_total = r.fwd_gbps + r.rev_gbps;
  }
  EXPECT_GT(uni, 2.55);
  EXPECT_LT(uni, 2.95);
  EXPECT_GT(bidir_total, 2 * uni * 0.85);
  EXPECT_LT(bidir_total, 2 * uni * 0.99);  // strictly worse than 2× uni
}

TEST(Contention, SingleQpBidirBothDirectionsProgress) {
  TwoNodeFabric f({}, {}, 1);
  auto r = stream(f, 1 << 20, 16, true);
  EXPECT_GT(r.fwd_gbps, 1.3);
  EXPECT_GT(r.rev_gbps, 1.3);
  // One engine per direction; the engine rate caps each.
  EXPECT_LT(r.fwd_gbps, 1.75);
  EXPECT_LT(r.rev_gbps, 1.75);
}

TEST(Contention, SrqSharedAcrossQps) {
  TwoNodeFabric f({}, {}, 0);
  SharedReceiveQueue& srq = f.b.hca->create_srq();
  QueuePair& qa1 = f.a.hca->create_qp(0, f.a.scq, f.a.rcq);
  QueuePair& qb1 = f.b.hca->create_qp(0, f.b.scq, f.b.rcq, &srq);
  QueuePair& qa2 = f.a.hca->create_qp(0, f.a.scq, f.a.rcq);
  QueuePair& qb2 = f.b.hca->create_qp(0, f.b.scq, f.b.rcq, &srq);
  Fabric::connect(qa1, qb1);
  Fabric::connect(qa2, qb2);

  auto src = pattern_buffer(128);
  std::vector<std::byte> d1(128), d2(128);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto m1 = f.b.hca->mem().register_memory(d1.data(), d1.size());
  auto m2 = f.b.hca->mem().register_memory(d2.data(), d2.size());
  srq.post({.wr_id = 1, .dst = d1.data(), .length = 128, .lkey = m1.lkey});
  srq.post({.wr_id = 2, .dst = d2.data(), .length = 128, .lkey = m2.lkey});

  qa1.post_send({.wr_id = 10, .opcode = Opcode::Send, .src = src.data(), .length = 128, .lkey = src_mr.lkey});
  qa2.post_send({.wr_id = 11, .opcode = Opcode::Send, .src = src.data(), .length = 128, .lkey = src_mr.lkey});
  f.sim.run();
  Wc wc;
  int got = 0;
  while (f.b.rcq.poll(wc)) ++got;
  EXPECT_EQ(got, 2);
  EXPECT_EQ(srq.pending(), 0u);
}

TEST(Contention, PostRecvOnSrqQpRejected) {
  TwoNodeFabric f({}, {}, 0);
  SharedReceiveQueue& srq = f.b.hca->create_srq();
  QueuePair& qb = f.b.hca->create_qp(0, f.b.scq, f.b.rcq, &srq);
  EXPECT_THROW(qb.post_recv({.wr_id = 1, .dst = nullptr, .length = 0, .lkey = 0}), std::logic_error);
}

class EngineSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineSweep, ThroughputScalesWithEngines) {
  const int engines = GetParam();
  HcaParams hp;
  hp.send_engines_per_port = engines;
  hp.recv_engines_per_port = engines;
  TwoNodeFabric f(hp, {}, engines);
  double gbps = stream(f, 1 << 20, 8 * engines, false).fwd_gbps;
  const double expect_cap = std::min({hp.engine_rate_gbps * engines,
                                      hp.link_rate_gbps, hp.bus_dir_rate_gbps});
  EXPECT_LT(gbps, expect_cap * 1.01);
  EXPECT_GT(gbps, expect_cap * 0.80);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

class SegmentSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SegmentSweep, ModelSegmentSizeDoesNotChangeSteadyState) {
  // The pipeline granularity is a modelling knob; steady-state bandwidth
  // must be insensitive to it (within a few %).
  HcaParams hp;
  hp.model_segment_bytes = GetParam();
  TwoNodeFabric f(hp, {}, 4);
  double gbps = stream(f, 1 << 20, 32, false).fwd_gbps;
  EXPECT_GT(gbps, 2.5);
  EXPECT_LT(gbps, 2.95);
}

INSTANTIATE_TEST_SUITE_P(Segments, SegmentSweep,
                         ::testing::Values(4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024));

TEST(Contention, AckTrafficOccupiesReverseLink) {
  // A→B stream: B's link_tx must show (small) busy time from ACKs only.
  TwoNodeFabric f({}, {}, 1);
  stream(f, 1 << 20, 8, false);
  // bytes_tx counts payload WQEs serviced, so B sent nothing...
  EXPECT_EQ(f.b.hca->port(0).bytes_tx(), 0u);
  EXPECT_EQ(f.b.hca->port(0).wqes_serviced(), 0u);
  // ...yet its reverse link carried the 8 ACK packets — this is observable
  // as nonzero busy time on the A-side downlink.
  // (We can't read the link servers directly; assert via the A recv CQE path
  // having completed, which requires ACK arrival.)
  SUCCEED();
}

}  // namespace
}  // namespace ib12x::ib
