// Doorbell batching at the verbs layer: deferred WQEs stay invisible to the
// hardware scheduler until ring_doorbell(), one batch costs one doorbell no
// matter how many WQEs it publishes, and plain post_send keeps its one
// doorbell per WQE.
#include <gtest/gtest.h>

#include <cstring>

#include "ib/verbs.hpp"
#include "ib_test_util.hpp"

namespace ib12x::ib {
namespace {

using testutil::TwoNodeFabric;
using testutil::pattern_buffer;

TEST(Doorbell, BatchOfThreeWritesRingsOnce) {
  TwoNodeFabric f;
  auto src = pattern_buffer(3 * 4096);
  std::vector<std::byte> dst(3 * 4096);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());

  for (std::uint64_t i = 0; i < 3; ++i) {
    f.a.qps[0]->post_send_deferred({.wr_id = i, .opcode = Opcode::RdmaWrite,
                                    .src = src.data() + i * 4096, .length = 4096,
                                    .lkey = src_mr.lkey, .remote_addr = dst_mr.addr + i * 4096,
                                    .rkey = dst_mr.rkey});
  }
  // Nothing published yet: the scheduler must not have started.
  EXPECT_EQ(f.a.qps[0]->doorbells(), 0u);
  EXPECT_EQ(f.a.qps[0]->send_queue_depth(), 0u);

  f.a.qps[0]->ring_doorbell();
  EXPECT_EQ(f.a.qps[0]->doorbells(), 1u);

  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 3u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  // One doorbell published all three WQEs.
  EXPECT_EQ(f.a.hca->total_doorbells(), 1u);
  EXPECT_EQ(f.a.hca->total_wqes_serviced(), 3u);
}

TEST(Doorbell, RingOnEmptyIsNoOp) {
  TwoNodeFabric f;
  f.a.qps[0]->ring_doorbell();
  f.a.qps[0]->ring_doorbell();
  EXPECT_EQ(f.a.qps[0]->doorbells(), 0u);
}

TEST(Doorbell, PlainPostSendCountsOneDoorbellPerWqe) {
  TwoNodeFabric f;
  auto src = pattern_buffer(2 * 1024);
  std::vector<std::byte> dst(2 * 1024);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  for (std::uint64_t i = 0; i < 2; ++i) {
    f.a.qps[0]->post_send({.wr_id = i, .opcode = Opcode::RdmaWrite, .src = src.data() + i * 1024,
                           .length = 1024, .lkey = src_mr.lkey,
                           .remote_addr = dst_mr.addr + i * 1024, .rkey = dst_mr.rkey});
  }
  f.sim.run();
  EXPECT_EQ(f.a.qps[0]->doorbells(), 2u);
}

TEST(Doorbell, DeferredWqesDrainAfterRingEvenWhenQpAlreadyActive) {
  // Ring while the scheduler is mid-service of an earlier WQE: the deferred
  // batch must append without a duplicate ready-queue entry or a lost WQE.
  TwoNodeFabric f;
  auto src = pattern_buffer(2 * 8192);
  std::vector<std::byte> dst(2 * 8192);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());

  f.a.qps[0]->post_send({.wr_id = 0, .opcode = Opcode::RdmaWrite, .src = src.data(),
                         .length = 8192, .lkey = src_mr.lkey, .remote_addr = dst_mr.addr,
                         .rkey = dst_mr.rkey});
  f.a.qps[0]->post_send_deferred({.wr_id = 1, .opcode = Opcode::RdmaWrite, .src = src.data() + 8192,
                                  .length = 8192, .lkey = src_mr.lkey,
                                  .remote_addr = dst_mr.addr + 8192, .rkey = dst_mr.rkey});
  f.a.qps[0]->ring_doorbell();

  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 2u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  EXPECT_EQ(f.a.qps[0]->doorbells(), 2u);  // one per post_send, one per batch
}

}  // namespace
}  // namespace ib12x::ib
