// Negative-path tests for the fault-injection layer: error-state QP
// semantics (new posts flush, queued WQEs drain in order), per-message
// fault injection (drop vs. lost ACK), link events, and CQ ordering of
// error completions relative to successes.
#include "ib/fault.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "ib/verbs.hpp"
#include "ib_test_util.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {
namespace {

using testutil::TwoNodeFabric;
using testutil::pattern_buffer;

TEST(Fault, ErrorQpCompletesNewPostsWithFlush) {
  TwoNodeFabric f;
  auto src = pattern_buffer(512);
  std::vector<std::byte> dst(512);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.a.hca->mem().register_memory(dst.data(), dst.size());

  f.a.qps[0]->transition_to_error();
  ASSERT_EQ(f.a.qps[0]->state(), QpState::Error);

  // Real RC semantics: posting to an error-state QP is legal, but the WQE
  // completes immediately with a flush error and never reaches the wire.
  f.a.qps[0]->post_send({.wr_id = 7, .opcode = Opcode::Send, .src = src.data(),
                         .length = 512, .lkey = src_mr.lkey});
  Wc wc;
  ASSERT_TRUE(f.a.scq.poll(wc));
  EXPECT_EQ(wc.wr_id, 7u);
  EXPECT_EQ(wc.status, WcStatus::WrFlushErr);
  EXPECT_EQ(wc.opcode, WcOpcode::SendComplete);
  EXPECT_EQ(wc.byte_len, 512u);
  EXPECT_EQ(wc.qp_num, f.a.qps[0]->num());

  // Deferred posting flushes too — a doorbell batch must not smuggle WQEs
  // past the error state.
  f.a.qps[0]->post_send_deferred({.wr_id = 8, .opcode = Opcode::RdmaWrite, .src = src.data(),
                                  .length = 512, .lkey = src_mr.lkey});
  ASSERT_TRUE(f.a.scq.poll(wc));
  EXPECT_EQ(wc.wr_id, 8u);
  EXPECT_EQ(wc.status, WcStatus::WrFlushErr);
  EXPECT_EQ(wc.opcode, WcOpcode::RdmaWriteComplete);

  f.a.qps[0]->post_recv({.wr_id = 9, .dst = dst.data(), .length = 512, .lkey = dst_mr.lkey});
  ASSERT_TRUE(f.a.rcq.poll(wc));
  EXPECT_EQ(wc.wr_id, 9u);
  EXPECT_EQ(wc.status, WcStatus::WrFlushErr);
  EXPECT_EQ(wc.byte_len, 0u);

  // Nothing reached the fabric: the run produces no further completions.
  EXPECT_TRUE(f.drain(f.a.scq).empty());
  EXPECT_TRUE(f.drain(f.b.rcq).empty());
}

TEST(Fault, TransitionFlushesQueuedWqesInPostOrder) {
  // Build queued work without letting the simulator run: three published
  // sends (the first is handed straight to the hardware scheduler and is no
  // longer flushable — real HCAs behave the same way once a WQE is in
  // flight), a deferred (un-doorbelled) send, and receive WQEs.  The
  // transition drains the send queue first — published then deferred, in
  // post order — then the receive queue, all with WrFlushErr and the
  // original wr_id.
  TwoNodeFabric f;
  auto src = pattern_buffer(256);
  std::vector<std::byte> dst(256);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.a.hca->mem().register_memory(dst.data(), dst.size());

  for (std::uint64_t id = 1; id <= 3; ++id) {
    f.a.qps[0]->post_send({.wr_id = id, .opcode = Opcode::Send, .src = src.data(),
                           .length = 256, .lkey = src_mr.lkey});
  }
  f.a.qps[0]->post_send_deferred({.wr_id = 4, .opcode = Opcode::Send, .src = src.data(),
                                  .length = 256, .lkey = src_mr.lkey});
  for (std::uint64_t id = 5; id <= 6; ++id) {
    f.a.qps[0]->post_recv({.wr_id = id, .dst = dst.data(), .length = 256, .lkey = dst_mr.lkey});
  }

  f.a.qps[0]->transition_to_error();

  // wr 1 is in the scheduler's hands; wr 2..3 (published, queued) flush
  // first, then wr 4 (deferred), in post order.
  Wc wc;
  for (std::uint64_t id = 2; id <= 4; ++id) {
    ASSERT_TRUE(f.a.scq.poll(wc)) << "send wr " << id;
    EXPECT_EQ(wc.wr_id, id);
    EXPECT_EQ(wc.status, WcStatus::WrFlushErr);
    EXPECT_EQ(wc.qp_num, f.a.qps[0]->num());
  }
  EXPECT_FALSE(f.a.scq.poll(wc));
  for (std::uint64_t id = 5; id <= 6; ++id) {
    ASSERT_TRUE(f.a.rcq.poll(wc)) << "recv wr " << id;
    EXPECT_EQ(wc.wr_id, id);
    EXPECT_EQ(wc.status, WcStatus::WrFlushErr);
  }
  EXPECT_FALSE(f.a.rcq.poll(wc));

  // A second transition is a no-op: the queues are already empty.
  f.a.qps[0]->transition_to_error();
  EXPECT_FALSE(f.a.scq.poll(wc));
}

TEST(Fault, ResetReturnsQpToService) {
  TwoNodeFabric f;
  auto src = pattern_buffer(1024);
  std::vector<std::byte> dst(1024);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());

  f.a.qps[0]->transition_to_error();
  f.a.qps[0]->reset();
  ASSERT_EQ(f.a.qps[0]->state(), QpState::Ready);

  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 1024, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(),
                         .length = 1024, .lkey = src_mr.lkey});
  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::Success);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 1024), 0);
}

TEST(Fault, MsgDropErrsWithoutDelivering) {
  // msg_error_rate = 1 with ack_drop_fraction = 0: every serviced WQE
  // exhausts its transport retries — error CQE, no data, recv WQE unconsumed.
  TwoNodeFabric f;
  FaultPlan::Params p;
  p.msg_error_rate = 1.0;
  p.ack_drop_fraction = 0.0;
  f.fabric.attach_fault(std::make_unique<FaultPlan>(p));

  auto src = pattern_buffer(2048);
  std::vector<std::byte> dst(2048, std::byte{0});
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 2048, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(),
                         .length = 2048, .lkey = src_mr.lkey});

  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 2u);
  EXPECT_EQ(wcs[0].status, WcStatus::RetryExcErr);
  Wc rwc;
  EXPECT_FALSE(f.b.rcq.poll(rwc));
  for (std::byte b : dst) ASSERT_EQ(b, std::byte{0});
  EXPECT_EQ(f.fabric.fault_plan()->injected_errors(), 1u);
}

TEST(Fault, AckDropDeliversDataButErrsRequester) {
  // ack_drop_fraction = 1: the data lands and the responder completes
  // normally, but the lost ACK still errs the requester's CQE — the
  // failover layer must tolerate "failed" sends that actually arrived.
  TwoNodeFabric f;
  FaultPlan::Params p;
  p.msg_error_rate = 1.0;
  p.ack_drop_fraction = 1.0;
  f.fabric.attach_fault(std::make_unique<FaultPlan>(p));

  auto src = pattern_buffer(2048);
  std::vector<std::byte> dst(2048);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 2048, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(),
                         .length = 2048, .lkey = src_mr.lkey});

  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::RetryExcErr);
  Wc rwc;
  ASSERT_TRUE(f.b.rcq.poll(rwc));
  EXPECT_EQ(rwc.status, WcStatus::Success);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 2048), 0);
}

TEST(Fault, LinkDownErrsBothSidesAndRecoversOnUp) {
  TwoNodeFabric f;
  FaultPlan::Params p;
  auto plan = std::make_unique<FaultPlan>(p);
  plan->add_link_event(sim::microseconds(10), f.a.hca, 0, /*up=*/false);
  plan->add_link_event(sim::microseconds(30), f.a.hca, 0, /*up=*/true);
  plan->arm(f.sim);
  FaultPlan* raw = plan.get();
  f.fabric.attach_fault(std::move(plan));

  f.sim.run_until(sim::microseconds(20));
  EXPECT_TRUE(raw->port_down(f.a.hca, 0));
  // Both endpoints of every QP behind the port enter the error state.
  EXPECT_EQ(f.a.qps[0]->state(), QpState::Error);
  EXPECT_EQ(f.b.qps[0]->state(), QpState::Error);

  f.sim.run();
  EXPECT_FALSE(raw->port_down(f.a.hca, 0));
  EXPECT_EQ(f.a.qps[0]->state(), QpState::Ready);
  EXPECT_EQ(f.b.qps[0]->state(), QpState::Ready);
  EXPECT_EQ(raw->link_transitions(), 2u);

  // The recovered pair carries traffic again.
  auto src = pattern_buffer(256);
  std::vector<std::byte> dst(256);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 256, .lkey = dst_mr.lkey});
  f.a.qps[0]->post_send({.wr_id = 2, .opcode = Opcode::Send, .src = src.data(),
                         .length = 256, .lkey = src_mr.lkey});
  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::Success);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 256), 0);
}

TEST(Fault, ErrorCompletionsKeepCqOrderAfterSuccesses) {
  // A link-down mid-train: WQEs serviced before the event complete with
  // Success, the rest flush — and the CQ presents them strictly in that
  // order, successes first, flushed WQEs in post order.
  TwoNodeFabric f;
  FaultPlan::Params p;
  auto plan = std::make_unique<FaultPlan>(p);
  // 8 × 64 KiB back-to-back sends complete ~40 µs apart starting near 50 µs
  // on one default-rate link; a drop at 140 µs lands after the first
  // transfers but well before the train ends.
  plan->add_link_event(sim::microseconds(140), f.a.hca, 0, /*up=*/false);
  plan->arm(f.sim);
  f.fabric.attach_fault(std::move(plan));

  constexpr int kSends = 8;
  constexpr std::size_t kBytes = 64 * 1024;
  auto src = pattern_buffer(kBytes);
  std::vector<std::byte> dst(kBytes);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  for (int i = 0; i < kSends; ++i) {
    f.b.qps[0]->post_recv({.wr_id = 100u + static_cast<std::uint64_t>(i), .dst = dst.data(),
                           .length = kBytes, .lkey = dst_mr.lkey});
    f.a.qps[0]->post_send({.wr_id = static_cast<std::uint64_t>(i + 1), .opcode = Opcode::Send,
                           .src = src.data(), .length = kBytes, .lkey = src_mr.lkey});
  }

  auto wcs = f.drain(f.a.scq);
  ASSERT_EQ(wcs.size(), static_cast<std::size_t>(kSends));  // every WQE completes exactly once
  std::vector<bool> seen(kSends, false);
  for (const Wc& wc : wcs) {
    ASSERT_GE(wc.wr_id, 1u);
    ASSERT_LE(wc.wr_id, static_cast<std::uint64_t>(kSends));
    EXPECT_FALSE(seen[wc.wr_id - 1]) << "wr " << wc.wr_id << " completed twice";
    seen[wc.wr_id - 1] = true;
  }

  // Successes form a strict prefix of the CQ: once the first error
  // completion is polled, no later completion may claim success.
  std::size_t first_err = wcs.size();
  for (std::size_t i = 0; i < wcs.size(); ++i) {
    if (wcs[i].status != WcStatus::Success) {
      first_err = i;
      break;
    }
  }
  ASSERT_GT(first_err, 0u) << "link dropped before any transfer completed";
  ASSERT_LT(first_err, wcs.size()) << "link dropped after the whole train completed";
  for (std::size_t i = first_err; i < wcs.size(); ++i) {
    EXPECT_NE(wcs[i].status, WcStatus::Success) << "success after error completion";
  }
  // CQ timestamps never run backwards, and the flushed WQEs (the queued
  // remainder; the in-flight one errs with RetryExcErr on its own clock)
  // complete in post order.
  std::uint64_t last_flushed = 0;
  for (std::size_t i = 1; i < wcs.size(); ++i) {
    EXPECT_LE(wcs[i - 1].timestamp, wcs[i].timestamp);
  }
  for (const Wc& wc : wcs) {
    if (wc.status != WcStatus::WrFlushErr) continue;
    EXPECT_GT(wc.wr_id, last_flushed) << "flushed WQEs out of post order";
    last_flushed = wc.wr_id;
  }
}

}  // namespace
}  // namespace ib12x::ib
