// Switched-fabric topology layer: shape derivation, routing-table coverage
// (every (src, dst) pair reaches its destination on all three shapes),
// deadlock freedom, the crossbar's bit-exact equivalence with the legacy
// closed-form wire path, and the contention model's counters.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ib/topology.hpp"
#include "ib/verbs.hpp"
#include "ib_test_util.hpp"
#include "sim/time.hpp"

namespace ib12x::ib {
namespace {

using testutil::TwoNodeFabric;
using testutil::pattern_buffer;

TopologySpec fattree_spec(int k) {
  TopologySpec s;
  s.shape = TopoShape::FatTree;
  s.fattree_k = k;
  return s;
}

TopologySpec dragonfly_spec(RoutePolicy routing = RoutePolicy::Minimal) {
  TopologySpec s;
  s.shape = TopoShape::Dragonfly;
  s.df_global_per_router = 2;  // balanced: a = 4, p = 2, g = 9, 72 hosts
  s.routing = routing;
  return s;
}

/// Structural route check: hop 0 sits on src's edge switch, consecutive hops
/// are wired to each other, and the final hop's output is dst's host port.
void expect_route_reaches(const Topology& topo, Lid src, Lid dst) {
  const Route r = topo.resolve(src, dst);
  ASSERT_GE(r.count, 1) << src << "->" << dst;
  EXPECT_EQ(r.hop[0].sw, topo.edge_switch_of(src)) << src << "->" << dst;
  for (int i = 0; i < r.count; ++i) {
    const Switch& sw = topo.switch_at(r.hop[i].sw);
    const Switch::Link& l = sw.link(r.hop[i].out_port);
    if (i + 1 < r.count) {
      ASSERT_EQ(l.peer_sw, r.hop[i + 1].sw) << src << "->" << dst << " hop " << i;
    } else {
      ASSERT_EQ(l.peer_sw, -1) << src << "->" << dst << " final hop not a host port";
      EXPECT_EQ(l.host, dst) << src << "->" << dst;
    }
  }
}

// ---- shape derivation -----------------------------------------------------

TEST(TopologySpecNormalize, DerivesSmallestFatTreeArity) {
  TopologySpec s;
  s.shape = TopoShape::FatTree;
  s.min_hosts = 16;
  EXPECT_EQ(Topology::normalize(s).fattree_k, 4);  // 4^3/4 = 16
  s.min_hosts = 64;
  EXPECT_EQ(Topology::normalize(s).fattree_k, 8);  // 6^3/4 = 54 < 64 <= 128
  EXPECT_EQ(Topology::capacity_of(Topology::normalize(s)), 128);
}

TEST(TopologySpecNormalize, DerivesBalancedDragonfly) {
  TopologySpec s;
  s.shape = TopoShape::Dragonfly;
  s.min_hosts = 64;
  const TopologySpec n = Topology::normalize(s);
  // Smallest balanced (p=h, a=2h, g=ah+1) covering 64 hosts: h = 2.
  EXPECT_EQ(n.df_global_per_router, 2);
  EXPECT_EQ(n.df_routers_per_group, 4);
  EXPECT_EQ(n.df_hosts_per_router, 2);
  EXPECT_EQ(n.df_groups, 9);
  EXPECT_EQ(Topology::capacity_of(n), 72);
}

TEST(TopologySpecNormalize, RejectsOddFatTreeArity) {
  TopologySpec s;
  s.shape = TopoShape::FatTree;
  s.fattree_k = 5;
  EXPECT_THROW(Topology::normalize(s), std::invalid_argument);
}

TEST(Topology, AttachBeyondCapacityThrows) {
  Topology topo(fattree_spec(2), FabricParams{});  // 2^3/4 = 2 host ports
  (void)topo.attach_host();
  (void)topo.attach_host();
  EXPECT_THROW(topo.attach_host(), std::invalid_argument);
}

// ---- routing-table coverage ----------------------------------------------

TEST(Topology, CrossbarRouteIsLegacyClosedForm) {
  const FabricParams fp;
  Topology topo(TopologySpec{}, fp);
  for (int i = 0; i < 8; ++i) (void)topo.attach_host();
  for (Lid s = 0; s < 8; ++s) {
    for (Lid d = 0; d < 8; ++d) {
      if (s == d) continue;
      const Route r = topo.resolve(s, d);
      EXPECT_EQ(r.count, 1);
      EXPECT_EQ(r.fwd_latency, fp.wire_latency + fp.switch_latency);
      EXPECT_EQ(topo.fwd_latency(s, d), r.fwd_latency);
      expect_route_reaches(topo, s, d);
    }
  }
}

TEST(Topology, FatTreeAllPairsReachWithUpDownHopCounts) {
  const FabricParams fp;
  Topology topo(fattree_spec(4), fp);  // 16 hosts, 4 per pod, 2 per edge
  for (int i = 0; i < 16; ++i) (void)topo.attach_host();
  for (Lid s = 0; s < 16; ++s) {
    for (Lid d = 0; d < 16; ++d) {
      if (s == d) continue;
      expect_route_reaches(topo, s, d);
      const Route r = topo.resolve(s, d);
      // Up/down routing: 1 switch under one edge, 3 within a pod, 5 across.
      const int want = topo.edge_switch_of(s) == topo.edge_switch_of(d) ? 1
                       : (s / 4 == d / 4)                               ? 3
                                                                        : 5;
      EXPECT_EQ(r.count, want) << s << "->" << d;
      // No global cables in a fat-tree: latency is hops * (wire + switch).
      EXPECT_EQ(r.fwd_latency, want * (fp.wire_latency + fp.switch_latency));
    }
  }
}

TEST(Topology, FatTreeSpreadsUpRoutesOverCores) {
  Topology topo(fattree_spec(4), FabricParams{});
  for (int i = 0; i < 16; ++i) (void)topo.attach_host();
  // D-mod-k: routes from one source to the other pods must not all share a
  // single core switch.
  std::set<int> cores;
  for (Lid d = 4; d < 16; ++d) {
    const Route r = topo.resolve(0, d);
    for (int i = 0; i < r.count; ++i) {
      if (topo.switch_at(r.hop[i].sw).level() == 2) cores.insert(r.hop[i].sw);
    }
  }
  EXPECT_GT(cores.size(), 1u);
}

TEST(Topology, DragonflyMinimalAllPairsReach) {
  Topology topo(Topology::normalize(dragonfly_spec()), FabricParams{});
  const int hosts = static_cast<int>(topo.host_capacity());
  for (int i = 0; i < hosts; ++i) (void)topo.attach_host();
  for (Lid s = 0; s < hosts; ++s) {
    for (Lid d = 0; d < hosts; ++d) {
      if (s == d) continue;
      expect_route_reaches(topo, s, d);
      const Route r = topo.resolve(s, d);
      int globals = 0;
      for (int i = 0; i < r.count; ++i) globals += r.hop[i].global ? 1 : 0;
      EXPECT_LE(globals, 1) << "minimal routing crossed two global cables";
      EXPECT_LE(r.count, 4) << s << "->" << d;  // l-g-l: at most 4 routers
    }
  }
}

TEST(Topology, DragonflyValiantAllPairsReachDeterministically) {
  Topology topo(Topology::normalize(dragonfly_spec(RoutePolicy::Valiant)), FabricParams{});
  const int hosts = static_cast<int>(topo.host_capacity());
  for (int i = 0; i < hosts; ++i) (void)topo.attach_host();
  bool bounced = false;
  for (Lid s = 0; s < hosts; ++s) {
    for (Lid d = 0; d < hosts; ++d) {
      if (s == d) continue;
      expect_route_reaches(topo, s, d);
      const Route a = topo.resolve(s, d);
      const Route b = topo.resolve(s, d);  // stateless hash: bit-identical
      ASSERT_EQ(a.count, b.count);
      for (int i = 0; i < a.count; ++i) {
        EXPECT_EQ(a.hop[i].sw, b.hop[i].sw);
        EXPECT_EQ(a.hop[i].out_port, b.hop[i].out_port);
        EXPECT_EQ(a.hop[i].vl, b.hop[i].vl);
      }
      int globals = 0;
      for (int i = 0; i < a.count; ++i) {
        globals += a.hop[i].global ? 1 : 0;
        // The dragonfly discipline: VL equals global cables already crossed.
        EXPECT_LE(a.hop[i].vl, 2);
      }
      bounced = bounced || globals == 2;
    }
  }
  EXPECT_TRUE(bounced) << "Valiant never took an indirect route";
}

TEST(Topology, DeadlockFreeOnAllShapes) {
  {
    Topology topo(TopologySpec{}, FabricParams{});
    for (int i = 0; i < 8; ++i) (void)topo.attach_host();
    EXPECT_TRUE(topo.deadlock_free());
  }
  {
    Topology topo(fattree_spec(4), FabricParams{});
    for (int i = 0; i < 16; ++i) (void)topo.attach_host();
    EXPECT_TRUE(topo.deadlock_free());
  }
  for (RoutePolicy rp : {RoutePolicy::Minimal, RoutePolicy::Valiant}) {
    Topology topo(Topology::normalize(dragonfly_spec(rp)), FabricParams{});
    for (int i = 0; i < topo.host_capacity(); ++i) (void)topo.attach_host();
    EXPECT_TRUE(topo.deadlock_free()) << "routing policy " << static_cast<int>(rp);
  }
}

// ---- the safety rail: crossbar + contention off == legacy closed form ----

TEST(Topology, CrossbarContentionOffMatchesLegacyClosedForm) {
  // One 8-byte send through the default fabric must land exactly on the
  // closed-form latency sum the pre-topology code computed: this test *is*
  // that formula, kept alive as the refactor's oracle.
  TwoNodeFabric f;
  const HcaParams& P = f.fabric.hca_params();
  const FabricParams& F = f.fabric.fabric_params();
  auto src = pattern_buffer(8);
  std::vector<std::byte> dst(8);
  auto src_mr = f.a.hca->mem().register_memory(src.data(), src.size());
  auto dst_mr = f.b.hca->mem().register_memory(dst.data(), dst.size());
  f.b.qps[0]->post_recv({.wr_id = 1, .dst = dst.data(), .length = 8, .lkey = dst_mr.lkey});
  SendWr wr{};
  wr.wr_id = 2;
  wr.src = src.data();
  wr.length = 8;
  wr.lkey = src_mr.lkey;
  f.a.qps[0]->post_send(wr);
  f.sim.run();

  const std::int64_t seg = 8;
  const std::int64_t seg_wire = seg + P.pkt_header_bytes;  // one packet
  const sim::Time eng_done =
      P.wqe_fetch + sim::transfer_time(seg, P.engine_rate_gbps);  // posted at t=0, engine idle
  const sim::Time delivered =
      eng_done + sim::transfer_time(seg, P.bus_dir_rate_gbps) +
      sim::transfer_time(seg_wire, P.link_rate_gbps) + (F.wire_latency + F.switch_latency) +
      sim::transfer_time(seg_wire, F.downlink_rate_gbps) + F.wire_latency +
      sim::transfer_time(seg, P.engine_rate_gbps) + sim::transfer_time(seg, P.bus_dir_rate_gbps);
  const sim::Time recv_cqe =
      delivered + P.cqe_delay + sim::transfer_time(P.cqe_bus_bytes, P.bus_dir_rate_gbps);
  // No ack-wire serialization on the small path: the ACK rides the
  // packet-granular fast path, latency-only (matches the legacy code).
  const sim::Time send_cqe = delivered + P.ack_gen + (F.wire_latency + F.switch_latency) +
                             F.wire_latency + P.cqe_delay +
                             sim::transfer_time(P.cqe_bus_bytes, P.bus_dir_rate_gbps);

  Wc rwc, swc;
  ASSERT_TRUE(f.b.rcq.poll(rwc));
  ASSERT_TRUE(f.a.scq.poll(swc));
  EXPECT_EQ(rwc.timestamp, recv_cqe);
  EXPECT_EQ(swc.timestamp, send_cqe);
}

// ---- contention model -----------------------------------------------------

/// A star fabric for hot-spot traffic: `senders` single-port HCAs all sending
/// `bytes` to one victim HCA through the given topology.
struct Hotspot {
  explicit Hotspot(TopologySpec spec, int senders, std::int64_t bytes) {
    HcaParams hp;
    hp.ports = 1;
    fabric = std::make_unique<Fabric>(sim, hp, FabricParams{}, spec);
    victim = &fabric->add_hca(0);
    QueuePair* vq = nullptr;
    for (int i = 0; i < senders; ++i) {
      Hca& hca = fabric->add_hca(1 + i);
      QueuePair& sq = hca.create_qp(0, scq, rcq);
      vq = &victim->create_qp(0, vscq, vrcq);
      Fabric::connect(sq, *vq);
      auto buf = pattern_buffer(static_cast<std::size_t>(bytes), static_cast<unsigned>(i));
      bufs.push_back(std::move(buf));
      auto mr = hca.mem().register_memory(bufs.back().data(), bufs.back().size());
      auto& dst = sinks.emplace_back(static_cast<std::size_t>(bytes));
      auto dmr = victim->mem().register_memory(dst.data(), dst.size());
      vq->post_recv({.wr_id = static_cast<std::uint64_t>(i), .dst = dst.data(),
                     .length = static_cast<std::uint32_t>(bytes), .lkey = dmr.lkey});
      sends.push_back({&sq, mr.lkey});
    }
  }

  void run() {
    for (std::size_t i = 0; i < sends.size(); ++i) {
      SendWr wr{};
      wr.wr_id = 100 + i;
      wr.src = bufs[i].data();
      wr.length = static_cast<std::uint32_t>(bufs[i].size());
      wr.lkey = sends[i].second;
      sends[i].first->post_send(wr);
    }
    sim.run();
  }

  sim::Simulator sim;
  std::unique_ptr<Fabric> fabric;
  Hca* victim = nullptr;
  CompletionQueue scq, rcq, vscq, vrcq;
  std::vector<std::vector<std::byte>> bufs;
  std::vector<std::vector<std::byte>> sinks;
  std::vector<std::pair<QueuePair*, std::uint32_t>> sends;
};

TEST(TopologyContention, HotspotCountsRoutedPktsAndQueueDepth) {
  TopologySpec spec;
  spec.contention = true;
  Hotspot h(spec, /*senders=*/6, /*bytes=*/256 * 1024);
  h.run();
  const Topology& topo = h.fabric->topology();
  EXPECT_GT(topo.total_routed_pkts(), 0u);
  EXPECT_GT(topo.max_queue_hwm_bytes(), 0);
  EXPECT_EQ(topo.total_drops(), 0u) << "the fabric is lossless";
  for (std::size_t i = 0; i < h.sinks.size(); ++i) {
    EXPECT_EQ(h.sinks[i], h.bufs[i]) << "payload " << i << " corrupted under contention";
  }
}

TEST(TopologyContention, TinyOutputBuffersCountStallsNeverDrops) {
  TopologySpec spec;
  spec.shape = TopoShape::FatTree;
  spec.fattree_k = 4;
  spec.contention = true;
  spec.out_buf_bytes = 4 * 1024;  // shallow queues: hot-spot backlog must stall
  Hotspot h(spec, /*senders=*/6, /*bytes=*/256 * 1024);
  h.run();
  const Topology& topo = h.fabric->topology();
  EXPECT_GT(topo.total_stalls(), 0u);
  EXPECT_EQ(topo.total_drops(), 0u);
  for (std::size_t i = 0; i < h.sinks.size(); ++i) {
    EXPECT_EQ(h.sinks[i], h.bufs[i]) << "payload " << i;
  }
}

TEST(TopologyContention, ContentionOffCarriesNoSwitchCounters) {
  // The non-contended path must never touch switch queue state (that is what
  // keeps it bit-identical to the legacy formula and shard-safe without
  // switch placement).
  Hotspot h(TopologySpec{}, /*senders=*/4, /*bytes=*/64 * 1024);
  h.run();
  const Topology& topo = h.fabric->topology();
  EXPECT_EQ(topo.total_routed_pkts(), 0u);
  EXPECT_EQ(topo.total_stalls(), 0u);
  EXPECT_EQ(topo.max_queue_hwm_bytes(), 0);
}

TEST(TopologyContention, FatTreeDelaysBulkByExtraHopsWhenUncontended) {
  // A single uncontended transfer pays exactly (hops - 1) extra
  // (wire + switch) on a fat-tree versus the crossbar — same servers, same
  // cut-through model, only the route length differs.
  auto one_transfer_cqe = [](TopologySpec spec) {
    Hotspot h(std::move(spec), /*senders=*/1, /*bytes=*/64 * 1024);
    h.run();
    Wc wc;
    while (h.vrcq.poll(wc)) {
    }
    return wc.timestamp;
  };
  const sim::Time xbar = one_transfer_cqe(TopologySpec{});
  TopologySpec ft;
  ft.shape = TopoShape::FatTree;
  ft.fattree_k = 4;
  const sim::Time tree = one_transfer_cqe(ft);
  // lids 0 (victim) and 1 (sender) share an edge switch in a k=4 tree: same
  // 1-switch route, so data latency matches the crossbar bit for bit.
  EXPECT_EQ(tree, xbar);
  TopologySpec ft_far = ft;
  ft_far.contention = true;  // route still uncontended with one sender
  const sim::Time far = one_transfer_cqe(ft_far);
  EXPECT_GT(far, xbar);  // per-hop events serialize at the switch
}

}  // namespace
}  // namespace ib12x::ib
