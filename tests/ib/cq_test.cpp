#include "ib/cq.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ib12x::ib {
namespace {

Wc make_wc(std::uint64_t id) {
  Wc wc;
  wc.wr_id = id;
  return wc;
}

TEST(CompletionQueue, PollEmptyReturnsFalse) {
  CompletionQueue cq;
  Wc wc;
  EXPECT_FALSE(cq.poll(wc));
}

TEST(CompletionQueue, FifoOrder) {
  CompletionQueue cq;
  cq.push(make_wc(1));
  cq.push(make_wc(2));
  cq.push(make_wc(3));
  Wc wc;
  ASSERT_TRUE(cq.poll(wc));
  EXPECT_EQ(wc.wr_id, 1u);
  ASSERT_TRUE(cq.poll(wc));
  EXPECT_EQ(wc.wr_id, 2u);
  ASSERT_TRUE(cq.poll(wc));
  EXPECT_EQ(wc.wr_id, 3u);
  EXPECT_FALSE(cq.poll(wc));
}

TEST(CompletionQueue, CallbackBypassesQueue) {
  CompletionQueue cq;
  std::vector<std::uint64_t> seen;
  cq.set_callback([&](const Wc& wc) { seen.push_back(wc.wr_id); });
  cq.push(make_wc(7));
  cq.push(make_wc(8));
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(cq.pending(), 0u);
}

TEST(CompletionQueue, OverflowThrows) {
  CompletionQueue cq(2);
  cq.push(make_wc(1));
  cq.push(make_wc(2));
  EXPECT_THROW(cq.push(make_wc(3)), std::runtime_error);
}

}  // namespace
}  // namespace ib12x::ib
