// Collective correctness across rank counts, sizes and datatypes.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <tuple>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

/// (nodes, procs/node) sweep including the paper's 2x1 / 2x2 / 2x4 layouts
/// and a non-power-of-two count.
const ClusterSpec kLayouts[] = {{2, 1}, {2, 2}, {2, 4}, {3, 1}, {2, 3}};

class CollLayout : public ::testing::TestWithParam<int> {
 protected:
  ClusterSpec spec() const { return kLayouts[static_cast<std::size_t>(GetParam())]; }
};

TEST_P(CollLayout, BarrierSynchronizes) {
  World w(spec(), Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    // Stagger arrival; after the barrier everyone's clock must be >= the
    // latest arrival.
    c.compute(sim::microseconds(10.0 * c.rank()));
    const sim::Time before = c.now();
    c.barrier();
    EXPECT_GE(c.now(), sim::microseconds(10.0 * (c.size() - 1)));
    EXPECT_GE(c.now(), before);
  });
}

TEST_P(CollLayout, BcastFromEveryRoot) {
  World w(spec(), Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::vector<std::int32_t> buf(1000);
      if (c.rank() == root) {
        std::iota(buf.begin(), buf.end(), root * 1000);
      }
      c.bcast(buf.data(), buf.size(), INT32, root);
      std::vector<std::int32_t> want(1000);
      std::iota(want.begin(), want.end(), root * 1000);
      EXPECT_EQ(buf, want) << "root " << root;
    }
  });
}

TEST_P(CollLayout, ReduceSumToEveryRoot) {
  World w(spec(), Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> mine(64), out(64, -1);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = c.rank() + static_cast<std::int64_t>(i);
      }
      c.reduce(mine.data(), out.data(), mine.size(), INT64, Op::Sum, root);
      if (c.rank() == root) {
        for (std::size_t i = 0; i < out.size(); ++i) {
          const std::int64_t want = static_cast<std::int64_t>(p) * (p - 1) / 2 +
                                    static_cast<std::int64_t>(p) * static_cast<std::int64_t>(i);
          EXPECT_EQ(out[i], want);
        }
      }
    }
  });
}

TEST_P(CollLayout, AllreduceOps) {
  World w(spec(), Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    double mine = 1.5 + c.rank();
    double sum = 0;
    c.allreduce(&mine, &sum, 1, DOUBLE, Op::Sum);
    EXPECT_DOUBLE_EQ(sum, 1.5 * p + p * (p - 1) / 2.0);

    std::int32_t v = 100 - c.rank();
    std::int32_t mn = 0, mx = 0;
    c.allreduce(&v, &mn, 1, INT32, Op::Min);
    c.allreduce(&v, &mx, 1, INT32, Op::Max);
    EXPECT_EQ(mn, 100 - (p - 1));
    EXPECT_EQ(mx, 100);
  });
}

TEST_P(CollLayout, AllreduceLargeVector) {
  World w(spec(), Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const std::size_t n = 50000;  // 400 KB of doubles → rendezvous path
    std::vector<double> mine(n), out(n);
    for (std::size_t i = 0; i < n; ++i) mine[i] = c.rank() + 0.25 * static_cast<double>(i % 7);
    c.allreduce(mine.data(), out.data(), n, DOUBLE, Op::Sum);
    const int p = c.size();
    for (std::size_t i = 0; i < n; i += 997) {
      const double want = p * (p - 1) / 2.0 + p * 0.25 * static_cast<double>(i % 7);
      EXPECT_DOUBLE_EQ(out[i], want) << i;
    }
  });
}

TEST_P(CollLayout, GatherScatterRoundTrip) {
  World w(spec(), Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    const std::size_t per = 128;
    std::vector<std::int32_t> mine(per, c.rank());
    std::vector<std::int32_t> all(per * static_cast<std::size_t>(p), -1);
    c.gather(mine.data(), all.data(), per, INT32, 0);
    if (c.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < per; ++i) {
          EXPECT_EQ(all[static_cast<std::size_t>(r) * per + i], r);
        }
      }
      // Scatter back r+1000 to each rank.
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < per; ++i) {
          all[static_cast<std::size_t>(r) * per + i] = r + 1000;
        }
      }
    }
    std::vector<std::int32_t> back(per, -1);
    c.scatter(all.data(), back.data(), per, INT32, 0);
    for (std::size_t i = 0; i < per; ++i) EXPECT_EQ(back[i], c.rank() + 1000);
  });
}

TEST_P(CollLayout, AllgatherAssemblesAllBlocks) {
  World w(spec(), Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    const std::size_t per = 256;
    auto mine = testutil::payload(per, c.rank());
    std::vector<std::byte> all(per * static_cast<std::size_t>(p));
    c.allgather(mine.data(), all.data(), per, BYTE);
    for (int r = 0; r < p; ++r) {
      std::vector<std::byte> block(all.begin() + static_cast<std::ptrdiff_t>(r * per),
                                   all.begin() + static_cast<std::ptrdiff_t>((r + 1) * per));
      EXPECT_EQ(block, testutil::payload(per, r)) << "block " << r;
    }
  });
}

TEST_P(CollLayout, AlltoallPermutesBlocks) {
  World w(spec(), Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    const std::size_t per = 512;
    // Block for destination d carries pattern (src=rank, tag=d).
    std::vector<std::byte> sendbuf(per * static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      auto block = testutil::payload(per, c.rank(), d);
      std::copy(block.begin(), block.end(),
                sendbuf.begin() + static_cast<std::ptrdiff_t>(d * per));
    }
    std::vector<std::byte> recvbuf(per * static_cast<std::size_t>(p));
    c.alltoall(sendbuf.data(), recvbuf.data(), per, BYTE);
    for (int s = 0; s < p; ++s) {
      std::vector<std::byte> block(recvbuf.begin() + static_cast<std::ptrdiff_t>(s * per),
                                   recvbuf.begin() + static_cast<std::ptrdiff_t>((s + 1) * per));
      EXPECT_EQ(block, testutil::payload(per, s, c.rank())) << "from " << s;
    }
  });
}

TEST_P(CollLayout, AlltoallvRaggedCounts) {
  World w(spec(), Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    // Rank r sends (r + d + 1) * 100 int32s to destination d.
    std::vector<std::int64_t> scounts(static_cast<std::size_t>(p)), sdispls(static_cast<std::size_t>(p));
    std::vector<std::int64_t> rcounts(static_cast<std::size_t>(p)), rdispls(static_cast<std::size_t>(p));
    std::int64_t soff = 0, roff = 0;
    for (int d = 0; d < p; ++d) {
      scounts[static_cast<std::size_t>(d)] = (c.rank() + d + 1) * 100;
      sdispls[static_cast<std::size_t>(d)] = soff;
      soff += scounts[static_cast<std::size_t>(d)];
      rcounts[static_cast<std::size_t>(d)] = (d + c.rank() + 1) * 100;
      rdispls[static_cast<std::size_t>(d)] = roff;
      roff += rcounts[static_cast<std::size_t>(d)];
    }
    std::vector<std::int32_t> sendbuf(static_cast<std::size_t>(soff));
    for (int d = 0; d < p; ++d) {
      for (std::int64_t i = 0; i < scounts[static_cast<std::size_t>(d)]; ++i) {
        sendbuf[static_cast<std::size_t>(sdispls[static_cast<std::size_t>(d)] + i)] =
            c.rank() * 1000 + d;
      }
    }
    std::vector<std::int32_t> recvbuf(static_cast<std::size_t>(roff), -1);
    c.alltoallv(sendbuf.data(), scounts, sdispls, recvbuf.data(), rcounts, rdispls, INT32);
    for (int s = 0; s < p; ++s) {
      for (std::int64_t i = 0; i < rcounts[static_cast<std::size_t>(s)]; ++i) {
        EXPECT_EQ(recvbuf[static_cast<std::size_t>(rdispls[static_cast<std::size_t>(s)] + i)],
                  s * 1000 + c.rank())
            << "from " << s;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Layouts, CollLayout, ::testing::Range(0, 5));

TEST(Coll, CollectivesMarkTrafficCollective) {
  // EPC stripes collective traffic >= 16 KiB even though the calls inside
  // the algorithm are non-blocking: observable as stripes_posted > messages.
  Config cfg = Config::enhanced(4, Policy::EPC);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    std::vector<std::byte> buf(2u << 20);
    c.bcast(buf.data(), buf.size(), BYTE, 0);
  });
  EXPECT_GT(w.telemetry().counter_value("rndv.stripes_posted"),
            w.telemetry().counter_value("rndv.rts_sent"));
}

TEST(Coll, ReduceNonCommutativeSafety) {
  // Prod over doubles: result must be identical on every layout (the
  // binomial order is fixed), and match the serial product.
  World w(ClusterSpec{2, 2}, Config{});
  w.run([](Communicator& c) {
    double mine = 1.0 + 0.5 * c.rank();
    double out = 0;
    c.allreduce(&mine, &out, 1, DOUBLE, Op::Prod);
    double want = 1.0;
    for (int r = 0; r < c.size(); ++r) want *= 1.0 + 0.5 * r;
    EXPECT_DOUBLE_EQ(out, want);
  });
}

}  // namespace
}  // namespace ib12x::mvx
