// Multi-rail layouts beyond one port: multiple ports per HCA and multiple
// HCAs per node (the OSU multi-rail design this paper extends).  The key
// physical expectation: extra ports on the SAME GX+ bus cannot beat the bus,
// while a second HCA (its own bus) nearly doubles uni-directional bandwidth.
#include <gtest/gtest.h>

#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

double uni_bw(Config cfg, std::size_t bytes = 1 << 20, int count = 24) {
  World w(ClusterSpec{2, 1}, cfg);
  sim::Time end = 0;
  w.run([&](Communicator& c) {
    std::vector<std::byte> buf(bytes);
    if (c.rank() == 0) {
      std::vector<Request> reqs;
      for (int i = 0; i < count; ++i) reqs.push_back(c.isend(buf.data(), bytes, BYTE, 1, 0));
      c.waitall(reqs);
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < count; ++i) reqs.push_back(c.irecv(buf.data(), bytes, BYTE, 0, 0));
      c.waitall(reqs);
    }
    end = c.now();
  });
  return static_cast<double>(bytes) * count / static_cast<double>(end) * 1000.0;  // GB/s
}

TEST(MultiRail, TwoPortsCorrectness) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.ports_per_hca = 2;  // 2 ports x 2 QPs = 4 rails
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    for (std::size_t n : {100ul, 65536ul, 1048576ul}) {
      if (c.rank() == 0) {
        auto data = payload(n, 0);
        c.send(data.data(), n, BYTE, 1, 0);
      } else {
        std::vector<std::byte> got(n);
        c.recv(got.data(), n, BYTE, 0, 0);
        EXPECT_EQ(got, payload(n, 0));
      }
    }
  });
}

TEST(MultiRail, TwoHcasCorrectness) {
  Config cfg = Config::enhanced(1, Policy::EPC);
  cfg.hcas_per_node = 2;
  cfg.ports_per_hca = 2;  // 2 HCAs x 2 ports x 1 QP = 4 rails
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    for (std::size_t n : {100ul, 1048576ul}) {
      if (c.rank() == 0) {
        auto data = payload(n, 0);
        c.send(data.data(), n, BYTE, 1, 0);
        std::vector<std::byte> back(n);
        c.recv(back.data(), n, BYTE, 1, 0);
        EXPECT_EQ(back, payload(n, 1));
      } else {
        std::vector<std::byte> got(n);
        c.recv(got.data(), n, BYTE, 0, 0);
        EXPECT_EQ(got, payload(n, 0));
        auto data = payload(n, 1);
        c.send(data.data(), n, BYTE, 0, 0);
      }
    }
  });
}

TEST(MultiRail, SecondPortIsBusLimited) {
  // 2 ports x 4 QPs on one HCA: the two 12x links (6 GB/s) share one GX+
  // bus, so uni-BW stays pinned near the bus direction rate.
  Config one_port = Config::enhanced(4, Policy::EPC);
  Config two_ports = Config::enhanced(4, Policy::EPC);
  two_ports.ports_per_hca = 2;
  const double bw1 = uni_bw(one_port);
  const double bw2 = uni_bw(two_ports);
  EXPECT_LT(bw2, 2.96);             // cannot beat the GX+ direction rate
  EXPECT_GT(bw2, bw1 * 0.98);       // and must not regress
}

TEST(MultiRail, SecondHcaNearlyDoublesBandwidth) {
  Config one = Config::enhanced(4, Policy::EPC);
  Config two = Config::enhanced(4, Policy::EPC);
  two.hcas_per_node = 2;
  const double bw1 = uni_bw(one);
  const double bw2 = uni_bw(two, 1 << 20, 32);
  EXPECT_GT(bw2, bw1 * 1.6);  // two GX+ buses, two links
  EXPECT_LT(bw2, bw1 * 2.1);
}

TEST(MultiRail, CollectivesAcrossPortsAndHcas) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.hcas_per_node = 2;
  cfg.ports_per_hca = 2;  // 8 rails
  World w(ClusterSpec{2, 2}, cfg);
  w.run([](Communicator& c) {
    std::vector<std::int64_t> mine(1000, c.rank()), out(1000);
    c.allreduce(mine.data(), out.data(), 1000, INT64, Op::Sum);
    const int p = c.size();
    for (std::int64_t v : out) EXPECT_EQ(v, p * (p - 1) / 2);

    const std::size_t per = 64 * 1024;
    std::vector<std::byte> sb(per * static_cast<std::size_t>(p)), rb(per * static_cast<std::size_t>(p));
    c.alltoall(sb.data(), rb.data(), per, BYTE);
  });
}

TEST(MultiRail, StripingSpansAllRails) {
  Config cfg = Config::enhanced(2, Policy::EvenStriping);
  cfg.ports_per_hca = 2;  // 4 rails over 2 ports
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    std::vector<std::byte> buf(1 << 20);
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), BYTE, 1, 0);
    } else {
      c.recv(buf.data(), buf.size(), BYTE, 0, 0);
    }
  });
  // Both ports of rank 0's HCA carried payload.
  auto& hca = w.fabric().hca(0);
  EXPECT_GT(hca.port(0).bytes_tx(), 100u * 1024);
  EXPECT_GT(hca.port(1).bytes_tx(), 100u * 1024);
}

}  // namespace
}  // namespace ib12x::mvx
