// Bit-reproducibility of the simulation: two identical runs in the same
// process must agree on every observable — event count, final virtual time,
// and the full telemetry snapshot (excluding the "sim.wall." gauges, which
// measure host speed, not the model).  This is the regression net under the
// event kernel: any nondeterminism in queue ordering, fiber scheduling, or
// channel state would show up here as a diff.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "mvx/mpi.hpp"

namespace ib12x::mvx {
namespace {

struct RunDigest {
  std::uint64_t events = 0;
  std::uint64_t scheduled = 0;
  sim::Time end_time = 0;
  std::map<std::string, double> telemetry;
};

/// A fig06_bw_uni_large-sized workload: windowed unidirectional bandwidth
/// with large (rendezvous-path) messages plus a small-message ack, run over
/// both the network and shared-memory channels.
RunDigest run_workload() {
  World w(ClusterSpec{/*nodes=*/2, /*procs_per_node=*/2},
          Config::enhanced(4, Policy::EPC));
  constexpr std::size_t kBytes = 1 << 20;
  constexpr int kWindow = 4;
  constexpr int kIters = 3;
  w.run([](Communicator& c) {
    std::vector<std::byte> buf(kBytes, std::byte{0x5a});
    const int peer = c.rank() ^ 2;  // cross-node pairs: (0,2) (1,3)
    const int neighbor = c.rank() ^ 1;  // same-node pairs: (0,1) (2,3)
    for (int it = 0; it < kIters; ++it) {
      if (c.rank() < 2) {
        std::vector<Request> reqs;
        for (int i = 0; i < kWindow; ++i) {
          reqs.push_back(c.isend(buf.data(), buf.size(), BYTE, peer, it));
        }
        c.waitall(reqs);
        std::byte ack{};
        c.recv(&ack, 1, BYTE, peer, 100 + it);
      } else {
        std::vector<Request> reqs;
        for (int i = 0; i < kWindow; ++i) {
          reqs.push_back(c.irecv(buf.data(), buf.size(), BYTE, peer, it));
        }
        c.waitall(reqs);
        std::byte ack{};
        c.send(&ack, 1, BYTE, peer, 100 + it);
      }
      // Same-node shm traffic in the same virtual timeframe.
      std::byte tok{};
      if (c.rank() % 2 == 0) {
        c.send(&tok, 1, BYTE, neighbor, 200 + it);
        c.recv(&tok, 1, BYTE, neighbor, 200 + it);
      } else {
        c.recv(&tok, 1, BYTE, neighbor, 200 + it);
        c.send(&tok, 1, BYTE, neighbor, 200 + it);
      }
    }
    c.barrier();
  });

  RunDigest d;
  d.events = w.simulator().events_processed();
  d.scheduled = w.simulator().events_scheduled();
  d.end_time = w.end_time();
  for (const auto& s : w.telemetry().snapshot()) {
    if (s.name.rfind("sim.wall.", 0) == 0) continue;  // host-speed gauges
    d.telemetry[s.name] = s.value;
  }
  return d;
}

/// A collective-heavy workload for the schedule engine: blocking collectives,
/// overlapped non-blocking collectives (engine + progress fibers), a dup'd
/// communicator, and the multi-lane bcast path.
RunDigest run_coll_workload() {
  Config cfg = Config::enhanced(4, Policy::EPC);
  cfg.coll.lanes = 0;  // exercise the multi-lane builders too
  World w(ClusterSpec{/*nodes=*/2, /*procs_per_node=*/2}, cfg);
  w.run([](Communicator& c) {
    const std::size_t n = 1 << 16;
    std::vector<double> in(n, 1.0 + c.rank()), out(n);
    std::vector<std::byte> big(1 << 20, std::byte{0x3c});
    Communicator d = c.dup();
    for (int it = 0; it < 2; ++it) {
      Request ra = c.iallreduce(in.data(), out.data(), n, DOUBLE, Op::Sum);
      Request rb = d.ibcast(big.data(), big.size(), BYTE, it % c.size());
      c.compute(sim::microseconds(50));
      c.wait(ra);
      c.wait(rb);
      c.alltoall(in.data(), out.data(), 64, DOUBLE);
      c.barrier();
    }
  });

  RunDigest d;
  d.events = w.simulator().events_processed();
  d.scheduled = w.simulator().events_scheduled();
  d.end_time = w.end_time();
  for (const auto& s : w.telemetry().snapshot()) {
    if (s.name.rfind("sim.wall.", 0) == 0) continue;  // host-speed gauges
    d.telemetry[s.name] = s.value;
  }
  return d;
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const RunDigest a = run_workload();
  const RunDigest b = run_workload();

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.scheduled, b.scheduled);
  EXPECT_EQ(a.end_time, b.end_time);

  ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
  for (const auto& [name, value] : a.telemetry) {
    auto it = b.telemetry.find(name);
    ASSERT_NE(it, b.telemetry.end()) << "metric missing in second run: " << name;
    EXPECT_EQ(value, it->second) << "metric diverged: " << name;
  }
  // Sanity: the workload actually exercised the kernel's fast paths.
  EXPECT_GT(a.telemetry.at("sim.events"), 1000.0);
  EXPECT_GT(a.telemetry.at("sim.lane_events"), 0.0);
  EXPECT_GT(a.telemetry.at("sim.fiber_switches"), 0.0);
}

TEST(Determinism, CollectiveWorkloadIsBitIdentical) {
  const RunDigest a = run_coll_workload();
  const RunDigest b = run_coll_workload();

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.scheduled, b.scheduled);
  EXPECT_EQ(a.end_time, b.end_time);

  ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
  for (const auto& [name, value] : a.telemetry) {
    auto it = b.telemetry.find(name);
    ASSERT_NE(it, b.telemetry.end()) << "metric missing in second run: " << name;
    EXPECT_EQ(value, it->second) << "metric diverged: " << name;
  }
  // Sanity: the schedule engine actually ran.
  EXPECT_GT(a.telemetry.at("coll.schedules"), 0.0);
  EXPECT_GT(a.telemetry.at("coll.rounds"), 0.0);
  EXPECT_GT(a.telemetry.at("coll.ops"), 0.0);
}

}  // namespace
}  // namespace ib12x::mvx
