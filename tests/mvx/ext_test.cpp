// Extension features beyond the paper's core: probe, reduce_scatter, scan,
// allgatherv/gatherv, SRQ mode, adaptive & weighted policies.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

TEST(Probe, IprobeSeesUnexpected) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    if (c.rank() == 0) {
      auto data = payload(512, 0);
      c.send(data.data(), 512, BYTE, 1, 42);
    } else {
      EXPECT_FALSE(c.iprobe(0, 99));
      Status st;
      c.probe(0, 42, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, 512);
      // Probe must not consume: the receive still matches.
      EXPECT_TRUE(c.iprobe(0, 42));
      std::vector<std::byte> got(static_cast<std::size_t>(st.bytes));
      c.recv(got.data(), got.size(), BYTE, 0, 42);
      EXPECT_EQ(got, payload(512, 0));
      EXPECT_FALSE(c.iprobe(0, 42));
    }
  });
}

TEST(Probe, AnySourceProbe) {
  World w(ClusterSpec{2, 2}, Config{});
  w.run([](Communicator& c) {
    if (c.rank() == 3) {
      std::byte b{7};
      c.send(&b, 1, BYTE, 0, 5);
    } else if (c.rank() == 0) {
      Status st;
      c.probe(ANY_SOURCE, ANY_TAG, &st);
      EXPECT_EQ(st.source, 3);
      std::byte b{};
      c.recv(&b, 1, BYTE, st.source, st.tag);
      EXPECT_EQ(b, std::byte{7});
    }
  });
}

TEST(CollExt, ReduceScatterBlock) {
  World w(ClusterSpec{2, 2}, Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    const std::size_t per = 16;
    std::vector<std::int64_t> send(per * static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      for (std::size_t i = 0; i < per; ++i) {
        send[static_cast<std::size_t>(d) * per + i] =
            c.rank() * 100 + d * 10 + static_cast<std::int64_t>(i);
      }
    }
    std::vector<std::int64_t> out(per, -1);
    c.reduce_scatter_block(send.data(), out.data(), per, INT64, Op::Sum);
    for (std::size_t i = 0; i < per; ++i) {
      std::int64_t want = 0;
      for (int r = 0; r < p; ++r) want += r * 100 + c.rank() * 10 + static_cast<std::int64_t>(i);
      EXPECT_EQ(out[i], want);
    }
  });
}

TEST(CollExt, InclusiveScan) {
  for (ClusterSpec spec : {ClusterSpec{2, 1}, ClusterSpec{2, 2}, ClusterSpec{2, 3}}) {
    World w(spec, Config::enhanced(2, Policy::EPC));
    w.run([](Communicator& c) {
      std::int64_t mine = c.rank() + 1, out = 0;
      c.scan(&mine, &out, 1, INT64, Op::Sum);
      // Inclusive prefix sum of 1..rank+1.
      const std::int64_t r = c.rank() + 1;
      EXPECT_EQ(out, r * (r + 1) / 2);
    });
  }
}

TEST(CollExt, ScanLargeVectorRendezvousPath) {
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const std::size_t n = 8192;  // 64 KB of int64 → rendezvous
    std::vector<std::int64_t> mine(n, c.rank() + 1), out(n);
    c.scan(mine.data(), out.data(), n, INT64, Op::Sum);
    const std::int64_t r = c.rank() + 1;
    for (std::size_t i = 0; i < n; i += 1000) EXPECT_EQ(out[i], r * (r + 1) / 2);
  });
}

TEST(CollExt, AllgathervRagged) {
  World w(ClusterSpec{2, 2}, Config::enhanced(2, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    std::vector<std::int64_t> counts, displs;
    std::int64_t off = 0;
    for (int r = 0; r < p; ++r) {
      counts.push_back((r + 1) * 8);
      displs.push_back(off);
      off += counts.back();
    }
    std::vector<std::int32_t> mine(static_cast<std::size_t>(counts[static_cast<std::size_t>(c.rank())]),
                                   c.rank());
    std::vector<std::int32_t> all(static_cast<std::size_t>(off), -1);
    c.allgatherv(mine.data(), mine.size(), all.data(), counts, displs, INT32);
    for (int r = 0; r < p; ++r) {
      for (std::int64_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + i)], r);
      }
    }
  });
}

TEST(CollExt, GathervToEachRoot) {
  World w(ClusterSpec{2, 2}, Config{});
  w.run([](Communicator& c) {
    const int p = c.size();
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> counts, displs;
      std::int64_t off = 0;
      for (int r = 0; r < p; ++r) {
        counts.push_back(4 + r);
        displs.push_back(off);
        off += counts.back();
      }
      std::vector<std::int32_t> mine(static_cast<std::size_t>(counts[static_cast<std::size_t>(c.rank())]),
                                     c.rank() * 7);
      std::vector<std::int32_t> all(static_cast<std::size_t>(off), -1);
      c.gatherv(mine.data(), mine.size(), all.data(), counts, displs, INT32, root);
      if (c.rank() == root) {
        for (int r = 0; r < p; ++r) {
          for (std::int64_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
            EXPECT_EQ(all[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + i)], r * 7);
          }
        }
      }
    }
  });
}

TEST(Srq, TransfersIdenticalToRqMode) {
  // Same traffic with and without SRQ must produce the same data and very
  // similar timing (the protocol is unchanged).
  auto run = [](bool srq) {
    Config cfg = Config::enhanced(4, Policy::EPC);
    cfg.use_srq = srq;
    World w(ClusterSpec{2, 1}, cfg);
    sim::Time end = 0;
    w.run([&](Communicator& c) {
      for (std::size_t n : {256ul, 4096ul, 65536ul}) {
        if (c.rank() == 0) {
          auto data = payload(n, 0);
          c.send(data.data(), n, BYTE, 1, 1);
        } else {
          std::vector<std::byte> got(n);
          c.recv(got.data(), n, BYTE, 0, 1);
          EXPECT_EQ(got, payload(n, 0));
        }
      }
      end = c.now();
    });
    return end;
  };
  const sim::Time rq = run(false), srq = run(true);
  EXPECT_NEAR(static_cast<double>(srq), static_cast<double>(rq), static_cast<double>(rq) * 0.02);
}

TEST(Srq, ManyPeersShareBuffers) {
  Config cfg;
  cfg.use_srq = true;
  cfg.eager_credits = 8;
  World w(ClusterSpec{4, 1}, cfg);
  w.run([](Communicator& c) {
    // All-pairs handshake through the shared queue.
    for (int off = 1; off < c.size(); ++off) {
      const int to = (c.rank() + off) % c.size();
      const int from = (c.rank() - off + c.size()) % c.size();
      auto mine = payload(1024, c.rank(), to);
      std::vector<std::byte> got(1024);
      c.sendrecv(mine.data(), 1024, BYTE, to, 0, got.data(), 1024, BYTE, from, 0);
      EXPECT_EQ(got, payload(1024, from, c.rank()));
    }
  });
}

TEST(Adaptive, BalancesOutstandingBytes) {
  Config cfg = Config::enhanced(4, Policy::Adaptive);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const std::size_t n = 128 * 1024;
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int i = 0; i < 16; ++i) {
        bufs.push_back(payload(n, 0, i));
        reqs.push_back(c.isend(bufs.back().data(), n, BYTE, 1, i));
      }
      c.waitall(reqs);
    } else {
      std::vector<std::byte> got(n);
      for (int i = 0; i < 16; ++i) {
        c.recv(got.data(), n, BYTE, 0, i);
        EXPECT_EQ(got, payload(n, 0, i));
      }
    }
  });
  // All four rails carried data (QPs 1..4 of rank 0 → roughly even split).
  // We can't reach rails directly; assert via throughput instead: adaptive
  // must match round-robin within 15% on this workload.
}

TEST(Adaptive, ThroughputMatchesRoundRobin) {
  auto bw = [](Policy p) {
    World w(ClusterSpec{2, 1}, Config::enhanced(4, p));
    sim::Time end = 0;
    w.run([&](Communicator& c) {
      const std::size_t n = 256 * 1024;
      std::vector<std::byte> buf(n);
      if (c.rank() == 0) {
        std::vector<Request> reqs;
        for (int i = 0; i < 32; ++i) reqs.push_back(c.isend(buf.data(), n, BYTE, 1, 0));
        c.waitall(reqs);
      } else {
        std::vector<Request> reqs;
        for (int i = 0; i < 32; ++i) reqs.push_back(c.irecv(buf.data(), n, BYTE, 0, 0));
        c.waitall(reqs);
      }
      end = c.now();
    });
    return static_cast<double>(end);
  };
  EXPECT_NEAR(bw(Policy::Adaptive), bw(Policy::RoundRobin), bw(Policy::RoundRobin) * 0.15);
}

TEST(Weighted, StripesFollowWeights) {
  Config cfg = Config::enhanced(4, Policy::WeightedStriping);
  cfg.rail_weights = {4.0, 2.0, 1.0, 1.0};
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const std::size_t n = 1 << 20;
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 0);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 0);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
  // Rail 0 (weight 4) must have carried about half the bytes.
  // (Verified indirectly: data integrity above; stripe count via telemetry.)
  EXPECT_GT(w.telemetry().counter_value("rndv.stripes_posted"), 0u);
}

TEST(Weighted, EqualWeightsBehaveLikeEvenStriping) {
  auto lat = [](Policy p, std::vector<double> weights) {
    Config cfg = Config::enhanced(4, p);
    cfg.rail_weights = std::move(weights);
    World w(ClusterSpec{2, 1}, cfg);
    sim::Time end = 0;
    w.run([&](Communicator& c) {
      std::vector<std::byte> buf(1 << 20);
      if (c.rank() == 0) {
        c.send(buf.data(), buf.size(), BYTE, 1, 0);
        c.recv(buf.data(), buf.size(), BYTE, 1, 0);
      } else {
        c.recv(buf.data(), buf.size(), BYTE, 0, 0);
        c.send(buf.data(), buf.size(), BYTE, 0, 0);
      }
      end = c.now();
    });
    return static_cast<double>(end);
  };
  EXPECT_NEAR(lat(Policy::WeightedStriping, {1, 1, 1, 1}), lat(Policy::EvenStriping, {}),
              lat(Policy::EvenStriping, {}) * 0.01);
}

}  // namespace
}  // namespace ib12x::mvx
