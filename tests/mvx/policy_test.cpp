#include "mvx/policy.hpp"

#include <gtest/gtest.h>

namespace ib12x::mvx {
namespace {

constexpr std::int64_t kThresh = 16 * 1024;

TEST(Policy, BindingAlwaysRailZero) {
  RailCursor cur;
  for (std::int64_t size : {0L, 100L, 1L << 20}) {
    for (auto kind : {CommKind::Blocking, CommKind::Nonblocking, CommKind::Collective}) {
      Schedule s = choose_schedule(Policy::Binding, kind, size, 4, kThresh, cur);
      EXPECT_FALSE(s.stripe);
      EXPECT_EQ(s.rail, 0);
    }
  }
}

TEST(Policy, RoundRobinCycles) {
  RailCursor cur;
  for (int i = 0; i < 12; ++i) {
    Schedule s = choose_schedule(Policy::RoundRobin, CommKind::Blocking, 1024, 4, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, i % 4);
  }
}

TEST(Policy, StripingRespectsThreshold) {
  RailCursor cur;
  EXPECT_FALSE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, kThresh - 1, 4, kThresh, cur).stripe);
  EXPECT_TRUE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, kThresh, 4, kThresh, cur).stripe);
  EXPECT_TRUE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, 1 << 20, 4, kThresh, cur).stripe);
}

TEST(Policy, StripingSmallUsesSingleQp) {
  // Paper fig. 3: below the threshold only one QP carries the message.
  RailCursor cur;
  for (int i = 0; i < 5; ++i) {
    Schedule s = choose_schedule(Policy::EvenStriping, CommKind::Blocking, 8, 4, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, 0);
  }
}

TEST(Policy, EpcMatchesMarker) {
  RailCursor cur;
  // Blocking large → stripe.
  EXPECT_TRUE(choose_schedule(Policy::EPC, CommKind::Blocking, 1 << 20, 4, kThresh, cur).stripe);
  // Blocking small → single rail 0 (original-like).
  Schedule s = choose_schedule(Policy::EPC, CommKind::Blocking, 64, 4, kThresh, cur);
  EXPECT_FALSE(s.stripe);
  EXPECT_EQ(s.rail, 0);
  // Non-blocking large → round robin, never stripes.
  RailCursor cur2;
  for (int i = 0; i < 8; ++i) {
    Schedule nb = choose_schedule(Policy::EPC, CommKind::Nonblocking, 1 << 20, 4, kThresh, cur2);
    EXPECT_FALSE(nb.stripe);
    EXPECT_EQ(nb.rail, i % 4);
  }
  // Collective large → stripe (even though collectives issue non-blocking calls).
  EXPECT_TRUE(choose_schedule(Policy::EPC, CommKind::Collective, 1 << 20, 4, kThresh, cur).stripe);
  // Collective small → round robin.
  EXPECT_FALSE(choose_schedule(Policy::EPC, CommKind::Collective, 1024, 4, kThresh, cur).stripe);
}

TEST(Policy, SingleRailShortCircuits) {
  RailCursor cur;
  for (auto p : {Policy::Binding, Policy::RoundRobin, Policy::EvenStriping, Policy::EPC,
                 Policy::WeightedStriping, Policy::Adaptive}) {
    Schedule s = choose_schedule(p, CommKind::Blocking, 1 << 20, 1, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, 0);
  }
}

TEST(Policy, Names) {
  EXPECT_STREQ(to_string(Policy::EPC), "EPC");
  EXPECT_STREQ(to_string(Policy::EvenStriping), "even-striping");
  EXPECT_STREQ(to_string(CommKind::Collective), "collective");
}

}  // namespace
}  // namespace ib12x::mvx
