#include "mvx/policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace ib12x::mvx {
namespace {

constexpr std::int64_t kThresh = 16 * 1024;

TEST(Policy, BindingAlwaysRailZero) {
  RailCursor cur;
  for (std::int64_t size : {0L, 100L, 1L << 20}) {
    for (auto kind : {CommKind::Blocking, CommKind::Nonblocking, CommKind::Collective}) {
      Schedule s = choose_schedule(Policy::Binding, kind, size, 4, kThresh, cur);
      EXPECT_FALSE(s.stripe);
      EXPECT_EQ(s.rail, 0);
    }
  }
}

TEST(Policy, RoundRobinCycles) {
  RailCursor cur;
  for (int i = 0; i < 12; ++i) {
    Schedule s = choose_schedule(Policy::RoundRobin, CommKind::Blocking, 1024, 4, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, i % 4);
  }
}

TEST(Policy, StripingRespectsThreshold) {
  RailCursor cur;
  EXPECT_FALSE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, kThresh - 1, 4, kThresh, cur).stripe);
  EXPECT_TRUE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, kThresh, 4, kThresh, cur).stripe);
  EXPECT_TRUE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, 1 << 20, 4, kThresh, cur).stripe);
}

TEST(Policy, StripingSmallUsesSingleQp) {
  // Paper fig. 3: below the threshold only one QP carries the message.
  RailCursor cur;
  for (int i = 0; i < 5; ++i) {
    Schedule s = choose_schedule(Policy::EvenStriping, CommKind::Blocking, 8, 4, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, 0);
  }
}

TEST(Policy, EpcMatchesMarker) {
  RailCursor cur;
  // Blocking large → stripe.
  EXPECT_TRUE(choose_schedule(Policy::EPC, CommKind::Blocking, 1 << 20, 4, kThresh, cur).stripe);
  // Blocking small → single rail 0 (original-like).
  Schedule s = choose_schedule(Policy::EPC, CommKind::Blocking, 64, 4, kThresh, cur);
  EXPECT_FALSE(s.stripe);
  EXPECT_EQ(s.rail, 0);
  // Non-blocking large → round robin, never stripes.
  RailCursor cur2;
  for (int i = 0; i < 8; ++i) {
    Schedule nb = choose_schedule(Policy::EPC, CommKind::Nonblocking, 1 << 20, 4, kThresh, cur2);
    EXPECT_FALSE(nb.stripe);
    EXPECT_EQ(nb.rail, i % 4);
  }
  // Collective large → stripe (even though collectives issue non-blocking calls).
  EXPECT_TRUE(choose_schedule(Policy::EPC, CommKind::Collective, 1 << 20, 4, kThresh, cur).stripe);
  // Collective small → round robin.
  EXPECT_FALSE(choose_schedule(Policy::EPC, CommKind::Collective, 1024, 4, kThresh, cur).stripe);
}

TEST(Policy, SingleRailShortCircuits) {
  RailCursor cur;
  for (auto p : {Policy::Binding, Policy::RoundRobin, Policy::EvenStriping, Policy::EPC,
                 Policy::WeightedStriping, Policy::Adaptive}) {
    Schedule s = choose_schedule(p, CommKind::Blocking, 1 << 20, 1, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, 0);
  }
}

// Every {policy × kind × size} cell of the schedule table in one place:
// sub-threshold, exactly-at-threshold, and large.  `RR` also asserts that
// the shared per-peer cursor advances (and that Rail0/Stripe leave it
// alone — striping must never consume a round-robin slot).
enum class Want : std::uint8_t { Rail0, RR, Stripe };

TEST(Policy, FullScheduleTable) {
  constexpr auto B = CommKind::Blocking;
  constexpr auto N = CommKind::Nonblocking;
  constexpr auto C = CommKind::Collective;
  struct Row {
    Policy p;
    CommKind k;
    Want small, at_thresh, large;  // 1 KiB, 16 KiB, 1 MiB
  };
  constexpr Row kTable[] = {
      {Policy::Binding, B, Want::Rail0, Want::Rail0, Want::Rail0},
      {Policy::Binding, N, Want::Rail0, Want::Rail0, Want::Rail0},
      {Policy::Binding, C, Want::Rail0, Want::Rail0, Want::Rail0},
      {Policy::RoundRobin, B, Want::RR, Want::RR, Want::RR},
      {Policy::RoundRobin, N, Want::RR, Want::RR, Want::RR},
      {Policy::RoundRobin, C, Want::RR, Want::RR, Want::RR},
      {Policy::EvenStriping, B, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::EvenStriping, N, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::EvenStriping, C, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::WeightedStriping, B, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::WeightedStriping, N, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::WeightedStriping, C, Want::Rail0, Want::Stripe, Want::Stripe},
      // Adaptive resolves its real rail in the channel; bare calls are RR.
      {Policy::Adaptive, B, Want::RR, Want::RR, Want::RR},
      {Policy::Adaptive, N, Want::RR, Want::RR, Want::RR},
      {Policy::Adaptive, C, Want::RR, Want::RR, Want::RR},
      // The paper's marker table (§3.2–3.3), including the sub-threshold
      // collective → RR cell.
      {Policy::EPC, B, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::EPC, N, Want::RR, Want::RR, Want::RR},
      {Policy::EPC, C, Want::RR, Want::Stripe, Want::Stripe},
  };
  constexpr int kRails = 4;
  for (const Row& row : kTable) {
    RailCursor cur;
    int expect_next = 0;
    const std::int64_t sizes[] = {1024, kThresh, 1 << 20};
    const Want wants[] = {row.small, row.at_thresh, row.large};
    for (int i = 0; i < 3; ++i) {
      const Schedule s = choose_schedule(row.p, row.k, sizes[i], kRails, kThresh, cur);
      const auto label = [&] {
        return std::string(to_string(row.p)) + "/" + to_string(row.k) + "/" +
               std::to_string(sizes[i]);
      };
      switch (wants[i]) {
        case Want::Rail0:
          EXPECT_FALSE(s.stripe) << label();
          EXPECT_EQ(s.rail, 0) << label();
          break;
        case Want::RR:
          EXPECT_FALSE(s.stripe) << label();
          EXPECT_EQ(s.rail, expect_next) << label();
          expect_next = (expect_next + 1) % kRails;
          break;
        case Want::Stripe:
          EXPECT_TRUE(s.stripe) << label();
          break;
      }
      EXPECT_EQ(cur.next, expect_next) << label() << " cursor";
    }
  }
  // nrails <= 1 short-circuits every cell to a whole message on rail 0.
  for (const Row& row : kTable) {
    RailCursor cur;
    for (std::int64_t bytes : {1024L, static_cast<std::int64_t>(kThresh), 1L << 20}) {
      const Schedule s = choose_schedule(row.p, row.k, bytes, 1, kThresh, cur);
      EXPECT_FALSE(s.stripe);
      EXPECT_EQ(s.rail, 0);
      EXPECT_EQ(cur.next, 0);
    }
  }
}

// Property-style invariant sweep over the stripe planner: a seeded generator
// draws (rail count × live-rail mask × size × floor × weights × base offset)
// and every plan must (a) cover the message exactly — contiguous offsets,
// lengths summing to the byte count, (b) never cut a stripe below the floor,
// (c) place stripes only on live rails, at most once per rail, and (d) agree
// with the identity-rail overload modulo the live-list remap.
TEST(Policy, StripePlanInvariantsHoldForAllLiveMasks) {
  sim::Rng rng(0x57121fe5);
  for (int iter = 0; iter < 2000; ++iter) {
    const int nrails = 1 + static_cast<int>(rng.next_below(6));
    // Non-empty subset of [0, nrails) — the surviving rails under failover.
    std::vector<int> live;
    for (int r = 0; r < nrails; ++r) {
      if (rng.next_below(2) == 0) live.push_back(r);
    }
    if (live.empty()) live.push_back(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nrails))));

    const std::int64_t min_stripe = 512LL << rng.next_below(4);  // 512..4096
    std::int64_t bytes = 0;
    switch (rng.next_below(4)) {
      case 0: bytes = 1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(min_stripe))); break;
      case 1: bytes = min_stripe * static_cast<std::int64_t>(live.size()); break;  // exact fit
      case 2: bytes = 1 + static_cast<std::int64_t>(rng.next_below(256 * 1024)); break;
      default: bytes = 1 + static_cast<std::int64_t>(rng.next_below(4 << 20)); break;
    }
    std::vector<double> weights;
    if (rng.next_below(3) == 0) {
      weights.resize(1 + rng.next_below(4));
      for (double& w : weights) w = 0.25 * static_cast<double>(1 + rng.next_below(16));
    }
    const std::int64_t base_off = static_cast<std::int64_t>(rng.next_below(1 << 20));
    RailCursor cursor{static_cast<int>(rng.next_below(static_cast<std::uint64_t>(live.size())))};
    RailCursor id_cursor = cursor;

    const std::vector<Stripe> plan =
        plan_stripes(bytes, base_off, live, min_stripe, weights, cursor);
    const auto label = [&] {
      return "iter " + std::to_string(iter) + " bytes=" + std::to_string(bytes) +
             " live=" + std::to_string(live.size()) + "/" + std::to_string(nrails) +
             " floor=" + std::to_string(min_stripe);
    };

    ASSERT_FALSE(plan.empty()) << label();
    ASSERT_LE(plan.size(), live.size()) << label();
    // (a) exact contiguous coverage from base_off.
    std::int64_t off = base_off, total = 0;
    for (const Stripe& s : plan) {
      EXPECT_EQ(s.offset, off) << label();
      EXPECT_GT(s.len, 0) << label();
      off += s.len;
      total += s.len;
    }
    EXPECT_EQ(total, bytes) << label();
    // (b) the floor binds whenever the message is big enough to honour it.
    if (plan.size() > 1 || bytes >= min_stripe) {
      for (const Stripe& s : plan) EXPECT_GE(s.len, min_stripe) << label();
    }
    // (c) live rails only, no rail twice.
    std::vector<int> used;
    for (const Stripe& s : plan) {
      EXPECT_NE(std::find(live.begin(), live.end(), s.rail), live.end())
          << label() << " dead rail " << s.rail;
      EXPECT_EQ(std::find(used.begin(), used.end(), s.rail), used.end())
          << label() << " rail " << s.rail << " used twice";
      used.push_back(s.rail);
    }
    // (d) the identity overload is the same plan in list-position space.
    const std::vector<Stripe> id_plan = plan_stripes(
        bytes, base_off, static_cast<int>(live.size()), min_stripe, weights, id_cursor);
    ASSERT_EQ(id_plan.size(), plan.size()) << label();
    for (std::size_t i = 0; i < plan.size(); ++i) {
      EXPECT_EQ(plan[i].rail, live[static_cast<std::size_t>(id_plan[i].rail)]) << label();
      EXPECT_EQ(plan[i].offset, id_plan[i].offset) << label();
      EXPECT_EQ(plan[i].len, id_plan[i].len) << label();
    }
    EXPECT_EQ(cursor.next, id_cursor.next) << label();
  }
}

TEST(Policy, StripePlanDegenerateInputs) {
  RailCursor cur;
  EXPECT_TRUE(plan_stripes(0, 0, 4, 2048, {}, cur).empty());
  EXPECT_TRUE(plan_stripes(-5, 0, 4, 2048, {}, cur).empty());
  EXPECT_TRUE(plan_stripes(1 << 20, 0, 0, 2048, {}, cur).empty());
  EXPECT_TRUE(plan_stripes(1 << 20, 0, std::vector<int>{}, 2048, {}, cur).empty());
  // A sub-floor message still travels: one stripe carrying everything.
  const auto tiny = plan_stripes(100, 64, std::vector<int>{3}, 2048, {}, cur);
  ASSERT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny[0].rail, 3);
  EXPECT_EQ(tiny[0].offset, 64);
  EXPECT_EQ(tiny[0].len, 100);
}

TEST(Policy, LeastLoadedRailHonoursLiveMask) {
  const std::vector<std::int64_t> load = {10, 0, 5, 7};
  EXPECT_EQ(least_loaded_rail(load), 1);
  EXPECT_EQ(least_loaded_rail(load, {1, 0, 1, 1}), 2);  // rail 1 down
  EXPECT_EQ(least_loaded_rail(load, {1, 0, 0, 1}), 3);
  // All down: fall back to the unmasked pick (recovery will re-arm a rail).
  EXPECT_EQ(least_loaded_rail(load, {0, 0, 0, 0}), 1);
}

TEST(Policy, Names) {
  EXPECT_STREQ(to_string(Policy::EPC), "EPC");
  EXPECT_STREQ(to_string(Policy::EvenStriping), "even-striping");
  EXPECT_STREQ(to_string(CommKind::Collective), "collective");
}

}  // namespace
}  // namespace ib12x::mvx
