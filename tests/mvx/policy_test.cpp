#include "mvx/policy.hpp"

#include <gtest/gtest.h>

namespace ib12x::mvx {
namespace {

constexpr std::int64_t kThresh = 16 * 1024;

TEST(Policy, BindingAlwaysRailZero) {
  RailCursor cur;
  for (std::int64_t size : {0L, 100L, 1L << 20}) {
    for (auto kind : {CommKind::Blocking, CommKind::Nonblocking, CommKind::Collective}) {
      Schedule s = choose_schedule(Policy::Binding, kind, size, 4, kThresh, cur);
      EXPECT_FALSE(s.stripe);
      EXPECT_EQ(s.rail, 0);
    }
  }
}

TEST(Policy, RoundRobinCycles) {
  RailCursor cur;
  for (int i = 0; i < 12; ++i) {
    Schedule s = choose_schedule(Policy::RoundRobin, CommKind::Blocking, 1024, 4, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, i % 4);
  }
}

TEST(Policy, StripingRespectsThreshold) {
  RailCursor cur;
  EXPECT_FALSE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, kThresh - 1, 4, kThresh, cur).stripe);
  EXPECT_TRUE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, kThresh, 4, kThresh, cur).stripe);
  EXPECT_TRUE(choose_schedule(Policy::EvenStriping, CommKind::Blocking, 1 << 20, 4, kThresh, cur).stripe);
}

TEST(Policy, StripingSmallUsesSingleQp) {
  // Paper fig. 3: below the threshold only one QP carries the message.
  RailCursor cur;
  for (int i = 0; i < 5; ++i) {
    Schedule s = choose_schedule(Policy::EvenStriping, CommKind::Blocking, 8, 4, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, 0);
  }
}

TEST(Policy, EpcMatchesMarker) {
  RailCursor cur;
  // Blocking large → stripe.
  EXPECT_TRUE(choose_schedule(Policy::EPC, CommKind::Blocking, 1 << 20, 4, kThresh, cur).stripe);
  // Blocking small → single rail 0 (original-like).
  Schedule s = choose_schedule(Policy::EPC, CommKind::Blocking, 64, 4, kThresh, cur);
  EXPECT_FALSE(s.stripe);
  EXPECT_EQ(s.rail, 0);
  // Non-blocking large → round robin, never stripes.
  RailCursor cur2;
  for (int i = 0; i < 8; ++i) {
    Schedule nb = choose_schedule(Policy::EPC, CommKind::Nonblocking, 1 << 20, 4, kThresh, cur2);
    EXPECT_FALSE(nb.stripe);
    EXPECT_EQ(nb.rail, i % 4);
  }
  // Collective large → stripe (even though collectives issue non-blocking calls).
  EXPECT_TRUE(choose_schedule(Policy::EPC, CommKind::Collective, 1 << 20, 4, kThresh, cur).stripe);
  // Collective small → round robin.
  EXPECT_FALSE(choose_schedule(Policy::EPC, CommKind::Collective, 1024, 4, kThresh, cur).stripe);
}

TEST(Policy, SingleRailShortCircuits) {
  RailCursor cur;
  for (auto p : {Policy::Binding, Policy::RoundRobin, Policy::EvenStriping, Policy::EPC,
                 Policy::WeightedStriping, Policy::Adaptive}) {
    Schedule s = choose_schedule(p, CommKind::Blocking, 1 << 20, 1, kThresh, cur);
    EXPECT_FALSE(s.stripe);
    EXPECT_EQ(s.rail, 0);
  }
}

// Every {policy × kind × size} cell of the schedule table in one place:
// sub-threshold, exactly-at-threshold, and large.  `RR` also asserts that
// the shared per-peer cursor advances (and that Rail0/Stripe leave it
// alone — striping must never consume a round-robin slot).
enum class Want : std::uint8_t { Rail0, RR, Stripe };

TEST(Policy, FullScheduleTable) {
  constexpr auto B = CommKind::Blocking;
  constexpr auto N = CommKind::Nonblocking;
  constexpr auto C = CommKind::Collective;
  struct Row {
    Policy p;
    CommKind k;
    Want small, at_thresh, large;  // 1 KiB, 16 KiB, 1 MiB
  };
  constexpr Row kTable[] = {
      {Policy::Binding, B, Want::Rail0, Want::Rail0, Want::Rail0},
      {Policy::Binding, N, Want::Rail0, Want::Rail0, Want::Rail0},
      {Policy::Binding, C, Want::Rail0, Want::Rail0, Want::Rail0},
      {Policy::RoundRobin, B, Want::RR, Want::RR, Want::RR},
      {Policy::RoundRobin, N, Want::RR, Want::RR, Want::RR},
      {Policy::RoundRobin, C, Want::RR, Want::RR, Want::RR},
      {Policy::EvenStriping, B, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::EvenStriping, N, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::EvenStriping, C, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::WeightedStriping, B, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::WeightedStriping, N, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::WeightedStriping, C, Want::Rail0, Want::Stripe, Want::Stripe},
      // Adaptive resolves its real rail in the channel; bare calls are RR.
      {Policy::Adaptive, B, Want::RR, Want::RR, Want::RR},
      {Policy::Adaptive, N, Want::RR, Want::RR, Want::RR},
      {Policy::Adaptive, C, Want::RR, Want::RR, Want::RR},
      // The paper's marker table (§3.2–3.3), including the sub-threshold
      // collective → RR cell.
      {Policy::EPC, B, Want::Rail0, Want::Stripe, Want::Stripe},
      {Policy::EPC, N, Want::RR, Want::RR, Want::RR},
      {Policy::EPC, C, Want::RR, Want::Stripe, Want::Stripe},
  };
  constexpr int kRails = 4;
  for (const Row& row : kTable) {
    RailCursor cur;
    int expect_next = 0;
    const std::int64_t sizes[] = {1024, kThresh, 1 << 20};
    const Want wants[] = {row.small, row.at_thresh, row.large};
    for (int i = 0; i < 3; ++i) {
      const Schedule s = choose_schedule(row.p, row.k, sizes[i], kRails, kThresh, cur);
      const auto label = [&] {
        return std::string(to_string(row.p)) + "/" + to_string(row.k) + "/" +
               std::to_string(sizes[i]);
      };
      switch (wants[i]) {
        case Want::Rail0:
          EXPECT_FALSE(s.stripe) << label();
          EXPECT_EQ(s.rail, 0) << label();
          break;
        case Want::RR:
          EXPECT_FALSE(s.stripe) << label();
          EXPECT_EQ(s.rail, expect_next) << label();
          expect_next = (expect_next + 1) % kRails;
          break;
        case Want::Stripe:
          EXPECT_TRUE(s.stripe) << label();
          break;
      }
      EXPECT_EQ(cur.next, expect_next) << label() << " cursor";
    }
  }
  // nrails <= 1 short-circuits every cell to a whole message on rail 0.
  for (const Row& row : kTable) {
    RailCursor cur;
    for (std::int64_t bytes : {1024L, static_cast<std::int64_t>(kThresh), 1L << 20}) {
      const Schedule s = choose_schedule(row.p, row.k, bytes, 1, kThresh, cur);
      EXPECT_FALSE(s.stripe);
      EXPECT_EQ(s.rail, 0);
      EXPECT_EQ(cur.next, 0);
    }
  }
}

TEST(Policy, Names) {
  EXPECT_STREQ(to_string(Policy::EPC), "EPC");
  EXPECT_STREQ(to_string(Policy::EvenStriping), "even-striping");
  EXPECT_STREQ(to_string(CommKind::Collective), "collective");
}

}  // namespace
}  // namespace ib12x::mvx
