// Connection-scaling refactor coverage: the lazy connection manager's state
// machine (queue/flush FIFO, simultaneous connect, rendezvous-first contact)
// and the SRQ-backed pooled eager path (low-watermark replenish, RNR-style
// pool-dry backpressure), plus the telemetry-asserted scaling properties —
// QPs and pinned eager bytes O(active peers), not O(ranks²).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx/wire.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

/// Nearest-neighbour ring exchange: every rank sendrecvs one message with
/// each ring neighbour, so exactly `ranks` pairs (the ring edges) ever talk.
void ring_exchange(Communicator& c, std::size_t bytes) {
  const int right = (c.rank() + 1) % c.size();
  const int left = (c.rank() + c.size() - 1) % c.size();
  const std::vector<std::byte> out = payload(bytes, c.rank(), /*tag=*/7);
  std::vector<std::byte> in(bytes);
  c.sendrecv(out.data(), bytes, BYTE, right, 7, in.data(), bytes, BYTE, left, 7);
  ASSERT_EQ(in, payload(bytes, left, 7));
}

TEST(ConnScaling, LazyWiresOnlyActivePeers) {
  // 32 ranks, ring traffic: 32 pairs are active out of 32*31/2 = 496.  Lazy
  // wiring must create QPs for the active pairs only — 2 sides × rails per
  // pair — while the legacy eager wiring creates all 496 pairs' worth.
  const int kRanks = 32;
  Config lazy = Config::original();  // lazy_connect + use_srq are the defaults
  ASSERT_TRUE(lazy.lazy_connect);
  ASSERT_TRUE(lazy.use_srq);
  World wl(ClusterSpec{kRanks, 1}, lazy);
  wl.run([](Communicator& c) { ring_exchange(c, 512); });
  const std::uint64_t lazy_qps = wl.telemetry().counter_value("conn.qps_created");
  const std::uint64_t lazy_est = wl.telemetry().counter_value("conn.established");
  EXPECT_EQ(lazy_qps, static_cast<std::uint64_t>(kRanks * 2 * lazy.rails()));
  EXPECT_EQ(lazy_est, static_cast<std::uint64_t>(kRanks * 2));  // 2 sides per ring edge
  EXPECT_GE(wl.telemetry().counter_value("conn.handshakes_inflight"), 1u);

  Config wired = Config::original();
  wired.lazy_connect = false;
  wired.use_srq = false;
  World ww(ClusterSpec{kRanks, 1}, wired);
  ww.run([](Communicator& c) { ring_exchange(c, 512); });
  const std::uint64_t wired_qps = ww.telemetry().counter_value("conn.qps_created");
  EXPECT_EQ(wired_qps,
            static_cast<std::uint64_t>(kRanks * (kRanks - 1) * wired.rails()));  // all pairs
  EXPECT_GT(wired_qps, lazy_qps * 10);  // O(ranks²) vs O(ranks)
}

TEST(ConnScaling, LinearFootprintAt256Ranks) {
  // The acceptance bar: a 256-rank lazy+SRQ world constructs and runs with
  // O(ranks) QPs and pinned eager bytes.  The pool is deliberately small so
  // the (host) test itself stays cheap; the scaling exponent is what counts.
  const int kRanks = 256;
  Config cfg = Config::original();
  cfg.rndv_threshold = 2048;
  cfg.srq_pool_slots = 32;
  cfg.send_bounce_bufs = 32;
  World w(ClusterSpec{kRanks, 1}, cfg);
  w.run([](Communicator& c) { ring_exchange(c, 256); });

  EXPECT_EQ(w.telemetry().counter_value("conn.qps_created"),
            static_cast<std::uint64_t>(kRanks * 2 * cfg.rails()));
  // One SRQ arena per rank (per HCA), regardless of peer count.
  const std::uint64_t slot_bytes =
      kHeaderBytes + static_cast<std::uint64_t>(cfg.rndv_threshold);
  const std::uint64_t pool = w.telemetry().counter_value("eager.pool_bytes");
  EXPECT_EQ(pool, static_cast<std::uint64_t>(kRanks) *
                      static_cast<std::uint64_t>(cfg.srq_pool_slots) * slot_bytes);
  // What the legacy wiring would have pinned for the same job: eager_credits
  // slots per rail per side of every pair.  Computed, not run — constructing
  // the O(ranks²) world is exactly what this refactor makes unnecessary.
  const std::uint64_t legacy = static_cast<std::uint64_t>(kRanks) * (kRanks - 1) *
                               static_cast<std::uint64_t>(cfg.rails()) *
                               static_cast<std::uint64_t>(cfg.eager_credits) * slot_bytes;
  EXPECT_GT(legacy, pool * 10);
}

TEST(ConnScaling, SimultaneousConnectWiresPairOnce) {
  // Both ranks initiate in the same handshake window (sendrecv posts the
  // recv-side initiate and the send-side initiate on both ranks at t=0).
  // The pair must be wired exactly once: rails() QPs per side, one Ready
  // transition per side.
  Config cfg;
  World w = testutil::make_pair_world(cfg);
  w.run([](Communicator& c) {
    const int peer = 1 - c.rank();
    const std::vector<std::byte> out = payload(1024, c.rank(), 3);
    std::vector<std::byte> in(1024);
    c.sendrecv(out.data(), out.size(), BYTE, peer, 3, in.data(), in.size(), BYTE, peer, 3);
    ASSERT_EQ(in, payload(1024, peer, 3));
  });
  EXPECT_EQ(w.telemetry().counter_value("conn.qps_created"),
            static_cast<std::uint64_t>(2 * cfg.rails()));
  EXPECT_EQ(w.telemetry().counter_value("conn.established"), 2u);
}

TEST(ConnScaling, QueuedSendsFlushInFifoOrder) {
  // Sends posted before the handshake completes park in the per-peer queue
  // and must flush in posting order.  Same tag on every message: if the
  // flush reordered, sequence numbers (claimed at dispatch) would hand
  // message k's payload to receive j != k.
  const int kMsgs = 12;
  World w = testutil::make_pair_world();
  w.run([&](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i) {
        bufs.push_back(payload(64 + static_cast<std::size_t>(i) * 32, 0, i));
        reqs.push_back(c.isend(bufs.back().data(), bufs.back().size(), BYTE, 1, 5));
      }
      c.waitall(reqs);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::byte> in(64 + static_cast<std::size_t>(i) * 32);
        c.recv(in.data(), in.size(), BYTE, 0, 5);
        ASSERT_EQ(in, payload(in.size(), 0, i)) << "message " << i << " out of order";
      }
    }
  });
}

TEST(ConnScaling, RendezvousFirstContact) {
  // First-ever message to the peer is a rendezvous transfer, queued behind
  // the handshake and flushed through the non-blocking RTS path; an eager
  // message queued right behind it must still arrive after it (same tag).
  World w = testutil::make_pair_world();
  const std::size_t big = 64 * 1024;
  w.run([&](Communicator& c) {
    if (c.rank() == 0) {
      const std::vector<std::byte> a = payload(big, 0, 1);
      const std::vector<std::byte> b = payload(512, 0, 2);
      Request ra = c.isend(a.data(), a.size(), BYTE, 1, 9);
      Request rb = c.isend(b.data(), b.size(), BYTE, 1, 9);
      std::vector<Request> rs{ra, rb};
      c.waitall(rs);
    } else {
      std::vector<std::byte> a(big), b(512);
      c.recv(a.data(), a.size(), BYTE, 0, 9);
      c.recv(b.data(), b.size(), BYTE, 0, 9);
      ASSERT_EQ(a, payload(big, 0, 1));
      ASSERT_EQ(b, payload(512, 0, 2));
    }
  });
  EXPECT_GE(w.telemetry().counter_value("rndv.rts_sent"), 1u);
}

TEST(ConnScaling, SrqReplenishesOnLowWatermark) {
  // A burst deep enough to drain the pool below srq_limit must trigger the
  // asynchronous limit event and at least one batched repost.
  Config cfg;
  cfg.srq_pool_slots = 8;
  cfg.srq_limit = 4;
  World w = testutil::make_pair_world(cfg);
  const int kMsgs = 64;
  w.run([&](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i) {
        bufs.push_back(payload(1024, 0, i));
        reqs.push_back(c.isend(bufs.back().data(), bufs.back().size(), BYTE, 1, i));
      }
      c.waitall(reqs);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::byte> in(1024);
        c.recv(in.data(), in.size(), BYTE, 0, i);
        ASSERT_EQ(in, payload(1024, 0, i));
      }
    }
  });
  EXPECT_GE(w.telemetry().counter_value("srq.replenishes"), 1u);
  EXPECT_EQ(w.telemetry().counter_value("srq.pool_dry"), 0u)
      << "a single sender's derived credits must never overrun the pool";
}

TEST(ConnScaling, ConcurrentSendersHitPoolDryBackpressure) {
  // Per-peer credits are derived from the shared pool, so ONE sender can
  // never overrun it — but five senders phase-locked on the same handshake
  // latency can land more simultaneous deliveries than the pool holds.  The
  // overrun must surface as RNR-style stalls (srq.pool_dry) that resolve as
  // slots repost, never as lost or corrupted messages.
  Config cfg;
  cfg.srq_pool_slots = 4;
  cfg.srq_limit = 0;  // immediate repost: isolate the stall path
  cfg.post_cpu = sim::nanoseconds(0);
  const int kMsgs = 24;
  World w(ClusterSpec{6, 1}, cfg);
  w.run([&](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(5 * static_cast<std::size_t>(kMsgs));
      std::vector<Request> reqs;
      for (int src = 1; src <= 5; ++src) {
        for (int i = 0; i < kMsgs; ++i) {
          auto& buf = bufs[static_cast<std::size_t>((src - 1) * kMsgs + i)];
          buf.resize(64);
          reqs.push_back(c.irecv(buf.data(), buf.size(), BYTE, src, i));
        }
      }
      c.waitall(reqs);
      for (int src = 1; src <= 5; ++src) {
        for (int i = 0; i < kMsgs; ++i) {
          ASSERT_EQ(bufs[static_cast<std::size_t>((src - 1) * kMsgs + i)],
                    payload(64, src, i))
              << "from rank " << src << " msg " << i;
        }
      }
    } else {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i) {
        bufs.push_back(payload(64, c.rank(), i));
        reqs.push_back(c.isend(bufs.back().data(), bufs.back().size(), BYTE, 0, i));
      }
      c.waitall(reqs);
    }
  });
  EXPECT_GE(w.telemetry().counter_value("srq.pool_dry"), 1u);
}

}  // namespace
}  // namespace ib12x::mvx
