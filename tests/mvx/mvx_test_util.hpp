// Helpers for MPI-substrate tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mvx/mpi.hpp"

namespace ib12x::mvx::testutil {

/// Deterministic payload: value depends on (rank, tag, index) so misrouted
/// or misordered bytes are detected.
inline std::vector<std::byte> payload(std::size_t n, int rank, int tag = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(rank) * 131 +
                                   static_cast<std::size_t>(tag) * 17) &
                                  0xff);
  }
  return v;
}

/// Two ranks on two nodes — the paper's microbenchmark layout.
inline World make_pair_world(Config cfg = {}) { return World(ClusterSpec{2, 1}, cfg); }

}  // namespace ib12x::mvx::testutil
