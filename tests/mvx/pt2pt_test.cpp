// Point-to-point semantics over the full stack: data integrity for eager and
// rendezvous paths, tag/source matching, MPI ordering across multiple rails,
// non-blocking windows, and error cases.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

TEST(Pt2Pt, EagerRoundTrip) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    auto data = payload(1024, c.rank());
    if (c.rank() == 0) {
      c.send(data.data(), data.size(), BYTE, 1, 7);
    } else {
      std::vector<std::byte> got(1024);
      Status st;
      c.recv(got.data(), got.size(), BYTE, 0, 7, &st);
      EXPECT_EQ(got, payload(1024, 0));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 1024);
    }
  });
}

TEST(Pt2Pt, RendezvousRoundTrip) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    const std::size_t n = 256 * 1024;
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 1);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 1);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
}

TEST(Pt2Pt, ZeroByteMessage) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    if (c.rank() == 0) {
      c.send(nullptr, 0, BYTE, 1, 3);
    } else {
      Status st;
      c.recv(nullptr, 0, BYTE, 0, 3, &st);
      EXPECT_EQ(st.bytes, 0);
    }
  });
}

TEST(Pt2Pt, ThresholdBoundarySizes) {
  // 16 KiB is the eager/rendezvous switch: check both sides and the edge.
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    for (std::size_t n : {16384ul - 1, 16384ul, 16384ul + 1}) {
      if (c.rank() == 0) {
        auto data = payload(n, 0, static_cast<int>(n));
        c.send(data.data(), n, BYTE, 1, static_cast<int>(n));
      } else {
        std::vector<std::byte> got(n);
        c.recv(got.data(), n, BYTE, 0, static_cast<int>(n));
        EXPECT_EQ(got, payload(n, 0, static_cast<int>(n)));
      }
    }
  });
}

TEST(Pt2Pt, TagSelectivity) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    if (c.rank() == 0) {
      auto a = payload(64, 0, 10), b = payload(64, 0, 20);
      c.send(a.data(), 64, BYTE, 1, 10);
      c.send(b.data(), 64, BYTE, 1, 20);
    } else {
      std::vector<std::byte> first(64), second(64);
      // Receive in reverse tag order: matching must be by tag, not arrival.
      c.recv(first.data(), 64, BYTE, 0, 20);
      c.recv(second.data(), 64, BYTE, 0, 10);
      EXPECT_EQ(first, payload(64, 0, 20));
      EXPECT_EQ(second, payload(64, 0, 10));
    }
  });
}

TEST(Pt2Pt, AnySourceAnyTag) {
  World w(ClusterSpec{2, 2}, Config{});
  w.run([](Communicator& c) {
    if (c.rank() != 0) {
      auto data = payload(128, c.rank());
      c.send(data.data(), 128, BYTE, 0, c.rank());
    } else {
      int seen = 0;
      for (int i = 1; i < c.size(); ++i) {
        std::vector<std::byte> got(128);
        Status st;
        c.recv(got.data(), 128, BYTE, ANY_SOURCE, ANY_TAG, &st);
        EXPECT_EQ(got, payload(128, st.source));
        EXPECT_EQ(st.tag, st.source);
        ++seen;
      }
      EXPECT_EQ(seen, 3);
    }
  });
}

TEST(Pt2Pt, OrderingPreservedOverMultiRailRR) {
  // Round robin sprays consecutive messages over different QPs; the seq
  // layer must still deliver them in MPI order.
  Config cfg = Config::enhanced(4, Policy::RoundRobin);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const int n = 64;
    if (c.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        auto data = payload(512, 0, i);
        c.send(data.data(), 512, BYTE, 1, /*tag=*/5);
      }
    } else {
      for (int i = 0; i < n; ++i) {
        std::vector<std::byte> got(512);
        c.recv(got.data(), 512, BYTE, 0, 5);
        EXPECT_EQ(got, payload(512, 0, i)) << "message " << i << " out of order";
      }
    }
  });
}

TEST(Pt2Pt, MixedSizesInterleavedKeepOrder) {
  // Eager and rendezvous messages to the same destination must not overtake
  // each other (rendezvous RTS carries the seq).
  Config cfg = Config::enhanced(4, Policy::EPC);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const std::vector<std::size_t> sizes{100, 64 * 1024, 200, 32 * 1024, 1 << 20, 8};
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        auto data = payload(sizes[i], 0, static_cast<int>(i));
        c.send(data.data(), sizes[i], BYTE, 1, 9);
      }
    } else {
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::vector<std::byte> got(sizes[i]);
        Status st;
        c.recv(got.data(), sizes[i], BYTE, 0, 9, &st);
        EXPECT_EQ(st.bytes, static_cast<std::int64_t>(sizes[i])) << "message " << i;
        EXPECT_EQ(got, payload(sizes[i], 0, static_cast<int>(i))) << "message " << i;
      }
    }
  });
}

TEST(Pt2Pt, NonblockingWindowWaitall) {
  World w(ClusterSpec{2, 1}, Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const int window = 32;
    const std::size_t n = 4096;
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int i = 0; i < window; ++i) {
        bufs.push_back(payload(n, 0, i));
        reqs.push_back(c.isend(bufs.back().data(), n, BYTE, 1, i));
      }
      c.waitall(reqs);
      std::byte ack;
      c.recv(&ack, 1, BYTE, 1, 999);
    } else {
      std::vector<std::vector<std::byte>> bufs(window, std::vector<std::byte>(n));
      std::vector<Request> reqs;
      for (int i = 0; i < window; ++i) {
        reqs.push_back(c.irecv(bufs[static_cast<std::size_t>(i)].data(), n, BYTE, 0, i));
      }
      c.waitall(reqs);
      for (int i = 0; i < window; ++i) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)], payload(n, 0, i));
      }
      std::byte ack{1};
      c.send(&ack, 1, BYTE, 0, 999);
    }
  });
}

TEST(Pt2Pt, SendrecvExchange) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    const int peer = 1 - c.rank();
    auto mine = payload(2048, c.rank());
    std::vector<std::byte> theirs(2048);
    c.sendrecv(mine.data(), 2048, BYTE, peer, 4, theirs.data(), 2048, BYTE, peer, 4);
    EXPECT_EQ(theirs, payload(2048, peer));
  });
}

TEST(Pt2Pt, SelfSendRecv) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    auto data = payload(777, c.rank());
    c.isend(data.data(), 777, BYTE, c.rank(), 1);
    std::vector<std::byte> got(777);
    c.recv(got.data(), 777, BYTE, c.rank(), 1);
    EXPECT_EQ(got, data);
  });
}

TEST(Pt2Pt, UnexpectedEagerThenMatch) {
  // Send arrives before recv is posted: unexpected-queue path.
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    if (c.rank() == 0) {
      auto data = payload(4096, 0);
      c.send(data.data(), 4096, BYTE, 1, 11);
    } else {
      c.compute(sim::microseconds(200));  // guarantee the message is waiting
      std::vector<std::byte> got(4096);
      c.recv(got.data(), 4096, BYTE, 0, 11);
      EXPECT_EQ(got, payload(4096, 0));
    }
  });
}

TEST(Pt2Pt, UnexpectedRendezvousThenMatch) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    const std::size_t n = 128 * 1024;
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 12);
    } else {
      c.compute(sim::microseconds(300));
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 12);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
}

TEST(Pt2Pt, TruncationThrows) {
  World w(ClusterSpec{2, 1}, Config{});
  EXPECT_THROW(w.run([](Communicator& c) {
    if (c.rank() == 0) {
      auto data = payload(2048, 0);
      c.send(data.data(), 2048, BYTE, 1, 1);
    } else {
      std::vector<std::byte> got(64);
      c.recv(got.data(), 64, BYTE, 0, 1);
    }
  }),
               std::runtime_error);
}

TEST(Pt2Pt, ManyEagerSendsRespectCreditBackpressure) {
  Config cfg;
  cfg.eager_credits = 4;       // tiny credit window
  cfg.send_bounce_bufs = 4;
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const int n = 200;
    if (c.rank() == 0) {
      auto data = payload(1024, 0);
      for (int i = 0; i < n; ++i) c.send(data.data(), 1024, BYTE, 1, 0);
    } else {
      std::vector<std::byte> got(1024);
      for (int i = 0; i < n; ++i) c.recv(got.data(), 1024, BYTE, 0, 0);
      EXPECT_EQ(got, payload(1024, 0));
    }
  });
  EXPECT_GT(w.telemetry().counter_value("net.credit_stalls"), 0u);
}

class PolicyIntegrity : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyIntegrity, LargeTransfersIntactUnderEveryPolicy) {
  Config cfg = Config::enhanced(4, GetParam());
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    for (std::size_t n : {16384ul, 65536ul, 1048576ul, 100000ul}) {  // incl. non-divisible
      if (c.rank() == 0) {
        auto data = payload(n, 0, static_cast<int>(n % 97));
        c.send(data.data(), n, BYTE, 1, 2);
        std::vector<std::byte> back(n);
        c.recv(back.data(), n, BYTE, 1, 2);
        EXPECT_EQ(back, payload(n, 1, static_cast<int>(n % 97)));
      } else {
        std::vector<std::byte> got(n);
        c.recv(got.data(), n, BYTE, 0, 2);
        EXPECT_EQ(got, payload(n, 0, static_cast<int>(n % 97)));
        auto data = payload(n, 1, static_cast<int>(n % 97));
        c.send(data.data(), n, BYTE, 0, 2);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyIntegrity,
                         ::testing::Values(Policy::Binding, Policy::RoundRobin,
                                           Policy::EvenStriping, Policy::EPC,
                                           Policy::WeightedStriping, Policy::Adaptive));

class RailCountIntegrity : public ::testing::TestWithParam<int> {};

TEST_P(RailCountIntegrity, EpcIntactForQpCounts) {
  Config cfg = Config::enhanced(GetParam(), Policy::EPC);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const std::size_t n = 512 * 1024;
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 0);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 0);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(QpCounts, RailCountIntegrity, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace ib12x::mvx
