// Rendezvous protocol diversity: the equivalence oracle and the adaptive
// scheduler's property tests.
//
// The oracle (RndvProtocol suite) runs the same seeded mixed-size traffic
// under each wire protocol — WriteRtsCts, ReadRts, WriteImm, each with and
// without the pipelined pacing variant — and asserts what must NOT vary with
// the protocol choice:
//   1. every payload is byte-exact;
//   2. matcher-visible ordering: wildcard receives observe each sender's
//      messages in posting order, and all protocols deliver the identical
//      message set;
//   3. protocol-specific telemetry appears exactly on the protocols that own
//      it (read stripes only under ReadRts, immediates only under WriteImm,
//      neither in the default snapshot).
//
// The Adaptive suite drives RndvPolicy directly with synthetic rewards:
// epsilon-greedy exploration stays within statistical bounds, the dead-rail
// mask is never violated, and the arm stream is bit-reproducible per seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "harness/runner.hpp"
#include "mvx/mpi.hpp"
#include "mvx/rndv_policy.hpp"
#include "mvx_test_util.hpp"
#include "sim/rng.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

struct Plan {
  int src, dst, tag;
  std::size_t bytes;
  bool nonblocking;
};

/// Identical global pt2pt plan on every rank, derived from the seed.  Sizes
/// are weighted toward the rendezvous regime so every protocol actually runs.
std::vector<Plan> make_plan(std::uint64_t seed, int ranks, int messages) {
  sim::Rng rng(seed);
  std::vector<Plan> plan;
  for (int i = 0; i < messages; ++i) {
    Plan p;
    p.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
    p.dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks - 1)));
    if (p.dst >= p.src) ++p.dst;
    p.tag = i;
    switch (rng.next_below(4)) {
      case 0: p.bytes = 1 + rng.next_below(512); break;                   // eager
      case 1: p.bytes = 16 * 1024 + rng.next_below(8 * 1024); break;      // 1-stripe rndv
      case 2: p.bytes = 32 * 1024 + rng.next_below(96 * 1024); break;     // striped rndv
      default: p.bytes = 256 * 1024 + rng.next_below(256 * 1024); break;  // big striped
    }
    p.nonblocking = rng.next_below(2) == 0;
    plan.push_back(p);
  }
  return plan;
}

/// Multi-rail base configuration: 2 HCAs × 1 port × 2 QPs = 4 rails/peer.
Config make_rails_config() {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.hcas_per_node = 2;
  return cfg;
}

struct TrafficResult {
  sim::Time end_time = 0;
  /// (src, tag, bytes) per rank in wildcard completion order — the
  /// matcher-visible arrival sequence at each receiver.
  std::vector<std::vector<std::tuple<int, int, std::int64_t>>> order;
  /// The full delivered message set, sorted (protocol-independent).
  std::vector<std::tuple<int, int, int, std::int64_t>> delivered;  ///< (dst, src, tag, bytes)
};

/// Runs the seeded plan on a 2×2 world with wildcard receives and verifies
/// every payload in place; returns the observable ordering facts.  `inspect`
/// (optional) sees the finished world before it is torn down.
TrafficResult run_traffic(std::uint64_t seed, int messages,
                          const std::function<void(Config&)>& tweak,
                          const std::function<void(World&)>& inspect = {}) {
  Config cfg = make_rails_config();
  if (tweak) tweak(cfg);
  World w(ClusterSpec{2, 2}, cfg);
  TrafficResult res;
  res.order.resize(static_cast<std::size_t>(4));
  w.run([&](Communicator& c) {
    const auto plan = make_plan(seed, c.size(), messages);
    std::size_t nrecv = 0, maxb = 0;
    for (const Plan& p : plan) {
      if (p.dst == c.rank()) {
        ++nrecv;
        maxb = std::max(maxb, p.bytes);
      }
    }
    std::vector<std::vector<std::byte>> rbufs(nrecv);
    std::vector<Request> rreqs;
    for (std::size_t k = 0; k < nrecv; ++k) {
      rbufs[k].assign(maxb, std::byte{0});
      rreqs.push_back(c.irecv(rbufs[k].data(), maxb, BYTE, ANY_SOURCE, ANY_TAG));
    }
    std::vector<std::vector<std::byte>> sbufs;
    std::vector<Request> sreqs;
    for (const Plan& p : plan) {
      if (p.src != c.rank()) continue;
      sbufs.push_back(payload(p.bytes, p.src, p.tag));
      if (p.nonblocking) {
        sreqs.push_back(c.isend(sbufs.back().data(), p.bytes, BYTE, p.dst, p.tag));
      } else {
        c.send(sbufs.back().data(), p.bytes, BYTE, p.dst, p.tag);
      }
    }
    c.waitall(sreqs);
    for (std::size_t k = 0; k < nrecv; ++k) {
      Status st;
      c.wait(rreqs[k], &st);
      res.order[static_cast<std::size_t>(c.rank())].emplace_back(st.source, st.tag, st.bytes);
      rbufs[k].resize(static_cast<std::size_t>(st.bytes));
      ASSERT_EQ(rbufs[k], payload(static_cast<std::size_t>(st.bytes), st.source, st.tag))
          << "seed " << seed << " recv " << k << " at rank " << c.rank() << " ("
          << st.source << " tag " << st.tag << ", " << st.bytes << " B)";
    }
    c.barrier();
  });
  for (int r = 0; r < 4; ++r) {
    for (const auto& [src, tag, bytes] : res.order[static_cast<std::size_t>(r)]) {
      res.delivered.emplace_back(r, src, tag, bytes);
    }
  }
  std::sort(res.delivered.begin(), res.delivered.end());
  res.end_time = w.end_time();
  if (inspect) inspect(w);
  return res;
}

/// Row lookup in a telemetry table; -1 when the metric is absent.
double table_value(const harness::Table& t, const std::string& name) {
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    if (t.row_label(r) == name) return t.value(r, 0);
  }
  return -1.0;
}

void set_protocol(Config& cfg, Config::RndvConfig::Protocol p, bool pipelined) {
  cfg.rndv.protocol = p;
  cfg.rndv_pipeline = pipelined;
}

TEST(RndvProtocol, EquivalenceOracleAcrossProtocols) {
  using P = Config::RndvConfig::Protocol;
  const std::uint64_t seed = 0x0eac1e5eed;
  const int messages = 36;
  std::vector<TrafficResult> runs;
  for (bool pipelined : {false, true}) {
    for (P p : {P::WriteRtsCts, P::ReadRts, P::WriteImm}) {
      runs.push_back(run_traffic(seed, messages,
                                 [&](Config& cfg) { set_protocol(cfg, p, pipelined); }));
    }
  }
  const auto plan = make_plan(seed, 4, messages);
  for (std::size_t v = 0; v < runs.size(); ++v) {
    // Every protocol delivers the identical message set (payloads were
    // checked byte-exact in place)...
    EXPECT_EQ(runs[v].delivered, runs[0].delivered) << "variant " << v;
    // ...and each sender's messages reach every receiver's matcher in
    // posting order (per-pair sequencing is protocol-independent).
    for (int rank = 0; rank < 4; ++rank) {
      std::map<int, std::vector<int>> tags_by_src;
      for (const auto& [src, tag, bytes] : runs[v].order[static_cast<std::size_t>(rank)]) {
        tags_by_src[src].push_back(tag);
      }
      std::map<int, std::vector<int>> want;
      for (const Plan& p : plan) {
        if (p.dst == rank) want[p.src].push_back(p.tag);
      }
      EXPECT_EQ(tags_by_src, want) << "variant " << v << " rank " << rank;
    }
  }
}

TEST(RndvProtocol, TelemetryShapesPerProtocol) {
  using P = Config::RndvConfig::Protocol;
  const std::uint64_t seed = 0x7e1e7ab1e;
  auto snapshot = [&](P p) {
    harness::Table t("empty", "metric");
    run_traffic(seed, 24, [&](Config& cfg) { set_protocol(cfg, p, false); },
                [&](World& w) { t = harness::telemetry_table(w); });
    return t;
  };

  const harness::Table def = snapshot(P::WriteRtsCts);
  // The default configuration's snapshot carries none of the new machinery.
  EXPECT_EQ(table_value(def, "rndv.read_stripes"), -1.0);
  EXPECT_EQ(table_value(def, "rndv.imm_sent"), -1.0);
  EXPECT_EQ(table_value(def, "rndv.done_sent"), -1.0);
  EXPECT_GT(table_value(def, "rndv.rts_sent"), 0.0);

  const harness::Table rd = snapshot(P::ReadRts);
  EXPECT_GT(table_value(rd, "rndv.read_stripes"), 0.0);
  EXPECT_GT(table_value(rd, "rndv.done_sent"), 0.0);
  EXPECT_EQ(table_value(rd, "rndv.imm_sent"), 0.0);
  EXPECT_EQ(table_value(rd, "rndv.imm_folded"), 0.0);

  const harness::Table wi = snapshot(P::WriteImm);
  EXPECT_GT(table_value(wi, "rndv.imm_sent") + table_value(wi, "rndv.imm_folded"), 0.0);
  EXPECT_EQ(table_value(wi, "rndv.read_stripes"), 0.0);
  EXPECT_EQ(table_value(wi, "rndv.done_sent"), 0.0);
}

TEST(RndvProtocol, WriteImmElidesFinAcrossVcis) {
  // Regression: FIN handling used to assume the CTS-echoed vci/chunk fields
  // were present when a transfer finished.  With WriteImm the FIN is elided,
  // so completion must run entirely off the immediate word — including on a
  // non-zero VCI — and the PinCache references must still come back (the
  // eviction counter can only move when released pins reach zero).
  for (bool pipelined : {false, true}) {
    Config cfg = make_rails_config();
    set_protocol(cfg, Config::RndvConfig::Protocol::WriteImm, pipelined);
    cfg.vci.count = 2;
    cfg.vci.mapping = Config::VciConfig::Mapping::PerComm;
    cfg.stripe_threshold = 64 * 1024;     // keep a one-stripe (folded-imm) regime open
    cfg.reg_cache_capacity = 256 * 1024;  // force eviction pressure
    World w(ClusterSpec{2, 1}, cfg);
    w.run([&](Communicator& c) {
      Communicator d = c.dup();  // PerComm: the dup'd communicator rides VCI 1
      const std::size_t folded = 32 * 1024;   // one stripe: imm rides the data write
      const std::size_t striped = 192 * 1024; // many stripes: trailing imm
      // All buffers live until the end: every round registers fresh address
      // intervals, so the 256 KiB budget can only hold if earlier pins come
      // back after their (FIN-less) completions.
      std::vector<std::vector<std::byte>> keep;
      for (int round = 0; round < 4; ++round) {
        for (Communicator* comm : {&c, &d}) {
          for (std::size_t n : {folded, striped}) {
            const int tag = round * 10 + (comm == &d ? 1 : 0) + (n == striped ? 4 : 0);
            if (comm->rank() == 0) {
              keep.push_back(payload(n, 0, tag));
              comm->send(keep.back().data(), n, BYTE, 1, tag);
            } else {
              keep.emplace_back(n);
              comm->recv(keep.back().data(), n, BYTE, 0, tag);
              ASSERT_EQ(keep.back(), payload(n, 0, tag))
                  << "pipelined=" << pipelined << " tag " << tag;
            }
          }
        }
      }
      c.barrier();
    });
    auto& tel = w.telemetry();
    // One-shot mode folds the imm into a single-stripe data write; pipelined
    // mode always appends the zero-byte trailing imm, even for one chunk.
    if (pipelined) {
      EXPECT_EQ(tel.counter_value("rndv.imm_folded"), 0u);
    } else {
      EXPECT_GT(tel.counter_value("rndv.imm_folded"), 0u);
    }
    EXPECT_GT(tel.counter_value("rndv.imm_sent"), 0u) << "pipelined=" << pipelined;
    // Distinct payload buffers every round under a small budget: evictions
    // prove the elided-FIN path released its receiver- and sender-side pins.
    EXPECT_GT(tel.counter_value("rndv.reg_cache_evictions"), 0u) << "pipelined=" << pipelined;
  }
}

TEST(RndvProtocol, ConfigValidationRejectsBadKnobs) {
  const ClusterSpec pair{2, 1};
  {
    Config cfg;
    cfg.rndv.epsilon = 1.5;
    EXPECT_THROW(World(pair, cfg), std::invalid_argument);
  }
  {
    Config cfg;  // rails() == 1
    cfg.rndv.max_width = 2;
    EXPECT_THROW(World(pair, cfg), std::invalid_argument);
  }
}

// ---------------------------------------------------------------- Adaptive

Config adaptive_cfg(double epsilon, std::uint64_t seed, int max_width = 0) {
  Config cfg;
  cfg.rndv.adaptive = true;
  cfg.rndv.epsilon = epsilon;
  cfg.rndv.seed = seed;
  cfg.rndv.max_width = max_width;
  return cfg;
}

TEST(Adaptive, ArmSpaceIsProtocolTimesWidth) {
  RndvPolicy p(adaptive_cfg(0.1, 7), /*rank=*/0, /*nrails=*/4);
  EXPECT_EQ(p.arms(), 9);  // 3 protocols × widths {1, 2, 4}
  RndvPolicy capped(adaptive_cfg(0.1, 7, /*max_width=*/2), 0, 4);
  EXPECT_EQ(capped.arms(), 6);  // widths {1, 2}
  EXPECT_THROW(RndvPolicy(adaptive_cfg(-0.5, 7), 0, 4), std::invalid_argument);
}

TEST(Adaptive, EpsilonGreedyStaysWithinBounds) {
  const double eps = 0.2;
  RndvPolicy p(adaptive_cfg(eps, 0xadaf7), 0, 4);
  sim::Rng rewards(0x5eed);
  int explored_after_warmup = 0, draws_after_warmup = 0;
  std::uint64_t seen = 0;
  for (int i = 0; i < 2000; ++i) {
    bool explored = false;
    const int a = p.choose(/*peer=*/1, /*bytes=*/64 * 1024, /*live=*/4, &explored);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, p.arms());
    seen |= std::uint64_t{1} << a;
    if (i >= p.arms()) {  // warm-up = one deterministic play of every arm
      ++draws_after_warmup;
      if (explored) ++explored_after_warmup;
    }
    p.record(1, 64 * 1024, a, static_cast<sim::Time>(1000 + rewards.next_below(1000)));
  }
  // Every arm measured at least once (the warm-up guarantee).
  EXPECT_EQ(seen, (std::uint64_t{1} << p.arms()) - 1);
  // Exploration rate ~ Binomial(1991, 0.2): mean 398, sd ~18.  ±5 sd bounds.
  EXPECT_GT(explored_after_warmup, draws_after_warmup / 5 - 90);
  EXPECT_LT(explored_after_warmup, draws_after_warmup / 5 + 90);
}

TEST(Adaptive, NeverPicksDeadRailArm) {
  RndvPolicy p(adaptive_cfg(0.3, 0xdead), 2, 4);
  sim::Rng rng(0xf1a5);
  for (int i = 0; i < 2000; ++i) {
    const int live = 1 << rng.next_below(3);  // 1, 2 or 4 rails up
    const std::int64_t bytes = std::int64_t{1} << (10 + rng.next_below(10));
    const int a = p.choose(0, bytes, live, nullptr);
    EXPECT_LE(p.arm(a).width, std::max(1, live))
        << "draw " << i << " picked width " << p.arm(a).width << " with " << live << " rails up";
    p.record(0, bytes, a, static_cast<sim::Time>(500 + rng.next_below(2000)));
  }
}

TEST(Adaptive, BitReproduciblePerSeed) {
  auto draw = [](std::uint64_t seed) {
    RndvPolicy p(adaptive_cfg(0.25, seed), 3, 4);
    sim::Rng rng(seed ^ 0xfeed);  // same synthetic reward stream per seed
    std::vector<int> picks;
    for (int i = 0; i < 2000; ++i) {
      const int live = 1 << rng.next_below(3);
      const int a = p.choose(i % 3, 32 * 1024, live, nullptr);
      picks.push_back(a);
      p.record(i % 3, 32 * 1024, a, static_cast<sim::Time>(100 + rng.next_below(5000)));
    }
    return picks;
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));  // canary: the seed actually feeds the stream
}

TEST(Adaptive, GreedyConvergesToTheBestArm) {
  // With epsilon = 0 the policy is pure greedy after warm-up; make one arm
  // strictly dominant and it must be chosen for every post-warm-up draw.
  RndvPolicy p(adaptive_cfg(0.0, 1), 0, 2);
  const int favoured = 3;
  for (int i = 0; i < 200; ++i) {
    const int a = p.choose(0, 8192, 2, nullptr);
    if (i >= p.arms()) EXPECT_EQ(a, favoured) << "draw " << i;
    p.record(0, 8192, a, a == favoured ? 10 : 1000);
  }
}

TEST(Adaptive, EndToEndAdaptiveRunStaysCorrect) {
  std::uint64_t explore = 0, exploit = 0;
  run_traffic(0xada97e, 32,
              [](Config& cfg) {
                cfg.rndv.adaptive = true;
                cfg.rndv.epsilon = 0.2;
                cfg.rndv.seed = 0x90110;
              },
              [&](World& w) {
                explore = w.telemetry().counter_value("rndv.policy_explore");
                exploit = w.telemetry().counter_value("rndv.policy_exploit");
              });
  // The run stayed payload-exact (checked inside run_traffic) and the policy
  // made the decisions.  With 9 arms per (peer, size-class) cell most draws
  // here are still warm-up, so exploit picks need only exist in aggregate.
  EXPECT_GT(explore, 0u);
  EXPECT_GT(explore + exploit, 8u);
}

TEST(Adaptive, SameSeedSameWorldIsBitReproducible) {
  auto run = [](std::uint64_t seed) {
    return run_traffic(0xada9b17, 24, [&](Config& cfg) {
      cfg.rndv.adaptive = true;
      cfg.rndv.epsilon = 0.15;
      cfg.rndv.seed = seed;
    });
  };
  const TrafficResult a = run(0x1234);
  const TrafficResult b = run(0x1234);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.order, b.order);
}

}  // namespace
}  // namespace ib12x::mvx
