// The switched topology layer driven through the full MPI substrate:
// sharded-oracle equivalence on a fat-tree at 64 ranks, bit-reproducibility
// of the routed shapes, locality shard placement, and the Config validation
// that names conflicting fields.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

bool is_wall_gauge(const std::string& name) {
  return name.find(".wall.") != std::string::npos;
}

/// Metrics legitimately different between shard counts (see
/// sharded_determinism_test.cpp for the rationale).
bool excluded_from_oracle(const std::string& name) {
  return is_wall_gauge(name) || name.rfind("sim.shard.", 0) == 0 ||
         name == "sim.kernel_allocs" || name == "sim.allocs_per_event";
}

struct Digest {
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  std::map<std::string, double> telemetry;
};

Digest digest_of(World& w) {
  Digest d;
  d.events = w.events_processed();
  d.end_time = w.end_time();
  for (const auto& s : w.telemetry().snapshot()) {
    if (excluded_from_oracle(s.name)) continue;
    d.telemetry[s.name] = s.value;
  }
  return d;
}

void expect_same_digest(const Digest& a, const Digest& b, const std::string& what) {
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.end_time, b.end_time) << what;
  ASSERT_EQ(a.telemetry.size(), b.telemetry.size()) << what;
  for (const auto& [name, value] : a.telemetry) {
    auto it = b.telemetry.find(name);
    ASSERT_NE(it, b.telemetry.end()) << what << ": metric missing: " << name;
    EXPECT_EQ(it->second, value) << what << ": metric diverged: " << name;
  }
}

/// Seeded 64-rank alltoall on an auto-derived fat-tree: every rank
/// contributes 64 doubles per peer, verifies the gathered matrix, then
/// barriers.  Eager-sized blocks keep the smoke fast.
Digest run_fattree_alltoall64(int shards, std::uint64_t seed) {
  Config cfg = Config::enhanced(1, Policy::Binding);
  cfg.lazy_connect = false;
  cfg.sim_shards = shards;
  cfg.seed = seed;
  cfg.topo.shape = ib::TopoShape::FatTree;
  World w(ClusterSpec{/*nodes=*/16, /*procs_per_node=*/4}, cfg);
  w.run([](Communicator& c) {
    ASSERT_EQ(c.size(), 64);
    constexpr std::size_t kPer = 64;
    std::vector<double> sbuf(kPer * 64), rbuf(kPer * 64);
    for (int peer = 0; peer < 64; ++peer) {
      for (std::size_t i = 0; i < kPer; ++i) {
        sbuf[static_cast<std::size_t>(peer) * kPer + i] =
            c.rank() * 1e6 + peer * 1e3 + static_cast<double>(i);
      }
    }
    c.alltoall(sbuf.data(), rbuf.data(), kPer, DOUBLE);
    for (int peer = 0; peer < 64; ++peer) {
      for (std::size_t i = 0; i < kPer; ++i) {
        ASSERT_EQ(rbuf[static_cast<std::size_t>(peer) * kPer + i],
                  peer * 1e6 + c.rank() * 1e3 + static_cast<double>(i))
            << "rank " << c.rank() << " from " << peer << " elem " << i;
      }
    }
    c.barrier();
  });
  return digest_of(w);
}

TEST(TopologyMvx, FatTreeAlltoall64RanksShardedMatchesOracle) {
  const Digest oracle = run_fattree_alltoall64(/*shards=*/1, /*seed=*/0xA11A);
  const Digest sharded = run_fattree_alltoall64(/*shards=*/4, /*seed=*/0xA11A);
  expect_same_digest(oracle, sharded, "fat-tree alltoall, 4 shards");
  // The topology group must be present and show multi-hop routing.
  ASSERT_TRUE(oracle.telemetry.count("fabric.switch.count"));
  EXPECT_GT(oracle.telemetry.at("fabric.switch.count"), 1.0);
  double multi_hop = 0.0;
  for (int h = 2; h <= ib::kMaxRouteHops; ++h) {
    multi_hop += oracle.telemetry.at("fabric.switch.hops.h" + std::to_string(h));
  }
  EXPECT_GT(multi_hop, 0.0) << "no message ever crossed more than one switch";
}

/// Routed shapes with contention: same config run twice must digest
/// identically (bit-reproducibility per seed).
Digest run_contended(ib::TopoShape shape, ib::RoutePolicy routing, std::uint64_t seed) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.seed = seed;
  cfg.topo.shape = shape;
  cfg.topo.routing = routing;
  cfg.topo.contention = true;
  World w(ClusterSpec{/*nodes=*/8, /*procs_per_node=*/2}, cfg);
  w.run([](Communicator& c) {
    const int peer = (c.rank() + c.size() / 2) % c.size();
    std::vector<std::byte> out = testutil::payload(96 * 1024, c.rank());
    std::vector<std::byte> in(96 * 1024);
    c.sendrecv(out.data(), out.size(), BYTE, peer, 7, in.data(), in.size(), BYTE, peer, 7);
    ASSERT_EQ(in, testutil::payload(96 * 1024, peer)) << "rank " << c.rank();
    c.barrier();
  });
  return digest_of(w);
}

TEST(TopologyMvx, ContendedRoutedShapesAreBitReproducible) {
  for (auto [shape, routing, what] :
       {std::tuple{ib::TopoShape::FatTree, ib::RoutePolicy::Minimal, "fat-tree"},
        std::tuple{ib::TopoShape::Dragonfly, ib::RoutePolicy::Minimal, "dragonfly minimal"},
        std::tuple{ib::TopoShape::Dragonfly, ib::RoutePolicy::Valiant, "dragonfly valiant"}}) {
    const Digest a = run_contended(shape, routing, 0xD15C);
    const Digest b = run_contended(shape, routing, 0xD15C);
    expect_same_digest(a, b, what);
    EXPECT_GT(a.telemetry.at("fabric.switch.routed_pkts"), 0.0) << what;
    EXPECT_EQ(a.telemetry.at("fabric.switch.drops"), 0.0) << what;
  }
}

/// Ring-neighbour traffic on a fat-tree, 16 nodes over 4 shards: block
/// (locality) placement keeps most neighbour pairs on one shard, round-robin
/// makes every pair cross.  The conservative engine's cross_events counter is
/// the direct measure.
double cross_events_with(Config::ShardPlacement place) {
  Config cfg = Config::enhanced(1, Policy::Binding);
  cfg.lazy_connect = false;
  cfg.sim_shards = 4;
  cfg.hca.ports = 1;  // one lid per node: nodes n, n+1 share edge switches
  cfg.topo.shape = ib::TopoShape::FatTree;
  cfg.shard_placement = place;
  World w(ClusterSpec{/*nodes=*/16, /*procs_per_node=*/1}, cfg);
  w.run([](Communicator& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::byte> out = testutil::payload(32 * 1024, c.rank());
    std::vector<std::byte> in(32 * 1024);
    for (int it = 0; it < 4; ++it) {
      c.sendrecv(out.data(), out.size(), BYTE, next, it, in.data(), in.size(), BYTE, prev, it);
      ASSERT_EQ(in, testutil::payload(32 * 1024, prev));
    }
    c.barrier();
  });
  double cross = 0.0;
  for (const auto& s : w.telemetry().snapshot()) {
    if (s.name == "sim.shard.cross_events") cross = s.value;
  }
  return cross;
}

TEST(TopologyMvx, LocalityPlacementCutsCrossShardEvents) {
  const double rr = cross_events_with(Config::ShardPlacement::RoundRobin);
  const double loc = cross_events_with(Config::ShardPlacement::Locality);
  EXPECT_GT(rr, 0.0);
  EXPECT_LT(loc, rr) << "locality placement should cut cross-shard traffic "
                     << "(round-robin crosses on every ring edge)";
}

TEST(TopologyMvx, AutoPlacementPicksLocalityOnFatTree) {
  // Auto on a switched shape must behave like Locality (same digest).
  Config cfg = Config::enhanced(1, Policy::Binding);
  cfg.lazy_connect = false;
  cfg.sim_shards = 4;
  cfg.hca.ports = 1;
  cfg.topo.shape = ib::TopoShape::FatTree;
  World w(ClusterSpec{16, 1}, cfg);
  EXPECT_EQ(w.config().shard_placement, Config::ShardPlacement::Auto);
  // Block placement: first and last node on different shards, neighbours of
  // node 0 co-sharded with it.
  EXPECT_EQ(w.node_shard(0), 0);
  EXPECT_EQ(w.node_shard(1), 0);
  EXPECT_EQ(w.node_shard(15), 3);
}

// ---- Config validation: conflicting fields are named ----------------------

TEST(TopologyMvx, ShardsWithLazyConnectErrorNamesBothFields) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.lazy_connect = true;
  cfg.sim_shards = 2;
  try {
    World w(ClusterSpec{2, 1}, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sim_shards"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lazy_connect"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lazy_connect = false"), std::string::npos)
        << "message should state the supported combination: " << msg;
  }
}

TEST(TopologyMvx, ContendedCrossbarWithShardsErrorNamesFields) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.lazy_connect = false;
  cfg.sim_shards = 2;
  cfg.topo.contention = true;
  try {
    World w(ClusterSpec{4, 1}, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("topo.contention"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Crossbar"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sim_shards"), std::string::npos) << msg;
  }
}

TEST(TopologyMvx, RoundRobinWithContentionErrorNamesPlacement) {
  Config cfg = Config::enhanced(2, Policy::EPC);
  cfg.lazy_connect = false;
  cfg.sim_shards = 2;
  cfg.topo.shape = ib::TopoShape::FatTree;
  cfg.topo.contention = true;
  cfg.shard_placement = Config::ShardPlacement::RoundRobin;
  try {
    World w(ClusterSpec{4, 1}, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shard_placement"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Locality"), std::string::npos) << msg;
  }
}

TEST(TopologyMvx, UndersizedFixedShapeErrorNamesTopoFields) {
  Config cfg;
  cfg.topo.shape = ib::TopoShape::FatTree;
  cfg.topo.fattree_k = 2;  // 2 host ports, cluster needs 4 nodes * 2 ports
  try {
    World w(ClusterSpec{4, 1}, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("topo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hca.ports"), std::string::npos) << msg;
  }
}

TEST(TopologyMvx, ContendedShardedFatTreeMatchesUnshardedRun) {
  // Contention + Locality sharding: switch hop chains run on shard threads;
  // the digest must still match the single-threaded run of the same config.
  auto run = [](int shards) {
    Config cfg = Config::enhanced(1, Policy::Binding);
    cfg.lazy_connect = false;
    cfg.sim_shards = shards;
    cfg.hca.ports = 1;
    cfg.topo.shape = ib::TopoShape::FatTree;
    cfg.topo.contention = true;
    World w(ClusterSpec{8, 1}, cfg);
    w.run([](Communicator& c) {
      const int peer = (c.rank() + c.size() / 2) % c.size();
      std::vector<std::byte> out = testutil::payload(64 * 1024, c.rank());
      std::vector<std::byte> in(64 * 1024);
      c.sendrecv(out.data(), out.size(), BYTE, peer, 3, in.data(), in.size(), BYTE, peer, 3);
      ASSERT_EQ(in, testutil::payload(64 * 1024, peer));
      c.barrier();
    });
    return digest_of(w);
  };
  const Digest oracle = run(1);
  const Digest sharded = run(4);
  expect_same_digest(oracle, sharded, "contended fat-tree, 4 shards");
  EXPECT_GT(oracle.telemetry.at("fabric.switch.routed_pkts"), 0.0);
}

}  // namespace
}  // namespace ib12x::mvx
