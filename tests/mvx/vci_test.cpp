// Virtual communication interfaces: config validation, the per-(peer, ctx,
// vci) matcher keys, multi-threaded ranks on dedicated vs. shared VCIs, the
// gated vci.* telemetry, fault soak with several VCIs live, and sharded-run
// oracle identity.  Suite names contain "Vci" so CI's TSan lane picks the
// multi-threaded-rank tests up by regex.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "mvx/matcher.hpp"
#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

// ------------------------------------------------------------- validation

void expect_ctor_names(Config cfg, const std::vector<std::string>& needles) {
  try {
    World w(ClusterSpec{2, 1}, cfg);
    FAIL() << "World ctor accepted an invalid vci config";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const std::string& n : needles) {
      EXPECT_NE(what.find(n), std::string::npos)
          << "error message misses '" << n << "': " << what;
    }
  }
}

TEST(VciConfig, CountOutOfRangeIsRejected) {
  Config lo;
  lo.vci.count = 0;
  expect_ctor_names(lo, {"vci.count", "Supported"});
  Config hi;
  hi.vci.count = kMaxVcis + 1;
  expect_ctor_names(hi, {"vci.count", "Supported"});
}

TEST(VciConfig, ThreadsBelowOneIsRejected) {
  Config cfg;
  cfg.vci.threads = 0;
  expect_ctor_names(cfg, {"vci.threads", "Supported"});
}

TEST(VciConfig, SrqSplitRoundingToZeroNamesBothFields) {
  Config cfg;  // default rails() == 1, use_srq == true
  cfg.vci.count = 8;
  cfg.srq_pool_slots = 4;  // 4 / (1 rail * 8 vcis) rounds to zero
  expect_ctor_names(cfg, {"vci.count", "srq_pool_slots", "Supported"});
}

TEST(VciConfig, EagerCreditSplitRoundingToZeroNamesBothFields) {
  Config cfg;
  cfg.use_srq = false;
  cfg.vci.count = 8;
  cfg.eager_credits = 4;  // 4 / 8 vcis rounds to zero
  expect_ctor_names(cfg, {"vci.count", "eager_credits", "Supported"});
}

TEST(VciConfig, FastPathConflictsWithVcis) {
  Config cfg;
  cfg.use_rdma_fast_path = true;
  cfg.vci.count = 2;
  expect_ctor_names(cfg, {"vci.count", "use_rdma_fast_path", "Supported"});
  Config threads;
  threads.use_rdma_fast_path = true;
  threads.vci.threads = 2;
  expect_ctor_names(threads, {"vci.threads", "use_rdma_fast_path", "Supported"});
}

TEST(VciConfig, DefaultsAndGatedShapesConstruct) {
  World def(ClusterSpec{2, 1}, Config{});
  Config on;
  on.vci.count = 4;
  on.vci.threads = 4;
  World multi(ClusterSpec{2, 1}, on);
}

// ---------------------------------------------------------------- matcher

MsgHeader vci_eager(int src, int ctx, int vci, std::uint32_t seq, int tag = 0) {
  MsgHeader h;
  h.type = MsgType::Eager;
  h.vci = static_cast<std::uint8_t>(vci);
  h.src_rank = src;
  h.tag = tag;
  h.ctx = ctx;
  h.seq = seq;
  return h;
}

TEST(VciMatcher, DedupKeyIncludesVci) {
  // Regression for the per-(peer, seq) dedup key: two VCIs both legitimately
  // use seq 0 for the same (peer, ctx).  Under the old key the second
  // arrival looked like a fault-replay duplicate and was dropped.
  TelemetryRegistry tel;
  Matcher m(tel);
  EXPECT_EQ(m.sequence(1, vci_eager(1, 0, /*vci=*/0, /*seq=*/0), {}).size(), 1u);
  EXPECT_EQ(m.sequence(1, vci_eager(1, 0, /*vci=*/1, /*seq=*/0), {}).size(), 1u);
  EXPECT_EQ(tel.counter_value("fault.dup_dropped"), 0u);
  // A genuine duplicate within one VCI is still dropped.
  EXPECT_TRUE(m.sequence(1, vci_eager(1, 0, /*vci=*/1, /*seq=*/0), {}).empty());
  EXPECT_EQ(tel.counter_value("fault.dup_dropped"), 1u);
}

TEST(VciMatcher, SendSeqSpacesAreSlicedPerVci) {
  TelemetryRegistry tel;
  Matcher m(tel);
  EXPECT_EQ(m.next_send_seq(1, 0, 0), 0u);
  EXPECT_EQ(m.next_send_seq(1, 0, 2), 0u);  // each VCI owns its own counter
  EXPECT_EQ(m.next_send_seq(1, 0, 0), 1u);
  EXPECT_EQ(m.next_send_seq(1, 0, 2), 1u);
}

TEST(VciMatcher, SeededInterleavedArrivalsKeepPerVciOrder) {
  // Property: any interleaving of out-of-order arrivals across 4 VCIs must
  // deliver every VCI's stream in strict seq order with byte-exact payloads
  // and no duplicate drops.  Arrival schedules are fully seeded.
  constexpr int kVcis = 4;
  constexpr std::uint32_t kMsgs = 24;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TelemetryRegistry tel;
    Matcher m(tel);
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
    std::vector<std::pair<int, std::uint32_t>> arrivals;  // (vci, seq)
    for (int v = 0; v < kVcis; ++v) {
      for (std::uint32_t s = 0; s < kMsgs; ++s) arrivals.emplace_back(v, s);
    }
    std::shuffle(arrivals.begin(), arrivals.end(), rng);

    std::vector<std::uint32_t> delivered(kVcis, 0);
    for (const auto& [v, s] : arrivals) {
      auto bytes = payload(64, /*rank=*/1, /*tag=*/v * 1000 + static_cast<int>(s));
      for (const Matcher::Inbound& msg :
           m.sequence(1, vci_eager(1, 0, v, s, v * 1000 + static_cast<int>(s)), bytes)) {
        const int mv = msg.hdr.vci;
        ASSERT_EQ(msg.hdr.seq, delivered[static_cast<std::size_t>(mv)])
            << "seed " << seed << " vci " << mv << " delivered out of order";
        ASSERT_EQ(msg.payload, payload(64, 1, msg.hdr.tag)) << "seed " << seed;
        ++delivered[static_cast<std::size_t>(mv)];
      }
    }
    for (int v = 0; v < kVcis; ++v) {
      EXPECT_EQ(delivered[static_cast<std::size_t>(v)], kMsgs) << "seed " << seed;
    }
    EXPECT_EQ(tel.counter_value("fault.dup_dropped"), 0u) << "seed " << seed;
    EXPECT_EQ(m.reorder_count(), 0u) << "seed " << seed;
  }
}

// ----------------------------------------------------- end-to-end threads

/// Every thread of rank 0 streams `msgs` messages (its own tag range) to the
/// matching thread of rank 1 through a 32-deep non-blocking window; rank 1
/// verifies every byte.  Returns the virtual end time.
sim::Time run_thread_streams(int threads, int vcis, int msgs, std::size_t bytes,
                             const std::function<void(Config&)>& tweak = {}) {
  Config cfg;
  cfg.vci.threads = threads;
  cfg.vci.count = vcis;
  if (tweak) tweak(cfg);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([&](Communicator& c) {
    const int t = c.thread_id();
    constexpr int kWindow = 32;
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      for (int i = 0; i < msgs; ++i) {
        const int tag = t * 10000 + i;
        bufs.push_back(payload(bytes, 0, tag));
        reqs.push_back(c.isend(bufs.back().data(), bytes, BYTE, 1, tag));
        if (static_cast<int>(reqs.size()) == kWindow) {
          c.waitall(reqs);
          reqs.clear();
          bufs.clear();
        }
      }
      c.waitall(reqs);
    } else {
      std::vector<std::vector<std::byte>> bufs;
      std::vector<Request> reqs;
      std::vector<int> tags;
      auto drain = [&] {
        c.waitall(reqs);
        for (std::size_t k = 0; k < reqs.size(); ++k) {
          ASSERT_EQ(bufs[k], payload(bytes, 0, tags[k])) << "thread " << t << " tag " << tags[k];
        }
        reqs.clear();
        bufs.clear();
        tags.clear();
      };
      for (int i = 0; i < msgs; ++i) {
        const int tag = t * 10000 + i;
        bufs.emplace_back(bytes);
        reqs.push_back(c.irecv(bufs.back().data(), bytes, BYTE, 0, tag));
        tags.push_back(tag);
        if (static_cast<int>(reqs.size()) == kWindow) drain();
      }
      drain();
    }
  });
  return w.end_time();
}

TEST(VciEndToEnd, DedicatedVcisBeatOneSharedVci) {
  // The Zambre-style headline at test scale: 4 threads on 4 dedicated VCIs
  // move the same traffic materially faster than 4 threads serializing on
  // one VCI (bench/ablation_vci sweeps the full grid and asserts >= 2x).
  const sim::Time shared = run_thread_streams(/*threads=*/4, /*vcis=*/1, /*msgs=*/96, 512);
  const sim::Time dedicated = run_thread_streams(/*threads=*/4, /*vcis=*/4, /*msgs=*/96, 512);
  EXPECT_GT(shared, dedicated + dedicated / 2)
      << "4 threads on 1 VCI should be >= 1.5x slower than on 4 VCIs (shared " << shared
      << " ns, dedicated " << dedicated << " ns)";
}

TEST(VciEndToEnd, SingleThreadDefaultIsUnperturbed) {
  // vci.count = 1, vci.threads = 1 must reproduce today's timing exactly:
  // the VCI machinery may not add a nanosecond to the default path.
  Config cfg;
  World base(ClusterSpec{2, 1}, cfg);
  base.run([](Communicator& c) {
    auto data = payload(2048, 0, 5);
    if (c.rank() == 0) {
      c.send(data.data(), data.size(), BYTE, 1, 5);
    } else {
      std::vector<std::byte> got(2048);
      c.recv(got.data(), got.size(), BYTE, 0, 5);
      EXPECT_EQ(got, payload(2048, 0, 5));
    }
  });
  const sim::Time t1 = run_thread_streams(1, 1, 32, 512);
  const sim::Time t2 = run_thread_streams(1, 1, 32, 512);
  EXPECT_EQ(t1, t2) << "single-threaded runs must stay bit-reproducible";
}

TEST(VciEndToEnd, PerCommMappingRoutesByCommunicator) {
  // PerComm maps a communicator's two contexts to one VCI; dup() moves to
  // the next ctx pair and therefore the next VCI.  Traffic on both must
  // deliver intact (each stream rides its own sequence-space slice).
  Config cfg;
  cfg.vci.count = 2;
  cfg.vci.mapping = Config::VciConfig::Mapping::PerComm;
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    Communicator dup = c.dup();
    const std::size_t n = 1024;
    if (c.rank() == 0) {
      auto a = payload(n, 0, 1);
      auto b = payload(n, 0, 2);
      Request ra = c.isend(a.data(), n, BYTE, 1, 1);
      Request rb = dup.isend(b.data(), n, BYTE, 1, 2);
      c.wait(ra);
      dup.wait(rb);
    } else {
      std::vector<std::byte> a(n), b(n);
      Request ra = c.irecv(a.data(), n, BYTE, 0, 1);
      Request rb = dup.irecv(b.data(), n, BYTE, 0, 2);
      c.wait(ra);
      dup.wait(rb);
      EXPECT_EQ(a, payload(n, 0, 1));
      EXPECT_EQ(b, payload(n, 0, 2));
    }
  });
}

// -------------------------------------------------------------- telemetry

TEST(VciTelemetry, DefaultSnapshotHasNoVciRows) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    std::byte b{};
    if (c.rank() == 0) {
      c.send(&b, 1, BYTE, 1, 0);
    } else {
      c.recv(&b, 1, BYTE, 0, 0);
    }
  });
  for (const auto& s : w.telemetry().snapshot()) {
    EXPECT_NE(s.name.rfind("vci.", 0), 0u)
        << s.name << " registered in the default single-VCI configuration";
  }
}

TEST(VciTelemetry, GatedCountersSurfaceWhenEnabled) {
  Config cfg;
  cfg.vci.threads = 4;
  cfg.vci.count = 4;
  World w(ClusterSpec{2, 1}, cfg);
  constexpr int kMsgs = 16;
  w.run([&](Communicator& c) {
    const int t = c.thread_id();
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::byte> buf(256);
      if (c.rank() == 0) {
        c.send(buf.data(), buf.size(), BYTE, 1, t * 100 + i);
      } else {
        c.recv(buf.data(), buf.size(), BYTE, 0, t * 100 + i);
      }
    }
  });
  const auto& tel = w.telemetry();
  std::uint64_t sends = 0;
  for (int v = 0; v < 4; ++v) {
    sends += tel.counter_value("vci.sends.v" + std::to_string(v));
  }
  EXPECT_EQ(sends, 4u * kMsgs);  // rank 0's four threads, kMsgs each
  // RoundRobin puts each thread on its own VCI: every slice carries traffic.
  for (int v = 0; v < 4; ++v) {
    EXPECT_GT(tel.counter_value("vci.sends.v" + std::to_string(v)), 0u) << "vci " << v;
  }
  EXPECT_GT(tel.counter_value("vci.progress_wakeups"), 0u);
  EXPECT_GT(tel.counter_value("vci.credit_split"), 0u);
}

TEST(VciTelemetry, SharedVciCountsLockContention) {
  Config cfg;
  cfg.vci.threads = 4;
  cfg.vci.count = 1;  // everyone serializes on VCI 0's lock
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const int t = c.thread_id();
    for (int i = 0; i < 24; ++i) {
      std::vector<std::byte> buf(256);
      if (c.rank() == 0) {
        c.send(buf.data(), buf.size(), BYTE, 1, t * 100 + i);
      } else {
        c.recv(buf.data(), buf.size(), BYTE, 0, t * 100 + i);
      }
    }
  });
  EXPECT_GT(w.telemetry().counter_value("vci.lock_contentions"), 0u);
}

// ------------------------------------------------------------- fault soak

TEST(VciFaultSoak, MultiThreadMultiVciLedgerBalancesAndReproduces) {
  // 4 threads x 4 VCIs under link flaps and a per-message error rate: every
  // payload byte-exact, every send-side error handled by exactly one replay
  // mechanism, and the whole run bit-reproducible.
  auto soak = [](sim::Time* end_time) {
    Config cfg = Config::enhanced(2, Policy::EPC);
    cfg.hcas_per_node = 2;
    cfg.fault.enabled = true;
    cfg.fault.seed = 0x7c1fa17;
    cfg.fault.msg_error_rate = 0.03;
    for (int i = 0; i < 2; ++i) {
      Config::FaultConfig::LinkFlap f;
      f.node = i;
      f.hca = i;
      f.port = 0;
      f.down_at = sim::microseconds(40.0 + 120.0 * i);
      f.up_at = f.down_at + sim::microseconds(60.0);
      cfg.fault.link_flaps.push_back(f);
    }
    cfg.vci.count = 4;
    cfg.vci.threads = 4;
    World w(ClusterSpec{2, 1}, cfg);
    w.run([](Communicator& c) {
      const int t = c.thread_id();
      const int peer = 1 - c.rank();
      constexpr int kMsgs = 10;
      std::vector<std::vector<std::byte>> rbufs, sbufs;
      std::vector<Request> reqs;
      std::vector<std::tuple<std::size_t, int, std::size_t>> checks;  // (buf, tag, bytes)
      auto size_of = [](int i) -> std::size_t {
        switch (i % 3) {
          case 0: return 256;         // eager
          case 1: return 8 * 1024;    // straddles the bounce pool
          default: return 64 * 1024;  // rendezvous
        }
      };
      for (int i = 0; i < kMsgs; ++i) {
        const int tag = t * 1000 + i;
        rbufs.emplace_back(size_of(i));
        checks.emplace_back(rbufs.size() - 1, tag, size_of(i));
        reqs.push_back(c.irecv(rbufs.back().data(), size_of(i), BYTE, peer, tag));
      }
      for (int i = 0; i < kMsgs; ++i) {
        const int tag = t * 1000 + i;
        sbufs.push_back(payload(size_of(i), c.rank(), tag));
        reqs.push_back(c.isend(sbufs.back().data(), size_of(i), BYTE, peer, tag));
      }
      c.waitall(reqs);
      for (const auto& [k, tag, bytes] : checks) {
        ASSERT_EQ(rbufs[k], payload(bytes, peer, tag)) << "thread " << t << " tag " << tag;
      }
    });
    const auto& tel = w.telemetry();
    EXPECT_GT(tel.counter_value("fault.send_errors"), 0u) << "soak injected no faults";
    EXPECT_EQ(tel.counter_value("fault.send_errors"),
              tel.counter_value("fault.eager_retries") +
                  tel.counter_value("fault.rndv_restriped"));
    *end_time = w.end_time();
  };
  sim::Time a = 0;
  sim::Time b = 0;
  soak(&a);
  soak(&b);
  EXPECT_EQ(a, b) << "multi-VCI fault soak diverged between identical runs";
}

// ------------------------------------------------------------- sharded

TEST(VciShard, ShardedRunMatchesUnshardedOracle) {
  // Multi-threaded multi-VCI ranks under the parallel engine must stay
  // bit-identical to the single-threaded oracle (lazy_connect = false wires
  // every VCI group up front, so no shard ever wires a QP mid-run).
  auto digest = [](int shards) {
    Config cfg = Config::enhanced(2, Policy::EPC);
    cfg.lazy_connect = false;
    cfg.sim_shards = shards;
    cfg.vci.count = 4;
    cfg.vci.threads = 4;
    World w(ClusterSpec{2, 1}, cfg);
    w.run([](Communicator& c) {
      const int t = c.thread_id();
      const int peer = 1 - c.rank();
      constexpr int kMsgs = 12;
      std::vector<std::vector<std::byte>> rbufs, sbufs;
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i) {
        const std::size_t bytes = (i % 2 == 0) ? 512 : 48 * 1024;
        const int tag = t * 1000 + i;
        rbufs.emplace_back(bytes);
        reqs.push_back(c.irecv(rbufs.back().data(), bytes, BYTE, peer, tag));
        sbufs.push_back(payload(bytes, c.rank(), tag));
        reqs.push_back(c.isend(sbufs.back().data(), bytes, BYTE, peer, tag));
      }
      c.waitall(reqs);
    });
    std::vector<std::pair<std::string, double>> snap;
    for (const auto& s : w.telemetry().snapshot()) {
      if (s.name.rfind("sim.wall.", 0) == 0 || s.name.rfind("sim.shard.", 0) == 0 ||
          s.name == "sim.kernel_allocs" || s.name == "sim.allocs_per_event") {
        continue;
      }
      snap.emplace_back(s.name, s.value);
    }
    return std::make_pair(w.end_time(), snap);
  };
  const auto oracle = digest(1);
  const auto sharded = digest(2);
  EXPECT_EQ(oracle.first, sharded.first) << "end time diverged";
  ASSERT_EQ(oracle.second.size(), sharded.second.size());
  for (std::size_t i = 0; i < oracle.second.size(); ++i) {
    EXPECT_EQ(oracle.second[i].first, sharded.second[i].first);
    EXPECT_EQ(oracle.second[i].second, sharded.second[i].second)
        << oracle.second[i].first << " diverged between sharded and oracle runs";
  }
}

}  // namespace
}  // namespace ib12x::mvx
