// Pipelined zero-copy rendezvous: correctness across sizes and policies,
// chunked-CTS accounting, pin-down cache reuse and eviction under a byte
// budget, doorbell batching, and the stripe-planning fixes (weighted clamp,
// base-rail rotation).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

Config pipelined(int qps, Policy p) {
  Config cfg = Config::enhanced(qps, p);
  cfg.rndv_pipeline = true;
  return cfg;
}

TEST(RndvPipeline, DeliversAcrossSizesAndPolicies) {
  for (Policy p : {Policy::EPC, Policy::EvenStriping, Policy::RoundRobin, Policy::Adaptive}) {
    Config cfg = pipelined(4, p);
    World w(ClusterSpec{2, 1}, cfg);
    w.run([&](Communicator& c) {
      // Chunk-aligned, sub-chunk, non-aligned tail, and multi-chunk sizes.
      for (std::size_t n : {16384ul, 65536ul, 100000ul, 1048576ul, 1048577ul}) {
        if (c.rank() == 0) {
          auto data = payload(n, 0);
          c.send(data.data(), n, BYTE, 1, 0);
        } else {
          std::vector<std::byte> got(n);
          c.recv(got.data(), n, BYTE, 0, 0);
          EXPECT_EQ(got, payload(n, 0)) << to_string(p) << " n=" << n;
        }
      }
    });
  }
}

TEST(RndvPipeline, NonblockingWindowDelivers) {
  Config cfg = pipelined(4, Policy::EPC);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    constexpr std::size_t kBytes = 256 * 1024;
    constexpr int kWindow = 8;
    std::vector<std::vector<std::byte>> bufs;
    std::vector<Request> reqs;
    for (int i = 0; i < kWindow; ++i) {
      if (c.rank() == 0) {
        bufs.push_back(payload(kBytes, 0, i));
        reqs.push_back(c.isend(bufs.back().data(), kBytes, BYTE, 1, i));
      } else {
        bufs.emplace_back(kBytes);
        reqs.push_back(c.irecv(bufs.back().data(), kBytes, BYTE, 0, i));
      }
    }
    c.waitall(reqs);
    if (c.rank() == 1) {
      for (int i = 0; i < kWindow; ++i) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)], payload(kBytes, 0, i)) << "msg " << i;
      }
    }
  });
}

TEST(RndvPipeline, StreamsOneCtsPerChunk) {
  Config cfg = pipelined(4, Policy::EPC);
  cfg.rndv_pipeline_chunk = 64 * 1024;
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const std::size_t n = 1 << 20;  // 16 chunks of 64 KiB
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 0);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 0);
    }
  });
  EXPECT_EQ(w.telemetry().counter_value("rndv.cts_chunks"), 16u);
  EXPECT_GE(w.telemetry().counter_value("rndv.pipeline_depth"), 1u);
  // Blocking EPC traffic stripes each chunk; doorbell batching must ring
  // far fewer doorbells than WQEs for those writes.
  EXPECT_GT(w.telemetry().counter_value("rndv.stripes_posted"), 16u);
}

TEST(RndvPipeline, PinCacheReusedAcrossMessagesAndInteriorSends) {
  Config cfg = pipelined(4, Policy::EPC);
  World w(ClusterSpec{2, 1}, cfg);
  const std::size_t n = 512 * 1024;
  w.run([&](Communicator& c) {
    std::vector<std::byte> buf(n);
    for (int iter = 0; iter < 3; ++iter) {
      if (c.rank() == 0) {
        // Second and third sends reuse the pinned chunks; the third sends
        // from an interior pointer, which the interval lookup must cover.
        const std::size_t off = iter == 2 ? 8192 : 0;
        c.send(buf.data() + off, n - off, BYTE, 1, iter);
      } else {
        std::vector<std::byte> got(n);
        c.recv(got.data(), n, BYTE, 0, iter);
      }
    }
  });
  EXPECT_GT(w.telemetry().counter_value("rndv.reg_cache_hits"), 0u);
  // Warm iterations must not add regions: counts stay at the cold set.
  const std::uint64_t misses = w.telemetry().counter_value("rndv.reg_cache_misses");
  // Cold run: sender 8 chunks + receiver 8 chunks per rank pair for iter 0;
  // iter 1 all hits; iter 2's receiver buffer is fresh each iteration (the
  // receive side allocates per iter), so allow those misses but no sender
  // ones beyond the first pass.
  EXPECT_LT(misses, 3u * 2u * 8u);
}

TEST(RndvPipeline, EvictionBoundsRegionCountOverManySends) {
  Config cfg = pipelined(2, Policy::EPC);
  cfg.reg_cache_capacity = 512 * 1024;  // force steady-state eviction
  cfg.rndv_pipeline_chunk = 64 * 1024;
  World w(ClusterSpec{2, 1}, cfg);

  constexpr int kSends = 1000;
  constexpr std::size_t kBytes = 64 * 1024;
  constexpr int kDistinctBufs = 32;  // rotate so the cache can never hold all
  std::size_t regions_after_warmup = 0;
  w.run([&](Communicator& c) {
    std::vector<std::vector<std::byte>> bufs;
    for (int i = 0; i < kDistinctBufs; ++i) bufs.emplace_back(kBytes);
    for (int i = 0; i < kSends; ++i) {
      auto& buf = bufs[static_cast<std::size_t>(i % kDistinctBufs)];
      if (c.rank() == 0) {
        c.send(buf.data(), kBytes, BYTE, 1, 0);
      } else {
        c.recv(buf.data(), kBytes, BYTE, 0, 0);
      }
      if (i == 2 * kDistinctBufs && c.rank() == 0) {
        regions_after_warmup = w.fabric().hca(0).mem().region_count();
      }
    }
  });
  // MR count must not grow across 1000 sends: eviction really deregisters.
  EXPECT_GT(w.telemetry().counter_value("rndv.reg_cache_evictions"), 0u);
  EXPECT_LE(w.fabric().hca(0).mem().region_count(), regions_after_warmup);
}

TEST(RndvPipeline, StripeBatchesPostDeferredAndRingPerInvolvedQp) {
  // Blocking EPC stripes every 256 KiB chunk over 4 rails.  Each batch is
  // built with post_send_deferred and published by one ring per involved QP
  // (one doorbell_cpu per batch on the CPU side); the hardware counter is
  // visible through the fabric and never exceeds the WQEs it published.
  Config cfg = pipelined(4, Policy::EPC);
  cfg.rndv_pipeline_chunk = 256 * 1024;
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const std::size_t n = 1 << 20;
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 0);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 0);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
  EXPECT_GT(w.fabric().hca(0).total_doorbells(), 0u);
  EXPECT_LE(w.fabric().hca(0).total_doorbells(), w.fabric().hca(0).total_wqes_serviced());
}

TEST(RndvPipeline, LegacySwitchReproducesOneShotProtocol) {
  // rndv_pipeline=off must not even register the new chunk machinery.
  Config cfg = Config::enhanced(4, Policy::EPC);
  World w(ClusterSpec{2, 1}, cfg);
  w.run([](Communicator& c) {
    const std::size_t n = 1 << 20;
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 0);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 0);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
  EXPECT_EQ(w.telemetry().counter_value("rndv.cts_chunks"), 0u);
  EXPECT_EQ(w.telemetry().counter_value("rndv.pipeline_depth"), 0u);
}

TEST(StripePlanning, WeightedClampNeverCutsBelowMinStripe) {
  // Extreme weights used to round one stripe to ~0 bytes (or push the
  // running offset past the end).  Delivery must stay correct and every
  // rail must carry at least a header's worth of data.
  Config cfg = Config::enhanced(1, Policy::WeightedStriping);
  cfg.hcas_per_node = 2;
  cfg.ports_per_hca = 2;  // rail i ↔ (hca i/2, port i%2): per-rail tx visible
  cfg.rail_weights = {1000.0, 0.001, 1.0, 0.001};
  World w(ClusterSpec{2, 1}, cfg);
  const std::size_t n = 1 << 20;
  w.run([&](Communicator& c) {
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 0);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 0);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
  // All four rails saw a stripe of at least min_stripe data bytes.
  for (int h = 0; h < 2; ++h) {
    for (int p = 0; p < 2; ++p) {
      EXPECT_GE(w.fabric().hca(h).port(p).bytes_tx(),
                static_cast<std::uint64_t>(cfg.min_stripe))
          << "rail h" << h << "p" << p;
    }
  }
}

TEST(StripePlanning, BaseRailRotatesWhenFewerStripesThanRails) {
  // min_stripe forces n=2 stripes on 4 rails; without rotation every
  // message lands on rails {0,1} and rails {2,3} never see data.
  Config cfg = Config::enhanced(1, Policy::EvenStriping);
  cfg.hcas_per_node = 2;
  cfg.ports_per_hca = 2;
  cfg.min_stripe = 16 * 1024;  // 32 KiB message → 2 stripes < 4 rails
  World w(ClusterSpec{2, 1}, cfg);
  const std::size_t n = 32 * 1024;
  w.run([&](Communicator& c) {
    for (int iter = 0; iter < 4; ++iter) {
      if (c.rank() == 0) {
        auto data = payload(n, 0, iter);
        c.send(data.data(), n, BYTE, 1, iter);
      } else {
        std::vector<std::byte> got(n);
        c.recv(got.data(), n, BYTE, 0, iter);
        EXPECT_EQ(got, payload(n, 0, iter));
      }
    }
  });
  for (int h = 0; h < 2; ++h) {
    for (int p = 0; p < 2; ++p) {
      EXPECT_GE(w.fabric().hca(h).port(p).bytes_tx(), static_cast<std::uint64_t>(16 * 1024))
          << "rail h" << h << "p" << p << " never carried a stripe";
    }
  }
}

}  // namespace
}  // namespace ib12x::mvx
