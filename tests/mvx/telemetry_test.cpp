// Unit tests for the TelemetryRegistry: same-name handle aggregation (one
// handle per channel instance) and deterministic, sorted dumps.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mvx/telemetry.hpp"

namespace ib12x::mvx {
namespace {

TEST(Telemetry, SameNameCountersAggregate) {
  TelemetryRegistry tel;
  // Two channel instances (e.g. one per rank) register the same metric.
  Counter& a = tel.counter("net.eager_sent");
  Counter& b = tel.counter("net.eager_sent");
  a.inc();
  a.add(4);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(tel.counter_value("net.eager_sent"), 7u);
  EXPECT_EQ(tel.counter_value("no.such.metric"), 0u);
}

TEST(Telemetry, TrackMaxKeepsHighWaterMark) {
  TelemetryRegistry tel;
  Counter& c = tel.counter("matcher.reorder_depth_peak");
  c.track_max(3);
  c.track_max(1);
  EXPECT_EQ(c.value(), 3u);
  c.track_max(9);
  EXPECT_EQ(c.value(), 9u);
}

TEST(Telemetry, GaugesSampleLazilyAndAggregate) {
  TelemetryRegistry tel;
  double busy = 0;
  tel.gauge("ib.engine_busy", [&busy] { return busy; });
  tel.gauge("ib.engine_busy", [] { return 10.0; });

  busy = 32.0;  // changed after registration: snapshot must see the new value
  auto samples = tel.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "ib.engine_busy");
  EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
}

TEST(Telemetry, SnapshotIsSortedRegardlessOfRegistrationOrder) {
  TelemetryRegistry fwd;
  fwd.counter("a.first").inc(1);
  fwd.counter("m.middle").inc(2);
  fwd.counter("z.last").inc(3);

  TelemetryRegistry rev;
  rev.counter("z.last").inc(3);
  rev.counter("m.middle").inc(2);
  rev.counter("a.first").inc(1);

  auto s1 = fwd.snapshot();
  auto s2 = rev.snapshot();
  ASSERT_EQ(s1.size(), 3u);
  ASSERT_EQ(s2.size(), s1.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].name, s2[i].name);
    EXPECT_DOUBLE_EQ(s1[i].value, s2[i].value);
  }
  EXPECT_EQ(s1[0].name, "a.first");
  EXPECT_EQ(s1[2].name, "z.last");
}

TEST(Telemetry, DumpIsDeterministic) {
  auto render = [](bool reversed) {
    TelemetryRegistry tel;
    if (reversed) {
      tel.counter("rndv.rts_sent").inc(2);
      tel.counter("net.eager_sent").inc(5);
    } else {
      tel.counter("net.eager_sent").inc(5);
      tel.counter("rndv.rts_sent").inc(2);
    }
    char* buf = nullptr;
    std::size_t len = 0;
    std::FILE* f = open_memstream(&buf, &len);
    tel.dump(f, "test");
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
  };

  const std::string out = render(false);
  EXPECT_EQ(out, render(true));
  EXPECT_NE(out.find("net.eager_sent"), std::string::npos);
  EXPECT_NE(out.find("rndv.rts_sent"), std::string::npos);
  // Sorted: the net.* line precedes the rndv.* line.
  EXPECT_LT(out.find("net.eager_sent"), out.find("rndv.rts_sent"));
}

TEST(Telemetry, ScopedResetZeroesAndRestores) {
  TelemetryRegistry tel;
  Counter& a = tel.counter("layer.a");
  Counter& b = tel.counter("layer.b");
  a.inc(10);
  b.inc(3);
  {
    TelemetryRegistry::ScopedReset scope(tel);
    // Inside the scope each counter reads as if the registry were fresh, so
    // per-case assertions don't depend on what earlier cases did.
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
    a.inc(2);
    EXPECT_EQ(tel.counter_value("layer.a"), 2u);
  }
  // On exit the saved values come back and in-scope increments are kept:
  // the registry's global totals stay monotonic.
  EXPECT_EQ(a.value(), 12u);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Telemetry, ScopedResetLeavesCountersRegisteredInsideUntouched) {
  TelemetryRegistry tel;
  Counter& old_c = tel.counter("old");
  old_c.inc(7);
  Counter* fresh = nullptr;
  {
    TelemetryRegistry::ScopedReset scope(tel);
    fresh = &tel.counter("fresh");
    fresh->inc(4);
  }
  EXPECT_EQ(old_c.value(), 7u);
  EXPECT_EQ(fresh->value(), 4u);  // not part of the scope's save set
}

TEST(Telemetry, ScopedResetNests) {
  TelemetryRegistry tel;
  Counter& c = tel.counter("n");
  c.inc(5);
  {
    TelemetryRegistry::ScopedReset outer(tel);
    c.inc(1);
    {
      TelemetryRegistry::ScopedReset inner(tel);
      EXPECT_EQ(c.value(), 0u);
      c.inc(2);
    }
    EXPECT_EQ(c.value(), 3u);  // inner's save (1) + inner increments (2)
  }
  EXPECT_EQ(c.value(), 8u);
}

}  // namespace
}  // namespace ib12x::mvx
