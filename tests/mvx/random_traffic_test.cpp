// Randomized traffic property test: every rank issues a deterministic
// pseudo-random schedule of sends and receives (mixed sizes straddling the
// eager/rendezvous threshold, mixed blocking/non-blocking, shuffled posting
// order) and all payloads are verified byte-for-byte.  One failure class
// this catches that directed tests may not: cross-rail reordering windows,
// credit exhaustion under bursts, unexpected-queue interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"
#include "sim/rng.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

struct Plan {
  int src, dst, tag;
  std::size_t bytes;
  bool nonblocking;
};

/// Builds the identical global traffic plan on every rank from the seed.
std::vector<Plan> make_plan(std::uint64_t seed, int ranks, int messages) {
  sim::Rng rng(seed);
  std::vector<Plan> plan;
  for (int i = 0; i < messages; ++i) {
    Plan p;
    p.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
    p.dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks - 1)));
    if (p.dst >= p.src) ++p.dst;  // no self traffic
    p.tag = i;                    // unique tags keep verification exact
    // Sizes cluster around the 16 KiB threshold plus some large outliers.
    const std::uint64_t cls = rng.next_below(5);
    switch (cls) {
      case 0: p.bytes = rng.next_below(64); break;
      case 1: p.bytes = 1024 + rng.next_below(8 * 1024); break;
      case 2: p.bytes = 16 * 1024 - 32 + rng.next_below(64); break;  // straddle
      case 3: p.bytes = 32 * 1024 + rng.next_below(64 * 1024); break;
      default: p.bytes = 256 * 1024 + rng.next_below(256 * 1024); break;
    }
    p.nonblocking = rng.next_below(2) == 0;
    plan.push_back(p);
  }
  return plan;
}

void run_random_traffic(Config cfg, ClusterSpec spec, std::uint64_t seed, int messages) {
  World w(spec, cfg);
  w.run([&](Communicator& c) {
    const auto plan = make_plan(seed, c.size(), messages);
    // Receivers post irecvs in a seed-shuffled order (different from send
    // order), so some messages arrive unexpected and some wait.
    std::vector<std::size_t> my_recvs, my_sends;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].dst == c.rank()) my_recvs.push_back(i);
      if (plan[i].src == c.rank()) my_sends.push_back(i);
    }
    sim::Rng shuffle_rng(seed ^ (0xabcdu + static_cast<std::uint64_t>(c.rank())));
    for (std::size_t i = my_recvs.size(); i > 1; --i) {
      std::swap(my_recvs[i - 1], my_recvs[shuffle_rng.next_below(i)]);
    }

    std::vector<std::vector<std::byte>> rbufs(my_recvs.size());
    std::vector<Request> rreqs;
    for (std::size_t k = 0; k < my_recvs.size(); ++k) {
      const Plan& p = plan[my_recvs[k]];
      rbufs[k].resize(std::max<std::size_t>(p.bytes, 1));
      rreqs.push_back(c.irecv(rbufs[k].data(), p.bytes, BYTE, p.src, p.tag));
    }

    std::vector<std::vector<std::byte>> sbufs;
    std::vector<Request> sreqs;
    for (std::size_t idx : my_sends) {
      const Plan& p = plan[idx];
      sbufs.push_back(payload(std::max<std::size_t>(p.bytes, 1), p.src, p.tag));
      if (p.nonblocking) {
        sreqs.push_back(c.isend(sbufs.back().data(), p.bytes, BYTE, p.dst, p.tag));
      } else {
        c.send(sbufs.back().data(), p.bytes, BYTE, p.dst, p.tag);
      }
    }
    c.waitall(sreqs);
    c.waitall(rreqs);

    for (std::size_t k = 0; k < my_recvs.size(); ++k) {
      const Plan& p = plan[my_recvs[k]];
      if (p.bytes == 0) continue;
      EXPECT_EQ(rbufs[k], payload(p.bytes, p.src, p.tag))
          << "seed " << seed << " msg " << my_recvs[k] << " (" << p.src << "->" << p.dst
          << ", " << p.bytes << " B)";
    }
    c.barrier();
  });
}

class RandomTraffic : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomTraffic, AllPayloadsIntact) {
  const auto [seed, policy_idx] = GetParam();
  const Policy policies[] = {Policy::Binding, Policy::RoundRobin, Policy::EvenStriping,
                             Policy::EPC, Policy::Adaptive};
  Config cfg = Config::enhanced(4, policies[static_cast<std::size_t>(policy_idx)]);
  run_random_traffic(cfg, ClusterSpec{2, 2}, static_cast<std::uint64_t>(seed) * 7919 + 3,
                     /*messages=*/60);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndPolicies, RandomTraffic,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 5)));

TEST(RandomTraffic, SrqModeSurvivesBursts) {
  Config cfg = Config::enhanced(4, Policy::EPC);
  cfg.use_srq = true;
  cfg.eager_credits = 6;  // tight buffers force credit waits
  run_random_traffic(cfg, ClusterSpec{2, 2}, 0x5eed, 80);
}

TEST(RandomTraffic, TinyCreditsNeverDeadlock) {
  Config cfg = Config::enhanced(2, Policy::RoundRobin);
  cfg.eager_credits = 2;
  cfg.send_bounce_bufs = 3;
  run_random_traffic(cfg, ClusterSpec{2, 1}, 0xfeed, 50);
}

TEST(RandomTraffic, DeterministicAcrossRuns) {
  auto once = [] {
    World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
    sim::Time end = 0;
    w.run([&](Communicator& c) {
      const auto plan = make_plan(99, c.size(), 40);
      std::vector<std::vector<std::byte>> rbufs, sbufs;
      std::vector<Request> reqs;
      for (std::size_t i = 0; i < plan.size(); ++i) {
        const Plan& p = plan[i];
        if (p.dst == c.rank()) {
          rbufs.emplace_back(std::max<std::size_t>(p.bytes, 1));
          reqs.push_back(c.irecv(rbufs.back().data(), p.bytes, BYTE, p.src, p.tag));
        }
        if (p.src == c.rank()) {
          sbufs.push_back(payload(std::max<std::size_t>(p.bytes, 1), p.src, p.tag));
          reqs.push_back(c.isend(sbufs.back().data(), p.bytes, BYTE, p.dst, p.tag));
        }
      }
      c.waitall(reqs);
      c.barrier();
      end = c.now();
    });
    return w.end_time();
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace ib12x::mvx
