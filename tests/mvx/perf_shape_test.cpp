// Performance-shape invariants at the MPI level — the qualitative claims of
// the paper that must hold in the model before the figure harness means
// anything.  Absolute numbers are checked loosely; orderings strictly.
#include <gtest/gtest.h>

#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

/// One-way ping-pong latency (us) for `bytes`, averaged over `iters`.
double pingpong_us(const Config& cfg, std::size_t bytes, int iters = 60, int skip = 10) {
  World w(ClusterSpec{2, 1}, cfg);
  double result = 0;
  w.run([&](Communicator& c) {
    std::vector<std::byte> buf(std::max<std::size_t>(bytes, 1));
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) t0 = c.now();
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, BYTE, 1, 0);
        c.recv(buf.data(), bytes, BYTE, 1, 0);
      } else {
        c.recv(buf.data(), bytes, BYTE, 0, 0);
        c.send(buf.data(), bytes, BYTE, 0, 0);
      }
    }
    if (c.rank() == 0) {
      result = sim::to_us(c.now() - t0) / (2.0 * (iters - skip));
    }
  });
  return result;
}

/// Uni-directional windowed bandwidth (MB/s), paper §4.2 semantics.
double unibw_mbs(const Config& cfg, std::size_t bytes, int window = 64, int iters = 12,
                 int skip = 2) {
  World w(ClusterSpec{2, 1}, cfg);
  double result = 0;
  w.run([&](Communicator& c) {
    std::vector<std::byte> buf(bytes * 2);
    sim::Time t0 = 0;
    for (int i = 0; i < iters; ++i) {
      if (i == skip) t0 = c.now();
      if (c.rank() == 0) {
        std::vector<Request> reqs;
        for (int m = 0; m < window; ++m) reqs.push_back(c.isend(buf.data(), bytes, BYTE, 1, 0));
        c.waitall(reqs);
        std::byte ack;
        c.recv(&ack, 1, BYTE, 1, 1);
      } else {
        std::vector<Request> reqs;
        for (int m = 0; m < window; ++m) reqs.push_back(c.irecv(buf.data(), bytes, BYTE, 0, 0));
        c.waitall(reqs);
        std::byte ack{};
        c.send(&ack, 1, BYTE, 0, 1);
      }
    }
    if (c.rank() == 0) {
      const double secs = sim::to_s(c.now() - t0);
      result = static_cast<double>(bytes) * window * (iters - skip) / secs / 1e6;
    }
  });
  return result;
}

TEST(PerfShape, SmallLatencyEpcMatchesOriginal) {
  // Paper fig. 3: EPC adds negligible overhead for small messages.
  const double orig = pingpong_us(Config::original(), 8);
  const double epc = pingpong_us(Config::enhanced(4, Policy::EPC), 8);
  EXPECT_NEAR(epc, orig, orig * 0.05);
  // Sanity: a 2007-era small-message MPI latency lands in 3.5–6.5 us.
  EXPECT_GT(orig, 3.0);
  EXPECT_LT(orig, 7.0);
}

TEST(PerfShape, LargeLatencyStripingWins) {
  // Paper fig. 4: EPC/striping beat binding and RR by ~33% at 1 MiB.
  const double orig = pingpong_us(Config::original(), 1 << 20, 20, 4);
  const double epc = pingpong_us(Config::enhanced(4, Policy::EPC), 1 << 20, 20, 4);
  const double stripe = pingpong_us(Config::enhanced(4, Policy::EvenStriping), 1 << 20, 20, 4);
  const double rr = pingpong_us(Config::enhanced(4, Policy::RoundRobin), 1 << 20, 20, 4);
  const double bind = pingpong_us(Config::enhanced(4, Policy::Binding), 1 << 20, 20, 4);

  EXPECT_LT(epc, orig * 0.75);          // >= 25% better than original
  EXPECT_NEAR(epc, stripe, epc * 0.05); // EPC blocking == striping
  EXPECT_NEAR(rr, bind, rr * 0.10);     // RR/binding cannot split one message
  EXPECT_LT(epc, rr * 0.8);
}

TEST(PerfShape, UniBandwidthPeaks) {
  // Paper fig. 6 envelope: original ~1661 MB/s, EPC ~2745 MB/s at 1 MiB.
  const double orig = unibw_mbs(Config::original(), 1 << 20);
  const double epc = unibw_mbs(Config::enhanced(4, Policy::EPC), 1 << 20);
  EXPECT_GT(orig, 1450);
  EXPECT_LT(orig, 1800);
  EXPECT_GT(epc, 2450);
  EXPECT_LT(epc, 2950);
  EXPECT_GT(epc / orig, 1.5);  // the paper reports ~65%
}

TEST(PerfShape, MediumNonblockingStripingLosesToEpc) {
  // Paper fig. 6: even striping is clearly worse than EPC (== RR for
  // non-blocking) in the 16K–64K range, converging by 1 MiB.
  const double epc16 = unibw_mbs(Config::enhanced(4, Policy::EPC), 16 * 1024);
  const double str16 = unibw_mbs(Config::enhanced(4, Policy::EvenStriping), 16 * 1024);
  EXPECT_GT(epc16, str16 * 1.10);

  const double epc1m = unibw_mbs(Config::enhanced(4, Policy::EPC), 1 << 20);
  const double str1m = unibw_mbs(Config::enhanced(4, Policy::EvenStriping), 1 << 20);
  EXPECT_NEAR(epc1m, str1m, epc1m * 0.08);  // converged
}

TEST(PerfShape, SmallMessageRRGainsAppearAboveOneKb) {
  // Paper fig. 5: below ~1 KiB startup dominates and extra QPs don't help;
  // from 1–8 KiB the 4QP round-robin pulls ahead.
  const double orig8k = unibw_mbs(Config::original(), 8 * 1024);
  const double epc8k = unibw_mbs(Config::enhanced(4, Policy::EPC), 8 * 1024);
  EXPECT_GT(epc8k, orig8k * 1.25);

  const double orig128 = unibw_mbs(Config::original(), 128);
  const double epc128 = unibw_mbs(Config::enhanced(4, Policy::EPC), 128);
  EXPECT_LT(epc128, orig128 * 1.35);  // little room to win at 128 B
}

TEST(PerfShape, MoreQpsNeverHurtLatency) {
  for (std::size_t bytes : {8ul, 1024ul, 65536ul}) {
    const double q1 = pingpong_us(Config::enhanced(1, Policy::EPC), bytes, 30, 6);
    const double q4 = pingpong_us(Config::enhanced(4, Policy::EPC), bytes, 30, 6);
    EXPECT_LE(q4, q1 * 1.05) << bytes << " bytes";
  }
}

}  // namespace
}  // namespace ib12x::mvx
