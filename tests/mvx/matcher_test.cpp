// Unit tests for the Matcher in isolation: MPI wildcard matching, the
// per-(peer, ctx) reordering that restores ordering across rails, and
// probe semantics over the unexpected queue.
#include <gtest/gtest.h>

#include <vector>

#include "mvx/matcher.hpp"
#include "mvx/telemetry.hpp"

namespace ib12x::mvx {
namespace {

MsgHeader eager(int src, int tag, int ctx, std::uint32_t seq, std::uint64_t size = 0) {
  MsgHeader h;
  h.type = MsgType::Eager;
  h.src_rank = src;
  h.tag = tag;
  h.ctx = ctx;
  h.seq = seq;
  h.size = size;
  return h;
}

TEST(Matcher, WildcardSourceAndTag) {
  TelemetryRegistry tel;
  Matcher m(tel);

  Request any_src = make_request();
  Request any_tag = make_request();
  Request exact = make_request();
  m.post(exact, /*src=*/3, /*tag=*/7, /*ctx=*/0);
  m.post(any_src, /*src=*/-1, /*tag=*/9, /*ctx=*/0);
  m.post(any_tag, /*src=*/5, /*tag=*/-1, /*ctx=*/0);

  EXPECT_EQ(m.match_posted(eager(3, 7, 0, 0)), exact);
  EXPECT_EQ(m.match_posted(eager(8, 9, 0, 0)), any_src);   // ANY_SOURCE
  EXPECT_EQ(m.match_posted(eager(5, 123, 0, 0)), any_tag); // ANY_TAG
  EXPECT_EQ(m.match_posted(eager(3, 7, 0, 1)), nullptr);   // queue drained
  EXPECT_EQ(m.posted_count(), 0u);
}

TEST(Matcher, PostedQueueScansInPostOrder) {
  TelemetryRegistry tel;
  Matcher m(tel);

  Request first = make_request();
  Request second = make_request();
  m.post(first, -1, -1, 0);
  m.post(second, 2, 4, 0);

  // Both match; MPI requires the earliest-posted receive to win.
  EXPECT_EQ(m.match_posted(eager(2, 4, 0, 0)), first);
  EXPECT_EQ(m.match_posted(eager(2, 4, 0, 1)), second);
}

TEST(Matcher, ContextsNeverCrossMatch) {
  TelemetryRegistry tel;
  Matcher m(tel);

  Request r = make_request();
  m.post(r, -1, -1, /*ctx=*/1);
  EXPECT_EQ(m.match_posted(eager(0, 0, /*ctx=*/0, 0)), nullptr);
  EXPECT_EQ(m.match_posted(eager(0, 0, /*ctx=*/1, 0)), r);
}

TEST(Matcher, OutOfOrderArrivalsDeliverInSequence) {
  TelemetryRegistry tel;
  Matcher m(tel);

  // Arrivals racing across rails land as 2, 0, 1.
  EXPECT_TRUE(m.sequence(/*peer=*/4, eager(4, 0, 0, /*seq=*/2), {}).empty());
  EXPECT_EQ(m.reorder_count(), 1u);

  auto head = m.sequence(4, eager(4, 0, 0, /*seq=*/0), {});
  ASSERT_EQ(head.size(), 1u);
  EXPECT_EQ(head[0].hdr.seq, 0u);

  // seq 1 closes the gap: it and the parked seq 2 drain together, in order.
  auto rest = m.sequence(4, eager(4, 0, 0, /*seq=*/1), {});
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].hdr.seq, 1u);
  EXPECT_EQ(rest[1].hdr.seq, 2u);
  EXPECT_EQ(m.reorder_count(), 0u);
  EXPECT_EQ(tel.counter_value("matcher.reorder_parked"), 1u);
}

TEST(Matcher, SequencingIsPerPeerAndContext) {
  TelemetryRegistry tel;
  Matcher m(tel);

  // Peer 1's seq 0 is deliverable regardless of peer 2's parked message.
  EXPECT_TRUE(m.sequence(2, eager(2, 0, 0, 1), {}).empty());
  EXPECT_EQ(m.sequence(1, eager(1, 0, 0, 0), {}).size(), 1u);
  // Same peer, different ctx: independent sequence spaces.
  EXPECT_EQ(m.sequence(2, eager(2, 0, /*ctx=*/3, 0), {}).size(), 1u);
  EXPECT_EQ(m.reorder_count(), 1u);
}

TEST(Matcher, SendSeqCountsPerPeerCtx) {
  TelemetryRegistry tel;
  Matcher m(tel);
  EXPECT_EQ(m.next_send_seq(1, 0, 0), 0u);
  EXPECT_EQ(m.next_send_seq(1, 0, 0), 1u);
  EXPECT_EQ(m.next_send_seq(1, 5, 0), 0u);  // fresh ctx
  EXPECT_EQ(m.next_send_seq(2, 0, 0), 0u);  // fresh peer
  EXPECT_EQ(m.next_send_seq(1, 0, 1), 0u);  // fresh vci
}

TEST(Matcher, ProbeSeesUnexpectedWithoutConsuming) {
  TelemetryRegistry tel;
  Matcher m(tel);

  Status st;
  EXPECT_FALSE(m.iprobe(-1, -1, 0, &st));

  m.store_unexpected({eager(3, 9, 0, 0, /*size=*/256), std::vector<std::byte>(256)});
  EXPECT_FALSE(m.iprobe(3, 8, 0, &st));  // tag mismatch
  EXPECT_FALSE(m.iprobe(3, 9, 1, &st));  // ctx mismatch

  ASSERT_TRUE(m.iprobe(-1, 9, 0, &st));  // wildcard source
  EXPECT_EQ(st.source, 3);
  EXPECT_EQ(st.tag, 9);
  EXPECT_EQ(st.bytes, 256);
  EXPECT_EQ(m.unexpected_count(), 1u);  // probe does not consume

  auto claimed = m.claim_unexpected(3, -1, 0);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->payload.size(), 256u);
  EXPECT_EQ(m.unexpected_count(), 0u);
  EXPECT_FALSE(m.iprobe(-1, -1, 0, &st));
}

TEST(Matcher, ClaimUnexpectedHonoursArrivalOrder) {
  TelemetryRegistry tel;
  Matcher m(tel);

  m.store_unexpected({eager(1, 5, 0, 0, 10), {}});
  m.store_unexpected({eager(2, 5, 0, 0, 20), {}});

  auto got = m.claim_unexpected(-1, 5, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->hdr.src_rank, 1);  // earliest arrival wins under wildcards
  EXPECT_EQ(m.claim_unexpected(-1, 5, 0)->hdr.src_rank, 2);
  EXPECT_FALSE(m.claim_unexpected(-1, 5, 0).has_value());
}

}  // namespace
}  // namespace ib12x::mvx
