// Collective algorithm variants: all algorithms must agree bit-for-bit, and
// the Auto selection must pick the latency winner for small blocks and the
// bandwidth winner for large vectors.
#include <gtest/gtest.h>

#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using A2A = coll::AlltoallAlgo;
using AR = coll::AllreduceAlgo;

std::vector<std::int32_t> run_alltoall(A2A algo, ClusterSpec spec, std::size_t per_ints) {
  Config cfg = Config::enhanced(4, Policy::EPC);
  cfg.coll.alltoall_algo = algo;
  World w(spec, cfg);
  std::vector<std::int32_t> rank0;
  w.run([&](Communicator& c) {
    const int p = c.size();
    std::vector<std::int32_t> send(per_ints * static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      for (std::size_t i = 0; i < per_ints; ++i) {
        send[static_cast<std::size_t>(d) * per_ints + i] =
            c.rank() * 10000 + d * 100 + static_cast<std::int32_t>(i % 97);
      }
    }
    std::vector<std::int32_t> recv(per_ints * static_cast<std::size_t>(p), -1);
    c.alltoall(send.data(), recv.data(), per_ints, INT32);
    for (int s = 0; s < p; ++s) {
      for (std::size_t i = 0; i < per_ints; ++i) {
        ASSERT_EQ(recv[static_cast<std::size_t>(s) * per_ints + i],
                  s * 10000 + c.rank() * 100 + static_cast<std::int32_t>(i % 97))
            << "algo block from " << s;
      }
    }
    if (c.rank() == 0) rank0 = recv;
  });
  return rank0;
}

TEST(CollAlgo, BruckMatchesPairwise) {
  for (ClusterSpec spec : {ClusterSpec{2, 2}, ClusterSpec{2, 3}, ClusterSpec{2, 4}, ClusterSpec{3, 1}}) {
    for (std::size_t per : {1ul, 16ul, 300ul}) {
      auto a = run_alltoall(A2A::Pairwise, spec, per);
      auto b = run_alltoall(A2A::Bruck, spec, per);
      EXPECT_EQ(a, b) << spec.nodes << "x" << spec.procs_per_node << " per=" << per;
    }
  }
}

TEST(CollAlgo, BruckFasterForTinyBlocksAtEightRanks) {
  auto timed = [](A2A algo) {
    Config cfg = Config::enhanced(4, Policy::EPC);
    cfg.coll.alltoall_algo = algo;
    World w(ClusterSpec{2, 4}, cfg);
    sim::Time end = 0;
    w.run([&](Communicator& c) {
      std::vector<std::byte> s(64 * static_cast<std::size_t>(c.size()));
      std::vector<std::byte> r(64 * static_cast<std::size_t>(c.size()));
      for (int i = 0; i < 20; ++i) c.alltoall(s.data(), r.data(), 64, BYTE);
      end = c.now();
    });
    return static_cast<double>(end);
  };
  EXPECT_LT(timed(A2A::Bruck), timed(A2A::Pairwise));
}

double run_allreduce(AR algo, ClusterSpec spec, std::size_t n, sim::Time* elapsed) {
  Config cfg = Config::enhanced(4, Policy::EPC);
  cfg.coll.allreduce_algo = algo;
  World w(spec, cfg);
  double sample = 0;
  w.run([&](Communicator& c) {
    std::vector<double> mine(n), out(n);
    for (std::size_t i = 0; i < n; ++i) mine[i] = c.rank() + 0.5 * static_cast<double>(i % 13);
    const sim::Time t0 = c.now();
    c.allreduce(mine.data(), out.data(), n, DOUBLE, Op::Sum);
    if (c.rank() == 0) {
      sample = out[n / 2];
      if (elapsed != nullptr) *elapsed = c.now() - t0;
    }
    // Verify the whole vector on every rank.
    const int p = c.size();
    for (std::size_t i = 0; i < n; i += 101) {
      ASSERT_DOUBLE_EQ(out[i], p * (p - 1) / 2.0 + p * 0.5 * static_cast<double>(i % 13));
    }
  });
  return sample;
}

TEST(CollAlgo, AllreduceVariantsAgree) {
  for (ClusterSpec spec : {ClusterSpec{2, 2}, ClusterSpec{2, 3}}) {
    for (std::size_t n : {7ul, 1000ul, 40000ul}) {
      const double a = run_allreduce(AR::ReduceBcast, spec, n, nullptr);
      const double b = run_allreduce(AR::Rabenseifner, spec, n, nullptr);
      EXPECT_DOUBLE_EQ(a, b);
      if (spec.total_ranks() == 4) {
        const double c = run_allreduce(AR::RecursiveDoubling, spec, n, nullptr);
        EXPECT_DOUBLE_EQ(a, c);
      }
    }
  }
}

TEST(CollAlgo, RabenseifnerWinsForLongVectors) {
  sim::Time rd = 0, rab = 0;
  run_allreduce(AR::RecursiveDoubling, ClusterSpec{2, 2}, 200000, &rd);
  run_allreduce(AR::Rabenseifner, ClusterSpec{2, 2}, 200000, &rab);
  EXPECT_LT(rab, rd);
}

TEST(CollAlgo, RecursiveDoublingWinsForShortVectors) {
  sim::Time rd = 0, rab = 0;
  run_allreduce(AR::RecursiveDoubling, ClusterSpec{2, 2}, 16, &rd);
  run_allreduce(AR::Rabenseifner, ClusterSpec{2, 2}, 16, &rab);
  EXPECT_LT(rd, rab);
}

TEST(CollAlgo, AutoSelectionNeverLosesBadly) {
  // Auto must track the better variant within 10% at both extremes.
  for (std::size_t n : {16ul, 200000ul}) {
    sim::Time t_auto = 0, rd = 0, rab = 0;
    run_allreduce(AR::Auto, ClusterSpec{2, 2}, n, &t_auto);
    run_allreduce(AR::RecursiveDoubling, ClusterSpec{2, 2}, n, &rd);
    run_allreduce(AR::Rabenseifner, ClusterSpec{2, 2}, n, &rab);
    EXPECT_LE(static_cast<double>(t_auto), static_cast<double>(std::min(rd, rab)) * 1.10) << n;
  }
}

}  // namespace
}  // namespace ib12x::mvx
