// Unit tests for the rendezvous pin-down cache: exact vs interval lookup,
// LRU eviction against the byte budget with real MR deregistration, and
// pin-protected (zombie) entries.
#include <gtest/gtest.h>

#include <vector>

#include "ib/fabric.hpp"
#include "ib/hca.hpp"
#include "mvx/pin_cache.hpp"
#include "sim/simulator.hpp"

namespace ib12x::mvx {
namespace {

struct CacheFixture {
  sim::Simulator sim;
  ib::Fabric fabric{sim};
  ib::Hca* hca = &fabric.add_hca(0);
  std::vector<ib::Hca*> hcas{hca};
  TelemetryRegistry tel;
  Counter& hits = tel.counter("hits");
  Counter& misses = tel.counter("misses");
  Counter& evictions = tel.counter("evictions");

  PinCache make(bool interval, std::int64_t capacity = 0) {
    PinCache::Options o;
    o.interval = interval;
    o.capacity = capacity;
    return PinCache(hcas, o, hits, misses, evictions);
  }
};

TEST(PinCache, IntervalHitFromInteriorPointer) {
  CacheFixture fx;
  PinCache c = fx.make(/*interval=*/true);
  std::vector<std::byte> buf(1 << 20);

  sim::Time cost = 0;
  auto* whole = c.acquire(buf.data(), 1 << 20, &cost);
  EXPECT_EQ(fx.misses.value(), 1u);

  // A send from an interior pointer of the pinned region must hit.
  auto* inner = c.acquire(buf.data() + 4096, 64 * 1024, &cost);
  EXPECT_EQ(inner, whole);
  EXPECT_EQ(fx.hits.value(), 1u);
  EXPECT_EQ(fx.hca->mem().region_count(), 1u);

  // Past the end of the pinned region: a genuine miss.
  c.acquire(buf.data() + (1 << 20) - 64, 128, &cost);
  EXPECT_EQ(fx.misses.value(), 2u);
}

TEST(PinCache, ExactModeMissesInteriorPointer) {
  CacheFixture fx;
  PinCache c = fx.make(/*interval=*/false);
  std::vector<std::byte> buf(64 * 1024);

  sim::Time cost = 0;
  c.acquire(buf.data(), 64 * 1024, &cost);
  // Legacy exact-pointer cache: same bytes, different base → miss.
  c.acquire(buf.data() + 1024, 32 * 1024, &cost);
  EXPECT_EQ(fx.hits.value(), 0u);
  EXPECT_EQ(fx.misses.value(), 2u);

  // Same base, fits → hit; same base, larger → re-registration.
  c.acquire(buf.data(), 16 * 1024, &cost);
  EXPECT_EQ(fx.hits.value(), 1u);
}

TEST(PinCache, LruEvictionDeregistersUnpinned) {
  CacheFixture fx;
  PinCache c = fx.make(/*interval=*/true, /*capacity=*/256 * 1024);
  std::vector<std::vector<std::byte>> bufs;
  for (int i = 0; i < 8; ++i) bufs.emplace_back(64 * 1024);

  sim::Time cost = 0;
  std::vector<PinCache::Region*> regions;
  for (auto& b : bufs) {
    regions.push_back(c.acquire(b.data(), 64 * 1024, &cost));
  }
  // Releasing as we go would let eviction keep up; release all now and top
  // up once more to trigger the LRU sweep.
  for (auto* r : regions) c.release(r);
  std::vector<std::byte> extra(64 * 1024);
  c.release(c.acquire(extra.data(), 64 * 1024, &cost));

  EXPECT_GT(fx.evictions.value(), 0u);
  EXPECT_LE(c.resident_bytes(), 256 * 1024);
  // Every evicted interval was really deregistered from the HCA domain.
  EXPECT_EQ(fx.hca->mem().region_count(), c.entries());
}

TEST(PinCache, PinnedRegionsSurviveEvictionUntilRelease) {
  CacheFixture fx;
  PinCache c = fx.make(/*interval=*/true, /*capacity=*/64 * 1024);
  std::vector<std::byte> a(64 * 1024), b(64 * 1024);

  sim::Time cost = 0;
  auto* ra = c.acquire(a.data(), 64 * 1024, &cost);  // still pinned
  auto* rb = c.acquire(b.data(), 64 * 1024, &cost);  // over budget now
  // `a` is over-LRU but pinned: it must not be deregistered while the
  // hardware may still be using it.
  EXPECT_EQ(fx.hca->mem().region_count(), 2u);
  const ib::RKey rkey_a = ra->mr[0].rkey;
  EXPECT_NE(fx.hca->mem().translate_rkey(rkey_a, ra->base, 64 * 1024), nullptr);

  c.release(rb);
  c.release(ra);
  // Under-budget again only once the unpinned LRU sweep can actually run.
  std::vector<std::byte> d(64 * 1024);
  c.release(c.acquire(d.data(), 64 * 1024, &cost));
  EXPECT_GT(fx.evictions.value(), 0u);
}

TEST(PinCache, RegistrationCostsChargePagesOnMiss) {
  CacheFixture fx;
  PinCache::Options o;
  o.interval = true;
  o.hit_cpu = 50;
  o.miss_cpu = 450;
  o.page_cpu = 100;
  PinCache c(fx.hcas, o, fx.hits, fx.misses, fx.evictions);

  std::vector<std::byte> buf(8192);
  sim::Time cost = 0;
  c.acquire(buf.data(), 8192, &cost);
  EXPECT_EQ(cost, 450 + 2 * 100);  // flat + 2 pages
  cost = 0;
  c.acquire(buf.data(), 4096, &cost);
  EXPECT_EQ(cost, 50);  // interval hit
}

}  // namespace
}  // namespace ib12x::mvx
