// The collective schedule engine: non-blocking collectives, overlap with
// compute, overlapping collectives on several communicators, the multi-lane
// decomposition, the tag-ring wraparound fix, and waitany/waitsome.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "mvx/coll/tags.hpp"
#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

// ---------------------------------------------------------------- tag ring

TEST(TagRing, TagLayoutAndReserve) {
  coll::TagRing ring;
  coll::TagRing::Block b0 = ring.reserve();
  EXPECT_EQ(b0.slot, 0);
  EXPECT_EQ(b0.tag(0), coll::TagRing::kCollectiveBit);
  EXPECT_EQ(b0.tag(5), coll::TagRing::kCollectiveBit | 5);
  coll::TagRing::Block b1 = ring.reserve();
  EXPECT_EQ(b1.slot, 1);
  EXPECT_EQ(b1.tag(0), coll::TagRing::kCollectiveBit | (1 << coll::TagRing::kIndexBits));
  // Tags of different slots can never collide.
  EXPECT_NE(b0.tag(coll::TagRing::kTagsPerSlot - 1), b1.tag(0));
  EXPECT_THROW(b0.tag(coll::TagRing::kTagsPerSlot), std::exception);
  EXPECT_EQ(ring.active(), 2);
  ring.release(b0.slot);
  ring.release(b1.slot);
  EXPECT_EQ(ring.active(), 0);
}

TEST(TagRing, WrapBoundaryBusyAndRelease) {
  coll::TagRing ring;
  coll::TagRing::Block held = ring.reserve();  // slot 0, still in flight
  // 2^16 collectives later the sequence wraps back onto slot 0.
  ring.set_seq_for_test(coll::TagRing::kSlots);
  EXPECT_EQ(ring.next_slot(), held.slot);
  EXPECT_TRUE(ring.next_busy());
  ring.release(held.slot);
  EXPECT_FALSE(ring.next_busy());
  coll::TagRing::Block again = ring.reserve();
  EXPECT_EQ(again.slot, 0);
  // Same slot, same tag values: tags are a pure function of the sequence.
  EXPECT_EQ(again.tag(0), held.tag(0));
}

TEST(CollEngine, CollectivesAgreeAcrossTagWrap) {
  // Jump every rank's ring to just below the wrap boundary and run
  // collectives across it: tags keep matching because the slot is a pure
  // function of the shared per-comm sequence.
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    c.debug_tag_ring().set_seq_for_test(coll::TagRing::kSlots - 3);
    const int p = c.size();
    for (int i = 0; i < 8; ++i) {
      std::int64_t mine = c.rank() + 1 + i;
      std::int64_t sum = 0;
      c.allreduce(&mine, &sum, 1, INT64, Op::Sum);
      ASSERT_EQ(sum, p * (p + 1) / 2 + p * i);
    }
    EXPECT_GE(c.debug_tag_ring().seq(), coll::TagRing::kSlots);
    EXPECT_EQ(c.debug_tag_ring().active(), 0);
  });
}

// ------------------------------------------------- non-blocking collectives

TEST(CollEngine, NonBlockingCollectivesProduceBlockingResults) {
  for (ClusterSpec spec : {ClusterSpec{2, 2}, ClusterSpec{2, 3}}) {  // pow2 and not
    World w(spec, Config::enhanced(4, Policy::EPC));
    w.run([](Communicator& c) {
      const int p = c.size();
      const std::size_t n = 257;  // odd, so lanes/blocks do not divide evenly

      // ibarrier
      Request b = c.ibarrier();
      c.wait(b);

      // ibcast
      std::vector<std::int32_t> bc(n);
      if (c.rank() == 1 % p) {
        for (std::size_t i = 0; i < n; ++i) bc[i] = static_cast<std::int32_t>(3 * i + 7);
      }
      Request rb = c.ibcast(bc.data(), n, INT32, 1 % p);
      c.wait(rb);
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(bc[i], static_cast<std::int32_t>(3 * i + 7));

      // ireduce
      std::vector<std::int64_t> rin(n), rout(n, -1);
      for (std::size_t i = 0; i < n; ++i) rin[i] = c.rank() + static_cast<std::int64_t>(i);
      Request rr = c.ireduce(rin.data(), rout.data(), n, INT64, Op::Sum, 0);
      c.wait(rr);
      if (c.rank() == 0) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(rout[i], p * (p - 1) / 2 + p * static_cast<std::int64_t>(i));
        }
      }

      // iallreduce
      std::vector<double> ain(n), aout(n);
      for (std::size_t i = 0; i < n; ++i) ain[i] = c.rank() + 0.25 * static_cast<double>(i % 7);
      Request ra = c.iallreduce(ain.data(), aout.data(), n, DOUBLE, Op::Sum);
      c.wait(ra);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(aout[i], p * (p - 1) / 2.0 + p * 0.25 * static_cast<double>(i % 7));
      }

      // iallgather
      std::vector<std::int32_t> gin(n), gout(n * static_cast<std::size_t>(p), -1);
      for (std::size_t i = 0; i < n; ++i) gin[i] = c.rank() * 1000 + static_cast<std::int32_t>(i);
      Request rg = c.iallgather(gin.data(), gout.data(), n, INT32);
      c.wait(rg);
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(gout[static_cast<std::size_t>(r) * n + i],
                    r * 1000 + static_cast<std::int32_t>(i));
        }
      }

      // ialltoall
      std::vector<std::int32_t> tin(n * static_cast<std::size_t>(p)),
          tout(n * static_cast<std::size_t>(p), -1);
      for (int d = 0; d < p; ++d) {
        for (std::size_t i = 0; i < n; ++i) {
          tin[static_cast<std::size_t>(d) * n + i] =
              c.rank() * 10000 + d * 100 + static_cast<std::int32_t>(i % 89);
        }
      }
      Request rt = c.ialltoall(tin.data(), tout.data(), n, INT32);
      c.wait(rt);
      for (int s = 0; s < p; ++s) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(tout[static_cast<std::size_t>(s) * n + i],
                    s * 10000 + c.rank() * 100 + static_cast<std::int32_t>(i % 89));
        }
      }
    });
  }
}

TEST(CollEngine, OverlappingCollectivesOnOneCommunicator) {
  // Two non-blocking collectives in flight on the same communicator draw
  // tags from distinct slots, so their transfers cannot cross-match.
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    const std::size_t n = 2048;
    std::vector<double> ain(n, 1.0 + c.rank()), aout(n);
    std::vector<std::int32_t> bc(n);
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < n; ++i) bc[i] = static_cast<std::int32_t>(i ^ 0x55);
    }
    Request ra = c.iallreduce(ain.data(), aout.data(), n, DOUBLE, Op::Sum);
    Request rb = c.ibcast(bc.data(), n, INT32, 0);
    Request rbar = c.ibarrier();
    std::vector<Request> reqs{ra, rb, rbar};
    c.waitall(reqs);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(aout[i], p + p * (p - 1) / 2.0);
      ASSERT_EQ(bc[i], static_cast<std::int32_t>(i ^ 0x55));
    }
    EXPECT_EQ(c.debug_tag_ring().active(), 0);
  });
}

TEST(CollEngine, OverlappingCollectivesOnDupAndSplitComms) {
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    Communicator d = c.dup();

    // One collective per communicator, all in flight at once.
    std::int64_t one = c.rank() + 1, sum_c = 0, sum_d = 0;
    Request ra = c.iallreduce(&one, &sum_c, 1, INT64, Op::Sum);
    Request rb = d.iallreduce(&one, &sum_d, 1, INT64, Op::Max);
    c.wait(ra);
    c.wait(rb);
    ASSERT_EQ(sum_c, p * (p + 1) / 2);
    ASSERT_EQ(sum_d, p);

    // Split into node halves; subcomm collective overlapped with a parent
    // barrier.
    Communicator s = c.split(c.rank() / 2, c.rank());
    ASSERT_EQ(s.size(), 2);
    std::int64_t sub_sum = 0;
    Request rs = s.iallreduce(&one, &sub_sum, 1, INT64, Op::Sum);
    Request rbar = c.ibarrier();
    c.wait(rs);
    c.wait(rbar);
    const std::int64_t lo = (c.rank() / 2) * 2;  // ranks lo, lo+1 share my color
    ASSERT_EQ(sub_sum, (lo + 1) + (lo + 2));
  });
}

TEST(CollEngine, IallreduceOverlapsWithComputeAtLeastHalf) {
  // Acceptance criterion: a non-blocking allreduce overlapped with compute()
  // must hide at least 50% of its standalone time.
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  constexpr std::size_t n = 32768;  // 256 KiB of doubles
  w.run([](Communicator& c) {
    std::vector<double> in(n, 1.0 + c.rank()), out(n);

    // Standalone collective time, agreed across ranks.
    c.barrier();
    const sim::Time t0 = c.now();
    c.allreduce(in.data(), out.data(), n, DOUBLE, Op::Sum);
    std::int64_t mine = static_cast<std::int64_t>(c.now() - t0);
    std::int64_t t_coll = 0;
    c.allreduce(&mine, &t_coll, 1, INT64, Op::Max);

    const sim::Time t_compute = static_cast<sim::Time>(2 * t_coll);
    c.barrier();
    const sim::Time t1 = c.now();
    Request r = c.iallreduce(in.data(), out.data(), n, DOUBLE, Op::Sum);
    c.compute(t_compute);
    c.wait(r);
    std::int64_t total_mine = static_cast<std::int64_t>(c.now() - t1);
    std::int64_t t_total = 0;
    c.allreduce(&total_mine, &t_total, 1, INT64, Op::Max);

    // hidden fraction = (t_coll + t_compute - t_total) / t_coll >= 0.5
    EXPECT_LE(static_cast<double>(t_total),
              static_cast<double>(t_compute) + 0.5 * static_cast<double>(t_coll))
        << "t_coll=" << t_coll << " t_total=" << t_total;
    const int p = c.size();
    for (std::size_t i = 0; i < n; i += 997) {
      ASSERT_DOUBLE_EQ(out[i], p + p * (p - 1) / 2.0);
    }
  });
}

TEST(CollEngine, IbcastOverlapsWithCompute) {
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  constexpr std::size_t kBytes = 1 << 18;
  w.run([](Communicator& c) {
    std::vector<std::byte> buf(kBytes);
    if (c.rank() == 0) buf = testutil::payload(kBytes, 0, 42);

    c.barrier();
    const sim::Time t0 = c.now();
    c.bcast(buf.data(), kBytes, BYTE, 0);
    std::int64_t mine = static_cast<std::int64_t>(c.now() - t0);
    std::int64_t t_coll = 0;
    c.allreduce(&mine, &t_coll, 1, INT64, Op::Max);

    c.barrier();
    const sim::Time t1 = c.now();
    Request r = c.ibcast(buf.data(), kBytes, BYTE, 0);
    c.compute(static_cast<sim::Time>(2 * t_coll));
    c.wait(r);
    std::int64_t total_mine = static_cast<std::int64_t>(c.now() - t1);
    std::int64_t t_total = 0;
    c.allreduce(&total_mine, &t_total, 1, INT64, Op::Max);

    // Some of the broadcast must hide behind the compute.
    EXPECT_LT(t_total, 2 * t_coll + t_coll);
    const std::vector<std::byte> want = testutil::payload(kBytes, 0, 42);
    ASSERT_EQ(buf, want);
  });
}

// ------------------------------------------------------------- multi-lane

sim::Time timed_bcast(int lanes, ClusterSpec spec, std::size_t bytes) {
  Config cfg = Config::enhanced(4, Policy::EPC);  // 4 rails per peer pair
  cfg.coll.lanes = lanes;
  World w(spec, cfg);
  sim::Time t = 0;
  w.run([&](Communicator& c) {
    std::vector<std::byte> buf(bytes);
    if (c.rank() == 0) buf = testutil::payload(bytes, 0, 9);
    c.barrier();
    const sim::Time t0 = c.now();
    c.bcast(buf.data(), bytes, BYTE, 0);
    c.barrier();
    if (c.rank() == 0) t = c.now() - t0;
    const std::vector<std::byte> want = testutil::payload(bytes, 0, 9);
    ASSERT_EQ(buf, want) << "lanes=" << lanes;
  });
  return t;
}

TEST(CollMultiLane, BcastCorrectAllWidths) {
  for (ClusterSpec spec : {ClusterSpec{2, 2}, ClusterSpec{2, 3}}) {
    for (int lanes : {0, 2, 3}) {
      timed_bcast(lanes, spec, (1 << 20) + 13);  // non-divisible payload
    }
  }
}

TEST(CollMultiLane, BcastBeatsSingleLaneAtOneMiB) {
  // Acceptance criterion: multi-lane bcast beats the single-lane binomial
  // for >= 1 MiB payloads on the 4-rail configuration.
  const sim::Time multi = timed_bcast(/*lanes=*/0, ClusterSpec{2, 2}, 1 << 20);
  const sim::Time single = timed_bcast(/*lanes=*/1, ClusterSpec{2, 2}, 1 << 20);
  EXPECT_LT(multi, single);
}

TEST(CollMultiLane, AllreduceCorrectIncludingNonPow2) {
  for (ClusterSpec spec : {ClusterSpec{2, 2}, ClusterSpec{2, 3}}) {
    Config cfg = Config::enhanced(4, Policy::EPC);
    cfg.coll.lanes = 0;  // one lane per rail
    World w(spec, cfg);
    w.run([](Communicator& c) {
      const int p = c.size();
      const std::size_t n = 50000;  // 400 KB >= lane_threshold, odd split
      std::vector<double> in(n), out(n);
      for (std::size_t i = 0; i < n; ++i) in[i] = c.rank() + 0.5 * static_cast<double>(i % 11);
      c.allreduce(in.data(), out.data(), n, DOUBLE, Op::Sum);
      for (std::size_t i = 0; i < n; i += 239) {
        ASSERT_DOUBLE_EQ(out[i], p * (p - 1) / 2.0 + p * 0.5 * static_cast<double>(i % 11));
      }
    });
  }
}

// -------------------------------------------------------- waitany/waitsome

TEST(WaitAnySome, WaitanyReturnsCompletedIndex) {
  World w = testutil::make_pair_world(Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    constexpr std::size_t kBytes = 4096;
    if (c.rank() == 0) {
      std::vector<std::byte> b1(kBytes), b2(kBytes), b3(kBytes);
      std::vector<Request> reqs{c.irecv(b1.data(), kBytes, BYTE, 1, 1),
                                c.irecv(b2.data(), kBytes, BYTE, 1, 2),
                                c.irecv(b3.data(), kBytes, BYTE, 1, 3)};
      // Only tag 2 is in flight: waitany must return its index.
      const int first = c.waitany(reqs);
      EXPECT_EQ(first, 1);
      EXPECT_TRUE(c.test(reqs[1]));
      std::byte go{1};
      c.send(&go, 1, BYTE, 1, 99);
      c.waitall(reqs);
      EXPECT_EQ(b2, testutil::payload(kBytes, 1, 2));
      EXPECT_EQ(b1, testutil::payload(kBytes, 1, 1));
      EXPECT_EQ(b3, testutil::payload(kBytes, 1, 3));
      // With everything complete, waitany returns the lowest done index.
      EXPECT_EQ(c.waitany(reqs), 0);
    } else {
      auto p2 = testutil::payload(kBytes, 1, 2);
      c.send(p2.data(), kBytes, BYTE, 0, 2);
      std::byte go{};
      c.recv(&go, 1, BYTE, 0, 99);
      auto p1 = testutil::payload(kBytes, 1, 1);
      auto p3 = testutil::payload(kBytes, 1, 3);
      c.send(p1.data(), kBytes, BYTE, 0, 1);
      c.send(p3.data(), kBytes, BYTE, 0, 3);
    }
    EXPECT_EQ(c.waitany({}), -1);
    EXPECT_TRUE(c.waitsome({}).empty());
  });
}

TEST(WaitAnySome, WaitsomeReturnsNonEmptyCompletedSubset) {
  World w = testutil::make_pair_world(Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    constexpr std::size_t kBytes = 512;
    if (c.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(kBytes));
      std::vector<Request> reqs;
      for (int t = 0; t < 4; ++t) reqs.push_back(c.irecv(bufs[t].data(), kBytes, BYTE, 1, t));
      std::vector<int> done = c.waitsome(reqs);
      ASSERT_FALSE(done.empty());
      for (int i : done) EXPECT_TRUE(c.test(reqs[static_cast<std::size_t>(i)]));
      c.waitall(reqs);
      for (int t = 0; t < 4; ++t) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(t)], testutil::payload(kBytes, 1, t));
      }
      // All done: waitsome returns every index.
      EXPECT_EQ(c.waitsome(reqs), (std::vector<int>{0, 1, 2, 3}));
    } else {
      for (int t = 0; t < 4; ++t) {
        auto p = testutil::payload(kBytes, 1, t);
        c.send(p.data(), kBytes, BYTE, 0, t);
      }
    }
  });
}

TEST(WaitAnySome, WaitanyOnCollectiveRequests) {
  World w(ClusterSpec{2, 2}, Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    std::int64_t one = 1, sum = 0;
    std::vector<Request> reqs{c.iallreduce(&one, &sum, 1, INT64, Op::Sum), c.ibarrier()};
    const int first = c.waitany(reqs);
    ASSERT_TRUE(first == 0 || first == 1);
    c.waitall(reqs);
    EXPECT_EQ(sum, p);
  });
}

}  // namespace
}  // namespace ib12x::mvx
