// Intra-node (shared-memory channel) messaging and communicator management.
#include <gtest/gtest.h>

#include <vector>

#include "mvx/mpi.hpp"
#include "mvx_test_util.hpp"

namespace ib12x::mvx {
namespace {

using testutil::payload;

TEST(Shm, IntraNodeRoundTrip) {
  World w(ClusterSpec{1, 2}, Config{});
  w.run([](Communicator& c) {
    if (c.rank() == 0) {
      auto data = payload(4096, 0);
      c.send(data.data(), 4096, BYTE, 1, 1);
    } else {
      std::vector<std::byte> got(4096);
      c.recv(got.data(), 4096, BYTE, 0, 1);
      EXPECT_EQ(got, payload(4096, 0));
    }
  });
}

TEST(Shm, LargeMessageIntraNode) {
  World w(ClusterSpec{1, 2}, Config{});
  w.run([](Communicator& c) {
    const std::size_t n = 4u << 20;
    if (c.rank() == 0) {
      auto data = payload(n, 0);
      c.send(data.data(), n, BYTE, 1, 1);
    } else {
      std::vector<std::byte> got(n);
      c.recv(got.data(), n, BYTE, 0, 1);
      EXPECT_EQ(got, payload(n, 0));
    }
  });
}

TEST(Shm, IntraNodeFasterThanInterNodeForSmall) {
  sim::Time shm_t = 0, net_t = 0;
  {
    World w(ClusterSpec{1, 2}, Config{});
    w.run([&](Communicator& c) {
      std::byte b{1};
      if (c.rank() == 0) {
        c.send(&b, 1, BYTE, 1, 0);
        c.recv(&b, 1, BYTE, 1, 0);
      } else {
        c.recv(&b, 1, BYTE, 0, 0);
        c.send(&b, 1, BYTE, 0, 0);
      }
    });
    shm_t = w.end_time();
  }
  {
    World w(ClusterSpec{2, 1}, Config{});
    w.run([&](Communicator& c) {
      std::byte b{1};
      if (c.rank() == 0) {
        c.send(&b, 1, BYTE, 1, 0);
        c.recv(&b, 1, BYTE, 1, 0);
      } else {
        c.recv(&b, 1, BYTE, 0, 0);
        c.send(&b, 1, BYTE, 0, 0);
      }
    });
    net_t = w.end_time();
  }
  EXPECT_LT(shm_t, net_t);
}

TEST(Shm, MixedIntraInterTraffic2x4) {
  // The paper's 2x4 layout: ranks 0-3 on node 0, 4-7 on node 1.
  World w(ClusterSpec{2, 4}, Config::enhanced(4, Policy::EPC));
  w.run([](Communicator& c) {
    const int p = c.size();
    // Everyone exchanges with everyone (small all-pairs handshake).
    for (int off = 1; off < p; ++off) {
      const int to = (c.rank() + off) % p;
      const int from = (c.rank() - off + p) % p;
      auto mine = payload(256, c.rank(), to);
      std::vector<std::byte> got(256);
      c.sendrecv(mine.data(), 256, BYTE, to, 3, got.data(), 256, BYTE, from, 3);
      EXPECT_EQ(got, payload(256, from, c.rank()));
    }
  });
}

TEST(CommMgmt, DupIsolatesTraffic) {
  World w(ClusterSpec{2, 1}, Config{});
  w.run([](Communicator& c) {
    Communicator d = c.dup();
    // Same-tag messages on the two communicators must not cross-match.
    if (c.rank() == 0) {
      std::int32_t a = 111, b = 222;
      c.send(&a, 1, INT32, 1, 5);
      d.send(&b, 1, INT32, 1, 5);
    } else {
      std::int32_t a = 0, b = 0;
      d.recv(&b, 1, INT32, 0, 5);
      c.recv(&a, 1, INT32, 0, 5);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(CommMgmt, SplitHalves) {
  World w(ClusterSpec{2, 2}, Config{});
  w.run([](Communicator& c) {
    const int color = c.rank() % 2;
    Communicator half = c.split(color, c.rank());
    EXPECT_EQ(half.size(), 2);
    // Allreduce within each half: sums of world ranks {0,2} or {1,3}.
    std::int32_t mine = c.rank(), sum = 0;
    half.allreduce(&mine, &sum, 1, INT32, Op::Sum);
    EXPECT_EQ(sum, color == 0 ? 0 + 2 : 1 + 3);
  });
}

TEST(CommMgmt, SplitKeyOrdersRanks) {
  World w(ClusterSpec{2, 2}, Config{});
  w.run([](Communicator& c) {
    // Reverse the order via keys.
    Communicator rev = c.split(0, -c.rank());
    EXPECT_EQ(rev.size(), c.size());
    EXPECT_EQ(rev.rank(), c.size() - 1 - c.rank());
  });
}

TEST(CommMgmt, WtimeAdvances) {
  World w(ClusterSpec{1, 1}, Config{});
  w.run([](Communicator& c) {
    const double t0 = c.wtime();
    c.compute(sim::milliseconds(2));
    EXPECT_NEAR(c.wtime() - t0, 0.002, 1e-9);
  });
}

TEST(CommMgmt, RunTwicePreservesClock) {
  World w(ClusterSpec{1, 1}, Config{});
  w.run([](Communicator& c) { c.compute(sim::microseconds(10)); });
  const sim::Time t1 = w.end_time();
  w.run([](Communicator& c) { c.compute(sim::microseconds(10)); });
  EXPECT_GT(w.end_time(), t1);
}

}  // namespace
}  // namespace ib12x::mvx
